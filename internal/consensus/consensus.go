// Package consensus defines the runtime-agnostic contract between a
// consensus replica (PrestigeBFT or a baseline) and its runtime (the
// discrete-event simulator or the live TCP runtime).
//
// A replica is a pure event-driven state machine: it consumes inputs —
// messages, timer expirations, finished proof-of-work computations — and
// returns a list of effects for the runtime to execute. Replicas contain no
// goroutines, no clocks, and no I/O, which makes every protocol path
// deterministic and unit-testable.
package consensus

import (
	"time"

	"prestigebft/internal/types"
)

// Origin identifies the sender of a delivered message.
type Origin struct {
	Client   bool
	ServerID types.ServerID
	ClientID types.ClientID
}

// FromServer builds a server origin.
func FromServer(id types.ServerID) Origin { return Origin{ServerID: id} }

// FromClient builds a client origin.
func FromClient(id types.ClientID) Origin { return Origin{Client: true, ClientID: id} }

// TimerKind enumerates replica timers. Kinds are protocol-specific small
// integers; Key disambiguates instances (e.g. per-transaction complaint
// timers, or — for a pipelined replication window — one timer per in-flight
// sequence number, so concurrent instances time out independently).
type TimerKind uint8

// Effect is an action the runtime must execute on the replica's behalf.
type Effect interface{ isEffect() }

// Send transmits one message to one server.
type Send struct {
	To  types.ServerID
	Msg types.Message
}

// Broadcast transmits one message to every other server.
type Broadcast struct {
	Msg types.Message
}

// SendClient transmits one message to a client.
type SendClient struct {
	To  types.ClientID
	Msg types.Message
}

// SetTimer (re)arms the timer identified by (Kind, Key) to fire after Delay.
type SetTimer struct {
	Kind  TimerKind
	Key   uint64
	Delay time.Duration
}

// CancelTimer disarms the timer identified by (Kind, Key).
type CancelTimer struct {
	Kind TimerKind
	Key  uint64
}

// StartPuzzle asks the runtime to solve the reputation-determined
// proof-of-work puzzle (Algo. 2 lines 36-39). The runtime reports completion
// through Replica.OnPuzzleSolved with the same token. RP determines the
// difficulty; the runtime maps it to zero-bits via its configuration.
type StartPuzzle struct {
	Token uint64
	Seed  []byte
	RP    int64
}

// AbortPuzzle cancels an in-flight puzzle computation (the redeemer
// discovered a higher view and transitions back to follower).
type AbortPuzzle struct {
	Token uint64
}

// Commit reports a committed txBlock to the application layer. The runtime
// uses it for metrics; state-machine application happens inside the replica's
// ledger.
type Commit struct {
	Block *types.TxBlock
}

// Trace reports a protocol event for metrics and debugging. Runtimes may
// ignore it; the experiment harness aggregates traces into figures
// (view changes, elections, split votes, reputation changes).
type Trace struct {
	Event  TraceEvent
	View   types.View
	Server types.ServerID
	Value  int64
}

// TraceEvent enumerates observable protocol events.
type TraceEvent uint8

const (
	// TraceViewChangeStart marks a server confirming a view change
	// (conf_QC assembled, transitioning to redeemer).
	TraceViewChangeStart TraceEvent = iota + 1
	// TraceCandidate marks a redeemer finishing its computation.
	TraceCandidate
	// TraceElected marks a candidate winning an election.
	TraceElected
	// TraceViewInstalled marks adoption of a new vcBlock.
	TraceViewInstalled
	// TraceSplitVote marks a candidate timing out without a winner.
	TraceSplitVote
	// TraceRPChange reports a server's new reputation penalty (Value).
	TraceRPChange
	// TraceRefresh marks a completed reputation refresh.
	TraceRefresh
	// TraceSyncUp marks a stale server syncing its logs.
	TraceSyncUp
	// TraceCheckpoint marks a checkpoint certificate assembled and the log
	// compacted to its seq (Value).
	TraceCheckpoint
	// TraceSnapshotInstall marks a stale server installing a certified
	// snapshot at seq (Value) instead of replaying compacted history.
	TraceSnapshotInstall
	// TraceSnapshotReject marks a snapshot at seq (Value) that failed
	// verification or restore — a replica stuck below every peer's log
	// base that keeps rejecting snapshots can never catch up, so
	// observers must be able to see the rejections.
	TraceSnapshotReject
)

func (e TraceEvent) String() string {
	switch e {
	case TraceViewChangeStart:
		return "view-change-start"
	case TraceCandidate:
		return "candidate"
	case TraceElected:
		return "elected"
	case TraceViewInstalled:
		return "view-installed"
	case TraceSplitVote:
		return "split-vote"
	case TraceRPChange:
		return "rp-change"
	case TraceRefresh:
		return "refresh"
	case TraceSyncUp:
		return "sync-up"
	case TraceCheckpoint:
		return "checkpoint"
	case TraceSnapshotInstall:
		return "snapshot-install"
	case TraceSnapshotReject:
		return "snapshot-reject"
	}
	return "unknown"
}

func (Send) isEffect()        {}
func (Broadcast) isEffect()   {}
func (SendClient) isEffect()  {}
func (SetTimer) isEffect()    {}
func (CancelTimer) isEffect() {}
func (StartPuzzle) isEffect() {}
func (AbortPuzzle) isEffect() {}
func (Commit) isEffect()      {}
func (Trace) isEffect()       {}

// Replica is the contract every consensus implementation satisfies.
type Replica interface {
	// ID returns the replica's server identity.
	ID() types.ServerID
	// Init produces the replica's initial effects (arming timers, leader
	// kick-off). now is the current runtime time.
	Init(now time.Duration) []Effect
	// OnMessage processes one delivered message.
	OnMessage(now time.Duration, from Origin, msg types.Message) []Effect
	// OnTimer processes a timer expiration. Runtimes guarantee a timer
	// fires at most once per SetTimer and never after CancelTimer.
	OnTimer(now time.Duration, kind TimerKind, key uint64) []Effect
	// OnPuzzleSolved reports a finished proof-of-work computation.
	OnPuzzleSolved(now time.Duration, token uint64, nonce []byte, hr types.Digest) []Effect
}

// MessageCostHint lets the simulator charge CPU time per message without
// protocol knowledge: it returns the number of signature verifications and
// per-transaction units a replica performs when handling msg.
func MessageCostHint(msg types.Message) (nSigs, nTx int) {
	switch m := msg.(type) {
	case *types.Prop:
		// Client requests are authenticated with MAC-class checks (as in
		// PBFT-descended systems); the per-transaction unit covers it.
		return 0, 1
	case *types.Compt:
		return 0, 1
	case *types.Ord:
		return 1, len(m.Txs)
	case *types.VoteCP:
		// Sender sig, plus one ordering_QC aggregate and per-tx digesting
		// for every locked slot attached as view-change evidence.
		nTx := 0
		for i := range m.Locked {
			nTx += len(m.Locked[i].Txs)
		}
		return 1 + len(m.Locked), nTx
	case *types.OrdReply, *types.CmtReply, *types.ReVC, *types.VcYes, *types.Ref, *types.Notif, *types.CkptVote:
		return 1, 0
	case *types.Cmt:
		return 2, 0 // sender sig + ordering_QC aggregate
	case *types.Adopt:
		return 2, len(m.Block.Txs) // sender sig + ordering_QC aggregate
	case *types.TxBlockMsg:
		return 3, len(m.Block.Txs) // sender + both QCs
	case *types.CampVC:
		return 3, 0 // sender + conf_QC + puzzle hash & rp recalculation
	case *types.VcBlockMsg:
		return 3, 0
	case *types.Rdone:
		return 2, 0
	case *types.SyncReq:
		return 0, 0
	case *types.SyncResp:
		n := 2 * len(m.VcBlocks)
		for i := range m.TxBlocks {
			n += 2
			_ = i
		}
		if m.Snapshot != nil {
			// ckpt_QC + the anchor's two QCs, plus state rehashing.
			n += 3
		}
		return n, 0
	}
	return 1, 0
}
