package consensus

import (
	"testing"

	"prestigebft/internal/types"
)

func TestOrigins(t *testing.T) {
	s := FromServer(3)
	if s.Client || s.ServerID != 3 {
		t.Fatalf("server origin: %+v", s)
	}
	c := FromClient(7)
	if !c.Client || c.ClientID != 7 {
		t.Fatalf("client origin: %+v", c)
	}
}

func TestTraceEventStrings(t *testing.T) {
	events := []TraceEvent{
		TraceViewChangeStart, TraceCandidate, TraceElected, TraceViewInstalled,
		TraceSplitVote, TraceRPChange, TraceRefresh, TraceSyncUp,
	}
	seen := map[string]bool{}
	for _, e := range events {
		s := e.String()
		if s == "" || s == "unknown" {
			t.Errorf("event %d renders as %q", e, s)
		}
		if seen[s] {
			t.Errorf("duplicate trace string %q", s)
		}
		seen[s] = true
	}
	if TraceEvent(99).String() != "unknown" {
		t.Error("unknown event should render as unknown")
	}
}

// TestMessageCostHintCoversAllMessages: every wire message must have a cost
// classification; a missing case silently distorts the CPU model.
func TestMessageCostHintCoversAllMessages(t *testing.T) {
	msgs := []types.Message{
		&types.Prop{}, &types.Compt{}, &types.Notif{},
		&types.ConfVC{}, &types.ReVC{}, &types.CampVC{}, &types.VoteCP{},
		&types.VcBlockMsg{}, &types.VcYes{}, &types.Ref{}, &types.Rdone{},
		&types.Ord{Txs: make([]types.Transaction, 5)},
		&types.OrdReply{}, &types.Cmt{}, &types.CmtReply{},
		&types.TxBlockMsg{Block: types.TxBlock{Txs: make([]types.Transaction, 3)}},
		&types.SyncReq{}, &types.SyncResp{TxBlocks: make([]types.TxBlock, 2)},
	}
	for _, m := range msgs {
		sigs, txs := MessageCostHint(m)
		if sigs < 0 || txs < 0 {
			t.Errorf("%s: negative cost hint", m.Type())
		}
	}
	// Batch sizes must flow into the hint.
	if _, txs := MessageCostHint(&types.Ord{Txs: make([]types.Transaction, 5)}); txs != 5 {
		t.Errorf("Ord batch size not reflected: %d", txs)
	}
	// Client requests are MAC-authenticated (0 signature verifications).
	if sigs, _ := MessageCostHint(&types.Prop{}); sigs != 0 {
		t.Errorf("Prop should cost 0 signature verifies (MAC-class), got %d", sigs)
	}
}

// TestEffectsAreEffects: the effect marker interface covers every type.
func TestEffectsAreEffects(t *testing.T) {
	effects := []Effect{
		Send{}, Broadcast{}, SendClient{}, SetTimer{}, CancelTimer{},
		StartPuzzle{}, AbortPuzzle{}, Commit{}, Trace{},
	}
	if len(effects) != 9 {
		t.Fatal("effect list out of date")
	}
}
