// Package verifier is the live stack's inbound verification pipeline: a
// worker pool that pre-verifies message signatures and quorum certificates
// off the runtime's serial event-loop goroutine.
//
// The pool does not annotate messages or change any verification outcome.
// It warms the registry's verified-fact cache (crypto.EnableVerifiedCache):
// a worker runs the same VerifyServer/VerifyClient/VerifyQC calls the core
// will run, so by the time the message reaches the event loop the core's
// inline calls are cache hits. Verification failures are deliberately
// ignored here — the core re-verifies (a miss) and rejects exactly as it
// would without the pool, so the pipeline cannot change protocol behaviour,
// only shift where the ed25519 math happens. The simulator never constructs
// a pool, keeping simulated trajectories byte-identical.
//
// Ordering: Submit shards by an opaque key (callers pass the sender), and
// each shard is a FIFO channel drained by one worker, so messages from one
// peer are delivered in arrival order — the same per-sender FIFO the
// transport's read loop provided when it delivered inline.
package verifier

import (
	"sync"
	"sync/atomic"

	"prestigebft/internal/crypto"
	"prestigebft/internal/types"
)

// Config parameterizes a Pool.
type Config struct {
	// Registry verifies against the deployment's identities. It should have
	// a verified-fact cache enabled; without one the pool's work is wasted
	// (every verification repeats in the core).
	Registry *crypto.Registry
	// Workers is the number of verification goroutines (and shards).
	// Non-positive selects DefaultWorkers.
	Workers int
	// Queue is the per-shard queue depth. Non-positive selects DefaultQueue.
	// A full shard blocks Submit — backpressure propagates to the
	// transport's per-connection read loop, exactly like a full event queue.
	Queue int
}

// Defaults for Config.
const (
	DefaultWorkers = 2
	DefaultQueue   = 256
)

type task struct {
	msg     types.Message
	deliver func()
}

// Pool is a sharded verification worker pool. Create with New, hand its
// Submit to the transport delivery path, and Close it after the runtime
// that consumes its deliveries has stopped.
type Pool struct {
	reg    *crypto.Registry
	shards []chan task
	wg     sync.WaitGroup

	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once

	submitted atomic.Uint64
	bypassed  atomic.Uint64
}

// New creates and starts a pool.
func New(cfg Config) *Pool {
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	queue := cfg.Queue
	if queue <= 0 {
		queue = DefaultQueue
	}
	p := &Pool{reg: cfg.Registry, shards: make([]chan task, workers)}
	for i := range p.shards {
		ch := make(chan task, queue)
		p.shards[i] = ch
		p.wg.Add(1)
		go p.worker(ch)
	}
	return p
}

// Submit pre-verifies msg on the shard selected by key and then calls
// deliver. Messages submitted with the same key are delivered in submission
// order. After Close, deliver runs synchronously without pre-verification
// (the core still verifies everything itself).
func (p *Pool) Submit(key uint64, msg types.Message, deliver func()) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		p.bypassed.Add(1)
		deliver()
		return
	}
	p.submitted.Add(1)
	p.shards[key%uint64(len(p.shards))] <- task{msg, deliver}
	p.mu.RUnlock()
}

// Close drains the shards and stops the workers. Queued messages are still
// delivered (pre-verified) before Close returns; later Submits deliver
// synchronously. Idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		for _, ch := range p.shards {
			close(ch)
		}
		p.mu.Unlock()
		p.wg.Wait()
	})
}

// Workers returns the number of verification goroutines.
func (p *Pool) Workers() int { return len(p.shards) }

// Stats returns how many messages went through the pipeline and how many
// bypassed it (submitted after Close).
func (p *Pool) Stats() (submitted, bypassed uint64) {
	return p.submitted.Load(), p.bypassed.Load()
}

// QueueDepth returns the total number of tasks currently queued across all
// shards — the backpressure gauge exported by the runtime metrics.
func (p *Pool) QueueDepth() int {
	n := 0
	for _, ch := range p.shards {
		n += len(ch)
	}
	return n
}

func (p *Pool) worker(ch chan task) {
	defer p.wg.Done()
	for t := range ch {
		p.preverify(t.msg)
		t.deliver()
	}
}

// preverify runs the registry checks the core will repeat, populating the
// verified-fact cache on success. Results are discarded: a failure here is
// re-discovered (and rejected) by the core's own call.
func (p *Pool) preverify(msg types.Message) {
	reg := p.reg
	if reg == nil {
		return
	}
	switch m := msg.(type) {
	case *types.Prop:
		reg.VerifyClient(m.Tx.Client, m.SigningBytes(), m.Sig)
	case *types.Notif:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
	case *types.Compt:
		reg.VerifyClient(m.Prop.Tx.Client, m.SigningBytes(), m.Sig)
		reg.VerifyClient(m.Prop.Tx.Client, m.Prop.SigningBytes(), m.Prop.Sig)
	case *types.ConfVC:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
	case *types.ReVC:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
	case *types.CampVC:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
		p.warmQC(&m.ConfQC)
	case *types.VoteCP:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
		for i := range m.Locked {
			p.warmQC(&m.Locked[i].OrderingQC)
		}
	case *types.VcBlockMsg:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
		p.warmQC(&m.Block.ConfQC)
		p.warmQC(&m.Block.VcQC)
	case *types.VcYes:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
	case *types.Ref:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
	case *types.Rdone:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
		p.warmQC(&m.RsQC)
	case *types.Ord:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
	case *types.OrdReply:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
	case *types.Cmt:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
		p.warmQC(&m.OrderingQC)
	case *types.CmtReply:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
	case *types.Adopt:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
		p.warmQC(&m.Block.OrderingQC)
	case *types.TxBlockMsg:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
		p.warmQC(&m.Block.OrderingQC)
		p.warmQC(&m.Block.CommitQC)
	case *types.CkptVote:
		reg.VerifyServer(m.From, m.SigningBytes(), m.Sig)
	case *types.SyncResp:
		for i := range m.TxBlocks {
			p.warmQC(&m.TxBlocks[i].OrderingQC)
			p.warmQC(&m.TxBlocks[i].CommitQC)
		}
		for i := range m.VcBlocks {
			p.warmQC(&m.VcBlocks[i].ConfQC)
			p.warmQC(&m.VcBlocks[i].VcQC)
		}
		if m.Snapshot != nil {
			p.warmQC(&m.Snapshot.Cert.QC)
			p.warmQC(&m.Snapshot.Anchor.OrderingQC)
			p.warmQC(&m.Snapshot.Anchor.CommitQC)
		}
	default:
		// Unknown kinds (baseline protocols, future messages) pass through
		// unverified; the receiving core treats them as it always has.
	}
}

// warmQC verifies a certificate at threshold 0: shape and signatures only.
// A success lands the QC's fact in the cache; the core's later VerifyQC
// re-checks its real threshold against the cached fact.
func (p *Pool) warmQC(qc *types.QC) {
	if qc.IsZero() {
		return
	}
	_ = p.reg.VerifyQC(qc, 0)
}
