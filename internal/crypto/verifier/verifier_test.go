package verifier

import (
	"sync"
	"testing"

	"prestigebft/internal/crypto"
	"prestigebft/internal/types"
)

func deployment(t *testing.T) (*crypto.Registry, map[types.ServerID]*crypto.KeyPair, map[types.ClientID]*crypto.KeyPair) {
	t.Helper()
	reg, servers, clients := crypto.GenerateDeployment(0x5eed, 4, 2)
	reg.EnableVerifiedCache(0)
	return reg, servers, clients
}

// TestPreverifyWarmsCache: a message that went through the pool must make
// the core's subsequent inline verification a cache hit.
func TestPreverifyWarmsCache(t *testing.T) {
	reg, servers, _ := deployment(t)
	p := New(Config{Registry: reg, Workers: 1})
	defer p.Close()

	m := &types.OrdReply{From: 2, V: 1, N: 3, D: types.Digest{7}}
	m.Sig = servers[2].Sign(m.SigningBytes())

	done := make(chan struct{})
	p.Submit(uint64(m.From), m, func() { close(done) })
	<-done

	h0, _ := reg.CacheStats()
	if !reg.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		t.Fatal("valid signature rejected")
	}
	h1, _ := reg.CacheStats()
	if h1 != h0+1 {
		t.Fatalf("core verification was not a cache hit (hits %d -> %d)", h0, h1)
	}
	if sub, byp := p.Stats(); sub != 1 || byp != 0 {
		t.Fatalf("stats = %d/%d, want 1/0", sub, byp)
	}
}

// TestPreverifyWarmsQC: a Cmt's ordering_QC pre-verified by the pool must
// make the core's VerifyQC at the real threshold a cache hit.
func TestPreverifyWarmsQC(t *testing.T) {
	reg, servers, _ := deployment(t)
	p := New(Config{Registry: reg, Workers: 1})
	defer p.Close()

	qc := types.QC{Kind: types.QCOrdering, View: 1, Seq: 4, Digest: types.Digest{9}}
	stmt := qc.StatementBytes()
	for id := types.ServerID(1); id <= 3; id++ {
		qc.Signers = append(qc.Signers, id)
		qc.Sigs = append(qc.Sigs, servers[id].Sign(stmt))
	}
	m := &types.Cmt{From: 1, V: 1, N: 4, OrderingQC: qc}
	m.Sig = servers[1].Sign(m.SigningBytes())

	done := make(chan struct{})
	p.Submit(uint64(m.From), m, func() { close(done) })
	<-done

	h0, _ := reg.CacheStats()
	if err := reg.VerifyQC(&m.OrderingQC, 3); err != nil {
		t.Fatalf("valid QC rejected: %v", err)
	}
	if h1, _ := reg.CacheStats(); h1 <= h0 {
		t.Fatal("core QC verification was not a cache hit")
	}
}

// TestBadSignatureStillDelivered: the pipeline never filters — a message
// with a garbage signature is delivered and the core's verification still
// fails.
func TestBadSignatureStillDelivered(t *testing.T) {
	reg, _, _ := deployment(t)
	p := New(Config{Registry: reg, Workers: 1})
	defer p.Close()

	m := &types.OrdReply{From: 2, V: 1, N: 3, D: types.Digest{7}, Sig: []byte("garbage")}
	done := make(chan struct{})
	p.Submit(uint64(m.From), m, func() { close(done) })
	<-done
	if reg.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		t.Fatal("garbage signature accepted")
	}
}

// TestPerKeyFIFO: deliveries for one key preserve submission order even
// with several workers.
func TestPerKeyFIFO(t *testing.T) {
	reg, servers, _ := deployment(t)
	p := New(Config{Registry: reg, Workers: 4, Queue: 8})
	defer p.Close()

	const n = 64
	var mu sync.Mutex
	got := make([]int, 0, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		m := &types.OrdReply{From: 2, V: 1, N: types.SeqNum(i), D: types.Digest{1}}
		m.Sig = servers[2].Sign(m.SigningBytes())
		p.Submit(7, m, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order violated at %d: got %v", i, got[:i+1])
		}
	}
}

// TestSubmitAfterClose: post-Close submissions deliver synchronously and
// count as bypassed.
func TestSubmitAfterClose(t *testing.T) {
	reg, servers, _ := deployment(t)
	p := New(Config{Registry: reg, Workers: 2})
	p.Close()
	p.Close() // idempotent

	m := &types.OrdReply{From: 1, V: 1, N: 1, D: types.Digest{1}}
	m.Sig = servers[1].Sign(m.SigningBytes())
	delivered := false
	p.Submit(1, m, func() { delivered = true })
	if !delivered {
		t.Fatal("post-Close submit did not deliver synchronously")
	}
	if _, byp := p.Stats(); byp != 1 {
		t.Fatalf("bypassed = %d, want 1", byp)
	}
}

// TestCloseDrains: everything submitted before Close is delivered by the
// time Close returns.
func TestCloseDrains(t *testing.T) {
	reg, servers, _ := deployment(t)
	p := New(Config{Registry: reg, Workers: 2, Queue: 128})
	const n = 100
	var mu sync.Mutex
	count := 0
	for i := 0; i < n; i++ {
		m := &types.CmtReply{From: types.ServerID(1 + i%4), V: 1, N: types.SeqNum(i), D: types.Digest{2}}
		m.Sig = servers[m.From].Sign(m.SigningBytes())
		p.Submit(uint64(m.From), m, func() {
			mu.Lock()
			count++
			mu.Unlock()
		})
	}
	p.Close()
	if count != n {
		t.Fatalf("Close returned with %d/%d deliveries", count, n)
	}
}
