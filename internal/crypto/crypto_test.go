package crypto

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prestigebft/internal/types"
)

func TestDeploymentDeterminism(t *testing.T) {
	r1, s1, c1 := GenerateDeployment(9, 4, 2)
	r2, s2, c2 := GenerateDeployment(9, 4, 2)
	if r1.NumServers() != 4 || r2.NumServers() != 4 {
		t.Fatal("wrong server count")
	}
	msg := []byte("hello")
	for id := types.ServerID(1); id <= 4; id++ {
		sig1 := s1[id].Sign(msg)
		sig2 := s2[id].Sign(msg)
		if string(sig1) != string(sig2) {
			t.Fatalf("server %d keys differ across identical seeds", id)
		}
	}
	if string(c1[1].Sign(msg)) != string(c2[1].Sign(msg)) {
		t.Fatal("client keys differ across identical seeds")
	}
	// Different seeds must differ.
	_, s3, _ := GenerateDeployment(10, 4, 2)
	if string(s1[1].Sign(msg)) == string(s3[1].Sign(msg)) {
		t.Fatal("different seeds produced identical keys")
	}
	// Server and client key spaces must not collide.
	if string(s1[1].Sign(msg)) == string(c1[1].Sign(msg)) {
		t.Fatal("server 1 and client 1 share a key")
	}
}

// TestDeploymentSeedsNoHighBitAliasing: regression for the former
// seed<<20|index derivation, which dropped a seed's top 20 bits — two
// deployments whose seeds differed only there silently shared every key.
func TestDeploymentSeedsNoHighBitAliasing(t *testing.T) {
	msg := []byte("alias-check")
	_, sa, ca := GenerateDeployment(7, 2, 1)
	_, sb, cb := GenerateDeployment(7|1<<44, 2, 1)
	if string(sa[1].Sign(msg)) == string(sb[1].Sign(msg)) {
		t.Fatal("seeds differing only in high bits produced identical server keys")
	}
	if string(ca[1].Sign(msg)) == string(cb[1].Sign(msg)) {
		t.Fatal("seeds differing only in high bits produced identical client keys")
	}
	// And the former in-deployment packing hazard: server i of seed s vs
	// server j of a nearby seed must never alias either.
	_, sc, _ := GenerateDeployment(8, 2, 1)
	for i := types.ServerID(1); i <= 2; i++ {
		for j := types.ServerID(1); j <= 2; j++ {
			if string(sa[i].Sign(msg)) == string(sc[j].Sign(msg)) {
				t.Fatalf("server %d of seed 7 aliases server %d of seed 8", i, j)
			}
		}
	}
}

func TestSignVerify(t *testing.T) {
	reg, servers, clients := GenerateDeployment(3, 4, 2)
	msg := []byte("statement")
	sig := servers[2].Sign(msg)
	if !reg.VerifyServer(2, msg, sig) {
		t.Fatal("valid server signature rejected")
	}
	if reg.VerifyServer(3, msg, sig) {
		t.Fatal("signature accepted for wrong server")
	}
	if reg.VerifyServer(2, []byte("other"), sig) {
		t.Fatal("signature accepted for wrong message")
	}
	if reg.VerifyServer(99, msg, sig) {
		t.Fatal("unknown server accepted")
	}
	csig := clients[1].Sign(msg)
	if !reg.VerifyClient(1, msg, csig) {
		t.Fatal("valid client signature rejected")
	}
	if reg.VerifyClient(2, msg, csig) {
		t.Fatal("client signature accepted for wrong client")
	}
}

func TestVerificationDisabledMode(t *testing.T) {
	reg, _, _ := GenerateDeployment(3, 4, 1)
	reg.VerifySignatures = false
	if !reg.VerifyServer(1, []byte("m"), []byte("any")) {
		t.Fatal("disabled mode must accept non-empty signatures")
	}
	if reg.VerifyServer(1, []byte("m"), nil) {
		t.Fatal("disabled mode must still reject empty signatures (corruption marker)")
	}
}

func TestVerifyQC(t *testing.T) {
	reg, servers, _ := GenerateDeployment(5, 4, 0)
	stmt := types.QCStatementBytes(types.QCCommit, 2, 5, types.Digest{9})
	qc := types.QC{Kind: types.QCCommit, View: 2, Seq: 5, Digest: types.Digest{9}}
	for id := types.ServerID(1); id <= 3; id++ {
		qc.Signers = append(qc.Signers, id)
		qc.Sigs = append(qc.Sigs, servers[id].Sign(stmt))
	}
	if err := reg.VerifyQC(&qc, 3); err != nil {
		t.Fatalf("valid QC rejected: %v", err)
	}
	if err := reg.VerifyQC(&qc, 4); err == nil {
		t.Fatal("under-threshold QC accepted")
	}
	// Duplicate signers must not count twice.
	dup := qc
	dup.Signers = []types.ServerID{1, 1, 2}
	dup.Sigs = [][]byte{qc.Sigs[0], qc.Sigs[0], qc.Sigs[1]}
	if err := reg.VerifyQC(&dup, 3); err == nil {
		t.Fatal("duplicate-signer QC accepted")
	}
	// A corrupted signature must fail.
	bad := qc
	bad.Sigs = [][]byte{qc.Sigs[0], qc.Sigs[1], servers[3].Sign([]byte("other"))}
	if err := reg.VerifyQC(&bad, 3); err == nil {
		t.Fatal("QC with invalid signature accepted")
	}
}

// TestVerifyQCMalformed: shape validation must run before the threshold
// check, and zero-length signatures must be rejected even when
// VerifySignatures is false (sim-mode QCs reaching live code paths).
func TestVerifyQCMalformed(t *testing.T) {
	reg, servers, _ := GenerateDeployment(5, 4, 0)
	stmt := types.QCStatementBytes(types.QCCommit, 2, 5, types.Digest{9})
	valid := types.QC{Kind: types.QCCommit, View: 2, Seq: 5, Digest: types.Digest{9}}
	for id := types.ServerID(1); id <= 3; id++ {
		valid.Signers = append(valid.Signers, id)
		valid.Sigs = append(valid.Sigs, servers[id].Sign(stmt))
	}

	cases := []struct {
		name    string
		mutate  func(qc *types.QC)
		verify  bool // VerifySignatures setting
		wantErr bool
	}{
		{"valid", func(qc *types.QC) {}, true, false},
		{"more signers than sigs", func(qc *types.QC) {
			qc.Signers = append(qc.Signers, 4)
		}, true, true},
		{"more sigs than signers", func(qc *types.QC) {
			qc.Sigs = append(qc.Sigs, qc.Sigs[0])
		}, true, true},
		// Shape mismatch must be detected even when the extra signer would
		// push the count past threshold (the old order checked threshold
		// first and indexed Sigs with Signers' length).
		{"mismatch below threshold", func(qc *types.QC) {
			qc.Signers = qc.Signers[:2]
		}, true, true},
		{"nil signature", func(qc *types.QC) {
			qc.Sigs[1] = nil
		}, true, true},
		{"empty signature", func(qc *types.QC) {
			qc.Sigs[2] = []byte{}
		}, true, true},
		{"nil signature in sim mode", func(qc *types.QC) {
			qc.Sigs[1] = nil
		}, false, true},
		{"padding byte is not a signature shape violation", func(qc *types.QC) {
			qc.Sigs[1] = []byte{0xAA}
		}, false, false},
		{"unregistered signer", func(qc *types.QC) {
			qc.Signers[0] = 99
		}, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qc := valid
			qc.Signers = append([]types.ServerID(nil), valid.Signers...)
			qc.Sigs = make([][]byte, len(valid.Sigs))
			copy(qc.Sigs, valid.Sigs)
			tc.mutate(&qc)
			reg.VerifySignatures = tc.verify
			err := reg.VerifyQC(&qc, 3)
			if tc.wantErr && err == nil {
				t.Fatal("malformed QC accepted")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("QC rejected: %v", err)
			}
		})
	}
	reg.VerifySignatures = true
}

func TestVerifiedCacheSignatures(t *testing.T) {
	reg, servers, clients := GenerateDeployment(11, 4, 2)
	reg.EnableVerifiedCache(8)
	msg := []byte("cached statement")
	sig := servers[1].Sign(msg)
	if !reg.VerifyServer(1, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if h, m := reg.CacheStats(); h != 0 || m != 1 {
		t.Fatalf("after first verify: hits=%d misses=%d, want 0/1", h, m)
	}
	if !reg.VerifyServer(1, msg, sig) {
		t.Fatal("cached signature rejected")
	}
	if h, _ := reg.CacheStats(); h != 1 {
		t.Fatalf("second verify did not hit cache (hits=%d)", h)
	}
	// The cached fact is bound to the identity: same bytes, other server.
	if reg.VerifyServer(2, msg, sig) {
		t.Fatal("cache leaked a fact across server identities")
	}
	// And to the identity class.
	csig := clients[1].Sign(msg)
	if !reg.VerifyClient(1, msg, csig) || !reg.VerifyClient(1, msg, csig) {
		t.Fatal("client verify through cache failed")
	}
	if reg.VerifyClient(2, msg, csig) {
		t.Fatal("cache leaked a fact across client identities")
	}
	// Invalid signatures are never cached.
	bad := append([]byte(nil), sig...)
	bad[0] ^= 0xFF
	for i := 0; i < 2; i++ {
		if reg.VerifyServer(1, msg, bad) {
			t.Fatal("corrupted signature accepted")
		}
	}
}

func TestVerifiedCacheQC(t *testing.T) {
	reg, servers, _ := GenerateDeployment(13, 4, 0)
	reg.EnableVerifiedCache(8)
	stmt := types.QCStatementBytes(types.QCOrdering, 1, 7, types.Digest{3})
	qc := types.QC{Kind: types.QCOrdering, View: 1, Seq: 7, Digest: types.Digest{3}}
	for id := types.ServerID(1); id <= 3; id++ {
		qc.Signers = append(qc.Signers, id)
		qc.Sigs = append(qc.Sigs, servers[id].Sign(stmt))
	}
	if err := reg.VerifyQC(&qc, 3); err != nil {
		t.Fatalf("valid QC rejected: %v", err)
	}
	h0, _ := reg.CacheStats()
	if err := reg.VerifyQC(&qc, 3); err != nil {
		t.Fatalf("cached QC rejected: %v", err)
	}
	h1, _ := reg.CacheStats()
	if h1 <= h0 {
		t.Fatal("second QC verification did not hit the cache")
	}
	// The cached fact is threshold-independent, but the threshold is
	// re-checked on every call: the same QC must still fail a higher bar.
	if err := reg.VerifyQC(&qc, 4); err == nil {
		t.Fatal("cache bypassed the threshold check")
	}
	// A tampered copy (one flipped sig byte) keys differently and fails.
	tampered := qc
	tampered.Sigs = make([][]byte, len(qc.Sigs))
	copy(tampered.Sigs, qc.Sigs)
	tampered.Sigs[2] = append([]byte(nil), qc.Sigs[2]...)
	tampered.Sigs[2][0] ^= 0x01
	if err := reg.VerifyQC(&tampered, 3); err == nil {
		t.Fatal("tampered QC accepted via cache")
	}
}

func TestVerifiedCacheEviction(t *testing.T) {
	reg, servers, _ := GenerateDeployment(17, 1, 0)
	reg.EnableVerifiedCache(4)
	// Fill far past both generations; every verify must still succeed.
	for i := 0; i < 32; i++ {
		msg := []byte{byte(i)}
		sig := servers[1].Sign(msg)
		if !reg.VerifyServer(1, msg, sig) {
			t.Fatalf("verify %d failed after eviction churn", i)
		}
	}
	// A recently-inserted fact still hits.
	msg := []byte{31}
	sig := servers[1].Sign(msg)
	h0, _ := reg.CacheStats()
	if !reg.VerifyServer(1, msg, sig) {
		t.Fatal("recent fact rejected")
	}
	if h1, _ := reg.CacheStats(); h1 <= h0 {
		t.Fatal("recent fact did not hit the cache")
	}
}

func TestLeadingZeroBits(t *testing.T) {
	cases := []struct {
		d    types.Digest
		bits int
	}{
		{types.Digest{0x80}, 0},
		{types.Digest{0x40}, 1},
		{types.Digest{0x01}, 7},
		{types.Digest{0x00, 0x80}, 8},
		{types.Digest{0x00, 0x00, 0x20}, 18},
	}
	for _, c := range cases {
		if got := LeadingZeroBits(c.d); got != c.bits {
			t.Errorf("LeadingZeroBits(%v...) = %d, want %d", c.d[:3], got, c.bits)
		}
	}
	var zero types.Digest
	if got := LeadingZeroBits(zero); got != 256 {
		t.Errorf("all-zero digest: %d bits, want 256", got)
	}
}

func TestPuzzleSolveVerifyRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seed := PuzzleSeed(types.Digest{7}, 12)
	for _, bits := range []int{0, 4, 8, 12} {
		nonce, hr, iters := SolvePuzzle(seed, bits, rng)
		if !VerifyPuzzle(seed, nonce, hr, bits) {
			t.Fatalf("solve/verify roundtrip failed at %d bits", bits)
		}
		if bits > 0 && iters == 0 {
			t.Fatal("no iterations recorded")
		}
		// Verification must bind the seed.
		if VerifyPuzzle(PuzzleSeed(types.Digest{8}, 12), nonce, hr, bits) {
			t.Fatal("verification ignores seed")
		}
		// And the claimed hash.
		var wrong types.Digest
		if VerifyPuzzle(seed, nonce, wrong, bits) && !hr.IsZero() {
			t.Fatal("verification ignores claimed hash")
		}
	}
}

func TestPuzzleSeedBindsView(t *testing.T) {
	// Work for one view must not be reusable for another (campaign replay).
	s1 := PuzzleSeed(types.Digest{1}, 5)
	s2 := PuzzleSeed(types.Digest{1}, 6)
	if string(s1) == string(s2) {
		t.Fatal("puzzle seed ignores the campaigned view")
	}
}

func TestExpectedIterations(t *testing.T) {
	if ExpectedIterations(0) != 1 || ExpectedIterations(-3) != 1 {
		t.Fatal("non-positive difficulty should cost one hash")
	}
	if ExpectedIterations(10) != 1024 {
		t.Fatalf("2^10 = %v", ExpectedIterations(10))
	}
}

func TestPropertyPuzzleIterationsScale(t *testing.T) {
	// Statistical sanity: average iterations at `bits` difficulty is near
	// 2^bits (loose bounds; deterministic seed).
	rng := rand.New(rand.NewSource(17))
	const bits = 8
	var total uint64
	const rounds = 200
	seed := []byte("scale-test")
	for i := 0; i < rounds; i++ {
		_, _, iters := SolvePuzzle(append(seed, byte(i)), bits, rng)
		total += iters
	}
	mean := float64(total) / rounds
	if mean < 100 || mean > 600 {
		t.Fatalf("mean iterations at 8 bits = %v, want ~256", mean)
	}
}

func TestPropertyCheckPrefixConsistent(t *testing.T) {
	f := func(raw [32]byte, bitsRaw uint8) bool {
		d := types.Digest(raw)
		bits := int(bitsRaw % 40)
		return CheckPrefix(d, bits) == (LeadingZeroBits(d) >= bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
