// Package crypto provides the cryptographic substrate for PrestigeBFT:
// ed25519 signing keys for servers and clients, a registry used to verify
// signatures and quorum certificates, and the reputation-determined
// proof-of-work puzzle of the active view-change protocol (§4.2.2).
//
// The paper uses (t,n) threshold signatures to compress quorum certificates
// to O(1) size. The Go standard library has no pairing-based cryptography,
// so this package aggregates individual ed25519 signatures instead; the
// quorum semantics (threshold t out of n distinct signers over one
// statement) are identical. See DESIGN.md §4.
package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"

	"prestigebft/internal/types"
)

// KeyPair holds one ed25519 signing identity.
type KeyPair struct {
	Pub  ed25519.PublicKey
	Priv ed25519.PrivateKey
}

// Sign signs msg with the private key.
func (k *KeyPair) Sign(msg []byte) []byte { return ed25519.Sign(k.Priv, msg) }

// Key-derivation domain separators for the two identity classes of a
// deployment.
const (
	domainServer byte = 0x00
	domainClient byte = 0x01
)

// deterministicKey derives a key pair by hashing the full (seed, domain,
// index) tuple. Deterministic key generation keeps simulations and tests
// reproducible; hashing every input bit guarantees distinct tuples can never
// alias. (An earlier packing, seed<<20|index, silently dropped the seed's top
// 20 bits, so deployments whose seeds differed only there shared keys.)
func deterministicKey(seed uint64, domain byte, index uint64) KeyPair {
	var s [17]byte
	binary.BigEndian.PutUint64(s[0:8], seed)
	s[8] = domain
	binary.BigEndian.PutUint64(s[9:17], index)
	h := sha256.Sum256(s[:])
	priv := ed25519.NewKeyFromSeed(h[:])
	return KeyPair{Pub: priv.Public().(ed25519.PublicKey), Priv: priv}
}

// Registry stores the public identities of all servers and clients in a
// deployment and verifies signatures and quorum certificates against them.
type Registry struct {
	servers map[types.ServerID]ed25519.PublicKey
	clients map[types.ClientID]ed25519.PublicKey

	// VerifySignatures disables real signature verification when false.
	// Large-scale simulation experiments charge signature verification
	// *time* through the simulator's CPU cost model but skip the actual
	// ed25519 math so that a 100-server virtual cluster runs on one
	// laptop core. Protocol tests keep it enabled.
	VerifySignatures bool
}

// NewRegistry creates an empty registry with verification enabled.
func NewRegistry() *Registry {
	return &Registry{
		servers:          make(map[types.ServerID]ed25519.PublicKey),
		clients:          make(map[types.ClientID]ed25519.PublicKey),
		VerifySignatures: true,
	}
}

// GenerateDeployment creates deterministic keys for n servers and c clients,
// returning the shared registry and each party's private key pair.
func GenerateDeployment(seed uint64, n, c int) (*Registry, map[types.ServerID]*KeyPair, map[types.ClientID]*KeyPair) {
	reg := NewRegistry()
	servers := make(map[types.ServerID]*KeyPair, n)
	clients := make(map[types.ClientID]*KeyPair, c)
	for i := 1; i <= n; i++ {
		kp := deterministicKey(seed, domainServer, uint64(i))
		id := types.ServerID(i)
		servers[id] = &kp
		reg.servers[id] = kp.Pub
	}
	for i := 1; i <= c; i++ {
		kp := deterministicKey(seed, domainClient, uint64(i))
		id := types.ClientID(i)
		clients[id] = &kp
		reg.clients[id] = kp.Pub
	}
	return reg, servers, clients
}

// NumServers returns the number of registered servers.
func (r *Registry) NumServers() int { return len(r.servers) }

// VerifyServer checks a server signature over msg.
func (r *Registry) VerifyServer(id types.ServerID, msg, sig []byte) bool {
	if !r.VerifySignatures {
		return len(sig) > 0
	}
	pub, ok := r.servers[id]
	if !ok {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// VerifyClient checks a client signature over msg.
func (r *Registry) VerifyClient(id types.ClientID, msg, sig []byte) bool {
	if !r.VerifySignatures {
		return len(sig) > 0
	}
	pub, ok := r.clients[id]
	if !ok {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// VerifyQC checks that qc certifies its statement with at least threshold
// distinct, registered signers.
func (r *Registry) VerifyQC(qc *types.QC, threshold int) error {
	if qc.Len() < threshold {
		return fmt.Errorf("%s: %d signers, need %d", qc.Kind, qc.Len(), threshold)
	}
	if len(qc.Sigs) != len(qc.Signers) {
		return fmt.Errorf("%s: %d signatures for %d signers", qc.Kind, len(qc.Sigs), len(qc.Signers))
	}
	stmt := qc.StatementBytes()
	seen := make(map[types.ServerID]bool, len(qc.Signers))
	for i, id := range qc.Signers {
		if seen[id] {
			return fmt.Errorf("%s: duplicate signer %d", qc.Kind, id)
		}
		seen[id] = true
		if !r.VerifyServer(id, stmt, qc.Sigs[i]) {
			return fmt.Errorf("%s: bad signature from %d", qc.Kind, id)
		}
	}
	return nil
}

// --- Proof-of-work puzzle (§4.2.2) ------------------------------------------

// The paper requires the hash result to have a prefix of rp zero *bytes*
// (Pr = 2^-8rp). The difficulty unit is configurable here as bits-per-rp so
// that live demos finish in human time; the paper's setting is 8.

// PuzzleSeed derives the puzzle seed from the redeemer's latest txBlock hash
// and the view campaigned for, so work cannot be reused across campaigns.
func PuzzleSeed(txBlockHash types.Digest, vPrime types.View) []byte {
	buf := make([]byte, 0, 40)
	buf = append(buf, txBlockHash[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(vPrime))
	return buf
}

// PuzzleHash computes hr = Hash(seed, nonce) (Algo. 2 line 38).
func PuzzleHash(seed, nonce []byte) types.Digest {
	h := sha256.New()
	h.Write(seed)
	h.Write(nonce)
	var out types.Digest
	h.Sum(out[:0])
	return out
}

// LeadingZeroBits counts the zero-bit prefix of d.
func LeadingZeroBits(d types.Digest) int {
	bits := 0
	for _, b := range d {
		if b == 0 {
			bits += 8
			continue
		}
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if b&mask != 0 {
				return bits
			}
			bits++
		}
	}
	return bits
}

// CheckPrefix reports whether hr satisfies difficulty zeroBits
// (Algo. 2 line 39 / criterion C5). A non-positive difficulty always passes.
func CheckPrefix(hr types.Digest, zeroBits int) bool {
	if zeroBits <= 0 {
		return true
	}
	return LeadingZeroBits(hr) >= zeroBits
}

// SolvePuzzle searches nonces until Hash(seed, nonce) has at least zeroBits
// leading zero bits. It returns the nonce, the hash result, and the number
// of iterations performed. rng drives nonce generation; it may be nil, in
// which case a counter search is used.
func SolvePuzzle(seed []byte, zeroBits int, rng *rand.Rand) (nonce []byte, hr types.Digest, iters uint64) {
	nonce = make([]byte, 8)
	if rng != nil {
		binary.BigEndian.PutUint64(nonce, rng.Uint64())
	}
	for {
		iters++
		hr = PuzzleHash(seed, nonce)
		if CheckPrefix(hr, zeroBits) {
			return nonce, hr, iters
		}
		// Counter increment: deterministic continuation from the random
		// starting point.
		for i := 7; i >= 0; i-- {
			nonce[i]++
			if nonce[i] != 0 {
				break
			}
		}
	}
}

// VerifyPuzzle re-derives hr from (seed, nonce) and checks the difficulty
// prefix. Verification is a single hash (O(1)), matching §4.2.3.
func VerifyPuzzle(seed, nonce []byte, claimed types.Digest, zeroBits int) bool {
	hr := PuzzleHash(seed, nonce)
	return hr == claimed && CheckPrefix(hr, zeroBits)
}

// ExpectedIterations returns the expected number of hash evaluations to find
// a zeroBits-prefix: 2^zeroBits.
func ExpectedIterations(zeroBits int) float64 {
	if zeroBits <= 0 {
		return 1
	}
	f := 1.0
	for i := 0; i < zeroBits; i++ {
		f *= 2
	}
	return f
}
