// Package crypto provides the cryptographic substrate for PrestigeBFT:
// ed25519 signing keys for servers and clients, a registry used to verify
// signatures and quorum certificates, and the reputation-determined
// proof-of-work puzzle of the active view-change protocol (§4.2.2).
//
// The paper uses (t,n) threshold signatures to compress quorum certificates
// to O(1) size. The Go standard library has no pairing-based cryptography,
// so this package aggregates individual ed25519 signatures instead; the
// quorum semantics (threshold t out of n distinct signers over one
// statement) are identical. See DESIGN.md §4.
package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"prestigebft/internal/types"
)

// KeyPair holds one ed25519 signing identity.
type KeyPair struct {
	Pub  ed25519.PublicKey
	Priv ed25519.PrivateKey
}

// Sign signs msg with the private key.
func (k *KeyPair) Sign(msg []byte) []byte { return ed25519.Sign(k.Priv, msg) }

// Key-derivation domain separators for the two identity classes of a
// deployment.
const (
	domainServer byte = 0x00
	domainClient byte = 0x01
)

// deterministicKey derives a key pair by hashing the full (seed, domain,
// index) tuple. Deterministic key generation keeps simulations and tests
// reproducible; hashing every input bit guarantees distinct tuples can never
// alias. (An earlier packing, seed<<20|index, silently dropped the seed's top
// 20 bits, so deployments whose seeds differed only there shared keys.)
func deterministicKey(seed uint64, domain byte, index uint64) KeyPair {
	var s [17]byte
	binary.BigEndian.PutUint64(s[0:8], seed)
	s[8] = domain
	binary.BigEndian.PutUint64(s[9:17], index)
	h := sha256.Sum256(s[:])
	priv := ed25519.NewKeyFromSeed(h[:])
	return KeyPair{Pub: priv.Public().(ed25519.PublicKey), Priv: priv}
}

// Registry stores the public identities of all servers and clients in a
// deployment and verifies signatures and quorum certificates against them.
type Registry struct {
	servers map[types.ServerID]ed25519.PublicKey
	clients map[types.ClientID]ed25519.PublicKey

	// VerifySignatures disables real signature verification when false.
	// Large-scale simulation experiments charge signature verification
	// *time* through the simulator's CPU cost model but skip the actual
	// ed25519 math so that a 100-server virtual cluster runs on one
	// laptop core. Protocol tests keep it enabled.
	VerifySignatures bool

	// cache, when non-nil, memoizes successful verifications so the same
	// signature or QC arriving on multiple messages (or pre-verified by the
	// live pipeline) is checked once. Nil in simulation — the simulator
	// never calls EnableVerifiedCache, so simulated results are untouched.
	cache *verifiedCache
}

// cacheKey identifies one verified fact. Keys hash their full input
// (domain tag plus length-prefixed material), so distinct facts cannot alias.
type cacheKey [32]byte

// verifiedCache is a bounded set of verification facts that have already
// succeeded. Only positive results are cached: a hit means "this exact
// (identity, message, signature) or QC verified successfully before".
// Eviction is two-generation (the simplest bounded scheme with an LRU-ish
// working-set guarantee): when the live generation fills, it becomes the
// previous generation and a fresh map starts; lookups consult both.
type verifiedCache struct {
	mu    sync.Mutex
	live  map[cacheKey]struct{}
	prev  map[cacheKey]struct{}
	limit int

	hits   uint64
	misses uint64
}

func (c *verifiedCache) contains(k cacheKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.live[k]; ok {
		c.hits++
		return true
	}
	if _, ok := c.prev[k]; ok {
		// Promote so the fact survives the next generation flip.
		c.live[k] = struct{}{}
		c.hits++
		return true
	}
	c.misses++
	return false
}

func (c *verifiedCache) insert(k cacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.live) >= c.limit {
		c.prev = c.live
		c.live = make(map[cacheKey]struct{}, c.limit)
	}
	c.live[k] = struct{}{}
}

// DefaultVerifiedCacheEntries bounds each cache generation when
// EnableVerifiedCache is called with a non-positive size.
const DefaultVerifiedCacheEntries = 1 << 16

// EnableVerifiedCache installs a bounded verified-fact cache holding up to
// entries facts per generation (DefaultVerifiedCacheEntries if entries <= 0).
// Only live deployments call this; the simulator never does, which is what
// keeps simulated trajectories byte-identical. Safe for concurrent use once
// installed; not safe to call concurrently with verification.
func (r *Registry) EnableVerifiedCache(entries int) {
	if entries <= 0 {
		entries = DefaultVerifiedCacheEntries
	}
	r.cache = &verifiedCache{
		live:  make(map[cacheKey]struct{}, entries),
		limit: entries,
	}
}

// CacheStats returns cumulative (hits, misses) of the verified-fact cache,
// or zeros when no cache is installed.
func (r *Registry) CacheStats() (hits, misses uint64) {
	if r.cache == nil {
		return 0, 0
	}
	r.cache.mu.Lock()
	defer r.cache.mu.Unlock()
	return r.cache.hits, r.cache.misses
}

// Cache-key domain tags. Each key hashes tag || len-prefixed fields, so a
// server-signature fact can never collide with a client-signature or QC fact.
const (
	cacheTagServer byte = 'S'
	cacheTagClient byte = 'C'
	cacheTagQC     byte = 'Q'
)

func sigCacheKey(tag byte, id uint64, msg, sig []byte) cacheKey {
	h := sha256.New()
	var hdr [17]byte
	hdr[0] = tag
	binary.BigEndian.PutUint64(hdr[1:9], id)
	binary.BigEndian.PutUint64(hdr[9:17], uint64(len(msg)))
	h.Write(hdr[:])
	h.Write(msg)
	h.Write(sig)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// qcCacheKey hashes the full content of a QC: statement, signer set, and
// every signature (each length-prefixed). Any bit of difference — including
// a different signer order or a padded signature — yields a different key.
func qcCacheKey(qc *types.QC) cacheKey {
	stmt := qc.StatementBytes()
	h := sha256.New()
	var hdr [9]byte
	hdr[0] = cacheTagQC
	binary.BigEndian.PutUint64(hdr[1:9], uint64(len(stmt)))
	h.Write(hdr[:])
	h.Write(stmt)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(qc.Signers)))
	h.Write(n[:])
	for i, id := range qc.Signers {
		var rec [10]byte
		binary.BigEndian.PutUint16(rec[0:2], uint16(id))
		binary.BigEndian.PutUint64(rec[2:10], uint64(len(qc.Sigs[i])))
		h.Write(rec[:])
		h.Write(qc.Sigs[i])
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// NewRegistry creates an empty registry with verification enabled.
func NewRegistry() *Registry {
	return &Registry{
		servers:          make(map[types.ServerID]ed25519.PublicKey),
		clients:          make(map[types.ClientID]ed25519.PublicKey),
		VerifySignatures: true,
	}
}

// GenerateDeployment creates deterministic keys for n servers and c clients,
// returning the shared registry and each party's private key pair.
func GenerateDeployment(seed uint64, n, c int) (*Registry, map[types.ServerID]*KeyPair, map[types.ClientID]*KeyPair) {
	reg := NewRegistry()
	servers := make(map[types.ServerID]*KeyPair, n)
	clients := make(map[types.ClientID]*KeyPair, c)
	for i := 1; i <= n; i++ {
		kp := deterministicKey(seed, domainServer, uint64(i))
		id := types.ServerID(i)
		servers[id] = &kp
		reg.servers[id] = kp.Pub
	}
	for i := 1; i <= c; i++ {
		kp := deterministicKey(seed, domainClient, uint64(i))
		id := types.ClientID(i)
		clients[id] = &kp
		reg.clients[id] = kp.Pub
	}
	return reg, servers, clients
}

// NumServers returns the number of registered servers.
func (r *Registry) NumServers() int { return len(r.servers) }

// VerifyServer checks a server signature over msg.
func (r *Registry) VerifyServer(id types.ServerID, msg, sig []byte) bool {
	if !r.VerifySignatures {
		return len(sig) > 0
	}
	pub, ok := r.servers[id]
	if !ok {
		return false
	}
	if r.cache != nil {
		k := sigCacheKey(cacheTagServer, uint64(id), msg, sig)
		if r.cache.contains(k) {
			return true
		}
		if ed25519.Verify(pub, msg, sig) {
			r.cache.insert(k)
			return true
		}
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// VerifyClient checks a client signature over msg.
func (r *Registry) VerifyClient(id types.ClientID, msg, sig []byte) bool {
	if !r.VerifySignatures {
		return len(sig) > 0
	}
	pub, ok := r.clients[id]
	if !ok {
		return false
	}
	if r.cache != nil {
		k := sigCacheKey(cacheTagClient, uint64(id), msg, sig)
		if r.cache.contains(k) {
			return true
		}
		if ed25519.Verify(pub, msg, sig) {
			r.cache.insert(k)
			return true
		}
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// VerifyQC checks that qc certifies its statement with at least threshold
// distinct, registered signers.
//
// Shape checks come before the threshold check: a QC whose signer and
// signature lists disagree, or that carries an empty signature, is malformed
// regardless of how many signers it claims, and must be rejected even in
// sim mode (where VerifySignatures is false and a padding byte would
// otherwise stand in for a signature).
func (r *Registry) VerifyQC(qc *types.QC, threshold int) error {
	if len(qc.Sigs) != len(qc.Signers) {
		return fmt.Errorf("%s: %d signatures for %d signers", qc.Kind, len(qc.Sigs), len(qc.Signers))
	}
	for i, sig := range qc.Sigs {
		if len(sig) == 0 {
			return fmt.Errorf("%s: empty signature from %d", qc.Kind, qc.Signers[i])
		}
	}
	if qc.Len() < threshold {
		return fmt.Errorf("%s: %d signers, need %d", qc.Kind, qc.Len(), threshold)
	}
	// Cached fact: every signature in this exact QC verified against its
	// statement, with all signers distinct and registered. The fact is
	// threshold-independent — the threshold is re-checked above on every
	// call — so one cache entry serves the same QC at any quorum size.
	var key cacheKey
	useCache := r.cache != nil && r.VerifySignatures
	if useCache {
		key = qcCacheKey(qc)
		if r.cache.contains(key) {
			return nil
		}
	}
	stmt := qc.StatementBytes()
	seen := make(map[types.ServerID]bool, len(qc.Signers))
	for i, id := range qc.Signers {
		if seen[id] {
			return fmt.Errorf("%s: duplicate signer %d", qc.Kind, id)
		}
		seen[id] = true
		if !r.VerifyServer(id, stmt, qc.Sigs[i]) {
			return fmt.Errorf("%s: bad signature from %d", qc.Kind, id)
		}
	}
	if useCache {
		r.cache.insert(key)
	}
	return nil
}

// --- Proof-of-work puzzle (§4.2.2) ------------------------------------------

// The paper requires the hash result to have a prefix of rp zero *bytes*
// (Pr = 2^-8rp). The difficulty unit is configurable here as bits-per-rp so
// that live demos finish in human time; the paper's setting is 8.

// PuzzleSeed derives the puzzle seed from the redeemer's latest txBlock hash
// and the view campaigned for, so work cannot be reused across campaigns.
func PuzzleSeed(txBlockHash types.Digest, vPrime types.View) []byte {
	buf := make([]byte, 0, 40)
	buf = append(buf, txBlockHash[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(vPrime))
	return buf
}

// PuzzleHash computes hr = Hash(seed, nonce) (Algo. 2 line 38).
func PuzzleHash(seed, nonce []byte) types.Digest {
	h := sha256.New()
	h.Write(seed)
	h.Write(nonce)
	var out types.Digest
	h.Sum(out[:0])
	return out
}

// LeadingZeroBits counts the zero-bit prefix of d.
func LeadingZeroBits(d types.Digest) int {
	bits := 0
	for _, b := range d {
		if b == 0 {
			bits += 8
			continue
		}
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if b&mask != 0 {
				return bits
			}
			bits++
		}
	}
	return bits
}

// CheckPrefix reports whether hr satisfies difficulty zeroBits
// (Algo. 2 line 39 / criterion C5). A non-positive difficulty always passes.
func CheckPrefix(hr types.Digest, zeroBits int) bool {
	if zeroBits <= 0 {
		return true
	}
	return LeadingZeroBits(hr) >= zeroBits
}

// SolvePuzzle searches nonces until Hash(seed, nonce) has at least zeroBits
// leading zero bits. It returns the nonce, the hash result, and the number
// of iterations performed. rng drives nonce generation; it may be nil, in
// which case a counter search is used.
func SolvePuzzle(seed []byte, zeroBits int, rng *rand.Rand) (nonce []byte, hr types.Digest, iters uint64) {
	nonce = make([]byte, 8)
	if rng != nil {
		binary.BigEndian.PutUint64(nonce, rng.Uint64())
	}
	for {
		iters++
		hr = PuzzleHash(seed, nonce)
		if CheckPrefix(hr, zeroBits) {
			return nonce, hr, iters
		}
		// Counter increment: deterministic continuation from the random
		// starting point.
		for i := 7; i >= 0; i-- {
			nonce[i]++
			if nonce[i] != 0 {
				break
			}
		}
	}
}

// VerifyPuzzle re-derives hr from (seed, nonce) and checks the difficulty
// prefix. Verification is a single hash (O(1)), matching §4.2.3.
func VerifyPuzzle(seed, nonce []byte, claimed types.Digest, zeroBits int) bool {
	hr := PuzzleHash(seed, nonce)
	return hr == claimed && CheckPrefix(hr, zeroBits)
}

// ExpectedIterations returns the expected number of hash evaluations to find
// a zeroBits-prefix: 2^zeroBits.
func ExpectedIterations(zeroBits int) float64 {
	if zeroBits <= 0 {
		return 1
	}
	f := 1.0
	for i := 0; i < zeroBits; i++ {
		f *= 2
	}
	return f
}
