// Package detset names the package sets the determinism analyzers police.
// It is the single source of truth for which parts of the tree promise
// byte-identical deterministic replay (DESIGN.md §11).
package detset

import "strings"

// Deterministic lists the packages whose observable behaviour must be a pure
// function of their inputs and seeds: the serial protocol state machines, the
// discrete-event simulator, and every layer of the reproducible benchmark
// stack. maporder and walltime apply here. A prefix covers the package and
// all of its subpackages (so "baseline" covers hotstuff, sbft, prosecutor).
const Deterministic = "prestigebft/internal/core," +
	"prestigebft/internal/sim," +
	"prestigebft/internal/consensus," +
	"prestigebft/internal/quorum," +
	"prestigebft/internal/reputation," +
	"prestigebft/internal/ledger," +
	"prestigebft/internal/harness," +
	"prestigebft/internal/scenario," +
	"prestigebft/internal/baseline"

// Serial lists the packages that form the single-threaded consensus core:
// code that runs strictly under the scheduler's one event at a time and must
// never introduce its own concurrency. nogoroutine applies here. The harness
// and scenario layers are deliberately absent — their worker pools are the
// sanctioned concurrency boundary — as is the transport, which owns the real
// network goroutines.
const Serial = "prestigebft/internal/core," +
	"prestigebft/internal/sim," +
	"prestigebft/internal/consensus," +
	"prestigebft/internal/quorum," +
	"prestigebft/internal/reputation," +
	"prestigebft/internal/ledger," +
	"prestigebft/internal/baseline"

// Match reports whether pkgPath falls under any comma-separated prefix in
// set: an exact match or a subpackage of it.
func Match(set, pkgPath string) bool {
	for _, p := range strings.Split(set, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}
