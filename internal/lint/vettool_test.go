package lint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"prestigebft/internal/lint/linttest"
)

// TestVetToolGate is the end-to-end acceptance test for the lint gate: it
// builds cmd/prestige-lint, assembles a throwaway module containing a copy
// of internal/types plus a consensus-core file in the PR 1 shape (effects
// escaping a digest-keyed map loop through types.SortedDigestKeys), and
// runs real `go vet -vettool` over it. The sorted version must pass;
// deleting the SortedDigestKeys call must fail the gate with a maporder
// finding — which is exactly the regression the suite exists to catch.
func TestVetToolGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs go vet; skipped in -short mode")
	}
	root := linttest.RepoRoot(t)
	tmp := t.TempDir()

	tool := filepath.Join(tmp, "prestige-lint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/prestige-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building prestige-lint: %v\n%s", err, out)
	}

	// A throwaway module that reuses the real types package, so the fix
	// site exercises the same SortedDigestKeys the production code calls.
	mod := filepath.Join(tmp, "mod")
	typesDir := filepath.Join(mod, "internal", "types")
	coreDir := filepath.Join(mod, "internal", "core")
	for _, d := range []string{typesDir, coreDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(mod, "go.mod"),
		[]byte("module prestigebft\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srcTypes, err := filepath.Glob(filepath.Join(root, "internal", "types", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range srcTypes {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(typesDir, filepath.Base(src)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	const sorted = `package core

import "prestigebft/internal/types"

// Emit flushes pending digests in canonical order — the PR 1 fix shape.
func Emit(pending map[types.Digest]int, send func(types.Digest)) {
	for _, d := range types.SortedDigestKeys(pending) {
		send(d)
	}
}
`
	// The same function with the SortedDigestKeys call deleted: effects now
	// escape in randomized map order.
	const unsorted = `package core

import "prestigebft/internal/types"

func Emit(pending map[types.Digest]int, send func(types.Digest)) {
	for d := range pending {
		send(d)
	}
}
`

	vet := func(src string) (string, error) {
		if err := os.WriteFile(filepath.Join(coreDir, "core.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = mod
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		return out.String(), err
	}

	if out, err := vet(sorted); err != nil {
		t.Fatalf("gate must pass with SortedDigestKeys in place: %v\n%s", err, out)
	}
	out, err := vet(unsorted)
	if err == nil {
		t.Fatalf("gate must fail once SortedDigestKeys is deleted; it passed:\n%s", out)
	}
	if !strings.Contains(out, "maporder") || !strings.Contains(out, "types.Digest-keyed map") {
		t.Fatalf("expected a maporder finding, got:\n%s", out)
	}
}
