// Package directive parses the two comment directives understood by the
// determinism lint suite:
//
//	//lint:allow <analyzer> <reason>
//	//lint:dispatch <spec> [<spec>...]
//
// An allow directive suppresses diagnostics of the named analyzer on the
// same line or the line directly below it, and MUST carry a non-empty
// reason — an allow without a justification is itself a lint error, which
// is how "zero unjustified suppressions" is enforced mechanically.
//
// A dispatch directive declares the wire-type set a message-dispatch type
// switch must cover; its grammar is owned by the msgswitch analyzer (see
// internal/lint/msgswitch).
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	allowPrefix    = "//lint:allow"
	dispatchPrefix = "//lint:dispatch"
)

// Allow is one parsed `//lint:allow` directive.
type Allow struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
	Line     int // line the directive comment starts on
}

// Problem is a malformed directive (missing analyzer or reason).
type Problem struct {
	Pos     token.Pos
	Message string
}

// Allows extracts every allow directive in file, together with problems for
// malformed ones. Directives inside /* */ blocks are ignored: like all Go
// tool directives, lint directives must be line comments.
func Allows(fset *token.FileSet, file *ast.File) ([]Allow, []Problem) {
	var allows []Allow
	var problems []Problem
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, allowPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:allowfoo — not ours
			}
			fields := strings.Fields(rest)
			line := fset.Position(c.Pos()).Line
			switch {
			case len(fields) == 0:
				problems = append(problems, Problem{Pos: c.Pos(),
					Message: "malformed //lint:allow: missing analyzer name and reason"})
			case len(fields) == 1:
				problems = append(problems, Problem{Pos: c.Pos(),
					Message: "unjustified //lint:allow " + fields[0] + ": a suppression must state its reason"})
			default:
				allows = append(allows, Allow{
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
					Pos:      c.Pos(),
					Line:     line,
				})
			}
		}
	}
	return allows, problems
}

// Dispatch returns the dispatch directive specs attached to the statement
// starting at pos. A directive attaches when it sits on the statement's own
// line, or above it separated only by comment lines (the conventional doc
// comment position). ok is false when no directive is present.
func Dispatch(fset *token.FileSet, file *ast.File, pos token.Pos) (specs []string, ok bool) {
	line := fset.Position(pos).Line
	commentLines := make(map[int]bool)
	for _, cg := range file.Comments {
		start := fset.Position(cg.Pos()).Line
		end := fset.Position(cg.End()).Line
		for l := start; l <= end; l++ {
			commentLines[l] = true
		}
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, dispatchPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, dispatchPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			cline := fset.Position(c.Pos()).Line
			if cline > line {
				continue
			}
			attached := cline == line
			if !attached && cline < line {
				attached = true
				for l := cline + 1; l < line; l++ {
					if !commentLines[l] {
						attached = false
						break
					}
				}
			}
			if attached {
				return strings.Fields(rest), true
			}
		}
	}
	return nil, false
}
