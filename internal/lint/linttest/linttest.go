// Package linttest is the fixture harness for the determinism lint suite —
// a small, offline analogue of golang.org/x/tools' analysistest. A fixture
// is a directory of Go files annotated with trailing `// want "regex"`
// comments; Check type-checks the fixture against the repo's real
// dependencies (export data located by `go list -export`), runs the
// analyzers through lint.Run, and fails the test on any mismatch between
// reported findings and want annotations — in either direction.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"prestigebft/internal/lint"
	"prestigebft/internal/lint/analysis"
)

// RepoRoot walks up from the working directory to the enclosing go.mod.
func RepoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above the test working directory")
		}
		dir = parent
	}
}

var (
	expOnce sync.Once
	expMap  map[string]string
	expErr  error
)

// exportData builds, once per test binary, the import-path → export-file
// map for every package a fixture may import, by asking the go command.
// This is the same information the vet driver receives in its unit config.
func exportData(t *testing.T) map[string]string {
	t.Helper()
	expOnce.Do(func() {
		cmd := exec.Command("go", "list", "-export", "-deps",
			"-f", "{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}",
			"time", "math/rand", "encoding/gob",
			"prestigebft/internal/types")
		cmd.Dir = RepoRoot(t)
		out, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				expErr = fmt.Errorf("go list -export: %v\n%s", err, ee.Stderr)
			} else {
				expErr = fmt.Errorf("go list -export: %v", err)
			}
			return
		}
		expMap = make(map[string]string)
		for _, line := range strings.Split(string(out), "\n") {
			if path, file, ok := strings.Cut(strings.TrimSpace(line), "="); ok {
				expMap[path] = file
			}
		}
	})
	if expErr != nil {
		t.Fatal(expErr)
	}
	return expMap
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expected-diagnostic annotation.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Check runs analyzers over the fixture directory, parsed as a single
// package with import path pkgPath, and verifies findings against the
// fixture's `// want` annotations. pkgPath matters: the deterministic-set
// analyzers only fire on paths under internal/lint/detset's prefixes.
func Check(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}

	exports := exportData(t)
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (add it to linttest's go list set)", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := (&types.Config{Importer: imp}).Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", dir, err)
	}

	findings, err := lint.Run(fset, files, pkg, info, analyzers, false)
	if err != nil {
		t.Fatal(err)
	}

	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				matched := false
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, expr, err)
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re})
					matched = true
				}
				if !matched {
					t.Fatalf("%s: want comment carries no quoted regexp", posn)
				}
			}
		}
	}

finding:
	for _, f := range findings {
		for _, w := range wants {
			if !w.used && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.used = true
				continue finding
			}
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
