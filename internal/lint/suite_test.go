package lint_test

import (
	"testing"

	"prestigebft/internal/lint/linttest"
	"prestigebft/internal/lint/maporder"
	"prestigebft/internal/lint/msgswitch"
	"prestigebft/internal/lint/nogoroutine"
	"prestigebft/internal/lint/walltime"
	"prestigebft/internal/lint/wiremap"
)

// The fixture package path sits under internal/core so the
// deterministic-set analyzers (maporder, walltime, nogoroutine) fire with
// their default -pkgs configuration; wiremap and msgswitch apply
// everywhere and ignore the path.
const fixturePath = "prestigebft/internal/core/lintfixture"

func TestMaporderFixture(t *testing.T) {
	linttest.Check(t, "testdata/maporder", fixturePath, maporder.Analyzer)
}

func TestWalltimeFixture(t *testing.T) {
	linttest.Check(t, "testdata/walltime", fixturePath, walltime.Analyzer)
}

func TestNogoroutineFixture(t *testing.T) {
	linttest.Check(t, "testdata/nogoroutine", fixturePath, nogoroutine.Analyzer)
}

func TestWiremapFixture(t *testing.T) {
	linttest.Check(t, "testdata/wiremap", fixturePath, wiremap.Analyzer)
}

func TestMsgswitchFixture(t *testing.T) {
	linttest.Check(t, "testdata/msgswitch", fixturePath, msgswitch.Analyzer)
}

// TestFixturesUnderFullSuite runs every fixture under all five analyzers at
// once — the way cmd/prestige-lint runs them — to prove no analyzer
// reports surprise findings on another's fixture.
func TestFixturesUnderFullSuite(t *testing.T) {
	all := []string{"maporder", "walltime", "nogoroutine", "wiremap", "msgswitch"}
	for _, dir := range all {
		t.Run(dir, func(t *testing.T) {
			linttest.Check(t, "testdata/"+dir, fixturePath,
				maporder.Analyzer, walltime.Analyzer, nogoroutine.Analyzer,
				wiremap.Analyzer, msgswitch.Analyzer)
		})
	}
}
