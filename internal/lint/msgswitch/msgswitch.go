// Package msgswitch checks that message-dispatch type switches are
// exhaustive over their declared wire-type set, so a newly added protocol
// message cannot silently fall through a replica's OnMessage and be dropped.
//
// A dispatch switch is a type switch over the dispatch interface (default
// prestigebft/internal/types.Message) inside a method named OnMessage that
// has no `default` clause — exactly the shape where an unhandled message
// vanishes without a trace. (A switch WITH a default clause handles unknown
// types explicitly and is exempt.)
//
// Every dispatch switch must declare the wire set it promises to cover with
// a directive directly above it:
//
//	//lint:dispatch prestigebft/internal/types
//	    every exported implementer of the interface in that package
//	//lint:dispatch local
//	    every exported implementer declared in the switch's own package
//	//lint:dispatch prestigebft/internal/types=Prop,Compt
//	    exactly the named implementers from that package
//
// Specs combine (space-separated), e.g. a baseline replica that speaks its
// own messages plus the client-facing subset of the core set:
//
//	//lint:dispatch local prestigebft/internal/types=Prop,Compt
//
// The declared set is then checked both ways: a case type missing from the
// switch is an error, and a directive naming a type that does not exist or
// does not implement the interface is an error (catching typos and removals).
package msgswitch

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"prestigebft/internal/lint/analysis"
	"prestigebft/internal/lint/directive"
)

// Analyzer is the msgswitch pass.
var Analyzer = &analysis.Analyzer{
	Name: "msgswitch",
	Doc: "checks message-dispatch type switches in OnMessage are exhaustive over the " +
		"//lint:dispatch-declared wire-type set",
	Run: run,
}

var ifaceName, methodName *string

func init() {
	ifaceName = Analyzer.Flags.String("iface", "prestigebft/internal/types.Message",
		"fully-qualified dispatch interface")
	methodName = Analyzer.Flags.String("method", "OnMessage",
		"method name whose type switches are dispatch switches")
}

func run(pass *analysis.Pass) error {
	iface := resolveInterface(pass.Pkg, *ifaceName)
	if iface == nil {
		return nil // package doesn't link against the dispatch interface
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != *methodName || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSwitchStmt)
				if !ok {
					return true
				}
				checkSwitch(pass, file, iface, ts)
				return true
			})
		}
	}
	return nil
}

// checkSwitch validates one type switch inside an OnMessage body.
func checkSwitch(pass *analysis.Pass, file *ast.File, iface *types.Interface, ts *ast.TypeSwitchStmt) {
	subj := switchSubject(ts)
	if subj == nil {
		return
	}
	st := pass.TypesInfo.TypeOf(subj)
	if st == nil || !types.Identical(st, ifaceNamedType(pass.Pkg, *ifaceName)) {
		return
	}
	// A default clause handles unknown messages explicitly: exempt.
	for _, clause := range ts.Body.List {
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			return
		}
	}

	specs, ok := directive.Dispatch(pass.Fset, file, ts.Pos())
	if !ok {
		pass.Reportf(ts.Pos(), "message dispatch switch must declare its wire set with a "+
			"//lint:dispatch directive (see internal/lint/msgswitch)")
		return
	}

	required := make(map[*types.TypeName]bool)
	for _, spec := range specs {
		addSpec(pass, iface, ts, spec, required)
	}
	if len(required) == 0 {
		return // spec errors already reported
	}

	covered := make(map[*types.TypeName]bool)
	for _, clause := range ts.Body.List {
		cc := clause.(*ast.CaseClause)
		for _, e := range cc.List {
			t := pass.TypesInfo.TypeOf(e)
			if tn := namedTypeName(t); tn != nil {
				covered[tn] = true
			}
		}
	}

	var missing []string
	for tn := range required {
		if !covered[tn] {
			missing = append(missing, "*"+tn.Pkg().Name()+"."+tn.Name())
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		pass.Reportf(ts.Pos(), "dispatch switch not exhaustive over its declared wire set: "+
			"missing %s — an unhandled message silently falls through", strings.Join(missing, ", "))
	}
}

// addSpec resolves one //lint:dispatch spec into required type names.
func addSpec(pass *analysis.Pass, iface *types.Interface, ts *ast.TypeSwitchStmt, spec string, required map[*types.TypeName]bool) {
	pkgPath, names, hasNames := strings.Cut(spec, "=")
	var scopePkg *types.Package
	if pkgPath == "local" {
		scopePkg = pass.Pkg
	} else {
		scopePkg = findPackage(pass.Pkg, pkgPath)
	}
	if scopePkg == nil {
		pass.Reportf(ts.Pos(), "//lint:dispatch names package %q, which this package does not import", pkgPath)
		return
	}
	if !hasNames {
		for _, tn := range implementers(scopePkg, iface) {
			required[tn] = true
		}
		return
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		obj := scopePkg.Scope().Lookup(name)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			pass.Reportf(ts.Pos(), "//lint:dispatch names %s.%s, which is not a type in %s",
				scopePkg.Name(), name, scopePkg.Path())
			continue
		}
		if !implementsEither(tn.Type(), iface) {
			pass.Reportf(ts.Pos(), "//lint:dispatch names %s.%s, which does not implement the dispatch interface",
				scopePkg.Name(), name)
			continue
		}
		required[tn] = true
	}
}

// implementers returns the exported non-interface named types in pkg whose
// value or pointer type implements iface, in declaration-scope name order.
func implementers(pkg *types.Package, iface *types.Interface) []*types.TypeName {
	var out []*types.TypeName
	scope := pkg.Scope()
	names := scope.Names() // already sorted
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		if types.IsInterface(tn.Type()) {
			continue
		}
		if implementsEither(tn.Type(), iface) {
			out = append(out, tn)
		}
	}
	return out
}

func implementsEither(t types.Type, iface *types.Interface) bool {
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// switchSubject extracts the switched expression x from `switch v := x.(type)`
// or `switch x.(type)`.
func switchSubject(ts *ast.TypeSwitchStmt) ast.Expr {
	switch a := ts.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
	}
	return nil
}

// namedTypeName unwraps pointers and returns t's *types.TypeName, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// resolveInterface finds the named dispatch interface's underlying
// *types.Interface from pkg or its transitive imports.
func resolveInterface(pkg *types.Package, qualified string) *types.Interface {
	t := ifaceNamedType(pkg, qualified)
	if t == nil {
		return nil
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// ifaceNamedType returns the named type for "pkgpath.Name" visible from pkg.
func ifaceNamedType(pkg *types.Package, qualified string) types.Type {
	i := strings.LastIndex(qualified, ".")
	if i < 0 {
		return nil
	}
	path, name := qualified[:i], qualified[i+1:]
	target := findPackage(pkg, path)
	if target == nil {
		return nil
	}
	tn, ok := target.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	return tn.Type()
}

// findPackage locates path among pkg and its transitive imports.
func findPackage(pkg *types.Package, path string) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == path {
				return imp
			}
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}
