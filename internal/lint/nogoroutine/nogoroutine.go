// Package nogoroutine bans `go` statements and unguarded (blocking) channel
// operations inside the serial consensus core. Replica state machines run
// strictly one event at a time under the scheduler; a goroutine or a blocking
// channel op there introduces OS-scheduler-dependent interleaving that no
// seed can reproduce. Concurrency belongs to the sanctioned boundaries —
// the harness worker pool and the TCP transport — which are outside the
// checked package set.
//
// A channel operation counts as guarded only when it is the communication
// clause of a `select` that has a `default` case (a non-blocking poll).
// A `select` without `default` is itself flagged: it blocks.
package nogoroutine

import (
	"go/ast"
	"go/token"
	"go/types"

	"prestigebft/internal/lint/analysis"
	"prestigebft/internal/lint/detset"
)

// Analyzer is the nogoroutine pass.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc: "bans go statements and blocking channel operations in the serial consensus core; " +
		"concurrency belongs to the harness worker pool and the transport",
	Run: run,
}

var pkgs *string
var tests *bool

func init() {
	pkgs = Analyzer.Flags.String("pkgs", detset.Serial, "comma-separated package prefixes the check applies to")
	tests = Analyzer.Flags.Bool("tests", false, "also check _test.go files")
}

func run(pass *analysis.Pass) error {
	if !detset.Match(*pkgs, pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if !*tests && analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		// Channel ops that appear as a select's comm clause are covered at
		// the select level: with a default case they are non-blocking polls
		// (fine), without one the select itself is flagged once — either
		// way the individual op must not re-report. Collect them first so
		// the main walk can skip them.
		guarded := make(map[ast.Node]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, clause := range sel.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					if m != nil {
						guarded[m] = true
					}
					return true
				})
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in the serial consensus core: "+
					"replica logic runs one event at a time under the scheduler")
			case *ast.SelectStmt:
				hasDefault := false
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					pass.Reportf(n.Pos(), "blocking select in the serial consensus core: "+
						"add a default case or move the concurrency behind the transport/harness boundary")
				}
			case *ast.SendStmt:
				if !guarded[n] {
					pass.Reportf(n.Pos(), "blocking channel send in the serial consensus core")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !guarded[n] {
					pass.Reportf(n.Pos(), "blocking channel receive in the serial consensus core")
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel in the serial consensus core: "+
							"it blocks until the channel closes")
					}
				}
			}
			return true
		})
	}
	return nil
}
