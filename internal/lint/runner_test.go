package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"prestigebft/internal/lint"
)

// runSrc type-checks one in-memory file as a serial-core package and runs
// the full suite over it. The sources need no imports, which keeps these
// tests independent of export data.
func runSrc(t *testing.T, src string, strict bool) []lint.Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("prestigebft/internal/core/lintfixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(fset, []*ast.File{f}, pkg, info, lint.Analyzers(), strict)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func messages(fs []lint.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestSuppressionOnLineAbove(t *testing.T) {
	findings := runSrc(t, `package fixture

func spawn(f func()) {
	//lint:allow nogoroutine fixture needs a goroutine on purpose
	go f()
}
`, true)
	if len(findings) != 0 {
		t.Fatalf("expected suppression, got:\n%s", messages(findings))
	}
}

func TestSuppressionOnSameLine(t *testing.T) {
	findings := runSrc(t, `package fixture

func spawn(f func()) {
	go f() //lint:allow nogoroutine fixture needs a goroutine on purpose
}
`, true)
	if len(findings) != 0 {
		t.Fatalf("expected suppression, got:\n%s", messages(findings))
	}
}

func TestSuppressionWrongAnalyzerDoesNotApply(t *testing.T) {
	findings := runSrc(t, `package fixture

func spawn(f func()) {
	//lint:allow maporder wrong analyzer name
	go f()
}
`, false)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "go statement") {
		t.Fatalf("expected the go-statement finding to survive, got:\n%s", messages(findings))
	}
}

func TestUnjustifiedAllowIsAFinding(t *testing.T) {
	findings := runSrc(t, `package fixture

func spawn(f func()) {
	//lint:allow nogoroutine
	go f()
}
`, true)
	// The reason-less allow must not suppress, and must itself be reported.
	var sawDiag, sawProblem bool
	for _, f := range findings {
		if strings.Contains(f.Message, "go statement") {
			sawDiag = true
		}
		if strings.Contains(f.Message, "unjustified //lint:allow nogoroutine") {
			sawProblem = true
		}
	}
	if !sawDiag || !sawProblem {
		t.Fatalf("expected surviving diagnostic plus unjustified-allow finding, got:\n%s", messages(findings))
	}
}

func TestStaleAllowIsAFinding(t *testing.T) {
	findings := runSrc(t, `package fixture

//lint:allow nogoroutine nothing here to suppress
var x = 1
`, true)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "stale //lint:allow nogoroutine") {
		t.Fatalf("expected exactly the stale-allow finding, got:\n%s", messages(findings))
	}
}

func TestUnknownAnalyzerAllowIsAFinding(t *testing.T) {
	findings := runSrc(t, `package fixture

//lint:allow nosuchanalyzer reasons
var x = 1
`, true)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, `unknown analyzer "nosuchanalyzer"`) {
		t.Fatalf("expected exactly the unknown-analyzer finding, got:\n%s", messages(findings))
	}
}

func TestNonStrictLeavesDirectivesUnaudited(t *testing.T) {
	findings := runSrc(t, `package fixture

//lint:allow nogoroutine unused here, fine in single-analyzer runs
var x = 1
`, false)
	if len(findings) != 0 {
		t.Fatalf("non-strict run should not audit directives, got:\n%s", messages(findings))
	}
}
