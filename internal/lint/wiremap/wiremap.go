// Package wiremap flags map-typed fields reachable from gob-registered wire
// structs. encoding/gob serializes maps in Go's randomized iteration order,
// so two encodings of the same value differ run to run — live-mode byte
// accounting, payload hashing, and any cross-run wire comparison silently
// lose reproducibility, and a map that one day feeds a signature or digest
// becomes a protocol bug.
//
// A registered type escapes the check when it (or the nested struct holding
// the map) implements a canonical codec — gob.GobEncoder/GobDecoder or
// encoding.BinaryMarshaler/BinaryUnmarshaler — because gob then delegates to
// the custom, order-controlled encoding. Fields gob cannot encode at all
// (unexported) are ignored.
package wiremap

import (
	"go/ast"
	"go/types"
	"strings"

	"prestigebft/internal/lint/analysis"
)

// Analyzer is the wiremap pass.
var Analyzer = &analysis.Analyzer{
	Name: "wiremap",
	Doc: "flags map-typed fields on gob-registered wire structs whose encoding order " +
		"is nondeterministic; fix with a canonical GobEncode or a sorted slice",
	Run: run,
}

var registerFns *string

func init() {
	registerFns = Analyzer.Flags.String("registerfns",
		"encoding/gob.Register,encoding/gob.RegisterName,prestigebft/internal/transport.RegisterWireTypes",
		"comma-separated fully-qualified functions whose arguments are wire types")
}

func run(pass *analysis.Pass) error {
	fns := make(map[string]bool)
	for _, f := range strings.Split(*registerFns, ",") {
		fns[strings.TrimSpace(f)] = true
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !fns[fn.Pkg().Path()+"."+fn.Name()] {
				return true
			}
			args := call.Args
			if fn.Name() == "RegisterName" && len(args) == 2 {
				args = args[1:] // (name string, value any)
			}
			if call.Ellipsis.IsValid() {
				return true // register(slice...) — contents not statically known
			}
			for _, arg := range args {
				t := pass.TypesInfo.TypeOf(arg)
				if t == nil {
					continue
				}
				seen := make(map[*types.Named]bool)
				findMaps(t, displayType(t), seen, func(fieldPath, mapType string) {
					pass.Reportf(arg.Pos(),
						"gob-registered wire type %s carries map field %s (%s): gob encodes maps "+
							"in nondeterministic order; add a canonical GobEncode/GobDecode or use a sorted slice",
						displayType(t), fieldPath, mapType)
				})
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the static callee of call, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// findMaps walks the gob-encodable shape of t and reports every reachable
// map field. It prunes at types with a custom canonical codec, at interfaces
// (their dynamic types are checked at their own registration), and at
// unexported fields (gob skips them).
func findMaps(t types.Type, path string, seen map[*types.Named]bool, report func(fieldPath, mapType string)) {
	switch tt := t.(type) {
	case *types.Pointer:
		findMaps(tt.Elem(), path, seen, report)
		return
	case *types.Slice:
		findMaps(tt.Elem(), path+"[]", seen, report)
		return
	case *types.Array:
		findMaps(tt.Elem(), path+"[]", seen, report)
		return
	case *types.Map:
		report(path, types.TypeString(tt, shortQualifier))
		return
	case *types.Named:
		if seen[tt] {
			return // cycle on the current path
		}
		if hasCanonicalCodec(tt) {
			return
		}
		// The guard is path-local (backtracking), not global: the same
		// named type reached through two different fields must report its
		// maps under both paths.
		seen[tt] = true
		findMaps(tt.Underlying(), path, seen, report)
		delete(seen, tt)
		return
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			f := tt.Field(i)
			if !f.Exported() {
				continue
			}
			fp := path + "." + f.Name()
			if f.Embedded() {
				fp = path + "." + f.Name() + " (embedded)"
			}
			findMaps(f.Type(), fp, seen, report)
		}
		return
	}
	// Basic types, interfaces, chans, funcs: nothing to walk.
}

// hasCanonicalCodec reports whether t provides a custom gob encoding that
// controls its own byte order: GobEncode+GobDecode or
// MarshalBinary+UnmarshalBinary on the value or pointer method set.
func hasCanonicalCodec(t types.Type) bool {
	has := func(name string) bool {
		ms := types.NewMethodSet(types.NewPointer(t))
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
		return false
	}
	return (has("GobEncode") && has("GobDecode")) ||
		(has("MarshalBinary") && has("UnmarshalBinary"))
}

// displayType renders t compactly (package name, not full path).
func displayType(t types.Type) string {
	return types.TypeString(t, shortQualifier)
}

func shortQualifier(p *types.Package) string { return p.Name() }
