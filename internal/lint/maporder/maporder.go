// Package maporder flags `range` statements over identity-keyed maps in
// deterministic packages. Go randomizes map iteration order per run, so any
// effect that escapes such a loop — message emission, RNG consumption, slice
// append, timer arming — breaks byte-identical replay. PR 1 found three real
// protocol bugs of exactly this shape by hand; this analyzer makes the rule
// machine-checked.
//
// A flagged loop has three ways out:
//
//  1. iterate a sorted key slice (types.SortedDigestKeys / SortedServerIDs);
//  2. restrict the body to an order-insensitive reduction the analyzer can
//     prove (integer counters, per-key writes into another map, deletes);
//  3. `//lint:allow maporder <reason>` when order provably cannot escape in
//     a way the analyzer is too weak to see.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"prestigebft/internal/lint/analysis"
	"prestigebft/internal/lint/detset"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range over digest/server/client-keyed maps in deterministic packages " +
		"unless the loop body is a provably order-insensitive reduction",
	Run: run,
}

var pkgs, keyPkg, keyTypes *string
var tests *bool

func init() {
	pkgs = Analyzer.Flags.String("pkgs", detset.Deterministic, "comma-separated package prefixes the check applies to")
	keyPkg = Analyzer.Flags.String("keypkg", "prestigebft/internal/types", "package defining the identity key types")
	keyTypes = Analyzer.Flags.String("keytypes", "Digest,ServerID,ClientID,View,SeqNum", "identity key type names within -keypkg")
	tests = Analyzer.Flags.Bool("tests", false, "also check _test.go files")
}

func run(pass *analysis.Pass) error {
	if !detset.Match(*pkgs, pass.Pkg.Path()) {
		return nil
	}
	keys := make(map[string]bool)
	for _, k := range strings.Split(*keyTypes, ",") {
		keys[strings.TrimSpace(k)] = true
	}
	for _, file := range pass.Files {
		if !*tests && analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			keyName, ok := identityKeyedMap(pass.TypesInfo.TypeOf(rs.X), *keyPkg, keys)
			if !ok {
				return true
			}
			if orderInsensitiveBody(pass.TypesInfo, rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over %s-keyed map in a deterministic package: iterate sorted keys "+
					"(e.g. types.SortedDigestKeys) or keep the body an order-insensitive reduction",
				keyName)
			return true
		})
	}
	return nil
}

// identityKeyedMap reports whether t (possibly behind pointers) is a map
// keyed by one of the identity types, returning the key type's display name.
func identityKeyedMap(t types.Type, keyPkgPath string, keys map[string]bool) (string, bool) {
	if t == nil {
		return "", false
	}
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return "", false
	}
	named, ok := m.Key().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != keyPkgPath || !keys[obj.Name()] {
		return "", false
	}
	return obj.Pkg().Name() + "." + obj.Name(), true
}

// orderInsensitiveBody reports whether the loop body is a reduction whose
// final state is the same for every iteration order. The proof is syntactic
// and deliberately conservative; the allowed forms are:
//
//   - integer counters: x++, x--, x += e, x -= e, x |= e, x &= e, x ^= e
//     (floating-point accumulation is NOT allowed: float addition is not
//     associative, so its rounding depends on iteration order);
//   - boolean absorption: x = x || e, x = x && e;
//   - per-key slot writes and updates: m2[k] = e or m2[k] op= e, where k is
//     the range key variable and e reads no indexed state — each iteration
//     touches a distinct slot exactly once, so even non-associative
//     operators (float /=) cannot observe iteration order;
//   - delete(m2, e);
//   - if/else whose branches recursively satisfy the same rules;
//   - continue (but not break or return, which make the set of processed
//     elements order-dependent).
//
// Every expression involved must be effect-free: no calls (except len/cap/
// min/max), no channel receives, no function literals.
func orderInsensitiveBody(info *types.Info, rs *ast.RangeStmt) bool {
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok && rs.Tok == token.DEFINE {
		keyObj = info.Defs[id]
	}
	return stmtsInsensitive(info, rs.Body.List, keyObj)
}

func stmtsInsensitive(info *types.Info, stmts []ast.Stmt, keyObj types.Object) bool {
	for _, s := range stmts {
		if !stmtInsensitive(info, s, keyObj) {
			return false
		}
	}
	return true
}

func stmtInsensitive(info *types.Info, s ast.Stmt, keyObj types.Object) bool {
	switch s := s.(type) {
	case *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.IncDecStmt:
		return integerType(info.TypeOf(s.X)) && effectFree(info, s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		if !effectFree(info, lhs) || !effectFree(info, rhs) {
			return false
		}
		// Per-key slot write or update: m2[k] op= e. Each iteration touches a
		// distinct slot exactly once, so ANY operator is order-insensitive —
		// even float division — provided e cannot read slots written by other
		// iterations (conservatively: e contains no indexing at all).
		if ix, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
			if id, ok := ix.Index.(*ast.Ident); ok && info.Uses[id] == keyObj && indexFree(rhs) {
				return true
			}
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return integerType(info.TypeOf(lhs))
		case token.ASSIGN:
			// Boolean absorption: x = x || e, x = x && e.
			if be, ok := rhs.(*ast.BinaryExpr); ok && (be.Op == token.LOR || be.Op == token.LAND) {
				if lid, ok := lhs.(*ast.Ident); ok {
					if rid, ok := be.X.(*ast.Ident); ok && info.Uses[rid] == info.ObjectOf(lid) {
						return true
					}
				}
			}
			return false
		}
		return false
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				for _, a := range call.Args {
					if !effectFree(info, a) {
						return false
					}
				}
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil || !effectFree(info, s.Cond) {
			return false
		}
		if !stmtsInsensitive(info, s.Body.List, keyObj) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return stmtsInsensitive(info, e.List, keyObj)
		case *ast.IfStmt:
			return stmtInsensitive(info, e, keyObj)
		}
		return false
	}
	return false
}

// indexFree reports whether e contains no index expression — the cheap way
// to prove a slot-update rhs cannot read back what other iterations wrote.
func indexFree(e ast.Expr) bool {
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.IndexExpr); ok {
			free = false
			return false
		}
		return free
	})
	return free
}

func integerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// effectFree reports whether evaluating e cannot have side effects and does
// not call user code: no calls except the pure builtins, no receives, no
// function literals.
func effectFree(info *types.Info, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !pureBuiltinCall(info, n) {
				pure = false
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return pure
	})
	return pure
}

func pureBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	// Type conversions are pure (their operands are walked separately).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	switch id.Name {
	case "len", "cap", "min", "max":
		return true
	}
	return false
}
