// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, just large enough to host the
// determinism lint suite (internal/lint/...). The repo builds offline, so it
// cannot vendor x/tools; the subset here — an Analyzer with a Run function
// over a type-checked Pass that reports position-anchored Diagnostics — is
// API-compatible in spirit, and cmd/prestige-lint drives it through the same
// `go vet -vettool` unit-checker protocol the real multichecker uses, so a
// future migration to x/tools is a mechanical import swap.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppression comments.
	Name string

	// Doc is the one-paragraph description shown by `prestige-lint -help`.
	Doc string

	// Flags holds analyzer-specific configuration. The driver registers each
	// flag as `-<analyzer>.<flag>` on its own flag set.
	Flags flag.FlagSet

	// Run applies the check to a single type-checked package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns suppression filtering
	// and output formatting; analyzers just report everything they find.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// IsTestFile reports whether file was parsed from a _test.go file. The
// determinism analyzers skip test files by default (each has a -tests flag):
// tests routinely range over result maps to assert on every entry, or sleep
// real time to exercise the live stack, without feeding the committed
// benchmark trajectory.
func IsTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}
