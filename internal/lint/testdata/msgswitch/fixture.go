// Fixture for the msgswitch analyzer: every default-less type switch over
// the dispatch interface inside an OnMessage method must declare its wire
// set with //lint:dispatch and cover it exhaustively.
package fixture

import "prestigebft/internal/types"

// LocalPing is a package-local wire message, for the `local` spec.
type LocalPing struct{}

func (*LocalPing) Type() string  { return "ping" }
func (*LocalPing) WireSize() int { return 0 }

type undeclared struct{}

func (undeclared) OnMessage(msg types.Message) {
	switch msg.(type) { // want `must declare its wire set`
	case *types.Prop:
	}
}

type incomplete struct{}

func (incomplete) OnMessage(msg types.Message) {
	//lint:dispatch prestigebft/internal/types=Prop,Compt
	switch msg.(type) { // want `missing \*types\.Compt`
	case *types.Prop:
	}
}

type complete struct{}

func (complete) OnMessage(msg types.Message) {
	//lint:dispatch prestigebft/internal/types=Prop,Compt
	switch msg.(type) {
	case *types.Prop:
	case *types.Compt:
	}
}

type localSet struct{}

func (localSet) OnMessage(msg types.Message) {
	//lint:dispatch local prestigebft/internal/types=Prop
	switch msg.(type) {
	case *LocalPing:
	case *types.Prop:
	}
}

type localMissing struct{}

func (localMissing) OnMessage(msg types.Message) {
	//lint:dispatch local
	switch msg.(type) { // want `missing \*fixture\.LocalPing`
	case *types.Prop:
	}
}

type hasDefault struct{}

// A default clause handles unknown messages explicitly: exempt, no
// directive required.
func (hasDefault) OnMessage(msg types.Message) {
	switch msg.(type) {
	case *types.Prop:
	default:
	}
}

type typoSpec struct{}

func (typoSpec) OnMessage(msg types.Message) {
	//lint:dispatch prestigebft/internal/types=NotAType
	switch msg.(type) { // want `is not a type`
	case *types.Prop:
	}
}

type otherMethod struct{}

// Not named OnMessage: outside the analyzer's anchor, no directive needed.
func (otherMethod) Handle(msg types.Message) {
	switch msg.(type) {
	case *types.Prop:
	}
}
