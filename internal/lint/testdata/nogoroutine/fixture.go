// Fixture for the nogoroutine analyzer: goroutines and blocking channel
// operations are flagged in the serial core; non-blocking polls
// (select-with-default) are the only sanctioned channel use.
package fixture

func spawn(f func()) {
	go f() // want `go statement in the serial consensus core`
}

func send(ch chan int) {
	ch <- 1 // want `blocking channel send`
}

func recv(ch chan int) int {
	return <-ch // want `blocking channel receive`
}

func blockingSelect(a, b chan int) int {
	select { // want `blocking select`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

func tryPush(ch chan int, v int) bool {
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

func drain(ch chan int) int {
	sum := 0
	for v := range ch { // want `range over channel`
		sum += v
	}
	return sum
}
