// Fixture for the wiremap analyzer: gob-registered types with reachable
// map fields are flagged unless a canonical codec takes over the encoding.
package fixture

import "encoding/gob"

type BadMsg struct {
	Tallies map[string]int
}

type Inner struct {
	Scores map[int]int
}

type NestedBad struct {
	In    Inner
	Items []Inner
}

// Canonical controls its own byte order, so its map never reaches gob.
type Canonical struct {
	Scores map[int]int
}

func (c Canonical) GobEncode() ([]byte, error) { return nil, nil }
func (c *Canonical) GobDecode([]byte) error    { return nil }

type GoodMsg struct {
	C       Canonical
	Name    string
	private map[string]int // unexported: gob skips it
}

// Linked exercises the cycle guard: self-referential but map-free.
type Linked struct {
	Next *Linked
	Val  int
}

func register() {
	gob.Register(BadMsg{})    // want `carries map field fixture\.BadMsg\.Tallies`
	gob.Register(NestedBad{}) // want `fixture\.NestedBad\.In\.Scores` `fixture\.NestedBad\.Items\[\]\.Scores`
	gob.Register(GoodMsg{})
	gob.Register(Linked{})
	gob.RegisterName("bad", BadMsg{}) // want `carries map field fixture\.BadMsg\.Tallies`
}
