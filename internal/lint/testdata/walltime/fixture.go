// Fixture for the walltime analyzer: wall-clock observation and global
// randomness are flagged; seeded generators and time values are not.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now observes the wall clock`
	return time.Since(t0) // want `time\.Since observes the wall clock`
}

func sleeping() {
	time.Sleep(time.Millisecond) // want `time\.Sleep observes the wall clock`
}

func timer(f func()) {
	time.AfterFunc(time.Second, f) // want `time\.AfterFunc observes the wall clock`
}

func globalRand() int {
	return rand.Int() // want `rand\.Int draws from the process-global random source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `rand\.Shuffle draws from the process-global random source`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func seeded(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63() // methods on a seeded *rand.Rand are fine
}

func timeValues(d time.Duration) time.Duration {
	return d + time.Millisecond // Duration arithmetic never reads the clock
}
