// Fixture for the maporder analyzer: flagged loops carry want annotations;
// everything else is an order-insensitive reduction (or sorted iteration)
// the analyzer must NOT flag.
package fixture

import "prestigebft/internal/types"

func effectEscapes(m map[types.Digest]int, sink func(types.Digest)) {
	for d := range m { // want `range over types\.Digest-keyed map`
		sink(d)
	}
}

func appendEscapes(m map[types.SeqNum]int) []types.SeqNum {
	var out []types.SeqNum
	for seq := range m { // want `range over types\.SeqNum-keyed map`
		out = append(out, seq)
	}
	return out
}

func floatAccumulation(m map[types.ServerID]float64) float64 {
	var s float64
	for _, v := range m { // want `range over types\.ServerID-keyed map`
		s += v // float addition is not associative: rounding depends on order
	}
	return s
}

func sortedIteration(m map[types.Digest]int, sink func(types.Digest)) {
	for _, d := range types.SortedDigestKeys(m) {
		sink(d)
	}
}

func sortedKeys(m map[types.SeqNum]int, sink func(types.SeqNum)) {
	for _, seq := range types.SortedKeys(m) {
		sink(seq)
	}
}

func integerSum(m map[types.ServerID]int64) int64 {
	var n int64
	for _, v := range m {
		n += v
	}
	return n
}

func counting(m map[types.ServerID]int64) int {
	count := 0
	for _, v := range m {
		if v > 0 {
			count++
		}
	}
	return count
}

func boolAbsorption(m map[types.SeqNum]bool) bool {
	any := false
	for _, v := range m {
		any = any || v
	}
	return any
}

func perKeyWrite(m map[types.ServerID]int64) map[types.ServerID]int64 {
	out := make(map[types.ServerID]int64, len(m))
	for id, v := range m {
		out[id] = v * 2
	}
	return out
}

func perKeyCompound(m map[types.ServerID]float64, total int) {
	for id := range m {
		m[id] /= float64(total)
	}
}

func perKeyReadBack(m, other map[types.ServerID]int64) {
	for id := range m { // want `range over types\.ServerID-keyed map`
		m[id] = other[id] // indexed read: could observe other iterations' writes
	}
}

func deletion(m map[types.SeqNum]int, base types.SeqNum) {
	for seq := range m {
		if seq <= base {
			delete(m, seq)
		}
	}
}

func justified(m map[types.View]int, sink func(types.View)) {
	//lint:allow maporder fixture demonstrates a justified suppression
	for v := range m {
		sink(v)
	}
}

func notIdentityKeyed(m map[string]int, sink func(string)) {
	for s := range m {
		sink(s)
	}
}
