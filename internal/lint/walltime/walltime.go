// Package walltime bans wall-clock observation and global (process-seeded)
// randomness in deterministic packages. Simulated time must come from the
// sim.Scheduler (the `now` parameter threaded through every protocol entry
// point), and randomness from a seeded per-node *rand.Rand — time.Now or the
// global math/rand source would make two runs of the same seed diverge.
//
// Banned: time.Now/Since/Until/Sleep/After/AfterFunc/Tick/NewTimer/NewTicker
// and every package-level math/rand (and math/rand/v2) function that draws
// from the process-wide source. Constructing seeded generators —
// rand.New(rand.NewSource(seed)) and friends — stays legal, as do
// time.Duration/time.Time values themselves.
package walltime

import (
	"go/ast"
	"go/types"

	"prestigebft/internal/lint/analysis"
	"prestigebft/internal/lint/detset"
)

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "bans wall-clock reads (time.Now etc.) and global math/rand in deterministic packages; " +
		"time comes from sim.Scheduler, randomness from seeded per-node RNGs",
	Run: run,
}

var pkgs *string
var tests *bool

func init() {
	pkgs = Analyzer.Flags.String("pkgs", detset.Deterministic, "comma-separated package prefixes the check applies to")
	tests = Analyzer.Flags.Bool("tests", false, "also check _test.go files")
}

// bannedTime are the package time functions that observe or wait on the wall
// clock.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand are the math/rand package-level functions that do NOT touch the
// global source: constructors for explicitly seeded generators.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !detset.Match(*pkgs, pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if !*tests && analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Signature().Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Int63n) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(id.Pos(),
						"time.%s observes the wall clock in a deterministic package: "+
							"take simulated time from the scheduler's `now` parameter", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(id.Pos(),
						"%s.%s draws from the process-global random source in a deterministic package: "+
							"use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
