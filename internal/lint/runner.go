// Package lint assembles the determinism lint suite: the five analyzers that
// enforce the simulator's reproducibility contract (DESIGN.md §11), plus the
// shared runner that applies //lint:allow suppression and polices the
// directives themselves. cmd/prestige-lint drives this package through the
// `go vet -vettool` protocol; the analysistest harness drives it in-process.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"prestigebft/internal/lint/analysis"
	"prestigebft/internal/lint/directive"
	"prestigebft/internal/lint/maporder"
	"prestigebft/internal/lint/msgswitch"
	"prestigebft/internal/lint/nogoroutine"
	"prestigebft/internal/lint/walltime"
	"prestigebft/internal/lint/wiremap"
)

// Analyzers returns the full determinism suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		walltime.Analyzer,
		nogoroutine.Analyzer,
		wiremap.Analyzer,
		msgswitch.Analyzer,
	}
}

// Finding is one post-suppression diagnostic, resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies the analyzers to one type-checked package and returns the
// surviving findings, ordered by position.
//
// A diagnostic is suppressed by a `//lint:allow <analyzer> <reason>` comment
// on the diagnostic's line or the line directly above it. When
// strictDirectives is set (the full-suite driver), the directives themselves
// are audited: a malformed or reason-less allow, an allow naming an analyzer
// not in the suite, and an allow that suppresses nothing are all findings —
// so stale or unjustified suppressions cannot accumulate. Single-analyzer
// runs (unit tests) leave strictDirectives off, since an allow for a
// different analyzer is then legitimately unused.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	analyzers []*analysis.Analyzer, strictDirectives bool) ([]Finding, error) {

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// fileKey → line → allow indices; one shared slice tracks usage.
	var allows []directive.Allow
	var problems []directive.Problem
	type lineKey struct {
		file string
		line int
	}
	allowAt := make(map[lineKey][]int)
	for _, f := range files {
		as, ps := directive.Allows(fset, f)
		problems = append(problems, ps...)
		for _, a := range as {
			idx := len(allows)
			allows = append(allows, a)
			allowAt[lineKey{fset.Position(a.Pos).Filename, a.Line}] = append(
				allowAt[lineKey{fset.Position(a.Pos).Filename, a.Line}], idx)
		}
	}
	used := make([]bool, len(allows))

	var findings []Finding
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	diag:
		for _, d := range diags {
			posn := fset.Position(d.Pos)
			for _, line := range []int{posn.Line, posn.Line - 1} {
				for _, idx := range allowAt[lineKey{posn.Filename, line}] {
					if allows[idx].Analyzer == a.Name {
						used[idx] = true
						continue diag
					}
				}
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
		}
	}

	if strictDirectives {
		for _, p := range problems {
			findings = append(findings, Finding{Analyzer: "directive", Pos: fset.Position(p.Pos), Message: p.Message})
		}
		for i, a := range allows {
			switch {
			case !known[a.Analyzer]:
				findings = append(findings, Finding{Analyzer: "directive", Pos: fset.Position(a.Pos),
					Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", a.Analyzer)})
			case !used[i]:
				findings = append(findings, Finding{Analyzer: "directive", Pos: fset.Position(a.Pos),
					Message: fmt.Sprintf("stale //lint:allow %s: it suppresses nothing", a.Analyzer)})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
