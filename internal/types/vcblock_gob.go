package types

import (
	"bytes"
	"encoding/gob"
	"errors"
)

// vcBlockWire is VcBlock's canonical gob shape. The RP and CI reputation
// maps travel as sorted (id, value) column pairs: encoding/gob serializes
// maps in Go's randomized iteration order, which would make two encodings
// of the same block differ run to run — breaking live-mode byte accounting
// and any cross-run wire comparison (the wiremap lint enforces this).
type vcBlockWire struct {
	V        View
	LeaderID ServerID
	PrevHash Digest
	ConfQC   QC
	VcQC     QC
	RPIDs    []ServerID
	RPVals   []int64
	CIIDs    []ServerID
	CIVals   []int64
}

func sortedColumns(m map[ServerID]int64) ([]ServerID, []int64) {
	if len(m) == 0 {
		return nil, nil
	}
	ids := SortedKeys(m)
	vals := make([]int64, len(ids))
	for i, id := range ids {
		vals[i] = m[id]
	}
	return ids, vals
}

// GobEncode implements gob.GobEncoder with a canonical, order-stable
// encoding of the reputation maps.
func (b VcBlock) GobEncode() ([]byte, error) {
	w := vcBlockWire{
		V:        b.V,
		LeaderID: b.LeaderID,
		PrevHash: b.PrevHash,
		ConfQC:   b.ConfQC,
		VcQC:     b.VcQC,
	}
	w.RPIDs, w.RPVals = sortedColumns(b.RP)
	w.CIIDs, w.CIVals = sortedColumns(b.CI)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder, rebuilding the reputation maps from
// the sorted columns.
func (b *VcBlock) GobDecode(data []byte) error {
	var w vcBlockWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if len(w.RPIDs) != len(w.RPVals) || len(w.CIIDs) != len(w.CIVals) {
		return errors.New("types: VcBlock gob columns have mismatched lengths")
	}
	*b = VcBlock{
		V:        w.V,
		LeaderID: w.LeaderID,
		PrevHash: w.PrevHash,
		ConfQC:   w.ConfQC,
		VcQC:     w.VcQC,
	}
	if len(w.RPIDs) > 0 {
		b.RP = make(map[ServerID]int64, len(w.RPIDs))
		for i, id := range w.RPIDs {
			b.RP[id] = w.RPVals[i]
		}
	}
	if len(w.CIIDs) > 0 {
		b.CI = make(map[ServerID]int64, len(w.CIIDs))
		for i, id := range w.CIIDs {
			b.CI[id] = w.CIVals[i]
		}
	}
	return nil
}
