// Package types defines the identifiers, blocks, quorum certificates, and
// protocol messages shared by the PrestigeBFT core and the baseline
// implementations (HotStuff, SBFT, Prosecutor).
//
// All structures are plain values so they can be passed through the in-process
// discrete-event simulator without serialization and through the TCP transport
// with encoding/gob. Signable structures expose SigningBytes, a canonical
// binary encoding that is independent of gob.
package types

import (
	"bytes"
	"cmp"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"slices"
	"sort"
)

// ServerID identifies a consensus server (replica). Servers are numbered
// 1..n; 0 is reserved as "no server".
type ServerID uint16

// NoServer is the zero ServerID, meaning "no server".
const NoServer ServerID = 0

// ClientID identifies a client. Clients are numbered 1..c; 0 is reserved.
type ClientID uint32

// View is a monotonically increasing system configuration number. Each view
// has at most one leader (Property P1 of the paper).
type View uint64

// SeqNum is a txBlock sequence number (the paper's "n"). The genesis txBlock
// has sequence number 0 and carries no transactions.
type SeqNum uint64

// Digest is a SHA-256 hash.
type Digest [32]byte

// String renders the first 8 hex characters of the digest, which is enough
// for logs and error messages.
func (d Digest) String() string { return hex.EncodeToString(d[:4]) }

// IsZero reports whether the digest is all zeroes.
func (d Digest) IsZero() bool { return d == Digest{} }

// HashBytes returns the SHA-256 digest of b.
func HashBytes(b []byte) Digest { return sha256.Sum256(b) }

// SortedDigestKeys returns m's keys in ascending byte order. Protocol code
// must use it (or an equivalent fixed order) whenever iterating a
// digest-keyed map produces effects — Go's randomized map order would
// otherwise leak into transaction ordering and RNG consumption, breaking
// reproducible simulation.
func SortedDigestKeys[V any](m map[Digest]V) []Digest {
	ds := make([]Digest, 0, len(m))
	for d := range m {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return bytes.Compare(ds[i][:], ds[j][:]) < 0 })
	return ds
}

// SortedKeys returns m's keys in ascending order, for the ordered identity
// key types (ServerID, ClientID, View, SeqNum, ...). Same contract as
// SortedDigestKeys: deterministic packages iterate identity-keyed maps
// through it whenever loop effects could leak iteration order.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// Transaction is an opaque client request payload plus its provenance.
// The consensus layer treats Data as opaque; applications interpret it
// through a state machine.
type Transaction struct {
	Timestamp int64    // client-assigned unique timestamp (the paper's t)
	Client    ClientID // proposing client (the paper's c)
	Data      []byte   // the request payload (the paper's tx)
}

// Digest returns the canonical digest of the transaction (the paper's d).
func (t *Transaction) Digest() Digest {
	var buf []byte
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.Timestamp))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Client))
	buf = append(buf, t.Data...)
	return HashBytes(buf)
}

// QCKind distinguishes the five quorum certificate flavours used by
// PrestigeBFT (Figure 3 and §4.2.5 of the paper).
type QCKind uint8

const (
	// QCConf confirms a view change (conf_QC, threshold f+1).
	QCConf QCKind = iota + 1
	// QCVote confirms leadership legitimacy (vc_QC, threshold 2f+1).
	QCVote
	// QCOrdering confirms the ordering action (ordering_QC, threshold 2f+1).
	QCOrdering
	// QCCommit confirms the commit action (commit_QC, threshold 2f+1).
	QCCommit
	// QCRefresh authorizes a reputation refresh (rs_QC, threshold 2f+1).
	QCRefresh
	// QCCheckpoint certifies a state checkpoint (ckpt_QC, threshold 2f+1).
	QCCheckpoint
	// QCGeneric is used by baseline protocols for their phase certificates.
	QCGeneric
)

func (k QCKind) String() string {
	switch k {
	case QCConf:
		return "conf_QC"
	case QCVote:
		return "vc_QC"
	case QCOrdering:
		return "ordering_QC"
	case QCCommit:
		return "commit_QC"
	case QCRefresh:
		return "rs_QC"
	case QCCheckpoint:
		return "ckpt_QC"
	case QCGeneric:
		return "generic_QC"
	}
	return fmt.Sprintf("QCKind(%d)", uint8(k))
}

// QC is a quorum certificate: proof that a threshold of servers signed the
// same statement. The paper compresses QCs with (t,n) threshold signatures;
// this implementation keeps the individual ed25519 signatures together with
// a signer list (see DESIGN.md §4 for the substitution rationale). Message
// size accounting in the simulator uses the O(1) compressed size so that
// bandwidth behaviour matches the paper.
type QC struct {
	Kind    QCKind
	View    View
	Seq     SeqNum // meaningful for ordering/commit QCs; 0 otherwise
	Digest  Digest // digest of the certified statement
	Signers []ServerID
	Sigs    [][]byte
}

// StatementBytes returns the canonical bytes every signer of this QC signed.
func QCStatementBytes(kind QCKind, view View, seq SeqNum, digest Digest) []byte {
	buf := make([]byte, 0, 1+8+8+32)
	buf = append(buf, byte(kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(view))
	buf = binary.BigEndian.AppendUint64(buf, uint64(seq))
	buf = append(buf, digest[:]...)
	return buf
}

// StatementBytes returns the canonical bytes signed by each signer of qc.
func (qc *QC) StatementBytes() []byte {
	return QCStatementBytes(qc.Kind, qc.View, qc.Seq, qc.Digest)
}

// Len returns the number of signers in the certificate.
func (qc *QC) Len() int { return len(qc.Signers) }

// IsZero reports whether the QC is unset.
func (qc *QC) IsZero() bool { return qc.Kind == 0 && len(qc.Signers) == 0 }

// WireSize is the modeled on-the-wire size of the certificate in bytes.
// Threshold signatures are O(1): one 64-byte aggregate plus metadata.
func (qc *QC) WireSize() int {
	if qc.IsZero() {
		return 0
	}
	return 64 + 1 + 8 + 8 + 32
}

// hashInto feeds the QC's canonical form into h.
func (qc *QC) appendCanonical(buf []byte) []byte {
	buf = append(buf, byte(qc.Kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(qc.View))
	buf = binary.BigEndian.AppendUint64(buf, uint64(qc.Seq))
	buf = append(buf, qc.Digest[:]...)
	// Signer identity matters for auditability but two QCs certifying the
	// same statement are interchangeable, so signers are excluded from
	// block hashes. (Two leaders assembling QCs from different vote subsets
	// must still produce identical block hashes.)
	return buf
}

// --- txBlock (Figure 3, right) -------------------------------------------

// TxBlockHeader carries the block agreement fragment of a txBlock.
type TxBlockHeader struct {
	V        View   // view number the block was committed in
	N        SeqNum // block index (sequence number)
	PrevHash Digest // address of the previous txBlock
	BatchLen uint32 // number of transactions (len(Txs)); part of the header for cheap sync decisions
}

// TxBlock is the deterministic consensus result of one replication instance
// (the paper's transaction block). Status[i] records the per-transaction
// consensus result; in this implementation a transaction that reaches the
// commit_QC is true, and transactions rejected by the application-defined
// admission rule are false (they are still ordered, matching the paper's
// "users can define the criteria for useful txBlocks").
type TxBlock struct {
	Header     TxBlockHeader
	Txs        []Transaction
	Status     []bool
	OrderingQC QC
	CommitQC   QC
}

// ContentDigest hashes the proposal content (header identity + transactions)
// that ordering votes certify. It excludes the QCs, which are produced after
// the votes.
func (b *TxBlock) ContentDigest() Digest {
	h := sha256.New()
	var hdr [8 * 3]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(b.Header.V))
	binary.BigEndian.PutUint64(hdr[8:], uint64(b.Header.N))
	binary.BigEndian.PutUint64(hdr[16:], uint64(b.Header.BatchLen))
	h.Write(hdr[:])
	h.Write(b.Header.PrevHash[:])
	for i := range b.Txs {
		d := b.Txs[i].Digest()
		h.Write(d[:])
	}
	var out Digest
	h.Sum(out[:0])
	return out
}

// Hash returns the block address: the content digest chained with the
// commit certificate digest.
func (b *TxBlock) Hash() Digest {
	h := sha256.New()
	cd := b.ContentDigest()
	h.Write(cd[:])
	h.Write(b.CommitQC.appendCanonical(nil))
	var out Digest
	h.Sum(out[:0])
	return out
}

// PredictedHash returns the address the block will have once it commits in
// its proposal view. The commit_QC's canonical form excludes signers, so the
// final Hash is fully determined by (view, seq, content digest) — which lets
// a pipelining leader chain block N+1 onto block N before N's certificate
// exists, and lets followers verify that chaining on prepared-but-uncommitted
// predecessors. For a block that already carries its commit_QC this equals
// Hash().
func (b *TxBlock) PredictedHash() Digest {
	if !b.CommitQC.IsZero() {
		return b.Hash()
	}
	cp := *b
	cp.CommitQC = QC{Kind: QCCommit, View: b.Header.V, Seq: b.Header.N, Digest: b.ContentDigest()}
	return cp.Hash()
}

// --- Certified checkpoints (log compaction and snapshot catch-up) ----------

// CheckpointHeader identifies one state checkpoint: the ledger state every
// correct replica deterministically reaches after committing the chain
// prefix through Seq. It binds the three inputs a recovered replica needs to
// continue from the checkpoint — the chain anchor (BlockHash), the
// application state (AppDigest), and the reputation inputs (RepDigest, the
// address of the latest vcBlock at or below the anchor's view, which
// transitively commits to every rp/ci fragment the prestige engine reads;
// see ledger.Store.RepDigestUpTo for why this converges under §4.2.5
// refreshes) — so 2f+1 matching StateHash votes certify all of them at once.
type CheckpointHeader struct {
	Seq       SeqNum // checkpointed sequence number
	View      View   // Header.V of the txBlock at Seq
	BlockHash Digest // address of the txBlock at Seq (the chain anchor)
	AppDigest Digest // hash of the encoded application state after applying 1..Seq
	RepDigest Digest // hash of the latest vcBlock with V ≤ View
}

// StateHash returns the canonical digest checkpoint votes sign (inside the
// QCCheckpoint statement) and the certificate carries.
func (h *CheckpointHeader) StateHash() Digest {
	buf := make([]byte, 0, 8+8+32*3)
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.Seq))
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.View))
	buf = append(buf, h.BlockHash[:]...)
	buf = append(buf, h.AppDigest[:]...)
	buf = append(buf, h.RepDigest[:]...)
	return HashBytes(buf)
}

// CheckpointCert is a certified checkpoint: the header plus ckpt_QC — 2f+1
// signatures over (QCCheckpoint, Seq, StateHash). Once assembled, the
// certificate becomes the new log base: every block strictly below Seq can
// be pruned, because any replica stuck below the base can be served the
// certified snapshot instead of replayed history (DESIGN.md §10).
type CheckpointCert struct {
	Header CheckpointHeader
	QC     QC
}

// IsZero reports whether the certificate is unset.
func (c *CheckpointCert) IsZero() bool { return c.QC.IsZero() }

// SnapshotPackage is the state-transfer payload of the snapshot sync path:
// the certified checkpoint, the full anchor block at the checkpoint seq
// (self-certifying through its own QCs; the retained tail chains from its
// address), and the encoded application state whose hash the certificate
// covers.
type SnapshotPackage struct {
	Cert     CheckpointCert
	Anchor   TxBlock
	AppState []byte
}

// --- vcBlock (Figure 3, left) --------------------------------------------

// VcBlock is the deterministic consensus result of one view change. It
// records the new leader, the certificates that legitimize the change, and
// the reputation fragment: the reputation penalty (rp) and compensation
// index (ci) of every server as of this view.
type VcBlock struct {
	V        View               // view number
	LeaderID ServerID           // elected leader
	PrevHash Digest             // address of the previous vcBlock
	ConfQC   QC                 // confirms leader failure / policy trigger (threshold f+1)
	VcQC     QC                 // confirms leadership legitimacy (threshold 2f+1)
	RP       map[ServerID]int64 // reputation penalty per server
	CI       map[ServerID]int64 // compensation index per server
}

// CloneReputation deep-copies the reputation fragment (rp and ci maps) so a
// new vcBlock can inherit the old view's fragment and mutate only the
// elected leader's entries (§4.2.4).
func (b *VcBlock) CloneReputation() (rp, ci map[ServerID]int64) {
	rp = make(map[ServerID]int64, len(b.RP))
	ci = make(map[ServerID]int64, len(b.CI))
	for id, v := range b.RP {
		rp[id] = v
	}
	for id, v := range b.CI {
		ci[id] = v
	}
	return rp, ci
}

// Hash returns the canonical block address. Map iteration order is
// normalized by sorting server IDs.
func (b *VcBlock) Hash() Digest {
	h := sha256.New()
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(b.V))
	h.Write(hdr[:])
	var sid [2]byte
	binary.BigEndian.PutUint16(sid[:], uint16(b.LeaderID))
	h.Write(sid[:])
	h.Write(b.PrevHash[:])
	h.Write(b.ConfQC.appendCanonical(nil))
	h.Write(b.VcQC.appendCanonical(nil))
	ids := make([]ServerID, 0, len(b.RP))
	for id := range b.RP {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		var rec [2 + 8 + 8]byte
		binary.BigEndian.PutUint16(rec[0:], uint16(id))
		binary.BigEndian.PutUint64(rec[2:], uint64(b.RP[id]))
		binary.BigEndian.PutUint64(rec[10:], uint64(b.CI[id]))
		h.Write(rec[:])
	}
	var out Digest
	h.Sum(out[:0])
	return out
}

// ReputationEqualExcept reports whether the reputation fragments of b and
// other are identical except possibly at server id. Non-leader servers use
// this to validate that a new vcBlock only changed the elected leader's
// rp and ci (§4.2.4: "If the only change is the leader's rp and ci, servers
// adopt newVcBlock").
func (b *VcBlock) ReputationEqualExcept(other *VcBlock, id ServerID) bool {
	if len(b.RP) != len(other.RP) || len(b.CI) != len(other.CI) {
		return false
	}
	for sid, v := range b.RP {
		ov, ok := other.RP[sid]
		if !ok || (sid != id && ov != v) {
			return false
		}
	}
	for sid, v := range b.CI {
		ov, ok := other.CI[sid]
		if !ok || (sid != id && ov != v) {
			return false
		}
	}
	return true
}

// GenesisVcBlock builds the initial vcBlock for view 1 with every server's
// rp and ci set to the initial values (the paper initializes rp(1)=1, ci=1)
// and server initialLeader as the first leader.
func GenesisVcBlock(n int, initialLeader ServerID, initialRP, initialCI int64) *VcBlock {
	rp := make(map[ServerID]int64, n)
	ci := make(map[ServerID]int64, n)
	for i := 1; i <= n; i++ {
		rp[ServerID(i)] = initialRP
		ci[ServerID(i)] = initialCI
	}
	return &VcBlock{V: 1, LeaderID: initialLeader, RP: rp, CI: ci}
}

// GenesisTxBlock builds the empty txBlock at sequence number 0 that anchors
// the transaction chain.
func GenesisTxBlock() *TxBlock {
	return &TxBlock{Header: TxBlockHeader{V: 1, N: 0}}
}

// Quorum arithmetic --------------------------------------------------------

// FaultBound returns f = floor((n-1)/3), the maximum number of Byzantine
// servers tolerated among n.
func FaultBound(n int) int { return (n - 1) / 3 }

// QuorumSize returns 2f+1 for n servers.
func QuorumSize(n int) int { return 2*FaultBound(n) + 1 }

// ConfirmSize returns f+1 for n servers (the conf_QC threshold).
func ConfirmSize(n int) int { return FaultBound(n) + 1 }
