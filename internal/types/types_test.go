package types

import (
	"testing"
	"testing/quick"
)

func TestQuorumArithmetic(t *testing.T) {
	cases := []struct{ n, f, quorum, confirm int }{
		{4, 1, 3, 2},
		{7, 2, 5, 3},
		{16, 5, 11, 6},
		{31, 10, 21, 11},
		{61, 20, 41, 21},
		{100, 33, 67, 34},
	}
	for _, c := range cases {
		if f := FaultBound(c.n); f != c.f {
			t.Errorf("FaultBound(%d) = %d, want %d", c.n, f, c.f)
		}
		if q := QuorumSize(c.n); q != c.quorum {
			t.Errorf("QuorumSize(%d) = %d, want %d", c.n, q, c.quorum)
		}
		if cs := ConfirmSize(c.n); cs != c.confirm {
			t.Errorf("ConfirmSize(%d) = %d, want %d", c.n, cs, c.confirm)
		}
	}
}

// TestQuorumIntersection: any two 2f+1 quorums among 3f+1 servers intersect
// in at least f+1 servers — the foundation of every safety proof in the
// paper (Theorem 3, Lemma 7).
func TestQuorumIntersection(t *testing.T) {
	f := func(fRaw uint8) bool {
		fb := int(fRaw%33) + 1
		n := 3*fb + 1
		q := QuorumSize(n)
		// |A ∩ B| >= |A| + |B| - n = 2(2f+1) - (3f+1) = f+1 > f.
		return 2*q-n >= fb+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransactionDigestUniqueness(t *testing.T) {
	a := Transaction{Timestamp: 1, Client: 1, Data: []byte("x")}
	b := Transaction{Timestamp: 2, Client: 1, Data: []byte("x")}
	c := Transaction{Timestamp: 1, Client: 2, Data: []byte("x")}
	d := Transaction{Timestamp: 1, Client: 1, Data: []byte("y")}
	seen := map[Digest]bool{}
	for _, tx := range []Transaction{a, b, c, d} {
		dg := tx.Digest()
		if seen[dg] {
			t.Fatalf("digest collision for %+v", tx)
		}
		seen[dg] = true
	}
	if a.Digest() != a.Digest() {
		t.Fatal("digest not deterministic")
	}
}

func TestTxBlockHashing(t *testing.T) {
	blk := &TxBlock{
		Header: TxBlockHeader{V: 3, N: 7, BatchLen: 2},
		Txs: []Transaction{
			{Timestamp: 1, Client: 1, Data: []byte("a")},
			{Timestamp: 2, Client: 2, Data: []byte("b")},
		},
	}
	d1 := blk.ContentDigest()
	// Content digest must change with any transaction change...
	blk2 := *blk
	blk2.Txs = append([]Transaction(nil), blk.Txs...)
	blk2.Txs[0].Data = []byte("z")
	if blk2.ContentDigest() == d1 {
		t.Fatal("content digest ignores transaction data")
	}
	// ...and with header identity.
	blk3 := *blk
	blk3.Header.N = 8
	if blk3.ContentDigest() == d1 {
		t.Fatal("content digest ignores sequence number")
	}
	// Block hash additionally covers the commit certificate.
	h1 := blk.Hash()
	blk4 := *blk
	blk4.CommitQC = QC{Kind: QCCommit, View: 3, Seq: 7, Digest: d1}
	if blk4.Hash() == h1 {
		t.Fatal("block hash ignores commit QC")
	}
	// But not the signer set: two QCs certifying the same statement are
	// interchangeable.
	blk5 := blk4
	blk5.CommitQC.Signers = []ServerID{1, 2, 3}
	if blk5.Hash() != blk4.Hash() {
		t.Fatal("block hash depends on QC signer identities")
	}
}

// TestPredictedHash: the address a block will have once committed in its
// proposal view is computable before the commit certificate exists — the
// property the pipelined replication window chains on — and matches the
// real Hash exactly once the certificate (any signer set) is attached.
func TestPredictedHash(t *testing.T) {
	blk := &TxBlock{
		Header: TxBlockHeader{V: 3, N: 7, BatchLen: 1},
		Txs:    []Transaction{{Timestamp: 1, Client: 1, Data: []byte("a")}},
	}
	pred := blk.PredictedHash()
	if pred == blk.Hash() {
		t.Fatal("prediction should differ from the hash of an uncertified block")
	}
	committed := *blk
	committed.CommitQC = QC{
		Kind: QCCommit, View: 3, Seq: 7, Digest: blk.ContentDigest(),
		Signers: []ServerID{1, 2, 3},
	}
	if committed.Hash() != pred {
		t.Fatal("predicted hash does not match the committed block's hash")
	}
	if committed.PredictedHash() != committed.Hash() {
		t.Fatal("PredictedHash of a committed block must equal Hash")
	}
}

func TestVcBlockHashCanonicalMaps(t *testing.T) {
	a := GenesisVcBlock(7, 1, 1, 1)
	b := GenesisVcBlock(7, 1, 1, 1)
	if a.Hash() != b.Hash() {
		t.Fatal("identical vcBlocks hash differently (map order leak)")
	}
	b.RP[3] = 9
	if a.Hash() == b.Hash() {
		t.Fatal("vcBlock hash ignores reputation fragment")
	}
}

func TestCloneReputationIsDeep(t *testing.T) {
	g := GenesisVcBlock(4, 1, 1, 1)
	rp, ci := g.CloneReputation()
	rp[2] = 42
	ci[2] = 42
	if g.RP[2] != 1 || g.CI[2] != 1 {
		t.Fatal("CloneReputation aliases the original maps")
	}
}

func TestReputationEqualExcept(t *testing.T) {
	g := GenesisVcBlock(4, 1, 1, 1)
	next := &VcBlock{V: 2, LeaderID: 2}
	next.RP, next.CI = g.CloneReputation()
	next.RP[2] = 2
	next.CI[2] = 10
	if !next.ReputationEqualExcept(g, 2) {
		t.Fatal("leader-only change rejected")
	}
	if next.ReputationEqualExcept(g, 3) {
		t.Fatal("change at server 2 accepted as a server-3 change")
	}
	next.RP[3] = 5
	if next.ReputationEqualExcept(g, 2) {
		t.Fatal("non-leader change accepted")
	}
}

func TestGenesisBlocks(t *testing.T) {
	g := GenesisVcBlock(4, 2, 1, 1)
	if g.V != 1 || g.LeaderID != 2 || len(g.RP) != 4 || g.RP[3] != 1 || g.CI[4] != 1 {
		t.Fatalf("bad genesis vcBlock: %+v", g)
	}
	tg := GenesisTxBlock()
	if tg.Header.N != 0 || len(tg.Txs) != 0 {
		t.Fatalf("bad genesis txBlock: %+v", tg)
	}
}

func TestMessageSigningBytesDistinct(t *testing.T) {
	// Messages with different semantics must never share signing bytes —
	// otherwise a signature for one could be replayed as another.
	ord := &OrdReply{From: 1, V: 2, N: 3, D: Digest{1}}
	cmt := &CmtReply{From: 1, V: 2, N: 3, D: Digest{1}}
	if string(ord.SigningBytes()) == string(cmt.SigningBytes()) {
		t.Fatal("OrdReply and CmtReply share signing bytes (replay risk)")
	}
	revc := &ReVC{From: 1, To: 2, V: 3}
	vote := &VoteCP{From: 1, Cand: 2, VPrime: 3}
	if string(revc.SigningBytes()) == string(vote.SigningBytes()) {
		t.Fatal("ReVC and VoteCP share signing bytes (replay risk)")
	}
}

func TestWireSizesPositive(t *testing.T) {
	msgs := []Message{
		&Prop{Tx: Transaction{Data: make([]byte, 32)}},
		&Notif{}, &Compt{}, &ConfVC{}, &ReVC{}, &CampVC{Nonce: make([]byte, 8)},
		&VoteCP{}, &VcBlockMsg{}, &VcYes{}, &Ref{}, &Rdone{},
		&Ord{Txs: make([]Transaction, 3)}, &OrdReply{}, &Cmt{}, &CmtReply{},
		&TxBlockMsg{}, &SyncReq{}, &SyncResp{},
	}
	for _, m := range msgs {
		if m.WireSize() <= 0 {
			t.Errorf("%s has non-positive wire size", m.Type())
		}
		if m.Type() == "" {
			t.Error("empty message type")
		}
	}
}

func TestQCStatementBytesInjective(t *testing.T) {
	f := func(k1, k2 uint8, v1, v2 uint32, s1, s2 uint32) bool {
		kind1 := QCKind(k1%6) + 1
		kind2 := QCKind(k2%6) + 1
		b1 := QCStatementBytes(kind1, View(v1), SeqNum(s1), Digest{})
		b2 := QCStatementBytes(kind2, View(v2), SeqNum(s2), Digest{})
		same := kind1 == kind2 && v1 == v2 && s1 == s2
		return same == (string(b1) == string(b2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
