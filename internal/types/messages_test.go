package types

import (
	"bytes"
	"testing"
)

// TestSigningBytesDomainSeparation pins the cross-kind domain-separation
// property of every signed statement: two messages of different kinds built
// from the same field values must never sign identical bytes, or a
// signature harvested from one protocol step could be replayed as another.
//
// The sharpest pair is ReVC vs VoteCP: both pack a server ID into the
// SeqNum slot of a QC statement with a zero digest, so the leading QC kind
// byte (QCConf vs QCVote) is the only thing separating "I confirm your
// inspection of view V" from "I vote for you in view V". This test is what
// notices if someone collapses the kinds.
//
// Two pairs intentionally share a statement and are asserted equal instead:
// the leader's Ord/Cmt signature is its own vote over the ordering/commit
// statement, so it must match the followers' OrdReply/CmtReply bytes for
// the leader's signature to count toward the QC.
func TestSigningBytesDomainSeparation(t *testing.T) {
	// One shared value set: every slot that two kinds could confuse holds
	// the same value in both (view 7, seq/target 9, digest d, sender 3).
	const (
		v    = View(7)
		n    = SeqNum(9)
		from = ServerID(3)
		peer = ServerID(9)
		cli  = ClientID(5)
	)
	d := Digest{0xAB, 0xCD}

	ord := &Ord{From: from, V: v, N: n, Prev: d}
	contentD := (&TxBlock{Header: TxBlockHeader{V: v, N: n, PrevHash: d}}).ContentDigest()

	msgs := []Signed{
		&Prop{Tx: Transaction{Timestamp: 11, Client: cli}, D: d},
		&Notif{From: from, V: v, N: n, TxD: d, Status: true},
		&Compt{Prop: Prop{Tx: Transaction{Timestamp: 11, Client: cli}, D: d}},
		&ConfVC{From: from, V: v, Reason: ReasonComplaint, TxD: d, Client: cli},
		&ReVC{From: from, To: peer, V: v},
		&CampVC{From: from, V: v, VPrime: v + 1, RP: 9, CI: 9, HR: d, TxN: n, TxHash: d},
		&VoteCP{From: from, Cand: peer, VPrime: v},
		&VcBlockMsg{From: from, Block: VcBlock{V: v, LeaderID: peer, PrevHash: d}},
		&VcYes{From: from, V: v, BlockHash: d},
		&Ref{From: from, V: v},
		&Rdone{From: from, V: v, RP: 9, CI: 9},
		ord,
		&OrdReply{From: from, V: v, N: n, D: contentD},
		&Cmt{From: from, V: v, N: n, OrderingQC: QC{Kind: QCOrdering, View: v, Seq: n, Digest: d}},
		&CmtReply{From: from, V: v, N: n, D: d},
		&Adopt{From: from, V: v, Block: TxBlock{Header: TxBlockHeader{V: v, N: n, PrevHash: d}}},
		&TxBlockMsg{From: from, Block: TxBlock{Header: TxBlockHeader{V: v, N: n, PrevHash: d}}},
		&CkptVote{From: from, Seq: n, StateHash: d},
	}

	// Vote pairs that share a statement by design: the leader's signature
	// on the proposal doubles as its QC vote.
	sameStatement := map[string]bool{
		"Ord/OrdReply": true,
		"Cmt/CmtReply": true,
	}

	for i, a := range msgs {
		for _, b := range msgs[i+1:] {
			pair := a.Type() + "/" + b.Type()
			equal := bytes.Equal(a.SigningBytes(), b.SigningBytes())
			if sameStatement[pair] {
				if !equal {
					t.Errorf("%s: expected a shared statement (the leader's signature is its own vote), got distinct bytes", pair)
				}
				continue
			}
			if equal {
				t.Errorf("%s: identical signing bytes %x — a %s signature replays as a %s",
					pair, a.SigningBytes(), a.Type(), b.Type())
			}
		}
	}
}

// TestQCStatementKindsDomainSeparation walks every pair of QC kinds with
// identical (view, seq, digest) fields: the kind byte must always separate
// the statements, including the all-zero-field corner every view-change
// vote statement lives near.
func TestQCStatementKindsDomainSeparation(t *testing.T) {
	kinds := []QCKind{QCConf, QCVote, QCOrdering, QCCommit, QCRefresh, QCCheckpoint, QCGeneric}
	for _, tc := range []struct {
		name string
		view View
		seq  SeqNum
		d    Digest
	}{
		{"zero", 0, 0, Digest{}},
		{"populated", 7, 9, Digest{0xAB, 0xCD}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seen := make(map[string]QCKind, len(kinds))
			for _, k := range kinds {
				stmt := string(QCStatementBytes(k, tc.view, tc.seq, tc.d))
				if prev, dup := seen[stmt]; dup {
					t.Errorf("kinds %d and %d share statement bytes %x", prev, k, stmt)
				}
				seen[stmt] = k
			}
		})
	}
}

// TestSigningBytesDeterministic: SigningBytes must be a pure function of
// the message value — two identical messages sign identical bytes, and
// repeated calls agree (the verified-fact cache keys on these bytes).
func TestSigningBytesDeterministic(t *testing.T) {
	mk := func() Signed {
		return &Cmt{From: 3, V: 7, N: 9, OrderingQC: QC{Kind: QCOrdering, View: 7, Seq: 9, Digest: Digest{1}}}
	}
	a, b := mk(), mk()
	if !bytes.Equal(a.SigningBytes(), b.SigningBytes()) {
		t.Fatal("identical messages produced distinct signing bytes")
	}
	if !bytes.Equal(a.SigningBytes(), a.SigningBytes()) {
		t.Fatal("SigningBytes is not deterministic across calls")
	}
}
