package types

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func sampleVcBlock() VcBlock {
	return VcBlock{
		V:        7,
		LeaderID: 3,
		PrevHash: HashBytes([]byte("prev")),
		ConfQC:   QC{Kind: QCConf, View: 7, Signers: []ServerID{1, 2}, Sigs: [][]byte{{1}, {2}}},
		VcQC:     QC{Kind: QCVote, View: 7, Signers: []ServerID{1, 2, 3}, Sigs: [][]byte{{1}, {2}, {3}}},
		RP:       map[ServerID]int64{4: -2, 1: 10, 3: 0, 2: 5},
		CI:       map[ServerID]int64{2: 1, 4: 9, 1: 0, 3: 3},
	}
}

// TestVcBlockGobDeterministic is the regression test for the wiremap lint
// finding: plain gob serialized the RP/CI maps in randomized iteration
// order, so two encodings of the same block could differ run to run. The
// canonical codec must produce byte-identical output every time.
func TestVcBlockGobDeterministic(t *testing.T) {
	b := sampleVcBlock()
	var first []byte
	for i := 0; i < 32; i++ {
		data, err := b.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = data
			continue
		}
		if !bytes.Equal(first, data) {
			t.Fatalf("encoding %d differs from the first", i)
		}
	}
}

func TestVcBlockGobRoundTrip(t *testing.T) {
	b := sampleVcBlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&b); err != nil {
		t.Fatal(err)
	}
	var got VcBlock
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("round trip mismatch:\nsent %+v\ngot  %+v", b, got)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("round trip changed the block address")
	}
}

func TestVcBlockGobEmptyMaps(t *testing.T) {
	b := VcBlock{V: 1, LeaderID: 1}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&b); err != nil {
		t.Fatal(err)
	}
	var got VcBlock
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.RP != nil || got.CI != nil {
		t.Fatalf("empty maps must decode as nil, got RP=%v CI=%v", got.RP, got.CI)
	}
}

func TestVcBlockGobRejectsMismatchedColumns(t *testing.T) {
	w := vcBlockWire{RPIDs: []ServerID{1, 2}, RPVals: []int64{1}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		t.Fatal(err)
	}
	var b VcBlock
	if err := b.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("mismatched columns must fail to decode")
	}
}
