package types

import (
	"encoding/binary"
)

// Message is implemented by every protocol message exchanged between
// servers and clients. Type identifies the message for logging and metric
// purposes; WireSize is the modeled on-the-wire size in bytes used by the
// simulator's bandwidth model.
type Message interface {
	Type() string
	WireSize() int
}

// Signed is implemented by messages that carry a signature over their
// canonical SigningBytes.
type Signed interface {
	Message
	SigningBytes() []byte
	Signature() []byte
}

const (
	sigSize    = 64 // ed25519 signature
	headerSize = 16 // modeled per-message framing overhead
)

// --- Client-facing messages ------------------------------------------------

// Prop is a client proposal ⟨Prop, t, d, c, σc, tx⟩ (§4.3). Clients
// broadcast it to all servers.
type Prop struct {
	Tx  Transaction
	D   Digest // digest of the transaction
	Sig []byte // client signature over (t, d, c)
}

func (m *Prop) Type() string { return "Prop" }
func (m *Prop) WireSize() int {
	return headerSize + 8 + 32 + 4 + len(m.Tx.Data) + sigSize
}

// SigningBytes covers the timestamp, digest, and client ID, matching the
// paper's σc that signs t, d, and c.
func (m *Prop) SigningBytes() []byte {
	buf := make([]byte, 0, 8+32+4)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Tx.Timestamp))
	buf = append(buf, m.D[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Tx.Client))
	return buf
}
func (m *Prop) Signature() []byte { return m.Sig }

// Notif notifies a client that its transaction committed. A client considers
// its transaction committed upon receiving f+1 matching Notifs.
type Notif struct {
	From   ServerID
	V      View
	N      SeqNum // sequence number of the committing txBlock
	TxD    Digest // digest of the client's transaction
	Status bool   // per-transaction consensus result
	Sig    []byte
}

func (m *Notif) Type() string  { return "Notif" }
func (m *Notif) WireSize() int { return headerSize + 2 + 8 + 8 + 32 + 1 + sigSize }
func (m *Notif) SigningBytes() []byte {
	buf := make([]byte, 0, 2+8+8+32+1)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.From))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.V))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.N))
	buf = append(buf, m.TxD[:]...)
	if m.Status {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}
func (m *Notif) Signature() []byte { return m.Sig }

// Compt is a client complaint (§4.2.1): the client rebroadcasts its proposal
// suspecting a leader failure.
type Compt struct {
	Prop Prop
	Sig  []byte // client signature over the complaint
}

func (m *Compt) Type() string         { return "Compt" }
func (m *Compt) WireSize() int        { return headerSize + m.Prop.WireSize() + sigSize }
func (m *Compt) SigningBytes() []byte { return append([]byte("compt"), m.Prop.SigningBytes()...) }
func (m *Compt) Signature() []byte    { return m.Sig }

// --- View-change messages (§4.2) -------------------------------------------

// ConfReason distinguishes failure-detection view changes (client complaint)
// from policy-defined view changes (e.g. a timing policy, §4.2.1).
type ConfReason uint8

const (
	// ReasonComplaint marks a view change triggered by an unserved client
	// complaint.
	ReasonComplaint ConfReason = iota + 1
	// ReasonPolicy marks a view change triggered by a policy (timing or
	// throughput threshold).
	ReasonPolicy
)

// ConfVC starts an inspection of the current leader: the sender suspects the
// leader failed to commit the complained transaction (or a policy fired) and
// asks the other servers to confirm.
type ConfVC struct {
	From   ServerID
	V      View
	Reason ConfReason
	TxD    Digest // digest of the complained transaction (ReasonComplaint)
	Client ClientID
	Sig    []byte
}

func (m *ConfVC) Type() string  { return "ConfVC" }
func (m *ConfVC) WireSize() int { return headerSize + 2 + 8 + 1 + 32 + 4 + sigSize }
func (m *ConfVC) SigningBytes() []byte {
	buf := make([]byte, 0, 2+8+1+32+4)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.From))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.V))
	buf = append(buf, byte(m.Reason))
	buf = append(buf, m.TxD[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Client))
	return buf
}
func (m *ConfVC) Signature() []byte { return m.Sig }

// ReVC replies to a ConfVC: the sender confirms it observed the same
// complaint (or the same policy trigger) in view V. f+1 ReVCs form conf_QC.
type ReVC struct {
	From ServerID
	To   ServerID // the inspecting server this reply supports
	V    View
	Sig  []byte
}

func (m *ReVC) Type() string  { return "ReVC" }
func (m *ReVC) WireSize() int { return headerSize + 2 + 2 + 8 + sigSize }
func (m *ReVC) SigningBytes() []byte {
	return QCStatementBytes(QCConf, m.V, SeqNum(m.To), Digest{})
}
func (m *ReVC) Signature() []byte { return m.Sig }

// CampVC is a candidate's campaign message (Algo. 2 line 43):
// ⟨conf_QC, V, V', rp, nc, hr, ci, txBlock, σ⟩.
type CampVC struct {
	From   ServerID
	ConfQC QC
	V      View   // the view the campaigner departed from
	VPrime View   // the view campaigned for
	RP     int64  // claimed reputation penalty for V'
	CI     int64  // claimed compensation index for V'
	Nonce  []byte // PoW nonce
	HR     Digest // PoW hash result
	TxN    SeqNum // candidate's latest txBlock sequence number
	TxHash Digest // candidate's latest txBlock hash (the PoW seed block)
	VcN    View   // candidate's latest vcBlock view (for SyncUp decisions)
	Sig    []byte
}

func (m *CampVC) Type() string { return "CampVC" }
func (m *CampVC) WireSize() int {
	return headerSize + 2 + m.ConfQC.WireSize() + 8*4 + 8 + len(m.Nonce) + 32 + 32 + sigSize
}
func (m *CampVC) SigningBytes() []byte {
	buf := make([]byte, 0, 128)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.From))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.V))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.VPrime))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.RP))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.CI))
	buf = append(buf, m.Nonce...)
	buf = append(buf, m.HR[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.TxN))
	buf = append(buf, m.TxHash[:]...)
	return buf
}
func (m *CampVC) Signature() []byte { return m.Sig }

// VoteCP is a follower's vote for a candidate in view VPrime.
//
// Locked carries the voter's certified-but-uncommitted replication window:
// every prepared block above the voter's committed tip for which it has seen
// a valid ordering_QC (the leader's Cmt). Any block that reached a commit_QC
// anywhere was, by quorum intersection, locked at a correct server among any
// 2f+1 voters, so the union of Locked across the winning vote set is
// guaranteed to contain every potentially committed block — the evidence the
// new leader adopts (re-proposes byte-identically) to preserve the
// committed-prefix invariant across view changes. The entries are
// self-certifying through their ordering_QCs and therefore excluded from the
// vote signature.
type VoteCP struct {
	From   ServerID
	Cand   ServerID
	VPrime View
	Locked []TxBlock
	Sig    []byte
}

func (m *VoteCP) Type() string { return "VoteCP" }
func (m *VoteCP) WireSize() int {
	size := headerSize + 2 + 2 + 8 + sigSize
	for i := range m.Locked {
		tb := TxBlockMsg{Block: m.Locked[i]}
		size += tb.WireSize() - headerSize - sigSize
	}
	return size
}
func (m *VoteCP) SigningBytes() []byte {
	return QCStatementBytes(QCVote, m.VPrime, SeqNum(m.Cand), Digest{})
}
func (m *VoteCP) Signature() []byte { return m.Sig }

// VcBlockMsg broadcasts the new leader's vcBlock (Algo. 2 line 51).
type VcBlockMsg struct {
	From  ServerID
	Block VcBlock
	Sig   []byte
}

func (m *VcBlockMsg) Type() string { return "VcBlock" }
func (m *VcBlockMsg) WireSize() int {
	return headerSize + 2 + 8 + 2 + 32 + m.Block.ConfQC.WireSize() + m.Block.VcQC.WireSize() +
		len(m.Block.RP)*18 + sigSize
}
func (m *VcBlockMsg) SigningBytes() []byte {
	d := m.Block.Hash()
	return append([]byte("vcblock"), d[:]...)
}
func (m *VcBlockMsg) Signature() []byte { return m.Sig }

// VcYes acknowledges a valid vcBlock. 2f+1 vcYes messages complete VC
// consensus (§4.2.4).
type VcYes struct {
	From      ServerID
	V         View
	BlockHash Digest
	Sig       []byte
}

func (m *VcYes) Type() string  { return "VcYes" }
func (m *VcYes) WireSize() int { return headerSize + 2 + 8 + 32 + sigSize }
func (m *VcYes) SigningBytes() []byte {
	return QCStatementBytes(QCGeneric, m.V, 0, m.BlockHash)
}
func (m *VcYes) Signature() []byte { return m.Sig }

// --- Refresh messages (§4.2.5) ---------------------------------------------

// Ref requests a reputation refresh: the sender's rp exceeded the threshold π.
type Ref struct {
	From ServerID
	V    View
	Sig  []byte
}

func (m *Ref) Type() string  { return "Ref" }
func (m *Ref) WireSize() int { return headerSize + 2 + 8 + sigSize }
func (m *Ref) SigningBytes() []byte {
	return QCStatementBytes(QCRefresh, m.V, 0, Digest{})
}
func (m *Ref) Signature() []byte { return m.Sig }

// Rdone announces a completed refresh backed by rs_QC; receivers reset the
// sender's rp and ci in the current vcBlock.
type Rdone struct {
	From ServerID
	V    View
	RsQC QC
	RP   int64
	CI   int64
	Sig  []byte
}

func (m *Rdone) Type() string  { return "Rdone" }
func (m *Rdone) WireSize() int { return headerSize + 2 + 8 + m.RsQC.WireSize() + 16 + sigSize }
func (m *Rdone) SigningBytes() []byte {
	buf := make([]byte, 0, 2+8+16)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.From))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.V))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.RP))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.CI))
	return buf
}
func (m *Rdone) Signature() []byte { return m.Sig }

// --- Replication messages (§4.3) -------------------------------------------

// Ord starts phase 1 of a replication instance: the leader assigns sequence
// number N to a batch of proposals.
type Ord struct {
	From ServerID
	V    View
	N    SeqNum
	Prev Digest // previous txBlock hash, chaining the log
	Txs  []Transaction
	Sig  []byte
}

func (m *Ord) Type() string { return "Ord" }
func (m *Ord) WireSize() int {
	size := headerSize + 2 + 8 + 8 + 32 + sigSize
	for i := range m.Txs {
		size += 16 + len(m.Txs[i].Data)
	}
	return size
}
func (m *Ord) SigningBytes() []byte {
	b := &TxBlock{Header: TxBlockHeader{V: m.V, N: m.N, PrevHash: m.Prev, BatchLen: uint32(len(m.Txs))}, Txs: m.Txs}
	d := b.ContentDigest()
	return QCStatementBytes(QCOrdering, m.V, m.N, d)
}
func (m *Ord) Signature() []byte { return m.Sig }

// OrdReply is a follower's phase-1 vote, signed over the ordering statement.
type OrdReply struct {
	From ServerID
	V    View
	N    SeqNum
	D    Digest // ContentDigest of the proposed block
	Sig  []byte
}

func (m *OrdReply) Type() string  { return "OrdReply" }
func (m *OrdReply) WireSize() int { return headerSize + 2 + 8 + 8 + 32 + sigSize }
func (m *OrdReply) SigningBytes() []byte {
	return QCStatementBytes(QCOrdering, m.V, m.N, m.D)
}
func (m *OrdReply) Signature() []byte { return m.Sig }

// Cmt starts phase 2: the leader broadcasts the assembled ordering_QC.
type Cmt struct {
	From       ServerID
	V          View
	N          SeqNum
	OrderingQC QC
	Sig        []byte
}

func (m *Cmt) Type() string  { return "Cmt" }
func (m *Cmt) WireSize() int { return headerSize + 2 + 8 + 8 + m.OrderingQC.WireSize() + sigSize }
func (m *Cmt) SigningBytes() []byte {
	return QCStatementBytes(QCCommit, m.V, m.N, m.OrderingQC.Digest)
}
func (m *Cmt) Signature() []byte { return m.Sig }

// CmtReply is a follower's phase-2 vote.
type CmtReply struct {
	From ServerID
	V    View
	N    SeqNum
	D    Digest
	Sig  []byte
}

func (m *CmtReply) Type() string  { return "CmtReply" }
func (m *CmtReply) WireSize() int { return headerSize + 2 + 8 + 8 + 32 + sigSize }
func (m *CmtReply) SigningBytes() []byte {
	return QCStatementBytes(QCCommit, m.V, m.N, m.D)
}
func (m *CmtReply) Signature() []byte { return m.Sig }

// Adopt re-proposes a block from an earlier view that already carries its
// ordering_QC: the new leader's adoption of the previous leader's in-flight
// replication window. Because the ordering certificate already proves 2f+1
// servers agreed on the block's position and content, receivers skip the
// Ordering phase and answer directly with a CmtReply over the original
// commit statement — adoption is a single round trip, and the block commits
// byte-identical to what the old leader would have committed (commit_QC
// canonical form excludes signers).
type Adopt struct {
	From  ServerID
	V     View    // the adopting leader's (current) view
	Block TxBlock // original header and txs, with OrderingQC; CommitQC unset
	Sig   []byte
}

func (m *Adopt) Type() string { return "Adopt" }
func (m *Adopt) WireSize() int {
	tb := TxBlockMsg{Block: m.Block}
	return headerSize + 2 + 8 + (tb.WireSize() - headerSize - sigSize) + sigSize
}
func (m *Adopt) SigningBytes() []byte {
	d := m.Block.ContentDigest()
	buf := make([]byte, 0, 5+2+8+32)
	buf = append(buf, []byte("adopt")...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.From))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.V))
	buf = append(buf, d[:]...)
	return buf
}
func (m *Adopt) Signature() []byte { return m.Sig }

// TxBlockMsg broadcasts the finished txBlock with its commit_QC so followers
// can commit and notify clients.
type TxBlockMsg struct {
	From  ServerID
	Block TxBlock
	Sig   []byte
}

func (m *TxBlockMsg) Type() string { return "TxBlock" }
func (m *TxBlockMsg) WireSize() int {
	size := headerSize + 2 + 8*3 + 32 + m.Block.OrderingQC.WireSize() + m.Block.CommitQC.WireSize() + sigSize
	for i := range m.Block.Txs {
		size += 16 + len(m.Block.Txs[i].Data) + 1
	}
	return size
}
func (m *TxBlockMsg) SigningBytes() []byte {
	d := m.Block.Hash()
	return append([]byte("txblock"), d[:]...)
}
func (m *TxBlockMsg) Signature() []byte { return m.Sig }

// --- Certified checkpoints ---------------------------------------------------

// CkptVote is one replica's signed checkpoint vote, broadcast when its
// committed height crosses a Config.CheckpointInterval boundary. 2f+1 votes
// over the same (Seq, StateHash) assemble ckpt_QC; the resulting certificate
// authorizes pruning the log below Seq (DESIGN.md §10). The vote carries the
// voter's StateHash so receivers can verify the signature immediately, but a
// vote only ever counts toward a collector built over the receiver's own
// locally computed state hash — a divergent hash simply never certifies.
type CkptVote struct {
	From      ServerID
	Seq       SeqNum
	StateHash Digest
	Sig       []byte
}

func (m *CkptVote) Type() string  { return "CkptVote" }
func (m *CkptVote) WireSize() int { return headerSize + 2 + 8 + 32 + sigSize }
func (m *CkptVote) SigningBytes() []byte {
	return QCStatementBytes(QCCheckpoint, 0, m.Seq, m.StateHash)
}
func (m *CkptVote) Signature() []byte { return m.Sig }

// --- Log synchronization (SyncUp, §4.2.3) -----------------------------------

// SyncKind selects which chain a SyncReq targets.
type SyncKind uint8

const (
	// SyncTx requests txBlocks.
	SyncTx SyncKind = iota + 1
	// SyncVc requests vcBlocks.
	SyncVc
)

// SyncReq asks a peer for missing blocks in [Start, End].
type SyncReq struct {
	From  ServerID
	Kind  SyncKind
	Start uint64
	End   uint64
}

func (m *SyncReq) Type() string  { return "SyncReq" }
func (m *SyncReq) WireSize() int { return headerSize + 2 + 1 + 16 }

// SyncResp returns the requested blocks. Blocks are self-certifying through
// their QCs, so the response itself is unsigned.
//
// When the requester's gap starts below the responder's log base (the
// history was compacted away), Snapshot carries the certified checkpoint
// state instead of the pruned blocks, and TxBlocks holds only the retained
// tail above the base: the requester installs the snapshot, then replays the
// tail — O(CheckpointInterval) instead of O(history).
type SyncResp struct {
	From     ServerID
	Kind     SyncKind
	TxBlocks []TxBlock
	VcBlocks []VcBlock
	Snapshot *SnapshotPackage
}

func (m *SyncResp) Type() string { return "SyncResp" }
func (m *SyncResp) WireSize() int {
	size := headerSize + 2 + 1
	for i := range m.TxBlocks {
		tb := TxBlockMsg{Block: m.TxBlocks[i]}
		size += tb.WireSize()
	}
	for i := range m.VcBlocks {
		vb := VcBlockMsg{Block: m.VcBlocks[i]}
		size += vb.WireSize()
	}
	if m.Snapshot != nil {
		anchor := TxBlockMsg{Block: m.Snapshot.Anchor}
		// Header digests + ckpt_QC (threshold-signature size) + anchor + state.
		size += 8 + 8 + 3*32 + m.Snapshot.Cert.QC.WireSize() +
			(anchor.WireSize() - headerSize - sigSize) + len(m.Snapshot.AppState)
	}
	return size
}
