package sim

import (
	"testing"
	"time"
)

// TestCancelRemovesFromHeap: canceling a timer removes its event from the
// heap immediately, so Pending stays accurate and long simulations that
// constantly reset timeouts don't accumulate tombstones.
func TestCancelRemovesFromHeap(t *testing.T) {
	s := NewScheduler(1)
	const n = 100
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		timers[i] = s.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if got := s.Pending(); got != n {
		t.Fatalf("Pending = %d, want %d", got, n)
	}
	for i := 0; i < n; i += 2 {
		timers[i].Cancel()
	}
	if got := s.Pending(); got != n/2 {
		t.Fatalf("Pending after canceling half = %d, want %d", got, n/2)
	}
	// Double-cancel is a no-op.
	timers[0].Cancel()
	timers[2].Cancel()
	if got := s.Pending(); got != n/2 {
		t.Fatalf("Pending after double-cancel = %d, want %d", got, n/2)
	}
}

// TestCancelPreservesOrderAndFiring: removing events from the middle of the
// heap must not disturb the (time, FIFO) execution order of the survivors,
// and canceled events must never fire.
func TestCancelPreservesOrderAndFiring(t *testing.T) {
	s := NewScheduler(1)
	var fired []int
	timers := make([]*Timer, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		timers = append(timers, s.After(time.Duration(10-i)*time.Millisecond, func() {
			fired = append(fired, i)
		}))
	}
	// Cancel the ones scheduled at 10,8,6,4,2 ms (indices 0,2,4,6,8).
	for i := 0; i < 10; i += 2 {
		timers[i].Cancel()
	}
	s.RunUntil(Duration(20 * time.Millisecond))
	// Survivors i=1,3,5,7,9 fire at 9,7,5,3,1 ms: reverse index order.
	want := []int{9, 7, 5, 3, 1}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for k := range want {
		if fired[k] != want[k] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", s.Pending())
	}
	// Canceling an already-fired timer is a no-op.
	timers[1].Cancel()
	if s.Pending() != 0 {
		t.Fatalf("cancel-after-fire corrupted the heap: Pending = %d", s.Pending())
	}
}

// TestCancelInsideCallback: a callback canceling other pending timers (the
// dominant pattern in consensus timeout management) takes effect before
// those timers fire.
func TestCancelInsideCallback(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	var later *Timer
	s.After(time.Millisecond, func() {
		later.Cancel()
	})
	later = s.After(2*time.Millisecond, func() { fired++ })
	s.RunUntil(Duration(10 * time.Millisecond))
	if fired != 0 {
		t.Fatal("timer canceled from a callback still fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}
