package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestPropertyLinkFIFO: messages on one directed link are never reordered,
// regardless of sampled per-message latency — the TCP in-order guarantee
// consensus protocols rely on (DESIGN.md §6b item 3).
func TestPropertyLinkFIFO(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		s := NewScheduler(seed)
		n := NewNetwork(s, NetworkConfig{
			Latency:   UniformLatency{Min: 100 * time.Microsecond, Max: 5 * time.Millisecond},
			Bandwidth: 1 << 20,
		})
		a, b := ServerAddr(1), ServerAddr(2)
		var got []int
		n.Register(b, func(from Addr, payload any, size int) {
			got = append(got, payload.(int))
		})
		for i, sz := range sizes {
			n.Send(a, b, i, int(sz)+1)
		}
		s.RunUntil(Duration(time.Minute))
		if len(got) != len(sizes) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestIndependentLinksMayInterleave: FIFO is per directed link; traffic
// from different senders interleaves freely (no global serialization).
func TestIndependentLinksMayInterleave(t *testing.T) {
	s := NewScheduler(3)
	n := NewNetwork(s, NetworkConfig{Latency: UniformLatency{Min: time.Millisecond, Max: 10 * time.Millisecond}})
	dst := ServerAddr(9)
	var from1, from2 int
	n.Register(dst, func(from Addr, payload any, size int) {
		if from.ID == 1 {
			from1++
		} else {
			from2++
		}
	})
	for i := 0; i < 20; i++ {
		n.Send(ServerAddr(1), dst, i, 64)
		n.Send(ServerAddr(2), dst, i, 64)
	}
	s.RunUntil(Duration(time.Second))
	if from1 != 20 || from2 != 20 {
		t.Fatalf("deliveries = %d/%d, want 20/20", from1, from2)
	}
}
