// Package sim is a deterministic discrete-event simulator: a virtual clock,
// an event scheduler, a link-level network model (propagation latency with
// configurable jitter distributions, per-link bandwidth serialization,
// drops, partitions), and a CPU cost model for message processing and
// proof-of-work solving.
//
// It substitutes for the paper's cloud testbed (4-100 VMs, 400 MB/s links,
// <2 ms raw latency, netem-injected delays); see DESIGN.md §4. Everything is
// driven by a seeded random source, so every experiment is reproducible.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Duration converts a time.Duration into simulator time units.
func Duration(d time.Duration) Time { return Time(d) }

// ToDuration converts virtual time into a time.Duration (they share units).
func (t Time) ToDuration() time.Duration { return time.Duration(t) }

// Seconds returns the time in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()

	// index is the event's position in the heap, maintained by Swap/Push and
	// set to -1 once the event leaves the heap (fired or canceled). It is
	// what lets Cancel remove the event eagerly instead of leaving a tombstone
	// until the fire time.
	index int
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Timer is a cancelable handle for a scheduled event.
type Timer struct {
	s  *Scheduler
	ev *event
}

// Cancel removes the event from the scheduler's heap so it neither fires nor
// occupies memory until its fire time (long simulations reset timeouts
// constantly; tombstones would accumulate and inflate Pending). Canceling an
// already-fired or already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil {
		return
	}
	e := t.ev
	t.ev = nil
	if e.index >= 0 {
		heap.Remove(&t.s.events, e.index)
	}
}

// Scheduler runs events in virtual-time order.
type Scheduler struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	// Processed counts executed events, for engine throughput reporting.
	Processed uint64
}

// NewScheduler creates a scheduler with a deterministic random source.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// RNG returns the scheduler's deterministic random source. All randomness in
// a simulation (latency jitter, timeout randomization, nonce starts) must
// come from here for reproducibility.
func (s *Scheduler) RNG() *rand.Rand { return s.rng }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	return &Timer{s: s, ev: e}
}

// After schedules fn d after the current time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+Time(d), fn)
}

// Step executes the next event. It returns false when no events remain.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	s.Processed++
	e.fn()
	return true
}

// RunUntil executes events until virtual time exceeds limit or the event
// queue drains. The clock is advanced to limit at the end so subsequent
// scheduling starts there.
func (s *Scheduler) RunUntil(limit Time) {
	for len(s.events) > 0 && s.events[0].at <= limit {
		if !s.Step() {
			break
		}
	}
	if s.now < limit {
		s.now = limit
	}
}

// RunFor executes events for a span of virtual time from now.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + Time(d)) }

// Pending returns the number of queued events. Canceled events are removed
// from the heap eagerly, so they never count.
func (s *Scheduler) Pending() int { return len(s.events) }
