package sim

import (
	"testing"
	"time"
)

// TestNetworkDeliveryStats: the Sent/Delivered/Dropped/Bytes counters account
// for every message exactly once, whether it is delivered, lost to a cut, or
// sent to an endpoint with no handler.
func TestNetworkDeliveryStats(t *testing.T) {
	s := NewScheduler(11)
	n := NewNetwork(s, NetworkConfig{Latency: FixedLatency(time.Millisecond)})
	a, b := ServerAddr(1), ServerAddr(2)
	ghost := ServerAddr(3) // never registered
	n.Register(a, func(Addr, any, int) {})
	n.Register(b, func(Addr, any, int) {})

	n.Send(a, b, "ok", 100)
	n.SetCut(a, b, true)
	n.Send(a, b, "cut", 50)
	n.Send(a, ghost, "void", 25)
	s.RunUntil(Duration(time.Second))

	if n.Sent != 3 {
		t.Errorf("Sent = %d, want 3", n.Sent)
	}
	if n.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", n.Delivered)
	}
	if n.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2 (one cut, one unregistered)", n.Dropped)
	}
	if n.Bytes != 175 {
		t.Errorf("Bytes = %d, want 175 (drops still count as offered load)", n.Bytes)
	}
	if n.Sent != n.Delivered+n.Dropped {
		t.Errorf("Sent (%d) != Delivered (%d) + Dropped (%d) after drain", n.Sent, n.Delivered, n.Dropped)
	}
}

// TestNetworkPartitionIsolation: cutting both directions between two groups
// stops all cross-group traffic while intra-group links stay live — the
// primitive behind scenario partitions.
func TestNetworkPartitionIsolation(t *testing.T) {
	s := NewScheduler(12)
	n := NewNetwork(s, NetworkConfig{Latency: FixedLatency(time.Millisecond)})
	addrs := []Addr{ServerAddr(1), ServerAddr(2), ServerAddr(3), ServerAddr(4)}
	got := make(map[Addr]int)
	for _, a := range addrs {
		a := a
		n.Register(a, func(Addr, any, int) { got[a]++ })
	}
	// Partition {1,2} | {3,4}.
	for _, x := range addrs[:2] {
		for _, y := range addrs[2:] {
			n.SetCut(x, y, true)
			n.SetCut(y, x, true)
		}
	}
	for _, from := range addrs {
		for _, to := range addrs {
			if from != to {
				n.Send(from, to, "m", 8)
			}
		}
	}
	s.RunUntil(Duration(time.Second))
	for _, a := range addrs {
		if got[a] != 1 {
			t.Errorf("endpoint %v received %d messages, want 1 (same-side peer only)", a, got[a])
		}
	}
	if n.Dropped != 8 {
		t.Errorf("Dropped = %d, want 8 cross-partition messages", n.Dropped)
	}
}

// TestNetworkHealRedelivery: after healing a partition, traffic flows again
// on the previously severed links and the delivery counters resume.
func TestNetworkHealRedelivery(t *testing.T) {
	s := NewScheduler(13)
	n := NewNetwork(s, NetworkConfig{Latency: FixedLatency(time.Millisecond)})
	a, b := ServerAddr(1), ServerAddr(2)
	delivered := 0
	n.Register(a, func(Addr, any, int) { delivered++ })
	n.Register(b, func(Addr, any, int) { delivered++ })

	n.Isolate(b, true)
	n.Send(a, b, "lost", 8)
	n.Send(b, a, "lost", 8)
	s.RunUntil(Duration(time.Second))
	if delivered != 0 {
		t.Fatalf("delivered = %d during isolation, want 0", delivered)
	}
	n.Isolate(b, false)
	n.Send(a, b, "back", 8)
	n.Send(b, a, "back", 8)
	s.RunUntil(Duration(2 * time.Second))
	if delivered != 2 {
		t.Fatalf("delivered = %d after heal, want 2", delivered)
	}
	if n.Dropped != 2 || n.Delivered != 2 {
		t.Errorf("stats after heal: Dropped=%d Delivered=%d, want 2/2", n.Dropped, n.Delivered)
	}
}

// TestNetworkDropRateStats: with loss enabled, Sent always equals
// Delivered+Dropped once the queue drains, and the drop counter tracks the
// configured rate.
func TestNetworkDropRateStats(t *testing.T) {
	s := NewScheduler(14)
	n := NewNetwork(s, NetworkConfig{Latency: FixedLatency(0), DropRate: 0.3})
	a, b := ServerAddr(1), ServerAddr(2)
	n.Register(b, func(Addr, any, int) {})
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(a, b, i, 8)
	}
	s.RunUntil(Duration(time.Second))
	if n.Sent != total {
		t.Fatalf("Sent = %d, want %d", n.Sent, total)
	}
	if n.Delivered+n.Dropped != total {
		t.Fatalf("Delivered (%d) + Dropped (%d) != Sent (%d)", n.Delivered, n.Dropped, n.Sent)
	}
	if n.Dropped < total/5 || n.Dropped > total/2 {
		t.Errorf("Dropped = %d, want ≈ %d (rate 0.3)", n.Dropped, total*3/10)
	}
}

// TestNetworkRuntimeMutators: SetDropRate, SetLatency, and SetBandwidth
// reshape the fabric mid-run — the levers behind the Degrade/Restore chaos
// actions.
func TestNetworkRuntimeMutators(t *testing.T) {
	s := NewScheduler(15)
	n := NewNetwork(s, NetworkConfig{Latency: FixedLatency(time.Millisecond)})
	a, b := ServerAddr(1), ServerAddr(2)
	var arrivals []Time
	n.Register(b, func(Addr, any, int) { arrivals = append(arrivals, s.Now()) })

	n.Send(a, b, 1, 8)
	s.RunUntil(Duration(10 * time.Millisecond))

	n.SetLatency(FixedLatency(50 * time.Millisecond))
	n.Send(a, b, 2, 8)
	s.RunUntil(Duration(100 * time.Millisecond))

	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arrivals))
	}
	if d := arrivals[0].ToDuration(); d != time.Millisecond {
		t.Errorf("first arrival at %v, want 1ms", d)
	}
	if d := arrivals[1].ToDuration() - 10*time.Millisecond; d != 50*time.Millisecond {
		t.Errorf("degraded arrival took %v, want 50ms", d)
	}
	n.SetLatency(nil) // ignored
	if _, ok := n.Config().Latency.(FixedLatency); !ok {
		t.Error("SetLatency(nil) must keep the previous model")
	}

	n.SetDropRate(1.0)
	n.Send(a, b, 3, 8)
	s.RunUntil(Duration(200 * time.Millisecond))
	if len(arrivals) != 2 {
		t.Error("message delivered despite DropRate=1")
	}
	n.SetDropRate(0)

	// Bandwidth: 1 KB at 1 KB/s serializes for a full second.
	n.SetBandwidth(1024)
	n.SetLatency(FixedLatency(0))
	n.Send(a, b, 4, 1024)
	s.RunUntil(Duration(5 * time.Second))
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d, want 3", len(arrivals))
	}
	if d := arrivals[2].ToDuration() - 200*time.Millisecond; d != time.Second {
		t.Errorf("serialization took %v, want 1s at 1 KB/s", d)
	}
}

// TestWANNetworkConfig: the WAN preset produces latencies in the expected
// geo-distributed band and respects its floor.
func TestWANNetworkConfig(t *testing.T) {
	cfg := WANNetworkConfig()
	s := NewScheduler(16)
	var sum time.Duration
	const samples = 2000
	for i := 0; i < samples; i++ {
		d := cfg.Latency.Sample(s.RNG())
		if d < 5*time.Millisecond {
			t.Fatalf("sample %v below the 5ms floor", d)
		}
		sum += d
	}
	mean := sum / samples
	if mean < 30*time.Millisecond || mean > 50*time.Millisecond {
		t.Errorf("mean latency %v, want ≈40ms", mean)
	}
	if cfg.Bandwidth != 50<<20 {
		t.Errorf("bandwidth = %v, want 50 MB/s", cfg.Bandwidth)
	}
}
