package sim

import (
	"math"
	"time"
)

// CostModel charges virtual CPU time for protocol work. The constants are
// calibrated to the paper's testbed (4 vCPU 2.4 GHz Skylake): commodity
// ed25519-class operations and SHA-256 hashing rates. Each simulated server
// has one serial CPU; work queues when the CPU is busy, which is what
// produces the throughput saturation (the "elbow") in Figure 6.
type CostModel struct {
	// Sign is the cost of producing one signature.
	Sign time.Duration
	// Verify is the cost of verifying one signature or one aggregated QC.
	Verify time.Duration
	// PerTx is the per-transaction cost of digesting, admission checking,
	// and state-machine application when handling a batch.
	PerTx time.Duration
	// PerByte is the per-byte cost of serialization and hashing.
	PerByte time.Duration
	// Base is the fixed dispatch overhead per message.
	Base time.Duration
	// HashRate is the SHA-256 throughput in hashes/second for the
	// proof-of-work model.
	HashRate float64
}

// DefaultCostModel mirrors the paper's 4-vCPU 2.4 GHz Skylake instances:
// per-core ed25519-class costs divided across the request-processing
// parallelism a 4-vCPU server provides (the model's CPU is serial).
func DefaultCostModel() CostModel {
	return CostModel{
		Sign:     25 * time.Microsecond,
		Verify:   60 * time.Microsecond,
		PerTx:    1500 * time.Nanosecond,
		PerByte:  1 * time.Nanosecond,
		Base:     2 * time.Microsecond,
		HashRate: 10e6, // ~10 MH/s SHA-256 on one core
	}
}

// MessageCost computes the virtual processing time for handling one message
// of the given size with nSigs signature verifications and nTx transactions.
func (c CostModel) MessageCost(size, nSigs, nTx int) time.Duration {
	return c.Base +
		time.Duration(nSigs)*c.Verify +
		time.Duration(nTx)*c.PerTx +
		time.Duration(size)*c.PerByte
}

// PuzzleTime draws a virtual solve time for a proof-of-work puzzle with the
// given zero-bit difficulty. Iterations to the first success are geometric
// with p = 2^-bits; the exponential distribution is its continuous analog
// and indistinguishable at these scales. hashRateScale scales the solver's
// effective rate (colluding attackers performing joint computation get
// scale = f, §6.2).
func (c CostModel) PuzzleTime(bits int, hashRateScale float64, u float64) time.Duration {
	if bits <= 0 {
		bits = 0
	}
	rate := c.HashRate * hashRateScale
	if rate <= 0 {
		rate = c.HashRate
	}
	mean := math.Exp2(float64(bits)) / rate // seconds
	if u <= 0 {
		u = 0.5
	}
	sec := -math.Log(u) * mean
	// A single hash is the floor.
	if min := 1.0 / rate; sec < min {
		sec = min
	}
	if sec > 1e9 { // cap at ~31 years to keep Time arithmetic sane
		sec = 1e9
	}
	return time.Duration(sec * float64(time.Second))
}

// ExpectedPuzzleTime returns the mean solve time at the given difficulty,
// used by Figure 12's deterministic cost table.
func (c CostModel) ExpectedPuzzleTime(bits int, hashRateScale float64) time.Duration {
	rate := c.HashRate * hashRateScale
	if rate <= 0 {
		rate = c.HashRate
	}
	sec := math.Exp2(float64(bits)) / rate
	if sec > 1e9 {
		sec = 1e9
	}
	return time.Duration(sec * float64(time.Second))
}

// CPU models one serial virtual processor. Arriving work is executed in
// FIFO order; Schedule returns the completion time.
type CPU struct {
	sched *Scheduler
	free  Time
	// Busy accumulates total busy time for utilization reporting.
	Busy Time
}

// NewCPU creates a CPU bound to the scheduler.
func NewCPU(sched *Scheduler) *CPU { return &CPU{sched: sched} }

// Schedule enqueues work costing d and runs fn at its completion time.
func (c *CPU) Schedule(d time.Duration, fn func()) {
	now := c.sched.Now()
	if c.free < now {
		c.free = now
	}
	start := c.free
	c.free = start + Time(d)
	c.Busy += Time(d)
	c.sched.At(c.free, fn)
}

// Utilization returns the busy fraction over the elapsed virtual time.
func (c *CPU) Utilization() float64 {
	now := c.sched.Now()
	if now == 0 {
		return 0
	}
	return float64(c.Busy) / float64(now)
}
