package sim

import (
	"math/rand"
	"time"
)

// Addr identifies a network endpoint: servers use positive IDs in the
// server plane, clients positive IDs in the client plane.
type Addr struct {
	Client bool
	ID     uint32
}

// ServerAddr builds a server endpoint address.
func ServerAddr(id uint16) Addr { return Addr{ID: uint32(id)} }

// ClientAddr builds a client endpoint address.
func ClientAddr(id uint32) Addr { return Addr{Client: true, ID: id} }

// LatencyModel draws one-way propagation delays. Implementations must take
// all randomness from the supplied rng.
type LatencyModel interface {
	Sample(rng *rand.Rand) time.Duration
}

// FixedLatency is a constant propagation delay.
type FixedLatency time.Duration

// Sample implements LatencyModel.
func (l FixedLatency) Sample(*rand.Rand) time.Duration { return time.Duration(l) }

// UniformLatency draws uniformly from [Min, Max].
type UniformLatency struct{ Min, Max time.Duration }

// Sample implements LatencyModel.
func (l UniformLatency) Sample(rng *rand.Rand) time.Duration {
	if l.Max <= l.Min {
		return l.Min
	}
	return l.Min + time.Duration(rng.Int63n(int64(l.Max-l.Min)))
}

// NormalLatency draws from a normal distribution truncated at Floor. It
// reproduces the paper's netem configuration "d = 10±5 ms at normal
// distribution" on top of the raw datacenter latency.
type NormalLatency struct {
	Mean   time.Duration
	StdDev time.Duration
	Floor  time.Duration
}

// Sample implements LatencyModel.
func (l NormalLatency) Sample(rng *rand.Rand) time.Duration {
	d := time.Duration(rng.NormFloat64()*float64(l.StdDev)) + l.Mean
	if d < l.Floor {
		return l.Floor
	}
	return d
}

// NetemLatency layers an extra delay distribution (the emulated netem delay
// d) on top of a base raw-network latency, matching §6.1's methodology.
type NetemLatency struct {
	Base  LatencyModel
	Extra LatencyModel
}

// Sample implements LatencyModel.
func (l NetemLatency) Sample(rng *rand.Rand) time.Duration {
	d := l.Base.Sample(rng)
	if l.Extra != nil {
		d += l.Extra.Sample(rng)
	}
	return d
}

// NetworkConfig describes the simulated fabric.
type NetworkConfig struct {
	// Latency is the one-way propagation model between any two endpoints.
	Latency LatencyModel
	// Bandwidth is the per-directed-link capacity in bytes/second
	// (the paper measured ~400 MB/s with iperf). Zero means unlimited.
	Bandwidth float64
	// DropRate is the probability an individual message is lost.
	DropRate float64
}

// DefaultNetworkConfig mirrors the paper's testbed: raw latency under 2 ms
// and 400 MB/s TCP bandwidth.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{
		Latency:   UniformLatency{Min: 500 * time.Microsecond, Max: 2 * time.Millisecond},
		Bandwidth: 400 << 20,
	}
}

// WANNetworkConfig models a geo-distributed deployment: ~40±10 ms one-way
// propagation (inter-region distances) over 50 MB/s links. Chaos scenarios
// use it to exercise the protocol far outside the paper's single-datacenter
// profile.
func WANNetworkConfig() NetworkConfig {
	return NetworkConfig{
		Latency:   NormalLatency{Mean: 40 * time.Millisecond, StdDev: 10 * time.Millisecond, Floor: 5 * time.Millisecond},
		Bandwidth: 50 << 20,
	}
}

// Handler consumes a delivered message at an endpoint.
type Handler func(from Addr, payload any, size int)

// Network simulates point-to-point message delivery with propagation
// latency, per-directed-link bandwidth serialization, loss, and partitions.
type Network struct {
	sched *Scheduler
	cfg   NetworkConfig

	handlers map[Addr]Handler
	linkFree map[[2]Addr]Time // next time the directed link is idle
	lastArr  map[[2]Addr]Time // last delivery time per link (TCP in-order)
	cut      map[[2]Addr]bool // severed directed links (partitions, crashes)

	// Stats
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// NewNetwork creates a network on top of the scheduler.
func NewNetwork(sched *Scheduler, cfg NetworkConfig) *Network {
	if cfg.Latency == nil {
		cfg.Latency = DefaultNetworkConfig().Latency
	}
	return &Network{
		sched:    sched,
		cfg:      cfg,
		handlers: make(map[Addr]Handler),
		linkFree: make(map[[2]Addr]Time),
		lastArr:  make(map[[2]Addr]Time),
		cut:      make(map[[2]Addr]bool),
	}
}

// Register installs the delivery handler for an endpoint.
func (n *Network) Register(at Addr, h Handler) { n.handlers[at] = h }

// SetCut severs or restores the directed link from → to. Severed links drop
// all traffic, modeling crashes and partitions.
func (n *Network) SetCut(from, to Addr, cut bool) {
	key := [2]Addr{from, to}
	if cut {
		n.cut[key] = true
	} else {
		delete(n.cut, key)
	}
}

// SetLatency swaps the propagation model at runtime (chaos scenarios degrade
// and restore the fabric mid-run). Messages already in flight keep their
// sampled delays. A nil model is ignored.
func (n *Network) SetLatency(m LatencyModel) {
	if m != nil {
		n.cfg.Latency = m
	}
}

// SetDropRate changes the per-message loss probability at runtime.
func (n *Network) SetDropRate(p float64) { n.cfg.DropRate = p }

// SetBandwidth changes the per-directed-link capacity (bytes/second) at
// runtime. Zero means unlimited.
func (n *Network) SetBandwidth(bps float64) { n.cfg.Bandwidth = bps }

// Config returns the current fabric configuration (the base profile chaos
// scenarios restore after a degradation window).
func (n *Network) Config() NetworkConfig { return n.cfg }

// Isolate severs or restores all links to and from an endpoint.
func (n *Network) Isolate(at Addr, isolated bool) {
	for other := range n.handlers {
		if other == at {
			continue
		}
		n.SetCut(at, other, isolated)
		n.SetCut(other, at, isolated)
	}
}

// Send queues a message for delivery. size is the modeled wire size in
// bytes; it drives bandwidth serialization. Delivery order between a pair of
// endpoints follows the per-link FIFO queue (TCP-like), but different links
// are independent.
func (n *Network) Send(from, to Addr, payload any, size int) {
	n.Sent++
	n.Bytes += uint64(size)
	if n.cut[[2]Addr{from, to}] {
		n.Dropped++
		return
	}
	if n.cfg.DropRate > 0 && n.sched.RNG().Float64() < n.cfg.DropRate {
		n.Dropped++
		return
	}
	now := n.sched.Now()
	depart := now
	if n.cfg.Bandwidth > 0 {
		key := [2]Addr{from, to}
		free := n.linkFree[key]
		if free < now {
			free = now
		}
		txTime := Time(float64(size) / n.cfg.Bandwidth * float64(time.Second))
		depart = free + txTime
		n.linkFree[key] = depart
	}
	arrive := depart + Time(n.cfg.Latency.Sample(n.sched.RNG()))
	// TCP-like links deliver in order: a message never overtakes an
	// earlier one on the same directed link, even when its sampled
	// propagation delay is shorter.
	key := [2]Addr{from, to}
	if last := n.lastArr[key]; arrive < last {
		arrive = last
	}
	n.lastArr[key] = arrive
	n.sched.At(arrive, func() {
		h, ok := n.handlers[to]
		if !ok {
			n.Dropped++
			return
		}
		n.Delivered++
		h(from, payload, size)
	})
}
