package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.RunUntil(Duration(time.Second))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != Duration(time.Second) {
		t.Fatalf("clock not advanced to limit: %v", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	at := Duration(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.RunUntil(at)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	tm.Cancel()
	s.RunUntil(Duration(time.Second))
	if fired {
		t.Fatal("canceled timer fired")
	}
	tm.Cancel() // double-cancel is a no-op
	var nilTimer *Timer
	nilTimer.Cancel() // nil-cancel is a no-op
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			s.After(time.Millisecond, tick)
		}
	}
	s.After(time.Millisecond, tick)
	s.RunUntil(Duration(time.Second))
	if count != 100 {
		t.Fatalf("nested ticks = %d, want 100", count)
	}
}

func TestNetworkLatencyAndOrder(t *testing.T) {
	s := NewScheduler(7)
	n := NewNetwork(s, NetworkConfig{Latency: FixedLatency(2 * time.Millisecond)})
	a, b := ServerAddr(1), ServerAddr(2)
	var got []int
	var at []Time
	n.Register(b, func(from Addr, payload any, size int) {
		got = append(got, payload.(int))
		at = append(at, s.Now())
	})
	n.Send(a, b, 1, 100)
	n.Send(a, b, 2, 100)
	s.RunUntil(Duration(time.Second))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivery broken: %v", got)
	}
	if at[0] != Duration(2*time.Millisecond) {
		t.Fatalf("latency not applied: %v", at[0])
	}
}

func TestNetworkBandwidthSerialization(t *testing.T) {
	s := NewScheduler(7)
	// 1 MB/s bandwidth, zero propagation: a 1 MB message takes 1 s on the link.
	n := NewNetwork(s, NetworkConfig{Latency: FixedLatency(0), Bandwidth: 1 << 20})
	a, b := ServerAddr(1), ServerAddr(2)
	var at []Time
	n.Register(b, func(from Addr, payload any, size int) { at = append(at, s.Now()) })
	n.Send(a, b, "x", 1<<20)
	n.Send(a, b, "y", 1<<20)
	s.RunUntil(Duration(10 * time.Second))
	if len(at) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(at))
	}
	if d := at[0].ToDuration(); d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("first delivery at %v, want ~1s", d)
	}
	if d := at[1].ToDuration(); d < 1900*time.Millisecond || d > 2100*time.Millisecond {
		t.Fatalf("second delivery at %v, want ~2s (serialized)", d)
	}
}

func TestNetworkCutAndIsolate(t *testing.T) {
	s := NewScheduler(7)
	n := NewNetwork(s, NetworkConfig{Latency: FixedLatency(time.Millisecond)})
	a, b := ServerAddr(1), ServerAddr(2)
	delivered := 0
	n.Register(a, func(Addr, any, int) { delivered++ })
	n.Register(b, func(Addr, any, int) { delivered++ })
	n.SetCut(a, b, true)
	n.Send(a, b, "x", 10)
	n.Send(b, a, "y", 10) // reverse direction unaffected
	s.RunUntil(Duration(time.Second))
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (directed cut)", delivered)
	}
	n.SetCut(a, b, false)
	n.Send(a, b, "x", 10)
	s.RunUntil(Duration(2 * time.Second))
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 after restore", delivered)
	}
	n.Isolate(b, true)
	n.Send(a, b, "x", 10)
	n.Send(b, a, "y", 10)
	s.RunUntil(Duration(3 * time.Second))
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 while isolated", delivered)
	}
}

func TestNetworkDropRate(t *testing.T) {
	s := NewScheduler(42)
	n := NewNetwork(s, NetworkConfig{Latency: FixedLatency(0), DropRate: 0.5})
	a, b := ServerAddr(1), ServerAddr(2)
	delivered := 0
	n.Register(b, func(Addr, any, int) { delivered++ })
	for i := 0; i < 1000; i++ {
		n.Send(a, b, i, 8)
	}
	s.RunUntil(Duration(time.Second))
	if delivered < 400 || delivered > 600 {
		t.Fatalf("delivered = %d, want ~500", delivered)
	}
}

func TestCPUSerialization(t *testing.T) {
	s := NewScheduler(1)
	cpu := NewCPU(s)
	var done []Time
	cpu.Schedule(10*time.Millisecond, func() { done = append(done, s.Now()) })
	cpu.Schedule(10*time.Millisecond, func() { done = append(done, s.Now()) })
	s.RunUntil(Duration(time.Second))
	if len(done) != 2 {
		t.Fatalf("completions = %d", len(done))
	}
	if done[0] != Duration(10*time.Millisecond) || done[1] != Duration(20*time.Millisecond) {
		t.Fatalf("CPU not serialized: %v", done)
	}
	if u := cpu.Utilization(); u <= 0 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestLatencyModels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := UniformLatency{Min: time.Millisecond, Max: 2 * time.Millisecond}
	for i := 0; i < 100; i++ {
		d := u.Sample(rng)
		if d < u.Min || d > u.Max {
			t.Fatalf("uniform sample %v out of range", d)
		}
	}
	nl := NormalLatency{Mean: 10 * time.Millisecond, StdDev: 5 * time.Millisecond, Floor: time.Millisecond}
	var sum time.Duration
	for i := 0; i < 2000; i++ {
		d := nl.Sample(rng)
		if d < nl.Floor {
			t.Fatalf("normal sample below floor: %v", d)
		}
		sum += d
	}
	mean := sum / 2000
	if mean < 8*time.Millisecond || mean > 12*time.Millisecond {
		t.Fatalf("normal mean %v, want ~10ms", mean)
	}
	ne := NetemLatency{Base: FixedLatency(time.Millisecond), Extra: FixedLatency(10 * time.Millisecond)}
	if d := ne.Sample(rng); d != 11*time.Millisecond {
		t.Fatalf("netem sample %v, want 11ms", d)
	}
}

func TestPuzzleTimeScaling(t *testing.T) {
	c := DefaultCostModel()
	// Expected time doubles per difficulty bit.
	t8 := c.ExpectedPuzzleTime(8, 1)
	t9 := c.ExpectedPuzzleTime(9, 1)
	if r := float64(t9) / float64(t8); r < 1.9 || r > 2.1 {
		t.Fatalf("difficulty scaling ratio = %v, want 2", r)
	}
	// Paper §4.2.4: "less than 20 ms for rp < 5" at 8 bits/rp; rp=4 → 32 bits
	// is ~430 s at 10 MH/s... the paper's "negligible" range refers to low
	// rp. rp=2 (16 bits) must be well under 20 ms.
	if d := c.ExpectedPuzzleTime(16, 1); d > 20*time.Millisecond {
		t.Fatalf("rp=2 puzzle expected %v, want < 20ms", d)
	}
	// Collusion: f=3 attackers share work, 3x rate.
	solo := c.ExpectedPuzzleTime(24, 1)
	joint := c.ExpectedPuzzleTime(24, 3)
	if r := float64(solo) / float64(joint); r < 2.9 || r > 3.1 {
		t.Fatalf("collusion scaling = %v, want 3", r)
	}
}

func TestPuzzleTimeDistribution(t *testing.T) {
	c := DefaultCostModel()
	rng := rand.New(rand.NewSource(11))
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		sum += c.PuzzleTime(16, 1, rng.Float64())
	}
	mean := sum / n
	want := c.ExpectedPuzzleTime(16, 1)
	if mean < want/2 || mean > want*2 {
		t.Fatalf("sampled mean %v, expected around %v", mean, want)
	}
}

func TestPropertySchedulerNeverRunsBackwards(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler(3)
		var last Time = -1
		ok := true
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.RunUntil(Duration(time.Second))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
