package transport

import (
	"testing"
	"time"

	"prestigebft/internal/types"
)

// collect returns a handler that forwards envelopes to a channel.
func collect() (Handler, chan *Envelope) {
	ch := make(chan *Envelope, 16)
	return func(env *Envelope) { ch <- env }, ch
}

func TestGobRoundtrip(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewServerTransport(1)
	defer cli.Close()

	msgs := []types.Message{
		&types.Prop{Tx: types.Transaction{Timestamp: 5, Client: 3, Data: []byte("abc")}, D: types.Digest{1}, Sig: []byte("s")},
		&types.Ord{From: 1, V: 2, N: 3, Txs: []types.Transaction{{Timestamp: 9, Client: 1, Data: []byte("x")}}, Sig: []byte("s")},
		&types.CampVC{From: 1, VPrime: 7, RP: 4, Nonce: []byte{1, 2}, Sig: []byte("s")},
		&types.VcBlockMsg{From: 1, Block: *types.GenesisVcBlock(4, 1, 1, 1), Sig: []byte("s")},
		&types.SyncResp{From: 1, Kind: types.SyncTx, TxBlocks: []types.TxBlock{*types.GenesisTxBlock()}},
	}
	for _, m := range msgs {
		if err := cli.Send(srv.Addr(), m); err != nil {
			t.Fatalf("send %s: %v", m.Type(), err)
		}
	}
	for _, want := range msgs {
		select {
		case env := <-ch:
			if env.FromServer != 1 {
				t.Fatalf("sender identity lost: %+v", env)
			}
			if env.Msg.Type() != want.Type() {
				t.Fatalf("got %s, want %s (in-order delivery)", env.Msg.Type(), want.Type())
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %s", want.Type())
		}
	}

	// Payload integrity on a representative message.
	cli2 := NewClientTransport(9)
	defer cli2.Close()
	orig := &types.Prop{Tx: types.Transaction{Timestamp: 42, Client: 9, Data: []byte("payload")}, Sig: []byte("sig")}
	orig.D = orig.Tx.Digest()
	if err := cli2.Send(srv.Addr(), orig); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-ch:
		if env.FromClient != 9 {
			t.Fatalf("client identity lost: %+v", env)
		}
		got := env.Msg.(*types.Prop)
		if got.Tx.Timestamp != 42 || string(got.Tx.Data) != "payload" || got.D != orig.D {
			t.Fatalf("payload mangled: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
}

func TestSendToDeadPeerFails(t *testing.T) {
	cli := NewServerTransport(1)
	defer cli.Close()
	if err := cli.Send("127.0.0.1:1", &types.Ref{From: 1, Sig: []byte("s")}); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	// The loss is visible in the counters even when the error is discarded.
	st := cli.Stats()
	if st.Sent != 1 || st.Dropped != 1 {
		t.Fatalf("stats after dial failure = %+v, want Sent=1 Dropped=1", st)
	}
	if st.Bytes != 0 || st.Delivered != 0 {
		t.Fatalf("stats after dial failure = %+v, want no bytes or deliveries", st)
	}
}

// TestStatsAccounting: successful traffic shows up in both endpoints'
// counters — Sent/Bytes on the sender, Delivered on the receiver — mirroring
// sim.Network's delivery stats.
func TestStatsAccounting(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewServerTransport(1)
	defer cli.Close()

	const sends = 5
	for i := 0; i < sends; i++ {
		if err := cli.Send(srv.Addr(), &types.Ref{From: 1, V: types.View(i), Sig: []byte("s")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sends; i++ {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out draining")
		}
	}
	cs := cli.Stats()
	if cs.Sent != sends || cs.Dropped != 0 {
		t.Fatalf("client stats = %+v, want Sent=%d Dropped=0", cs, sends)
	}
	if cs.Bytes == 0 {
		t.Fatal("client wrote no bytes despite successful sends")
	}
	ss := srv.Stats()
	if ss.Delivered != sends {
		t.Fatalf("server stats = %+v, want Delivered=%d", ss, sends)
	}
}

func TestConnectionReuseAndRecovery(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli := NewServerTransport(1)
	defer cli.Close()

	if err := cli.Send(addr, &types.Ref{From: 1, V: 1, Sig: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	<-ch
	// Kill the server, sends should start failing (possibly after one
	// buffered write), then recover once a new listener appears.
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cli.Send(addr, &types.Ref{From: 1, V: 2, Sig: []byte("s")}) != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2 := NewServerTransport(2)
	if err := srv2.Listen(addr, h); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		if err := cli.Send(addr, &types.Ref{From: 1, V: 3, Sig: []byte("s")}); err == nil {
			ok = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatal("transport did not recover after listener restart")
	}
}
