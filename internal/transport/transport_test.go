package transport

import (
	"sync"
	"testing"
	"time"

	"prestigebft/internal/types"
)

// collect returns a handler that forwards envelopes to a channel.
func collect() (Handler, chan *Envelope) {
	ch := make(chan *Envelope, 16)
	return func(env *Envelope) { ch <- env }, ch
}

func TestGobRoundtrip(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewServerTransport(1)
	defer cli.Close()

	msgs := []types.Message{
		&types.Prop{Tx: types.Transaction{Timestamp: 5, Client: 3, Data: []byte("abc")}, D: types.Digest{1}, Sig: []byte("s")},
		&types.Ord{From: 1, V: 2, N: 3, Txs: []types.Transaction{{Timestamp: 9, Client: 1, Data: []byte("x")}}, Sig: []byte("s")},
		&types.CampVC{From: 1, VPrime: 7, RP: 4, Nonce: []byte{1, 2}, Sig: []byte("s")},
		&types.VcBlockMsg{From: 1, Block: *types.GenesisVcBlock(4, 1, 1, 1), Sig: []byte("s")},
		&types.SyncResp{From: 1, Kind: types.SyncTx, TxBlocks: []types.TxBlock{*types.GenesisTxBlock()}},
	}
	for _, m := range msgs {
		if err := cli.Send(srv.Addr(), m); err != nil {
			t.Fatalf("send %s: %v", m.Type(), err)
		}
	}
	for _, want := range msgs {
		select {
		case env := <-ch:
			if env.FromServer != 1 {
				t.Fatalf("sender identity lost: %+v", env)
			}
			if env.Msg.Type() != want.Type() {
				t.Fatalf("got %s, want %s (in-order delivery)", env.Msg.Type(), want.Type())
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %s", want.Type())
		}
	}

	// Payload integrity on a representative message.
	cli2 := NewClientTransport(9)
	defer cli2.Close()
	orig := &types.Prop{Tx: types.Transaction{Timestamp: 42, Client: 9, Data: []byte("payload")}, Sig: []byte("sig")}
	orig.D = orig.Tx.Digest()
	if err := cli2.Send(srv.Addr(), orig); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-ch:
		if env.FromClient != 9 {
			t.Fatalf("client identity lost: %+v", env)
		}
		got := env.Msg.(*types.Prop)
		if got.Tx.Timestamp != 42 || string(got.Tx.Data) != "payload" || got.D != orig.D {
			t.Fatalf("payload mangled: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
}

func TestSendToDeadPeerFails(t *testing.T) {
	cli := NewServerTransport(1)
	defer cli.Close()
	if err := cli.Send("127.0.0.1:1", &types.Ref{From: 1, Sig: []byte("s")}); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	// The loss is visible in the counters even when the error is discarded.
	st := cli.Stats()
	if st.Sent != 1 || st.Dropped != 1 {
		t.Fatalf("stats after dial failure = %+v, want Sent=1 Dropped=1", st)
	}
	if st.Bytes != 0 || st.Delivered != 0 {
		t.Fatalf("stats after dial failure = %+v, want no bytes or deliveries", st)
	}
}

// TestStatsAccounting: successful traffic shows up in both endpoints'
// counters — Sent/Bytes on the sender, Delivered on the receiver — mirroring
// sim.Network's delivery stats.
func TestStatsAccounting(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewServerTransport(1)
	defer cli.Close()

	const sends = 5
	for i := 0; i < sends; i++ {
		if err := cli.Send(srv.Addr(), &types.Ref{From: 1, V: types.View(i), Sig: []byte("s")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sends; i++ {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out draining")
		}
	}
	cs := cli.Stats()
	if cs.Sent != sends || cs.Dropped != 0 {
		t.Fatalf("client stats = %+v, want Sent=%d Dropped=0", cs, sends)
	}
	if cs.Bytes == 0 {
		t.Fatal("client wrote no bytes despite successful sends")
	}
	ss := srv.Stats()
	if ss.Delivered != sends {
		t.Fatalf("server stats = %+v, want Delivered=%d", ss, sends)
	}
}

// TestBinaryCodecRoundtrip: a binary-codec sender delivers both hot
// (codec-framed) and cold (embedded-gob) messages to an unmodified receiver,
// which auto-detects the format from the connection preamble.
func TestBinaryCodecRoundtrip(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewServerTransport(1)
	cli.SetWireCodec(CodecBinary)
	defer cli.Close()

	qc := types.QC{Kind: types.QCOrdering, View: 1, Seq: 2, Digest: types.Digest{3},
		Signers: []types.ServerID{1, 2, 3}, Sigs: [][]byte{{1}, {2}, {3}}}
	msgs := []types.Message{
		&types.Prop{Tx: types.Transaction{Timestamp: 5, Client: 3, Data: []byte("abc")}, D: types.Digest{1}, Sig: []byte("s")},
		&types.Cmt{From: 1, V: 1, N: 2, OrderingQC: qc, Sig: []byte("s")},
		&types.CampVC{From: 1, VPrime: 7, RP: 4, Nonce: []byte{1, 2}, Sig: []byte("s")}, // cold: gob fallback frame
		&types.SyncResp{From: 1, Kind: types.SyncTx, TxBlocks: []types.TxBlock{*types.GenesisTxBlock()}},
	}
	for _, m := range msgs {
		if err := cli.Send(srv.Addr(), m); err != nil {
			t.Fatalf("send %s: %v", m.Type(), err)
		}
	}
	for _, want := range msgs {
		select {
		case env := <-ch:
			if env.FromServer != 1 {
				t.Fatalf("sender identity lost: %+v", env)
			}
			if env.Msg.Type() != want.Type() {
				t.Fatalf("got %s, want %s (in-order delivery)", env.Msg.Type(), want.Type())
			}
			if cmt, ok := env.Msg.(*types.Cmt); ok {
				if cmt.OrderingQC.Len() != 3 || string(cmt.OrderingQC.Sigs[1]) != "\x02" {
					t.Fatalf("QC mangled in transit: %+v", cmt.OrderingQC)
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %s", want.Type())
		}
	}
	if cli.Stats().Bytes == 0 {
		t.Fatal("binary sends wrote no counted bytes")
	}
}

// TestConcurrentDialCountsInstalledOnly: when many goroutines race the first
// send to a peer, only the connection actually installed in the cache counts
// as a dial — race losers discard theirs without touching the counters.
func TestConcurrentDialCountsInstalledOnly(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewServerTransport(1)
	defer cli.Close()

	const senders = 16
	var wg sync.WaitGroup
	wg.Add(senders)
	for i := 0; i < senders; i++ {
		i := i
		go func() {
			defer wg.Done()
			if err := cli.Send(srv.Addr(), &types.Ref{From: 1, V: types.View(i), Sig: []byte("s")}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < senders; i++ {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out draining")
		}
	}
	ps := cli.PeerStats()[srv.Addr()]
	if ps.Dials != 1 || ps.Redials != 0 {
		t.Fatalf("peer stats after concurrent first sends = %+v, want Dials=1 Redials=0", ps)
	}
	if ps.Sent != senders || ps.Dropped != 0 {
		t.Fatalf("peer stats = %+v, want Sent=%d Dropped=0", ps, senders)
	}
}

// TestCachedConnRetryAfterPeerRestart: when the peer restarts, the sender's
// cached connection is a stale corpse whose encode eventually fails; the
// transport must redial and resend that same message once instead of losing
// it, and the retry must be visible in the per-peer counters.
func TestCachedConnRetryAfterPeerRestart(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli := NewServerTransport(1)
	defer cli.Close()

	if err := cli.Send(addr, &types.Ref{From: 1, V: 1, Sig: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	<-ch
	// Restart the peer: the old listener and its accepted conns die, a new
	// listener takes over the address, and the client still holds the corpse.
	srv.Close()
	h2, ch2 := collect()
	srv2 := NewServerTransport(2)
	if err := srv2.Listen(addr, h2); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	// The first write after a peer restart may still land in the kernel
	// buffer before the RST arrives, so poll until a send exercises the
	// retry path. The send that triggers it must report success — that is
	// the bug under test: the message rides the fresh connection instead of
	// being dropped with an error.
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) && !recovered {
		before := cli.PeerStats()[addr].Retries
		err := cli.Send(addr, &types.Ref{From: 1, V: 7, Sig: []byte("s")})
		after := cli.PeerStats()[addr]
		if after.Retries > before {
			if err != nil {
				t.Fatalf("retry path still returned an error: %v (stats %+v)", err, after)
			}
			recovered = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("no send exercised the cached-conn retry path")
	}
	// The retried message really arrived at the restarted peer.
	gotV7 := false
	for !gotV7 {
		select {
		case env := <-ch2:
			if ref, ok := env.Msg.(*types.Ref); ok && ref.V == 7 {
				gotV7 = true
			}
		case <-time.After(5 * time.Second):
			t.Fatal("retried message never delivered to restarted peer")
		}
	}
	ps := cli.PeerStats()[addr]
	if ps.Retries == 0 || ps.Evictions == 0 {
		t.Fatalf("peer stats = %+v, want Retries>0 and Evictions>0", ps)
	}
}

func TestConnectionReuseAndRecovery(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli := NewServerTransport(1)
	defer cli.Close()

	if err := cli.Send(addr, &types.Ref{From: 1, V: 1, Sig: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	<-ch
	// Kill the server, sends should start failing (possibly after one
	// buffered write), then recover once a new listener appears.
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cli.Send(addr, &types.Ref{From: 1, V: 2, Sig: []byte("s")}) != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2 := NewServerTransport(2)
	if err := srv2.Listen(addr, h); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		if err := cli.Send(addr, &types.Ref{From: 1, V: 3, Sig: []byte("s")}); err == nil {
			ok = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatal("transport did not recover after listener restart")
	}
}
