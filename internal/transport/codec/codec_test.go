package codec

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"prestigebft/internal/types"
)

// sampleMessages covers every encodable kind, with both empty and populated
// optional fields.
func sampleMessages() []types.Message {
	qc := types.QC{
		Kind:    types.QCOrdering,
		View:    3,
		Seq:     17,
		Digest:  types.Digest{1, 2, 3},
		Signers: []types.ServerID{1, 2, 3},
		Sigs:    [][]byte{{0xAA}, {0xBB, 0xCC}, {0xDD}},
	}
	cqc := qc
	cqc.Kind = types.QCCommit
	block := types.TxBlock{
		Header: types.TxBlockHeader{V: 3, N: 17, PrevHash: types.Digest{9}, BatchLen: 2},
		Txs: []types.Transaction{
			{Timestamp: 1111, Client: 1, Data: []byte("tx-a")},
			{Timestamp: 2222, Client: 2, Data: nil},
		},
		Status:     []bool{true, false},
		OrderingQC: qc,
		CommitQC:   cqc,
	}
	vcb := types.VcBlock{
		V:        4,
		LeaderID: 2,
		PrevHash: types.Digest{8},
		ConfQC:   types.QC{Kind: types.QCConf, View: 4, Signers: []types.ServerID{1, 3}, Sigs: [][]byte{{1}, {2}}},
		VcQC:     types.QC{Kind: types.QCVote, View: 4, Seq: 2, Signers: []types.ServerID{1, 2, 3}, Sigs: [][]byte{{1}, {2}, {3}}},
		RP:       map[types.ServerID]int64{1: 1, 2: 5, 3: 2},
		CI:       map[types.ServerID]int64{1: 1, 2: 2, 3: 3},
	}
	return []types.Message{
		&types.Prop{
			Tx:  types.Transaction{Timestamp: 42, Client: 7, Data: []byte("payload")},
			D:   types.Digest{4, 5},
			Sig: []byte("client-sig"),
		},
		&types.Prop{Tx: types.Transaction{Timestamp: -1, Client: 1}},
		&types.Notif{From: 2, V: 1, N: 9, TxD: types.Digest{6}, Status: true, Sig: []byte("s")},
		&types.Ord{From: 1, V: 1, N: 5, Prev: types.Digest{7}, Txs: block.Txs, Sig: []byte("leader")},
		&types.Ord{From: 1, V: 1, N: 6, Sig: []byte("empty-batch")},
		&types.OrdReply{From: 3, V: 1, N: 5, D: types.Digest{3}, Sig: []byte("vote")},
		&types.Cmt{From: 1, V: 1, N: 5, OrderingQC: qc, Sig: []byte("cmt")},
		&types.CmtReply{From: 4, V: 1, N: 5, D: types.Digest{3}, Sig: []byte("vote2")},
		&types.Adopt{From: 2, V: 6, Block: block, Sig: []byte("adopt")},
		&types.TxBlockMsg{From: 1, Block: block, Sig: []byte("blk")},
		&types.VoteCP{From: 3, Cand: 2, VPrime: 7, Locked: []types.TxBlock{block}, Sig: []byte("cp")},
		&types.VoteCP{From: 3, Cand: 2, VPrime: 7, Sig: []byte("no-locked")},
		&types.SyncReq{From: 2, Kind: types.SyncTx, Start: 3, End: 99},
		&types.SyncResp{From: 1, Kind: types.SyncTx, TxBlocks: []types.TxBlock{block}},
		&types.SyncResp{From: 1, Kind: types.SyncVc, VcBlocks: []types.VcBlock{vcb}},
		&types.SyncResp{
			From: 1, Kind: types.SyncTx,
			Snapshot: &types.SnapshotPackage{
				Cert: types.CheckpointCert{
					Header: types.CheckpointHeader{Seq: 17, View: 3, BlockHash: types.Digest{1}, AppDigest: types.Digest{2}, RepDigest: types.Digest{3}},
					QC:     cqc,
				},
				Anchor:   block,
				AppState: []byte("app-state"),
			},
		},
		&types.SyncResp{From: 4, Kind: types.SyncVc},
		&types.CkptVote{From: 2, Seq: 100, StateHash: types.Digest{5}, Sig: []byte("ck")},
	}
}

func binaryRoundtrip(t testing.TB, msg types.Message) types.Message {
	t.Helper()
	buf, ok := Append(nil, msg)
	if !ok {
		t.Fatalf("%T not encodable", msg)
	}
	out, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return out
}

func gobRoundtrip(t testing.TB, msg types.Message) types.Message {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		t.Fatalf("gob encode %T: %v", msg, err)
	}
	out := reflect.New(reflect.TypeOf(msg).Elem()).Interface()
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("gob decode %T: %v", msg, err)
	}
	return out.(types.Message)
}

// normalize rewrites zero-length slices and maps to nil, recursively. Gob
// erases the nil/empty distinction and so does the binary codec; equivalence
// is judged modulo that distinction.
func normalize(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr:
		if !v.IsNil() {
			normalize(v.Elem())
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			normalize(v.Field(i))
		}
	case reflect.Slice:
		if v.Len() == 0 {
			if !v.IsNil() && v.CanSet() {
				v.Set(reflect.Zero(v.Type()))
			}
			return
		}
		for i := 0; i < v.Len(); i++ {
			normalize(v.Index(i))
		}
	case reflect.Map:
		if v.Len() == 0 && !v.IsNil() && v.CanSet() {
			v.Set(reflect.Zero(v.Type()))
		}
	}
}

func mustEquivalent(t testing.TB, a, b types.Message) {
	t.Helper()
	normalize(reflect.ValueOf(a))
	normalize(reflect.ValueOf(b))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("codec divergence:\n binary: %#v\n    gob: %#v", a, b)
	}
}

func TestCodecGobEquivalence(t *testing.T) {
	for _, msg := range sampleMessages() {
		t.Run(msg.Type(), func(t *testing.T) {
			mustEquivalent(t, binaryRoundtrip(t, msg), gobRoundtrip(t, msg))
		})
	}
}

func TestEncodableCoversHotKinds(t *testing.T) {
	for _, msg := range sampleMessages() {
		if !Encodable(msg) {
			t.Errorf("%T not encodable", msg)
		}
	}
	// Cold kinds stay on gob.
	if Encodable(&types.CampVC{}) {
		t.Error("CampVC unexpectedly encodable (gob long tail)")
	}
	if _, ok := Append(nil, &types.CampVC{}); ok {
		t.Error("Append accepted a cold kind")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0xFF},             // unknown kind
		{kindCmt},          // truncated body
		{kindOrd, 1, 1, 1}, // truncated digest
	}
	for _, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("Decode(%x) accepted garbage", data)
		}
	}
	// Trailing bytes are an error, not silently ignored.
	buf, _ := Append(nil, &types.SyncReq{From: 1, Kind: types.SyncTx, Start: 1, End: 2})
	if _, err := Decode(append(buf, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// A hostile repetition count larger than the buffer must error, not
	// allocate.
	hostile := []byte{kindOrd, 1, 1, 1}
	hostile = append(hostile, make([]byte, 32)...)          // Prev digest
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // tx count ~2^32
	if _, err := Decode(hostile); err == nil {
		t.Error("hostile count accepted")
	}
}

// TestDecodeZeroCopy: decoded payloads alias the input buffer — the
// transport hands each frame its own buffer, so aliasing is safe and saves
// a copy per payload.
func TestDecodeZeroCopy(t *testing.T) {
	m := &types.Prop{Tx: types.Transaction{Timestamp: 1, Client: 2, Data: []byte("zero-copy")}, Sig: []byte("sig")}
	buf, _ := Append(nil, m)
	out, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*types.Prop)
	buf[len(buf)-1] ^= 0xFF // corrupt the buffer: the decoded sig must alias it
	if bytes.Equal(got.Sig, m.Sig) {
		t.Fatal("decoded signature does not alias the input buffer")
	}
}

func FuzzCodecGobEquivalence(f *testing.F) {
	for _, msg := range sampleMessages() {
		buf, _ := Append(nil, msg)
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return // malformed inputs just need to fail cleanly
		}
		// Whatever decoded must re-encode and round-trip identically
		// through both codecs.
		reenc, ok := Append(nil, msg)
		if !ok {
			t.Fatalf("decoded %T is not encodable", msg)
		}
		msg2, err := Decode(reenc)
		if err != nil {
			t.Fatalf("re-decode %T: %v", msg, err)
		}
		mustEquivalent(t, msg2, gobRoundtrip(t, msg))
	})
}

func BenchmarkBinaryRoundtripCmt(b *testing.B) {
	msg := sampleMessages()[6]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ := Append(nil, msg)
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobRoundtripCmt(b *testing.B) {
	msg := sampleMessages()[6]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
			b.Fatal(err)
		}
		out := &types.Cmt{}
		if err := gob.NewDecoder(&buf).Decode(out); err != nil {
			b.Fatal(err)
		}
	}
}
