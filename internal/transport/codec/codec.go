// Package codec is the hand-rolled binary wire codec for the hot PrestigeBFT
// message types — the live fast lane that replaces gob's per-message type
// reflection and self-describing stream overhead (DESIGN.md §14).
//
// Encoding rules:
//   - integers (views, sequence numbers, lengths, counts, timestamps) are
//     unsigned varints (encoding/binary Uvarint); signed int64 fields are
//     encoded as their two's-complement uint64 bit pattern, not zigzag —
//     protocol values are non-negative in practice, and the cast round-trips
//     all values either way;
//   - digests are 32 raw bytes, no length prefix;
//   - byte strings are uvarint length followed by the bytes; length 0
//     decodes as nil (gob equivalence: gob does not distinguish empty from
//     nil, so neither does this codec);
//   - repeated fields are a uvarint count followed by the elements; count 0
//     decodes as nil maps/slices;
//   - optional fields (SyncResp.Snapshot) are a presence byte (0/1);
//   - maps (VcBlock.RP/CI) are encoded in ascending key order so encoding
//     is deterministic; decoding accepts any order.
//
// Decoding never copies payload bytes: Transaction.Data, signatures, and
// nonces are subslices of the input buffer. Callers own the buffer and must
// not reuse it while the decoded message is alive — the transport allocates
// one buffer per inbound frame, which the decoded message then owns.
//
// Each message is framed as one kind byte followed by its body. Kind numbers
// are part of the wire protocol (negotiated by the transport's version
// magic); new kinds may be appended but existing numbers never change.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"prestigebft/internal/types"
)

// Message kind tags. Append-only; never renumber.
const (
	kindInvalid byte = iota
	kindProp
	kindNotif
	kindOrd
	kindOrdReply
	kindCmt
	kindCmtReply
	kindAdopt
	kindTxBlockMsg
	kindVoteCP
	kindSyncReq
	kindSyncResp
	kindCkptVote
)

// ErrUnknownKind reports a frame whose kind byte this codec version does not
// understand.
var ErrUnknownKind = errors.New("codec: unknown message kind")

var errTruncated = errors.New("codec: truncated message")

// Encodable reports whether the codec has a binary encoding for msg. The
// transport falls back to gob for everything else.
func Encodable(msg types.Message) bool {
	switch msg.(type) {
	case *types.Prop, *types.Notif, *types.Ord, *types.OrdReply, *types.Cmt,
		*types.CmtReply, *types.Adopt, *types.TxBlockMsg, *types.VoteCP,
		*types.SyncReq, *types.SyncResp, *types.CkptVote:
		return true
	default:
		return false
	}
}

// Append encodes msg (kind byte + body) onto buf and returns the extended
// slice. ok is false when msg has no binary encoding; buf is returned
// unchanged in that case.
func Append(buf []byte, msg types.Message) (out []byte, ok bool) {
	switch m := msg.(type) {
	case *types.Prop:
		buf = append(buf, kindProp)
		buf = appendTx(buf, &m.Tx)
		buf = append(buf, m.D[:]...)
		buf = appendBytes(buf, m.Sig)
	case *types.Notif:
		buf = append(buf, kindNotif)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.V))
		buf = appendUvarint(buf, uint64(m.N))
		buf = append(buf, m.TxD[:]...)
		buf = appendBool(buf, m.Status)
		buf = appendBytes(buf, m.Sig)
	case *types.Ord:
		buf = append(buf, kindOrd)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.V))
		buf = appendUvarint(buf, uint64(m.N))
		buf = append(buf, m.Prev[:]...)
		buf = appendUvarint(buf, uint64(len(m.Txs)))
		for i := range m.Txs {
			buf = appendTx(buf, &m.Txs[i])
		}
		buf = appendBytes(buf, m.Sig)
	case *types.OrdReply:
		buf = append(buf, kindOrdReply)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.V))
		buf = appendUvarint(buf, uint64(m.N))
		buf = append(buf, m.D[:]...)
		buf = appendBytes(buf, m.Sig)
	case *types.Cmt:
		buf = append(buf, kindCmt)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.V))
		buf = appendUvarint(buf, uint64(m.N))
		buf = appendQC(buf, &m.OrderingQC)
		buf = appendBytes(buf, m.Sig)
	case *types.CmtReply:
		buf = append(buf, kindCmtReply)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.V))
		buf = appendUvarint(buf, uint64(m.N))
		buf = append(buf, m.D[:]...)
		buf = appendBytes(buf, m.Sig)
	case *types.Adopt:
		buf = append(buf, kindAdopt)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.V))
		buf = appendTxBlock(buf, &m.Block)
		buf = appendBytes(buf, m.Sig)
	case *types.TxBlockMsg:
		buf = append(buf, kindTxBlockMsg)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendTxBlock(buf, &m.Block)
		buf = appendBytes(buf, m.Sig)
	case *types.VoteCP:
		buf = append(buf, kindVoteCP)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.Cand))
		buf = appendUvarint(buf, uint64(m.VPrime))
		buf = appendUvarint(buf, uint64(len(m.Locked)))
		for i := range m.Locked {
			buf = appendTxBlock(buf, &m.Locked[i])
		}
		buf = appendBytes(buf, m.Sig)
	case *types.SyncReq:
		buf = append(buf, kindSyncReq)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.Kind))
		buf = appendUvarint(buf, m.Start)
		buf = appendUvarint(buf, m.End)
	case *types.SyncResp:
		buf = append(buf, kindSyncResp)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.Kind))
		buf = appendUvarint(buf, uint64(len(m.TxBlocks)))
		for i := range m.TxBlocks {
			buf = appendTxBlock(buf, &m.TxBlocks[i])
		}
		buf = appendUvarint(buf, uint64(len(m.VcBlocks)))
		for i := range m.VcBlocks {
			buf = appendVcBlock(buf, &m.VcBlocks[i])
		}
		if m.Snapshot == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			s := m.Snapshot
			buf = appendUvarint(buf, uint64(s.Cert.Header.Seq))
			buf = appendUvarint(buf, uint64(s.Cert.Header.View))
			buf = append(buf, s.Cert.Header.BlockHash[:]...)
			buf = append(buf, s.Cert.Header.AppDigest[:]...)
			buf = append(buf, s.Cert.Header.RepDigest[:]...)
			buf = appendQC(buf, &s.Cert.QC)
			buf = appendTxBlock(buf, &s.Anchor)
			buf = appendBytes(buf, s.AppState)
		}
	case *types.CkptVote:
		buf = append(buf, kindCkptVote)
		buf = appendUvarint(buf, uint64(m.From))
		buf = appendUvarint(buf, uint64(m.Seq))
		buf = append(buf, m.StateHash[:]...)
		buf = appendBytes(buf, m.Sig)
	default:
		return buf, false
	}
	return buf, true
}

// Decode parses one encoded message. The returned message aliases data —
// see the package comment on buffer ownership.
func Decode(data []byte) (types.Message, error) {
	if len(data) == 0 {
		return nil, errTruncated
	}
	r := reader{buf: data[1:]}
	var msg types.Message
	switch data[0] {
	case kindProp:
		m := &types.Prop{}
		readTx(&r, &m.Tx)
		r.digest(&m.D)
		m.Sig = r.bytes()
		msg = m
	case kindNotif:
		m := &types.Notif{}
		m.From = types.ServerID(r.uvarint())
		m.V = types.View(r.uvarint())
		m.N = types.SeqNum(r.uvarint())
		r.digest(&m.TxD)
		m.Status = r.bool()
		m.Sig = r.bytes()
		msg = m
	case kindOrd:
		m := &types.Ord{}
		m.From = types.ServerID(r.uvarint())
		m.V = types.View(r.uvarint())
		m.N = types.SeqNum(r.uvarint())
		r.digest(&m.Prev)
		if n := r.count(); n > 0 {
			m.Txs = make([]types.Transaction, n)
			for i := range m.Txs {
				readTx(&r, &m.Txs[i])
			}
		}
		m.Sig = r.bytes()
		msg = m
	case kindOrdReply:
		m := &types.OrdReply{}
		m.From = types.ServerID(r.uvarint())
		m.V = types.View(r.uvarint())
		m.N = types.SeqNum(r.uvarint())
		r.digest(&m.D)
		m.Sig = r.bytes()
		msg = m
	case kindCmt:
		m := &types.Cmt{}
		m.From = types.ServerID(r.uvarint())
		m.V = types.View(r.uvarint())
		m.N = types.SeqNum(r.uvarint())
		readQC(&r, &m.OrderingQC)
		m.Sig = r.bytes()
		msg = m
	case kindCmtReply:
		m := &types.CmtReply{}
		m.From = types.ServerID(r.uvarint())
		m.V = types.View(r.uvarint())
		m.N = types.SeqNum(r.uvarint())
		r.digest(&m.D)
		m.Sig = r.bytes()
		msg = m
	case kindAdopt:
		m := &types.Adopt{}
		m.From = types.ServerID(r.uvarint())
		m.V = types.View(r.uvarint())
		readTxBlock(&r, &m.Block)
		m.Sig = r.bytes()
		msg = m
	case kindTxBlockMsg:
		m := &types.TxBlockMsg{}
		m.From = types.ServerID(r.uvarint())
		readTxBlock(&r, &m.Block)
		m.Sig = r.bytes()
		msg = m
	case kindVoteCP:
		m := &types.VoteCP{}
		m.From = types.ServerID(r.uvarint())
		m.Cand = types.ServerID(r.uvarint())
		m.VPrime = types.View(r.uvarint())
		if n := r.count(); n > 0 {
			m.Locked = make([]types.TxBlock, n)
			for i := range m.Locked {
				readTxBlock(&r, &m.Locked[i])
			}
		}
		m.Sig = r.bytes()
		msg = m
	case kindSyncReq:
		m := &types.SyncReq{}
		m.From = types.ServerID(r.uvarint())
		m.Kind = types.SyncKind(r.uvarint())
		m.Start = r.uvarint()
		m.End = r.uvarint()
		msg = m
	case kindSyncResp:
		m := &types.SyncResp{}
		m.From = types.ServerID(r.uvarint())
		m.Kind = types.SyncKind(r.uvarint())
		if n := r.count(); n > 0 {
			m.TxBlocks = make([]types.TxBlock, n)
			for i := range m.TxBlocks {
				readTxBlock(&r, &m.TxBlocks[i])
			}
		}
		if n := r.count(); n > 0 {
			m.VcBlocks = make([]types.VcBlock, n)
			for i := range m.VcBlocks {
				readVcBlock(&r, &m.VcBlocks[i])
			}
		}
		if r.bool() {
			s := &types.SnapshotPackage{}
			s.Cert.Header.Seq = types.SeqNum(r.uvarint())
			s.Cert.Header.View = types.View(r.uvarint())
			r.digest(&s.Cert.Header.BlockHash)
			r.digest(&s.Cert.Header.AppDigest)
			r.digest(&s.Cert.Header.RepDigest)
			readQC(&r, &s.Cert.QC)
			readTxBlock(&r, &s.Anchor)
			s.AppState = r.bytes()
			m.Snapshot = s
		}
		msg = m
	case kindCkptVote:
		m := &types.CkptVote{}
		m.From = types.ServerID(r.uvarint())
		m.Seq = types.SeqNum(r.uvarint())
		r.digest(&m.StateHash)
		m.Sig = r.bytes()
		msg = m
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, data[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("codec: %d trailing bytes after %T", len(r.buf), msg)
	}
	return msg, nil
}

// --- primitive writers ------------------------------------------------------

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendBytes(buf, b []byte) []byte {
	buf = appendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendTx(buf []byte, t *types.Transaction) []byte {
	buf = appendUvarint(buf, uint64(t.Timestamp))
	buf = appendUvarint(buf, uint64(t.Client))
	return appendBytes(buf, t.Data)
}

func appendQC(buf []byte, qc *types.QC) []byte {
	buf = append(buf, byte(qc.Kind))
	buf = appendUvarint(buf, uint64(qc.View))
	buf = appendUvarint(buf, uint64(qc.Seq))
	buf = append(buf, qc.Digest[:]...)
	buf = appendUvarint(buf, uint64(len(qc.Signers)))
	for _, id := range qc.Signers {
		buf = appendUvarint(buf, uint64(id))
	}
	buf = appendUvarint(buf, uint64(len(qc.Sigs)))
	for _, sig := range qc.Sigs {
		buf = appendBytes(buf, sig)
	}
	return buf
}

func appendTxBlock(buf []byte, b *types.TxBlock) []byte {
	buf = appendUvarint(buf, uint64(b.Header.V))
	buf = appendUvarint(buf, uint64(b.Header.N))
	buf = append(buf, b.Header.PrevHash[:]...)
	buf = appendUvarint(buf, uint64(b.Header.BatchLen))
	buf = appendUvarint(buf, uint64(len(b.Txs)))
	for i := range b.Txs {
		buf = appendTx(buf, &b.Txs[i])
	}
	buf = appendUvarint(buf, uint64(len(b.Status)))
	for _, s := range b.Status {
		buf = appendBool(buf, s)
	}
	buf = appendQC(buf, &b.OrderingQC)
	buf = appendQC(buf, &b.CommitQC)
	return buf
}

func appendVcBlock(buf []byte, b *types.VcBlock) []byte {
	buf = appendUvarint(buf, uint64(b.V))
	buf = appendUvarint(buf, uint64(b.LeaderID))
	buf = append(buf, b.PrevHash[:]...)
	buf = appendQC(buf, &b.ConfQC)
	buf = appendQC(buf, &b.VcQC)
	buf = appendUvarint(buf, uint64(len(b.RP)))
	for _, id := range types.SortedKeys(b.RP) {
		buf = appendUvarint(buf, uint64(id))
		buf = appendUvarint(buf, uint64(b.RP[id]))
	}
	buf = appendUvarint(buf, uint64(len(b.CI)))
	for _, id := range types.SortedKeys(b.CI) {
		buf = appendUvarint(buf, uint64(id))
		buf = appendUvarint(buf, uint64(b.CI[id]))
	}
	return buf
}

// --- primitive reader -------------------------------------------------------

// reader consumes a buffer with sticky-error semantics: after the first
// failure every read returns zero values and the error survives to the final
// check in Decode.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// count reads a repetition count and bounds it against the bytes remaining
// (every element costs at least one byte), so a hostile count cannot force a
// huge allocation before the truncation is noticed.
func (r *reader) count() int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.buf)) || v > math.MaxInt32 {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) < 1 {
		r.fail()
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b != 0
}

func (r *reader) digest(d *types.Digest) {
	if r.err != nil {
		return
	}
	if len(r.buf) < 32 {
		r.fail()
		return
	}
	copy(d[:], r.buf)
	r.buf = r.buf[32:]
}

// bytes returns a zero-copy subslice of the input; length 0 yields nil
// (matching gob, which erases the empty/nil distinction).
func (r *reader) bytes() []byte {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	b := r.buf[:n:n]
	r.buf = r.buf[n:]
	return b
}

func readTx(r *reader, t *types.Transaction) {
	t.Timestamp = int64(r.uvarint())
	t.Client = types.ClientID(r.uvarint())
	t.Data = r.bytes()
}

func readQC(r *reader, qc *types.QC) {
	if r.err != nil {
		return
	}
	if len(r.buf) < 1 {
		r.fail()
		return
	}
	qc.Kind = types.QCKind(r.buf[0])
	r.buf = r.buf[1:]
	qc.View = types.View(r.uvarint())
	qc.Seq = types.SeqNum(r.uvarint())
	r.digest(&qc.Digest)
	if n := r.count(); n > 0 {
		qc.Signers = make([]types.ServerID, n)
		for i := range qc.Signers {
			qc.Signers[i] = types.ServerID(r.uvarint())
		}
	}
	if n := r.count(); n > 0 {
		qc.Sigs = make([][]byte, n)
		for i := range qc.Sigs {
			qc.Sigs[i] = r.bytes()
		}
	}
}

func readTxBlock(r *reader, b *types.TxBlock) {
	b.Header.V = types.View(r.uvarint())
	b.Header.N = types.SeqNum(r.uvarint())
	r.digest(&b.Header.PrevHash)
	b.Header.BatchLen = uint32(r.uvarint())
	if n := r.count(); n > 0 {
		b.Txs = make([]types.Transaction, n)
		for i := range b.Txs {
			readTx(r, &b.Txs[i])
		}
	}
	if n := r.count(); n > 0 {
		b.Status = make([]bool, n)
		for i := range b.Status {
			b.Status[i] = r.bool()
		}
	}
	readQC(r, &b.OrderingQC)
	readQC(r, &b.CommitQC)
}

func readVcBlock(r *reader, b *types.VcBlock) {
	b.V = types.View(r.uvarint())
	b.LeaderID = types.ServerID(r.uvarint())
	r.digest(&b.PrevHash)
	readQC(r, &b.ConfQC)
	readQC(r, &b.VcQC)
	if n := r.count(); n > 0 {
		b.RP = make(map[types.ServerID]int64, n)
		for i := 0; i < n; i++ {
			id := types.ServerID(r.uvarint())
			b.RP[id] = int64(r.uvarint())
		}
	}
	if n := r.count(); n > 0 {
		b.CI = make(map[types.ServerID]int64, n)
		for i := 0; i < n; i++ {
			id := types.ServerID(r.uvarint())
			b.CI[id] = int64(r.uvarint())
		}
	}
}
