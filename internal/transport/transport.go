// Package transport carries protocol messages over TCP with encoding/gob,
// for live multi-process deployments (cmd/prestige-server and
// cmd/prestige-client). The discrete-event simulator bypasses it entirely.
//
// Connections are lazy and cached: the first send to a peer dials it;
// failures drop the message (BFT consensus tolerates loss — retransmission
// pressure comes from clients and timeouts), evict the cached connection,
// and arm a capped backoff so a dead peer costs one failed dial per backoff
// window instead of one per message. Identity inside the payload is
// authenticated by signatures, not by the connection.
//
// A Transport optionally routes outbound traffic through a LinkFaults layer
// (faults.go) so chaos harnesses can inject drops, latency, and partitions
// without touching the protocol stack.
package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"prestigebft/internal/transport/codec"
	"prestigebft/internal/types"
)

// Envelope frames every message with its sender.
type Envelope struct {
	FromServer types.ServerID
	FromClient types.ClientID
	Msg        types.Message
}

// Handler consumes inbound envelopes.
type Handler func(env *Envelope)

// Stats is a snapshot of a transport's traffic counters, mirroring
// sim.Network's so live deployments are observable the same way simulated
// ones are: Sent counts send attempts, Delivered inbound envelopes handed to
// the handler, Dropped messages lost to dial or encode failures (including
// losses injected by a LinkFaults layer), and Bytes the outbound wire bytes
// actually written.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// PeerStats is the per-peer slice of the traffic counters, plus the
// connection-lifecycle events that used to be invisible: dials (successful
// dials of connections actually installed in the cache — a concurrent-dial
// race loser counts nothing), redials (installed dials after the first),
// evictions (cached connections discarded on encode failure), retries
// (messages re-sent over a fresh dial after their cached connection turned
// out to be a stale corpse), and backoff-refused sends (dropped without
// dialing because the peer's redial backoff window was still open).
type PeerStats struct {
	Sent           uint64
	Dropped        uint64
	Bytes          uint64
	Dials          uint64
	Redials        uint64
	Evictions      uint64
	Retries        uint64
	BackoffRefused uint64
}

// peerCounters is the mutable form of PeerStats. Scalar fields are guarded
// by Transport.mu; bytes is atomic because the counting writer runs outside
// the lock.
type peerCounters struct {
	sent           uint64
	dropped        uint64
	dials          uint64
	redials        uint64
	evictions      uint64
	retries        uint64
	backoffRefused uint64
	bytes          atomic.Uint64
}

// Redial backoff: after a send to a peer fails, further sends fail fast
// (without dialing) until the backoff window expires. The window doubles
// per consecutive failure from backoffBase up to backoffCap, and resets on
// the first successful send.
const (
	backoffBase = 25 * time.Millisecond
	backoffCap  = 500 * time.Millisecond
)

type backoffState struct {
	failures int
	until    time.Time
	capped   bool // whether the cap transition was logged this episode
}

// Transport is one process's TCP endpoint.
type Transport struct {
	self     Envelope // sender identity stamped on outbound envelopes
	listener net.Listener
	handler  Handler

	sent            atomic.Uint64
	delivered       atomic.Uint64
	dropped         atomic.Uint64
	bytes           atomic.Uint64
	sendsAfterClose atomic.Uint64

	mu       sync.Mutex
	conns    map[string]*conn
	backoff  map[string]*backoffState
	peers    map[string]*peerCounters
	logf     func(format string, args ...any)
	faults   *LinkFaults
	delayq   map[string]chan delayedMsg
	accepted map[net.Conn]struct{}
	codec    WireCodec
	closed   bool
	done     chan struct{}
}

// WireCodec selects the outbound encoding for new connections.
type WireCodec int

const (
	// CodecGob streams gob-encoded envelopes — the legacy format every
	// transport accepts inbound.
	CodecGob WireCodec = iota
	// CodecBinary opens connections with the binary-codec magic and frames
	// hot messages through transport/codec, falling back to an embedded gob
	// blob for the long tail. Inbound direction always auto-detects, so a
	// binary sender interoperates with any receiver of this package.
	CodecBinary
)

// binaryMagic is the 4-byte preamble a binary-codec dialer writes before its
// first frame. A gob stream physically could begin with these bytes (its
// first byte is a message length), but that requires an exact 4-byte match
// against an 80-byte first gob message that no wire type here produces; the
// deployments in this repo configure both sides consistently anyway.
const binaryMagic = "PBW1"

// maxFrame bounds one binary frame (64 MiB) so a corrupt or hostile length
// prefix cannot force an unbounded allocation.
const maxFrame = 1 << 26

// Envelope frame markers: the byte after the sender IDs that says how the
// message body is encoded.
const (
	frameGob    byte = 0 // body is a self-contained gob blob of the Envelope
	frameBinary byte = 1 // body is a transport/codec message
)

// SetWireCodec selects the encoding used for connections dialed after the
// call (existing connections keep their negotiated format). The inbound
// direction is unaffected: every transport auto-detects both formats.
func (t *Transport) SetWireCodec(c WireCodec) {
	t.mu.Lock()
	t.codec = c
	t.mu.Unlock()
}

// delayedMsg is one latency-injected message waiting in a per-peer queue.
type delayedMsg struct {
	at  time.Time
	msg types.Message
}

// delayQueueCap bounds each per-peer latency queue; overflow is dropped
// (a saturated slow link loses packets, like the real thing).
const delayQueueCap = 4096

// Stats returns a consistent-enough snapshot of the traffic counters (each
// counter is individually atomic).
func (t *Transport) Stats() Stats {
	return Stats{
		Sent:      t.sent.Load(),
		Delivered: t.delivered.Load(),
		Dropped:   t.dropped.Load(),
		Bytes:     t.bytes.Load(),
	}
}

type conn struct {
	mu  sync.Mutex
	enc *gob.Encoder // gob mode only
	c   net.Conn

	// Binary-codec mode. The magic preamble is written lazily under mu by
	// the first encode, so a connection installed in the cache is complete
	// from any goroutine's perspective. scratch is the reusable frame
	// buffer; it grows to the largest frame the connection has sent.
	bin          bool
	cw           *countingWriter
	magicPending bool
	scratch      []byte
}

// encode serializes env onto the connection in its negotiated format.
func (cn *conn) encode(env *Envelope) error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if !cn.bin {
		return cn.enc.Encode(env)
	}
	if cn.magicPending {
		if _, err := io.WriteString(cn.cw, binaryMagic); err != nil {
			return err
		}
		cn.magicPending = false
	}
	// Build the body after a MaxVarintLen64 hole, then back-fill the length
	// prefix so header+body go out in one write.
	if cap(cn.scratch) < binary.MaxVarintLen64 {
		cn.scratch = make([]byte, 0, 512)
	}
	full, err := appendEnvelope(cn.scratch[:binary.MaxVarintLen64], env)
	if err != nil {
		return err
	}
	body := full[binary.MaxVarintLen64:]
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(body)))
	start := binary.MaxVarintLen64 - n
	copy(full[start:], hdr[:n])
	cn.scratch = full[:0]
	_, err = cn.cw.Write(full[start:])
	return err
}

// appendEnvelope appends env's frame body: sender IDs, a format marker, and
// the message — binary-coded for hot kinds, an embedded self-contained gob
// blob for the long tail.
func appendEnvelope(buf []byte, env *Envelope) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(env.FromServer))
	buf = binary.AppendUvarint(buf, uint64(env.FromClient))
	mark := len(buf)
	buf = append(buf, frameBinary)
	if out, ok := codec.Append(buf, env.Msg); ok {
		return out, nil
	}
	buf[mark] = frameGob
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(env); err != nil {
		return nil, err
	}
	return append(buf, blob.Bytes()...), nil
}

// decodeEnvelope parses one binary frame body. The decoded message aliases
// buf (the codec is zero-copy), so each frame gets its own buffer.
func decodeEnvelope(buf []byte) (*Envelope, error) {
	fromServer, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("transport: bad frame sender")
	}
	buf = buf[n:]
	fromClient, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("transport: bad frame sender")
	}
	buf = buf[n:]
	if len(buf) < 1 {
		return nil, fmt.Errorf("transport: empty frame")
	}
	marker := buf[0]
	buf = buf[1:]
	env := &Envelope{FromServer: types.ServerID(fromServer), FromClient: types.ClientID(fromClient)}
	switch marker {
	case frameBinary:
		msg, err := codec.Decode(buf)
		if err != nil {
			return nil, err
		}
		env.Msg = msg
	case frameGob:
		if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(env); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("transport: unknown frame marker %d", marker)
	}
	return env, nil
}

// countingWriter counts the bytes gob actually puts on the wire, both
// globally and against the destination peer.
type countingWriter struct {
	w  net.Conn
	n  *atomic.Uint64
	pn *atomic.Uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(uint64(n))
	if cw.pn != nil {
		cw.pn.Add(uint64(n))
	}
	return n, err
}

func newTransport(self Envelope) *Transport {
	return &Transport{
		self:     self,
		conns:    make(map[string]*conn),
		backoff:  make(map[string]*backoffState),
		peers:    make(map[string]*peerCounters),
		delayq:   make(map[string]chan delayedMsg),
		accepted: make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
}

// SetLogf installs a logger for connection-lifecycle transitions (peer
// unreachable, backoff capped, peer recovered). Transitions log once per
// episode, not once per attempt; nil (the default) silences them.
func (t *Transport) SetLogf(logf func(format string, args ...any)) {
	t.mu.Lock()
	t.logf = logf
	t.mu.Unlock()
}

// peer returns addr's counters, creating them on first touch. Caller holds
// t.mu.
func (t *Transport) peer(addr string) *peerCounters {
	pc := t.peers[addr]
	if pc == nil {
		pc = &peerCounters{}
		t.peers[addr] = pc
	}
	return pc
}

// PeerStats snapshots the per-peer counters, keyed by peer address.
func (t *Transport) PeerStats() map[string]PeerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]PeerStats, len(t.peers))
	for addr, pc := range t.peers {
		out[addr] = PeerStats{
			Sent:           pc.sent,
			Dropped:        pc.dropped,
			Bytes:          pc.bytes.Load(),
			Dials:          pc.dials,
			Redials:        pc.redials,
			Evictions:      pc.evictions,
			Retries:        pc.retries,
			BackoffRefused: pc.backoffRefused,
		}
	}
	return out
}

// SendsAfterClose counts sends refused because the transport was already
// closed — nonzero means some component kept transmitting past shutdown.
func (t *Transport) SendsAfterClose() uint64 { return t.sendsAfterClose.Load() }

// Unreachable lists the peers currently inside a redial-backoff window —
// the transport's view of "who looks dead right now", which /healthz folds
// into peer connectivity.
func (t *Transport) Unreachable() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	var out []string
	for addr, bo := range t.backoff {
		if bo.failures > 0 && now.Before(bo.until) {
			out = append(out, addr)
		}
	}
	return out
}

// NewServerTransport creates a transport that stamps outbound messages with
// a server identity.
func NewServerTransport(id types.ServerID) *Transport {
	return newTransport(Envelope{FromServer: id})
}

// NewClientTransport creates a transport that stamps outbound messages with
// a client identity.
func NewClientTransport(id types.ClientID) *Transport {
	return newTransport(Envelope{FromClient: id})
}

// SetFaults routes outbound sends through a fault-injection layer (nil
// removes it). Install before traffic starts; swapping mid-flight is safe.
func (t *Transport) SetFaults(f *LinkFaults) {
	t.mu.Lock()
	t.faults = f
	t.mu.Unlock()
}

// Faults returns the installed fault layer (nil when none).
func (t *Transport) Faults() *LinkFaults {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults
}

// Listen accepts inbound connections on addr and feeds envelopes to h.
func (t *Transport) Listen(addr string, h Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	t.listener = ln
	t.handler = h
	go t.acceptLoop()
	return nil
}

func (t *Transport) acceptLoop() {
	for {
		c, err := t.listener.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		go t.readLoop(c)
	}
}

func (t *Transport) readLoop(c net.Conn) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return
	}
	t.accepted[c] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(c)
	if magic, err := br.Peek(len(binaryMagic)); err == nil && string(magic) == binaryMagic {
		br.Discard(len(binaryMagic))
		t.readBinary(c, br)
		return
	}
	dec := gob.NewDecoder(br)
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			c.Close()
			return
		}
		if t.handler != nil {
			t.delivered.Add(1)
			t.handler(&env)
		}
	}
}

// readBinary drains length-prefixed binary frames from a connection that
// announced the binary codec. Each frame is read into its own buffer, which
// the decoded message then owns (the codec aliases it instead of copying).
func (t *Transport) readBinary(c net.Conn, br *bufio.Reader) {
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil || size > maxFrame {
			c.Close()
			return
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(br, buf); err != nil {
			c.Close()
			return
		}
		env, err := decodeEnvelope(buf)
		if err != nil {
			c.Close()
			return
		}
		if t.handler != nil {
			t.delivered.Add(1)
			t.handler(env)
		}
	}
}

// Send transmits msg to the peer at addr, dialing lazily. Errors are
// returned for observability but senders may ignore them: loss is within
// the fault model. Every failure also increments the Dropped counter, so a
// deployment where sends silently vanish shows up in Stats even when the
// caller discards the error.
//
// When a LinkFaults layer is installed, injected losses return nil (the
// message was "sent" as far as the caller is concerned — the fabric ate it)
// and injected latency hands the message to a per-peer delay queue whose
// drainer transmits in send order (TCP in-order semantics preserved).
func (t *Transport) Send(addr string, msg types.Message) error {
	t.sent.Add(1)
	t.mu.Lock()
	t.peer(addr).sent++
	t.mu.Unlock()
	if f := t.Faults(); f != nil {
		drop, delay := f.plan(addr)
		if drop {
			t.dropPeer(addr)
			return nil
		}
		if delay > 0 {
			t.enqueueDelayed(addr, delayedMsg{at: time.Now().Add(delay), msg: msg})
			return nil
		}
	}
	return t.transmit(addr, msg)
}

// dropPeer records one dropped message globally and against addr.
func (t *Transport) dropPeer(addr string) {
	t.dropped.Add(1)
	t.mu.Lock()
	t.peer(addr).dropped++
	t.mu.Unlock()
}

// enqueueDelayed appends a latency-injected message to addr's FIFO delay
// queue, spawning its drainer on first use.
func (t *Transport) enqueueDelayed(addr string, dm delayedMsg) {
	t.mu.Lock()
	if t.closed {
		t.peer(addr).dropped++
		t.mu.Unlock()
		t.dropped.Add(1)
		t.sendsAfterClose.Add(1)
		return
	}
	q, ok := t.delayq[addr]
	if !ok {
		q = make(chan delayedMsg, delayQueueCap)
		t.delayq[addr] = q
		go t.drainDelayed(addr, q)
	}
	t.mu.Unlock()
	select {
	case q <- dm:
	default:
		t.dropPeer(addr) // saturated slow link: tail drop
	}
}

// drainDelayed transmits one peer's delayed messages in order, sleeping
// until each release time. Exits when the transport closes.
func (t *Transport) drainDelayed(addr string, q chan delayedMsg) {
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-t.done:
			return
		case dm := <-q:
			if wait := time.Until(dm.at); wait > 0 {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(wait)
				select {
				case <-t.done:
					return
				case <-timer.C:
				}
			}
			t.transmit(addr, dm.msg)
		}
	}
}

// transmit performs the actual dial-and-encode, maintaining the connection
// cache and the redial backoff.
//
// An encode failure on a *cached* connection usually means the peer
// restarted since the last send and the cache held a stale corpse; an
// immediate redial would succeed, so the message gets exactly one
// redial-and-resend attempt. Fresh dials never retry (the peer just proved
// reachable — an immediate encode failure there is a real loss), and the
// retry itself never retries, so there is no loop. Dropped is counted only
// when the message is finally lost.
func (t *Transport) transmit(addr string, msg types.Message) error {
	cn, cached, err := t.getConn(addr, true)
	if err != nil {
		return err
	}
	env := t.self
	env.Msg = msg
	if err := cn.encode(&env); err == nil {
		t.noteSuccess(addr)
		return nil
	} else if !cached {
		t.dropConn(addr, cn, true)
		t.noteFailure(addr)
		return fmt.Errorf("send %s: %w", addr, err)
	}
	// Stale cached connection: evict it (no drop counted yet — the message
	// is still in hand) and retry once over a fresh connection.
	t.dropConn(addr, cn, false)
	t.mu.Lock()
	t.peer(addr).retries++
	t.mu.Unlock()
	cn, _, err = t.getConn(addr, false)
	if err != nil {
		return fmt.Errorf("send %s: retry: %w", addr, err)
	}
	if err := cn.encode(&env); err != nil {
		t.dropConn(addr, cn, true)
		t.noteFailure(addr)
		return fmt.Errorf("send %s: retry: %w", addr, err)
	}
	t.noteSuccess(addr)
	return nil
}

// getConn returns addr's cached connection or dials a new one, installing it
// in the cache. cached reports whether the connection pre-existed this call
// (including losing a concurrent-dial race to another goroutine — only the
// installed connection's dial is counted). Dial failures count the message
// as dropped and advance the backoff window; respectBackoff=false skips the
// backoff refusal for the retry path, which must attempt its single redial
// unconditionally.
func (t *Transport) getConn(addr string, respectBackoff bool) (cn *conn, cached bool, err error) {
	t.mu.Lock()
	if t.closed {
		t.peer(addr).dropped++
		t.mu.Unlock()
		t.dropped.Add(1)
		t.sendsAfterClose.Add(1)
		return nil, false, fmt.Errorf("send %s: transport closed", addr)
	}
	if cn := t.conns[addr]; cn != nil {
		t.mu.Unlock()
		return cn, true, nil
	}
	if respectBackoff {
		if bo := t.backoff[addr]; bo != nil && time.Now().Before(bo.until) {
			pc := t.peer(addr)
			pc.dropped++
			pc.backoffRefused++
			failures := bo.failures
			t.mu.Unlock()
			t.dropped.Add(1)
			return nil, false, fmt.Errorf("send %s: backing off after %d failures", addr, failures)
		}
	}
	mode := t.codec
	t.mu.Unlock()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.dropPeer(addr)
		t.noteFailure(addr)
		return nil, false, fmt.Errorf("dial %s: %w", addr, err)
	}
	t.mu.Lock()
	pc := t.peer(addr)
	cw := &countingWriter{w: raw, n: &t.bytes, pn: &pc.bytes}
	cn = &conn{c: raw}
	if mode == CodecBinary {
		cn.bin = true
		cn.cw = cw
		cn.magicPending = true
	} else {
		cn.enc = gob.NewEncoder(cw)
	}
	switch {
	case t.closed:
		pc.dropped++
		t.mu.Unlock()
		cn.c.Close()
		t.dropped.Add(1)
		t.sendsAfterClose.Add(1)
		return nil, false, fmt.Errorf("send %s: transport closed", addr)
	case t.conns[addr] != nil:
		// Raced with a concurrent dial; use the winner. The discarded
		// connection counts nothing — only installed dials are dials.
		existing := t.conns[addr]
		t.mu.Unlock()
		cn.c.Close()
		return existing, true, nil
	default:
		pc.dials++
		if pc.dials > 1 {
			pc.redials++
		}
		t.conns[addr] = cn
		t.mu.Unlock()
		return cn, false, nil
	}
}

// dropConn evicts cn from the cache (if it is still the cached connection
// for addr) and closes it. countLoss additionally records one dropped
// message globally and against the peer — false on the retry path, where
// the message is not lost yet.
func (t *Transport) dropConn(addr string, cn *conn, countLoss bool) {
	t.mu.Lock()
	pc := t.peer(addr)
	if countLoss {
		pc.dropped++
	}
	if t.conns != nil && t.conns[addr] == cn {
		delete(t.conns, addr)
		pc.evictions++
	}
	t.mu.Unlock()
	if countLoss {
		t.dropped.Add(1)
	}
	cn.c.Close()
}

// noteFailure advances addr's backoff window (doubling, capped), logging
// the two one-way transitions of an episode: entering backoff on the first
// failure, and hitting the cap.
func (t *Transport) noteFailure(addr string) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	bo := t.backoff[addr]
	if bo == nil {
		bo = &backoffState{}
		t.backoff[addr] = bo
	}
	bo.failures++
	d := backoffBase << (bo.failures - 1)
	if d > backoffCap || d <= 0 {
		d = backoffCap
	}
	bo.until = time.Now().Add(d)
	logf := t.logf
	entered := bo.failures == 1
	hitCap := d == backoffCap && !bo.capped
	if hitCap {
		bo.capped = true
	}
	t.mu.Unlock()
	if logf == nil {
		return
	}
	if entered {
		logf("transport: peer %s unreachable, backing off from %v", addr, backoffBase)
	}
	if hitCap {
		logf("transport: peer %s backoff capped at %v", addr, backoffCap)
	}
}

// noteSuccess clears addr's backoff state after a delivered send, logging
// the recovery transition when the peer had been failing.
func (t *Transport) noteSuccess(addr string) {
	t.mu.Lock()
	var recovered int
	if bo := t.backoff[addr]; bo != nil {
		recovered = bo.failures
		delete(t.backoff, addr)
	}
	logf := t.logf
	t.mu.Unlock()
	if recovered > 0 && logf != nil {
		logf("transport: peer %s recovered after %d failed attempts", addr, recovered)
	}
}

// Close shuts the listener and all connections — outbound and accepted
// inbound alike, so a closed transport looks like a dead process to its
// peers (their cached connections fail and evict). Sends after Close fail.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := t.conns
	t.conns = nil
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()
	close(t.done)
	if t.listener != nil {
		t.listener.Close()
	}
	for _, cn := range conns {
		cn.c.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
}

// Addr returns the bound listen address (useful with ":0").
func (t *Transport) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}
