// Package transport carries protocol messages over TCP with encoding/gob,
// for live multi-process deployments (cmd/prestige-server and
// cmd/prestige-client). The discrete-event simulator bypasses it entirely.
//
// Connections are lazy and cached: the first send to a peer dials it;
// failures drop the message (BFT consensus tolerates loss — retransmission
// pressure comes from clients and timeouts). Identity inside the payload is
// authenticated by signatures, not by the connection.
package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"prestigebft/internal/baseline/hotstuff"
	"prestigebft/internal/types"
)

// Envelope frames every message with its sender.
type Envelope struct {
	FromServer types.ServerID
	FromClient types.ClientID
	Msg        types.Message
}

func init() {
	// Concrete message types crossing the wire.
	gob.Register(&types.Prop{})
	gob.Register(&types.Notif{})
	gob.Register(&types.Compt{})
	gob.Register(&types.ConfVC{})
	gob.Register(&types.ReVC{})
	gob.Register(&types.CampVC{})
	gob.Register(&types.VoteCP{})
	gob.Register(&types.VcBlockMsg{})
	gob.Register(&types.VcYes{})
	gob.Register(&types.Ref{})
	gob.Register(&types.Rdone{})
	gob.Register(&types.Ord{})
	gob.Register(&types.OrdReply{})
	gob.Register(&types.Cmt{})
	gob.Register(&types.Adopt{})
	gob.Register(&types.CmtReply{})
	gob.Register(&types.TxBlockMsg{})
	gob.Register(&types.SyncReq{})
	gob.Register(&types.SyncResp{})
	gob.Register(&hotstuff.Prepare{})
	gob.Register(&hotstuff.Vote{})
	gob.Register(&hotstuff.PhaseAnnounce{})
	gob.Register(&hotstuff.Decide{})
	gob.Register(&hotstuff.NewView{})
}

// Handler consumes inbound envelopes.
type Handler func(env *Envelope)

// Stats is a snapshot of a transport's traffic counters, mirroring
// sim.Network's so live deployments are observable the same way simulated
// ones are: Sent counts send attempts, Delivered inbound envelopes handed to
// the handler, Dropped messages lost to dial or encode failures, and Bytes
// the outbound wire bytes actually written.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// Transport is one process's TCP endpoint.
type Transport struct {
	self     Envelope // sender identity stamped on outbound envelopes
	listener net.Listener
	handler  Handler

	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	bytes     atomic.Uint64

	mu    sync.Mutex
	conns map[string]*conn
	done  chan struct{}
}

// Stats returns a consistent-enough snapshot of the traffic counters (each
// counter is individually atomic).
func (t *Transport) Stats() Stats {
	return Stats{
		Sent:      t.sent.Load(),
		Delivered: t.delivered.Load(),
		Dropped:   t.dropped.Load(),
		Bytes:     t.bytes.Load(),
	}
}

type conn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	c   net.Conn
}

// countingWriter counts the bytes gob actually puts on the wire.
type countingWriter struct {
	w net.Conn
	n *atomic.Uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(uint64(n))
	return n, err
}

// NewServerTransport creates a transport that stamps outbound messages with
// a server identity.
func NewServerTransport(id types.ServerID) *Transport {
	return &Transport{self: Envelope{FromServer: id}, conns: make(map[string]*conn), done: make(chan struct{})}
}

// NewClientTransport creates a transport that stamps outbound messages with
// a client identity.
func NewClientTransport(id types.ClientID) *Transport {
	return &Transport{self: Envelope{FromClient: id}, conns: make(map[string]*conn), done: make(chan struct{})}
}

// Listen accepts inbound connections on addr and feeds envelopes to h.
func (t *Transport) Listen(addr string, h Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	t.listener = ln
	t.handler = h
	go t.acceptLoop()
	return nil
}

func (t *Transport) acceptLoop() {
	for {
		c, err := t.listener.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		go t.readLoop(c)
	}
}

func (t *Transport) readLoop(c net.Conn) {
	dec := gob.NewDecoder(c)
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			c.Close()
			return
		}
		if t.handler != nil {
			t.delivered.Add(1)
			t.handler(&env)
		}
	}
}

// Send transmits msg to the peer at addr, dialing lazily. Errors are
// returned for observability but senders may ignore them: loss is within
// the fault model. Every failure also increments the Dropped counter, so a
// deployment where sends silently vanish shows up in Stats even when the
// caller discards the error.
func (t *Transport) Send(addr string, msg types.Message) error {
	t.sent.Add(1)
	t.mu.Lock()
	cn, ok := t.conns[addr]
	t.mu.Unlock()
	if !ok {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.dropped.Add(1)
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		cn = &conn{enc: gob.NewEncoder(&countingWriter{w: raw, n: &t.bytes}), c: raw}
		t.mu.Lock()
		if existing, raced := t.conns[addr]; raced {
			cn.c.Close()
			cn = existing
		} else {
			t.conns[addr] = cn
		}
		t.mu.Unlock()
	}
	env := t.self
	env.Msg = msg
	cn.mu.Lock()
	err := cn.enc.Encode(&env)
	cn.mu.Unlock()
	if err != nil {
		t.dropped.Add(1)
		t.mu.Lock()
		delete(t.conns, addr)
		t.mu.Unlock()
		cn.c.Close()
		return fmt.Errorf("send %s: %w", addr, err)
	}
	return nil
}

// Close shuts the listener and all connections.
func (t *Transport) Close() {
	close(t.done)
	if t.listener != nil {
		t.listener.Close()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, cn := range t.conns {
		cn.c.Close()
	}
	t.conns = nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *Transport) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}
