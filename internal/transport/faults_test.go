package transport

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"prestigebft/internal/types"
)

// ref builds a small distinct message for traffic tests.
func ref(v int) types.Message {
	return &types.Ref{From: 1, V: types.View(v), Sig: []byte("s")}
}

// TestKillAndRestartPeer is the connection-eviction regression test: a peer
// dies, the cached connection must be evicted (sends fail instead of
// vanishing into a dead socket forever), redials must back off instead of
// hammering the dead address, and once the peer restarts on the same
// address the transport must recover without any process restart.
func TestKillAndRestartPeer(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli := NewServerTransport(1)
	defer cli.Close()

	if err := cli.Send(addr, ref(1)); err != nil {
		t.Fatal(err)
	}
	<-ch

	// Kill the peer. The next write may succeed into the kernel buffer,
	// but within a bounded window a send must fail and evict the conn.
	srv.Close()
	evicted := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cli.Send(addr, ref(2)) != nil {
			evicted = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !evicted {
		t.Fatal("sends to a dead peer never started failing — the cached connection was not evicted")
	}

	// While the peer stays dead, redials are rate-limited: at least one
	// near-immediate follow-up send must fail fast on the backoff window
	// rather than dialing (dial errors mention "dial", backoff does not).
	sawBackoff := false
	for i := 0; i < 20 && !sawBackoff; i++ {
		if err := cli.Send(addr, ref(3)); err != nil && strings.Contains(err.Error(), "backing off") {
			sawBackoff = true
		}
	}
	if !sawBackoff {
		t.Fatal("no send failed fast on the redial backoff while the peer was dead")
	}

	// Restart the peer on the same address: the transport must redial
	// (after at most the capped backoff) and deliver again.
	srv2 := NewServerTransport(2)
	if err := srv2.Listen(addr, h); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	recovered := false
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := cli.Send(addr, ref(4)); err == nil {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("transport did not recover after the peer restarted")
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("recovered send was never delivered")
	}
}

// TestSendAfterCloseFails: a closed transport refuses sends instead of
// panicking on its torn-down connection cache (a crashed replica's event
// loop can race one last send against the teardown).
func TestSendAfterCloseFails(t *testing.T) {
	cli := NewServerTransport(1)
	cli.Close()
	if err := cli.Send("127.0.0.1:1", ref(1)); err == nil {
		t.Fatal("send on a closed transport succeeded")
	}
	cli.Close() // double Close must be a no-op
}

// TestLinkFaultsBlock: a blocked link eats every message silently (nil
// error — the fabric, not the caller, lost it) and counts it as dropped;
// unblocking restores delivery.
func TestLinkFaultsBlock(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewServerTransport(1)
	defer cli.Close()
	lf := NewLinkFaults(1)
	cli.SetFaults(lf)

	lf.SetBlocked(srv.Addr(), true)
	if !lf.Blocked(srv.Addr()) {
		t.Fatal("link not reported blocked")
	}
	for i := 0; i < 5; i++ {
		if err := cli.Send(srv.Addr(), ref(i)); err != nil {
			t.Fatalf("blocked send returned error %v, want silent loss", err)
		}
	}
	select {
	case env := <-ch:
		t.Fatalf("blocked link delivered %v", env.Msg.Type())
	case <-time.After(200 * time.Millisecond):
	}
	if st := cli.Stats(); st.Dropped != 5 || st.Sent != 5 {
		t.Fatalf("stats = %+v, want Sent=5 Dropped=5", st)
	}

	lf.SetBlocked(srv.Addr(), false)
	if err := cli.Send(srv.Addr(), ref(9)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("healed link did not deliver")
	}
}

// TestLinkFaultsDropRate: a degraded link loses roughly the configured
// fraction of messages, and Restore returns it to lossless.
func TestLinkFaultsDropRate(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewServerTransport(1)
	defer cli.Close()
	lf := NewLinkFaults(42)
	cli.SetFaults(lf)
	lf.Degrade(0, 0, 0.5)

	const sends = 400
	for i := 0; i < sends; i++ {
		cli.Send(srv.Addr(), ref(i))
	}
	dropped := cli.Stats().Dropped
	if dropped < sends/4 || dropped > sends*3/4 {
		t.Fatalf("50%% drop rate lost %d of %d", dropped, sends)
	}
	// Drain what survived.
	for i := uint64(0); i < sends-dropped; i++ {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("only drained %d of %d surviving messages", i, sends-dropped)
		}
	}

	lf.Restore()
	before := cli.Stats().Dropped
	for i := 0; i < 50; i++ {
		if err := cli.Send(srv.Addr(), ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	if after := cli.Stats().Dropped; after != before {
		t.Fatalf("restored link still dropped %d messages", after-before)
	}
}

// TestLinkFaultsLatencyOrdering: injected jittery latency delays messages
// but the FIFO clamp keeps per-peer delivery in send order, matching the
// simulator's TCP in-order semantics.
func TestLinkFaultsLatencyOrdering(t *testing.T) {
	h, ch := collect()
	srv := NewServerTransport(2)
	if err := srv.Listen("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewServerTransport(1)
	defer cli.Close()
	lf := NewLinkFaults(7)
	cli.SetFaults(lf)
	lf.Degrade(20*time.Millisecond, 15*time.Millisecond, 0)

	const sends = 30
	start := time.Now()
	for i := 0; i < sends; i++ {
		if err := cli.Send(srv.Addr(), ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	last := -1
	for i := 0; i < sends; i++ {
		select {
		case env := <-ch:
			v := int(env.Msg.(*types.Ref).V)
			if v <= last {
				t.Fatalf("delivery out of order: %d after %d", v, last)
			}
			last = v
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d deliveries", i)
		}
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("30 messages with ~20ms injected latency arrived in %v — latency not applied", elapsed)
	}
}

// TestLinkFaultsPerPeer: per-peer overrides shape one link without touching
// others.
func TestLinkFaultsPerPeer(t *testing.T) {
	h1, ch1 := collect()
	srvA := NewServerTransport(2)
	if err := srvA.Listen("127.0.0.1:0", h1); err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	h2, ch2 := collect()
	srvB := NewServerTransport(3)
	if err := srvB.Listen("127.0.0.1:0", h2); err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	cli := NewServerTransport(1)
	defer cli.Close()
	lf := NewLinkFaults(3)
	cli.SetFaults(lf)
	lf.SetPeer(srvA.Addr(), PeerFaults{Drop: 1})

	for i := 0; i < 10; i++ {
		cli.Send(srvA.Addr(), ref(i))
		cli.Send(srvB.Addr(), ref(i))
	}
	for i := 0; i < 10; i++ {
		select {
		case <-ch2:
		case <-time.After(5 * time.Second):
			t.Fatal("unaffected peer missed deliveries")
		}
	}
	select {
	case <-ch1:
		t.Fatal("Drop=1 peer still received a message")
	case <-time.After(100 * time.Millisecond):
	}
	lf.ClearPeer(srvA.Addr())
	if err := cli.Send(srvA.Addr(), ref(99)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch1:
	case <-time.After(5 * time.Second):
		t.Fatal("cleared per-peer override did not restore delivery")
	}
}

// TestLatencySamplerAdapts: the sampler seam accepts any distribution.
func TestLatencySamplerAdapts(t *testing.T) {
	lf := NewLinkFaults(1)
	lf.SetBase(func(rng *rand.Rand) time.Duration { return 3 * time.Millisecond }, 0)
	drop, delay := lf.plan("x")
	if drop || delay < 3*time.Millisecond {
		t.Fatalf("base sampler ignored: drop=%v delay=%v", drop, delay)
	}
}
