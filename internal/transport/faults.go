// Link-level fault injection for live deployments, in the style of
// toxiproxy/comcast-class tools: shape a transport's outbound traffic with
// drop probabilities, added latency (with jitter), and hard partition
// blocks, globally or per peer. The chaos harness drives it to replay the
// same declarative scenarios the simulator runs (internal/scenario) against
// real TCP processes; sim.Network is the discrete-event counterpart.
package transport

import (
	"math/rand"
	"sync"
	"time"
)

// LatencySampler draws one added one-way delay. It mirrors
// sim.LatencyModel.Sample without importing the simulator: callers adapt a
// model with func(rng *rand.Rand) time.Duration { return m.Sample(rng) }.
type LatencySampler func(rng *rand.Rand) time.Duration

// PeerFaults overrides the link condition toward one peer address.
type PeerFaults struct {
	// Drop is the probability an individual message to this peer is lost.
	Drop float64
	// Extra and Jitter add a normally distributed delay (mean Extra,
	// stddev Jitter, floored at zero) to each message.
	Extra  time.Duration
	Jitter time.Duration
}

// LinkFaults shapes one Transport's outbound links. The zero value is not
// usable; construct with NewLinkFaults. All methods are safe for concurrent
// use — sends consult the current state at transmission-decision time, so a
// scenario can reshape the fabric while traffic is in flight, exactly like
// flipping netem rules under a live process.
//
// Faults are layered: a base profile (the deployment's emulated fabric, set
// once), a degrade layer (gray failure, swapped at runtime), per-peer
// overrides, and partition blocks. A message to addr is dropped if the link
// is blocked or by the maximum of the applicable drop rates; otherwise it is
// delayed by base + degrade + per-peer samples, clamped so deliveries to one
// peer stay FIFO (TCP in-order semantics, matching sim.Network's lastArr).
type LinkFaults struct {
	mu  sync.Mutex
	rng *rand.Rand

	baseLat  LatencySampler
	baseDrop float64

	degradeExtra  time.Duration
	degradeJitter time.Duration
	degrading     bool
	degradeDrop   float64

	perPeer map[string]PeerFaults
	blocked map[string]bool
	release map[string]time.Time // FIFO clamp: earliest release per peer
}

// NewLinkFaults creates a fault layer with its own seeded RNG (injected
// loss and jitter reproduce for a given seed up to goroutine scheduling).
func NewLinkFaults(seed int64) *LinkFaults {
	return &LinkFaults{
		rng:     rand.New(rand.NewSource(seed)),
		perPeer: make(map[string]PeerFaults),
		blocked: make(map[string]bool),
		release: make(map[string]time.Time),
	}
}

// SetBase installs the standing fabric profile (nil sampler = no added
// latency). Degrade/Restore layer on top of it.
func (f *LinkFaults) SetBase(lat LatencySampler, drop float64) {
	f.mu.Lock()
	f.baseLat, f.baseDrop = lat, drop
	f.mu.Unlock()
}

// Degrade turns every link slow and lossy on top of the base profile: each
// message gains a Normal(extra, jitter) delay (floored at zero) and is
// dropped with probability drop (replacing the base drop, mirroring the
// simulator's Degrade action).
func (f *LinkFaults) Degrade(extra, jitter time.Duration, drop float64) {
	f.mu.Lock()
	f.degrading = true
	f.degradeExtra, f.degradeJitter, f.degradeDrop = extra, jitter, drop
	f.mu.Unlock()
}

// Restore removes the degrade layer, returning links to the base profile.
func (f *LinkFaults) Restore() {
	f.mu.Lock()
	f.degrading = false
	f.degradeExtra, f.degradeJitter, f.degradeDrop = 0, 0, 0
	f.mu.Unlock()
}

// SetPeer installs a per-peer override (chaos-utils-style asymmetric gray
// failure on a single link).
func (f *LinkFaults) SetPeer(addr string, pf PeerFaults) {
	f.mu.Lock()
	f.perPeer[addr] = pf
	f.mu.Unlock()
}

// ClearPeer removes a per-peer override.
func (f *LinkFaults) ClearPeer(addr string) {
	f.mu.Lock()
	delete(f.perPeer, addr)
	f.mu.Unlock()
}

// SetBlocked cuts (or heals) the directed link to addr. Blocked sends are
// silently dropped — the partition-set primitive.
func (f *LinkFaults) SetBlocked(addr string, blocked bool) {
	f.mu.Lock()
	if blocked {
		f.blocked[addr] = true
	} else {
		delete(f.blocked, addr)
	}
	f.mu.Unlock()
}

// Blocked reports whether the directed link to addr is currently cut.
func (f *LinkFaults) Blocked(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.blocked[addr]
}

// plan decides the fate of one message to addr: dropped, or transmitted
// after delay. The release clamp keeps per-peer ordering under jitter.
func (f *LinkFaults) plan(addr string) (drop bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.blocked[addr] {
		return true, 0
	}
	pf := f.perPeer[addr]
	p := f.baseDrop
	if f.degrading {
		p = f.degradeDrop
	}
	if pf.Drop > p {
		p = pf.Drop
	}
	if p > 0 && f.rng.Float64() < p {
		return true, 0
	}
	if f.baseLat != nil {
		delay += f.baseLat(f.rng)
	}
	if f.degrading {
		delay += normalDelay(f.rng, f.degradeExtra, f.degradeJitter)
	}
	if pf.Extra > 0 || pf.Jitter > 0 {
		delay += normalDelay(f.rng, pf.Extra, pf.Jitter)
	}
	if delay < 0 {
		delay = 0
	}
	// FIFO clamp: never release before the previous message to this peer —
	// a zero-delay sample must still queue behind earlier delayed traffic,
	// or it would overtake it (TCP never reorders one connection's bytes).
	now := time.Now()
	at := now.Add(delay)
	if last := f.release[addr]; at.Before(last) {
		at = last
	}
	if at.After(now) {
		f.release[addr] = at
		return false, at.Sub(now)
	}
	return false, 0
}

// normalDelay draws Normal(mean, stddev) floored at zero.
func normalDelay(rng *rand.Rand, mean, stddev time.Duration) time.Duration {
	d := mean + time.Duration(rng.NormFloat64()*float64(stddev))
	if d < 0 {
		return 0
	}
	return d
}
