package transport

import (
	"encoding/gob"

	"prestigebft/internal/types"
)

// RegisterWireTypes registers concrete message types with the gob codec so
// they can cross the wire inside an Envelope's Message interface field.
//
// Each protocol package owns its wire set and registers it from its own
// init() — the transport layer knows nothing about the protocols riding on
// it (previously it imported baseline packages just to register their
// messages, an inverted dependency that also silently excluded any baseline
// the transport author forgot). A process can only decode the messages of
// protocols it imports, which is exactly right: a PrestigeBFT-only server
// has no business accepting a HotStuff proposal.
func RegisterWireTypes(msgs ...types.Message) {
	for _, m := range msgs {
		gob.Register(m)
	}
}

func init() {
	// The core PrestigeBFT wire set (package types) is owned by the
	// transport itself: every live binary speaks it.
	RegisterWireTypes(
		&types.Prop{},
		&types.Notif{},
		&types.Compt{},
		&types.ConfVC{},
		&types.ReVC{},
		&types.CampVC{},
		&types.VoteCP{},
		&types.VcBlockMsg{},
		&types.VcYes{},
		&types.Ref{},
		&types.Rdone{},
		&types.Ord{},
		&types.OrdReply{},
		&types.Cmt{},
		&types.Adopt{},
		&types.CmtReply{},
		&types.TxBlockMsg{},
		&types.CkptVote{},
		&types.SyncReq{},
		&types.SyncResp{},
	)
}
