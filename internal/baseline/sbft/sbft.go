// Package sbft implements a baseline in the style of SBFT (Gueta et al.,
// DSN'19, "sb" in the paper's figures): a linear PBFT descendant that routes
// votes through a collector and uses a dual execution path —
//
//   - fast path: the leader broadcasts a PrePrepare and waits for signature
//     shares from *all* n replicas; one full round commits the batch;
//   - slow path: if the full quorum does not arrive before the fast-path
//     timer, the leader falls back to the classic two-phase commit with
//     2f+1 shares per phase.
//
// Leadership follows the same passive rotation schedule as PBFT/HotStuff.
// The paper measured SBFT's peak at 4,872 TPS — an order of magnitude below
// HotStuff — reflecting its heavyweight threshold cryptography; experiments
// reproduce that by running sbft clusters under a calibrated
// high-cost CPU model (see DESIGN.md §4).
package sbft

import (
	"encoding/binary"
	"math/rand"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/crypto"
	"prestigebft/internal/harness"
	"prestigebft/internal/ledger"
	"prestigebft/internal/quorum"
	"prestigebft/internal/transport"
	"prestigebft/internal/types"
)

// Timer kinds.
const (
	// TimerView is the pacemaker timeout.
	TimerView consensus.TimerKind = iota + 1
	// TimerBatch flushes a partial batch.
	TimerBatch
	// TimerFast bounds the fast path before falling back to two phases.
	TimerFast
	// TimerPolicy fires the rotation policy.
	TimerPolicy
)

// Config parameterizes a replica.
type Config struct {
	ID       types.ServerID
	N        int
	Keys     *crypto.KeyPair
	Registry *crypto.Registry

	BatchSize    int
	BatchTimeout time.Duration
	ViewTimeout  time.Duration
	// FastTimeout bounds the fast path. Default 50 ms.
	FastTimeout time.Duration
	// ViewPolicy rotates leadership on a timing policy.
	ViewPolicy time.Duration

	StateMachine ledger.StateMachine
	RNG          *rand.Rand
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BatchSize == 0 {
		out.BatchSize = 100
	}
	if out.BatchTimeout == 0 {
		out.BatchTimeout = 2 * time.Millisecond
	}
	if out.ViewTimeout == 0 {
		out.ViewTimeout = time.Second
	}
	if out.FastTimeout == 0 {
		out.FastTimeout = 50 * time.Millisecond
	}
	if out.RNG == nil {
		out.RNG = rand.New(rand.NewSource(int64(out.ID)))
	}
	return out
}

// PrePrepare is the leader's batch proposal.
type PrePrepare struct {
	From types.ServerID
	V    types.View
	N    types.SeqNum
	Prev types.Digest
	Txs  []types.Transaction
	Sig  []byte
}

// Type implements types.Message.
func (m *PrePrepare) Type() string { return "sb.PrePrepare" }

// WireSize implements types.Message.
func (m *PrePrepare) WireSize() int {
	size := 16 + 2 + 8 + 8 + 32 + 64
	for i := range m.Txs {
		size += 16 + len(m.Txs[i].Data)
	}
	return size
}

// SigningBytes implements types.Signed.
func (m *PrePrepare) SigningBytes() []byte {
	b := &types.TxBlock{Header: types.TxBlockHeader{V: m.V, N: m.N, PrevHash: m.Prev, BatchLen: uint32(len(m.Txs))}, Txs: m.Txs}
	d := b.ContentDigest()
	return types.QCStatementBytes(types.QCGeneric, m.V, m.N, d)
}

// Signature implements types.Signed.
func (m *PrePrepare) Signature() []byte { return m.Sig }

// Share is a replica's signature share sent to the collector (the leader).
type Share struct {
	From  types.ServerID
	Stage uint8 // 1 = sign share (fast/prepare), 2 = commit share (slow path)
	V     types.View
	N     types.SeqNum
	D     types.Digest
	Sig   []byte
}

// Type implements types.Message.
func (m *Share) Type() string { return "sb.Share" }

// WireSize implements types.Message.
func (m *Share) WireSize() int { return 16 + 2 + 1 + 8 + 8 + 32 + 64 }

// SigningBytes implements types.Signed.
func (m *Share) SigningBytes() []byte {
	kind := types.QCOrdering
	if m.Stage == 2 {
		kind = types.QCCommit
	}
	return types.QCStatementBytes(kind, m.V, m.N, m.D)
}

// Signature implements types.Signed.
func (m *Share) Signature() []byte { return m.Sig }

// Proof broadcasts an assembled certificate: a FullPrepareProof (stage 1,
// slow path continuation) or FullCommitProof (final; carries the block).
type Proof struct {
	From  types.ServerID
	Stage uint8 // 1 = prepare proof, 2 = commit proof
	Block types.TxBlock
	Sig   []byte
}

// Type implements types.Message.
func (m *Proof) Type() string { return "sb.Proof" }

// WireSize implements types.Message.
func (m *Proof) WireSize() int {
	b := types.TxBlockMsg{Block: m.Block}
	return b.WireSize() + 1
}

// SigningBytes implements types.Signed.
func (m *Proof) SigningBytes() []byte {
	d := m.Block.ContentDigest()
	buf := make([]byte, 0, 10+32)
	buf = append(buf, "sb.proof"...)
	buf = append(buf, m.Stage)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Block.Header.N))
	buf = append(buf, d[:]...)
	return buf
}

// Signature implements types.Signed.
func (m *Proof) Signature() []byte { return m.Sig }

// NewView tells the next scheduled leader to take over.
type NewView struct {
	From types.ServerID
	V    types.View
	Sig  []byte
}

// Type implements types.Message.
func (m *NewView) Type() string { return "sb.NewView" }

// WireSize implements types.Message.
func (m *NewView) WireSize() int { return 16 + 2 + 8 + 64 }

// SigningBytes implements types.Signed.
func (m *NewView) SigningBytes() []byte {
	return types.QCStatementBytes(types.QCGeneric, m.V, 0, types.Digest{})
}

// Signature implements types.Signed.
func (m *NewView) Signature() []byte { return m.Sig }

// instance is the leader's in-flight decision.
type instance struct {
	block    *types.TxBlock
	digest   types.Digest
	stage    uint8 // 1 = collecting sign shares, 2 = collecting commit shares
	coll     *quorum.Collector
	fastOpen bool
}

// Replica is one SBFT server.
type Replica struct {
	cfg   Config
	store *ledger.Store
	view  types.View

	pending         []types.Transaction
	pendingByDigest map[types.Digest]bool
	batchArmed      bool
	inflight        *instance

	prepared    map[types.SeqNum]*types.TxBlock
	committedTx map[types.Digest]types.SeqNum
}

// New creates an SBFT replica.
func New(cfg Config) *Replica {
	c := cfg.withDefaults()
	return &Replica{
		cfg:             c,
		store:           ledger.NewStore(c.N, leaderOf(1, c.N), c.StateMachine),
		view:            1,
		pendingByDigest: make(map[types.Digest]bool),
		prepared:        make(map[types.SeqNum]*types.TxBlock),
		committedTx:     make(map[types.Digest]types.SeqNum),
	}
}

func leaderOf(v types.View, n int) types.ServerID {
	return types.ServerID((uint64(v)-1)%uint64(n) + 1)
}

// ID implements consensus.Replica.
func (r *Replica) ID() types.ServerID { return r.cfg.ID }

// View returns the current view.
func (r *Replica) View() types.View { return r.view }

// Store exposes the ledger.
func (r *Replica) Store() *ledger.Store { return r.store }

func (r *Replica) leader() types.ServerID { return leaderOf(r.view, r.cfg.N) }
func (r *Replica) isLeader() bool         { return r.leader() == r.cfg.ID }

// Init implements consensus.Replica.
func (r *Replica) Init(now time.Duration) []consensus.Effect {
	return r.armTimers()
}

func (r *Replica) armTimers() []consensus.Effect {
	effs := []consensus.Effect{
		consensus.SetTimer{Kind: TimerView, Key: uint64(r.view), Delay: r.cfg.ViewTimeout},
	}
	if r.cfg.ViewPolicy > 0 {
		effs = append(effs, consensus.SetTimer{Kind: TimerPolicy, Key: uint64(r.view), Delay: r.cfg.ViewPolicy})
	}
	return effs
}

// OnMessage implements consensus.Replica.
func (r *Replica) OnMessage(now time.Duration, from consensus.Origin, msg types.Message) []consensus.Effect {
	// SBFT speaks its own message set plus the client-facing subset of the
	// core vocabulary.
	//lint:dispatch local prestigebft/internal/types=Prop,Compt
	switch m := msg.(type) {
	case *types.Prop:
		return r.onProp(now, m)
	case *types.Compt:
		return r.onProp(now, &m.Prop)
	case *PrePrepare:
		return r.onPrePrepare(now, m)
	case *Share:
		return r.onShare(now, m)
	case *Proof:
		return r.onProof(now, m)
	case *NewView:
		if m.V > r.view {
			r.view = m.V
			r.inflight = nil
			return r.armTimers()
		}
	}
	return nil
}

// OnTimer implements consensus.Replica.
func (r *Replica) OnTimer(now time.Duration, kind consensus.TimerKind, key uint64) []consensus.Effect {
	switch kind {
	case TimerView, TimerPolicy:
		if types.View(key) != r.view {
			return nil
		}
		r.view++
		r.inflight = nil
		nv := &NewView{From: r.cfg.ID, V: r.view}
		nv.Sig = r.cfg.Keys.Sign(nv.SigningBytes())
		return append([]consensus.Effect{consensus.Broadcast{Msg: nv}}, r.armTimers()...)
	case TimerBatch:
		r.batchArmed = false
		effs := r.maybePropose(now, true)
		if len(r.pending) > 0 || r.inflight != nil {
			r.batchArmed = true
			effs = append(effs, consensus.SetTimer{Kind: TimerBatch, Key: 0, Delay: r.cfg.BatchTimeout})
		}
		return effs
	case TimerFast:
		return r.onFastTimeout(now, types.SeqNum(key))
	}
	return nil
}

// OnPuzzleSolved implements consensus.Replica (unused).
func (r *Replica) OnPuzzleSolved(time.Duration, uint64, []byte, types.Digest) []consensus.Effect {
	return nil
}

func (r *Replica) onProp(now time.Duration, m *types.Prop) []consensus.Effect {
	if m.Tx.Digest() != m.D || !r.cfg.Registry.VerifyClient(m.Tx.Client, m.SigningBytes(), m.Sig) {
		return nil
	}
	if seq, ok := r.committedTx[m.D]; ok {
		return []consensus.Effect{r.notifyClient(m.Tx.Client, seq, m.D)}
	}
	if !r.isLeader() {
		return nil
	}
	if r.pendingByDigest[m.D] {
		return nil
	}
	r.pendingByDigest[m.D] = true
	r.pending = append(r.pending, m.Tx)
	effs := r.maybePropose(now, false)
	if !r.batchArmed && (len(r.pending) > 0 || r.inflight != nil) {
		r.batchArmed = true
		effs = append(effs, consensus.SetTimer{Kind: TimerBatch, Key: 0, Delay: r.cfg.BatchTimeout})
	}
	return effs
}

func (r *Replica) maybePropose(now time.Duration, flush bool) []consensus.Effect {
	if !r.isLeader() || r.inflight != nil || len(r.pending) == 0 {
		return nil
	}
	if !flush && len(r.pending) < r.cfg.BatchSize {
		return nil
	}
	batch := r.pending
	if len(batch) > r.cfg.BatchSize {
		batch = batch[:r.cfg.BatchSize]
		r.pending = append([]types.Transaction(nil), r.pending[r.cfg.BatchSize:]...)
	} else {
		r.pending = nil
	}
	prev := r.store.LatestTxBlock()
	blk := &types.TxBlock{
		Header: types.TxBlockHeader{V: r.view, N: prev.Header.N + 1, PrevHash: prev.Hash(), BatchLen: uint32(len(batch))},
		Txs:    batch,
	}
	digest := blk.ContentDigest()
	inst := &instance{
		block:    blk,
		digest:   digest,
		stage:    1,
		fastOpen: true,
		// The fast path waits for shares from all n replicas.
		coll: quorum.NewCollector(types.QCOrdering, r.view, blk.Header.N, digest, r.cfg.N),
	}
	inst.coll.Add(r.cfg.Registry, r.cfg.ID, r.cfg.Keys.Sign(inst.coll.Statement()))
	r.inflight = inst
	pp := &PrePrepare{From: r.cfg.ID, V: r.view, N: blk.Header.N, Prev: blk.Header.PrevHash, Txs: batch}
	pp.Sig = r.cfg.Keys.Sign(pp.SigningBytes())
	return []consensus.Effect{
		consensus.Broadcast{Msg: pp},
		consensus.SetTimer{Kind: TimerFast, Key: uint64(blk.Header.N), Delay: r.cfg.FastTimeout},
	}
}

func (r *Replica) onPrePrepare(now time.Duration, m *PrePrepare) []consensus.Effect {
	if m.V != r.view || m.From != r.leader() {
		return nil
	}
	if !r.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	height := r.store.TxHeight()
	if m.N != height+1 || m.Prev != r.store.LatestTxBlock().Hash() {
		return nil
	}
	blk := &types.TxBlock{
		Header: types.TxBlockHeader{V: m.V, N: m.N, PrevHash: m.Prev, BatchLen: uint32(len(m.Txs))},
		Txs:    m.Txs,
	}
	r.prepared[m.N] = blk
	sh := &Share{From: r.cfg.ID, Stage: 1, V: m.V, N: m.N, D: blk.ContentDigest()}
	sh.Sig = r.cfg.Keys.Sign(sh.SigningBytes())
	return []consensus.Effect{
		// A valid proposal is progress: reset the pacemaker.
		consensus.SetTimer{Kind: TimerView, Key: uint64(r.view), Delay: r.cfg.ViewTimeout},
		consensus.Send{To: m.From, Msg: sh},
	}
}

// onFastTimeout falls back to the two-phase slow path: re-target the stage-1
// collector at 2f+1.
func (r *Replica) onFastTimeout(now time.Duration, n types.SeqNum) []consensus.Effect {
	inst := r.inflight
	if inst == nil || inst.block.Header.N != n || inst.stage != 1 || !inst.fastOpen {
		return nil
	}
	inst.fastOpen = false
	if inst.coll.Count() >= types.QuorumSize(r.cfg.N) {
		// Enough shares for the slow path already: emit the prepare proof
		// and collect commit shares.
		return r.advanceSlowPath(inst)
	}
	return nil
}

func (r *Replica) onShare(now time.Duration, m *Share) []consensus.Effect {
	inst := r.inflight
	if inst == nil || m.V != r.view || m.N != inst.block.Header.N || m.D != inst.digest || m.Stage != inst.stage {
		return nil
	}
	full := inst.coll.Add(r.cfg.Registry, m.From, m.Sig)
	if inst.stage == 1 {
		if full && inst.fastOpen {
			// Fast path: all n signed in one round; commit immediately.
			inst.block.OrderingQC = inst.coll.QC()
			commitColl := quorum.NewCollector(types.QCCommit, m.V, m.N, inst.digest, types.QuorumSize(r.cfg.N))
			commitColl.Add(r.cfg.Registry, r.cfg.ID, r.cfg.Keys.Sign(commitColl.Statement()))
			inst.block.CommitQC = commitColl.QC() // leader's attestation rides along
			return r.finalize(now, inst, true)
		}
		if !inst.fastOpen && inst.coll.Count() >= types.QuorumSize(r.cfg.N) {
			return r.advanceSlowPath(inst)
		}
		return nil
	}
	// Stage 2 (slow path commit shares).
	if !full {
		return nil
	}
	inst.block.CommitQC = inst.coll.QC()
	return r.finalize(now, inst, false)
}

// advanceSlowPath broadcasts the prepare proof and starts collecting commit
// shares.
func (r *Replica) advanceSlowPath(inst *instance) []consensus.Effect {
	inst.block.OrderingQC = inst.coll.QC()
	inst.stage = 2
	inst.coll = quorum.NewCollector(types.QCCommit, inst.block.Header.V, inst.block.Header.N, inst.digest, types.QuorumSize(r.cfg.N))
	inst.coll.Add(r.cfg.Registry, r.cfg.ID, r.cfg.Keys.Sign(inst.coll.Statement()))
	pf := &Proof{From: r.cfg.ID, Stage: 1, Block: *inst.block}
	pf.Sig = r.cfg.Keys.Sign(pf.SigningBytes())
	return []consensus.Effect{consensus.Broadcast{Msg: pf}}
}

// finalize commits at the leader and broadcasts the commit proof.
func (r *Replica) finalize(now time.Duration, inst *instance, fast bool) []consensus.Effect {
	r.inflight = nil
	// The collector validated every share as it arrived; the fast path's
	// commit attestation is thinner than the ledger's two-QC rule, so
	// append with linkage-only checks.
	if err := r.store.AppendTxBlockUnchecked(r.cfg.Registry, inst.block); err != nil {
		return nil
	}
	committed := r.store.LatestTxBlock()
	var effs []consensus.Effect
	effs = append(effs, consensus.CancelTimer{Kind: TimerFast, Key: uint64(committed.Header.N)})
	// Progress resets the leader's own pacemaker.
	effs = append(effs, consensus.SetTimer{Kind: TimerView, Key: uint64(r.view), Delay: r.cfg.ViewTimeout})
	effs = append(effs, r.recordCommit(committed)...)
	pf := &Proof{From: r.cfg.ID, Stage: 2, Block: *committed}
	pf.Sig = r.cfg.Keys.Sign(pf.SigningBytes())
	effs = append(effs, consensus.Broadcast{Msg: pf})
	effs = append(effs, consensus.Commit{Block: committed})
	effs = append(effs, r.maybePropose(now, false)...)
	return effs
}

func (r *Replica) onProof(now time.Duration, m *Proof) []consensus.Effect {
	blk := &m.Block
	switch m.Stage {
	case 1:
		// Slow-path continuation: verify the prepare proof, send a commit
		// share.
		prep, ok := r.prepared[blk.Header.N]
		if !ok || blk.Header.V != r.view || m.From != r.leader() {
			return nil
		}
		d := prep.ContentDigest()
		if blk.OrderingQC.Digest != d {
			return nil
		}
		if err := r.cfg.Registry.VerifyQC(&blk.OrderingQC, types.QuorumSize(r.cfg.N)); err != nil {
			return nil
		}
		sh := &Share{From: r.cfg.ID, Stage: 2, V: r.view, N: blk.Header.N, D: d}
		sh.Sig = r.cfg.Keys.Sign(sh.SigningBytes())
		return []consensus.Effect{consensus.Send{To: m.From, Msg: sh}}
	case 2:
		height := r.store.TxHeight()
		if blk.Header.N != height+1 {
			return nil
		}
		// The fast path produces a commit certificate attested only by the
		// collector (leader); replicas accept it when the ordering QC
		// covers all n replicas (every correct server already signed).
		fastPath := blk.OrderingQC.Len() >= r.cfg.N
		if !fastPath {
			if err := r.store.ValidateTxBlockQCs(r.cfg.Registry, blk); err != nil {
				return nil
			}
		} else if err := r.cfg.Registry.VerifyQC(&blk.OrderingQC, r.cfg.N); err != nil {
			return nil
		}
		if err := r.appendLoose(blk); err != nil {
			return nil
		}
		committed := r.store.LatestTxBlock()
		effs := r.recordCommit(committed)
		effs = append(effs, consensus.Commit{Block: committed})
		effs = append(effs, consensus.SetTimer{Kind: TimerView, Key: uint64(r.view), Delay: r.cfg.ViewTimeout})
		return effs
	}
	return nil
}

// appendLoose appends a block whose certificates were validated by the
// caller (the fast path's commit attestation is thinner than the ledger's
// standard two-QC rule).
func (r *Replica) appendLoose(blk *types.TxBlock) error {
	reg := r.cfg.Registry
	// Reuse the ledger by relaxing: both paths carry a full ordering QC;
	// the ledger validates linkage, and we bypass its commit-QC threshold
	// check by validating above.
	return r.store.AppendTxBlockUnchecked(reg, blk)
}

func (r *Replica) recordCommit(blk *types.TxBlock) []consensus.Effect {
	var effs []consensus.Effect
	for i := range blk.Txs {
		tx := &blk.Txs[i]
		d := tx.Digest()
		r.committedTx[d] = blk.Header.N
		delete(r.pendingByDigest, d)
		effs = append(effs, r.notifyClient(tx.Client, blk.Header.N, d))
	}
	delete(r.prepared, blk.Header.N)
	return effs
}

func (r *Replica) notifyClient(client types.ClientID, seq types.SeqNum, d types.Digest) consensus.Effect {
	notif := &types.Notif{From: r.cfg.ID, V: r.view, N: seq, TxD: d, Status: true}
	notif.Sig = r.cfg.Keys.Sign(notif.SigningBytes())
	return consensus.SendClient{To: client, Msg: notif}
}

// init registers the baseline with the harness, and its wire set with the
// transport codec (each protocol package owns its own wire types). Before
// this registration existed, SBFT messages could not cross a live TCP link
// at all — gob rejects unregistered concrete types behind an interface.
func init() {
	transport.RegisterWireTypes(
		&PrePrepare{},
		&Share{},
		&Proof{},
		&NewView{},
	)
	harness.RegisterProtocol(harness.SBFT, func(env harness.FactoryEnv) consensus.Replica {
		cfg := Config{
			ID:          env.ID,
			N:           env.N,
			Keys:        env.Keys,
			Registry:    env.Registry,
			BatchSize:   env.Opts.BatchSize,
			ViewTimeout: env.Opts.TimeoutMax,
			ViewPolicy:  env.Opts.ViewPolicy,
			RNG:         env.RNG,
		}
		if env.Opts.StateMachine != nil {
			cfg.StateMachine = env.Opts.StateMachine()
		}
		return New(cfg)
	})
}
