package sbft_test

import (
	"testing"
	"time"

	"prestigebft/internal/baseline/sbft"
	"prestigebft/internal/harness"
	"prestigebft/internal/types"
)

func newCluster(t *testing.T, opts harness.Options) *harness.Cluster {
	t.Helper()
	opts.Protocol = harness.SBFT
	c := harness.NewCluster(opts)
	c.Start()
	return c
}

// TestFastPathCommits: with all replicas correct the fast path commits in
// one share round.
func TestFastPathCommits(t *testing.T) {
	c := newCluster(t, harness.Options{
		N: 4, Clients: 8, BatchSize: 8, Seed: 2,
		VerifySignatures: true,
	})
	c.Run(3 * time.Second)
	if c.Metrics.TotalTxs == 0 {
		t.Fatal("SBFT fast path committed nothing")
	}
	c.CollectClientStats()
	if len(c.Metrics.Latencies) == 0 {
		t.Fatal("clients saw no commits")
	}
}

// TestSlowPathUnderQuietReplica: with one quiet replica the full quorum
// never forms, so commits must flow through the two-phase slow path.
func TestSlowPathUnderQuietReplica(t *testing.T) {
	c := newCluster(t, harness.Options{
		N: 4, Clients: 6, BatchSize: 6, Seed: 9,
		VerifySignatures: true,
	})
	c.Crash(4) // quiet from the start: fast path can never collect n shares
	c.Run(5 * time.Second)
	if c.Metrics.TotalTxs == 0 {
		t.Fatal("SBFT slow path committed nothing with one quiet replica")
	}
}

// TestReplicasConverge: all live replicas end with identical chains.
func TestReplicasConverge(t *testing.T) {
	c := newCluster(t, harness.Options{
		N: 4, Clients: 4, BatchSize: 4, Seed: 5,
		VerifySignatures: true,
	})
	c.Run(3 * time.Second)
	var replicas []*sbft.Replica
	for _, rep := range c.Replicas {
		replicas = append(replicas, rep.(*sbft.Replica))
	}
	minH := replicas[0].Store().TxHeight()
	for _, r := range replicas[1:] {
		if h := r.Store().TxHeight(); h < minH {
			minH = h
		}
	}
	if minH == 0 {
		t.Fatal("some replica committed nothing")
	}
	for s := types.SeqNum(1); s <= minH; s++ {
		ref := replicas[0].Store().TxBlock(s).Hash()
		for _, r := range replicas[1:] {
			if r.Store().TxBlock(s).Hash() != ref {
				t.Fatalf("divergence at seq %d", s)
			}
		}
	}
}
