package hotstuff

import (
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// --- Client intake ------------------------------------------------------------

func (r *Replica) onProp(now time.Duration, m *types.Prop) []consensus.Effect {
	if m.Tx.Digest() != m.D {
		return nil
	}
	if !r.cfg.Registry.VerifyClient(m.Tx.Client, m.SigningBytes(), m.Sig) {
		return nil
	}
	if seq, ok := r.committedTx[m.D]; ok {
		return []consensus.Effect{r.notifyClient(m.Tx.Client, seq, m.D)}
	}
	if r.active && r.isLeader() {
		return r.enqueue(now, m)
	}
	r.propSeen[m.D] = m
	return nil
}

func (r *Replica) onCompt(now time.Duration, m *types.Compt) []consensus.Effect {
	prop := &m.Prop
	d := prop.Tx.Digest()
	if d != prop.D || !r.cfg.Registry.VerifyClient(prop.Tx.Client, prop.SigningBytes(), prop.Sig) {
		return nil
	}
	if seq, ok := r.committedTx[d]; ok {
		return []consensus.Effect{r.notifyClient(prop.Tx.Client, seq, d)}
	}
	if r.active && r.isLeader() {
		return r.enqueue(now, prop)
	}
	var effs []consensus.Effect
	if !r.comptSeen[d] {
		r.comptSeen[d] = true
		effs = append(effs, consensus.Send{To: r.leader(), Msg: m})
		effs = append(effs, consensus.SetTimer{
			Kind: TimerCompt, Key: uint64(r.view), Delay: r.cfg.ViewTimeout,
		})
	}
	return effs
}

func (r *Replica) enqueue(now time.Duration, m *types.Prop) []consensus.Effect {
	if r.pendingByDigest[m.D] {
		return nil
	}
	r.pendingByDigest[m.D] = true
	r.pending = append(r.pending, m.Tx)
	effs := r.maybePropose(now, false)
	if !r.batchArmed && (len(r.pending) > 0 || r.inflight != nil) {
		r.batchArmed = true
		effs = append(effs, consensus.SetTimer{Kind: TimerBatch, Key: 0, Delay: r.cfg.BatchTimeout})
	}
	return effs
}

// maybePropose starts the Prepare phase for the next batch.
func (r *Replica) maybePropose(now time.Duration, flush bool) []consensus.Effect {
	if !r.active || !r.isLeader() || r.inflight != nil || len(r.pending) == 0 {
		return nil
	}
	if !flush && len(r.pending) < r.cfg.BatchSize {
		return nil
	}
	batch := r.pending
	if len(batch) > r.cfg.BatchSize {
		batch = batch[:r.cfg.BatchSize]
		r.pending = append([]types.Transaction(nil), r.pending[r.cfg.BatchSize:]...)
	} else {
		r.pending = nil
	}
	prev := r.store.LatestTxBlock()
	blk := &types.TxBlock{
		Header: types.TxBlockHeader{
			V: r.view, N: prev.Header.N + 1, PrevHash: prev.Hash(), BatchLen: uint32(len(batch)),
		},
		Txs: batch,
	}
	digest := blk.ContentDigest()
	inst := &instance{
		block:  blk,
		digest: digest,
		phase:  PhasePrepare,
		coll:   quorum.NewCollector(PhasePrepare.qcKind(), r.view, blk.Header.N, digest, types.QuorumSize(r.cfg.N)),
	}
	inst.coll.Add(r.cfg.Registry, r.cfg.ID, r.cfg.Keys.Sign(inst.coll.Statement()))
	r.inflight = inst
	prep := &Prepare{From: r.cfg.ID, V: r.view, N: blk.Header.N, Prev: blk.Header.PrevHash, Txs: batch}
	prep.Sig = r.cfg.Keys.Sign(prep.SigningBytes())
	return []consensus.Effect{consensus.Broadcast{Msg: prep}}
}

// --- Follower phase handling ----------------------------------------------------

func (r *Replica) onPrepare(now time.Duration, m *Prepare) []consensus.Effect {
	if m.V != r.view || m.From != r.leader() {
		if m.V > r.view {
			// The cluster moved on without us; adopt the higher view.
			// (Blocks still commit only through QCs.)
			r.view = m.V
			r.inflight = nil
			return append(r.armTimers(), r.onPrepare(now, m)...)
		}
		return nil
	}
	if !r.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	height := r.store.TxHeight()
	if m.N <= height {
		return nil
	}
	if m.N > height+1 {
		req := &types.SyncReq{From: r.cfg.ID, Kind: types.SyncTx, Start: uint64(height), End: uint64(m.N - 1)}
		return []consensus.Effect{consensus.Send{To: m.From, Msg: req}}
	}
	if m.Prev != r.store.LatestTxBlock().Hash() {
		return nil
	}
	key := phaseKey{m.V, m.N, PhasePrepare}
	if r.votedPhase[key] {
		return nil
	}
	r.votedPhase[key] = true
	blk := &types.TxBlock{
		Header: types.TxBlockHeader{V: m.V, N: m.N, PrevHash: m.Prev, BatchLen: uint32(len(m.Txs))},
		Txs:    m.Txs,
	}
	r.prepared[m.N] = blk
	// A valid proposal is progress: reset the pacemaker.
	effs := []consensus.Effect{
		consensus.SetTimer{Kind: TimerView, Key: uint64(r.view), Delay: r.cfg.ViewTimeout},
	}
	return append(effs, r.vote(PhasePrepare, m.V, m.N, blk.ContentDigest())...)
}

// onPhaseAnnounce handles PreCommit (carrying PrepareQC) and Commit
// (carrying PreCommitQC) announcements.
func (r *Replica) onPhaseAnnounce(now time.Duration, m *PhaseAnnounce) []consensus.Effect {
	if m.V != r.view || m.From != r.leader() {
		return nil
	}
	blk, ok := r.prepared[m.N]
	if !ok {
		return nil
	}
	digest := blk.ContentDigest()
	if m.QC.Digest != digest {
		return nil
	}
	var wantQC types.QCKind
	switch m.Phase {
	case PhasePreCommit:
		wantQC = PhasePrepare.qcKind()
	case PhaseCommit:
		wantQC = PhasePreCommit.qcKind()
	default:
		return nil
	}
	if m.QC.Kind != wantQC || m.QC.View != m.V || m.QC.Seq != m.N {
		return nil
	}
	if err := r.cfg.Registry.VerifyQC(&m.QC, types.QuorumSize(r.cfg.N)); err != nil {
		return nil
	}
	if !r.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	key := phaseKey{m.V, m.N, m.Phase}
	if r.votedPhase[key] {
		return nil
	}
	r.votedPhase[key] = true
	switch m.Phase {
	case PhasePreCommit:
		blk.OrderingQC = m.QC // PrepareQC rides in the block
	case PhaseCommit:
		r.lockedQC = m.QC // lock on the PreCommit certificate
	}
	return r.vote(m.Phase, m.V, m.N, digest)
}

func (r *Replica) vote(phase Phase, v types.View, n types.SeqNum, d types.Digest) []consensus.Effect {
	vt := &Vote{From: r.cfg.ID, Phase: phase, V: v, N: n, D: d}
	vt.Sig = r.cfg.Keys.Sign(vt.SigningBytes())
	return []consensus.Effect{consensus.Send{To: r.leader(), Msg: vt}}
}

// --- Leader vote collection -----------------------------------------------------

func (r *Replica) onVote(now time.Duration, m *Vote) []consensus.Effect {
	inst := r.inflight
	if inst == nil || m.V != r.view || m.N != inst.block.Header.N || m.D != inst.digest || m.Phase != inst.phase {
		return nil
	}
	if !inst.coll.Add(r.cfg.Registry, m.From, m.Sig) {
		return nil
	}
	qc := inst.coll.QC()
	switch inst.phase {
	case PhasePrepare:
		inst.block.OrderingQC = qc
		inst.phase = PhasePreCommit
		inst.coll = quorum.NewCollector(PhasePreCommit.qcKind(), m.V, m.N, inst.digest, types.QuorumSize(r.cfg.N))
		inst.coll.Add(r.cfg.Registry, r.cfg.ID, r.cfg.Keys.Sign(inst.coll.Statement()))
		ann := &PhaseAnnounce{From: r.cfg.ID, Phase: PhasePreCommit, V: m.V, N: m.N, QC: qc}
		ann.Sig = r.cfg.Keys.Sign(ann.SigningBytes())
		return []consensus.Effect{consensus.Broadcast{Msg: ann}}
	case PhasePreCommit:
		r.lockedQC = qc
		inst.phase = PhaseCommit
		inst.coll = quorum.NewCollector(PhaseCommit.qcKind(), m.V, m.N, inst.digest, types.QuorumSize(r.cfg.N))
		inst.coll.Add(r.cfg.Registry, r.cfg.ID, r.cfg.Keys.Sign(inst.coll.Statement()))
		ann := &PhaseAnnounce{From: r.cfg.ID, Phase: PhaseCommit, V: m.V, N: m.N, QC: qc}
		ann.Sig = r.cfg.Keys.Sign(ann.SigningBytes())
		return []consensus.Effect{consensus.Broadcast{Msg: ann}}
	case PhaseCommit:
		inst.block.CommitQC = qc
		r.inflight = nil
		if err := r.store.AppendTxBlock(r.cfg.Registry, inst.block); err != nil {
			return nil
		}
		committed := r.store.LatestTxBlock()
		var effs []consensus.Effect
		effs = append(effs, r.recordCommit(committed)...)
		dec := &Decide{From: r.cfg.ID, Block: *committed}
		dec.Sig = r.cfg.Keys.Sign(dec.SigningBytes())
		effs = append(effs, consensus.Broadcast{Msg: dec})
		effs = append(effs, consensus.Commit{Block: committed})
		// Progress resets the leader's own pacemaker too.
		effs = append(effs, consensus.SetTimer{Kind: TimerView, Key: uint64(r.view), Delay: r.cfg.ViewTimeout})
		effs = append(effs, r.maybePropose(now, false)...)
		return effs
	}
	return nil
}

// --- Decide and commit ----------------------------------------------------------

func (r *Replica) onDecide(now time.Duration, m *Decide) []consensus.Effect {
	blk := &m.Block
	height := r.store.TxHeight()
	if blk.Header.N <= height {
		return nil
	}
	if blk.Header.N > height+1 {
		req := &types.SyncReq{From: r.cfg.ID, Kind: types.SyncTx, Start: uint64(height), End: uint64(blk.Header.N - 1)}
		return []consensus.Effect{consensus.Send{To: m.From, Msg: req}}
	}
	if err := r.store.AppendTxBlock(r.cfg.Registry, blk); err != nil {
		return nil
	}
	committed := r.store.LatestTxBlock()
	effs := r.recordCommit(committed)
	effs = append(effs, consensus.Commit{Block: committed})
	// Progress resets the pacemaker.
	effs = append(effs, consensus.SetTimer{Kind: TimerView, Key: uint64(r.view), Delay: r.cfg.ViewTimeout})
	return effs
}

func (r *Replica) recordCommit(blk *types.TxBlock) []consensus.Effect {
	var effs []consensus.Effect
	for i := range blk.Txs {
		tx := &blk.Txs[i]
		d := tx.Digest()
		r.committedTx[d] = blk.Header.N
		delete(r.pendingByDigest, d)
		delete(r.propSeen, d)
		if r.comptSeen[d] {
			delete(r.comptSeen, d)
			effs = append(effs, consensus.CancelTimer{Kind: TimerCompt, Key: uint64(r.view)})
		}
		effs = append(effs, r.notifyClient(tx.Client, blk.Header.N, d))
	}
	for k := range r.votedPhase {
		if k.n == blk.Header.N {
			delete(r.votedPhase, k)
		}
	}
	delete(r.prepared, blk.Header.N)
	return effs
}

func (r *Replica) notifyClient(client types.ClientID, seq types.SeqNum, d types.Digest) consensus.Effect {
	notif := &types.Notif{From: r.cfg.ID, V: r.view, N: seq, TxD: d, Status: true}
	notif.Sig = r.cfg.Keys.Sign(notif.SigningBytes())
	return consensus.SendClient{To: client, Msg: notif}
}

// --- Sync -----------------------------------------------------------------------

func (r *Replica) onSyncReq(m *types.SyncReq) []consensus.Effect {
	if m.Kind != types.SyncTx {
		return nil
	}
	resp := &types.SyncResp{From: r.cfg.ID, Kind: types.SyncTx,
		TxBlocks: r.store.TxRange(types.SeqNum(m.Start+1), types.SeqNum(m.End))}
	if len(resp.TxBlocks) == 0 {
		return nil
	}
	return []consensus.Effect{consensus.Send{To: m.From, Msg: resp}}
}

func (r *Replica) onSyncResp(now time.Duration, m *types.SyncResp) []consensus.Effect {
	var effs []consensus.Effect
	for i := range m.TxBlocks {
		blk := m.TxBlocks[i]
		if blk.Header.N <= r.store.TxHeight() {
			continue
		}
		if err := r.store.AppendTxBlock(r.cfg.Registry, &blk); err != nil {
			break
		}
		committed := r.store.LatestTxBlock()
		effs = append(effs, r.recordCommit(committed)...)
		effs = append(effs, consensus.Commit{Block: committed})
	}
	return effs
}
