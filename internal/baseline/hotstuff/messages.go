package hotstuff

import (
	"encoding/binary"

	"prestigebft/internal/types"
)

const (
	sigSize    = 64
	headerSize = 16
)

// Prepare is the leader's proposal for one decision.
type Prepare struct {
	From types.ServerID
	V    types.View
	N    types.SeqNum
	Prev types.Digest
	Txs  []types.Transaction
	Sig  []byte
}

// Type implements types.Message.
func (m *Prepare) Type() string { return "hs.Prepare" }

// WireSize implements types.Message.
func (m *Prepare) WireSize() int {
	size := headerSize + 2 + 8 + 8 + 32 + sigSize
	for i := range m.Txs {
		size += 16 + len(m.Txs[i].Data)
	}
	return size
}

// SigningBytes implements types.Signed.
func (m *Prepare) SigningBytes() []byte {
	b := &types.TxBlock{Header: types.TxBlockHeader{V: m.V, N: m.N, PrevHash: m.Prev, BatchLen: uint32(len(m.Txs))}, Txs: m.Txs}
	d := b.ContentDigest()
	return types.QCStatementBytes(types.QCGeneric, m.V, m.N, d)
}

// Signature implements types.Signed.
func (m *Prepare) Signature() []byte { return m.Sig }

// Vote is a replica's phase vote, sent to the leader.
type Vote struct {
	From  types.ServerID
	Phase Phase
	V     types.View
	N     types.SeqNum
	D     types.Digest
	Sig   []byte
}

// Type implements types.Message.
func (m *Vote) Type() string { return "hs.Vote" }

// WireSize implements types.Message.
func (m *Vote) WireSize() int { return headerSize + 2 + 1 + 8 + 8 + 32 + sigSize }

// SigningBytes implements types.Signed.
func (m *Vote) SigningBytes() []byte {
	return types.QCStatementBytes(m.Phase.qcKind(), m.V, m.N, m.D)
}

// Signature implements types.Signed.
func (m *Vote) Signature() []byte { return m.Sig }

// PhaseAnnounce carries the QC that opens the PreCommit or Commit phase.
type PhaseAnnounce struct {
	From  types.ServerID
	Phase Phase // the phase being opened (PreCommit or Commit)
	V     types.View
	N     types.SeqNum
	QC    types.QC // certificate of the previous phase
	Sig   []byte
}

// Type implements types.Message.
func (m *PhaseAnnounce) Type() string { return "hs." + m.Phase.String() }

// WireSize implements types.Message.
func (m *PhaseAnnounce) WireSize() int {
	return headerSize + 2 + 1 + 8 + 8 + m.QC.WireSize() + sigSize
}

// SigningBytes implements types.Signed.
func (m *PhaseAnnounce) SigningBytes() []byte {
	buf := make([]byte, 0, 2+1+8+8+32)
	buf = binary.BigEndian.AppendUint16(buf, uint16(m.From))
	buf = append(buf, byte(m.Phase))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.V))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.N))
	buf = append(buf, m.QC.Digest[:]...)
	return buf
}

// Signature implements types.Signed.
func (m *PhaseAnnounce) Signature() []byte { return m.Sig }

// Decide carries the committed block with its commit certificate.
type Decide struct {
	From  types.ServerID
	Block types.TxBlock
	Sig   []byte
}

// Type implements types.Message.
func (m *Decide) Type() string { return "hs.Decide" }

// WireSize implements types.Message.
func (m *Decide) WireSize() int {
	b := types.TxBlockMsg{Block: m.Block}
	return b.WireSize()
}

// SigningBytes implements types.Signed.
func (m *Decide) SigningBytes() []byte {
	d := m.Block.Hash()
	return append([]byte("hs.decide"), d[:]...)
}

// Signature implements types.Signed.
func (m *Decide) Signature() []byte { return m.Sig }

// NewView tells the next scheduled leader to take over.
type NewView struct {
	From types.ServerID
	V    types.View
	N    types.SeqNum // sender's log height, for sync decisions
	Sig  []byte
}

// Type implements types.Message.
func (m *NewView) Type() string { return "hs.NewView" }

// WireSize implements types.Message.
func (m *NewView) WireSize() int { return headerSize + 2 + 8 + 8 + sigSize }

// SigningBytes implements types.Signed.
func (m *NewView) SigningBytes() []byte {
	return types.QCStatementBytes(types.QCGeneric, m.V, 0, types.Digest{})
}

// Signature implements types.Signed.
func (m *NewView) Signature() []byte { return m.Sig }
