package hotstuff_test

import (
	"testing"
	"time"

	"prestigebft/internal/baseline/hotstuff"
	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/types"
)

func TestLeaderOf(t *testing.T) {
	// L = V mod n over the passive schedule (Figure 1).
	cases := []struct {
		v      types.View
		n      int
		leader types.ServerID
	}{
		{1, 4, 1}, {2, 4, 2}, {3, 4, 3}, {4, 4, 4}, {5, 4, 1}, {9, 4, 1},
		{1, 7, 1}, {8, 7, 1},
	}
	for _, c := range cases {
		if got := hotstuff.LeaderOf(c.v, c.n); got != c.leader {
			t.Errorf("LeaderOf(%d, %d) = %d, want %d", c.v, c.n, got, c.leader)
		}
	}
}

func TestNormalOperationCommits(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		Protocol: harness.HotStuff,
		N:        4, Clients: 8, BatchSize: 8, Seed: 3,
		VerifySignatures: true,
	})
	c.Start()
	c.Run(3 * time.Second)
	if c.Metrics.TotalTxs == 0 {
		t.Fatal("HotStuff committed nothing under normal operation")
	}
	c.CollectClientStats()
	if len(c.Metrics.Latencies) == 0 {
		t.Fatal("clients saw no commits")
	}
}

// TestPassiveRotationStallsOnCrashedLeader demonstrates the passive
// protocol's weakness (Figure 1 discussion): when the schedule rotates onto
// a crashed server, the system waits out a full timeout.
func TestPassiveRotationStallsOnCrashedLeader(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		Protocol: harness.HotStuff,
		N:        4, Clients: 4, BatchSize: 4, Seed: 11,
		VerifySignatures: true,
		ViewPolicy:       time.Second, // rotate every second
		TimeoutMax:       time.Second, // pacemaker timeout
		Faults:           map[types.ServerID]faults.Spec{2: {Mode: faults.Quiet}},
	})
	c.Start()
	c.Run(10 * time.Second)
	if c.Metrics.TotalTxs == 0 {
		t.Fatal("no progress at all")
	}
	// The schedule repeatedly assigns server 2 (quiet) as leader; views
	// must nevertheless keep advancing past it.
	views := 0
	for _, rep := range c.Replicas {
		if r, ok := rep.(*hotstuff.Replica); ok {
			if int(r.View()) > views {
				views = int(r.View())
			}
		}
	}
	if views < 5 {
		t.Fatalf("views advanced only to %d under 1s rotation over 10s", views)
	}
}

// TestRotationKeepsCommitting: under the timing policy with all-correct
// servers, leadership rotates through the schedule and throughput continues.
func TestRotationKeepsCommitting(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		Protocol: harness.HotStuff,
		N:        4, Clients: 6, BatchSize: 6, Seed: 4,
		VerifySignatures: true,
		ViewPolicy:       time.Second,
	})
	c.Start()
	c.Run(6 * time.Second)
	if c.Metrics.TotalTxs == 0 {
		t.Fatal("no commits under rotation")
	}
	if c.Metrics.Elections < 3 {
		t.Fatalf("leader handovers = %d, want >= 3", c.Metrics.Elections)
	}
}

// TestHotStuffSafetyUnderCrash: blocks never conflict across replicas even
// with a crashing leader mid-stream.
func TestHotStuffSafetyUnderCrash(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		Protocol: harness.HotStuff,
		N:        4, Clients: 4, BatchSize: 4, Seed: 8,
		VerifySignatures: true,
		ClientTimeout:    500 * time.Millisecond,
	})
	c.Start()
	c.Run(time.Second)
	c.Crash(1)
	c.Run(8 * time.Second)
	var maxH types.SeqNum
	stores := make([]*hotstuff.Replica, 0, 4)
	for _, rep := range c.Replicas {
		if r, ok := rep.(*hotstuff.Replica); ok {
			stores = append(stores, r)
			if h := r.Store().TxHeight(); h > maxH {
				maxH = h
			}
		}
	}
	if maxH == 0 {
		t.Fatal("nothing committed")
	}
	for s := types.SeqNum(1); s <= maxH; s++ {
		var ref types.Digest
		for _, r := range stores {
			b := r.Store().TxBlock(s)
			if b == nil {
				continue
			}
			h := b.Hash()
			if ref.IsZero() {
				ref = h
			} else if h != ref {
				t.Fatalf("conflicting commit at seq %d", s)
			}
		}
	}
}
