// Package hotstuff implements the basic (non-chained) HotStuff protocol as
// the paper's primary baseline ("hs"): three voting phases per decision
// (Prepare → PreCommit → Commit → Decide) with linear message complexity via
// a vote collector at the leader, and a *passive* view-change protocol
// inherited from PBFT — leadership rotates on a predefined schedule,
// leader(v) = v mod n, advanced by timeouts or by a timing policy.
//
// The baseline shares every substrate with PrestigeBFT (types, crypto,
// quorum, ledger, clients, simulator), which keeps the comparison
// apples-to-apples: the figures measure protocol structure — the third
// phase HotStuff needs for optimistic responsiveness under passive view
// changes (§1 of the paper), and the stalls caused by rotating onto faulty
// or slow leaders.
package hotstuff

import (
	"math/rand"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/crypto"
	"prestigebft/internal/ledger"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// Phase identifies a HotStuff voting phase.
type Phase uint8

const (
	// PhasePrepare is the proposal phase.
	PhasePrepare Phase = iota + 1
	// PhasePreCommit locks the proposal.
	PhasePreCommit
	// PhaseCommit commits the proposal.
	PhaseCommit
)

func (p Phase) String() string {
	switch p {
	case PhasePrepare:
		return "prepare"
	case PhasePreCommit:
		return "pre-commit"
	case PhaseCommit:
		return "commit"
	}
	return "unknown"
}

// qcKind maps phases onto certificate kinds. Prepare and Commit QCs are
// stored in the block (reusing the ledger's validation); the PreCommit QC
// is the transient lock.
func (p Phase) qcKind() types.QCKind {
	switch p {
	case PhasePrepare:
		return types.QCOrdering
	case PhaseCommit:
		return types.QCCommit
	}
	return types.QCGeneric
}

// Timer kinds.
const (
	// TimerView is the pacemaker timeout (the paper sets HotStuff's
	// initial timeout to 1 s in §6.2).
	TimerView consensus.TimerKind = iota + 1
	// TimerBatch flushes a partial batch at the leader.
	TimerBatch
	// TimerPolicy fires the r10/r30 rotation policy.
	TimerPolicy
	// TimerCompt guards a client complaint.
	TimerCompt
)

// Config parameterizes a replica.
type Config struct {
	ID       types.ServerID
	N        int
	Keys     *crypto.KeyPair
	Registry *crypto.Registry

	BatchSize    int
	BatchTimeout time.Duration
	// ViewTimeout is the pacemaker timeout. Default 1 s.
	ViewTimeout time.Duration
	// ViewPolicy rotates leadership every ViewPolicy (r10/r30). Zero
	// disables policy rotation.
	ViewPolicy time.Duration

	StateMachine ledger.StateMachine
	RNG          *rand.Rand
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BatchSize == 0 {
		out.BatchSize = 100
	}
	if out.BatchTimeout == 0 {
		out.BatchTimeout = 2 * time.Millisecond
	}
	if out.ViewTimeout == 0 {
		out.ViewTimeout = time.Second
	}
	if out.RNG == nil {
		out.RNG = rand.New(rand.NewSource(int64(out.ID)))
	}
	return out
}

// LeaderOf returns the passive schedule's leader for a view: L = V mod n
// (Figure 1 of the paper).
func LeaderOf(v types.View, n int) types.ServerID {
	return types.ServerID((uint64(v)-1)%uint64(n) + 1)
}

// instance tracks the leader's in-flight decision.
type instance struct {
	block  *types.TxBlock
	digest types.Digest
	phase  Phase
	coll   *quorum.Collector
}

// Replica is one HotStuff server.
type Replica struct {
	cfg   Config
	store *ledger.Store

	view     types.View
	newViews map[types.View]*quorum.Collector
	active   bool // this replica is the current view's leader and may propose

	pending         []types.Transaction
	pendingByDigest map[types.Digest]bool
	batchArmed      bool
	inflight        *instance

	prepared   map[types.SeqNum]*types.TxBlock // follower: accepted proposals
	votedPhase map[phaseKey]bool
	lockedQC   types.QC

	committedTx map[types.Digest]types.SeqNum
	propSeen    map[types.Digest]*types.Prop
	comptSeen   map[types.Digest]bool
}

type phaseKey struct {
	v     types.View
	n     types.SeqNum
	phase Phase
}

// New creates a HotStuff replica.
func New(cfg Config) *Replica {
	c := cfg.withDefaults()
	return &Replica{
		cfg:             c,
		store:           ledger.NewStore(c.N, LeaderOf(1, c.N), c.StateMachine),
		view:            1,
		newViews:        make(map[types.View]*quorum.Collector),
		pendingByDigest: make(map[types.Digest]bool),
		prepared:        make(map[types.SeqNum]*types.TxBlock),
		votedPhase:      make(map[phaseKey]bool),
		committedTx:     make(map[types.Digest]types.SeqNum),
		propSeen:        make(map[types.Digest]*types.Prop),
		comptSeen:       make(map[types.Digest]bool),
	}
}

// ID implements consensus.Replica.
func (r *Replica) ID() types.ServerID { return r.cfg.ID }

// View returns the replica's current view.
func (r *Replica) View() types.View { return r.view }

// Store exposes the ledger.
func (r *Replica) Store() *ledger.Store { return r.store }

// Pending returns the size of the leader's proposal backlog (for tests and
// metrics).
func (r *Replica) Pending() int { return len(r.pending) }

// Active reports whether this replica is the current view's acting leader.
func (r *Replica) Active() bool { return r.active }

// Inflight reports whether a decision is in progress at this leader.
func (r *Replica) Inflight() bool { return r.inflight != nil }

// leader returns the scheduled leader of the current view.
func (r *Replica) leader() types.ServerID { return LeaderOf(r.view, r.cfg.N) }

// isLeader reports whether this replica leads the current view.
func (r *Replica) isLeader() bool { return r.leader() == r.cfg.ID }

// Init implements consensus.Replica. The view-1 leader is active
// immediately; everyone arms the pacemaker.
func (r *Replica) Init(now time.Duration) []consensus.Effect {
	if r.isLeader() {
		r.active = true
	}
	return r.armTimers()
}

func (r *Replica) armTimers() []consensus.Effect {
	effs := []consensus.Effect{
		consensus.SetTimer{Kind: TimerView, Key: uint64(r.view), Delay: r.cfg.ViewTimeout},
	}
	if r.cfg.ViewPolicy > 0 {
		effs = append(effs, consensus.SetTimer{Kind: TimerPolicy, Key: uint64(r.view), Delay: r.cfg.ViewPolicy})
	}
	return effs
}

// OnMessage implements consensus.Replica.
func (r *Replica) OnMessage(now time.Duration, from consensus.Origin, msg types.Message) []consensus.Effect {
	// HotStuff speaks its own message set plus the client-facing and sync
	// subset of the core vocabulary (see the harness contract).
	//lint:dispatch local prestigebft/internal/types=Prop,Compt,SyncReq,SyncResp
	switch m := msg.(type) {
	case *types.Prop:
		return r.onProp(now, m)
	case *types.Compt:
		return r.onCompt(now, m)
	case *Prepare:
		return r.onPrepare(now, m)
	case *Vote:
		return r.onVote(now, m)
	case *PhaseAnnounce:
		return r.onPhaseAnnounce(now, m)
	case *Decide:
		return r.onDecide(now, m)
	case *NewView:
		return r.onNewView(now, m)
	case *types.SyncReq:
		return r.onSyncReq(m)
	case *types.SyncResp:
		return r.onSyncResp(now, m)
	}
	return nil
}

// OnTimer implements consensus.Replica.
func (r *Replica) OnTimer(now time.Duration, kind consensus.TimerKind, key uint64) []consensus.Effect {
	switch kind {
	case TimerView:
		if types.View(key) != r.view {
			return nil
		}
		return r.advanceView(now, r.view+1)
	case TimerPolicy:
		if types.View(key) != r.view {
			return nil
		}
		return r.advanceView(now, r.view+1)
	case TimerBatch:
		r.batchArmed = false
		effs := r.maybePropose(now, true)
		if len(r.pending) > 0 || r.inflight != nil {
			r.batchArmed = true
			effs = append(effs, consensus.SetTimer{Kind: TimerBatch, Key: 0, Delay: r.cfg.BatchTimeout})
		}
		return effs
	case TimerCompt:
		// A complained transaction failed to commit: pacemaker timeout.
		return r.advanceView(now, r.view+1)
	}
	return nil
}

// OnPuzzleSolved implements consensus.Replica (HotStuff performs no
// reputation computation).
func (r *Replica) OnPuzzleSolved(time.Duration, uint64, []byte, types.Digest) []consensus.Effect {
	return nil
}

// advanceView is the passive view change: move to the scheduled next leader
// and tell it (NewView). This is blind — if the next scheduled server is
// crashed or slow, the system stalls for ViewTimeout before moving on
// (the weakness PrestigeBFT's active protocol removes).
func (r *Replica) advanceView(now time.Duration, v types.View) []consensus.Effect {
	if v <= r.view {
		return nil
	}
	r.view = v
	r.active = false
	r.inflight = nil
	var effs []consensus.Effect
	effs = append(effs, consensus.Trace{Event: consensus.TraceViewChangeStart, View: v, Server: r.cfg.ID})
	nv := &NewView{From: r.cfg.ID, V: v, N: r.store.TxHeight()}
	nv.Sig = r.cfg.Keys.Sign(nv.SigningBytes())
	if r.leader() == r.cfg.ID {
		effs = append(effs, r.onNewView(now, nv)...)
	} else {
		effs = append(effs, consensus.Send{To: r.leader(), Msg: nv})
	}
	effs = append(effs, r.armTimers()...)
	return effs
}

// onNewView collects 2f+1 view-change endorsements at the scheduled leader;
// the leader then starts proposing.
func (r *Replica) onNewView(now time.Duration, m *NewView) []consensus.Effect {
	if m.V < r.view || LeaderOf(m.V, r.cfg.N) != r.cfg.ID {
		return nil
	}
	coll, ok := r.newViews[m.V]
	if !ok {
		coll = quorum.NewCollector(types.QCGeneric, m.V, 0, types.Digest{}, types.QuorumSize(r.cfg.N))
		r.newViews[m.V] = coll
		if m.From != r.cfg.ID {
			// Count our own endorsement.
			own := &NewView{From: r.cfg.ID, V: m.V, N: r.store.TxHeight()}
			coll.Add(r.cfg.Registry, r.cfg.ID, r.cfg.Keys.Sign(own.SigningBytes()))
		}
	}
	if !coll.Add(r.cfg.Registry, m.From, m.Sig) {
		return nil
	}
	delete(r.newViews, m.V)
	var effs []consensus.Effect
	if m.V > r.view {
		r.view = m.V
		effs = append(effs, r.armTimers()...)
	}
	r.active = true
	effs = append(effs, consensus.Trace{Event: consensus.TraceElected, View: r.view, Server: r.cfg.ID})
	// Proposals observed while a follower become this leader's backlog.
	// Sorted order: the pending queue feeds batch contents, which must not
	// depend on map iteration.
	for _, d := range types.SortedDigestKeys(r.propSeen) {
		if _, committed := r.committedTx[d]; committed {
			continue
		}
		if !r.pendingByDigest[d] {
			r.pendingByDigest[d] = true
			r.pending = append(r.pending, r.propSeen[d].Tx)
		}
	}
	if !r.batchArmed && len(r.pending) > 0 {
		r.batchArmed = true
		effs = append(effs, consensus.SetTimer{Kind: TimerBatch, Key: 0, Delay: r.cfg.BatchTimeout})
	}
	effs = append(effs, r.maybePropose(now, true)...)
	return effs
}
