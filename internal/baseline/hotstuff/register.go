package hotstuff

import (
	"prestigebft/internal/consensus"
	"prestigebft/internal/harness"
	"prestigebft/internal/transport"
)

// init registers the baseline with the experiment harness so clusters can
// be built with Options{Protocol: harness.HotStuff}, and registers the
// HotStuff wire set with the transport codec — each protocol package owns
// its own wire types (transport.RegisterWireTypes), so any binary importing
// this package can carry them over live TCP.
func init() {
	transport.RegisterWireTypes(
		&Prepare{},
		&Vote{},
		&PhaseAnnounce{},
		&Decide{},
		&NewView{},
	)
	harness.RegisterProtocol(harness.HotStuff, func(env harness.FactoryEnv) consensus.Replica {
		cfg := Config{
			ID:        env.ID,
			N:         env.N,
			Keys:      env.Keys,
			Registry:  env.Registry,
			BatchSize: env.Opts.BatchSize,
			// The paper sets HotStuff's initial timeout to 1 s (§6.2); the
			// harness's TimeoutMax plays that role when customized.
			ViewTimeout: env.Opts.TimeoutMax,
			ViewPolicy:  env.Opts.ViewPolicy,
			RNG:         env.RNG,
		}
		if env.Opts.StateMachine != nil {
			cfg.StateMachine = env.Opts.StateMachine()
		}
		return New(cfg)
	})
}
