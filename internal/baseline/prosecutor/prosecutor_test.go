package prosecutor_test

import (
	"testing"
	"time"

	"prestigebft/internal/core"
	"prestigebft/internal/harness"

	_ "prestigebft/internal/baseline/prosecutor" // register with the harness
)

// TestNormalOperation: Prosecutor commits under client load.
func TestNormalOperation(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		Protocol: harness.Prosecutor,
		N:        4, Clients: 8, BatchSize: 8, Seed: 6,
		VerifySignatures: true,
	})
	c.Start()
	c.Run(3 * time.Second)
	if c.Metrics.TotalTxs == 0 {
		t.Fatal("Prosecutor committed nothing")
	}
}

// TestMonotonePenalties: Prosecutor's penalties never decrease — the
// defining difference from PrestigeBFT's compensating reputation engine.
// Under continuous rotation, every elected server's penalty only grows.
func TestMonotonePenalties(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		Protocol: harness.Prosecutor,
		N:        4, Clients: 4, BatchSize: 4, Seed: 13,
		VerifySignatures: true,
		ViewPolicy:       time.Second,
		TimeoutMin:       50 * time.Millisecond,
		TimeoutMax:       150 * time.Millisecond,
	})
	c.Start()
	c.Run(10 * time.Second)
	if c.Metrics.Elections < 2 {
		t.Fatalf("elections = %d, want >= 2", c.Metrics.Elections)
	}
	// Replay each server's rp series from the traces: must be monotone
	// non-decreasing (no compensation ever).
	for id, series := range c.Metrics.RPSeries {
		for i := 1; i < len(series); i++ {
			if series[i].RP < series[i-1].RP {
				t.Fatalf("server %d penalty decreased: %d -> %d (Prosecutor never compensates)",
					id, series[i-1].RP, series[i].RP)
			}
		}
	}
	// And elected servers' penalties must actually have grown.
	node := c.Replicas[0].(*core.Node)
	grew := false
	for id := range c.Metrics.LeaderShare() {
		if node.ReputationPenalty(id) > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("no elected server accumulated penalty under rotation")
	}
}
