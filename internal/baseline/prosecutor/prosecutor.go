// Package prosecutor implements a baseline in the style of Prosecutor
// (Zhang & Jacobsen, Middleware'21, "pr" in the paper's figures) —
// PrestigeBFT's direct predecessor. Prosecutor pioneered behavior-aware
// penalization: servers campaign for leadership by performing proof-of-work
// whose difficulty grows with the number of times the server has been
// suspected of failure. Unlike PrestigeBFT:
//
//   - penalties are monotone — there is no compensation from good behavior
//     (no δtx/δvc, no reputation engine), so penalties only accumulate;
//   - campaigns are triggered directly by failure detection, without the
//     conf_QC confirmation round;
//   - replication is a two-phase vote-collection protocol without the
//     up-to-date-leader guarantee, so a newly elected leader may first need
//     to synchronize before proposing.
//
// The implementation reuses the PrestigeBFT node with a degenerate
// reputation engine (Cδ = 0 disables compensation exactly), which is
// faithful to the relationship between the two systems: the paper presents
// PrestigeBFT's reputation mechanism as the generalization of Prosecutor's
// penalization.
package prosecutor

import (
	"prestigebft/internal/consensus"
	"prestigebft/internal/core"
	"prestigebft/internal/harness"
	"prestigebft/internal/reputation"
)

// New builds a Prosecutor replica: a PrestigeBFT node whose reputation
// engine never compensates (monotone penalties, Prosecutor's semantics).
func New(cfg core.Config) *core.Node {
	cfg.Engine = &reputation.Engine{CDelta: 0}
	return core.New(cfg)
}

// init registers the baseline with the harness. Prosecutor has no wire
// types of its own to register with the transport codec: the degenerate
// reputation engine rides the core PrestigeBFT message set (package types),
// which the transport registers itself.
func init() {
	harness.RegisterProtocol(harness.Prosecutor, func(env harness.FactoryEnv) consensus.Replica {
		cfg := core.Config{
			ID:               env.ID,
			N:                env.N,
			Keys:             env.Keys,
			Registry:         env.Registry,
			BatchSize:        env.Opts.BatchSize,
			TimeoutMin:       env.Opts.TimeoutMin,
			TimeoutMax:       env.Opts.TimeoutMax,
			ViewPolicy:       env.Opts.ViewPolicy,
			RefreshThreshold: 0,  // Prosecutor has no refresh mechanism
			PuzzleBitsPerRP:  -1, // difficulty enforced by the simulator's time model
			RNG:              env.RNG,
		}
		if env.Opts.StateMachine != nil {
			cfg.StateMachine = env.Opts.StateMachine()
		}
		return New(cfg)
	})
}
