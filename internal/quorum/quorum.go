// Package quorum assembles and validates quorum certificates. A Collector
// gathers signatures over one statement from distinct servers until a
// threshold is reached, then emits a types.QC. This is the in-memory analog
// of the paper's threshold-signature aggregation: t individually signed
// messages (O(n) total) are converted into one certificate.
package quorum

import (
	"bytes"

	"prestigebft/internal/crypto"
	"prestigebft/internal/types"
)

// Collector accumulates signatures for one statement.
type Collector struct {
	kind      types.QCKind
	view      types.View
	seq       types.SeqNum
	digest    types.Digest
	threshold int
	stmt      []byte

	signers map[types.ServerID][]byte
	done    bool
}

// NewCollector creates a collector for the statement identified by
// (kind, view, seq, digest) with the given signer threshold.
func NewCollector(kind types.QCKind, view types.View, seq types.SeqNum, digest types.Digest, threshold int) *Collector {
	return &Collector{
		kind:      kind,
		view:      view,
		seq:       seq,
		digest:    digest,
		threshold: threshold,
		stmt:      types.QCStatementBytes(kind, view, seq, digest),
		signers:   make(map[types.ServerID][]byte, threshold),
	}
}

// Statement returns the canonical statement bytes signers must sign.
func (c *Collector) Statement() []byte { return c.stmt }

// Threshold returns the number of distinct signers required.
func (c *Collector) Threshold() int { return c.threshold }

// Count returns the number of valid signatures collected so far.
func (c *Collector) Count() int { return len(c.signers) }

// Add records a signature from a server after verifying it against the
// registry. It returns true exactly once: when the threshold is first
// reached. Duplicate or invalid signatures are ignored.
func (c *Collector) Add(reg *crypto.Registry, from types.ServerID, sig []byte) bool {
	if c.done {
		return false
	}
	if _, dup := c.signers[from]; dup {
		return false
	}
	if !reg.VerifyServer(from, c.stmt, sig) {
		return false
	}
	c.signers[from] = sig
	if len(c.signers) >= c.threshold {
		c.done = true
		return true
	}
	return false
}

// Matches reports whether the collector is for the given statement identity.
func (c *Collector) Matches(kind types.QCKind, view types.View, seq types.SeqNum, digest types.Digest) bool {
	return c.kind == kind && c.view == view && c.seq == seq &&
		bytes.Equal(c.digest[:], digest[:])
}

// QC materializes the certificate. Signers are sorted for determinism.
func (c *Collector) QC() types.QC {
	ids := types.SortedKeys(c.signers)
	sigs := make([][]byte, len(ids))
	for i, id := range ids {
		sigs[i] = c.signers[id]
	}
	return types.QC{
		Kind:    c.kind,
		View:    c.view,
		Seq:     c.seq,
		Digest:  c.digest,
		Signers: ids,
		Sigs:    sigs,
	}
}
