package quorum

import (
	"testing"

	"prestigebft/internal/crypto"
	"prestigebft/internal/types"
)

func deployment(t *testing.T, n int) (*crypto.Registry, map[types.ServerID]*crypto.KeyPair) {
	t.Helper()
	reg, servers, _ := crypto.GenerateDeployment(11, n, 0)
	return reg, servers
}

func TestCollectorThreshold(t *testing.T) {
	reg, servers := deployment(t, 4)
	c := NewCollector(types.QCVote, 5, 2, types.Digest{}, 3)
	stmt := c.Statement()
	if c.Add(reg, 1, servers[1].Sign(stmt)) {
		t.Fatal("threshold reported at 1/3")
	}
	if c.Add(reg, 2, servers[2].Sign(stmt)) {
		t.Fatal("threshold reported at 2/3")
	}
	if !c.Add(reg, 3, servers[3].Sign(stmt)) {
		t.Fatal("threshold not reported at 3/3")
	}
	// Reaching the threshold fires exactly once.
	if c.Add(reg, 4, servers[4].Sign(stmt)) {
		t.Fatal("threshold fired twice")
	}
	qc := c.QC()
	if qc.Len() != 3 {
		t.Fatalf("QC has %d signers, want 3", qc.Len())
	}
	if err := reg.VerifyQC(&qc, 3); err != nil {
		t.Fatalf("assembled QC fails verification: %v", err)
	}
}

func TestCollectorRejectsDuplicatesAndBadSigs(t *testing.T) {
	reg, servers := deployment(t, 4)
	c := NewCollector(types.QCConf, 1, 1, types.Digest{}, 2)
	stmt := c.Statement()
	c.Add(reg, 1, servers[1].Sign(stmt))
	if c.Count() != 1 {
		t.Fatal("first signature not counted")
	}
	c.Add(reg, 1, servers[1].Sign(stmt)) // duplicate
	if c.Count() != 1 {
		t.Fatal("duplicate signer counted twice")
	}
	c.Add(reg, 2, servers[2].Sign([]byte("wrong statement")))
	if c.Count() != 1 {
		t.Fatal("invalid signature counted")
	}
	c.Add(reg, 9, []byte("nonsense")) // unknown server
	if c.Count() != 1 {
		t.Fatal("unknown server counted")
	}
}

func TestCollectorQCDeterministicOrder(t *testing.T) {
	reg, servers := deployment(t, 7)
	build := func(order []types.ServerID) types.QC {
		c := NewCollector(types.QCCommit, 2, 3, types.Digest{1}, 5)
		stmt := c.Statement()
		for _, id := range order {
			c.Add(reg, id, servers[id].Sign(stmt))
		}
		return c.QC()
	}
	a := build([]types.ServerID{5, 1, 4, 2, 3})
	b := build([]types.ServerID{3, 4, 1, 2, 5})
	for i := range a.Signers {
		if a.Signers[i] != b.Signers[i] {
			t.Fatalf("signer order depends on arrival order: %v vs %v", a.Signers, b.Signers)
		}
	}
}

func TestCollectorMatches(t *testing.T) {
	c := NewCollector(types.QCOrdering, 4, 9, types.Digest{2}, 3)
	if !c.Matches(types.QCOrdering, 4, 9, types.Digest{2}) {
		t.Fatal("identity mismatch")
	}
	if c.Matches(types.QCCommit, 4, 9, types.Digest{2}) ||
		c.Matches(types.QCOrdering, 5, 9, types.Digest{2}) ||
		c.Matches(types.QCOrdering, 4, 8, types.Digest{2}) ||
		c.Matches(types.QCOrdering, 4, 9, types.Digest{3}) {
		t.Fatal("Matches ignores part of the identity")
	}
}
