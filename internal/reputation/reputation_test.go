package reputation

import (
	"math"
	"testing"
	"testing/quick"

	"prestigebft/internal/types"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// TestGoldenFig4cRow1 pins example ① of Fig. 4b/4c: the server has been the
// leader from V1 to V5 without replication; campaigning for V6 raises rp to 6.
func TestGoldenFig4cRow1(t *testing.T) {
	e := New()
	res := e.CalcRP(6, Snapshot{
		V:         5,
		RP:        5,
		CI:        1,
		TI:        1,
		Penalties: []int64{1, 2, 3, 4, 5},
	})
	if res.Temp != 6 {
		t.Errorf("temp = %d, want 6", res.Temp)
	}
	almost(t, "δtx", res.DeltaTx, 0, 1e-9)
	almost(t, "δvc", res.DeltaVc, 0.19, 0.01)
	almost(t, "δ", res.Delta, 0, 1e-9)
	if res.RP != 6 {
		t.Errorf("rp(6) = %d, want 6", res.RP)
	}
	if res.Compensated {
		t.Error("row 1 must not be compensated")
	}
}

// TestGoldenFig4cRow2 pins example ②: after replicating 20 txBlocks in V5
// the campaign for V6 is compensated by 1 and rp stays 5.
//
// Note: the paper's table prints δtx=1 for ti=20, ci=1, but Eq. 2 yields
// (20-1)/20 = 0.95 (the paper's own Fig. 4a example with ti=10, ci=1 prints
// 0.9 = (10-1)/10, confirming Eq. 2). The compensation outcome — ⌊δ⌋ = 1,
// rp(6) = 5 — is identical either way; this test pins the Eq. 2 value and
// the paper's outcome.
func TestGoldenFig4cRow2(t *testing.T) {
	e := New()
	res := e.CalcRP(6, Snapshot{
		V:         5,
		RP:        5,
		CI:        1,
		TI:        20,
		Penalties: []int64{1, 2, 3, 4, 5},
	})
	if res.Temp != 6 {
		t.Errorf("temp = %d, want 6", res.Temp)
	}
	almost(t, "δtx", res.DeltaTx, 0.95, 1e-9)
	almost(t, "δvc", res.DeltaVc, 0.1956, 0.001)
	if !res.Compensated {
		t.Error("row 2 must be compensated")
	}
	if res.RP != 5 {
		t.Errorf("rp(6) = %d, want 5", res.RP)
	}
	if res.CI != 20 {
		t.Errorf("ci = %d, want 20", res.CI)
	}
}

// TestGoldenFig4cRow3 pins example ③: ci=20, ti=50 gives δtx=0.6 and no
// compensation; rp rises to 6.
func TestGoldenFig4cRow3(t *testing.T) {
	e := New()
	res := e.CalcRP(7, Snapshot{
		V:         6,
		RP:        5,
		CI:        20,
		TI:        50,
		Penalties: []int64{1, 2, 3, 4, 5, 5},
	})
	if res.Temp != 6 {
		t.Errorf("temp = %d, want 6", res.Temp)
	}
	almost(t, "δtx", res.DeltaTx, 0.6, 1e-9)
	almost(t, "δvc", res.DeltaVc, 0.25, 0.01)
	almost(t, "δ", res.Delta, 0.89, 0.01)
	if res.Compensated {
		t.Error("row 3 must not be compensated")
	}
	if res.RP != 6 {
		t.Errorf("rp(7) = %d, want 6", res.RP)
	}
}

// TestGoldenFig4cRow4 pins example ④: replicating to ti=100 restores
// compensation; rp stays 5 and ci advances to 100.
func TestGoldenFig4cRow4(t *testing.T) {
	e := New()
	res := e.CalcRP(7, Snapshot{
		V:         6,
		RP:        5,
		CI:        20,
		TI:        100,
		Penalties: []int64{1, 2, 3, 4, 5, 5},
	})
	almost(t, "δtx", res.DeltaTx, 0.8, 1e-9)
	almost(t, "δvc", res.DeltaVc, 0.25, 0.01)
	almost(t, "δ", res.Delta, 1.2, 0.02)
	if !res.Compensated {
		t.Error("row 4 must be compensated")
	}
	if res.RP != 5 {
		t.Errorf("rp(7) = %d, want 5", res.RP)
	}
	if res.CI != 100 {
		t.Errorf("ci = %d, want 100", res.CI)
	}
}

// TestGoldenFig4cRow5 pins example ⑤: the server stays a follower from V7 to
// V14 (penalty unchanged at 5 across ten vcBlocks), then campaigns for V15
// and is compensated by 1.
func TestGoldenFig4cRow5(t *testing.T) {
	e := New()
	p := []int64{1, 2, 3, 4}
	for i := 0; i < 10; i++ {
		p = append(p, 5)
	}
	res := e.CalcRP(15, Snapshot{
		V:         14,
		RP:        5,
		CI:        20,
		TI:        50,
		Penalties: p,
	})
	if res.Temp != 6 {
		t.Errorf("temp = %d, want 6", res.Temp)
	}
	almost(t, "δtx", res.DeltaTx, 0.6, 1e-9)
	almost(t, "δvc", res.DeltaVc, 0.36, 0.01)
	// The paper multiplies the rounded δvc=0.36 (6·0.6·0.36 = 1.296); the
	// unrounded value is 1.3096. ⌊δ⌋ = 1 either way.
	almost(t, "δ", res.Delta, 1.30, 0.02)
	if !res.Compensated {
		t.Error("row 5 must be compensated")
	}
	if res.RP != 5 {
		t.Errorf("rp(15) = %d, want 5", res.RP)
	}
}

// TestGoldenAppendixCExample6 pins the final Appendix C variation: ti=400
// over the follower period yields δtx=0.95, δ=2.05, and rp drops to 4.
func TestGoldenAppendixCExample6(t *testing.T) {
	e := New()
	p := []int64{1, 2, 3, 4}
	for i := 0; i < 10; i++ {
		p = append(p, 5)
	}
	res := e.CalcRP(15, Snapshot{
		V:         14,
		RP:        5,
		CI:        20,
		TI:        400,
		Penalties: p,
	})
	almost(t, "δtx", res.DeltaTx, 0.95, 1e-9)
	almost(t, "δvc", res.DeltaVc, 0.36, 0.01)
	// Paper prints 2.05 from rounded intermediates; unrounded is 2.0735.
	// ⌊δ⌋ = 2 either way.
	almost(t, "δ", res.Delta, 2.07, 0.03)
	if res.RP != 4 {
		t.Errorf("rp(15) = %d, want 4", res.RP)
	}
	if res.CI != 400 {
		t.Errorf("ci = %d, want 400", res.CI)
	}
}

// TestGoldenAppendixCInitialCampaign pins the very first campaign in
// Appendix C: from the genesis state (V=1, rp=1, ci=ti=1) a campaign for V2
// yields rp(2)=2 with no compensation.
func TestGoldenAppendixCInitialCampaign(t *testing.T) {
	e := New()
	res := e.CalcRP(2, Snapshot{V: 1, RP: 1, CI: 1, TI: 1, Penalties: []int64{1}})
	if res.Temp != 2 || res.RP != 2 {
		t.Errorf("temp/rp = %d/%d, want 2/2", res.Temp, res.RP)
	}
	almost(t, "δtx", res.DeltaTx, 0, 1e-9)
	if res.Compensated {
		t.Error("initial campaign must not be compensated")
	}
}

// TestGoldenFig4aExample2 pins Fig. 4a example ②: ci=1, ti=10 gives
// δtx = 0.9 and, upon election, ci becomes 10.
func TestGoldenFig4aExample2(t *testing.T) {
	e := New()
	res := e.CalcRP(2, Snapshot{V: 1, RP: 1, CI: 1, TI: 10, Penalties: []int64{1}})
	almost(t, "δtx", res.DeltaTx, 0.9, 1e-9)
	if res.CI != 10 {
		t.Errorf("ci = %d, want 10", res.CI)
	}
}

// TestGoldenFig4aExample3 pins Fig. 4a example ③: ci=10, ti=50 gives δtx=0.8.
func TestGoldenFig4aExample3(t *testing.T) {
	e := New()
	res := e.CalcRP(3, Snapshot{V: 2, RP: 1, CI: 10, TI: 50, Penalties: []int64{1, 1}})
	almost(t, "δtx", res.DeltaTx, 0.8, 1e-9)
}

// TestPopulationStats pins the σP values the paper's examples rely on.
func TestPopulationStats(t *testing.T) {
	cases := []struct {
		name      string
		xs        []int64
		mean, std float64
	}{
		{"P={1..5}", []int64{1, 2, 3, 4, 5}, 3, 1.414},
		{"P={1..5,5}", []int64{1, 2, 3, 4, 5, 5}, 3.333, 1.49},
		{"P5", append([]int64{1, 2, 3, 4}, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5), 4.2857, 1.278},
	}
	for _, c := range cases {
		mean, std := PopulationStats(c.xs)
		almost(t, c.name+" mean", mean, c.mean, 0.01)
		almost(t, c.name+" std", std, c.std, 0.01)
	}
}

// TestSigmoid checks basic properties of the logistic function.
func TestSigmoid(t *testing.T) {
	almost(t, "Sigmoid(0)", Sigmoid(0), 0.5, 1e-12)
	if !(Sigmoid(10) > 0.999) {
		t.Error("Sigmoid(10) should approach 1")
	}
	if !(Sigmoid(-10) < 0.001) {
		t.Error("Sigmoid(-10) should approach 0")
	}
}

// TestDeltaVcEdgeCases covers empty and degenerate penalty histories.
func TestDeltaVcEdgeCases(t *testing.T) {
	e := New()
	// σ = 0: z-score defined as 0, δvc = 0.5 (DESIGN.md §6).
	res := e.CalcRP(2, Snapshot{V: 1, RP: 7, CI: 1, TI: 1, Penalties: []int64{7, 7, 7}})
	almost(t, "δvc σ=0", res.DeltaVc, 0.5, 1e-12)
	// Empty history behaves like the neutral case.
	res = e.CalcRP(2, Snapshot{V: 1, RP: 1, CI: 1, TI: 1, Penalties: nil})
	almost(t, "δvc empty", res.DeltaVc, 0.5, 1e-12)
}

// TestViewJumpPenalization verifies Eq. 1: jumping many views costs the full
// jump, preventing Byzantine servers from overflowing the view counter
// cheaply.
func TestViewJumpPenalization(t *testing.T) {
	e := New()
	res := e.CalcRP(1000, Snapshot{V: 1, RP: 1, CI: 1, TI: 1, Penalties: []int64{1}})
	if res.Temp != 1000 {
		t.Errorf("temp = %d, want 1000", res.Temp)
	}
	if res.RP != 1000 {
		t.Errorf("rp = %d, want 1000 (no replication, no compensation)", res.RP)
	}
}

// TestCDeltaScaling verifies the Cδ knob scales the deduction.
func TestCDeltaScaling(t *testing.T) {
	strong := &Engine{CDelta: 3}
	weak := &Engine{CDelta: 0}
	snap := Snapshot{V: 5, RP: 5, CI: 1, TI: 20, Penalties: []int64{1, 2, 3, 4, 5}}
	rs := strong.CalcRP(6, snap)
	rw := weak.CalcRP(6, snap)
	if !(rs.RP < rw.RP) {
		t.Errorf("Cδ=3 rp %d should be lower than Cδ=0 rp %d", rs.RP, rw.RP)
	}
	if rw.RP != rw.Temp {
		t.Errorf("Cδ=0 must disable compensation: rp %d != temp %d", rw.RP, rw.Temp)
	}
}

// TestPropertyRPLowerBound: because 0 ≤ δtx ≤ 1 and 0 < δvc < 1 with Cδ=1,
// the deduction is strictly less than rp_temp, so rp' ≥ 1 whenever the
// inputs are reachable protocol states (rp ≥ 1, V' > V, ti ≥ ci ≥ 1).
func TestPropertyRPLowerBound(t *testing.T) {
	e := New()
	f := func(rpRaw, ciRaw, tiRaw uint16, jump uint8, histRaw []uint8) bool {
		rp := int64(rpRaw%1000) + 1
		ci := int64(ciRaw%1000) + 1
		ti := ci + int64(tiRaw%5000)
		v := types.View(10)
		vPrime := v + types.View(jump%64) + 1
		hist := make([]int64, 0, len(histRaw)+1)
		for _, h := range histRaw {
			hist = append(hist, int64(h%100)+1)
		}
		hist = append(hist, rp)
		res := e.CalcRP(vPrime, Snapshot{V: v, RP: rp, CI: ci, TI: ti, Penalties: hist})
		if res.RP < 1 {
			t.Logf("rp'=%d < 1 for rp=%d ci=%d ti=%d jump=%d", res.RP, rp, ci, ti, vPrime-v)
			return false
		}
		if res.RP > res.Temp {
			t.Logf("rp'=%d exceeds temp=%d", res.RP, res.Temp)
			return false
		}
		if res.CI < ci {
			t.Logf("ci went backwards: %d -> %d", ci, res.CI)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeltaBounds: δ ∈ [0, rp_temp) for all reachable states, so the
// floor deduction never zeroes the penalty (matches §3: "the deduction δ is
// a portion of the increased penalty").
func TestPropertyDeltaBounds(t *testing.T) {
	e := New()
	f := func(rpRaw, tiRaw uint16, histRaw []uint8) bool {
		rp := int64(rpRaw%500) + 1
		ti := int64(tiRaw%5000) + 1
		hist := make([]int64, 0, len(histRaw)+1)
		for _, h := range histRaw {
			hist = append(hist, int64(h%50)+1)
		}
		hist = append(hist, rp)
		res := e.CalcRP(12, Snapshot{V: 11, RP: rp, CI: 1, TI: ti, Penalties: hist})
		return res.Delta >= 0 && res.Delta < float64(res.Temp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMoreReplicationNeverHurts: with everything else fixed, a higher
// ti never yields a higher penalty (monotone incentive to replicate, §3).
func TestPropertyMoreReplicationNeverHurts(t *testing.T) {
	e := New()
	f := func(tiRaw uint16, extra uint8) bool {
		ti1 := int64(tiRaw%2000) + 1
		ti2 := ti1 + int64(extra)
		snap := Snapshot{V: 9, RP: 4, CI: 1, Penalties: []int64{1, 2, 3, 4, 4, 4}}
		s1, s2 := snap, snap
		s1.TI, s2.TI = ti1, ti2
		r1 := e.CalcRP(10, s1)
		r2 := e.CalcRP(10, s2)
		return r2.RP <= r1.RP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCountUseful exercises the application-defined useful-transaction
// criterion.
func TestCountUseful(t *testing.T) {
	e := New()
	txs := []types.Transaction{{Data: []byte("a")}, {Data: []byte("bb")}, {Data: []byte("ccc")}}
	if got := e.CountUseful(txs); got != 3 {
		t.Errorf("nil criterion: got %d, want 3", got)
	}
	e.UsefulTx = func(tx *types.Transaction) bool { return len(tx.Data) >= 2 }
	if got := e.CountUseful(txs); got != 2 {
		t.Errorf("len>=2 criterion: got %d, want 2", got)
	}
}

// TestSnapshotBoundaryTable pins CalcRP at the boundary shapes the
// checkpoint/compaction subsystem can feed it: empty penalty history, a
// degenerate all-identical history (e.g. every epoch faulty at the same
// penalty), and post-compaction snapshots, where the tx chain was pruned but
// ti (the chain HEIGHT, not the retained block count) and the full vcBlock
// penalty history keep flowing from the ledger untouched.
func TestSnapshotBoundaryTable(t *testing.T) {
	e := New()
	cases := []struct {
		name    string
		newView types.View
		snap    Snapshot
		wantRP  int64
		wantCI  int64
		comp    bool
	}{
		{
			// No history at all: δvc falls back to 0.5, and ti=ci=0 gives
			// δtx=0 — the +1 penalization stands in full.
			name:    "zero-history",
			newView: 2,
			snap:    Snapshot{V: 1, RP: 1, CI: 0, TI: 0, Penalties: nil},
			wantRP:  2, wantCI: 0, comp: false,
		},
		{
			// All-faulty epochs: every recorded penalty identical and high.
			// σ=0 degenerates the z-score to 0 (δvc = 0.5); with no
			// replication spent since the last compensation (ti == ci) the
			// deduction is zero and the penalty keeps climbing.
			name:    "all-faulty-epochs",
			newView: 6,
			snap:    Snapshot{V: 5, RP: 7, CI: 9, TI: 9, Penalties: []int64{7, 7, 7, 7, 7}},
			wantRP:  8, wantCI: 9, comp: false,
		},
		{
			// Same server, but it replicated since: δtx>0 recovers part of
			// the increase even against the degenerate history.
			name:    "all-faulty-epochs-with-replication",
			newView: 6,
			snap:    Snapshot{V: 5, RP: 7, CI: 9, TI: 36, Penalties: []int64{7, 7, 7, 7, 7}},
			// temp=8, δtx=0.75, δvc=0.5 → δ=3 → rp=5, ci advances to ti.
			wantRP: 5, wantCI: 36, comp: true,
		},
		{
			// Post-compaction inputs: the log base moved to 30 and only a
			// tail of blocks is retained, but ti is the chain height (34)
			// and the penalty history still spans every view from genesis.
			// The result must be identical to what an uncompacted replica
			// computes — this is why checkpoint state hashes cover the
			// reputation inputs.
			name:    "post-compaction",
			newView: 4,
			snap:    Snapshot{V: 3, RP: 2, CI: 1, TI: 34, Penalties: []int64{1, 1, 2}},
			// temp=3, δtx=33/34, δvc=1-sigmoid((2-4/3)/0.4714)≈0.1950 →
			// δ≈0.5677 → floor 0 → rp=3, ci advances to 34.
			wantRP: 3, wantCI: 34, comp: false,
		},
		{
			// Genesis boot: the very first view change a fresh cluster sees.
			name:    "genesis-first-campaign",
			newView: 2,
			snap:    Snapshot{V: 1, RP: 1, CI: 1, TI: 1, Penalties: []int64{1}},
			wantRP:  2, wantCI: 1, comp: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := e.CalcRP(tc.newView, tc.snap)
			if res.RP != tc.wantRP || res.CI != tc.wantCI || res.Compensated != tc.comp {
				t.Fatalf("CalcRP(%d, %+v) = rp %d ci %d comp %v, want rp %d ci %d comp %v",
					tc.newView, tc.snap, res.RP, res.CI, res.Compensated, tc.wantRP, tc.wantCI, tc.comp)
			}
		})
	}
}
