// Package reputation implements PrestigeBFT's reputation engine (§3 of the
// paper): Algorithm 1 (CalcRP) with penalization (Eq. 1), the two
// compensation criteria — incremental log responsiveness δtx (Eq. 2) and
// leadership zealousness δvc (Eq. 3) — and the final deduction (Eq. 4).
//
// The engine is a pure "consultant": it reads chain state (historic
// penalties from vcBlocks, replication progress from txBlocks) and returns
// the penalty a server would carry into a new view. It never writes state;
// only view-change consensus persists the result, and only for the elected
// leader (§4.2.4).
package reputation

import (
	"math"

	"prestigebft/internal/types"
)

// Defaults for the engine's tunables, matching the paper's settings.
const (
	// DefaultCDelta is Cδ in Eq. 4 ("For simplicity, we set Cδ = 1").
	DefaultCDelta = 1.0
	// DefaultInitialRP is the initial reputation penalty rp(1) = 1.
	DefaultInitialRP = 1
	// DefaultInitialCI is the initial compensation index ci = 1.
	DefaultInitialCI = 1
)

// Snapshot is the read-only chain state CalcRP consumes for one server:
// everything Algorithm 1 retrieves from the state machine.
type Snapshot struct {
	// V is the server's current view (vcBlock.v).
	V types.View
	// RP is the server's penalty recorded in the current vcBlock.
	RP int64
	// CI is the server's compensation index in the current vcBlock: the
	// number of txBlocks already used for past compensation.
	CI int64
	// TI is the number of txBlocks the server has committed — the sequence
	// number of its latest txBlock.
	TI int64
	// Penalties is the server's full penalty history P: its rp entry in
	// every vcBlock from genesis through the current view, in chain order
	// (Algo. 1 lines 4-7 walk the vcBlock chain collecting these).
	Penalties []int64
}

// Result carries the outcome of one CalcRP evaluation, including the
// intermediate quantities so experiments can print the paper's Fig. 4c
// breakdown table and tests can pin each step.
type Result struct {
	// RP is the new reputation penalty rp(V').
	RP int64
	// CI is the new compensation index (persisted only upon election).
	CI int64
	// Compensated reports whether ⌊δ⌋ ≥ 1.
	Compensated bool

	// Intermediates (Fig. 4c columns).
	Temp    int64   // rp_temp after penalization (Eq. 1)
	DeltaTx float64 // δtx (Eq. 2)
	DeltaVc float64 // δvc (Eq. 3)
	Delta   float64 // δ (Eq. 4, before the floor)
}

// Engine evaluates reputation penalties. The zero value is not usable;
// construct with New.
type Engine struct {
	// CDelta adjusts the joint effect of δtx·δvc (Eq. 4). Applications may
	// tune it; the paper and all experiments use 1.
	CDelta float64
	// UsefulTx filters which transactions count toward ti. Nil counts all.
	// This implements the paper's "users can define the criteria for useful
	// txBlocks" extension point (§3, Appendix B Q3); see the bank example.
	UsefulTx func(*types.Transaction) bool
}

// New returns an engine with the paper's default Cδ = 1.
func New() *Engine { return &Engine{CDelta: DefaultCDelta} }

// Sigmoid is the logistic function used by Eq. 3.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// CalcRP implements Algorithm 1: it computes the reputation penalty and
// compensation index the server identified by snap would carry into view
// newView. The returned values take effect only if the server is elected.
func (e *Engine) CalcRP(newView types.View, snap Snapshot) Result {
	// Step 1: penalization (Eq. 1). The penalty increases by the view jump;
	// correct servers always increment their view by exactly one.
	temp := snap.RP + int64(newView) - int64(snap.V)

	// Step 2a: incremental log responsiveness (Eq. 2). ti is the sequence
	// number of the server's latest txBlock; ci counts blocks already spent
	// on past compensation. Initially ti = ci = 1, so 0 ≤ δtx ≤ 1.
	dtx := 0.0
	if snap.TI > 0 {
		dtx = float64(snap.TI-snap.CI) / float64(snap.TI)
	}
	if dtx < 0 {
		dtx = 0
	}

	// Step 2b: leadership zealousness (Eq. 3). The z-score of the current
	// penalty against the full penalty history P, squashed by the sigmoid.
	dvc := e.deltaVc(snap.RP, snap.Penalties)

	// Eq. 4: the deduction is a fraction of the increased penalty.
	delta := float64(temp) * e.CDelta * dtx * dvc
	floor := int64(math.Floor(delta))
	rp := temp - floor

	// The compensation index advances to ti: those blocks have now been
	// "used" in a compensation calculation (Fig. 4a example 2: "If Sa is
	// elected, ci=10"). Persisted only upon election.
	ci := snap.CI
	if snap.TI > ci {
		ci = snap.TI
	}

	return Result{
		RP:          rp,
		CI:          ci,
		Compensated: floor >= 1,
		Temp:        temp,
		DeltaTx:     dtx,
		DeltaVc:     dvc,
		Delta:       delta,
	}
}

// deltaVc computes Eq. 3 over the penalty history. The paper's worked
// examples (Appendix C) pin the statistic to the *population* standard
// deviation: for P={1,2,3,4,5}, µ=3 and σ=1.41. A degenerate history with
// σ=0 defines the z-score as 0 (δvc = 0.5); DESIGN.md §6 records this edge
// case.
func (e *Engine) deltaVc(rp int64, penalties []int64) float64 {
	if len(penalties) == 0 {
		return 0.5
	}
	mean, std := PopulationStats(penalties)
	if std == 0 {
		return 1 - Sigmoid(0)
	}
	z := (float64(rp) - mean) / std
	return 1 - Sigmoid(z)
}

// PopulationStats returns the mean and population standard deviation of xs.
func PopulationStats(xs []int64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := float64(x) - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(xs)))
	return mean, std
}

// CountUseful applies the engine's UsefulTx criterion to a batch, returning
// how many transactions count toward ti. With a nil criterion all count.
func (e *Engine) CountUseful(txs []types.Transaction) int64 {
	if e.UsefulTx == nil {
		return int64(len(txs))
	}
	var n int64
	for i := range txs {
		if e.UsefulTx(&txs[i]) {
			n++
		}
	}
	return n
}
