// Package runtime drives a consensus.Replica with wall-clock time, real
// proof-of-work, and a TCP transport — the live counterpart of the
// discrete-event simulator. One goroutine owns the replica (an event loop
// over inbound messages, timer expirations, and puzzle completions), so the
// replica itself stays free of synchronization, exactly as in simulation.
package runtime

import (
	"encoding/binary"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/crypto"
	"prestigebft/internal/crypto/verifier"
	"prestigebft/internal/metrics"
	"prestigebft/internal/transport"
	"prestigebft/internal/types"
)

// Config wires a replica into the live runtime.
type Config struct {
	Replica consensus.Replica
	// Peers maps every server ID to its TCP address (including self).
	Peers map[types.ServerID]string
	// ClientAddr resolves a client ID to its TCP address; clients announce
	// themselves through their Prop broadcasts, so this may start empty
	// and learn lazily via RegisterClient.
	Transport *transport.Transport
	// PuzzleBitsPerRP is the real proof-of-work difficulty per penalty
	// unit. Must match the replica's verification configuration.
	PuzzleBitsPerRP int
	// OnCommit observes committed blocks.
	OnCommit func(*types.TxBlock)
	// OnTrace observes protocol traces.
	OnTrace func(consensus.Trace)
	// Logf logs runtime events; nil uses the standard logger.
	Logf func(format string, args ...any)
	// Seed seeds the runtime's RNG (puzzle nonce starting points and any
	// future jitter sources). Zero keeps the historical behavior — seeded
	// from the wall clock — which is fine for production but makes live
	// runs unreproducible; test harnesses pass an explicit seed.
	Seed int64
	// Epoch anchors the runtime's monotonic clock: the replica sees
	// now = time.Since(Epoch). The zero value means time.Now() at New.
	// A harness that crash-stops a runtime and re-spawns a fresh one over
	// the same replica passes the original epoch so the replica's clock
	// never runs backwards across the restart.
	Epoch time.Time
	// Metrics, when non-nil, receives the replica instrumentation: commit
	// and trace counters from the event loop, state gauges sampled every
	// sampleInterval on the loop goroutine (the replica's owner, so
	// sampling is race-free), and a mirror of the transport's counters.
	// Registration is idempotent, so a harness re-hosting a replica in a
	// fresh runtime passes the same registry and counters continue.
	Metrics *metrics.Registry
	// Verifier, when non-nil, routes inbound envelopes through the verify
	// pipeline before they reach the event queue: signatures and QCs are
	// pre-verified on the pool's workers (warming the registry's
	// verified-fact cache) so the core's inline verification calls become
	// cache hits. The pool is owned by whoever created it — the runtime
	// never closes it; close it after Stop+Wait.
	Verifier *verifier.Pool
}

type timerKey struct {
	kind consensus.TimerKind
	key  uint64
}

type inboundEvent struct {
	env *transport.Envelope
}

type timerEvent struct {
	kind consensus.TimerKind
	key  uint64
	gen  uint64
}

type puzzleEvent struct {
	token uint64
	nonce []byte
	hr    types.Digest
}

// Runtime is a live replica host.
type Runtime struct {
	cfg   Config
	start time.Time

	events chan any
	ins    *instruments

	// Health snapshot, written by the event loop's sampler and read by the
	// /healthz handler goroutine: the replica's last observed view and
	// height, and when the loop last proved it was alive.
	healthView     atomic.Uint64
	healthHeight   atomic.Uint64
	healthSampled  atomic.Int64 // UnixNano of the last sample
	healthObserved atomic.Bool  // whether the replica exports state at all

	mu          sync.Mutex
	clientAddrs map[types.ClientID]string
	timers      map[timerKey]*timerState
	puzzle      *puzzleState
	stopOnce    sync.Once
	stopped     chan struct{}
	done        chan struct{}
	rng         *rand.Rand
}

type timerState struct {
	timer *time.Timer
	gen   uint64
}

type puzzleState struct {
	token uint64
	abort chan struct{}
}

// New creates a runtime. Call Run to start the event loop.
func New(cfg Config) *Runtime {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Now()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() ^ int64(cfg.Replica.ID())
	}
	rt := &Runtime{
		cfg:         cfg,
		start:       cfg.Epoch,
		events:      make(chan any, 4096),
		clientAddrs: make(map[types.ClientID]string),
		timers:      make(map[timerKey]*timerState),
		stopped:     make(chan struct{}),
		done:        make(chan struct{}),
		rng:         rand.New(rand.NewSource(seed)),
	}
	if cfg.Metrics != nil {
		rt.ins = newInstruments(cfg.Metrics)
		if cfg.Transport != nil {
			RegisterTransportMetrics(cfg.Metrics, cfg.Transport)
		}
	}
	return rt
}

// HealthSnapshot reports the event loop's liveness as seen by its gauge
// sampler: the last sampled view and chain height, and how long ago the
// sample ran. ok is false until the first sample lands (or always, when the
// runtime has no metrics registry). View and height stay zero for replicas
// that export no state (fault wrappers); the sample age still proves the
// loop is alive.
func (rt *Runtime) HealthSnapshot() (view types.View, height types.SeqNum, age time.Duration, ok bool) {
	if !rt.healthObserved.Load() {
		return 0, 0, 0, false
	}
	at := rt.healthSampled.Load()
	return types.View(rt.healthView.Load()),
		types.SeqNum(rt.healthHeight.Load()),
		time.Duration(time.Now().UnixNano() - at),
		at != 0
}

// RegisterClient records where Notif messages for a client should go.
func (rt *Runtime) RegisterClient(id types.ClientID, addr string) {
	rt.mu.Lock()
	rt.clientAddrs[id] = addr
	rt.mu.Unlock()
}

// Deliver enqueues an inbound envelope (the transport handler). With a
// verify pipeline installed, the envelope detours through the pool first;
// sharding by sender preserves the per-peer FIFO order the transport's read
// loops provide.
func (rt *Runtime) Deliver(env *transport.Envelope) {
	if v := rt.cfg.Verifier; v != nil {
		key := uint64(env.FromServer)<<32 | uint64(env.FromClient)
		v.Submit(key, env.Msg, func() { rt.enqueue(env) })
		return
	}
	rt.enqueue(env)
}

func (rt *Runtime) enqueue(env *transport.Envelope) {
	select {
	case rt.events <- inboundEvent{env}:
	case <-rt.stopped:
	}
}

// Stop terminates the event loop. Idempotent: a harness tearing down a
// cluster may race its own crash injections' stops.
func (rt *Runtime) Stop() { rt.stopOnce.Do(func() { close(rt.stopped) }) }

// Wait blocks until the event loop has fully exited after Stop — the point
// at which no goroutine touches the replica anymore, so its state (ledger,
// view) can be read or re-hosted in a fresh runtime without a data race.
// Only valid after Run has been started.
func (rt *Runtime) Wait() { <-rt.done }

func (rt *Runtime) now() time.Duration { return time.Since(rt.start) }

// Run executes the replica event loop until Stop.
func (rt *Runtime) Run() {
	defer close(rt.done)
	// The sampler ticks whenever a metrics registry is attached: health
	// liveness comes from the tick itself, so even a replica that exports
	// no state (a Byzantine fault wrapper) proves its loop is alive.
	// State gauges additionally need the replica to be observable.
	var sampleC <-chan time.Time
	obs, _ := rt.cfg.Replica.(observable)
	if rt.ins != nil {
		rt.healthObserved.Store(true)
		ticker := time.NewTicker(sampleInterval)
		defer ticker.Stop()
		sampleC = ticker.C
		rt.sample(obs)
	}
	rt.execute(rt.cfg.Replica.Init(rt.now()))
	for {
		select {
		case <-rt.stopped:
			return
		case <-sampleC:
			rt.sample(obs)
		case ev := <-rt.events:
			switch e := ev.(type) {
			case inboundEvent:
				origin := consensus.FromServer(e.env.FromServer)
				if e.env.FromClient != 0 {
					origin = consensus.FromClient(e.env.FromClient)
				}
				rt.execute(rt.cfg.Replica.OnMessage(rt.now(), origin, e.env.Msg))
			case timerEvent:
				rt.mu.Lock()
				st, ok := rt.timers[timerKey{e.kind, e.key}]
				live := ok && st.gen == e.gen
				if live {
					delete(rt.timers, timerKey{e.kind, e.key})
				}
				rt.mu.Unlock()
				if live {
					rt.execute(rt.cfg.Replica.OnTimer(rt.now(), e.kind, e.key))
				}
			case puzzleEvent:
				rt.execute(rt.cfg.Replica.OnPuzzleSolved(rt.now(), e.token, e.nonce, e.hr))
			}
		}
	}
}

func (rt *Runtime) execute(effs []consensus.Effect) {
	for _, e := range effs {
		switch ef := e.(type) {
		case consensus.Send:
			rt.sendServer(ef.To, ef.Msg)
		case consensus.Broadcast:
			for id := range rt.cfg.Peers {
				if id != rt.cfg.Replica.ID() {
					rt.sendServer(id, ef.Msg)
				}
			}
		case consensus.SendClient:
			rt.mu.Lock()
			addr, ok := rt.clientAddrs[ef.To]
			rt.mu.Unlock()
			if ok {
				// Loss is within the fault model; the transport logs
				// unreachable/recovered transitions once per episode.
				rt.cfg.Transport.Send(addr, ef.Msg)
			}
		case consensus.SetTimer:
			rt.setTimer(ef)
		case consensus.CancelTimer:
			rt.mu.Lock()
			if st, ok := rt.timers[timerKey{ef.Kind, ef.Key}]; ok {
				st.timer.Stop()
				delete(rt.timers, timerKey{ef.Kind, ef.Key})
			}
			rt.mu.Unlock()
		case consensus.StartPuzzle:
			rt.startPuzzle(ef)
		case consensus.AbortPuzzle:
			rt.mu.Lock()
			if rt.puzzle != nil && rt.puzzle.token == ef.Token {
				close(rt.puzzle.abort)
				rt.puzzle = nil
			}
			rt.mu.Unlock()
		case consensus.Commit:
			rt.ins.onCommit(len(ef.Block.Txs))
			if rt.cfg.OnCommit != nil {
				rt.cfg.OnCommit(ef.Block)
			}
		case consensus.Trace:
			rt.ins.onTrace(ef, time.Now())
			if rt.cfg.OnTrace != nil {
				rt.cfg.OnTrace(ef)
			}
		}
	}
}

// sample refreshes gauges and the health snapshot from the replica. Runs on
// the event loop goroutine only.
func (rt *Runtime) sample(obs observable) {
	if obs != nil {
		rt.ins.sample(obs, rt.cfg.Replica.ID())
		rt.healthView.Store(uint64(obs.View()))
		rt.healthHeight.Store(uint64(obs.ChainHeight()))
	}
	rt.healthSampled.Store(time.Now().UnixNano())
}

func (rt *Runtime) sendServer(to types.ServerID, msg types.Message) {
	addr, ok := rt.cfg.Peers[to]
	if !ok {
		return
	}
	// Loss is within the fault model. Per-send error logging used to flood
	// the log with one line per attempt against a dead peer; the transport
	// now counts every failure (Stats/PeerStats) and logs only the
	// unreachable → backoff-capped → recovered transitions.
	rt.cfg.Transport.Send(addr, msg)
}

func (rt *Runtime) setTimer(ef consensus.SetTimer) {
	key := timerKey{ef.Kind, ef.Key}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if st, ok := rt.timers[key]; ok {
		st.timer.Stop()
	}
	gen := uint64(time.Now().UnixNano())
	st := &timerState{gen: gen}
	st.timer = time.AfterFunc(ef.Delay, func() {
		select {
		case rt.events <- timerEvent{ef.Kind, ef.Key, gen}:
		case <-rt.stopped:
		}
	})
	rt.timers[key] = st
}

// startPuzzle launches the real reputation-determined computation
// (Algo. 2 lines 36-39) on a worker goroutine, abortable when the redeemer
// discovers a higher view.
func (rt *Runtime) startPuzzle(ef consensus.StartPuzzle) {
	rt.mu.Lock()
	if rt.puzzle != nil {
		close(rt.puzzle.abort)
	}
	ps := &puzzleState{token: ef.Token, abort: make(chan struct{})}
	rt.puzzle = ps
	rt.mu.Unlock()

	bits := int(ef.RP) * rt.cfg.PuzzleBitsPerRP
	if rt.cfg.PuzzleBitsPerRP < 0 {
		bits = 0
	}
	seedCopy := append([]byte(nil), ef.Seed...)
	startNonce := rt.rng.Uint64()
	go func() {
		nonce := make([]byte, 8)
		binary.BigEndian.PutUint64(nonce, startNonce)
		for {
			select {
			case <-ps.abort:
				return
			case <-rt.stopped:
				return
			default:
			}
			// Work in slices so aborts are timely.
			for i := 0; i < 4096; i++ {
				hr := crypto.PuzzleHash(seedCopy, nonce)
				if crypto.CheckPrefix(hr, bits) {
					select {
					case rt.events <- puzzleEvent{ef.Token, append([]byte(nil), nonce...), hr}:
					case <-rt.stopped:
					}
					return
				}
				for j := 7; j >= 0; j-- {
					nonce[j]++
					if nonce[j] != 0 {
						break
					}
				}
			}
		}
	}()
}
