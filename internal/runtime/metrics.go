package runtime

import (
	"strconv"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/crypto"
	"prestigebft/internal/crypto/verifier"
	"prestigebft/internal/metrics"
	"prestigebft/internal/transport"
	"prestigebft/internal/types"
)

// observable is the read-only view of replica state the metrics sampler
// uses, satisfied by *core.Node. The runtime stays decoupled from the core
// package: a replica that doesn't implement this simply exports no gauges.
type observable interface {
	View() types.View
	CurrentLeader() types.ServerID
	ChainHeight() types.SeqNum
	RetainedBlocks() int
	CheckpointLag() int64
	ComplaintBacklog() int
	Reputations() ([]types.ServerID, []int64)
	WindowStats() (pending, inflight, parked int, batchArmed bool)
}

// sampleInterval is how often the event loop refreshes the state gauges.
// Sampling runs on the loop goroutine (the replica's owner), so it is
// race-free by construction and must stay cheap.
const sampleInterval = 250 * time.Millisecond

// vcDurationBuckets covers view-change durations from a clean sub-100ms
// handover to a pathological multi-second standoff.
var vcDurationBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// instruments holds the runtime's metric children. Counter fields are
// written from execute() (loop goroutine); gauges from sample().
type instruments struct {
	commits      *metrics.CounterChild
	committedTxs *metrics.CounterChild
	viewchanges  *metrics.CounterChild
	elections    *metrics.CounterChild
	syncUps      *metrics.CounterChild
	checkpoints  *metrics.CounterChild
	splitVotes   *metrics.CounterChild
	vcDuration   *metrics.HistogramChild

	view       *metrics.GaugeChild
	isLeader   *metrics.GaugeChild
	height     *metrics.GaugeChild
	retained   *metrics.GaugeChild
	ckptLag    *metrics.GaugeChild
	complaints *metrics.GaugeChild
	pending    *metrics.GaugeChild
	inflight   *metrics.GaugeChild
	parked     *metrics.GaugeChild
	reputation *metrics.Gauge // labeled per server

	// vcStarted tracks this replica's open campaigns (first
	// TraceViewChangeStart per target view) for the duration histogram;
	// lastInstalled dedupes viewchange_total so each installed view counts
	// exactly once per replica however many messages re-announce it.
	vcStarted     map[types.View]time.Time
	lastInstalled types.View
}

// newInstruments registers the replica metric catalog on reg.
func newInstruments(reg *metrics.Registry) *instruments {
	return &instruments{
		commits: reg.NewCounter("prestige_commits_total",
			"Committed txBlocks.").With(),
		committedTxs: reg.NewCounter("prestige_committed_txs_total",
			"Transactions inside committed txBlocks.").With(),
		viewchanges: reg.NewCounter("prestige_viewchange_total",
			"View changes started (counted once per target view).").With(),
		elections: reg.NewCounter("prestige_elections_total",
			"Elections won by this replica.").With(),
		syncUps: reg.NewCounter("prestige_syncups_total",
			"SyncUp rounds this replica initiated.").With(),
		checkpoints: reg.NewCounter("prestige_checkpoints_total",
			"Checkpoint certificates assembled.").With(),
		splitVotes: reg.NewCounter("prestige_splitvotes_total",
			"Split-vote elections observed.").With(),
		vcDuration: reg.NewHistogram("prestige_viewchange_duration_seconds",
			"View-change start to view installation.", vcDurationBuckets).With(),

		view: reg.NewGauge("prestige_view",
			"Current view number.").With(),
		isLeader: reg.NewGauge("prestige_is_leader",
			"1 when this replica leads its current view.").With(),
		height: reg.NewGauge("prestige_chain_height",
			"Committed txBlock height.").With(),
		retained: reg.NewGauge("prestige_retained_blocks",
			"TxBlocks held in the ledger (bounded by compaction).").With(),
		ckptLag: reg.NewGauge("prestige_checkpoint_lag",
			"Committed height minus latest certified checkpoint.").With(),
		complaints: reg.NewGauge("prestige_complaint_backlog",
			"Complained transactions not yet committed.").With(),
		pending: reg.NewGauge("prestige_window_pending",
			"Transactions queued for batching at the leader.").With(),
		inflight: reg.NewGauge("prestige_window_inflight",
			"Replication instances in the pipeline window.").With(),
		parked: reg.NewGauge("prestige_window_parked",
			"Committed instances awaiting in-order apply.").With(),
		reputation: reg.NewGauge("prestige_reputation",
			"Reputation penalty per server, as this replica sees it.", "server"),

		vcStarted: make(map[types.View]time.Time),
	}
}

// RegisterTransportMetrics mirrors a transport's counters (global and
// per-peer) into reg on every scrape via an OnGather hook. Keyed
// registration means a harness that swaps the transport across a
// crash/respawn cycle replaces the hook instead of stacking hooks that read
// dead transports.
func RegisterTransportMetrics(reg *metrics.Registry, tr *transport.Transport) {
	sent := reg.NewCounter("prestige_transport_sent_total",
		"Outbound send attempts.").With()
	delivered := reg.NewCounter("prestige_transport_delivered_total",
		"Inbound envelopes handed to the handler.").With()
	dropped := reg.NewCounter("prestige_transport_dropped_total",
		"Messages lost to dial/encode failures or injected faults.").With()
	bytes := reg.NewCounter("prestige_transport_bytes_total",
		"Outbound wire bytes written.").With()
	afterClose := reg.NewCounter("prestige_transport_sends_after_close_total",
		"Sends refused because the transport was already closed.").With()
	peerSent := reg.NewCounter("prestige_peer_sent_total",
		"Send attempts per peer.", "peer")
	peerDropped := reg.NewCounter("prestige_peer_dropped_total",
		"Messages dropped per peer.", "peer")
	peerBytes := reg.NewCounter("prestige_peer_bytes_total",
		"Wire bytes written per peer.", "peer")
	peerDials := reg.NewCounter("prestige_peer_dials_total",
		"Successful dials per peer.", "peer")
	peerRedials := reg.NewCounter("prestige_peer_redials_total",
		"Successful dials after the first, per peer.", "peer")
	peerEvictions := reg.NewCounter("prestige_peer_evictions_total",
		"Cached connections evicted on encode failure, per peer.", "peer")
	peerRetries := reg.NewCounter("prestige_peer_send_retries_total",
		"Messages resent over a fresh dial after a cached-conn encode failure, per peer.", "peer")
	peerBackoff := reg.NewCounter("prestige_peer_backoff_refused_total",
		"Sends refused inside a redial-backoff window, per peer.", "peer")
	unreachable := reg.NewGauge("prestige_peers_unreachable",
		"Peers currently inside a redial-backoff window.").With()
	reg.OnGather("transport", func() {
		st := tr.Stats()
		sent.Mirror(float64(st.Sent))
		delivered.Mirror(float64(st.Delivered))
		dropped.Mirror(float64(st.Dropped))
		bytes.Mirror(float64(st.Bytes))
		afterClose.Mirror(float64(tr.SendsAfterClose()))
		for addr, ps := range tr.PeerStats() {
			peerSent.With(addr).Mirror(float64(ps.Sent))
			peerDropped.With(addr).Mirror(float64(ps.Dropped))
			peerBytes.With(addr).Mirror(float64(ps.Bytes))
			peerDials.With(addr).Mirror(float64(ps.Dials))
			peerRedials.With(addr).Mirror(float64(ps.Redials))
			peerEvictions.With(addr).Mirror(float64(ps.Evictions))
			peerRetries.With(addr).Mirror(float64(ps.Retries))
			peerBackoff.With(addr).Mirror(float64(ps.BackoffRefused))
		}
		unreachable.Set(float64(len(tr.Unreachable())))
	})
}

// RegisterVerifierMetrics mirrors a verify pipeline's counters into reg on
// every scrape: messages routed through (and around) the pool, the current
// queue depth (the backpressure signal), and the registry's verified-fact
// cache hit/miss totals. Same keyed-hook contract as the transport mirror.
func RegisterVerifierMetrics(reg *metrics.Registry, pool *verifier.Pool, cr *crypto.Registry) {
	submitted := reg.NewCounter("prestige_verifier_submitted_total",
		"Messages routed through the verify pipeline.").With()
	bypassed := reg.NewCounter("prestige_verifier_bypassed_total",
		"Messages delivered around the pipeline (submitted after Close).").With()
	depth := reg.NewGauge("prestige_verifier_queue_depth",
		"Messages waiting in the verify pipeline's shards.").With()
	hits := reg.NewCounter("prestige_verified_cache_hits_total",
		"Verified-fact cache hits across all verification calls.").With()
	misses := reg.NewCounter("prestige_verified_cache_misses_total",
		"Verified-fact cache misses across all verification calls.").With()
	reg.OnGather("verifier", func() {
		sub, byp := pool.Stats()
		submitted.Mirror(float64(sub))
		bypassed.Mirror(float64(byp))
		depth.Set(float64(pool.QueueDepth()))
		if cr != nil {
			h, m := cr.CacheStats()
			hits.Mirror(float64(h))
			misses.Mirror(float64(m))
		}
	})
}

// onCommit records one committed block.
func (ins *instruments) onCommit(txs int) {
	if ins == nil {
		return
	}
	ins.commits.Inc()
	ins.committedTxs.Add(float64(txs))
}

// onTrace folds protocol trace events into counters. Runs on the loop
// goroutine, so vcStarted needs no lock.
func (ins *instruments) onTrace(ev consensus.Trace, now time.Time) {
	if ins == nil {
		return
	}
	switch ev.Event {
	case consensus.TraceViewChangeStart:
		// Emitted by campaigners only; anchors the duration histogram.
		if _, seen := ins.vcStarted[ev.View]; !seen {
			ins.vcStarted[ev.View] = now
		}
	case consensus.TraceElected:
		// Winning the election is this replica's installation of the new
		// view — it emits no separate TraceViewInstalled.
		ins.elections.Inc()
		ins.installed(ev.View, now)
	case consensus.TraceSplitVote:
		ins.splitVotes.Inc()
	case consensus.TraceSyncUp:
		ins.syncUps.Inc()
	case consensus.TraceCheckpoint:
		ins.checkpoints.Inc()
	case consensus.TraceViewInstalled:
		ins.installed(ev.View, now)
	}
}

// installed records a view installation: the per-replica "a view change
// completed" signal, exactly once per installed view however the
// installation arrived (winning the election, adopting a VcBlockMsg, or
// sync adoption).
func (ins *instruments) installed(view types.View, now time.Time) {
	if view > ins.lastInstalled {
		ins.lastInstalled = view
		ins.viewchanges.Inc()
	}
	if start, ok := ins.vcStarted[view]; ok {
		ins.vcDuration.Observe(now.Sub(start).Seconds())
	}
	// The installed view closes every lower-numbered campaign too.
	for v := range ins.vcStarted {
		if v <= view {
			delete(ins.vcStarted, v)
		}
	}
}

// sample refreshes the state gauges from the replica. Called from the event
// loop goroutine only.
func (ins *instruments) sample(obs observable, self types.ServerID) {
	if ins == nil || obs == nil {
		return
	}
	ins.view.Set(float64(obs.View()))
	lead := 0.0
	if obs.CurrentLeader() == self {
		lead = 1
	}
	ins.isLeader.Set(lead)
	ins.height.Set(float64(obs.ChainHeight()))
	ins.retained.Set(float64(obs.RetainedBlocks()))
	ins.ckptLag.Set(float64(obs.CheckpointLag()))
	ins.complaints.Set(float64(obs.ComplaintBacklog()))
	pending, inflight, parked, _ := obs.WindowStats()
	ins.pending.Set(float64(pending))
	ins.inflight.Set(float64(inflight))
	ins.parked.Set(float64(parked))
	ids, rps := obs.Reputations()
	for i, id := range ids {
		ins.reputation.With(strconv.FormatUint(uint64(id), 10)).Set(float64(rps[i]))
	}
}
