package runtime_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/core"
	"prestigebft/internal/crypto"
	"prestigebft/internal/runtime"
	"prestigebft/internal/transport"
	"prestigebft/internal/types"
)

// TestLiveClusterCommits boots a real 4-server cluster over loopback TCP
// with real signatures and real proof-of-work, submits transactions from a
// real client transport, and waits for f+1 notifications.
func TestLiveClusterCommits(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP test")
	}
	const n = 4
	reg, serverKeys, clientKeys := crypto.GenerateDeployment(77, n, 2)

	peers := make(map[types.ServerID]string, n)
	transports := make([]*transport.Transport, 0, n)
	runtimes := make([]*runtime.Runtime, 0, n)

	// Bind listeners first (with late-bound handlers) so the peer map is
	// complete before any runtime starts.
	type lateHandler struct {
		mu sync.Mutex
		fn transport.Handler
	}
	handlers := make([]*lateHandler, 0, n)
	ids := make([]types.ServerID, 0, n)
	for i := 1; i <= n; i++ {
		id := types.ServerID(i)
		tr := transport.NewServerTransport(id)
		lh := &lateHandler{}
		if err := tr.Listen("127.0.0.1:0", func(env *transport.Envelope) {
			lh.mu.Lock()
			fn := lh.fn
			lh.mu.Unlock()
			if fn != nil {
				fn(env)
			}
		}); err != nil {
			t.Fatal(err)
		}
		transports = append(transports, tr)
		handlers = append(handlers, lh)
		ids = append(ids, id)
		peers[id] = tr.Addr()
	}
	defer func() {
		for _, tr := range transports {
			tr.Close()
		}
	}()

	// Client listener.
	clientTr := transport.NewClientTransport(1)
	var mu sync.Mutex
	notifs := make(map[types.Digest]map[types.ServerID]bool)
	committed := make(chan types.Digest, 16)
	if err := clientTr.Listen("127.0.0.1:0", func(env *transport.Envelope) {
		notif, ok := env.Msg.(*types.Notif)
		if !ok {
			return
		}
		mu.Lock()
		set := notifs[notif.TxD]
		if set == nil {
			set = make(map[types.ServerID]bool)
			notifs[notif.TxD] = set
		}
		set[env.FromServer] = true
		if len(set) == types.ConfirmSize(n) {
			select {
			case committed <- notif.TxD:
			default:
			}
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	defer clientTr.Close()

	for i, id := range ids {
		node := core.New(core.Config{
			ID: id, N: n, Keys: serverKeys[id], Registry: reg,
			BatchSize: 2, PuzzleBitsPerRP: 2,
		})
		rt := runtime.New(runtime.Config{
			Replica:         node,
			Peers:           peers,
			Transport:       transports[i],
			PuzzleBitsPerRP: 2,
			Logf:            func(string, ...any) {},
		})
		rt.RegisterClient(1, clientTr.Addr())
		handlers[i].mu.Lock()
		handlers[i].fn = rt.Deliver
		handlers[i].mu.Unlock()
		runtimes = append(runtimes, rt)
		go rt.Run()
	}
	defer func() {
		for _, rt := range runtimes {
			rt.Stop()
		}
	}()

	// Submit four transactions and wait for quorum notifications.
	keys := clientKeys[1]
	want := make(map[types.Digest]bool)
	for seq := 1; seq <= 4; seq++ {
		tx := types.Transaction{Timestamp: int64(seq), Client: 1, Data: []byte(fmt.Sprintf("tx-%d", seq))}
		prop := &types.Prop{Tx: tx, D: tx.Digest()}
		prop.Sig = keys.Sign(prop.SigningBytes())
		want[prop.D] = true
		for _, addr := range peers {
			if err := clientTr.Send(addr, prop); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
	}
	deadline := time.After(10 * time.Second)
	for len(want) > 0 {
		select {
		case d := <-committed:
			delete(want, d)
		case <-deadline:
			t.Fatalf("timed out with %d transactions unconfirmed", len(want))
		}
	}
}

// TestRuntimeTimerSemantics: SetTimer replaces, CancelTimer disarms.
func TestRuntimeTimerSemantics(t *testing.T) {
	fired := make(chan uint64, 16)
	rep := &timerProbe{fired: fired}
	rt := runtime.New(runtime.Config{
		Replica:   rep,
		Peers:     map[types.ServerID]string{},
		Transport: transport.NewServerTransport(1),
		Logf:      func(string, ...any) {},
	})
	go rt.Run()
	defer rt.Stop()

	select {
	case k := <-fired:
		if k != 2 {
			t.Fatalf("timer %d fired, want only timer 2 (1 canceled, 3 replaced-by-2)", k)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no timer fired")
	}
	select {
	case k := <-fired:
		t.Fatalf("extra timer %d fired", k)
	case <-time.After(300 * time.Millisecond):
	}
}

// timerProbe arms three timers in Init: key 1 is canceled, key 2 stays,
// key 3 is re-armed far in the future (effectively never fires).
type timerProbe struct {
	fired chan uint64
}

func (p *timerProbe) ID() types.ServerID { return 1 }
func (p *timerProbe) Init(now time.Duration) []consensus.Effect {
	return []consensus.Effect{
		consensus.SetTimer{Kind: 1, Key: 1, Delay: 50 * time.Millisecond},
		consensus.SetTimer{Kind: 1, Key: 2, Delay: 60 * time.Millisecond},
		consensus.SetTimer{Kind: 1, Key: 3, Delay: 50 * time.Millisecond},
		consensus.CancelTimer{Kind: 1, Key: 1},
		consensus.SetTimer{Kind: 1, Key: 3, Delay: time.Hour}, // replace
	}
}
func (p *timerProbe) OnMessage(time.Duration, consensus.Origin, types.Message) []consensus.Effect {
	return nil
}
func (p *timerProbe) OnTimer(now time.Duration, kind consensus.TimerKind, key uint64) []consensus.Effect {
	p.fired <- key
	return nil
}
func (p *timerProbe) OnPuzzleSolved(time.Duration, uint64, []byte, types.Digest) []consensus.Effect {
	return nil
}

// scriptProbe is a replica whose OnMessage behavior is driven by the
// transaction payload of the delivered Prop: "block" parks the event loop
// until release is closed, "rearm" re-arms the probe timer far in the
// future, "cancel" cancels it. OnTimer records firings.
type scriptProbe struct {
	release chan struct{}
	fired   chan uint64
}

func (p *scriptProbe) ID() types.ServerID { return 1 }
func (p *scriptProbe) Init(now time.Duration) []consensus.Effect {
	return []consensus.Effect{consensus.SetTimer{Kind: 1, Key: 7, Delay: 30 * time.Millisecond}}
}
func (p *scriptProbe) OnMessage(_ time.Duration, _ consensus.Origin, msg types.Message) []consensus.Effect {
	prop, ok := msg.(*types.Prop)
	if !ok {
		return nil
	}
	switch string(prop.Tx.Data) {
	case "block":
		<-p.release
	case "rearm":
		return []consensus.Effect{consensus.SetTimer{Kind: 1, Key: 7, Delay: time.Hour}}
	case "cancel":
		return []consensus.Effect{consensus.CancelTimer{Kind: 1, Key: 7}}
	}
	return nil
}
func (p *scriptProbe) OnTimer(now time.Duration, kind consensus.TimerKind, key uint64) []consensus.Effect {
	p.fired <- key
	return nil
}
func (p *scriptProbe) OnPuzzleSolved(time.Duration, uint64, []byte, types.Digest) []consensus.Effect {
	return nil
}

func prop(data string) *transport.Envelope {
	return &transport.Envelope{FromClient: 1, Msg: &types.Prop{Tx: types.Transaction{Client: 1, Data: []byte(data)}}}
}

// staleTimerRun drives the generation-staleness schedule: the probe's timer
// expires and its event sits queued behind `action` (rearm or cancel)
// while the loop is parked, so by the time the loop processes the
// expiration, the timer has been superseded — the stale generation must be
// ignored. Returns the fired channel for the caller to assert on.
func staleTimerRun(t *testing.T, action string) (*runtime.Runtime, chan uint64) {
	t.Helper()
	p := &scriptProbe{release: make(chan struct{}), fired: make(chan uint64, 16)}
	rt := runtime.New(runtime.Config{
		Replica:   p,
		Peers:     map[types.ServerID]string{},
		Transport: transport.NewServerTransport(1),
		Logf:      func(string, ...any) {},
	})
	go rt.Run()
	// Park the loop, queue the superseding action behind it, then let the
	// 30ms timer expire so its event lands after the action in the queue.
	rt.Deliver(prop("block"))
	rt.Deliver(prop(action))
	time.Sleep(150 * time.Millisecond)
	close(p.release)
	return rt, p.fired
}

// TestStaleTimerGenerationIgnoredAfterRearm: a timer expiration queued
// before a re-arm must not fire the re-armed timer (its generation is
// stale). Without the gen check the hour-long replacement would fire
// instantly with the old expiration.
func TestStaleTimerGenerationIgnoredAfterRearm(t *testing.T) {
	rt, fired := staleTimerRun(t, "rearm")
	defer rt.Stop()
	select {
	case k := <-fired:
		t.Fatalf("stale timer generation fired (key %d) after re-arm", k)
	case <-time.After(400 * time.Millisecond):
	}
}

// TestStaleTimerGenerationIgnoredAfterCancel: same schedule with a cancel —
// the queued expiration of a canceled timer must be dropped.
func TestStaleTimerGenerationIgnoredAfterCancel(t *testing.T) {
	rt, fired := staleTimerRun(t, "cancel")
	defer rt.Stop()
	select {
	case k := <-fired:
		t.Fatalf("canceled timer fired (key %d) from a stale queued expiration", k)
	case <-time.After(400 * time.Millisecond):
	}
}

// TestDeliverAfterStop: Deliver on a stopped runtime must return promptly
// without blocking or panicking (transport read loops race teardown), and
// Stop must be idempotent with Wait observing loop exit.
func TestDeliverAfterStop(t *testing.T) {
	p := &scriptProbe{release: make(chan struct{}), fired: make(chan uint64, 1)}
	close(p.release)
	rt := runtime.New(runtime.Config{
		Replica:   p,
		Peers:     map[types.ServerID]string{},
		Transport: transport.NewServerTransport(1),
		Logf:      func(string, ...any) {},
	})
	go rt.Run()
	rt.Stop()
	rt.Stop() // idempotent
	rt.Wait()

	// Fill well past the channel capacity: every Deliver must fall through
	// to the stopped case instead of blocking once the buffer is full.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5000; i++ {
			rt.Deliver(prop("x"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Deliver blocked on a stopped runtime")
	}
}

// puzzleProbe starts a zero-difficulty puzzle at Init and records the nonce
// the runtime's RNG chose — the observable output of Config.Seed.
type puzzleProbe struct {
	nonces chan []byte
}

func (p *puzzleProbe) ID() types.ServerID { return 1 }
func (p *puzzleProbe) Init(now time.Duration) []consensus.Effect {
	return []consensus.Effect{consensus.StartPuzzle{Token: 1, Seed: []byte("s"), RP: 1}}
}
func (p *puzzleProbe) OnMessage(time.Duration, consensus.Origin, types.Message) []consensus.Effect {
	return nil
}
func (p *puzzleProbe) OnTimer(time.Duration, consensus.TimerKind, uint64) []consensus.Effect {
	return nil
}
func (p *puzzleProbe) OnPuzzleSolved(_ time.Duration, _ uint64, nonce []byte, _ types.Digest) []consensus.Effect {
	p.nonces <- nonce
	return nil
}

// TestSeedReproducibility: two runtimes with the same Config.Seed draw the
// same RNG stream (observed via the puzzle starting nonce); different seeds
// diverge. Zero keeps the wall-clock behavior for production.
func TestSeedReproducibility(t *testing.T) {
	solve := func(seed int64) string {
		p := &puzzleProbe{nonces: make(chan []byte, 1)}
		rt := runtime.New(runtime.Config{
			Replica:         p,
			Peers:           map[types.ServerID]string{},
			Transport:       transport.NewServerTransport(1),
			PuzzleBitsPerRP: 0, // zero difficulty: first nonce wins
			Seed:            seed,
			Logf:            func(string, ...any) {},
		})
		go rt.Run()
		defer rt.Stop()
		select {
		case n := <-p.nonces:
			return string(n)
		case <-time.After(5 * time.Second):
			t.Fatal("puzzle never solved")
			return ""
		}
	}
	a, b, c := solve(11), solve(11), solve(12)
	if a != b {
		t.Fatalf("same seed produced different nonces %x vs %x", a, b)
	}
	if a == c {
		t.Fatalf("different seeds produced the same nonce %x", a)
	}
}
