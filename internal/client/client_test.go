package client

import (
	"testing"
	"time"

	"prestigebft/internal/crypto"
	"prestigebft/internal/types"
)

// fakeEnv is a manually advanced client environment.
type fakeEnv struct {
	now        time.Duration
	broadcasts []types.Message
	timers     []*fakeTimer
}

type fakeTimer struct {
	at       time.Duration
	fn       func()
	canceled bool
}

func (e *fakeEnv) Now() time.Duration { return e.now }
func (e *fakeEnv) Broadcast(msg types.Message) {
	e.broadcasts = append(e.broadcasts, msg)
}
func (e *fakeEnv) SetTimer(d time.Duration, fn func()) func() {
	t := &fakeTimer{at: e.now + d, fn: fn}
	e.timers = append(e.timers, t)
	return func() { t.canceled = true }
}

func (e *fakeEnv) advance(d time.Duration) {
	e.now += d
	for _, t := range e.timers {
		if !t.canceled && t.at <= e.now && t.fn != nil {
			fn := t.fn
			t.fn = nil
			fn()
		}
	}
}

func newTestClient(t *testing.T) (*Client, *fakeEnv, *crypto.Registry, map[types.ServerID]*crypto.KeyPair) {
	t.Helper()
	reg, serverKeys, clientKeys := crypto.GenerateDeployment(55, 4, 1)
	env := &fakeEnv{}
	c := New(Config{
		ID: 1, Keys: clientKeys[1], Registry: reg, N: 4,
		PayloadSize: 16, Timeout: time.Second,
	}, env)
	return c, env, reg, serverKeys
}

func notifFor(prop *types.Prop, from types.ServerID, keys *crypto.KeyPair, status bool) *types.Notif {
	n := &types.Notif{From: from, V: 1, N: 1, TxD: prop.D, Status: status}
	n.Sig = keys.Sign(n.SigningBytes())
	return n
}

func TestClientClosedLoop(t *testing.T) {
	c, env, _, serverKeys := newTestClient(t)
	c.Start()
	if len(env.broadcasts) != 1 {
		t.Fatalf("broadcasts = %d, want 1", len(env.broadcasts))
	}
	prop := env.broadcasts[0].(*types.Prop)
	if !c.Outstanding() {
		t.Fatal("no outstanding request after Start")
	}
	// One notification is not enough (quorum f+1 = 2).
	env.advance(10 * time.Millisecond)
	c.OnNotif(1, notifFor(prop, 1, serverKeys[1], true))
	if c.Stats.Committed != 0 {
		t.Fatal("committed on a single notification")
	}
	// A duplicate from the same server must not count twice.
	c.OnNotif(1, notifFor(prop, 1, serverKeys[1], true))
	if c.Stats.Committed != 0 {
		t.Fatal("duplicate notification counted")
	}
	c.OnNotif(2, notifFor(prop, 2, serverKeys[2], true))
	if c.Stats.Committed != 1 {
		t.Fatalf("committed = %d, want 1 after f+1 notifs", c.Stats.Committed)
	}
	if len(c.Stats.Latencies) != 1 || c.Stats.Latencies[0] != 10*time.Millisecond {
		t.Fatalf("latency = %v", c.Stats.Latencies)
	}
	// Closed loop: the next request went out immediately.
	if len(env.broadcasts) != 2 {
		t.Fatalf("broadcasts = %d, want 2", len(env.broadcasts))
	}
}

func TestClientComplainsOnTimeout(t *testing.T) {
	c, env, _, _ := newTestClient(t)
	c.Start()
	env.advance(1100 * time.Millisecond)
	if c.Stats.Complaints != 1 {
		t.Fatalf("complaints = %d, want 1", c.Stats.Complaints)
	}
	// The complaint carries the original proposal, signed.
	var compt *types.Compt
	for _, m := range env.broadcasts {
		if x, ok := m.(*types.Compt); ok {
			compt = x
		}
	}
	if compt == nil {
		t.Fatal("no complaint broadcast")
	}
	orig := env.broadcasts[0].(*types.Prop)
	if compt.Prop.D != orig.D {
		t.Fatal("complaint references the wrong proposal")
	}
	if len(compt.Sig) == 0 {
		t.Fatal("complaint unsigned")
	}
}

func TestClientRejectsBadNotifSignature(t *testing.T) {
	c, env, _, serverKeys := newTestClient(t)
	c.Start()
	prop := env.broadcasts[0].(*types.Prop)
	n1 := notifFor(prop, 1, serverKeys[1], true)
	n1.Sig = []byte("garbage")
	c.OnNotif(1, n1)
	n2 := notifFor(prop, 2, serverKeys[2], true)
	n2.From = 3 // signature won't match claimed origin
	c.OnNotif(3, n2)
	if c.Stats.Committed != 0 {
		t.Fatal("bad notifications accepted")
	}
}

func TestClientRejectionQuorum(t *testing.T) {
	c, env, _, serverKeys := newTestClient(t)
	c.Start()
	prop := env.broadcasts[0].(*types.Prop)
	c.OnNotif(1, notifFor(prop, 1, serverKeys[1], false))
	c.OnNotif(2, notifFor(prop, 2, serverKeys[2], false))
	if c.Stats.Rejected != 1 || c.Stats.Committed != 0 {
		t.Fatalf("rejected/committed = %d/%d, want 1/0", c.Stats.Rejected, c.Stats.Committed)
	}
}

func TestClientMaxRequestsAndStop(t *testing.T) {
	reg, serverKeys, clientKeys := crypto.GenerateDeployment(55, 4, 1)
	env := &fakeEnv{}
	c := New(Config{
		ID: 1, Keys: clientKeys[1], Registry: reg, N: 4,
		MaxRequests: 2, Timeout: time.Second,
	}, env)
	_ = reg
	c.Start()
	for i := 0; i < 2; i++ {
		prop := env.broadcasts[len(env.broadcasts)-1].(*types.Prop)
		c.OnNotif(1, notifFor(prop, 1, serverKeys[1], true))
		c.OnNotif(2, notifFor(prop, 2, serverKeys[2], true))
	}
	if c.Stats.Committed != 2 {
		t.Fatalf("committed = %d, want 2", c.Stats.Committed)
	}
	if c.Outstanding() {
		t.Fatal("client kept requesting past MaxRequests")
	}
}

func TestClientThinkTime(t *testing.T) {
	reg, serverKeys, clientKeys := crypto.GenerateDeployment(55, 4, 1)
	env := &fakeEnv{}
	c := New(Config{
		ID: 1, Keys: clientKeys[1], Registry: reg, N: 4,
		ThinkTime: 100 * time.Millisecond, Timeout: time.Second,
	}, env)
	c.Start()
	prop := env.broadcasts[0].(*types.Prop)
	c.OnNotif(1, notifFor(prop, 1, serverKeys[1], true))
	c.OnNotif(2, notifFor(prop, 2, serverKeys[2], true))
	if len(env.broadcasts) != 1 {
		t.Fatal("next request sent before think time elapsed")
	}
	env.advance(150 * time.Millisecond)
	if len(env.broadcasts) != 2 {
		t.Fatal("next request not sent after think time")
	}
}
