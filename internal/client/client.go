// Package client implements the PrestigeBFT client protocol (§4.3 and
// §4.2.1): broadcast a proposal to all servers, wait for f+1 matching Notif
// messages, and broadcast a complaint if the proposal is not confirmed in
// time — the trigger of failure-detection view changes.
//
// Clients are closed-loop: each keeps exactly one transaction outstanding
// and submits the next one as soon as the previous commits, matching the
// paper's workload methodology ("clients generated random requests ... and
// waited for one request to complete before sending the next one").
package client

import (
	"time"

	"prestigebft/internal/crypto"
	"prestigebft/internal/types"
)

// Env is the runtime environment a client operates in. The simulator and
// the live runtime provide implementations.
type Env interface {
	// Now returns the current time.
	Now() time.Duration
	// Broadcast sends msg to every server.
	Broadcast(msg types.Message)
	// SetTimer schedules fn and returns a cancel function.
	SetTimer(d time.Duration, fn func()) (cancel func())
}

// Stats aggregates a client's completed requests.
type Stats struct {
	Committed  int
	Rejected   int // committed with status=false (application rejection)
	Complaints int
	Latencies  []time.Duration
}

// Config parameterizes a client.
type Config struct {
	ID       types.ClientID
	Keys     *crypto.KeyPair
	Registry *crypto.Registry
	N        int // cluster size, for the f+1 notification quorum

	// Payload generates the i-th transaction body. Default: PayloadSize
	// zero bytes.
	Payload func(i int) []byte
	// PayloadSize is the paper's m (message size); used when Payload is
	// nil. Default 32 bytes.
	PayloadSize int

	// Timeout is how long the client waits for f+1 Notifs before
	// complaining. Default 1s.
	Timeout time.Duration
	// ThinkTime delays the next request after a commit, throttling the
	// client's offered load. Zero keeps the loop closed and maximally
	// aggressive.
	ThinkTime time.Duration
	// MaxRequests stops the client after this many commits; 0 = unlimited.
	MaxRequests int

	// OnCommit, if non-nil, observes each commit (latency measurement
	// points live in Stats regardless).
	OnCommit func(latency time.Duration)
}

// Client is one closed-loop workload source.
type Client struct {
	cfg Config
	env Env

	seq         int
	outstanding *types.Prop
	outD        types.Digest
	sentAt      time.Duration
	notifs      map[types.ServerID]bool
	rejects     map[types.ServerID]bool
	cancelTimer func()
	stopped     bool

	// Stats is the client's accumulated results.
	Stats Stats
}

// New creates a client bound to its runtime environment.
func New(cfg Config, env Env) *Client {
	if cfg.PayloadSize == 0 {
		cfg.PayloadSize = 32
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = time.Second
	}
	return &Client{cfg: cfg, env: env}
}

// ID returns the client identity.
func (c *Client) ID() types.ClientID { return c.cfg.ID }

// Start submits the first request.
func (c *Client) Start() { c.next() }

// Stop halts the request loop after the current request completes.
func (c *Client) Stop() { c.stopped = true }

// next builds and broadcasts the client's next proposal.
func (c *Client) next() {
	if c.stopped || (c.cfg.MaxRequests > 0 && c.Stats.Committed >= c.cfg.MaxRequests) {
		c.outstanding = nil
		return
	}
	c.seq++
	var payload []byte
	if c.cfg.Payload != nil {
		payload = c.cfg.Payload(c.seq)
	} else {
		payload = make([]byte, c.cfg.PayloadSize)
	}
	tx := types.Transaction{
		// Unique per (client, seq): the timestamp the paper's t.
		Timestamp: int64(c.cfg.ID)<<32 | int64(c.seq),
		Client:    c.cfg.ID,
		Data:      payload,
	}
	prop := &types.Prop{Tx: tx, D: tx.Digest()}
	prop.Sig = c.cfg.Keys.Sign(prop.SigningBytes())
	c.outstanding = prop
	c.outD = prop.D
	c.sentAt = c.env.Now()
	c.notifs = make(map[types.ServerID]bool, types.ConfirmSize(c.cfg.N))
	c.rejects = make(map[types.ServerID]bool)
	c.env.Broadcast(prop)
	c.armTimeout()
}

func (c *Client) armTimeout() {
	if c.cancelTimer != nil {
		c.cancelTimer()
	}
	c.cancelTimer = c.env.SetTimer(c.cfg.Timeout, c.onTimeout)
}

// OnNotif processes a server notification. The transaction is confirmed
// once f+1 servers sent matching Notifs.
func (c *Client) OnNotif(from types.ServerID, m *types.Notif) {
	if c.outstanding == nil || m.TxD != c.outD {
		return
	}
	if !c.cfg.Registry.VerifyServer(from, m.SigningBytes(), m.Sig) {
		return
	}
	if m.Status {
		c.notifs[from] = true
	} else {
		c.rejects[from] = true
	}
	quorum := types.ConfirmSize(c.cfg.N)
	switch {
	case len(c.notifs) >= quorum:
		c.complete(true)
	case len(c.rejects) >= quorum:
		c.complete(false)
	}
}

func (c *Client) complete(accepted bool) {
	lat := c.env.Now() - c.sentAt
	c.Stats.Latencies = append(c.Stats.Latencies, lat)
	if accepted {
		c.Stats.Committed++
	} else {
		c.Stats.Rejected++
	}
	if c.cancelTimer != nil {
		c.cancelTimer()
		c.cancelTimer = nil
	}
	c.outstanding = nil
	if c.cfg.OnCommit != nil {
		c.cfg.OnCommit(lat)
	}
	if c.cfg.ThinkTime > 0 {
		c.env.SetTimer(c.cfg.ThinkTime, c.next)
		return
	}
	c.next()
}

// onTimeout broadcasts a complaint (§4.2.1): the proposal could not be
// confirmed in time, so the client suspects the leader.
func (c *Client) onTimeout() {
	if c.outstanding == nil || c.stopped {
		return
	}
	c.Stats.Complaints++
	compt := &types.Compt{Prop: *c.outstanding}
	compt.Sig = c.cfg.Keys.Sign(compt.SigningBytes())
	c.env.Broadcast(compt)
	c.armTimeout()
}

// Outstanding reports whether the client is waiting on a request.
func (c *Client) Outstanding() bool { return c.outstanding != nil }
