package harness

import "testing"

// TestAblationCompensation pins the ablation's two claims: attackers are
// penalized identically with or without compensation, while correct leaders
// diverge — compensation keeps them at the floor, the ablated engine
// punishes legitimate reigns.
func TestAblationCompensation(t *testing.T) {
	res := RunAblationCompensation()
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Values["attacker_rp_full"] != last.Values["attacker_rp_ablated"] {
		t.Errorf("attacker trajectories diverged: full=%v ablated=%v",
			last.Values["attacker_rp_full"], last.Values["attacker_rp_ablated"])
	}
	if last.Values["attacker_rp_full"] < 10 {
		t.Errorf("attacker penalty did not ratchet: %v", last.Values["attacker_rp_full"])
	}
	if full := last.Values["correct_rp_full"]; full > 8 {
		t.Errorf("correct leader unbounded despite compensation+refresh: rp=%v (π=8)", full)
	}
	if abl := last.Values["correct_rp_ablated"]; abl < 10 {
		t.Errorf("ablated engine failed to punish correct reigns: rp=%v (should be monotone)", abl)
	}
	// Compensation never helps the attacker more than the correct server:
	// at every reported round full-correct ≤ ablated-correct.
	for _, r := range res.Rows {
		if r.Values["correct_rp_full"] > r.Values["correct_rp_ablated"] {
			t.Errorf("%s: compensation made things worse (%v > %v)",
				r.Label, r.Values["correct_rp_full"], r.Values["correct_rp_ablated"])
		}
	}
}
