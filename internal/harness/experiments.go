package harness

import (
	"fmt"
	"strings"
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"
)

// This file contains one runner per table/figure of the paper's evaluation
// (§6). Simulation-backed runners declare a Grid of independent cells (see
// runner.go) executed on the worker pool; the cheap closed-form tables
// (fig4c, fig12, the ablation) build their Result directly. Every runner
// returns a Result whose String renders the same rows or series the paper
// reports. DESIGN.md §5 is the index.
//
// Every runner takes a Scale: Quick is sized for `go test -bench` (seconds
// of wall clock), Full approaches the paper's durations and counts in
// virtual time (minutes of wall clock).

// Scale selects experiment sizing.
type Scale int

const (
	// Quick runs a scaled-down experiment (default for benchmarks).
	Quick Scale = iota
	// Full approaches the paper's durations and counts.
	Full
)

// Row is one line of an experiment result table.
type Row struct {
	Label  string             `json:"label"`
	Values map[string]float64 `json:"values"`
	Order  []string           `json:"order"`
}

// Result is a rendered experiment outcome.
type Result struct {
	Name  string `json:"name"`
	Notes string `json:"notes,omitempty"`
	Rows  []Row  `json:"rows"`
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Name)
	if r.Notes != "" {
		fmt.Fprintf(&b, "%s\n", r.Notes)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-34s", row.Label)
		for _, k := range row.Order {
			fmt.Fprintf(&b, "  %s=%.6g", k, row.Values[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func row(label string, kv ...any) Row {
	r := Row{Label: label, Values: make(map[string]float64)}
	for i := 0; i+1 < len(kv); i += 2 {
		k := kv[i].(string)
		var v float64
		switch x := kv[i+1].(type) {
		case float64:
			v = x
		case int:
			v = float64(x)
		case time.Duration:
			v = float64(x.Milliseconds())
		}
		r.Values[k] = v
		r.Order = append(r.Order, k)
	}
	return r
}

// measure runs one cluster configuration and returns steady-state TPS
// (excluding warmup) and mean latency.
func measure(opts Options, warmup, span time.Duration) (tps float64, lat time.Duration, c *Cluster) {
	c = NewCluster(opts)
	c.Start()
	c.Run(warmup + span)
	c.CollectClientStats()
	tps = c.Metrics.TPS(sim.Duration(warmup), sim.Duration(warmup+span))
	lat = c.Metrics.MeanLatency()
	return tps, lat, c
}

// --- E1 / Figure 6 + E10 peak table ------------------------------------------

// Fig6Batches lists the batch sizes the paper sweeps per algorithm.
var Fig6Batches = map[Protocol][]int{
	PrestigeBFT: {2000, 3000, 5000},
	HotStuff:    {800, 1000, 2000},
	Prosecutor:  {800, 1000, 1500},
	SBFT:        {500, 800, 1000},
}

// baselineCost returns the CPU model for a protocol, reflecting the crypto
// stacks of the original implementations the paper benchmarked: SBFT's
// BLS-style threshold shares are ~20× costlier than ed25519-class ops, and
// Prosecutor's vote handling verifies O(n) individual signatures per phase.
// DESIGN.md §4 documents the calibration.
func baselineCost(p Protocol) sim.CostModel {
	c := sim.DefaultCostModel()
	switch p {
	case SBFT:
		// BLS threshold shares plus per-request public-key verification.
		c.Sign = 600 * time.Microsecond
		c.Verify = 1200 * time.Microsecond
		c.PerTx = 180 * time.Microsecond
	case Prosecutor:
		// O(n) individual vote verification per phase and heavier
		// per-request bookkeeping than pb's pipeline.
		c.Sign = 40 * time.Microsecond
		c.Verify = 110 * time.Microsecond
		c.PerTx = 6 * time.Microsecond
	case HotStuff:
		c.PerTx = 4 * time.Microsecond
	}
	return c
}

// fig6Grid declares the batching sweep at n=4, m=32 shared by Figure 6 and
// the peak table.
func fig6Grid(scale Scale) *Grid {
	g := &Grid{
		Name:  "Figure 6: performance under batching (n=4, m=32)",
		Notes: "paper shape: pb peaks highest (186k TPS @ β=3000 in the paper), hs ~1/5th, pr ≈ hs, sb lowest",
	}
	warmup, span := 500*time.Millisecond, 1200*time.Millisecond
	if scale == Full {
		span = 5 * time.Second
	}
	for _, p := range []Protocol{PrestigeBFT, HotStuff, Prosecutor, SBFT} {
		batches := Fig6Batches[p]
		if scale == Quick {
			batches = []int{batches[0], batches[len(batches)-1]}
		}
		for _, beta := range batches {
			clients := 2 * beta
			if scale == Quick {
				// Quick mode scales β and clients down 4×; relative shapes
				// are preserved because costs are per-transaction.
				beta /= 4
				clients /= 2
			}
			g.Specs = append(g.Specs, ExperimentSpec{
				Label: fmt.Sprintf("%s_beta%d", p, beta),
				Opts: Options{
					Protocol: p, N: 4, Clients: clients, BatchSize: beta,
					PayloadSize: 32, Seed: 60 + int64(beta),
					Cost: baselineCost(p),
				},
				Warmup: warmup, Span: span,
			})
		}
	}
	return g
}

// RunFig6 sweeps batch sizes per algorithm at n=4, m=32 and reports the
// latency/throughput points of Figure 6.
func RunFig6(scale Scale) *Result {
	return fig6Grid(scale).Run()
}

// RunPeak extracts the best operating point per algorithm (the §6.1 peak
// performance comparison) from the Figure 6 sweep.
func RunPeak(scale Scale) *Result {
	g := fig6Grid(scale)
	g.Name = "Peak performance (best batch per algorithm, §6.1)"
	g.Notes = "paper: pb 186,012 TPS / 166 ms; hs 35,428 TPS / 129 ms; sb 4,872 TPS / 148 ms"
	g.Finalize = func(rows []Row) []Row {
		best := map[string]Row{}
		for _, r := range rows {
			name := strings.Split(r.Label, "_beta")[0]
			if cur, ok := best[name]; !ok || r.Values["tps"] > cur.Values["tps"] {
				best[name] = r
			}
		}
		var out []Row
		for _, p := range []Protocol{PrestigeBFT, HotStuff, Prosecutor, SBFT} {
			if r, ok := best[string(p)]; ok {
				r.Label = string(p) + "_peak(" + r.Label + ")"
				out = append(out, r)
			}
		}
		if pb, ok := best[string(PrestigeBFT)]; ok {
			if hs, ok2 := best[string(HotStuff)]; ok2 && hs.Values["tps"] > 0 {
				out = append(out, row("pb/hs_speedup", "x", pb.Values["tps"]/hs.Values["tps"]))
			}
		}
		return out
	}
	return g.Run()
}

// --- E2 / Figure 7 -------------------------------------------------------------

// RunFig7 measures throughput and latency at increasing scales for pb and hs
// under two message sizes and two emulated network delays.
func RunFig7(scale Scale) *Result {
	g := &Grid{
		Name:  "Figure 7: scalability (n up to 100, m=32/64, d=0/10±5ms)",
		Notes: "paper shape: both decrease with n; added delay inflates latency; pb stays above hs",
	}
	ns := []int{4, 16, 31, 61, 100}
	delays := []time.Duration{0, 10 * time.Millisecond}
	sizes := []int{32, 64}
	warmup, span := 500*time.Millisecond, 1500*time.Millisecond
	batches := map[Protocol]int{PrestigeBFT: 3000, HotStuff: 1000}
	if scale == Quick {
		ns = []int{4, 16, 31}
		sizes = []int{32}
		batches = map[Protocol]int{PrestigeBFT: 750, HotStuff: 250}
	}
	for _, p := range []Protocol{PrestigeBFT, HotStuff} {
		for _, m := range sizes {
			for _, d := range delays {
				for _, n := range ns {
					net := sim.DefaultNetworkConfig()
					if d > 0 {
						net.Latency = sim.NetemLatency{
							Base:  net.Latency,
							Extra: sim.NormalLatency{Mean: d, StdDev: d / 2, Floor: 0},
						}
					}
					beta := batches[p]
					g.Specs = append(g.Specs, ExperimentSpec{
						Label: fmt.Sprintf("%s_m%d_d%d_n%d", p, m, d/time.Millisecond, n),
						Opts: Options{
							Protocol: p, N: n, Clients: beta, BatchSize: beta,
							PayloadSize: m, Seed: 70 + int64(n) + int64(d/time.Millisecond),
							Net: net, Cost: baselineCost(p),
						},
						Warmup: warmup, Span: span,
					})
				}
			}
		}
	}
	return g.Run()
}

// --- E3 / Figure 8 -------------------------------------------------------------

// RunFig8 measures the probability of split votes under increasing timeout
// randomization ε, with and without timeout attacks (F1).
func RunFig8(scale Scale) *Result {
	g := &Grid{
		Name:  "Figure 8: split votes vs timeout randomization",
		Notes: "paper shape: without faults split votes vanish by ε=50ms; F1 raises them slightly but not past ε=100ms",
	}
	epsilons := []time.Duration{0, 10 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	ns := []int{4, 16, 64}
	targetRounds := 150
	if scale == Full {
		targetRounds = 10000
	} else {
		ns = []int{4, 16}
	}
	for _, byz := range []bool{false, true} {
		for _, n := range ns {
			for _, eps := range epsilons {
				label := fmt.Sprintf("n%d_eps%dms", n, eps/time.Millisecond)
				if byz {
					label = "byz_" + label
				}
				n, eps, byz := n, eps, byz
				g.Specs = append(g.Specs, ExperimentSpec{
					Label: label,
					Measure: func(s *ExperimentSpec) []Row {
						prob := splitVoteProbability(n, eps, byz, targetRounds)
						return []Row{row(s.Label, "split_vote_pct", prob*100)}
					},
				})
			}
		}
	}
	return g.Run()
}

// splitVoteProbability drives repeated view changes with a fast timing
// policy and counts how many election rounds ended in split votes.
func splitVoteProbability(n int, eps time.Duration, byz bool, targetRounds int) float64 {
	f := types.FaultBound(n)
	fa := map[types.ServerID]faults.Spec{}
	if byz {
		// F1: faulty servers mirror the timeouts of f random correct
		// servers. They otherwise behave (the attack is purely temporal).
		for i := 0; i < f; i++ {
			fa[types.ServerID(n-i)] = faults.Spec{Mode: faults.Correct, RepeatedVC: false}
		}
	}
	opts := Options{
		N: n, Clients: 1, Seed: 80 + int64(n) + int64(eps),
		ViewPolicy: 300 * time.Millisecond,
		TimeoutMin: 100 * time.Millisecond,
		TimeoutMax: 100*time.Millisecond + eps,
		Faults:     fa,
	}
	if byz {
		opts.TimeoutAttack = true
		// Mark the mirrors faulty so the harness seeds them like victims.
		for i := 0; i < f; i++ {
			fa[types.ServerID(n-i)] = faults.Spec{RepeatedVC: true}
		}
	}
	if eps == 0 {
		opts.TimeoutMax = opts.TimeoutMin + time.Nanosecond
	}
	c := NewCluster(opts)
	c.Start()
	limit := 600 * time.Second
	step := 5 * time.Second
	for c.Metrics.Elections+c.Metrics.SplitVotes < targetRounds && c.Now().ToDuration() < limit {
		c.Run(step)
	}
	rounds := c.Metrics.Elections + c.Metrics.SplitVotes
	if rounds == 0 {
		return 1 // nothing ever completed: total split-vote livelock
	}
	return float64(c.Metrics.SplitVotes) / float64(rounds)
}

// --- E4+E5 / Figures 9 and 10 ---------------------------------------------------

// AttackConfig names one (policy period, fault mode, repeatedVC) cell of
// Figures 9 and 10.
type AttackConfig struct {
	Protocol   Protocol
	Rotate     time.Duration
	Mode       faults.Mode
	RepeatedVC bool
	N          int
	F          int
}

func (a AttackConfig) label() string {
	mode := "quiet"
	if a.Mode == faults.Equivocate {
		mode = "equiv"
	}
	name := map[Protocol]string{PrestigeBFT: "pb", HotStuff: "hs"}[a.Protocol]
	return fmt.Sprintf("%s_r%d_%s_n%d_f%d", name, int(a.Rotate.Seconds()+0.5), mode, a.N, a.F)
}

// RunAttack measures throughput for one Figure 9/10 cell. Quick mode scales
// the rotation period 4× down and the span to ~6 rotation cycles so the
// passive schedule actually cycles through the faulty servers (the paper
// ran 20 minutes; a span shorter than one rotation would hide the fault
// effect entirely).
func RunAttack(a AttackConfig, scale Scale) (tps float64) {
	span := 120 * time.Second
	if scale == Quick {
		a.Rotate /= 4
		span = 6 * a.Rotate
	}
	fa := map[types.ServerID]faults.Spec{}
	for i := 0; i < a.F; i++ {
		fa[types.ServerID(a.N-i)] = faults.Spec{
			Mode:          a.Mode,
			RepeatedVC:    a.RepeatedVC,
			HashRateScale: float64(max(1, a.F)), // collusion: joint computation
		}
	}
	opts := Options{
		Protocol: a.Protocol, N: a.N,
		Clients: 60, ClientThinkTime: 4 * time.Millisecond,
		BatchSize: 60, Seed: 90 + int64(a.N)*10 + int64(a.F),
		ViewPolicy: a.Rotate,
		TimeoutMin: 800 * time.Millisecond, TimeoutMax: 1200 * time.Millisecond,
		ClientTimeout: 2 * time.Second,
		Faults:        fa,
	}
	tps, _, _ = measure(opts, time.Second, span)
	return tps
}

// RunFig9 compares pb and hs under quiet (F2) and equivocation (F3) faults
// with rotation policies r10 and r30.
func RunFig9(scale Scale) *Result {
	return runAttackGrid("Figure 9: throughput under quiet/equivocation (F2+F3)",
		"paper shape: hs drops ~62%+ with f>0; pb unaffected (quiet can even raise it)",
		false, scale)
}

// RunFig10 layers repeated view-change attacks (F4) on top of F2/F3.
func RunFig10(scale Scale) *Result {
	return runAttackGrid("Figure 10: throughput under repeated VC attacks (F4+F2, F4+F3)",
		"paper shape: hs drops ~69%; pb drops ~24% and recovers as attackers are suppressed",
		true, scale)
}

func runAttackGrid(name, notes string, repeatedVC bool, scale Scale) *Result {
	g := &Grid{Name: name, Notes: notes}
	cells := []struct {
		n  int
		fs []int
	}{{4, []int{0, 1}}, {16, []int{0, 1, 2, 3}}}
	rotations := []time.Duration{10 * time.Second, 30 * time.Second}
	if scale == Quick {
		rotations = []time.Duration{10 * time.Second}
		cells = []struct {
			n  int
			fs []int
		}{{4, []int{0, 1}}, {16, []int{0, 3}}}
	}
	for _, p := range []Protocol{PrestigeBFT, HotStuff} {
		for _, rot := range rotations {
			for _, mode := range []faults.Mode{faults.Quiet, faults.Equivocate} {
				for _, cell := range cells {
					for _, f := range cell.fs {
						a := AttackConfig{Protocol: p, Rotate: rot, Mode: mode, RepeatedVC: repeatedVC, N: cell.n, F: f}
						g.Specs = append(g.Specs, ExperimentSpec{
							Label: a.label(),
							Measure: func(s *ExperimentSpec) []Row {
								return []Row{row(s.Label, "tps", RunAttack(a, scale))}
							},
						})
					}
				}
			}
		}
	}
	return g.Run()
}

// --- E6 / Figure 11 --------------------------------------------------------------

// RunFig11 produces the throughput-recovery timeline under F4+F2 for
// pb_r10_quiet at f = 0, 1, 3, 5 (n = 16), normalized to the f=0 level.
func RunFig11(scale Scale) *Result {
	g := &Grid{
		Name:  "Figure 11: throughput recovery under F4+F2 (pb_r10_quiet, n=16)",
		Notes: "paper shape: early attacks suppress TPS; reputation penalties lock attackers out and TPS recovers toward ~87% by t=1000s",
	}
	span := 120 * time.Second
	window := 15 * time.Second
	if scale == Full {
		span = 1000 * time.Second
		window = 50 * time.Second
	}
	for _, f := range []int{0, 1, 3, 5} {
		f := f
		g.Specs = append(g.Specs, ExperimentSpec{
			Label: fmt.Sprintf("f%d", f),
			Measure: func(s *ExperimentSpec) []Row {
				fa := map[types.ServerID]faults.Spec{}
				for i := 0; i < f; i++ {
					fa[types.ServerID(16-i)] = faults.Spec{
						Mode: faults.Quiet, RepeatedVC: true, HashRateScale: float64(max(1, f)),
					}
				}
				c := NewCluster(Options{
					Protocol: PrestigeBFT, N: 16,
					Clients: 50, ClientThinkTime: 4 * time.Millisecond, BatchSize: 50,
					Seed:       110 + int64(f),
					ViewPolicy: 10 * time.Second,
					TimeoutMin: 800 * time.Millisecond, TimeoutMax: 1200 * time.Millisecond,
					ClientTimeout: 2 * time.Second,
					Faults:        fa,
				})
				c.Start()
				c.Run(span)
				tl := c.Metrics.Timeline(sim.Duration(span), window)
				rows := make([]Row, 0, len(tl))
				for i, v := range tl {
					rows = append(rows, row(
						fmt.Sprintf("f%d_t%ds", f, int(window.Seconds())*i),
						"recovery_pct", 0.0, "tps", v,
					))
				}
				return rows
			},
		})
	}
	// Normalization is cross-cell (every series is reported relative to the
	// f=0 mean), so it runs after the grid completes.
	g.Finalize = func(rows []Row) []Row {
		var sum float64
		var n int
		for _, r := range rows {
			if strings.HasPrefix(r.Label, "f0_") {
				sum += r.Values["tps"]
				n++
			}
		}
		baseline := 0.0
		if n > 0 {
			baseline = sum / float64(n)
		}
		for i := range rows {
			if baseline > 0 {
				rows[i].Values["recovery_pct"] = rows[i].Values["tps"] / baseline * 100
			}
		}
		return rows
	}
	return g.Run()
}

// --- E7 / Figure 12 ---------------------------------------------------------------

// RunFig12 reports the time cost of launching repeated view-change attacks:
// the attacker's proof-of-work cost per attack (deterministic from the
// reputation trajectory) against correct servers' constant cost.
func RunFig12(scale Scale) *Result {
	res := &Result{
		Name:  "Figure 12: time cost to start a view change under attacks",
		Notes: "paper shape: attacker cost grows exponentially (ms -> 10^6 ms within ~20 attacks); correct servers stay at ms scale",
	}
	cost := sim.DefaultCostModel()
	bits := 4
	attacks := 20
	for _, f := range []int{1, 3} {
		rp := int64(1)
		for k := 1; k <= attacks; k++ {
			// Each successful attack increments the attacker's view by one
			// with no replication: Eq. 1 penalizes by +1, Eq. 4 never
			// compensates (δtx = 0).
			rp++
			atk := cost.ExpectedPuzzleTime(int(rp)*bits, float64(f))
			cor := cost.ExpectedPuzzleTime(1*bits, 1)
			res.Rows = append(res.Rows, row(
				fmt.Sprintf("f%d_attack%02d_rp%d", f, k, rp),
				"faulty_ms", float64(atk.Microseconds())/1000,
				"correct_ms", float64(cor.Microseconds())/1000,
			))
		}
	}
	return res
}

// --- E8 / Figure 13 ---------------------------------------------------------------

// RunFig13 runs the f=3 repeated-VC attack on n=16 and reports each
// server's reputation penalty trajectory.
func RunFig13(scale Scale) *Result {
	g := &Grid{
		Name:  "Figure 13: reputation penalties under f=3 repeated VC attacks (n=16)",
		Notes: "paper shape: attackers (S14-S16 here) climb toward rp≈8 and stall; correct servers stay near 1",
	}
	span := 100 * time.Second
	if scale == Full {
		span = 600 * time.Second
	}
	g.Specs = append(g.Specs, ExperimentSpec{
		Label: "rp_trajectories",
		Measure: func(*ExperimentSpec) []Row {
			fa := map[types.ServerID]faults.Spec{}
			for i := 0; i < 3; i++ {
				fa[types.ServerID(16-i)] = faults.Spec{Mode: faults.Quiet, RepeatedVC: true, HashRateScale: 3}
			}
			c := NewCluster(Options{
				Protocol: PrestigeBFT, N: 16,
				Clients: 60, ClientThinkTime: 2 * time.Millisecond, BatchSize: 50,
				Seed:       130,
				ViewPolicy: 10 * time.Second,
				TimeoutMin: 800 * time.Millisecond, TimeoutMax: 1200 * time.Millisecond,
				ClientTimeout: 2 * time.Second,
				Faults:        fa,
			})
			c.Start()
			c.Run(span)
			node := c.Nodes[0]
			rows := make([]Row, 0, 16)
			for i := 1; i <= 16; i++ {
				id := types.ServerID(i)
				final := node.ReputationPenalty(id)
				peak := final
				for _, pt := range c.Metrics.RPSeries[id] {
					if pt.RP > peak {
						peak = pt.RP
					}
				}
				rows = append(rows, row(
					fmt.Sprintf("S%d(faulty=%v)", i, fa[id].IsFaulty()),
					"final_rp", float64(final), "peak_rp", float64(peak),
					"elections", float64(len(c.Metrics.RPSeries[id])),
				))
			}
			return rows
		},
	})
	return g.Run()
}

// --- E9 / Figure 14 ---------------------------------------------------------------

// RunFig14 compares availability over time: pb under attacker strategies S1
// (always attack) and S2 (attack only when compensable) versus hs, f=3.
func RunFig14(scale Scale) *Result {
	g := &Grid{
		Name:  "Figure 14: availability under repeated VC attacks (f=3, n=16)",
		Notes: "paper shape: pb-S1 and pb-S2 climb toward ~100%; hs stays far lower",
	}
	span := 200 * time.Second
	if scale == Full {
		span = 10000 * time.Second
	}
	checkpoints := []time.Duration{10 * time.Second, 50 * time.Second, 100 * time.Second, 200 * time.Second, span}
	type variant struct {
		name  string
		proto Protocol
		smart bool
	}
	for _, v := range []variant{{"pb-S1", PrestigeBFT, false}, {"pb-S2", PrestigeBFT, true}, {"hs", HotStuff, false}} {
		v := v
		g.Specs = append(g.Specs, ExperimentSpec{
			Label: v.name,
			Measure: func(*ExperimentSpec) []Row {
				fa := map[types.ServerID]faults.Spec{}
				for i := 0; i < 3; i++ {
					fa[types.ServerID(16-i)] = faults.Spec{
						Mode: faults.Quiet, RepeatedVC: true, Smart: v.smart, HashRateScale: 3,
					}
				}
				c := NewCluster(Options{
					Protocol: v.proto, N: 16,
					Clients: 60, ClientThinkTime: 2 * time.Millisecond, BatchSize: 50,
					Seed:       140,
					ViewPolicy: 10 * time.Second,
					TimeoutMin: 800 * time.Millisecond, TimeoutMax: 1200 * time.Millisecond,
					ClientTimeout: 2 * time.Second,
					Faults:        fa,
				})
				c.Start()
				var rows []Row
				last := time.Duration(0)
				for _, cp := range checkpoints {
					if cp > span {
						cp = span
					}
					if cp > last {
						c.Run(cp - last)
						last = cp
					}
					av := c.Metrics.Availability(sim.Duration(cp), time.Second)
					rows = append(rows, row(
						fmt.Sprintf("%s_t%ds", v.name, int(cp.Seconds())),
						"availability_pct", av*100,
					))
				}
				return rows
			},
		})
	}
	return g.Run()
}

// --- E0 / Figure 4c ---------------------------------------------------------------

// RunFig4c reproduces the reputation calculation breakdown table.
func RunFig4c() *Result {
	res := &Result{
		Name:  "Figure 4c: reputation penalty calculation breakdown",
		Notes: "exact reproduction of the paper's worked examples (see internal/reputation golden tests)",
	}
	for _, ex := range Fig4cExamples() {
		res.Rows = append(res.Rows, row(ex.Label,
			"ci", float64(ex.CI), "ti", float64(ex.TI),
			"dtx", ex.DeltaTx, "dvc", ex.DeltaVc, "delta", ex.Delta,
			"rp_new", float64(ex.NewRP)))
	}
	return res
}

// Experiments maps experiment names to runners for the bench CLI.
var Experiments = map[string]func(Scale) *Result{
	"fig4c":      func(Scale) *Result { return RunFig4c() },
	"fig6":       RunFig6,
	"peak":       RunPeak,
	"fig7":       RunFig7,
	"fig8":       RunFig8,
	"fig9":       RunFig9,
	"fig10":      RunFig10,
	"fig11":      RunFig11,
	"fig12":      func(s Scale) *Result { return RunFig12(s) },
	"fig13":      RunFig13,
	"fig14":      RunFig14,
	"pipeline":   RunPipelineSweep,
	"checkpoint": RunCheckpointSweep,
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
