package harness

import (
	"testing"
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"
)

// run builds, starts, and advances a cluster, returning it for inspection.
func run(t *testing.T, opts Options, d time.Duration) *Cluster {
	t.Helper()
	c := NewCluster(opts)
	c.Start()
	c.Run(d)
	c.CollectClientStats()
	return c
}

// TestNormalOperationCommits: a 4-server cluster under client load commits
// transactions and every correct replica converges to the same chain.
func TestNormalOperationCommits(t *testing.T) {
	t.Parallel()
	c := run(t, Options{
		N: 4, Clients: 8, BatchSize: 8, Seed: 42,
		VerifySignatures: true,
	}, 3*time.Second)

	if c.Metrics.TotalTxs == 0 {
		t.Fatal("no transactions committed under normal operation")
	}
	// All replicas should be at (nearly) the same height with identical
	// block hashes on the common prefix.
	minH := c.Nodes[0].Store().TxHeight()
	for _, n := range c.Nodes[1:] {
		if h := n.Store().TxHeight(); h < minH {
			minH = h
		}
	}
	if minH == 0 {
		t.Fatal("some replica committed nothing")
	}
	ref := c.Nodes[0].Store()
	for _, n := range c.Nodes[1:] {
		for s := types.SeqNum(1); s <= minH; s++ {
			if n.Store().TxBlock(s).Hash() != ref.TxBlock(s).Hash() {
				t.Fatalf("replica %d diverges at seq %d", n.ID(), s)
			}
		}
	}
	// No view changes should have occurred under a correct leader
	// (Theorem 4, leadership robustness).
	if c.Metrics.Elections != 0 {
		t.Errorf("elections = %d under correct leader, want 0", c.Metrics.Elections)
	}
	if len(c.Metrics.Latencies) == 0 {
		t.Fatal("clients observed no commits")
	}
}

// TestLeaderCrashRecovers: crashing the leader triggers a complaint-driven
// view change and the cluster resumes committing (Theorem 2, liveness).
func TestLeaderCrashRecovers(t *testing.T) {
	t.Parallel()
	c := NewCluster(Options{
		N: 4, Clients: 4, BatchSize: 4, Seed: 7,
		VerifySignatures: true,
		ClientTimeout:    500 * time.Millisecond,
	})
	c.Start()
	c.Run(time.Second)
	before := c.Metrics.TotalTxs
	if before == 0 {
		t.Fatal("no commits before crash")
	}
	c.Crash(1) // server 1 is the initial leader
	c.Run(10 * time.Second)
	if c.Metrics.Elections == 0 {
		t.Fatal("no election after leader crash")
	}
	after := c.Metrics.TotalTxs
	if after <= before {
		t.Fatalf("no progress after leader crash: %d -> %d", before, after)
	}
	// The new leader must be a live server, not the crashed one — the
	// active protocol never elects an unavailable server (§1).
	for _, n := range c.Nodes[1:] {
		if l := n.CurrentLeader(); l == 1 {
			t.Errorf("replica %d still believes crashed server leads", n.ID())
		}
	}
}

// TestSafetyNoConflictingCommits checks Theorem 3 under repeated leader
// crashes: no two correct replicas commit different blocks at the same
// sequence number.
func TestSafetyNoConflictingCommits(t *testing.T) {
	t.Parallel()
	c := NewCluster(Options{
		N: 4, Clients: 6, BatchSize: 4, Seed: 99,
		VerifySignatures: true,
		ClientTimeout:    400 * time.Millisecond,
	})
	c.Start()
	c.Run(time.Second)
	// Crash the current leader, let a new one emerge, recover, repeat.
	crashed := types.NoServer
	for round := 0; round < 3; round++ {
		leader := c.Nodes[1].CurrentLeader()
		if crashed != types.NoServer {
			c.Recover(crashed)
		}
		c.Crash(leader)
		crashed = leader
		c.Run(8 * time.Second)
	}
	var maxH types.SeqNum
	for _, n := range c.Nodes {
		if h := n.Store().TxHeight(); h > maxH {
			maxH = h
		}
	}
	if maxH == 0 {
		t.Fatal("nothing committed across crash rounds")
	}
	for s := types.SeqNum(1); s <= maxH; s++ {
		var ref types.Digest
		for _, n := range c.Nodes {
			b := n.Store().TxBlock(s)
			if b == nil {
				continue
			}
			h := b.Hash()
			if ref.IsZero() {
				ref = h
			} else if h != ref {
				t.Fatalf("conflicting commit at seq %d", s)
			}
		}
	}
}

// TestQuietParticipantsUnaffected: f quiet servers (F2) under a correct
// leader do not stop progress and cause no view changes (Fig. 9's
// PrestigeBFT result).
func TestQuietParticipantsUnaffected(t *testing.T) {
	t.Parallel()
	c := run(t, Options{
		N: 4, Clients: 8, BatchSize: 8, Seed: 21,
		VerifySignatures: true,
		Faults:           map[types.ServerID]faults.Spec{4: {Mode: faults.Quiet}},
	}, 3*time.Second)
	if c.Metrics.TotalTxs == 0 {
		t.Fatal("quiet participant halted progress")
	}
	if c.Metrics.Elections != 0 {
		t.Errorf("quiet participant induced %d elections", c.Metrics.Elections)
	}
}

// TestEquivocatingParticipantsUnaffected: f equivocating servers (F3) under
// a correct leader cannot stop progress.
func TestEquivocatingParticipantsUnaffected(t *testing.T) {
	t.Parallel()
	c := run(t, Options{
		N: 4, Clients: 8, BatchSize: 8, Seed: 22,
		VerifySignatures: true,
		Faults:           map[types.ServerID]faults.Spec{3: {Mode: faults.Equivocate}},
	}, 3*time.Second)
	if c.Metrics.TotalTxs == 0 {
		t.Fatal("equivocating participant halted progress")
	}
	if c.Metrics.Elections != 0 {
		t.Errorf("equivocation induced %d elections under correct leader", c.Metrics.Elections)
	}
}

// TestPolicyRotationElectsNewLeaders: the timing policy rotates leadership
// among correct servers; the active protocol picks up-to-date leaders and
// replication continues.
func TestPolicyRotationElectsNewLeaders(t *testing.T) {
	t.Parallel()
	c := run(t, Options{
		N: 4, Clients: 6, BatchSize: 6, Seed: 5,
		VerifySignatures: true,
		ViewPolicy:       2 * time.Second,
		TimeoutMin:       100 * time.Millisecond,
		TimeoutMax:       200 * time.Millisecond,
	}, 12*time.Second)
	if c.Metrics.Elections < 3 {
		t.Fatalf("elections = %d, want >= 3 under 2s rotation over 12s", c.Metrics.Elections)
	}
	if c.Metrics.TotalTxs == 0 {
		t.Fatal("no commits under rotation")
	}
	// Views advanced on all replicas.
	for _, n := range c.Nodes {
		if n.View() < 2 {
			t.Errorf("replica %d stuck in view %d", n.ID(), n.View())
		}
	}
}

// TestDeterministicReplay: identical options and seed produce identical
// metrics — the foundation for reproducible experiments.
func TestDeterministicReplay(t *testing.T) {
	t.Parallel()
	opts := Options{N: 4, Clients: 5, BatchSize: 5, Seed: 1234, VerifySignatures: true}
	a := run(t, opts, 2*time.Second)
	b := run(t, opts, 2*time.Second)
	if a.Metrics.TotalTxs != b.Metrics.TotalTxs {
		t.Fatalf("nondeterministic: %d vs %d txs", a.Metrics.TotalTxs, b.Metrics.TotalTxs)
	}
	if len(a.Metrics.Commits) != len(b.Metrics.Commits) {
		t.Fatalf("nondeterministic commit counts")
	}
	for i := range a.Metrics.Commits {
		if a.Metrics.Commits[i] != b.Metrics.Commits[i] {
			t.Fatalf("commit %d differs: %+v vs %+v", i, a.Metrics.Commits[i], b.Metrics.Commits[i])
		}
	}
}

// TestDeterministicReplayUnderFaults extends the replay guarantee to the
// fault-heavy regime: repeated view changes exercise the complaint-backlog
// and timer-rearm paths, which historically leaked Go's randomized map
// iteration order into batch contents and RNG consumption (making paper
// figures unreproducible across runs).
func TestDeterministicReplayUnderFaults(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	opts := Options{
		N: 4, Clients: 12, BatchSize: 12, Seed: 4242,
		ClientThinkTime: 4 * time.Millisecond,
		ViewPolicy:      2 * time.Second,
		TimeoutMin:      200 * time.Millisecond, TimeoutMax: 400 * time.Millisecond,
		ClientTimeout: time.Second,
		Faults: map[types.ServerID]faults.Spec{
			4: {Mode: faults.Quiet, RepeatedVC: true},
		},
	}
	a := run(t, opts, 10*time.Second)
	b := run(t, opts, 10*time.Second)
	if a.Metrics.TotalTxs == 0 {
		t.Fatal("no progress under faults")
	}
	if a.Metrics.TotalTxs != b.Metrics.TotalTxs || a.Metrics.Elections != b.Metrics.Elections {
		t.Fatalf("nondeterministic under faults: %d/%d txs, %d/%d elections",
			a.Metrics.TotalTxs, b.Metrics.TotalTxs, a.Metrics.Elections, b.Metrics.Elections)
	}
	for i := range a.Metrics.Commits {
		if a.Metrics.Commits[i] != b.Metrics.Commits[i] {
			t.Fatalf("commit %d differs: %+v vs %+v", i, a.Metrics.Commits[i], b.Metrics.Commits[i])
		}
	}
}

// TestMetricsAggregation sanity-checks the metric computations themselves.
func TestMetricsAggregation(t *testing.T) {
	sched := sim.NewScheduler(1)
	m := NewMetrics(sched)
	mkBlock := func(n types.SeqNum, txs int) *types.TxBlock {
		b := &types.TxBlock{}
		b.Header.N = n
		b.Txs = make([]types.Transaction, txs)
		return b
	}
	sched.RunUntil(sim.Duration(500 * time.Millisecond))
	m.OnCommit(mkBlock(1, 100))
	m.OnCommit(mkBlock(1, 100)) // duplicate ignored
	sched.RunUntil(sim.Duration(1500 * time.Millisecond))
	m.OnCommit(mkBlock(2, 50))
	if m.TotalTxs != 150 {
		t.Fatalf("TotalTxs = %d, want 150", m.TotalTxs)
	}
	tps := m.TPS(0, sim.Duration(2*time.Second))
	if tps != 75 {
		t.Fatalf("TPS = %v, want 75", tps)
	}
	tl := m.Timeline(sim.Duration(2*time.Second), time.Second)
	if tl[0] != 100 || tl[1] != 50 {
		t.Fatalf("timeline = %v", tl)
	}
	av := m.Availability(sim.Duration(4*time.Second), time.Second)
	if av != 0.5 {
		t.Fatalf("availability = %v, want 0.5", av)
	}
}
