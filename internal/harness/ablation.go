package harness

import (
	"fmt"

	"prestigebft/internal/reputation"
	"prestigebft/internal/types"
)

// RunAblationCompensation isolates the design choice that separates
// PrestigeBFT's reputation engine from Prosecutor's monotone penalization:
// the compensation terms δtx/δvc (Eqs. 2-4). It replays two behavioral
// traces through engines with Cδ = 1 (PrestigeBFT) and Cδ = 0 (ablated,
// Prosecutor semantics):
//
//   - an attacker that grabs every view without replicating — both engines
//     must ratchet its penalty identically (compensation never shields
//     behavior with δtx = 0), and the refresh quorum (2f+1 servers above
//     π) is out of an attacker coalition's reach;
//   - a correct server in a healthy rotation (leading every 13th view
//     while the cluster replicates): compensation slows its penalty growth
//     — Eq. 2 intentionally demands *increasing* replication per
//     compensation, so even correct servers drift in the long run — and
//     the §4.2.5 refresh (modeled at π=8, reachable because all correct
//     servers drift together) bounds it. The ablated engine
//     (Prosecutor-style monotone penalties, no compensation, no refresh)
//     grows without bound, eventually pricing correct servers out of
//     leadership.
func RunAblationCompensation() *Result {
	res := &Result{
		Name:  "Ablation: compensation+refresh (PrestigeBFT) vs monotone penalties (Prosecutor)",
		Notes: "attacker trajectories must match (and never refresh); correct trajectories: full stays bounded by π, ablated grows without bound",
	}
	full := &reputation.Engine{CDelta: reputation.DefaultCDelta}
	ablated := &reputation.Engine{CDelta: 0}

	// replay simulates `rounds` reigns. Every reign the server campaigns
	// for the next view (+1 penalization). Between reigns, `interim` other
	// views pass (its penalty recorded unchanged in each vcBlock) and the
	// cluster commits 50 txBlocks per view. With refresh enabled, crossing
	// π resets rp and ci to the initial values (§4.2.5) — legitimate only
	// for correct servers, which can gather the 2f+1 Ref quorum.
	replay := func(e *reputation.Engine, interim, rounds int, refreshPi int64) []int64 {
		rp, ci := int64(1), int64(1)
		ti := int64(1)
		penalties := []int64{1}
		out := []int64{1}
		v := types.View(1)
		for k := 0; k < rounds; k++ {
			for j := 0; j < interim; j++ {
				v++
				ti += 50
				penalties = append(penalties, rp)
			}
			r := e.CalcRP(v+1, reputation.Snapshot{V: v, RP: rp, CI: ci, TI: ti, Penalties: penalties})
			rp, ci = r.RP, r.CI
			if refreshPi > 0 && rp > refreshPi {
				rp, ci = 1, 1
			}
			v++
			penalties = append(penalties, rp)
			out = append(out, rp)
		}
		return out
	}

	const rounds = 12
	attackFull := replay(full, 0, rounds, 0) // attackers cannot refresh
	attackAblated := replay(ablated, 0, rounds, 0)
	correctFull := replay(full, 12, rounds, 8) // correct servers can
	correctAblated := replay(ablated, 12, rounds, 0)

	for k := 0; k <= rounds; k += 3 {
		res.Rows = append(res.Rows, row(
			fmt.Sprintf("round%02d", k),
			"attacker_rp_full", float64(attackFull[k]),
			"attacker_rp_ablated", float64(attackAblated[k]),
			"correct_rp_full", float64(correctFull[k]),
			"correct_rp_ablated", float64(correctAblated[k]),
		))
	}
	return res
}

func init() {
	Experiments["ablation"] = func(Scale) *Result { return RunAblationCompensation() }
}
