package harness

import (
	"prestigebft/internal/reputation"
	"prestigebft/internal/types"
)

// Fig4cExample is one row of the paper's Figure 4c breakdown table.
type Fig4cExample struct {
	Label   string
	CI, TI  int64
	DeltaTx float64
	DeltaVc float64
	Delta   float64
	NewRP   int64
}

// Fig4cExamples evaluates the five behavior scenarios of Figures 4b/4c
// through the real reputation engine.
func Fig4cExamples() []Fig4cExample {
	e := reputation.New()
	p5 := []int64{1, 2, 3, 4}
	for i := 0; i < 10; i++ {
		p5 = append(p5, 5)
	}
	cases := []struct {
		label   string
		newView types.View
		snap    reputation.Snapshot
	}{
		{"1: leader V1-V5, no replication", 6, reputation.Snapshot{V: 5, RP: 5, CI: 1, TI: 1, Penalties: []int64{1, 2, 3, 4, 5}}},
		{"2: replicated 20 txBlocks in V5", 6, reputation.Snapshot{V: 5, RP: 5, CI: 1, TI: 20, Penalties: []int64{1, 2, 3, 4, 5}}},
		{"3: ci=20 ti=50, campaign V7", 7, reputation.Snapshot{V: 6, RP: 5, CI: 20, TI: 50, Penalties: []int64{1, 2, 3, 4, 5, 5}}},
		{"4: ci=20 ti=100, campaign V7", 7, reputation.Snapshot{V: 6, RP: 5, CI: 20, TI: 100, Penalties: []int64{1, 2, 3, 4, 5, 5}}},
		{"5: follower V7-V14, campaign V15", 15, reputation.Snapshot{V: 14, RP: 5, CI: 20, TI: 50, Penalties: p5}},
	}
	out := make([]Fig4cExample, 0, len(cases))
	for _, c := range cases {
		r := e.CalcRP(c.newView, c.snap)
		out = append(out, Fig4cExample{
			Label: c.label, CI: c.snap.CI, TI: c.snap.TI,
			DeltaTx: r.DeltaTx, DeltaVc: r.DeltaVc, Delta: r.Delta, NewRP: r.RP,
		})
	}
	return out
}
