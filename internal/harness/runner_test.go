package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// smallGrid is a miniature figure-style grid: four independent cluster
// cells, each with its own seed, measured through the default tps/latency
// path.
func smallGrid(workers int) *Grid {
	g := &Grid{
		Name:    "test grid",
		Notes:   "determinism fixture",
		Workers: workers,
	}
	for i := 0; i < 4; i++ {
		g.Specs = append(g.Specs, ExperimentSpec{
			Label:  fmt.Sprintf("cell%d", i),
			Opts:   Options{N: 4, Clients: 8, BatchSize: 8, Seed: int64(100 + i)},
			Warmup: 100 * time.Millisecond,
			Span:   400 * time.Millisecond,
		})
	}
	return g
}

// TestGridParallelDeterminism: the same grid run with 1 worker and with N
// workers must yield byte-identical Result JSON — parallel execution may
// change only the wall clock, never the values or their order.
func TestGridParallelDeterminism(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	seq := smallGrid(1).Run()
	par := smallGrid(8).Run()
	js, err := seq.JSON()
	if err != nil {
		t.Fatalf("sequential JSON: %v", err)
	}
	jp, err := par.JSON()
	if err != nil {
		t.Fatalf("parallel JSON: %v", err)
	}
	if !bytes.Equal(js, jp) {
		t.Fatalf("parallel run diverged from sequential:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", js, jp)
	}
	if !json.Valid(js) {
		t.Fatal("Result.JSON emitted invalid JSON")
	}
	// The cells did real work (a dead simulation would also be "deterministic").
	for _, r := range seq.Rows {
		if r.Values["tps"] <= 0 {
			t.Errorf("cell %s measured no throughput", r.Label)
		}
	}
}

// TestGridRowOrder: rows come back in spec order (with multi-row cells kept
// contiguous) no matter how the pool interleaves completions. The staggered
// sleeps force out-of-order completion.
func TestGridRowOrder(t *testing.T) {
	t.Parallel()
	g := &Grid{Name: "order", Workers: 8}
	const cells = 8
	for i := 0; i < cells; i++ {
		g.Specs = append(g.Specs, ExperimentSpec{
			Label: fmt.Sprintf("spec%d", i),
			Measure: func(s *ExperimentSpec) []Row {
				// Later specs finish first.
				time.Sleep(time.Duration(cells-i) * 5 * time.Millisecond)
				return []Row{
					row(s.Label+"_a", "v", i),
					row(s.Label+"_b", "v", i),
				}
			},
		})
	}
	res := g.Run()
	if len(res.Rows) != 2*cells {
		t.Fatalf("rows = %d, want %d", len(res.Rows), 2*cells)
	}
	for i, r := range res.Rows {
		want := fmt.Sprintf("spec%d_%c", i/2, "ab"[i%2])
		if r.Label != want {
			t.Errorf("row %d = %q, want %q", i, r.Label, want)
		}
		if r.Values["v"] != float64(i/2) {
			t.Errorf("row %d value = %v, want %d", i, r.Values["v"], i/2)
		}
	}
}

// TestGridFinalize: Finalize sees the full ordered row set and its output
// replaces the rows.
func TestGridFinalize(t *testing.T) {
	t.Parallel()
	g := &Grid{Name: "finalize", Workers: 4}
	for i := 0; i < 4; i++ {
		g.Specs = append(g.Specs, ExperimentSpec{
			Label: fmt.Sprintf("s%d", i),
			Measure: func(s *ExperimentSpec) []Row {
				return []Row{row(s.Label, "v", i+1)}
			},
		})
	}
	g.Finalize = func(rows []Row) []Row {
		var sum float64
		for _, r := range rows {
			sum += r.Values["v"]
		}
		return append(rows, row("total", "v", sum))
	}
	res := g.Run()
	last := res.Rows[len(res.Rows)-1]
	if last.Label != "total" || last.Values["v"] != 10 {
		t.Fatalf("finalize row = %+v, want total v=10", last)
	}
}

// TestGridWorkerCap: the pool never runs more specs concurrently than its
// worker bound.
func TestGridWorkerCap(t *testing.T) {
	t.Parallel()
	var active, peak int32
	g := &Grid{Name: "cap", Workers: 2}
	for i := 0; i < 10; i++ {
		g.Specs = append(g.Specs, ExperimentSpec{
			Label: fmt.Sprintf("s%d", i),
			Measure: func(s *ExperimentSpec) []Row {
				n := atomic.AddInt32(&active, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				atomic.AddInt32(&active, -1)
				return []Row{row(s.Label, "v", 1)}
			},
		})
	}
	g.Run()
	if p := atomic.LoadInt32(&peak); p > 2 {
		t.Fatalf("peak concurrency = %d, want <= 2", p)
	}
}

// TestRunnersProduceJSON: every registered experiment's Result serializes to
// valid JSON with the label/values schema the trajectory tooling consumes
// (checked on the cheap deterministic runners; the simulation grids share
// the same Result type).
func TestRunnersProduceJSON(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"fig4c", "fig12", "ablation"} {
		res := Experiments[name](Quick)
		data, err := res.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", name, err)
		}
		var back Result
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: round-trip: %v", name, err)
		}
		if back.Name != res.Name || len(back.Rows) != len(res.Rows) {
			t.Fatalf("%s: round-trip lost rows: %d vs %d", name, len(back.Rows), len(res.Rows))
		}
		if !strings.Contains(string(data), `"label"`) {
			t.Fatalf("%s: JSON missing label field:\n%s", name, data)
		}
	}
}
