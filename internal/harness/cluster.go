package harness

import (
	"fmt"
	"math/rand"
	"time"

	"prestigebft/internal/client"
	"prestigebft/internal/consensus"
	"prestigebft/internal/core"
	"prestigebft/internal/crypto"
	"prestigebft/internal/faults"
	"prestigebft/internal/ledger"
	"prestigebft/internal/reputation"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"
)

// Protocol selects the consensus implementation under test.
type Protocol string

const (
	// PrestigeBFT is the paper's algorithm ("pb").
	PrestigeBFT Protocol = "prestige"
	// HotStuff is the 3-phase passive-view-change baseline ("hs").
	HotStuff Protocol = "hotstuff"
	// SBFT is the linear dual-path baseline ("sb").
	SBFT Protocol = "sbft"
	// Prosecutor is the PoW-penalization baseline ("pr").
	Prosecutor Protocol = "prosecutor"
)

// ReplicaFactory builds one replica for a baseline protocol. Registered by
// the baseline packages through RegisterProtocol to avoid import cycles.
type ReplicaFactory func(env FactoryEnv) consensus.Replica

// FactoryEnv carries everything a baseline replica constructor needs.
type FactoryEnv struct {
	ID       types.ServerID
	N        int
	Keys     *crypto.KeyPair
	Registry *crypto.Registry
	Opts     *Options
	RNG      *rand.Rand
}

var protocolFactories = map[Protocol]ReplicaFactory{}

// RegisterProtocol installs a baseline's replica factory.
func RegisterProtocol(p Protocol, f ReplicaFactory) { protocolFactories[p] = f }

// DefaultPipelineDepth is the replication window applied when
// Options.PipelineDepth is zero. Zero defers to the core default (8). The
// bench CLI exposes it as -pipeline-depth so scenario and experiment runs
// can be repeated at any window without editing specs.
var DefaultPipelineDepth int

// Options configures a simulated cluster.
type Options struct {
	Protocol Protocol
	N        int
	Clients  int
	Seed     int64

	// BatchSize is the paper's β.
	BatchSize int
	// PayloadSize is the paper's m in bytes.
	PayloadSize int
	// PipelineDepth is the leader's replication window W (see
	// core.Config.PipelineDepth). Zero selects DefaultPipelineDepth, which
	// itself defaults to the core default (8); 1 reproduces stop-and-wait.
	PipelineDepth int
	// CheckpointInterval enables certified checkpoints and log compaction
	// every this many committed seqs (core.Config.CheckpointInterval).
	// Zero disables checkpointing.
	CheckpointInterval int

	// Net configures the fabric; the zero value selects the paper's
	// testbed profile (≤2 ms raw latency, 400 MB/s links).
	Net sim.NetworkConfig
	// Cost configures the CPU model; the zero value selects defaults.
	Cost sim.CostModel

	// ViewPolicy enables the timing rotation policy (r10/r30). Zero
	// disables it.
	ViewPolicy time.Duration
	// TimeoutMin/TimeoutMax bound the randomized follower timeout.
	// Defaults 800 ms / 1200 ms.
	TimeoutMin time.Duration
	TimeoutMax time.Duration
	// ClientTimeout is the complaint timeout. Default 2 s.
	ClientTimeout time.Duration
	// RefreshThreshold is π; zero disables refreshes.
	RefreshThreshold int64

	// Faults assigns Byzantine behavior per server.
	Faults map[types.ServerID]faults.Spec
	// WrapServers forces a faults.Wrapper onto these servers even when their
	// Spec is zero (correct). A correct-spec wrapper is a pure pass-through;
	// it exists so chaos scenarios can swap misbehavior in and out at
	// runtime via Wrapper.SetSpec (the paper's dynamic fault set).
	WrapServers []types.ServerID
	// TimeoutAttack enables F1: each faulty server draws its timeouts from
	// an RNG seeded identically to a randomly chosen correct server's.
	TimeoutAttack bool

	// ModelBitsPerRP is the proof-of-work difficulty (zero bits per rp
	// unit) used by the virtual solve-time model. Default 4, calibrated to
	// the paper's measured attack costs (see core.Config.PuzzleBitsPerRP).
	// The replicas verify with PuzzleBits < 0 in simulation: difficulty is
	// carried by the time model (DESIGN.md §4).
	ModelBitsPerRP int

	// ClientThinkTime throttles clients: delay between a commit and the
	// next request. Zero keeps clients fully closed-loop.
	ClientThinkTime time.Duration

	// ClientPayload, if non-nil, generates each client's transaction
	// bodies (applications drive real workloads through it); nil clients
	// send PayloadSize zero bytes.
	ClientPayload func(id types.ClientID, seq int) []byte

	// VerifySignatures enables real ed25519 verification inside the
	// simulation. Protocol tests turn it on; large performance sweeps leave
	// it off and rely on the CPU cost model for timing.
	VerifySignatures bool

	// MaxRequestsPerClient stops each client after that many commits.
	MaxRequestsPerClient int

	// StateMachine builds the per-replica application; nil = AcceptAll.
	StateMachine func() ledger.StateMachine

	// Engine builds the per-replica reputation engine; nil = defaults.
	Engine func() *reputation.Engine
}

// WithDefaults returns a copy of the options with every zero field
// replaced by its documented default — the exact shape NewCluster builds.
// Other environments hosting the same deployments (internal/liveharness)
// normalize through it so "the same scenario" means the same cluster in
// both worlds.
func (o *Options) WithDefaults() Options { return o.withDefaults() }

func (o *Options) withDefaults() Options {
	out := *o
	if out.Protocol == "" {
		out.Protocol = PrestigeBFT
	}
	if out.N == 0 {
		out.N = 4
	}
	if out.Clients == 0 {
		out.Clients = 16
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.BatchSize == 0 {
		out.BatchSize = 100
	}
	if out.PayloadSize == 0 {
		out.PayloadSize = 32
	}
	if out.Net.Latency == nil {
		out.Net = sim.DefaultNetworkConfig()
	}
	if out.Cost == (sim.CostModel{}) {
		out.Cost = sim.DefaultCostModel()
	}
	if out.TimeoutMin == 0 {
		out.TimeoutMin = 800 * time.Millisecond
	}
	if out.TimeoutMax == 0 {
		out.TimeoutMax = 1200 * time.Millisecond
	}
	if out.ClientTimeout == 0 {
		out.ClientTimeout = 2 * time.Second
	}
	if out.ModelBitsPerRP == 0 {
		out.ModelBitsPerRP = 4
	}
	if out.PipelineDepth == 0 {
		out.PipelineDepth = DefaultPipelineDepth
	}
	return out
}

// Cluster is one simulated deployment.
type Cluster struct {
	Opts    Options
	Sched   *sim.Scheduler
	Net     *sim.Network
	Metrics *Metrics

	Registry *crypto.Registry
	Replicas []consensus.Replica // wrapped replicas, index = ServerID-1
	Nodes    []*core.Node        // PrestigeBFT nodes (nil entries for baselines)
	Wrappers []*faults.Wrapper   // fault wrappers (nil for correct servers)
	Clients  []*client.Client

	runtimes []*simRuntime
}

// NewCluster builds a deployment. Call Start, then Run.
func NewCluster(opts Options) *Cluster {
	o := opts.withDefaults()
	sched := sim.NewScheduler(o.Seed)
	net := sim.NewNetwork(sched, o.Net)
	reg, serverKeys, clientKeys := crypto.GenerateDeployment(uint64(o.Seed)+0x5eed, o.N, o.Clients)
	reg.VerifySignatures = o.VerifySignatures

	c := &Cluster{
		Opts:     o,
		Sched:    sched,
		Net:      net,
		Metrics:  NewMetrics(sched),
		Registry: reg,
		Replicas: make([]consensus.Replica, o.N),
		Nodes:    make([]*core.Node, o.N),
		Wrappers: make([]*faults.Wrapper, o.N),
	}

	// F1 victim assignment: faulty servers mirror the timeout RNG of f
	// randomly picked correct servers.
	seedRNG := rand.New(rand.NewSource(o.Seed * 7919))
	rngSeed := make([]int64, o.N+1)
	var correct []types.ServerID
	for i := 1; i <= o.N; i++ {
		rngSeed[i] = o.Seed<<16 + int64(i)
		if !o.Faults[types.ServerID(i)].IsFaulty() {
			correct = append(correct, types.ServerID(i))
		}
	}
	if o.TimeoutAttack && len(correct) > 0 {
		for i := 1; i <= o.N; i++ {
			if o.Faults[types.ServerID(i)].IsFaulty() {
				victim := correct[seedRNG.Intn(len(correct))]
				rngSeed[i] = rngSeed[victim]
			}
		}
	}

	for i := 1; i <= o.N; i++ {
		id := types.ServerID(i)
		spec := o.Faults[id]
		nodeRNG := rand.New(rand.NewSource(rngSeed[i]))

		var replica consensus.Replica
		var node *core.Node
		if o.Protocol == PrestigeBFT {
			cfg := core.Config{
				ID:                 id,
				N:                  o.N,
				Keys:               serverKeys[id],
				Registry:           reg,
				BatchSize:          o.BatchSize,
				PipelineDepth:      o.PipelineDepth,
				CheckpointInterval: o.CheckpointInterval,
				TimeoutMin:         o.TimeoutMin,
				TimeoutMax:         o.TimeoutMax,
				ViewPolicy:         o.ViewPolicy,
				RefreshThreshold:   o.RefreshThreshold,
				PuzzleBitsPerRP:    -1, // simulation: difficulty enforced by the time model
				RNG:                nodeRNG,
			}
			if o.StateMachine != nil {
				cfg.StateMachine = o.StateMachine()
			}
			if o.Engine != nil {
				cfg.Engine = o.Engine()
			}
			if spec.RepeatedVC {
				// The attacker's levers: minimal trigger delay (campaign
				// the instant a change is possible — still enough for an
				// election round trip, which also bounds its candidacy
				// timer) and, under S2, the compensation gate.
				cfg.TimeoutMin = 20 * time.Millisecond
				cfg.TimeoutMax = 25 * time.Millisecond
				if spec.Smart {
					eng := cfg.Engine
					if eng == nil {
						eng = reputation.New()
						cfg.Engine = eng
					}
					cfg.CampaignGate = func(res reputation.Result) bool { return res.Compensated }
				}
			}
			node = core.New(cfg)
			replica = node
		} else {
			f, ok := protocolFactories[o.Protocol]
			if !ok {
				panic(fmt.Sprintf("harness: protocol %q not registered", o.Protocol))
			}
			replica = f(FactoryEnv{ID: id, N: o.N, Keys: serverKeys[id], Registry: reg, Opts: &o, RNG: nodeRNG})
		}
		c.Nodes[i-1] = node
		wrap := spec.IsFaulty()
		for _, w := range o.WrapServers {
			if w == id {
				wrap = true
			}
		}
		if wrap {
			w := faults.Wrap(replica, node, spec)
			c.Wrappers[i-1] = w
			replica = w
		}
		c.Replicas[i-1] = replica

		rt := newSimRuntime(c, replica, id, spec)
		c.runtimes = append(c.runtimes, rt)
		net.Register(sim.ServerAddr(uint16(id)), rt.deliver)
	}

	for i := 1; i <= o.Clients; i++ {
		cid := types.ClientID(i)
		env := &clientEnv{cluster: c, addr: sim.ClientAddr(uint32(cid))}
		var payload func(int) []byte
		if o.ClientPayload != nil {
			payload = func(seq int) []byte { return o.ClientPayload(cid, seq) }
		}
		cl := client.New(client.Config{
			ID:          cid,
			Keys:        clientKeys[cid],
			Registry:    reg,
			N:           o.N,
			Payload:     payload,
			PayloadSize: o.PayloadSize,
			Timeout:     o.ClientTimeout,
			ThinkTime:   o.ClientThinkTime,
			MaxRequests: o.MaxRequestsPerClient,
		}, env)
		env.client = cl
		c.Clients = append(c.Clients, cl)
		net.Register(env.addr, env.deliver)
	}
	return c
}

// Start initializes replicas and launches the client workload.
func (c *Cluster) Start() {
	for _, rt := range c.runtimes {
		rt.start()
	}
	for _, cl := range c.Clients {
		cl.Start()
	}
}

// Run advances the simulation by d of virtual time.
func (c *Cluster) Run(d time.Duration) { c.Sched.RunFor(d) }

// Now returns the current virtual time.
func (c *Cluster) Now() sim.Time { return c.Sched.Now() }

// CollectClientStats folds client latencies into the metrics. Call after a
// run, before reading latency aggregates.
func (c *Cluster) CollectClientStats() {
	c.Metrics.Latencies = c.Metrics.Latencies[:0]
	c.Metrics.Complaints = 0
	for _, cl := range c.Clients {
		c.Metrics.Latencies = append(c.Metrics.Latencies, cl.Stats.Latencies...)
		c.Metrics.Complaints += cl.Stats.Complaints
	}
}

// Crash isolates a server from the network (benign failure).
func (c *Cluster) Crash(id types.ServerID) {
	c.Net.Isolate(sim.ServerAddr(uint16(id)), true)
}

// Recover reconnects a crashed server.
func (c *Cluster) Recover(id types.ServerID) {
	c.Net.Isolate(sim.ServerAddr(uint16(id)), false)
}

// --- Server runtime -----------------------------------------------------------

type timerRef struct {
	kind consensus.TimerKind
	key  uint64
}

// simRuntime executes one replica's effects on the simulator: CPU charging,
// timer management, puzzle solving via the time model, and network I/O.
type simRuntime struct {
	c       *Cluster
	replica consensus.Replica
	id      types.ServerID
	addr    sim.Addr
	cpu     *sim.CPU
	timers  map[timerRef]*sim.Timer
	puzzles map[uint64]*sim.Timer
	rng     *rand.Rand
	spec    faults.Spec
}

func newSimRuntime(c *Cluster, r consensus.Replica, id types.ServerID, spec faults.Spec) *simRuntime {
	return &simRuntime{
		c:       c,
		replica: r,
		id:      id,
		addr:    sim.ServerAddr(uint16(id)),
		cpu:     sim.NewCPU(c.Sched),
		timers:  make(map[timerRef]*sim.Timer),
		puzzles: make(map[uint64]*sim.Timer),
		rng:     rand.New(rand.NewSource(c.Opts.Seed<<8 + int64(id))),
		spec:    spec,
	}
}

func (rt *simRuntime) now() time.Duration { return rt.c.Sched.Now().ToDuration() }

func (rt *simRuntime) start() {
	rt.execute(rt.replica.Init(rt.now()))
}

// deliver is the network handler: charge processing cost, then hand the
// message to the replica.
func (rt *simRuntime) deliver(from sim.Addr, payload any, size int) {
	msg, ok := payload.(types.Message)
	if !ok {
		return
	}
	nSigs, nTx := consensus.MessageCostHint(msg)
	cost := rt.c.Opts.Cost.MessageCost(size, nSigs, nTx)
	origin := consensus.FromServer(types.ServerID(from.ID))
	if from.Client {
		origin = consensus.FromClient(types.ClientID(from.ID))
	}
	rt.cpu.Schedule(cost, func() {
		rt.execute(rt.replica.OnMessage(rt.now(), origin, msg))
	})
}

// execute runs a batch of effects.
func (rt *simRuntime) execute(effs []consensus.Effect) {
	opts := &rt.c.Opts
	for _, e := range effs {
		switch ef := e.(type) {
		case consensus.Send:
			rt.sendServer(ef.To, ef.Msg)
		case consensus.Broadcast:
			for i := 1; i <= opts.N; i++ {
				if types.ServerID(i) != rt.id {
					rt.sendServer(types.ServerID(i), ef.Msg)
				}
			}
		case consensus.SendClient:
			size := ef.Msg.WireSize()
			rt.chargeSend(size)
			rt.c.Net.Send(rt.addr, sim.ClientAddr(uint32(ef.To)), ef.Msg, size)
		case consensus.SetTimer:
			ref := timerRef{ef.Kind, ef.Key}
			if t, ok := rt.timers[ref]; ok {
				t.Cancel()
			}
			kind, key := ef.Kind, ef.Key
			rt.timers[ref] = rt.c.Sched.After(ef.Delay, func() {
				delete(rt.timers, ref)
				rt.cpu.Schedule(opts.Cost.Base, func() {
					rt.execute(rt.replica.OnTimer(rt.now(), kind, key))
				})
			})
		case consensus.CancelTimer:
			ref := timerRef{ef.Kind, ef.Key}
			if t, ok := rt.timers[ref]; ok {
				t.Cancel()
				delete(rt.timers, ref)
			}
		case consensus.StartPuzzle:
			rt.startPuzzle(ef)
		case consensus.AbortPuzzle:
			if t, ok := rt.puzzles[ef.Token]; ok {
				t.Cancel()
				delete(rt.puzzles, ef.Token)
			}
		case consensus.Commit:
			rt.c.Metrics.OnCommit(ef.Block)
		case consensus.Trace:
			rt.c.Metrics.OnTrace(ef)
		}
	}
}

// sendServer transmits to a peer, charging serialization cost.
func (rt *simRuntime) sendServer(to types.ServerID, msg types.Message) {
	size := msg.WireSize()
	rt.chargeSend(size)
	rt.c.Net.Send(rt.addr, sim.ServerAddr(uint16(to)), msg, size)
}

// chargeSend busies the CPU for signing/serialization of an outbound
// message without delaying the send itself (pipelined NIC).
func (rt *simRuntime) chargeSend(size int) {
	opts := &rt.c.Opts
	rt.cpu.Schedule(opts.Cost.Sign/4+time.Duration(size)*opts.Cost.PerByte, func() {})
}

// startPuzzle models the reputation-determined computation: the solve time
// is drawn from the geometric model at ModelBitsPerRP bits per penalty unit
// (DESIGN.md §4). The nonce/hash pair is real (one hash) so C5 verification
// stays honest at difficulty 0.
func (rt *simRuntime) startPuzzle(ef consensus.StartPuzzle) {
	opts := &rt.c.Opts
	scale := 1.0
	if rt.spec.HashRateScale > 0 {
		scale = rt.spec.HashRateScale
	}
	bits := int(ef.RP) * opts.ModelBitsPerRP
	d := opts.Cost.PuzzleTime(bits, scale, rt.rng.Float64())
	nonce := make([]byte, 8)
	rt.rng.Read(nonce)
	hr := crypto.PuzzleHash(ef.Seed, nonce)
	token := ef.Token
	rt.puzzles[token] = rt.c.Sched.After(d, func() {
		delete(rt.puzzles, token)
		rt.execute(rt.replica.OnPuzzleSolved(rt.now(), token, nonce, hr))
	})
}

// --- Client runtime -----------------------------------------------------------

type clientEnv struct {
	cluster *Cluster
	addr    sim.Addr
	client  *client.Client
}

func (e *clientEnv) Now() time.Duration { return e.cluster.Sched.Now().ToDuration() }

func (e *clientEnv) Broadcast(msg types.Message) {
	for i := 1; i <= e.cluster.Opts.N; i++ {
		e.cluster.Net.Send(e.addr, sim.ServerAddr(uint16(i)), msg, msg.WireSize())
	}
}

func (e *clientEnv) SetTimer(d time.Duration, fn func()) func() {
	t := e.cluster.Sched.After(d, fn)
	return t.Cancel
}

func (e *clientEnv) deliver(from sim.Addr, payload any, size int) {
	if notif, ok := payload.(*types.Notif); ok && !from.Client {
		e.client.OnNotif(types.ServerID(from.ID), notif)
	}
}
