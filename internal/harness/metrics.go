// Package harness builds simulated PrestigeBFT (and baseline) clusters on
// the discrete-event engine and collects the measurements the paper's
// figures report: throughput, latency, view changes, split votes,
// reputation-penalty series, and availability.
package harness

import (
	"sort"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"
)

// CommitEvent records one committed txBlock (deduplicated across servers).
type CommitEvent struct {
	At  sim.Time
	Seq types.SeqNum
	Txs int
}

// RPPoint is one sample of a server's reputation penalty.
type RPPoint struct {
	At   sim.Time
	View types.View
	RP   int64
}

// LeaderPoint records an installed view and its leader.
type LeaderPoint struct {
	At     sim.Time
	View   types.View
	Leader types.ServerID
}

// Metrics aggregates everything observable from one simulation run.
type Metrics struct {
	sched *sim.Scheduler

	blockSeen map[types.SeqNum]bool
	Commits   []CommitEvent
	TotalTxs  int

	ViewChangesStarted int
	Candidacies        int
	Elections          int
	SplitVotes         int
	Refreshes          int
	SyncUps            int
	Checkpoints        int
	SnapshotInstalls   int

	RPSeries map[types.ServerID][]RPPoint
	Leaders  []LeaderPoint

	// Latencies are client-observed request latencies.
	Latencies []time.Duration
	// Complaints counts client complaints.
	Complaints int
}

// NewMetrics creates a collector bound to the scheduler's clock.
func NewMetrics(sched *sim.Scheduler) *Metrics {
	return &Metrics{
		sched:     sched,
		blockSeen: make(map[types.SeqNum]bool),
		RPSeries:  make(map[types.ServerID][]RPPoint),
	}
}

// OnCommit records a block commit, deduplicating across servers so a block
// counts once no matter how many replicas commit it.
func (m *Metrics) OnCommit(blk *types.TxBlock) {
	if m.blockSeen[blk.Header.N] {
		return
	}
	m.blockSeen[blk.Header.N] = true
	m.Commits = append(m.Commits, CommitEvent{At: m.sched.Now(), Seq: blk.Header.N, Txs: len(blk.Txs)})
	m.TotalTxs += len(blk.Txs)
}

// OnTrace consumes protocol trace effects.
func (m *Metrics) OnTrace(tr consensus.Trace) {
	switch tr.Event {
	case consensus.TraceViewChangeStart:
		m.ViewChangesStarted++
	case consensus.TraceCandidate:
		m.Candidacies++
	case consensus.TraceElected:
		m.Elections++
		m.Leaders = append(m.Leaders, LeaderPoint{At: m.sched.Now(), View: tr.View, Leader: tr.Server})
	case consensus.TraceSplitVote:
		m.SplitVotes++
	case consensus.TraceRPChange:
		m.RPSeries[tr.Server] = append(m.RPSeries[tr.Server], RPPoint{At: m.sched.Now(), View: tr.View, RP: tr.Value})
	case consensus.TraceRefresh:
		m.Refreshes++
	case consensus.TraceSyncUp:
		m.SyncUps++
	case consensus.TraceCheckpoint:
		m.Checkpoints++
	case consensus.TraceSnapshotInstall:
		m.SnapshotInstalls++
	}
}

// TPS returns committed transactions per second over [from, to].
func (m *Metrics) TPS(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	txs := 0
	for _, c := range m.Commits {
		if c.At >= from && c.At < to {
			txs += c.Txs
		}
	}
	return float64(txs) / (to - from).ToDuration().Seconds()
}

// Timeline buckets committed transactions into windows of the given width,
// returning TPS per window — the series behind Figure 11.
func (m *Metrics) Timeline(until sim.Time, window time.Duration) []float64 {
	nw := int(until.ToDuration()/window) + 1
	out := make([]float64, nw)
	for _, c := range m.Commits {
		idx := int(c.At.ToDuration() / window)
		if idx >= 0 && idx < nw {
			out[idx] += float64(c.Txs)
		}
	}
	scale := window.Seconds()
	for i := range out {
		out[i] /= scale
	}
	return out
}

// Availability returns the fraction of windows in (0, until] during which
// at least one transaction committed — the metric behind Figure 14.
func (m *Metrics) Availability(until sim.Time, window time.Duration) float64 {
	nw := int(until.ToDuration() / window)
	if nw == 0 {
		return 0
	}
	live := make([]bool, nw)
	for _, c := range m.Commits {
		idx := int(c.At.ToDuration() / window)
		if idx >= 0 && idx < nw && c.Txs > 0 {
			live[idx] = true
		}
	}
	n := 0
	for _, l := range live {
		if l {
			n++
		}
	}
	return float64(n) / float64(nw)
}

// LatencyPercentile returns the p-th percentile (0-100) client latency.
func (m *Metrics) LatencyPercentile(p float64) time.Duration {
	if len(m.Latencies) == 0 {
		return 0
	}
	ls := append([]time.Duration(nil), m.Latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	idx := int(p / 100 * float64(len(ls)-1))
	return ls[idx]
}

// MeanLatency returns the average client latency.
func (m *Metrics) MeanLatency() time.Duration {
	if len(m.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range m.Latencies {
		sum += l
	}
	return sum / time.Duration(len(m.Latencies))
}

// LeaderShare returns, per server, the fraction of installed views it led —
// the leadership-fairness measure of Appendix A.4.
func (m *Metrics) LeaderShare() map[types.ServerID]float64 {
	out := make(map[types.ServerID]float64)
	if len(m.Leaders) == 0 {
		return out
	}
	for _, lp := range m.Leaders {
		out[lp.Leader]++
	}
	for id := range out {
		out[id] /= float64(len(m.Leaders))
	}
	return out
}
