package harness

import (
	"encoding/json"
	"runtime"
	"sync"
	"time"
)

// This file is the declarative, parallel experiment engine behind every
// figure runner. A figure is a Grid of ExperimentSpecs; each spec is one
// independent simulation cell that builds its own Cluster (own
// sim.Scheduler, own seeded RNG), so cells are deterministic in isolation
// and safe to execute concurrently. Grid.Run fans the specs out over a
// worker pool and reassembles the rows in spec order, making the Result
// byte-identical no matter how many workers ran it or in which order the
// cells finished.

// Workers is the package-default worker-pool size for Grid.Run when a Grid
// does not set its own. Zero means runtime.NumCPU(). The bench CLI exposes
// it as -workers; set it to 1 to reproduce the strictly sequential order of
// execution (results are identical either way).
var Workers int

// ExperimentSpec is one independent cell of a figure grid: a cluster
// configuration plus a measurement window. The zero Measure runs the
// standard steady-state measurement (warmup, then span) and emits one
// tps/latency row labeled Label.
type ExperimentSpec struct {
	Label  string
	Opts   Options
	Warmup time.Duration
	Span   time.Duration

	// Measure overrides the default measurement for cells whose metric is
	// not plain tps/latency (split-vote probability, timelines, reputation
	// series, ...). It must be self-contained: build any clusters it needs
	// from the spec and return the rows this cell contributes, in order.
	Measure func(s *ExperimentSpec) []Row
}

// run executes the cell and returns its rows.
func (s *ExperimentSpec) run() []Row {
	if s.Measure != nil {
		return s.Measure(s)
	}
	tps, lat, _ := measure(s.Opts, s.Warmup, s.Span)
	return []Row{row(s.Label, "tps", tps, "latency_ms", lat)}
}

// Grid is an ordered set of experiment cells rendered as one Result.
type Grid struct {
	Name  string
	Notes string
	Specs []ExperimentSpec

	// Workers bounds this grid's pool; zero defers to the package default.
	Workers int

	// Finalize post-processes the ordered row set after every cell has run —
	// cross-cell work like best-point extraction (peak table) or
	// normalization against a baseline cell (Figure 11).
	Finalize func(rows []Row) []Row
}

// Run executes every spec on a worker pool and returns the assembled Result.
// Rows appear in spec order regardless of completion order; running with 1
// worker or N yields identical results.
func (g *Grid) Run() *Result {
	workers := g.Workers
	if workers == 0 {
		workers = Workers
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(g.Specs) {
		workers = len(g.Specs)
	}

	perSpec := make([][]Row, len(g.Specs))
	if workers <= 1 {
		for i := range g.Specs {
			perSpec[i] = g.Specs[i].run()
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					perSpec[i] = g.Specs[i].run()
				}
			}()
		}
		for i := range g.Specs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	res := &Result{Name: g.Name, Notes: g.Notes}
	for _, rows := range perSpec {
		res.Rows = append(res.Rows, rows...)
	}
	if g.Finalize != nil {
		res.Rows = g.Finalize(res.Rows)
	}
	return res
}

// JSON serializes the result for machine consumption (the BENCH_*.json perf
// trajectory). Output is deterministic: rows keep spec order and
// encoding/json sorts the value maps, so byte equality implies value
// equality across runs and worker counts.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
