package harness

import (
	"testing"
	"time"
)

// TestLeadershipFairness (Theorem 8 / Appendix A.4): under rotation with
// all-correct servers, leadership spreads across servers rather than
// concentrating on one — and with Byzantine campaigners, correct servers
// still collectively hold leadership most of the time once penalties bite.
func TestLeadershipFairness(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	c := NewCluster(Options{
		N: 4, Clients: 8, BatchSize: 8, Seed: 17,
		ViewPolicy: time.Second,
		TimeoutMin: 50 * time.Millisecond, TimeoutMax: 250 * time.Millisecond,
	})
	c.Start()
	c.Run(30 * time.Second)
	share := c.Metrics.LeaderShare()
	if len(share) < 2 {
		t.Fatalf("leadership never moved: %v", share)
	}
	for id, s := range share {
		if s > 0.9 {
			t.Errorf("server %d monopolized leadership (%.0f%%) under rotation", id, s*100)
		}
	}
	// Every elected leader was alive and up-to-date by construction; the
	// metric also proves elections kept completing.
	if c.Metrics.Elections < 5 {
		t.Errorf("elections = %d over 30 rotations", c.Metrics.Elections)
	}
}
