package harness

import (
	"fmt"
	"time"

	"prestigebft/internal/types"
)

// This file declares the checkpoint sweep: late-joiner catch-up time and
// peak retained-ledger size as a function of the checkpoint interval and of
// how much history accumulates while the joiner is away. Without
// checkpoints (interval 0) a rejoining replica replays the entire missed
// history and every replica retains the full log, so both metrics grow
// linearly with history; with certified checkpoints the joiner installs the
// latest snapshot and replays only the retained tail, so catch-up time
// stays flat and ledger size stays O(interval) no matter how much history
// accumulated — the claim the committed BENCH trajectory pins run over run.

// CheckpointHistories lists the away-time spans the sweep measures: the
// history axis along which replay-based catch-up grows and snapshot-based
// catch-up must stay flat.
var CheckpointHistories = []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second}

// CheckpointIntervals lists the swept intervals; 0 is the no-compaction
// baseline (full-history replay).
var CheckpointIntervals = []int{0, 32}

// measureCatchUp runs one sweep cell: warm a 4-server cluster up, crash
// server 4, let the chain grow for `history`, recover it, and measure the
// virtual time until its chain reaches the head height observed at the
// moment of recovery. Also reports the blocks a healthy replica retained at
// that moment (the compaction bound) and whether the joiner caught up via a
// certified snapshot rather than replay.
func measureCatchUp(label string, interval int, history time.Duration, seed int64) []Row {
	c := NewCluster(Options{
		N: 4, Clients: 8, BatchSize: 8, Seed: seed,
		ClientTimeout:      500 * time.Millisecond,
		CheckpointInterval: interval,
	})
	c.Start()
	c.Run(2 * time.Second) // steady state before the outage
	c.Crash(4)
	c.Run(history)

	head := types.SeqNum(0)
	for i := 0; i < 3; i++ {
		if h := c.Nodes[i].Store().TxHeight(); h > head {
			head = h
		}
	}
	retained := c.Nodes[0].Store().RetainedTxBlocks()
	joinerStart := c.Nodes[3].Store().TxHeight()

	c.Recover(4)
	start := c.Now().ToDuration()
	catchup := -1.0
	const step = 25 * time.Millisecond
	for el := time.Duration(0); el < 30*time.Second; el += step {
		c.Run(step)
		if c.Nodes[3].Store().TxHeight() >= head {
			catchup = (c.Now().ToDuration() - start).Seconds() * 1000
			break
		}
	}
	return []Row{row(label,
		"catchup_ms", catchup,
		"gap_blocks", int(head-joinerStart),
		"retained_blocks", retained,
		"snapshot", c.Metrics.SnapshotInstalls,
	)}
}

// checkpointGrid declares the (interval × history) sweep.
func checkpointGrid(scale Scale) *Grid {
	g := &Grid{
		Name:  "Checkpoint sweep: catch-up time and ledger size vs interval (n=4)",
		Notes: "ival0 replays full history (catchup_ms and retained_blocks grow with hist); ival>0 installs the certified snapshot (both flat at O(interval))",
	}
	intervals := CheckpointIntervals
	histories := CheckpointHistories
	if scale == Full {
		intervals = []int{0, 8, 32, 128}
		histories = append(histories, 16*time.Second)
	}
	for _, ival := range intervals {
		for _, hist := range histories {
			ival, hist := ival, hist
			label := fmt.Sprintf("ival%d_hist%ds", ival, int(hist.Seconds()))
			g.Specs = append(g.Specs, ExperimentSpec{
				Label: label,
				Measure: func(s *ExperimentSpec) []Row {
					return measureCatchUp(s.Label, ival, hist, 400+int64(ival)+int64(hist.Seconds()))
				},
			})
		}
	}
	g.Finalize = func(rows []Row) []Row {
		// Flatness summary per interval: catch-up at the longest history
		// over the shortest. Replay grows (ratio ≫ 1); snapshots stay flat.
		byLabel := make(map[string]float64, len(rows))
		for _, r := range rows {
			byLabel[r.Label] = r.Values["catchup_ms"]
		}
		first, last := histories[0], histories[len(histories)-1]
		for _, ival := range intervals {
			lo := byLabel[fmt.Sprintf("ival%d_hist%ds", ival, int(first.Seconds()))]
			hi := byLabel[fmt.Sprintf("ival%d_hist%ds", ival, int(last.Seconds()))]
			if lo > 0 && hi > 0 {
				rows = append(rows, row(
					fmt.Sprintf("ival%d_catchup_growth_h%d_over_h%d", ival, int(last.Seconds()), int(first.Seconds())),
					"x", hi/lo,
				))
			}
		}
		return rows
	}
	return g
}

// RunCheckpointSweep measures the checkpoint catch-up sweep.
func RunCheckpointSweep(scale Scale) *Result {
	return checkpointGrid(scale).Run()
}
