package harness

import (
	"strings"
	"testing"
	"time"
)

// TestFig4cExamplesMatchPaper re-checks the experiment-facing table against
// the paper's outcomes (the reputation package pins intermediates; this
// pins what the harness renders).
func TestFig4cExamplesMatchPaper(t *testing.T) {
	want := []int64{6, 5, 6, 5, 5}
	ex := Fig4cExamples()
	if len(ex) != len(want) {
		t.Fatalf("examples = %d, want %d", len(ex), len(want))
	}
	for i, e := range ex {
		if e.NewRP != want[i] {
			t.Errorf("example %d: rp = %d, want %d", i+1, e.NewRP, want[i])
		}
	}
}

// TestResultRendering checks the table renderer used by every experiment.
func TestResultRendering(t *testing.T) {
	res := &Result{
		Name:  "demo",
		Notes: "note",
		Rows: []Row{
			row("a", "tps", 1234.5, "latency_ms", 20*time.Millisecond),
			row("b", "count", 7),
		},
	}
	s := res.String()
	for _, want := range []string{"== demo ==", "note", "tps=1234.5", "latency_ms=20", "count=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered result missing %q:\n%s", want, s)
		}
	}
}

// TestFig12DeterministicShape: the attack-cost table must be exponential in
// the attack count and collusion must divide the cost.
func TestFig12DeterministicShape(t *testing.T) {
	res := RunFig12(Quick)
	get := func(label string) float64 {
		for _, r := range res.Rows {
			if strings.HasPrefix(r.Label, label) {
				return r.Values["faulty_ms"]
			}
		}
		t.Fatalf("row %s missing", label)
		return 0
	}
	c5 := get("f1_attack05")
	c9 := get("f1_attack09")
	if !(c9 > c5*100) {
		t.Errorf("attacker cost not exponential: attack5=%v attack9=%v", c5, c9)
	}
	solo := get("f1_attack09")
	joint := get("f3_attack09")
	if ratio := solo / joint; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("collusion scaling = %v, want ~3", ratio)
	}
}

// TestSplitVoteRandomizationEffect (Fig. 8's core claim, small scale):
// randomized timeouts suppress split votes relative to identical timeouts.
func TestSplitVoteRandomizationEffect(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	sync := splitVoteProbability(4, 0, false, 40)
	rand := splitVoteProbability(4, 100*time.Millisecond, false, 40)
	if !(sync > rand) {
		t.Errorf("split votes: eps=0 %.2f should exceed eps=100ms %.2f", sync, rand)
	}
	if rand > 0.2 {
		t.Errorf("eps=100ms split-vote rate %.2f, want near zero", rand)
	}
}

// TestExperimentRegistryComplete: every paper figure has a registered
// runner.
func TestExperimentRegistryComplete(t *testing.T) {
	for _, name := range []string{"fig4c", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "peak", "pipeline"} {
		if _, ok := Experiments[name]; !ok {
			t.Errorf("experiment %s not registered", name)
		}
	}
}
