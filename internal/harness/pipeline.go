package harness

import (
	"fmt"
	"time"
)

// This file declares the replication-window sweep: throughput and latency as
// a function of the leader's pipeline depth W (core.Config.PipelineDepth).
// W=1 reproduces the original stop-and-wait protocol — one batch per
// Ordering+Commit round trip — so the sweep quantifies exactly what the
// sliding window buys on a latency-bound workload. The workload keeps β
// small relative to the client population so the leader always has full
// batches queued and the bottleneck is the commit round trip, not the
// offered load.

// PipelineDepths lists the window sizes the sweep measures.
var PipelineDepths = []int{1, 2, 4, 8}

// pipelineGrid declares one cell per window depth at n=4, m=32.
func pipelineGrid(scale Scale) *Grid {
	g := &Grid{
		Name:  "Pipeline sweep: throughput vs replication window W (n=4, m=32)",
		Notes: "W=1 is the stop-and-wait baseline; committed-tx throughput should scale with W until the CPU or the offered load saturates",
	}
	warmup, span := 500*time.Millisecond, 1500*time.Millisecond
	clients, beta := 320, 40
	if scale == Full {
		span = 5 * time.Second
	}
	for _, w := range PipelineDepths {
		g.Specs = append(g.Specs, ExperimentSpec{
			Label: fmt.Sprintf("pb_W%d", w),
			Opts: Options{
				Protocol: PrestigeBFT, N: 4, Clients: clients, BatchSize: beta,
				PayloadSize: 32, Seed: 300 + int64(w),
				PipelineDepth: w,
			},
			Warmup: warmup, Span: span,
		})
	}
	g.Finalize = func(rows []Row) []Row {
		byW := make(map[int]float64, len(rows))
		var sum float64
		for _, r := range rows {
			var w int
			fmt.Sscanf(r.Label, "pb_W%d", &w)
			byW[w] = r.Values["tps"]
			sum += r.Values["tps"]
		}
		if len(rows) > 0 {
			rows = append(rows, row("mean", "mean_tps", sum/float64(len(rows))))
		}
		if base := byW[1]; base > 0 {
			last := PipelineDepths[len(PipelineDepths)-1]
			rows = append(rows, row(
				fmt.Sprintf("speedup_W%d_over_W1", last),
				"x", byW[last]/base,
			))
		}
		return rows
	}
	return g
}

// RunPipelineSweep measures the replication-window sweep.
func RunPipelineSweep(scale Scale) *Result {
	return pipelineGrid(scale).Run()
}
