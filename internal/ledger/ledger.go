// Package ledger stores the two consensus chains of PrestigeBFT — txBlocks
// (replication results) and vcBlocks (view-change results) — and exposes the
// read operations the reputation engine and the SyncUp procedure need
// (Figure 2: the state machine the reputation engine "retrieves information"
// from).
//
// Blocks are self-certifying through their quorum certificates, so a stale
// server can validate a range of fetched blocks without trusting the sender
// (§4.2.3 SyncUp).
package ledger

import (
	"encoding/binary"
	"fmt"

	"prestigebft/internal/crypto"
	"prestigebft/internal/reputation"
	"prestigebft/internal/types"
)

// StateMachine consumes committed transactions in order. Implementations
// must be deterministic. Apply returns an application-level status for the
// transaction: whether it is "useful" in the sense of the paper's
// user-defined txBlock criteria (§3, Appendix B Q3). The consensus result
// recorded in TxBlock.Status is this value.
type StateMachine interface {
	Apply(tx *types.Transaction) bool
}

// Snapshotter is the optional StateMachine extension the checkpoint
// subsystem needs: a canonical binary encoding of the full application state
// (identical states must encode identically — checkpoint certificates hash
// the encoding) and the inverse restore. State machines without it can still
// replicate, but their ledgers can neither compact nor serve snapshots.
type Snapshotter interface {
	StateMachine
	// SnapshotState returns the canonical encoding of the current state.
	SnapshotState() []byte
	// RestoreState replaces the current state with a decoded snapshot.
	RestoreState(data []byte) error
}

// AcceptAll is a StateMachine that accepts every transaction and discards
// its payload. It is the default for benchmarks.
type AcceptAll struct{ Applied int }

// Apply implements StateMachine.
func (s *AcceptAll) Apply(*types.Transaction) bool { s.Applied++; return true }

// SnapshotState implements Snapshotter: the only state is the applied count.
func (s *AcceptAll) SnapshotState() []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(s.Applied))
	return buf[:]
}

// RestoreState implements Snapshotter.
func (s *AcceptAll) RestoreState(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("acceptall snapshot: want 8 bytes, got %d", len(data))
	}
	s.Applied = int(binary.BigEndian.Uint64(data))
	return nil
}

// Store holds both chains for one server. It is not safe for concurrent use;
// each consensus node runs a single event loop (see internal/core).
//
// The txBlock chain is held as an anchor plus tail: txBlocks[0] is the block
// at the log base (genesis until the first compaction, afterwards the latest
// certified checkpoint's block) and txBlocks[i] the block at LogBase()+i.
// Compaction moves the base up and drops everything below it; the pruned
// prefix stays reachable to stale peers only through the certified snapshot
// (InstallSnapshot / SnapshotPackage).
type Store struct {
	txBlocks []*types.TxBlock // [0] is the anchor at LogBase()
	vcBlocks []*types.VcBlock // ordered by view; [0] is genesis (view 1)
	vcByView map[types.View]int

	// ckpt is the latest certified checkpoint (the log base's certificate)
	// and ckptState the encoded application state it covers — retained so
	// the store can serve snapshots to peers stuck below the base.
	ckpt      *types.CheckpointCert
	ckptState []byte

	sm StateMachine
	n  int // cluster size, for QC thresholds
}

// NewStore creates a store seeded with the genesis blocks for an n-server
// cluster led initially by initialLeader.
func NewStore(n int, initialLeader types.ServerID, sm StateMachine) *Store {
	if sm == nil {
		sm = &AcceptAll{}
	}
	s := &Store{
		vcByView: make(map[types.View]int),
		sm:       sm,
		n:        n,
	}
	s.txBlocks = append(s.txBlocks, types.GenesisTxBlock())
	gvc := types.GenesisVcBlock(n, initialLeader, 1, 1)
	s.vcBlocks = append(s.vcBlocks, gvc)
	s.vcByView[gvc.V] = 0
	return s
}

// StateMachine returns the application state machine.
func (s *Store) StateMachine() StateMachine { return s.sm }

// --- txBlock chain ---------------------------------------------------------

// LatestTxBlock returns the highest committed txBlock.
func (s *Store) LatestTxBlock() *types.TxBlock { return s.txBlocks[len(s.txBlocks)-1] }

// TxHeight returns the sequence number of the latest txBlock (the paper's ti
// under the default "all blocks are useful" criterion).
func (s *Store) TxHeight() types.SeqNum { return s.LatestTxBlock().Header.N }

// LogBase returns the sequence number of the anchor block: the lowest
// retained sequence number. Zero (genesis) until the first compaction.
func (s *Store) LogBase() types.SeqNum { return s.txBlocks[0].Header.N }

// RetainedTxBlocks returns how many txBlocks the store currently holds
// (anchor included) — the quantity compaction bounds.
func (s *Store) RetainedTxBlocks() int { return len(s.txBlocks) }

// TxBlock returns the block at sequence number n, or nil when n is above the
// head or below the log base (compacted away).
func (s *Store) TxBlock(n types.SeqNum) *types.TxBlock {
	base := s.LogBase()
	if n < base || int(n-base) >= len(s.txBlocks) {
		return nil
	}
	return s.txBlocks[n-base]
}

// AppendTxBlock validates and appends a committed txBlock, applying its
// transactions to the state machine. Validation checks the chain linkage and
// the commit certificate threshold.
func (s *Store) AppendTxBlock(reg *crypto.Registry, b *types.TxBlock) error {
	prev := s.LatestTxBlock()
	if b.Header.N != prev.Header.N+1 {
		return fmt.Errorf("txBlock %d does not extend height %d", b.Header.N, prev.Header.N)
	}
	if b.Header.N > 1 && b.Header.PrevHash != prev.Hash() {
		return fmt.Errorf("txBlock %d: previous hash mismatch", b.Header.N)
	}
	if err := s.ValidateTxBlockQCs(reg, b); err != nil {
		return err
	}
	cp := *b
	if len(cp.Status) != len(cp.Txs) {
		cp.Status = make([]bool, len(cp.Txs))
	}
	for i := range cp.Txs {
		cp.Status[i] = s.sm.Apply(&cp.Txs[i])
	}
	s.txBlocks = append(s.txBlocks, &cp)
	return nil
}

// AppendTxBlockUnchecked appends a block validating only chain linkage; the
// caller vouches for the certificates. Protocols whose certificate structure
// differs from the two-QC standard (e.g. SBFT's fast path) validate
// themselves and then append through this.
func (s *Store) AppendTxBlockUnchecked(reg *crypto.Registry, b *types.TxBlock) error {
	prev := s.LatestTxBlock()
	if b.Header.N != prev.Header.N+1 {
		return fmt.Errorf("txBlock %d does not extend height %d", b.Header.N, prev.Header.N)
	}
	if b.Header.N > 1 && b.Header.PrevHash != prev.Hash() {
		return fmt.Errorf("txBlock %d: previous hash mismatch", b.Header.N)
	}
	cp := *b
	if len(cp.Status) != len(cp.Txs) {
		cp.Status = make([]bool, len(cp.Txs))
	}
	for i := range cp.Txs {
		cp.Status[i] = s.sm.Apply(&cp.Txs[i])
	}
	s.txBlocks = append(s.txBlocks, &cp)
	return nil
}

// ValidateTxBlockQCs checks the ordering and commit certificates of b
// without appending it.
func (s *Store) ValidateTxBlockQCs(reg *crypto.Registry, b *types.TxBlock) error {
	q := types.QuorumSize(s.n)
	if b.CommitQC.Kind != types.QCCommit || b.CommitQC.Seq != b.Header.N {
		return fmt.Errorf("txBlock %d: malformed commit_QC", b.Header.N)
	}
	if err := reg.VerifyQC(&b.CommitQC, q); err != nil {
		return fmt.Errorf("txBlock %d: %w", b.Header.N, err)
	}
	if b.OrderingQC.Kind != types.QCOrdering || b.OrderingQC.Seq != b.Header.N {
		return fmt.Errorf("txBlock %d: malformed ordering_QC", b.Header.N)
	}
	if err := reg.VerifyQC(&b.OrderingQC, q); err != nil {
		return fmt.Errorf("txBlock %d: %w", b.Header.N, err)
	}
	if b.CommitQC.Digest != b.OrderingQC.Digest {
		return fmt.Errorf("txBlock %d: commit_QC does not cover ordering_QC digest", b.Header.N)
	}
	if d := b.ContentDigest(); b.OrderingQC.Digest != d {
		return fmt.Errorf("txBlock %d: ordering_QC digest mismatch", b.Header.N)
	}
	return nil
}

// TxRange returns committed blocks with sequence numbers in [start, end],
// clamped to the retained chain (the anchor itself is excluded: peers below
// the base catch up through the snapshot path, not block replay).
func (s *Store) TxRange(start, end types.SeqNum) []types.TxBlock {
	base := s.LogBase()
	if start <= base {
		start = base + 1
	}
	if end > s.TxHeight() {
		end = s.TxHeight()
	}
	var out []types.TxBlock
	for n := start; n <= end; n++ {
		out = append(out, *s.txBlocks[n-base])
	}
	return out
}

// --- vcBlock chain ----------------------------------------------------------

// LatestVcBlock returns the vcBlock of the current view.
func (s *Store) LatestVcBlock() *types.VcBlock { return s.vcBlocks[len(s.vcBlocks)-1] }

// CurrentView returns the view of the latest vcBlock.
func (s *Store) CurrentView() types.View { return s.LatestVcBlock().V }

// CurrentLeader returns the leader of the current view.
func (s *Store) CurrentLeader() types.ServerID { return s.LatestVcBlock().LeaderID }

// VcBlockAt returns the vcBlock for an exact view, or nil.
func (s *Store) VcBlockAt(v types.View) *types.VcBlock {
	i, ok := s.vcByView[v]
	if !ok {
		return nil
	}
	return s.vcBlocks[i]
}

// AppendVcBlock validates and appends a view-change result. Views may skip
// numbers (campaigns increment beyond V+1 after split votes), but must be
// strictly increasing.
func (s *Store) AppendVcBlock(reg *crypto.Registry, b *types.VcBlock) error {
	prev := s.LatestVcBlock()
	if b.V <= prev.V {
		return fmt.Errorf("vcBlock view %d not beyond current %d", b.V, prev.V)
	}
	if b.PrevHash != prev.Hash() {
		return fmt.Errorf("vcBlock %d: previous hash mismatch", b.V)
	}
	if err := s.ValidateVcBlockQCs(reg, b); err != nil {
		return err
	}
	cp := *b
	cp.RP, cp.CI = b.CloneReputation()
	s.vcBlocks = append(s.vcBlocks, &cp)
	s.vcByView[cp.V] = len(s.vcBlocks) - 1
	return nil
}

// ValidateVcBlockQCs checks the conf and vote certificates of b.
func (s *Store) ValidateVcBlockQCs(reg *crypto.Registry, b *types.VcBlock) error {
	if b.VcQC.Kind != types.QCVote || b.VcQC.View != b.V || b.VcQC.Seq != types.SeqNum(b.LeaderID) {
		return fmt.Errorf("vcBlock %d: malformed vc_QC", b.V)
	}
	if err := reg.VerifyQC(&b.VcQC, types.QuorumSize(s.n)); err != nil {
		return fmt.Errorf("vcBlock %d: %w", b.V, err)
	}
	if b.ConfQC.Kind != types.QCConf {
		return fmt.Errorf("vcBlock %d: malformed conf_QC", b.V)
	}
	if err := reg.VerifyQC(&b.ConfQC, types.ConfirmSize(s.n)); err != nil {
		return fmt.Errorf("vcBlock %d: %w", b.V, err)
	}
	return nil
}

// VcRangeAfter returns all vcBlocks with views in (afterView, endView],
// in chain order.
func (s *Store) VcRangeAfter(afterView, endView types.View) []types.VcBlock {
	var out []types.VcBlock
	for _, b := range s.vcBlocks {
		if b.V > afterView && b.V <= endView {
			out = append(out, *b)
		}
	}
	return out
}

// UpdateReputation overwrites one server's rp and ci in the current vcBlock.
// This implements the refresh mechanism (§4.2.5): receivers of a valid Rdone
// update the sender's entries in the current VcBlock. It does not create a
// new block.
func (s *Store) UpdateReputation(id types.ServerID, rp, ci int64) {
	cur := s.LatestVcBlock()
	cur.RP[id] = rp
	cur.CI[id] = ci
}

// PenaltyHistory returns server id's rp entry in every vcBlock from genesis
// through the current view, in chain order. This is the set P of
// Algorithm 1 (lines 4-7).
func (s *Store) PenaltyHistory(id types.ServerID) []int64 {
	out := make([]int64, 0, len(s.vcBlocks))
	for _, b := range s.vcBlocks {
		out = append(out, b.RP[id])
	}
	return out
}

// --- Certified checkpoints (DESIGN.md §10) -----------------------------------

// CheckpointBasis captures the checkpoint header for the CURRENT committed
// height, together with the encoded application state it hashes. It must be
// called at the exact height being checkpointed — the application state is a
// moving target, so the caller (internal/core) invokes it the moment a
// commit lands on an interval boundary. RepDigest is left for the caller to
// fill from RepDigestUpTo, because the vc chain may briefly trail the tx
// chain on sync-fed replicas. ok is false when the state machine cannot
// snapshot itself.
func (s *Store) CheckpointBasis() (types.CheckpointHeader, []byte, bool) {
	snap, ok := s.sm.(Snapshotter)
	if !ok {
		return types.CheckpointHeader{}, nil, false
	}
	tip := s.LatestTxBlock()
	state := snap.SnapshotState()
	return types.CheckpointHeader{
		Seq:       tip.Header.N,
		View:      tip.Header.V,
		BlockHash: tip.Hash(),
		AppDigest: types.HashBytes(state),
	}, state, true
}

// RepDigestUpTo returns the hash of the latest vcBlock with view ≤ v — the
// reputation-input commitment of a checkpoint header. ok is false while
// this replica's vc chain still trails v (the caller defers its checkpoint
// vote until the chain catches up).
//
// The digest is computed over the block's CURRENT content, mutable rp/ci
// included. For every closed view (one a successor extends) this is
// convergent: AppendVcBlock validates the successor's PrevHash against the
// stored predecessor's hash, which covers the reputation fragment, so any
// replica holding the successor provably holds a byte-identical
// predecessor — §4.2.5 refresh mutations must have propagated before the
// chain could extend. Only the open latest view can transiently differ
// across replicas (an Rdone still in flight); a checkpoint round straddling
// that window may fail to reach 2f+1 matching hashes and simply lapses —
// the next boundary retries against the converged fragment. A lapsed round
// costs retained log, never safety.
func (s *Store) RepDigestUpTo(v types.View) (types.Digest, bool) {
	if s.CurrentView() < v {
		return types.Digest{}, false
	}
	for i := len(s.vcBlocks) - 1; i >= 0; i-- {
		if s.vcBlocks[i].V <= v {
			return s.vcBlocks[i].Hash(), true
		}
	}
	return types.Digest{}, false
}

// ValidateCheckpointCert checks a checkpoint certificate: well-formed ckpt_QC
// over the header's state hash at the 2f+1 threshold.
func (s *Store) ValidateCheckpointCert(reg *crypto.Registry, c *types.CheckpointCert) error {
	qc := &c.QC
	if qc.Kind != types.QCCheckpoint || qc.View != 0 || qc.Seq != c.Header.Seq ||
		qc.Digest != c.Header.StateHash() {
		return fmt.Errorf("checkpoint %d: malformed ckpt_QC", c.Header.Seq)
	}
	if err := reg.VerifyQC(qc, types.QuorumSize(s.n)); err != nil {
		return fmt.Errorf("checkpoint %d: %w", c.Header.Seq, err)
	}
	return nil
}

// Certify installs an assembled checkpoint certificate together with the
// application state captured when its boundary committed (CheckpointBasis),
// then prunes the log below the checkpoint. The certificate's block becomes
// the new anchor; the certificate and state are retained so this store can
// serve snapshots to peers stuck below the new base.
func (s *Store) Certify(cert types.CheckpointCert, appState []byte) error {
	seq := cert.Header.Seq
	if s.ckpt != nil && seq <= s.ckpt.Header.Seq {
		return nil // stale certificate; the base already moved past it
	}
	blk := s.TxBlock(seq)
	if blk == nil {
		return fmt.Errorf("checkpoint %d: block not retained (height %d, base %d)", seq, s.TxHeight(), s.LogBase())
	}
	if blk.Hash() != cert.Header.BlockHash {
		return fmt.Errorf("checkpoint %d: certificate covers a different block", seq)
	}
	s.ckpt = &cert
	s.ckptState = appState
	s.CompactBefore(seq)
	return nil
}

// Checkpoint returns the latest certified checkpoint, or nil.
func (s *Store) Checkpoint() *types.CheckpointCert { return s.ckpt }

// CompactBefore prunes every txBlock with sequence number strictly below
// seq; seq becomes the log base (its block is kept as the anchor so chain
// linkage, tip re-broadcast, and snapshot serving keep working). Returns the
// number of blocks pruned. Callers must hold a certificate for seq — the
// checkpoint subsystem only invokes this through Certify.
func (s *Store) CompactBefore(seq types.SeqNum) int {
	base := s.LogBase()
	if seq <= base {
		return 0
	}
	if seq > s.TxHeight() {
		seq = s.TxHeight()
	}
	idx := int(seq - base)
	tail := make([]*types.TxBlock, len(s.txBlocks)-idx)
	copy(tail, s.txBlocks[idx:])
	s.txBlocks = tail
	return idx
}

// SnapshotPackage assembles the state-transfer payload for a peer whose gap
// starts below the log base: the certificate, the anchor block, and the
// encoded application state at the checkpoint. Nil when no checkpoint has
// been certified yet.
func (s *Store) SnapshotPackage() *types.SnapshotPackage {
	if s.ckpt == nil || s.LogBase() != s.ckpt.Header.Seq {
		return nil
	}
	return &types.SnapshotPackage{
		Cert:     *s.ckpt,
		Anchor:   *s.txBlocks[0],
		AppState: append([]byte(nil), s.ckptState...),
	}
}

// InstallSnapshot replaces this store's txBlock chain and application state
// with a certified snapshot, after verifying every component: the ckpt_QC
// (2f+1 signers over the state hash), the anchor block's own certificates
// and its address against the header, and the state bytes against the
// certified AppDigest. The vc chain is untouched — vcBlocks are synced
// independently and are themselves self-certifying. The caller must only
// install snapshots ahead of the current height.
func (s *Store) InstallSnapshot(reg *crypto.Registry, pkg *types.SnapshotPackage) error {
	cert := pkg.Cert
	h := &cert.Header
	if h.Seq <= s.TxHeight() {
		return fmt.Errorf("snapshot %d not ahead of height %d", h.Seq, s.TxHeight())
	}
	if err := s.ValidateCheckpointCert(reg, &cert); err != nil {
		return err
	}
	anchor := pkg.Anchor
	if anchor.Header.N != h.Seq || anchor.Hash() != h.BlockHash {
		return fmt.Errorf("snapshot %d: anchor block does not match certificate", h.Seq)
	}
	if err := s.ValidateTxBlockQCs(reg, &anchor); err != nil {
		return fmt.Errorf("snapshot %d anchor: %w", h.Seq, err)
	}
	if types.HashBytes(pkg.AppState) != h.AppDigest {
		return fmt.Errorf("snapshot %d: application state does not hash to the certified digest", h.Seq)
	}
	snap, ok := s.sm.(Snapshotter)
	if !ok {
		return fmt.Errorf("snapshot %d: state machine cannot restore snapshots", h.Seq)
	}
	if err := snap.RestoreState(pkg.AppState); err != nil {
		return fmt.Errorf("snapshot %d: %w", h.Seq, err)
	}
	s.txBlocks = []*types.TxBlock{&anchor}
	s.ckpt = &cert
	s.ckptState = append([]byte(nil), pkg.AppState...)
	return nil
}

// --- Reputation snapshot -----------------------------------------------------

// Snapshot gathers the reputation inputs for server id, with ti supplied by
// the caller (the default is the tx chain height; applications with a
// "useful block" criterion pass their own count).
func (s *Store) Snapshot(id types.ServerID, ti int64) reputation.Snapshot {
	cur := s.LatestVcBlock()
	return reputation.Snapshot{
		V:         cur.V,
		RP:        cur.RP[id],
		CI:        cur.CI[id],
		TI:        ti,
		Penalties: s.PenaltyHistory(id),
	}
}
