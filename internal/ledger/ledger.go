// Package ledger stores the two consensus chains of PrestigeBFT — txBlocks
// (replication results) and vcBlocks (view-change results) — and exposes the
// read operations the reputation engine and the SyncUp procedure need
// (Figure 2: the state machine the reputation engine "retrieves information"
// from).
//
// Blocks are self-certifying through their quorum certificates, so a stale
// server can validate a range of fetched blocks without trusting the sender
// (§4.2.3 SyncUp).
package ledger

import (
	"fmt"

	"prestigebft/internal/crypto"
	"prestigebft/internal/reputation"
	"prestigebft/internal/types"
)

// StateMachine consumes committed transactions in order. Implementations
// must be deterministic. Apply returns an application-level status for the
// transaction: whether it is "useful" in the sense of the paper's
// user-defined txBlock criteria (§3, Appendix B Q3). The consensus result
// recorded in TxBlock.Status is this value.
type StateMachine interface {
	Apply(tx *types.Transaction) bool
}

// AcceptAll is a StateMachine that accepts every transaction and discards
// its payload. It is the default for benchmarks.
type AcceptAll struct{ Applied int }

// Apply implements StateMachine.
func (s *AcceptAll) Apply(*types.Transaction) bool { s.Applied++; return true }

// Store holds both chains for one server. It is not safe for concurrent use;
// each consensus node runs a single event loop (see internal/core).
type Store struct {
	txBlocks []*types.TxBlock // index == sequence number; [0] is genesis
	vcBlocks []*types.VcBlock // ordered by view; [0] is genesis (view 1)
	vcByView map[types.View]int

	sm StateMachine
	n  int // cluster size, for QC thresholds
}

// NewStore creates a store seeded with the genesis blocks for an n-server
// cluster led initially by initialLeader.
func NewStore(n int, initialLeader types.ServerID, sm StateMachine) *Store {
	if sm == nil {
		sm = &AcceptAll{}
	}
	s := &Store{
		vcByView: make(map[types.View]int),
		sm:       sm,
		n:        n,
	}
	s.txBlocks = append(s.txBlocks, types.GenesisTxBlock())
	gvc := types.GenesisVcBlock(n, initialLeader, 1, 1)
	s.vcBlocks = append(s.vcBlocks, gvc)
	s.vcByView[gvc.V] = 0
	return s
}

// StateMachine returns the application state machine.
func (s *Store) StateMachine() StateMachine { return s.sm }

// --- txBlock chain ---------------------------------------------------------

// LatestTxBlock returns the highest committed txBlock.
func (s *Store) LatestTxBlock() *types.TxBlock { return s.txBlocks[len(s.txBlocks)-1] }

// TxHeight returns the sequence number of the latest txBlock (the paper's ti
// under the default "all blocks are useful" criterion).
func (s *Store) TxHeight() types.SeqNum { return s.LatestTxBlock().Header.N }

// TxBlock returns the block at sequence number n, or nil.
func (s *Store) TxBlock(n types.SeqNum) *types.TxBlock {
	if int(n) >= len(s.txBlocks) {
		return nil
	}
	return s.txBlocks[n]
}

// AppendTxBlock validates and appends a committed txBlock, applying its
// transactions to the state machine. Validation checks the chain linkage and
// the commit certificate threshold.
func (s *Store) AppendTxBlock(reg *crypto.Registry, b *types.TxBlock) error {
	prev := s.LatestTxBlock()
	if b.Header.N != prev.Header.N+1 {
		return fmt.Errorf("txBlock %d does not extend height %d", b.Header.N, prev.Header.N)
	}
	if b.Header.N > 1 && b.Header.PrevHash != prev.Hash() {
		return fmt.Errorf("txBlock %d: previous hash mismatch", b.Header.N)
	}
	if err := s.ValidateTxBlockQCs(reg, b); err != nil {
		return err
	}
	cp := *b
	if len(cp.Status) != len(cp.Txs) {
		cp.Status = make([]bool, len(cp.Txs))
	}
	for i := range cp.Txs {
		cp.Status[i] = s.sm.Apply(&cp.Txs[i])
	}
	s.txBlocks = append(s.txBlocks, &cp)
	return nil
}

// AppendTxBlockUnchecked appends a block validating only chain linkage; the
// caller vouches for the certificates. Protocols whose certificate structure
// differs from the two-QC standard (e.g. SBFT's fast path) validate
// themselves and then append through this.
func (s *Store) AppendTxBlockUnchecked(reg *crypto.Registry, b *types.TxBlock) error {
	prev := s.LatestTxBlock()
	if b.Header.N != prev.Header.N+1 {
		return fmt.Errorf("txBlock %d does not extend height %d", b.Header.N, prev.Header.N)
	}
	if b.Header.N > 1 && b.Header.PrevHash != prev.Hash() {
		return fmt.Errorf("txBlock %d: previous hash mismatch", b.Header.N)
	}
	cp := *b
	if len(cp.Status) != len(cp.Txs) {
		cp.Status = make([]bool, len(cp.Txs))
	}
	for i := range cp.Txs {
		cp.Status[i] = s.sm.Apply(&cp.Txs[i])
	}
	s.txBlocks = append(s.txBlocks, &cp)
	return nil
}

// ValidateTxBlockQCs checks the ordering and commit certificates of b
// without appending it.
func (s *Store) ValidateTxBlockQCs(reg *crypto.Registry, b *types.TxBlock) error {
	q := types.QuorumSize(s.n)
	if b.CommitQC.Kind != types.QCCommit || b.CommitQC.Seq != b.Header.N {
		return fmt.Errorf("txBlock %d: malformed commit_QC", b.Header.N)
	}
	if err := reg.VerifyQC(&b.CommitQC, q); err != nil {
		return fmt.Errorf("txBlock %d: %w", b.Header.N, err)
	}
	if b.OrderingQC.Kind != types.QCOrdering || b.OrderingQC.Seq != b.Header.N {
		return fmt.Errorf("txBlock %d: malformed ordering_QC", b.Header.N)
	}
	if err := reg.VerifyQC(&b.OrderingQC, q); err != nil {
		return fmt.Errorf("txBlock %d: %w", b.Header.N, err)
	}
	if b.CommitQC.Digest != b.OrderingQC.Digest {
		return fmt.Errorf("txBlock %d: commit_QC does not cover ordering_QC digest", b.Header.N)
	}
	if d := b.ContentDigest(); b.OrderingQC.Digest != d {
		return fmt.Errorf("txBlock %d: ordering_QC digest mismatch", b.Header.N)
	}
	return nil
}

// TxRange returns committed blocks with sequence numbers in [start, end],
// clamped to the chain.
func (s *Store) TxRange(start, end types.SeqNum) []types.TxBlock {
	if start < 1 {
		start = 1
	}
	if int(end) >= len(s.txBlocks) {
		end = types.SeqNum(len(s.txBlocks) - 1)
	}
	var out []types.TxBlock
	for n := start; n <= end; n++ {
		out = append(out, *s.txBlocks[n])
	}
	return out
}

// --- vcBlock chain ----------------------------------------------------------

// LatestVcBlock returns the vcBlock of the current view.
func (s *Store) LatestVcBlock() *types.VcBlock { return s.vcBlocks[len(s.vcBlocks)-1] }

// CurrentView returns the view of the latest vcBlock.
func (s *Store) CurrentView() types.View { return s.LatestVcBlock().V }

// CurrentLeader returns the leader of the current view.
func (s *Store) CurrentLeader() types.ServerID { return s.LatestVcBlock().LeaderID }

// VcBlockAt returns the vcBlock for an exact view, or nil.
func (s *Store) VcBlockAt(v types.View) *types.VcBlock {
	i, ok := s.vcByView[v]
	if !ok {
		return nil
	}
	return s.vcBlocks[i]
}

// AppendVcBlock validates and appends a view-change result. Views may skip
// numbers (campaigns increment beyond V+1 after split votes), but must be
// strictly increasing.
func (s *Store) AppendVcBlock(reg *crypto.Registry, b *types.VcBlock) error {
	prev := s.LatestVcBlock()
	if b.V <= prev.V {
		return fmt.Errorf("vcBlock view %d not beyond current %d", b.V, prev.V)
	}
	if b.PrevHash != prev.Hash() {
		return fmt.Errorf("vcBlock %d: previous hash mismatch", b.V)
	}
	if err := s.ValidateVcBlockQCs(reg, b); err != nil {
		return err
	}
	cp := *b
	cp.RP, cp.CI = b.CloneReputation()
	s.vcBlocks = append(s.vcBlocks, &cp)
	s.vcByView[cp.V] = len(s.vcBlocks) - 1
	return nil
}

// ValidateVcBlockQCs checks the conf and vote certificates of b.
func (s *Store) ValidateVcBlockQCs(reg *crypto.Registry, b *types.VcBlock) error {
	if b.VcQC.Kind != types.QCVote || b.VcQC.View != b.V || b.VcQC.Seq != types.SeqNum(b.LeaderID) {
		return fmt.Errorf("vcBlock %d: malformed vc_QC", b.V)
	}
	if err := reg.VerifyQC(&b.VcQC, types.QuorumSize(s.n)); err != nil {
		return fmt.Errorf("vcBlock %d: %w", b.V, err)
	}
	if b.ConfQC.Kind != types.QCConf {
		return fmt.Errorf("vcBlock %d: malformed conf_QC", b.V)
	}
	if err := reg.VerifyQC(&b.ConfQC, types.ConfirmSize(s.n)); err != nil {
		return fmt.Errorf("vcBlock %d: %w", b.V, err)
	}
	return nil
}

// VcRangeAfter returns all vcBlocks with views in (afterView, endView],
// in chain order.
func (s *Store) VcRangeAfter(afterView, endView types.View) []types.VcBlock {
	var out []types.VcBlock
	for _, b := range s.vcBlocks {
		if b.V > afterView && b.V <= endView {
			out = append(out, *b)
		}
	}
	return out
}

// UpdateReputation overwrites one server's rp and ci in the current vcBlock.
// This implements the refresh mechanism (§4.2.5): receivers of a valid Rdone
// update the sender's entries in the current VcBlock. It does not create a
// new block.
func (s *Store) UpdateReputation(id types.ServerID, rp, ci int64) {
	cur := s.LatestVcBlock()
	cur.RP[id] = rp
	cur.CI[id] = ci
}

// PenaltyHistory returns server id's rp entry in every vcBlock from genesis
// through the current view, in chain order. This is the set P of
// Algorithm 1 (lines 4-7).
func (s *Store) PenaltyHistory(id types.ServerID) []int64 {
	out := make([]int64, 0, len(s.vcBlocks))
	for _, b := range s.vcBlocks {
		out = append(out, b.RP[id])
	}
	return out
}

// --- Reputation snapshot -----------------------------------------------------

// Snapshot gathers the reputation inputs for server id, with ti supplied by
// the caller (the default is the tx chain height; applications with a
// "useful block" criterion pass their own count).
func (s *Store) Snapshot(id types.ServerID, ti int64) reputation.Snapshot {
	cur := s.LatestVcBlock()
	return reputation.Snapshot{
		V:         cur.V,
		RP:        cur.RP[id],
		CI:        cur.CI[id],
		TI:        ti,
		Penalties: s.PenaltyHistory(id),
	}
}
