package ledger

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"prestigebft/internal/types"
)

// KVStore is a deterministic key-value state machine used by the examples
// and the integration tests. Transactions are encoded with EncodeKVOp.
type KVStore struct {
	data map[string][]byte
	// Applied counts applied transactions.
	Applied int
}

// NewKVStore returns an empty key-value store.
func NewKVStore() *KVStore { return &KVStore{data: make(map[string][]byte)} }

// KVOp is a key-value operation code.
type KVOp uint8

const (
	// KVSet writes Value at Key.
	KVSet KVOp = iota + 1
	// KVDel removes Key.
	KVDel
	// KVNoop does nothing (used by load generators).
	KVNoop
)

// EncodeKVOp serializes an operation into a transaction payload.
func EncodeKVOp(op KVOp, key string, value []byte) []byte {
	buf := make([]byte, 0, 1+2+len(key)+len(value))
	buf = append(buf, byte(op))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// DecodeKVOp parses a transaction payload produced by EncodeKVOp.
func DecodeKVOp(data []byte) (op KVOp, key string, value []byte, err error) {
	if len(data) < 3 {
		return 0, "", nil, fmt.Errorf("kv op too short: %d bytes", len(data))
	}
	op = KVOp(data[0])
	klen := int(binary.BigEndian.Uint16(data[1:3]))
	if len(data) < 3+klen {
		return 0, "", nil, fmt.Errorf("kv op truncated key: want %d bytes", klen)
	}
	key = string(data[3 : 3+klen])
	value = data[3+klen:]
	return op, key, value, nil
}

// Apply implements StateMachine. Malformed payloads are ordered but marked
// not useful (status false), exercising the per-transaction Status list of
// txBlocks (Figure 3).
func (s *KVStore) Apply(tx *types.Transaction) bool {
	s.Applied++
	op, key, value, err := DecodeKVOp(tx.Data)
	if err != nil {
		return false
	}
	switch op {
	case KVSet:
		s.data[key] = append([]byte(nil), value...)
	case KVDel:
		delete(s.data, key)
	case KVNoop:
	default:
		return false
	}
	return true
}

// Get returns the value stored at key.
func (s *KVStore) Get(key string) ([]byte, bool) {
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of live keys.
func (s *KVStore) Len() int { return len(s.data) }

// Equal reports whether two stores hold identical contents — used by tests
// to check that all correct replicas converge to the same state.
func (s *KVStore) Equal(o *KVStore) bool {
	if len(s.data) != len(o.data) {
		return false
	}
	for k, v := range s.data {
		ov, ok := o.data[k]
		if !ok || !bytes.Equal(v, ov) {
			return false
		}
	}
	return true
}
