package ledger

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"prestigebft/internal/types"
)

// KVStore is a deterministic key-value state machine used by the examples
// and the integration tests. Transactions are encoded with EncodeKVOp.
type KVStore struct {
	data map[string][]byte
	// Applied counts applied transactions.
	Applied int
}

// NewKVStore returns an empty key-value store.
func NewKVStore() *KVStore { return &KVStore{data: make(map[string][]byte)} }

// KVOp is a key-value operation code.
type KVOp uint8

const (
	// KVSet writes Value at Key.
	KVSet KVOp = iota + 1
	// KVDel removes Key.
	KVDel
	// KVNoop does nothing (used by load generators).
	KVNoop
)

// EncodeKVOp serializes an operation into a transaction payload.
func EncodeKVOp(op KVOp, key string, value []byte) []byte {
	buf := make([]byte, 0, 1+2+len(key)+len(value))
	buf = append(buf, byte(op))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// DecodeKVOp parses a transaction payload produced by EncodeKVOp.
func DecodeKVOp(data []byte) (op KVOp, key string, value []byte, err error) {
	if len(data) < 3 {
		return 0, "", nil, fmt.Errorf("kv op too short: %d bytes", len(data))
	}
	op = KVOp(data[0])
	klen := int(binary.BigEndian.Uint16(data[1:3]))
	if len(data) < 3+klen {
		return 0, "", nil, fmt.Errorf("kv op truncated key: want %d bytes", klen)
	}
	key = string(data[3 : 3+klen])
	value = data[3+klen:]
	return op, key, value, nil
}

// Apply implements StateMachine. Malformed payloads are ordered but marked
// not useful (status false), exercising the per-transaction Status list of
// txBlocks (Figure 3).
func (s *KVStore) Apply(tx *types.Transaction) bool {
	s.Applied++
	op, key, value, err := DecodeKVOp(tx.Data)
	if err != nil {
		return false
	}
	switch op {
	case KVSet:
		s.data[key] = append([]byte(nil), value...)
	case KVDel:
		delete(s.data, key)
	case KVNoop:
	default:
		return false
	}
	return true
}

// Get returns the value stored at key.
func (s *KVStore) Get(key string) ([]byte, bool) {
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of live keys.
func (s *KVStore) Len() int { return len(s.data) }

// SnapshotState implements Snapshotter: a canonical length-prefixed binary
// encoding — applied count, entry count, then every entry in ascending key
// order. Identical states encode identically (checkpoint certificates hash
// the encoding), and DecodeSnapshot rejects non-canonical inputs, so the
// codec round-trips exactly in both directions.
func (s *KVStore) SnapshotState() []byte {
	keys := make([]string, 0, len(s.data))
	size := 8 + 4
	for k := range s.data {
		keys = append(keys, k)
		size += 2 + len(k) + 4 + len(s.data[k])
	}
	sort.Strings(keys)
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.Applied))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.data[k])))
		buf = append(buf, s.data[k]...)
	}
	return buf
}

// RestoreState implements Snapshotter, replacing the store's contents.
func (s *KVStore) RestoreState(data []byte) error {
	applied, m, err := DecodeSnapshot(data)
	if err != nil {
		return err
	}
	s.Applied = applied
	s.data = m
	return nil
}

// DecodeSnapshot parses a payload produced by SnapshotState. It enforces
// canonical form — strictly ascending keys, exact entry count, no trailing
// bytes — so every accepted payload re-encodes byte-identically.
func DecodeSnapshot(data []byte) (applied int, m map[string][]byte, err error) {
	if len(data) < 12 {
		return 0, nil, fmt.Errorf("kv snapshot too short: %d bytes", len(data))
	}
	applied = int(binary.BigEndian.Uint64(data[:8]))
	count := int(binary.BigEndian.Uint32(data[8:12]))
	rest := data[12:]
	m = make(map[string][]byte, count)
	prev := ""
	for i := 0; i < count; i++ {
		if len(rest) < 2 {
			return 0, nil, fmt.Errorf("kv snapshot truncated at entry %d", i)
		}
		klen := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < klen+4 {
			return 0, nil, fmt.Errorf("kv snapshot truncated key at entry %d", i)
		}
		key := string(rest[:klen])
		rest = rest[klen:]
		if i > 0 && key <= prev {
			return 0, nil, fmt.Errorf("kv snapshot not canonical: key %q after %q", key, prev)
		}
		prev = key
		vlen := int(binary.BigEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if len(rest) < vlen {
			return 0, nil, fmt.Errorf("kv snapshot truncated value at entry %d", i)
		}
		m[key] = append([]byte(nil), rest[:vlen]...)
		rest = rest[vlen:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("kv snapshot has %d trailing bytes", len(rest))
	}
	return applied, m, nil
}

// Equal reports whether two stores hold identical contents — used by tests
// to check that all correct replicas converge to the same state.
func (s *KVStore) Equal(o *KVStore) bool {
	if len(s.data) != len(o.data) {
		return false
	}
	for k, v := range s.data {
		ov, ok := o.data[k]
		if !ok || !bytes.Equal(v, ov) {
			return false
		}
	}
	return true
}
