package ledger

import (
	"testing"

	"prestigebft/internal/crypto"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// buildBlock commits a batch through properly signed certificates.
func buildBlock(t *testing.T, reg *crypto.Registry, servers map[types.ServerID]*crypto.KeyPair,
	prev *types.TxBlock, v types.View, txs []types.Transaction) *types.TxBlock {
	t.Helper()
	blk := &types.TxBlock{
		Header: types.TxBlockHeader{V: v, N: prev.Header.N + 1, PrevHash: prev.Hash(), BatchLen: uint32(len(txs))},
		Txs:    txs,
	}
	d := blk.ContentDigest()
	ord := quorum.NewCollector(types.QCOrdering, v, blk.Header.N, d, 3)
	cmt := quorum.NewCollector(types.QCCommit, v, blk.Header.N, d, 3)
	for id := types.ServerID(1); id <= 3; id++ {
		ord.Add(reg, id, servers[id].Sign(ord.Statement()))
		cmt.Add(reg, id, servers[id].Sign(cmt.Statement()))
	}
	blk.OrderingQC = ord.QC()
	blk.CommitQC = cmt.QC()
	return blk
}

func newTestStore(t *testing.T) (*Store, *crypto.Registry, map[types.ServerID]*crypto.KeyPair) {
	t.Helper()
	reg, servers, _ := crypto.GenerateDeployment(21, 4, 0)
	return NewStore(4, 1, nil), reg, servers
}

func TestAppendTxBlockChain(t *testing.T) {
	s, reg, servers := newTestStore(t)
	txs := []types.Transaction{{Timestamp: 1, Client: 1, Data: []byte("a")}}
	b1 := buildBlock(t, reg, servers, s.LatestTxBlock(), 1, txs)
	if err := s.AppendTxBlock(reg, b1); err != nil {
		t.Fatalf("append block 1: %v", err)
	}
	if s.TxHeight() != 1 {
		t.Fatalf("height = %d", s.TxHeight())
	}
	// Appending out of order must fail.
	b3 := buildBlock(t, reg, servers, b1, 1, txs)
	b3.Header.N = 3
	if err := s.AppendTxBlock(reg, b3); err == nil {
		t.Fatal("gap append accepted")
	}
	// Wrong previous hash must fail.
	b2 := buildBlock(t, reg, servers, s.LatestTxBlock(), 1, txs)
	b2.Header.PrevHash = types.Digest{9}
	if err := s.AppendTxBlock(reg, b2); err == nil {
		t.Fatal("broken chain linkage accepted")
	}
}

func TestAppendTxBlockRejectsBadQCs(t *testing.T) {
	s, reg, servers := newTestStore(t)
	txs := []types.Transaction{{Timestamp: 1, Client: 1, Data: []byte("a")}}
	good := buildBlock(t, reg, servers, s.LatestTxBlock(), 1, txs)

	noCommit := *good
	noCommit.CommitQC = types.QC{}
	if err := s.AppendTxBlock(reg, &noCommit); err == nil {
		t.Fatal("missing commit QC accepted")
	}
	thin := *good
	thin.CommitQC.Signers = thin.CommitQC.Signers[:2]
	thin.CommitQC.Sigs = thin.CommitQC.Sigs[:2]
	if err := s.AppendTxBlock(reg, &thin); err == nil {
		t.Fatal("under-threshold commit QC accepted")
	}
	// Tampered content: the ordering QC no longer matches.
	tampered := *good
	tampered.Txs = []types.Transaction{{Timestamp: 2, Client: 2, Data: []byte("b")}}
	if err := s.AppendTxBlock(reg, &tampered); err == nil {
		t.Fatal("content/QC mismatch accepted")
	}
}

func TestStateMachineApplication(t *testing.T) {
	reg, servers, _ := crypto.GenerateDeployment(21, 4, 0)
	kv := NewKVStore()
	s := NewStore(4, 1, kv)
	txs := []types.Transaction{
		{Timestamp: 1, Client: 1, Data: EncodeKVOp(KVSet, "k", []byte("v"))},
		{Timestamp: 2, Client: 1, Data: []byte{0xff}}, // malformed: status false
	}
	b := buildBlock(t, reg, servers, s.LatestTxBlock(), 1, txs)
	if err := s.AppendTxBlock(reg, b); err != nil {
		t.Fatal(err)
	}
	stored := s.LatestTxBlock()
	if len(stored.Status) != 2 || !stored.Status[0] || stored.Status[1] {
		t.Fatalf("status = %v, want [true false]", stored.Status)
	}
	if v, ok := kv.Get("k"); !ok || string(v) != "v" {
		t.Fatal("state machine did not apply the committed op")
	}
}

func TestTxRangeClamping(t *testing.T) {
	s, reg, servers := newTestStore(t)
	for i := 0; i < 5; i++ {
		b := buildBlock(t, reg, servers, s.LatestTxBlock(), 1,
			[]types.Transaction{{Timestamp: int64(i), Client: 1}})
		if err := s.AppendTxBlock(reg, b); err != nil {
			t.Fatal(err)
		}
	}
	r := s.TxRange(2, 4)
	if len(r) != 3 || r[0].Header.N != 2 || r[2].Header.N != 4 {
		t.Fatalf("range [2,4] = %d blocks", len(r))
	}
	if got := s.TxRange(0, 100); len(got) != 5 {
		t.Fatalf("clamped range = %d blocks, want 5", len(got))
	}
}

func TestVcChainAndPenaltyHistory(t *testing.T) {
	reg, servers, _ := crypto.GenerateDeployment(21, 4, 0)
	s := NewStore(4, 1, nil)

	appendVc := func(v types.View, leader types.ServerID, rp int64) {
		prev := s.LatestVcBlock()
		nrp, nci := prev.CloneReputation()
		nrp[leader] = rp
		blk := &types.VcBlock{V: v, LeaderID: leader, PrevHash: prev.Hash(), RP: nrp, CI: nci}
		conf := quorum.NewCollector(types.QCConf, prev.V, types.SeqNum(leader), types.Digest{}, 2)
		vote := quorum.NewCollector(types.QCVote, v, types.SeqNum(leader), types.Digest{}, 3)
		for id := types.ServerID(1); id <= 3; id++ {
			conf.Add(reg, id, servers[id].Sign(conf.Statement()))
			vote.Add(reg, id, servers[id].Sign(vote.Statement()))
		}
		blk.ConfQC = conf.QC()
		blk.VcQC = vote.QC()
		if err := s.AppendVcBlock(reg, blk); err != nil {
			t.Fatalf("append vcBlock %d: %v", v, err)
		}
	}
	appendVc(2, 2, 2)
	appendVc(4, 2, 3) // views may skip (split-vote retries)
	if s.CurrentView() != 4 || s.CurrentLeader() != 2 {
		t.Fatalf("view/leader = %d/%d", s.CurrentView(), s.CurrentLeader())
	}
	hist := s.PenaltyHistory(2)
	if len(hist) != 3 || hist[0] != 1 || hist[1] != 2 || hist[2] != 3 {
		t.Fatalf("penalty history = %v", hist)
	}
	// Snapshot feeds the reputation engine.
	snap := s.Snapshot(2, 10)
	if snap.V != 4 || snap.RP != 3 || snap.TI != 10 || len(snap.Penalties) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Stale or replayed views are rejected.
	prev := s.LatestVcBlock()
	if err := s.AppendVcBlock(reg, &types.VcBlock{V: 3, PrevHash: prev.Hash(), RP: prev.RP, CI: prev.CI}); err == nil {
		t.Fatal("lower-view vcBlock accepted")
	}
	// Range queries for SyncUp.
	r := s.VcRangeAfter(1, 4)
	if len(r) != 2 || r[0].V != 2 || r[1].V != 4 {
		t.Fatalf("vc range = %+v", r)
	}
}

func TestUpdateReputationRefresh(t *testing.T) {
	s, _, _ := newTestStore(t)
	s.UpdateReputation(3, 1, 1)
	if s.LatestVcBlock().RP[3] != 1 {
		t.Fatal("refresh did not apply")
	}
	s.UpdateReputation(3, 7, 9)
	if s.LatestVcBlock().RP[3] != 7 || s.LatestVcBlock().CI[3] != 9 {
		t.Fatal("update did not apply")
	}
}

func TestKVStoreOps(t *testing.T) {
	kv := NewKVStore()
	apply := func(op KVOp, k string, v []byte) bool {
		tx := types.Transaction{Data: EncodeKVOp(op, k, v)}
		return kv.Apply(&tx)
	}
	if !apply(KVSet, "a", []byte("1")) {
		t.Fatal("set rejected")
	}
	if v, ok := kv.Get("a"); !ok || string(v) != "1" {
		t.Fatal("get after set failed")
	}
	if !apply(KVDel, "a", nil) {
		t.Fatal("del rejected")
	}
	if _, ok := kv.Get("a"); ok {
		t.Fatal("key survives delete")
	}
	if !apply(KVNoop, "", nil) {
		t.Fatal("noop rejected")
	}
	bad := types.Transaction{Data: []byte{1}}
	if kv.Apply(&bad) {
		t.Fatal("malformed op accepted")
	}
	// Equality across replicas.
	other := NewKVStore()
	tx := types.Transaction{Data: EncodeKVOp(KVSet, "x", []byte("y"))}
	kv.Apply(&tx)
	other.Apply(&tx)
	if !kv.Equal(other) {
		t.Fatal("identical histories produced unequal stores")
	}
	tx2 := types.Transaction{Data: EncodeKVOp(KVSet, "z", []byte("w"))}
	other.Apply(&tx2)
	if kv.Equal(other) {
		t.Fatal("different stores compare equal")
	}
}

func TestKVOpEncodingRoundtrip(t *testing.T) {
	op, key, val, err := DecodeKVOp(EncodeKVOp(KVSet, "key", []byte("value")))
	if err != nil || op != KVSet || key != "key" || string(val) != "value" {
		t.Fatalf("roundtrip: %v %v %q %q", err, op, key, val)
	}
	if _, _, _, err := DecodeKVOp([]byte{1}); err == nil {
		t.Fatal("truncated op decoded")
	}
	if _, _, _, err := DecodeKVOp(EncodeKVOp(KVSet, "key", nil)[:4]); err == nil {
		t.Fatal("truncated key decoded")
	}
}
