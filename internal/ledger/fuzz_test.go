package ledger

import (
	"bytes"
	"testing"

	"prestigebft/internal/types"
)

// FuzzKVDecode hammers the hand-written length-prefixed KV op parser: any
// input that decodes must re-encode byte-identically (the codec has no
// redundant representations), and no input may panic or over-read.
func FuzzKVDecode(f *testing.F) {
	f.Add(EncodeKVOp(KVSet, "key", []byte("value")))
	f.Add(EncodeKVOp(KVDel, "k", nil))
	f.Add(EncodeKVOp(KVNoop, "", nil))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		op, key, value, err := DecodeKVOp(data)
		if err != nil {
			return
		}
		if got := EncodeKVOp(op, key, value); !bytes.Equal(got, data) {
			t.Errorf("decode/encode not identity:\n in %x\nout %x", data, got)
		}
	})
}

// FuzzKVSnapshotDecode fuzzes the snapshot codec's parser directly: every
// accepted payload must be canonical, i.e. re-encode to the identical bytes
// — the property checkpoint certificates rely on when hashing encodings.
func FuzzKVSnapshotDecode(f *testing.F) {
	kv := NewKVStore()
	kv.data["a"] = []byte("1")
	kv.data["bb"] = nil
	kv.Applied = 7
	f.Add(kv.SnapshotState())
	f.Add(NewKVStore().SnapshotState())
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Add(append(NewKVStore().SnapshotState(), 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		applied, m, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		restored := &KVStore{data: m, Applied: applied}
		if got := restored.SnapshotState(); !bytes.Equal(got, data) {
			t.Errorf("accepted non-canonical snapshot:\n in %x\nout %x", data, got)
		}
	})
}

// FuzzSnapshotRoundTrip drives a KVStore with an op stream derived from the
// fuzz input, then checks encode→restore→encode is lossless in both the map
// contents and the canonical bytes.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte("seed"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		kv := NewKVStore()
		for len(data) >= 2 {
			op := KVOp(data[0]%3 + 1)
			klen := int(data[1]%6) + 1
			data = data[2:]
			if len(data) < klen {
				break
			}
			key := string(data[:klen])
			data = data[klen:]
			var val []byte
			if len(data) > 0 {
				vlen := int(data[0] % 8)
				data = data[1:]
				if vlen > len(data) {
					vlen = len(data)
				}
				val = data[:vlen]
				data = data[vlen:]
			}
			tx := types.Transaction{Data: EncodeKVOp(op, key, val)}
			kv.Apply(&tx)
		}
		enc := kv.SnapshotState()
		restored := NewKVStore()
		if err := restored.RestoreState(enc); err != nil {
			t.Fatalf("restore of own encoding failed: %v", err)
		}
		if !kv.Equal(restored) || kv.Applied != restored.Applied {
			t.Fatal("restore lost state")
		}
		if !bytes.Equal(restored.SnapshotState(), enc) {
			t.Fatal("re-encoding differs")
		}
	})
}
