package ledger

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"prestigebft/internal/crypto"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// captureCheckpoint takes the store's checkpoint basis at its current height
// with the reputation digest filled in.
func captureCheckpoint(t *testing.T, s *Store) (types.CheckpointHeader, []byte) {
	t.Helper()
	h, state, ok := s.CheckpointBasis()
	if !ok {
		t.Fatal("state machine cannot snapshot")
	}
	rd, ok := s.RepDigestUpTo(h.View)
	if !ok {
		t.Fatalf("vc chain trails view %d", h.View)
	}
	h.RepDigest = rd
	return h, state
}

// buildCkptCert signs a header into a 2f+1 checkpoint certificate.
func buildCkptCert(t *testing.T, reg *crypto.Registry, servers map[types.ServerID]*crypto.KeyPair,
	h types.CheckpointHeader) types.CheckpointCert {
	t.Helper()
	coll := quorum.NewCollector(types.QCCheckpoint, 0, h.Seq, h.StateHash(), 3)
	for id := types.ServerID(1); id <= 3; id++ {
		coll.Add(reg, id, servers[id].Sign(coll.Statement()))
	}
	return types.CheckpointCert{Header: h, QC: coll.QC()}
}

// randomTx draws a transaction for the equivalence property: mostly valid KV
// ops over a small key space, with malformed payloads mixed in so the
// status-false path is exercised too.
func randomTx(rng *rand.Rand, ts int64) types.Transaction {
	keys := []string{"a", "bb", "ccc", "d", "e"}
	key := keys[rng.Intn(len(keys))]
	var data []byte
	switch rng.Intn(10) {
	case 0:
		data = EncodeKVOp(KVDel, key, nil)
	case 1:
		data = EncodeKVOp(KVNoop, "", nil)
	case 2:
		data = []byte{byte(rng.Intn(256))} // malformed: ordered, not useful
	default:
		val := make([]byte, rng.Intn(16))
		rng.Read(val)
		data = EncodeKVOp(KVSet, key, val)
	}
	return types.Transaction{Timestamp: ts, Client: 1, Data: data}
}

func TestCompactBeforeBoundsLedger(t *testing.T) {
	reg, servers, _ := crypto.GenerateDeployment(21, 4, 0)
	kv := NewKVStore()
	s := NewStore(4, 1, kv)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		b := buildBlock(t, reg, servers, s.LatestTxBlock(), 1,
			[]types.Transaction{randomTx(rng, int64(i))})
		if err := s.AppendTxBlock(reg, b); err != nil {
			t.Fatal(err)
		}
	}
	repBefore := s.Snapshot(2, int64(s.TxHeight()))

	h4 := s.TxBlock(4)
	header := types.CheckpointHeader{Seq: 4, View: 1, BlockHash: h4.Hash()}
	// Certify at seq 4 with the basis captured live is exercised by the
	// equivalence test; here the compaction arithmetic is the subject.
	if err := s.Certify(buildCkptCert(t, reg, servers, header), nil); err != nil {
		t.Fatalf("certify: %v", err)
	}
	if s.LogBase() != 4 || s.TxHeight() != 6 || s.RetainedTxBlocks() != 3 {
		t.Fatalf("base/height/retained = %d/%d/%d, want 4/6/3", s.LogBase(), s.TxHeight(), s.RetainedTxBlocks())
	}
	if s.TxBlock(3) != nil {
		t.Fatal("compacted block still readable")
	}
	if got := s.TxBlock(4); got == nil || got.Hash() != h4.Hash() {
		t.Fatal("anchor block lost")
	}
	if r := s.TxRange(0, 100); len(r) != 2 || r[0].Header.N != 5 {
		t.Fatalf("post-compaction range = %d blocks starting %v", len(r), r)
	}
	// Appending continues from the retained tail.
	b7 := buildBlock(t, reg, servers, s.LatestTxBlock(), 1, []types.Transaction{randomTx(rng, 99)})
	if err := s.AppendTxBlock(reg, b7); err != nil {
		t.Fatalf("append after compaction: %v", err)
	}
	// Reputation inputs live in the vc chain and must be untouched by tx
	// compaction — recovered replicas would otherwise compute divergent
	// prestige scores.
	repAfter := s.Snapshot(2, int64(6))
	repBefore.TI = repAfter.TI
	if !reflect.DeepEqual(repBefore, repAfter) {
		t.Fatalf("reputation snapshot changed across compaction:\n%+v\n%+v", repBefore, repAfter)
	}
	// A stale certificate (below the base) is a no-op, not a regression.
	old := types.CheckpointHeader{Seq: 2, View: 1}
	if err := s.Certify(buildCkptCert(t, reg, servers, old), nil); err != nil {
		t.Fatalf("stale certify errored: %v", err)
	}
	if s.LogBase() != 4 {
		t.Fatal("stale certificate moved the base")
	}
}

func TestInstallSnapshotRejectsTampering(t *testing.T) {
	reg, servers, _ := crypto.GenerateDeployment(21, 4, 0)
	kv := NewKVStore()
	src := NewStore(4, 1, kv)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 4; i++ {
		b := buildBlock(t, reg, servers, src.LatestTxBlock(), 1,
			[]types.Transaction{randomTx(rng, int64(i))})
		if err := src.AppendTxBlock(reg, b); err != nil {
			t.Fatal(err)
		}
	}
	header, state := captureCheckpoint(t, src)
	preBlocks := src.TxRange(1, 4) // before compaction prunes them
	if err := src.Certify(buildCkptCert(t, reg, servers, header), state); err != nil {
		t.Fatal(err)
	}
	pkg := src.SnapshotPackage()
	if pkg == nil {
		t.Fatal("no snapshot package after certify")
	}

	fresh := func() *Store { return NewStore(4, 1, NewKVStore()) }
	if err := fresh().InstallSnapshot(reg, pkg); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	tampered := *pkg
	tampered.AppState = append([]byte(nil), pkg.AppState...)
	tampered.AppState[0] ^= 1
	if err := fresh().InstallSnapshot(reg, &tampered); err == nil {
		t.Fatal("tampered app state installed")
	}

	wrongAnchor := *pkg
	wrongAnchor.Anchor.Header.PrevHash[0] ^= 1 // address no longer matches the certificate
	if err := fresh().InstallSnapshot(reg, &wrongAnchor); err == nil {
		t.Fatal("mismatched anchor installed")
	}

	thin := *pkg
	thin.Cert.QC.Signers = thin.Cert.QC.Signers[:2]
	thin.Cert.QC.Sigs = thin.Cert.QC.Sigs[:2]
	if err := fresh().InstallSnapshot(reg, &thin); err == nil {
		t.Fatal("under-threshold certificate installed")
	}

	behind := fresh()
	for _, b := range preBlocks {
		b := b
		if err := behind.AppendTxBlock(reg, &b); err != nil {
			t.Fatal(err)
		}
	}
	if err := behind.InstallSnapshot(reg, pkg); err == nil {
		t.Fatal("snapshot at or below own height installed")
	}
}

// TestSnapshotReplayEquivalence is the property test of the checkpoint
// design: for random workloads, restoring from a certified snapshot and
// replaying the tail must land on a state hash byte-identical to a full
// replay from genesis — otherwise recovered replicas would diverge.
func TestSnapshotReplayEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		reg, servers, _ := crypto.GenerateDeployment(21, 4, 0)
		kv := NewKVStore()
		src := NewStore(4, 1, kv)

		nBlocks := 6 + rng.Intn(10)
		ckptAt := types.SeqNum(1 + rng.Intn(nBlocks-1))
		var header types.CheckpointHeader
		var state []byte
		ts := int64(0)
		for i := 0; i < nBlocks; i++ {
			txs := make([]types.Transaction, 1+rng.Intn(4))
			for j := range txs {
				txs[j] = randomTx(rng, ts)
				ts++
			}
			b := buildBlock(t, reg, servers, src.LatestTxBlock(), 1, txs)
			if err := src.AppendTxBlock(reg, b); err != nil {
				t.Fatal(err)
			}
			if src.TxHeight() == ckptAt {
				header, state = captureCheckpoint(t, src)
			}
		}
		cert := buildCkptCert(t, reg, servers, header)

		restored := NewKVStore()
		dst := NewStore(4, 1, restored)
		if err := dst.InstallSnapshot(reg, &types.SnapshotPackage{
			Cert: cert, Anchor: *src.TxBlock(ckptAt), AppState: state,
		}); err != nil {
			t.Fatalf("seed %d: install at %d/%d: %v", seed, ckptAt, nBlocks, err)
		}
		for _, b := range src.TxRange(ckptAt+1, types.SeqNum(nBlocks)) {
			b := b
			if err := dst.AppendTxBlock(reg, &b); err != nil {
				t.Fatalf("seed %d: tail replay at %d: %v", seed, b.Header.N, err)
			}
		}

		fullH, fullState := captureCheckpoint(t, src)
		snapH, snapState := captureCheckpoint(t, dst)
		if fullH.StateHash() != snapH.StateHash() {
			t.Fatalf("seed %d: state hash diverged after snapshot+tail (ckpt at %d of %d):\nfull %+v\nsnap %+v",
				seed, ckptAt, nBlocks, fullH, snapH)
		}
		if !bytes.Equal(fullState, snapState) {
			t.Fatalf("seed %d: encoded states differ", seed)
		}
		if !kv.Equal(restored) || kv.Applied != restored.Applied {
			t.Fatalf("seed %d: application states differ", seed)
		}
	}
}
