package faults

import (
	"testing"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/types"
)

// probe is a trivially scripted replica: it replies to every message with
// one Send and one SendClient, and reports leadership via leader flag.
type probe struct {
	id types.ServerID
}

func (p *probe) ID() types.ServerID { return p.id }
func (p *probe) Init(time.Duration) []consensus.Effect {
	return []consensus.Effect{consensus.SetTimer{Kind: 1, Key: 1, Delay: time.Second}}
}
func (p *probe) OnMessage(time.Duration, consensus.Origin, types.Message) []consensus.Effect {
	reply := &types.OrdReply{From: p.id, Sig: []byte("sig")}
	vote := &types.VoteCP{From: p.id, Sig: []byte("sig")}
	notif := &types.Notif{From: p.id, Sig: []byte("sig")}
	return []consensus.Effect{
		consensus.Send{To: 1, Msg: reply},
		consensus.Broadcast{Msg: vote},
		consensus.SendClient{To: 1, Msg: notif},
	}
}
func (p *probe) OnTimer(time.Duration, consensus.TimerKind, uint64) []consensus.Effect {
	return []consensus.Effect{consensus.Send{To: 2, Msg: &types.CmtReply{From: p.id, Sig: []byte("sig")}}}
}
func (p *probe) OnPuzzleSolved(time.Duration, uint64, []byte, types.Digest) []consensus.Effect {
	return nil
}

func anyMsg() types.Message { return &types.Ord{From: 9, Sig: []byte("s")} }

func TestQuietParticipantDropsEverything(t *testing.T) {
	w := Wrap(&probe{id: 3}, nil, Spec{Mode: Quiet})
	if effs := w.Init(0); effs != nil {
		t.Fatal("quiet participant produced init effects")
	}
	if effs := w.OnMessage(0, consensus.FromServer(1), anyMsg()); effs != nil {
		t.Fatal("quiet participant replied")
	}
	if effs := w.OnTimer(0, 1, 1); effs != nil {
		t.Fatal("quiet participant acted on a timer")
	}
}

func TestEquivocateCorruptsOutbound(t *testing.T) {
	w := Wrap(&probe{id: 3}, nil, Spec{Mode: Equivocate})
	effs := w.OnMessage(0, consensus.FromServer(1), anyMsg())
	if len(effs) == 0 {
		t.Fatal("equivocator must still send (erroneous) replies")
	}
	for _, e := range effs {
		var msg types.Message
		switch ef := e.(type) {
		case consensus.Send:
			msg = ef.Msg
		case consensus.Broadcast:
			msg = ef.Msg
		case consensus.SendClient:
			msg = ef.Msg
		default:
			continue
		}
		if s, ok := msg.(types.Signed); ok {
			if len(s.Signature()) != 0 {
				t.Fatalf("equivocated %s still carries a valid-looking signature", msg.Type())
			}
		}
	}
}

func TestCorruptDoesNotMutateOriginal(t *testing.T) {
	orig := &types.OrdReply{From: 1, Sig: []byte("valid")}
	c := Corrupt(orig).(*types.OrdReply)
	if len(c.Sig) != 0 {
		t.Fatal("corruption did not strip the signature")
	}
	if string(orig.Sig) != "valid" {
		t.Fatal("corruption mutated the original message")
	}
}

func TestRepeatedVCPassesThroughWhenNotLeading(t *testing.T) {
	// With no core node handle, leaderNow is false: the F4 attacker behaves
	// correctly while not leading (its misbehavior is leadership-gated).
	w := Wrap(&probe{id: 3}, nil, Spec{Mode: Quiet, RepeatedVC: true})
	effs := w.OnMessage(0, consensus.FromServer(1), anyMsg())
	if len(effs) == 0 {
		t.Fatal("F4 attacker must participate while not leading")
	}
	for _, e := range effs {
		if s, ok := e.(consensus.Send); ok {
			if signed, k := s.Msg.(types.Signed); k && len(signed.Signature()) == 0 {
				t.Fatal("F4 attacker corrupted output while not leading")
			}
		}
	}
}

func TestSpecIsFaulty(t *testing.T) {
	if (Spec{}).IsFaulty() {
		t.Fatal("zero spec is faulty")
	}
	if !(Spec{Mode: Quiet}).IsFaulty() || !(Spec{RepeatedVC: true}).IsFaulty() {
		t.Fatal("faulty specs not recognized")
	}
}

func TestSetSpecDynamicFaults(t *testing.T) {
	// The paper allows the faulty set to change dynamically; SetSpec flips
	// behavior at runtime.
	w := Wrap(&probe{id: 3}, nil, Spec{Mode: Quiet})
	if effs := w.OnMessage(0, consensus.FromServer(1), anyMsg()); effs != nil {
		t.Fatal("quiet phase leaked traffic")
	}
	w.SetSpec(Spec{Mode: Correct})
	if effs := w.OnMessage(0, consensus.FromServer(1), anyMsg()); len(effs) == 0 {
		t.Fatal("recovered server still silent")
	}
	if w.Spec().Mode != Correct {
		t.Fatal("spec not updated")
	}
}

func TestMessageClassifiers(t *testing.T) {
	if !isReplicationInput(&types.Prop{}) || !isReplicationInput(&types.OrdReply{}) {
		t.Fatal("replication inputs misclassified")
	}
	if isReplicationInput(&types.CampVC{}) || isReplicationInput(&types.VoteCP{}) {
		t.Fatal("view-change inputs classified as replication")
	}
	if !isReplicationOutput(&types.Ord{}) || !isReplicationOutput(&types.Notif{}) {
		t.Fatal("replication outputs misclassified")
	}
	if isReplicationOutput(&types.VcBlockMsg{}) {
		t.Fatal("vcBlock classified as replication output")
	}
}
