// Package faults injects the Byzantine behaviors evaluated in §6.2 of the
// paper:
//
//	F1 — timeout attacks: faulty servers mirror the randomized timeouts of f
//	     correct servers to force simultaneous campaigns (split votes).
//	     Implemented by seeding an attacker's RNG identically to its
//	     victim's (a harness concern; see harness.WithTimeoutAttack).
//	F2 — quiet participants: faulty servers do not respond to any request.
//	F3 — equivocation: faulty servers reply with erroneous messages.
//	F4 — repeated view-change attacks: faulty servers campaign for
//	     leadership whenever they are not the leader, then misbehave once
//	     elected. Strategy S1 attacks at every opportunity; strategy S2
//	     attacks only when the reputation engine would grant compensation.
//
// A Wrapper decorates a consensus.Replica, perturbing its inputs and
// outputs. It never reaches into protocol internals: quietness drops
// traffic, equivocation corrupts outbound authentication, and repeated-VC
// aggression comes from the attacker's node configuration (zero timeout
// jitter, S2 campaign gate), exactly the levers a real attacker controls.
package faults

import (
	"sync"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/core"
	"prestigebft/internal/types"
)

// Mode is the misbehavior a faulty server exhibits when it handles traffic
// (F2/F3). Under F4 the mode applies while the attacker holds leadership.
type Mode uint8

const (
	// Correct disables misbehavior (useful for dynamic fault schedules).
	Correct Mode = iota
	// Quiet drops traffic (F2): as a pure participant the server is
	// indistinguishable from a crash; as an F4 leader it stalls its views.
	Quiet
	// Equivocate corrupts outbound messages (F3): receivers burn bandwidth
	// and verification cycles, then reject.
	Equivocate
)

// String names the mode for scenario descriptions and logs.
func (m Mode) String() string {
	switch m {
	case Correct:
		return "correct"
	case Quiet:
		return "quiet"
	case Equivocate:
		return "equivocate"
	}
	return "unknown"
}

// Spec describes one faulty server.
type Spec struct {
	Mode Mode
	// RepeatedVC enables F4: the server campaigns aggressively and applies
	// Mode only while it is the leader.
	RepeatedVC bool
	// Smart selects strategy S2 (campaign only when compensable). Applies
	// with RepeatedVC. The harness wires it through core.Config.CampaignGate.
	Smart bool
	// HashRateScale scales the attacker's proof-of-work speed; colluding
	// attackers performing joint computation get the collusion size f
	// (§6.2). Zero means 1.
	HashRateScale float64
}

// IsFaulty reports whether the spec describes any misbehavior.
func (s Spec) IsFaulty() bool { return s.Mode != Correct || s.RepeatedVC }

// String renders the spec in the paper's fault taxonomy (F2/F3/F4, S1/S2).
func (s Spec) String() string {
	if !s.IsFaulty() {
		return "correct"
	}
	out := s.Mode.String()
	if s.RepeatedVC {
		strategy := "S1"
		if s.Smart {
			strategy = "S2"
		}
		out += "+repeatedVC(" + strategy + ")"
	}
	return out
}

// Wrapper decorates a replica with Byzantine behavior. The spec may be
// swapped concurrently with event processing (a live chaos harness calls
// SetSpec from its injection goroutine while the runtime's event loop is
// mid-message), so access goes through a mutex; the simulator's
// single-threaded calls pay one uncontended lock.
type Wrapper struct {
	inner consensus.Replica
	node  *core.Node // non-nil when inner is a PrestigeBFT node (state introspection)

	mu   sync.Mutex
	spec Spec
}

// Wrap decorates replica with the given fault spec. node may be nil for
// baseline replicas; it enables leader-state introspection for F4.
func Wrap(replica consensus.Replica, node *core.Node, spec Spec) *Wrapper {
	return &Wrapper{inner: replica, node: node, spec: spec}
}

// SetSpec swaps the fault spec at runtime (dynamic fault schedules: the
// paper allows the faulty set to change as long as |faulty| ≤ f).
func (w *Wrapper) SetSpec(spec Spec) {
	w.mu.Lock()
	w.spec = spec
	w.mu.Unlock()
}

// Spec returns the current fault spec.
func (w *Wrapper) Spec() Spec {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.spec
}

// Inner returns the wrapped replica.
func (w *Wrapper) Inner() consensus.Replica { return w.inner }

// ID implements consensus.Replica.
func (w *Wrapper) ID() types.ServerID { return w.inner.ID() }

// leaderNow reports whether the wrapped node currently holds leadership.
func (w *Wrapper) leaderNow() bool {
	return w.node != nil && w.node.State() == core.Leader
}

// misbehaving reports whether Mode applies right now: always for pure
// F2/F3 participants, only while leading for F4 attackers.
func (w *Wrapper) misbehaving(spec Spec) bool {
	if spec.Mode == Correct {
		return false
	}
	if spec.RepeatedVC {
		return w.leaderNow()
	}
	return true
}

// Init implements consensus.Replica.
func (w *Wrapper) Init(now time.Duration) []consensus.Effect {
	spec := w.Spec()
	if spec.Mode == Quiet && !spec.RepeatedVC {
		return nil
	}
	return w.filter(spec, w.inner.Init(now))
}

// OnMessage implements consensus.Replica.
func (w *Wrapper) OnMessage(now time.Duration, from consensus.Origin, msg types.Message) []consensus.Effect {
	spec := w.Spec()
	if spec.Mode == Quiet && !spec.RepeatedVC {
		return nil // F2 participant: total silence
	}
	if spec.RepeatedVC && spec.Mode == Quiet && w.leaderNow() && isReplicationInput(msg) {
		// F4+F2 leader: ignore replication traffic so no progress is made,
		// while still processing view-change traffic (it wants to keep
		// fighting for leadership and must observe its own dethroning).
		return nil
	}
	return w.filter(spec, w.inner.OnMessage(now, from, msg))
}

// OnTimer implements consensus.Replica.
func (w *Wrapper) OnTimer(now time.Duration, kind consensus.TimerKind, key uint64) []consensus.Effect {
	spec := w.Spec()
	if spec.Mode == Quiet && !spec.RepeatedVC {
		return nil
	}
	return w.filter(spec, w.inner.OnTimer(now, kind, key))
}

// OnPuzzleSolved implements consensus.Replica.
func (w *Wrapper) OnPuzzleSolved(now time.Duration, token uint64, nonce []byte, hr types.Digest) []consensus.Effect {
	spec := w.Spec()
	if spec.Mode == Quiet && !spec.RepeatedVC {
		return nil
	}
	return w.filter(spec, w.inner.OnPuzzleSolved(now, token, nonce, hr))
}

// filter perturbs outbound effects per the active misbehavior.
func (w *Wrapper) filter(spec Spec, effs []consensus.Effect) []consensus.Effect {
	if !w.misbehaving(spec) {
		return effs
	}
	out := make([]consensus.Effect, 0, len(effs))
	for _, e := range effs {
		switch ef := e.(type) {
		case consensus.Send:
			if m := perturb(spec, ef.Msg); m != nil {
				out = append(out, consensus.Send{To: ef.To, Msg: m})
			}
		case consensus.Broadcast:
			if m := perturb(spec, ef.Msg); m != nil {
				out = append(out, consensus.Broadcast{Msg: m})
			}
		case consensus.SendClient:
			if m := perturb(spec, ef.Msg); m != nil {
				out = append(out, consensus.SendClient{To: ef.To, Msg: m})
			}
		default:
			out = append(out, e)
		}
	}
	return out
}

// perturb applies Mode to one outbound message. Quiet drops replication
// output; Equivocate corrupts it (receivers reject after paying bandwidth
// and verification cost). View-change messages pass through under F4 —
// the attacker follows the VC protocol faithfully because that is its
// attack surface.
func perturb(spec Spec, msg types.Message) types.Message {
	replication := isReplicationOutput(msg)
	if spec.RepeatedVC && !replication {
		return msg
	}
	switch spec.Mode {
	case Quiet:
		return nil
	case Equivocate:
		return Corrupt(msg)
	}
	return msg
}

// isReplicationInput classifies inbound messages an F4+F2 leader ignores.
func isReplicationInput(msg types.Message) bool {
	switch msg.(type) {
	case *types.Prop, *types.Compt, *types.OrdReply, *types.CmtReply:
		return true
	}
	return false
}

// isReplicationOutput classifies outbound messages Mode applies to under F4.
func isReplicationOutput(msg types.Message) bool {
	switch msg.(type) {
	case *types.Ord, *types.Cmt, *types.Adopt, *types.TxBlockMsg, *types.Notif,
		*types.OrdReply, *types.CmtReply:
		return true
	}
	return false
}

// Corrupt returns a copy of msg with its authentication destroyed: the
// erroneous replies of attack F3. Receivers spend bandwidth and
// verification work before rejecting it.
func Corrupt(msg types.Message) types.Message {
	switch m := msg.(type) {
	case *types.Ord:
		c := *m
		c.Sig = nil
		return &c
	case *types.OrdReply:
		c := *m
		c.Sig = nil
		return &c
	case *types.Cmt:
		c := *m
		c.Sig = nil
		return &c
	case *types.Adopt:
		c := *m
		c.Sig = nil
		return &c
	case *types.CmtReply:
		c := *m
		c.Sig = nil
		return &c
	case *types.TxBlockMsg:
		c := *m
		c.Sig = nil
		return &c
	case *types.Notif:
		c := *m
		c.Sig = nil
		return &c
	case *types.VoteCP:
		c := *m
		c.Sig = nil
		return &c
	case *types.ReVC:
		c := *m
		c.Sig = nil
		return &c
	case *types.VcYes:
		c := *m
		c.Sig = nil
		return &c
	}
	return msg
}
