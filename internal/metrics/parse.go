package metrics

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a parsed exposition document: sample keys in canonical
// `name{a="b",c="d"}` form (labels sorted by name) mapped to values. It is
// what liveharness hands the scenario engine after scraping a replica, and
// what the soak gate diffs across time.
type Snapshot map[string]float64

// SampleKey renders the canonical key for a metric name and label pairs
// given as alternating name, value strings.
func SampleKey(name string, labelPairs ...string) string {
	if len(labelPairs)%2 != 0 {
		panic("metrics: SampleKey wants alternating label name, value pairs")
	}
	if len(labelPairs) == 0 {
		return name
	}
	names := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	return name + "{" + canonicalLabels(names, values) + "}"
}

// Value looks up one sample; ok reports whether it exists.
func (s Snapshot) Value(name string, labelPairs ...string) (float64, bool) {
	v, ok := s[SampleKey(name, labelPairs...)]
	return v, ok
}

// Sum adds every sample of the named family across all label sets, so
// callers can aggregate e.g. per-peer counters without enumerating peers.
func (s Snapshot) Sum(name string) float64 {
	total := 0.0
	for k, v := range s {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// Keys returns the sample keys in sorted order (for deterministic dumps).
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Parse reads a Prometheus text exposition document into a Snapshot. It
// accepts the subset this package emits (and that real Prometheus servers
// emit for counters/gauges/histograms): comment lines, blank lines, and
// `name[{labels}] value [timestamp]` sample lines.
func Parse(doc []byte) (Snapshot, error) {
	snap := make(Snapshot)
	sc := bufio.NewScanner(strings.NewReader(string(doc)))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, err := parseSampleKey(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, fmt.Errorf("metrics: line %d: missing value", lineNo)
		}
		v, err := parseFloat(fields[0])
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: bad value %q", lineNo, fields[0])
		}
		snap[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSampleKey splits one sample line into its canonical key and the
// remainder (value and optional timestamp), re-sorting labels so keys from
// any well-formed producer compare equal.
func parseSampleKey(line string) (key, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return "", "", fmt.Errorf("malformed sample %q", line)
		}
		return line[:sp], line[sp:], nil
	}
	name := line[:brace]
	names, values, rest, err := parseLabels(line[brace+1:])
	if err != nil {
		return "", "", err
	}
	return name + "{" + canonicalLabels(names, values) + "}", rest, nil
}

// parseLabels consumes `a="b",c="d"}` from s, returning the pairs and what
// follows the closing brace.
func parseLabels(s string) (names, values []string, rest string, err error) {
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return names, values, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, nil, "", fmt.Errorf("malformed labels near %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, nil, "", fmt.Errorf("label %q value not quoted", name)
		}
		value, remain, err := unquoteLabelValue(s[1:])
		if err != nil {
			return nil, nil, "", err
		}
		names = append(names, name)
		values = append(values, value)
		s = strings.TrimLeft(remain, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

// unquoteLabelValue reads an escaped label value up to its closing quote.
func unquoteLabelValue(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape in label value")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				// Per spec, unknown escapes pass the character through.
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}
