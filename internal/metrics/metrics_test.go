package metrics

import (
	"bytes"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("commits_total", "Committed blocks.")
	c.With().Add(3)
	c.With().Inc()
	want := "# HELP commits_total Committed blocks.\n" +
		"# TYPE commits_total counter\n" +
		"commits_total 4\n"
	if got := string(r.Gather()); got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("weird", `has "quotes", back\slashes and
newlines in help`, "path")
	g.With("a\\b\"c\nd").Set(1)
	out := string(r.Gather())
	if !strings.Contains(out, `# HELP weird has "quotes", back\\slashes and\nnewlines in help`) {
		t.Fatalf("HELP escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `weird{path="a\\b\"c\nd"} 1`) {
		t.Fatalf("label value escaping wrong:\n%s", out)
	}
	// Round-trip: the parser must recover the original value.
	snap, err := Parse([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("weird", "path", "a\\b\"c\nd"); !ok || v != 1 {
		t.Fatalf("round-trip lookup failed: v=%v ok=%v keys=%v", v, ok, snap.Keys())
	}
}

func TestLabelOrderingSortedAndStable(t *testing.T) {
	r := NewRegistry()
	// Registration order z,a — exposition must sort by label name.
	c := r.NewCounter("sends_total", "Sends.", "zone", "addr")
	c.With("west", "10.0.0.1").Inc()
	c.With("east", "10.0.0.2").Inc()
	out1 := string(r.Gather())
	if !strings.Contains(out1, `sends_total{addr="10.0.0.1",zone="west"} 1`) {
		t.Fatalf("labels not sorted by name:\n%s", out1)
	}
	// Children themselves sort by canonical rendering and stay stable
	// across gathers.
	i1 := strings.Index(out1, "10.0.0.1")
	i2 := strings.Index(out1, "10.0.0.2")
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Fatalf("children not in sorted order:\n%s", out1)
	}
	if out2 := string(r.Gather()); out2 != out1 {
		t.Fatalf("gather not deterministic:\n%s\nvs\n%s", out1, out2)
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("zzz", "Last.").With().Set(1)
	r.NewGauge("aaa", "First.").With().Set(1)
	out := string(r.Gather())
	if strings.Index(out, "aaa") > strings.Index(out, "zzz") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.With().Observe(v)
	}
	out := string(r.Gather())
	// Cumulative: ≤0.01 → 1, ≤0.1 → 3, ≤1 → 4, +Inf → 5.
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 5.605`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	snap, err := Parse([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.Value("latency_seconds_bucket", "le", "0.1"); v != 3 {
		t.Fatalf("parsed le=0.1 bucket = %v, want 3", v)
	}
	if v, _ := snap.Value("latency_seconds_count"); v != 5 {
		t.Fatalf("parsed count = %v, want 5", v)
	}
}

func TestHistogramLabeled(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("rt_seconds", "RT.", []float64{1}, "op")
	h.With("commit").Observe(0.5)
	h.With("commit").Observe(2)
	out := string(r.Gather())
	for _, want := range []string{
		`rt_seconds_bucket{le="1",op="commit"} 1`,
		`rt_seconds_bucket{le="+Inf",op="commit"} 2`,
		`rt_seconds_sum{op="commit"} 2.5`,
		`rt_seconds_count{op="commit"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "X.", "id")
	b := r.NewCounter("x_total", "X.", "id")
	a.With("1").Add(2)
	b.With("1").Add(3)
	if v := a.With("1").Value(); v != 5 {
		t.Fatalf("re-registration did not share state: %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.NewGauge("x_total", "X.", "id")
}

func TestCounterRejectsDecrease(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "C.")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.With().Add(-1)
}

func TestSnapshotSum(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("sent_total", "Sent.", "peer")
	c.With("1").Add(10)
	c.With("2").Add(7)
	snap, err := Parse(r.Gather())
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Sum("sent_total"); got != 17 {
		t.Fatalf("Sum = %v, want 17", got)
	}
	// Sum must not swallow other families sharing a prefix.
	r.NewCounter("sent_total_bytes", "Bytes.").With().Add(99)
	snap, _ = Parse(r.Gather())
	if got := snap.Sum("sent_total"); got != 17 {
		t.Fatalf("Sum matched prefix family: %v, want 17", got)
	}
}

func TestSpecialValues(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("g", "G.")
	g.With().Set(math.Inf(1))
	snap, err := Parse(r.Gather())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.Value("g"); !math.IsInf(v, 1) {
		t.Fatalf("+Inf round-trip got %v", v)
	}
}

func TestOnGatherReplace(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("hooked", "H.")
	r.OnGather("k", func() { g.With().Set(1) })
	r.OnGather("k", func() { g.With().Set(2) })
	r.Gather()
	if v := g.With().Value(); v != 2 {
		t.Fatalf("hook not replaced: %v", v)
	}
}

func TestAdminServer(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("served_total", "S.").With().Add(4)
	draining := false
	adm, err := ServeAdmin("127.0.0.1:0", r, func() Health {
		return Health{Ok: !draining, Draining: draining}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()

	resp, err := http.Get("http://" + adm.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	snap, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.Value("served_total"); v != 4 {
		t.Fatalf("scraped served_total = %v", v)
	}

	hr, err := http.Get("http://" + adm.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", hr.StatusCode)
	}
	draining = true
	hr, err = http.Get("http://" + adm.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", hr.StatusCode)
	}
}

func TestProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	snap, err := Parse(r.Gather())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("go_goroutines"); !ok || v < 1 {
		t.Fatalf("go_goroutines = %v ok=%v", v, ok)
	}
	if v, ok := snap.Value("go_memstats_heap_inuse_bytes"); !ok || v <= 0 {
		t.Fatalf("heap_inuse = %v ok=%v", v, ok)
	}
}
