// Package metrics is a dependency-free Prometheus client: a registry of
// counters, gauges, and histograms (all label-aware) that renders the
// Prometheus text exposition format (version 0.0.4) and parses it back.
// The container that builds this repo has no network, so the exposition
// format is hand-rolled on the standard library, the same way internal/lint
// reimplements go/analysis — the on-wire contract is the spec, not a
// vendored client.
//
// The output is deterministic: families sort by name, children by their
// canonical (sorted) label rendering, so two gathers of the same state are
// byte-identical — which is what lets tests assert on scrapes and lets CI
// diff metric snapshots run over run.
//
// Registration is idempotent: registering a name that already exists with
// the same type, help, and label names returns the existing instrument
// (a runtime re-instrumenting the same registry across crash/respawn cycles
// keeps its counters), while a conflicting re-registration panics — that is
// a programming error, not a runtime condition.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is the metric family type.
type Kind uint8

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota + 1
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric family with its children keyed by canonical
// label rendering.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string  // registration order
	buckets    []float64 // histograms only; ascending, +Inf implicit
	children   map[string]*child
}

// child is one (labelset, value) pair. Histogram children carry bucket
// counts instead of a scalar.
type child struct {
	labels string   // canonical sorted rendering, "" for the unlabeled child
	values []string // label values in registration order (for le merging)

	value float64 // counter/gauge

	bucketCounts []uint64 // histogram: observations in (buckets[i-1], buckets[i]]
	sum          float64
	count        uint64
}

// Registry holds metric families and gather hooks.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	gatherKeys []string // hook invocation order (registration order)
	gather     map[string]func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		gather:   make(map[string]func()),
	}
}

// OnGather registers fn to run at the start of every Gather/WriteTo, so
// collect-time mirrors (transport counters, process stats) can refresh
// their instruments right before exposition. Re-registering a key replaces
// the previous hook — a harness that replaces a transport across a
// crash/respawn cycle re-registers under the same key instead of leaking a
// hook that reads the dead object.
func (r *Registry) OnGather(key string, fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gather[key]; !ok {
		r.gatherKeys = append(r.gatherKeys, key)
	}
	r.gather[key] = fn
}

// validName matches the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// register creates or returns the family for name, panicking on any
// conflicting re-registration.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labelNames []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) || strings.HasPrefix(l, "__") || l == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.kind != kind || f.help != help || !equalStrings(f.labelNames, labelNames) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		children:   make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing metric family. Use With to select a
// labeled child; a label-free family's single series is With() with no
// arguments.
type Counter struct {
	r *Registry
	f *family
}

// Gauge is a settable metric family.
type Gauge struct {
	r *Registry
	f *family
}

// Histogram is a bucketed-distribution metric family.
type Histogram struct {
	r *Registry
	f *family
}

// NewCounter registers (or returns) a counter family.
func (r *Registry) NewCounter(name, help string, labelNames ...string) *Counter {
	return &Counter{r, r.register(name, help, KindCounter, nil, labelNames)}
}

// NewGauge registers (or returns) a gauge family.
func (r *Registry) NewGauge(name, help string, labelNames ...string) *Gauge {
	return &Gauge{r, r.register(name, help, KindGauge, nil, labelNames)}
}

// NewHistogram registers (or returns) a histogram family. Buckets are the
// ascending upper bounds; the +Inf bucket is implicit.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labelNames ...string) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly ascending", name))
		}
	}
	return &Histogram{r, r.register(name, help, KindHistogram, buckets, labelNames)}
}

// canonicalLabels renders labelNames/values as the child key and exposition
// fragment: pairs sorted by label name, values escaped.
func canonicalLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return names[idx[a]] < names[idx[b]] })
	var b strings.Builder
	for n, i := range idx {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(names[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// child locates or creates the child for the given label values (one per
// registered label name, in registration order).
func (f *family) child(reg *Registry, values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %q expects %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := canonicalLabels(f.labelNames, values)
	reg.mu.Lock()
	defer reg.mu.Unlock()
	c := f.children[key]
	if c == nil {
		c = &child{labels: key, values: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			c.bucketCounts = make([]uint64, len(f.buckets))
		}
		f.children[key] = c
	}
	return c
}

// CounterChild is one labeled counter series.
type CounterChild struct {
	r *Registry
	c *child
}

// With selects the labeled series for the given label values (in
// registration order).
func (m *Counter) With(values ...string) *CounterChild {
	return &CounterChild{m.r, m.f.child(m.r, values)}
}

// Add increments the counter child by v (must be ≥ 0).
func (cc *CounterChild) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decrease")
	}
	cc.r.mu.Lock()
	cc.c.value += v
	cc.r.mu.Unlock()
}

// Inc increments the counter child by one.
func (cc *CounterChild) Inc() { cc.Add(1) }

// Mirror sets the counter child's absolute value from an external monotonic
// source (a collect-time hook copying e.g. a transport's atomic counters).
// The source, not this registry, owns monotonicity.
func (cc *CounterChild) Mirror(v float64) {
	cc.r.mu.Lock()
	cc.c.value = v
	cc.r.mu.Unlock()
}

// Value reads the child's current value.
func (cc *CounterChild) Value() float64 {
	cc.r.mu.Lock()
	defer cc.r.mu.Unlock()
	return cc.c.value
}

// GaugeChild is one labeled gauge series.
type GaugeChild struct {
	r *Registry
	c *child
}

// With selects the labeled series for the given label values.
func (m *Gauge) With(values ...string) *GaugeChild {
	return &GaugeChild{m.r, m.f.child(m.r, values)}
}

// Set stores v.
func (gc *GaugeChild) Set(v float64) {
	gc.r.mu.Lock()
	gc.c.value = v
	gc.r.mu.Unlock()
}

// Add adjusts the gauge by delta (negative allowed).
func (gc *GaugeChild) Add(delta float64) {
	gc.r.mu.Lock()
	gc.c.value += delta
	gc.r.mu.Unlock()
}

// Value reads the child's current value.
func (gc *GaugeChild) Value() float64 {
	gc.r.mu.Lock()
	defer gc.r.mu.Unlock()
	return gc.c.value
}

// HistogramChild is one labeled histogram series.
type HistogramChild struct {
	r *Registry
	f *family
	c *child
}

// With selects the labeled series for the given label values.
func (m *Histogram) With(values ...string) *HistogramChild {
	return &HistogramChild{m.r, m.f, m.f.child(m.r, values)}
}

// Observe records one observation.
func (hc *HistogramChild) Observe(v float64) {
	hc.r.mu.Lock()
	defer hc.r.mu.Unlock()
	for i, ub := range hc.f.buckets {
		if v <= ub {
			hc.c.bucketCounts[i]++
			break
		}
	}
	hc.c.sum += v
	hc.c.count++
}

// Count reads the child's observation count.
func (hc *HistogramChild) Count() uint64 {
	hc.r.mu.Lock()
	defer hc.r.mu.Unlock()
	return hc.c.count
}

// escapeLabelValue applies the exposition-format label escaping: backslash,
// double quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp applies HELP-line escaping: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus does.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// bucketLabels renders a histogram child's labels with the "le" bound
// merged into canonical (sorted) position, so bucket sample keys match what
// SampleKey("...", labels..., "le", bound) produces.
func bucketLabels(f *family, c *child, bound string) string {
	names := append(append([]string(nil), f.labelNames...), "le")
	values := append(append([]string(nil), c.values...), bound)
	return canonicalLabels(names, values)
}

// Gather runs the collect hooks and renders the full exposition document.
func (r *Registry) Gather() []byte {
	r.mu.Lock()
	keys := append([]string(nil), r.gatherKeys...)
	hooks := make([]func(), 0, len(keys))
	for _, k := range keys {
		hooks = append(hooks, r.gather[k])
	}
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	famNames := make([]string, 0, len(r.families))
	for name := range r.families {
		famNames = append(famNames, name)
	}
	sort.Strings(famNames)

	var b strings.Builder
	for _, name := range famNames {
		f := r.families[name]
		if len(f.children) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		childKeys := make([]string, 0, len(f.children))
		for k := range f.children {
			childKeys = append(childKeys, k)
		}
		sort.Strings(childKeys)
		for _, k := range childKeys {
			c := f.children[k]
			switch f.kind {
			case KindHistogram:
				cum := uint64(0)
				for i, ub := range f.buckets {
					cum += c.bucketCounts[i]
					writeSample(&b, f.name+"_bucket", bucketLabels(f, c, formatValue(ub)), float64(cum))
				}
				writeSample(&b, f.name+"_bucket", bucketLabels(f, c, "+Inf"), float64(c.count))
				writeSample(&b, f.name+"_sum", c.labels, c.sum)
				writeSample(&b, f.name+"_count", c.labels, float64(c.count))
			default:
				writeSample(&b, f.name, c.labels, c.value)
			}
		}
	}
	return []byte(b.String())
}

// writeSample renders one exposition line.
func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// WriteTo renders the exposition document to w.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(r.Gather())
	return int64(n), err
}
