package metrics

import "runtime"

// RegisterProcessMetrics exports the Go runtime stats the soak gate watches:
// goroutine count (leak detection across churn) and heap occupancy (memory
// flatness, i.e. checkpoint compaction actually releasing history). Values
// refresh via an OnGather hook, so every scrape sees the current process
// state.
func RegisterProcessMetrics(r *Registry) {
	goroutines := r.NewGauge("go_goroutines",
		"Number of goroutines that currently exist.").With()
	heapInuse := r.NewGauge("go_memstats_heap_inuse_bytes",
		"Bytes in in-use heap spans.").With()
	heapAlloc := r.NewGauge("go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.").With()
	totalAlloc := r.NewCounter("go_memstats_alloc_bytes_total",
		"Cumulative bytes allocated for heap objects.").With()
	r.OnGather("process", func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapInuse.Set(float64(ms.HeapInuse))
		heapAlloc.Set(float64(ms.HeapAlloc))
		totalAlloc.Mirror(float64(ms.TotalAlloc))
	})
}
