package metrics

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Handler serves the registry's exposition document, the body Prometheus
// (or liveharness's scraper) fetches from /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(r.Gather())
	})
}

// Health is the /healthz document. Ok folds every component check together;
// the detail map names each check so operators (and the live harness) can
// see which one is red.
type Health struct {
	Ok       bool              `json:"ok"`
	Draining bool              `json:"draining,omitempty"`
	Detail   map[string]string `json:"detail,omitempty"`
}

// HealthFunc produces the current health snapshot on each request.
type HealthFunc func() Health

// HealthHandler serves the health snapshot as JSON: 200 when Ok, 503
// otherwise (including while draining), so load-balancer-style probes work
// with no body parsing.
func HealthHandler(fn HealthFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := fn()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
}

// AdminServer is the /metrics + /healthz HTTP listener a replica exposes on
// its admin port.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin binds addr (e.g. "127.0.0.1:0") and serves /metrics from reg
// and /healthz from health in a background goroutine. Callers own Close.
func ServeAdmin(addr string, reg *Registry, health HealthFunc) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/healthz", HealthHandler(health))
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &AdminServer{ln: ln, srv: srv}, nil
}

// Addr is the bound listen address (resolves ":0" to the real port).
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (a *AdminServer) Close() error { return a.srv.Close() }
