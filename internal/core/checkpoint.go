package core

import (
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// --- Certified checkpoints and log compaction (DESIGN.md §10) ----------------
//
// Every Config.CheckpointInterval committed sequence numbers, a replica
// captures its ledger state — application state, reputation inputs, and the
// chain anchor — into a CheckpointHeader, broadcasts a signed CkptVote over
// the header's state hash, and collects matching votes. 2f+1 identical
// hashes assemble ckpt_QC; the resulting certificate becomes the new log
// base: the ledger prunes every block below it (ledger.Store.Certify), and
// replicas stuck below the base are served the certified snapshot instead of
// replayed history (sync.go). Checkpoints are pure hygiene on top of the
// replication protocol: they produce no ordering decisions, so a replica
// that misses a round simply keeps more log until the next one closes.

// ckptRound is one open checkpoint vote collection.
type ckptRound struct {
	header types.CheckpointHeader
	state  []byte // encoded application state captured at the boundary
	coll   *quorum.Collector
	vote   *types.CkptVote // our own vote, for warm-reboot re-broadcast
}

// ckptBasis is a boundary capture awaiting the vc chain: the reputation
// digest needs the vcBlock of the anchor's view, which a sync-fed replica
// may not hold yet.
type ckptBasis struct {
	header types.CheckpointHeader
	state  []byte
}

// maybeCheckpoint votes for a checkpoint when the committed height sits
// exactly on an interval boundary. It must run after every single-block
// append (each commit path calls it) because the application state is
// captured live — one block later the boundary state is gone.
func (n *Node) maybeCheckpoint() []consensus.Effect {
	ival := types.SeqNum(n.cfg.CheckpointInterval)
	if ival <= 0 {
		return nil
	}
	h := n.store.TxHeight()
	if h == 0 || h%ival != 0 || h <= n.ckptVoted || h <= n.store.LogBase() {
		return nil
	}
	header, state, ok := n.store.CheckpointBasis()
	if !ok {
		return nil // state machine cannot snapshot; checkpointing is inert
	}
	n.ckptVoted = h
	rd, ok := n.store.RepDigestUpTo(header.View)
	if !ok {
		// Our vc chain trails the block's view (sync-fed commit): keep the
		// captured state and finish the header once the vcBlock arrives.
		n.ckptDeferred = &ckptBasis{header: header, state: state}
		return nil
	}
	header.RepDigest = rd
	return n.openCkptRound(header, state)
}

// retryDeferredCheckpoint completes a deferred boundary capture after the vc
// chain advanced (view installation or vc sync).
func (n *Node) retryDeferredCheckpoint() []consensus.Effect {
	if n.ckptDeferred == nil {
		return nil
	}
	rd, ok := n.store.RepDigestUpTo(n.ckptDeferred.header.View)
	if !ok {
		return nil
	}
	b := n.ckptDeferred
	n.ckptDeferred = nil
	if b.header.Seq <= n.store.LogBase() {
		return nil // a later certificate already moved the base past it
	}
	b.header.RepDigest = rd
	return n.openCkptRound(b.header, b.state)
}

// openCkptRound starts collecting votes for a completed header: sign and
// broadcast our vote, then replay any stashed early votes from peers that
// crossed the boundary before us.
func (n *Node) openCkptRound(header types.CheckpointHeader, state []byte) []consensus.Effect {
	coll := quorum.NewCollector(types.QCCheckpoint, 0, header.Seq, header.StateHash(), n.quorumSize())
	vote := &types.CkptVote{From: n.cfg.ID, Seq: header.Seq, StateHash: header.StateHash()}
	vote.Sig = n.sign(vote.SigningBytes())
	round := &ckptRound{header: header, state: state, coll: coll, vote: vote}
	n.ckptRounds[header.Seq] = round
	coll.Add(n.cfg.Registry, n.cfg.ID, n.sign(coll.Statement()))
	effs := []consensus.Effect{consensus.Broadcast{Msg: vote}}
	stash := n.ckptStash[header.Seq]
	delete(n.ckptStash, header.Seq)
	for _, v := range stash {
		effs = append(effs, n.addCkptVote(round, v)...)
	}
	return effs
}

// onCkptVote routes a peer's checkpoint vote: into the open round for its
// seq, or into the bounded early-vote stash when this replica has not
// reached the boundary yet (routine under pipelining — peers commit the
// boundary block a round trip apart).
func (n *Node) onCkptVote(now time.Duration, m *types.CkptVote) []consensus.Effect {
	if n.cfg.CheckpointInterval <= 0 || m.From == n.cfg.ID {
		return nil
	}
	if m.Seq == 0 || m.Seq%types.SeqNum(n.cfg.CheckpointInterval) != 0 {
		return nil // not an interval boundary: no round can ever open for it
	}
	if m.Seq <= n.store.LogBase() {
		return nil // the base already moved past this round
	}
	if round, ok := n.ckptRounds[m.Seq]; ok {
		return n.addCkptVote(round, m)
	}
	// Early vote. Verify before stashing so the stash can't be flooded with
	// garbage, and cap it at one vote per server.
	horizon := n.store.TxHeight() + types.SeqNum(4*n.cfg.CheckpointInterval)
	if m.Seq > horizon {
		return nil
	}
	for _, v := range n.ckptStash[m.Seq] {
		if v.From == m.From {
			return nil
		}
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	n.ckptStash[m.Seq] = append(n.ckptStash[m.Seq], m)
	return nil
}

// addCkptVote folds one vote into an open round; the 2f+1st matching vote
// assembles the certificate and compacts the log.
func (n *Node) addCkptVote(round *ckptRound, m *types.CkptVote) []consensus.Effect {
	if m.StateHash != round.vote.StateHash {
		return nil // divergent hash; Add would reject the signature anyway
	}
	if !round.coll.Add(n.cfg.Registry, m.From, m.Sig) {
		return nil
	}
	cert := types.CheckpointCert{Header: round.header, QC: round.coll.QC()}
	return n.applyCheckpoint(cert, round.state)
}

// applyCheckpoint installs an assembled certificate: the ledger prunes below
// the checkpoint and the node drops bookkeeping for the compacted prefix.
func (n *Node) applyCheckpoint(cert types.CheckpointCert, state []byte) []consensus.Effect {
	if err := n.store.Certify(cert, state); err != nil {
		return nil
	}
	n.pruneBelowBase()
	return []consensus.Effect{n.trace(consensus.TraceCheckpoint, n.View(), int64(cert.Header.Seq))}
}

// pruneBelowBase drops node bookkeeping that refers to the compacted prefix:
// closed/obsolete checkpoint rounds and the committed-transaction dedup
// entries of pruned blocks. Pruning committedTx is what makes long-running
// replicas bounded in memory; the trade — a duplicate of a transaction
// committed before the base would be re-ordered rather than re-notified —
// matches classic BFT checkpoint designs, where the reply cache is pruned at
// the low-water mark too (correct clients stop re-sending on f+1 notifies).
func (n *Node) pruneBelowBase() {
	base := n.store.LogBase()
	for seq := range n.ckptRounds {
		if seq <= base {
			delete(n.ckptRounds, seq)
		}
	}
	for seq := range n.ckptStash {
		if seq <= base {
			delete(n.ckptStash, seq)
		}
	}
	if n.ckptDeferred != nil && n.ckptDeferred.header.Seq <= base {
		n.ckptDeferred = nil
	}
	if n.ckptVoted < base {
		n.ckptVoted = base
	}
	for d, seq := range n.committedTx {
		if seq <= base {
			delete(n.committedTx, d)
		}
	}
}

// afterSnapshotInstall resets bookkeeping after the ledger jumped to a
// certified snapshot: everything this replica knew below the new base is
// obsolete (prepared slots, ordering votes, stashed proposals, dedup
// entries), and the checkpoint subsystem restarts from the installed
// certificate — exactly the recovery semantics of a replica rebooting from
// its latest checkpoint.
func (n *Node) afterSnapshotInstall() {
	base := n.store.LogBase()
	for seq := range n.prepared {
		if seq <= base {
			delete(n.prepared, seq)
		}
	}
	for seq := range n.ordVoted {
		if seq <= base {
			delete(n.ordVoted, seq)
		}
	}
	for seq := range n.ordStash {
		if seq <= base {
			delete(n.ordStash, seq)
		}
	}
	n.pruneBelowBase()
}

// sortedCkptRounds returns the open rounds' seqs in ascending order, for
// deterministic effect streams.
func (n *Node) sortedCkptRounds() []types.SeqNum {
	return types.SortedKeys(n.ckptRounds)
}
