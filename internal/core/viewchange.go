package core

import (
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/crypto"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// timerKeyFromDigest packs a digest prefix into a timer key.
func timerKeyFromDigest(d types.Digest) uint64 {
	return uint64(d[0])<<56 | uint64(d[1])<<48 | uint64(d[2])<<40 | uint64(d[3])<<32 |
		uint64(d[4])<<24 | uint64(d[5])<<16 | uint64(d[6])<<8 | uint64(d[7])
}

// --- Complaints and failure detection (§4.2.1, Algo. 2 lines 1-14) ----------

// onCompt handles a client complaint: verify, relay to the leader, and wait
// for the transaction to commit before suspecting the leader.
func (n *Node) onCompt(now time.Duration, from consensus.Origin, m *types.Compt) []consensus.Effect {
	prop := &m.Prop
	d := prop.Tx.Digest()
	if d != prop.D {
		return nil
	}
	if !n.cfg.Registry.VerifyClient(prop.Tx.Client, prop.SigningBytes(), prop.Sig) {
		return nil
	}
	var effs []consensus.Effect
	// Already committed: re-notify the client, no inspection needed.
	if seq, ok := n.committedTx[d]; ok {
		effs = append(effs, n.notifyClient(prop.Tx.Client, seq, d, true))
		return effs
	}
	first := false
	if _, seen := n.comptSeen[d]; !seen {
		n.comptSeen[d] = prop.Tx.Client
		n.comptProp[d] = prop
		first = true
	}
	if n.state == Leader && n.leaderConfirmed {
		// The leader treats a complaint like a proposal (§4.3 phase 1: a
		// consensus instance starts on Prop or f+1 Compt; handling the
		// first relayed complaint directly is equivalent and simpler).
		effs = append(effs, n.enqueueTx(now, prop)...)
		return effs
	}
	if from.Client {
		// Relay to the leader (line 2) and arm the inspection timer.
		effs = append(effs, consensus.Send{To: n.store.CurrentLeader(), Msg: m})
	}
	if first {
		// The wait is the follower's randomized timeout (§4.2.1: "a timer
		// with a random timeout... sufficiently greater than Δ"). The
		// randomization width is what suppresses split votes (Fig. 8).
		effs = append(effs, consensus.SetTimer{
			Kind:  TimerCompt,
			Key:   timerKeyFromDigest(d),
			Delay: n.randTimeout(),
		})
	}
	return effs
}

// comptDigestByKey finds a tracked complaint digest matching a timer key.
// Sorted iteration: timer keys are truncated digests, so a (vanishingly
// rare) collision must still resolve to the same digest on every replica
// and every replay.
func (n *Node) comptDigestByKey(key uint64) (types.Digest, bool) {
	for _, d := range types.SortedDigestKeys(n.comptSeen) {
		if timerKeyFromDigest(d) == key {
			return d, true
		}
	}
	return types.Digest{}, false
}

// onComptTimeout fires when a complained transaction failed to commit in
// time: broadcast ConfVC to inspect the leader (line 6).
func (n *Node) onComptTimeout(now time.Duration, key uint64) []consensus.Effect {
	d, ok := n.comptDigestByKey(key)
	if !ok {
		return nil
	}
	if _, committed := n.committedTx[d]; committed {
		return nil // leader is correct (line 5)
	}
	n.comptExpired[d] = true
	if n.state != Follower {
		return nil
	}
	return n.startInspection(now, types.ReasonComplaint, d, n.comptSeen[d])
}

// startInspection broadcasts a ConfVC and begins collecting ReVC replies.
func (n *Node) startInspection(now time.Duration, reason types.ConfReason, txd types.Digest, client types.ClientID) []consensus.Effect {
	v := n.View()
	if n.inspecting != nil && n.inspectView == v {
		return nil // already inspecting this view
	}
	n.inspectView = v
	n.replStopped = true // confirming a view change stops replication in V
	n.inspecting = quorum.NewCollector(types.QCConf, v, types.SeqNum(n.cfg.ID), types.Digest{}, n.confirmSize())
	// Count our own confirmation.
	n.inspecting.Add(n.cfg.Registry, n.cfg.ID, n.sign(n.inspecting.Statement()))
	conf := &types.ConfVC{From: n.cfg.ID, V: v, Reason: reason, TxD: txd, Client: client}
	conf.Sig = n.sign(conf.SigningBytes())
	return []consensus.Effect{
		consensus.Broadcast{Msg: conf},
		consensus.SetTimer{Kind: TimerConfVC, Key: uint64(v), Delay: n.cfg.ConfVCTimeout},
	}
}

// onConfVC answers another server's inspection (lines 12-14): confirm with a
// ReVC only if we observed the same complaint, or — for policy-triggered
// changes — if our own view lifetime has reached the policy period. This is
// what prevents faulty servers from inflicting view changes on correct
// followers under a correct leader (Theorem 4).
func (n *Node) onConfVC(now time.Duration, m *types.ConfVC) []consensus.Effect {
	if m.V != n.View() {
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	confirm := false
	switch m.Reason {
	case types.ReasonComplaint:
		// Confirm only if we observed the same complaint AND our own timer
		// for it expired without a commit. Replying on sight of the
		// complaint alone would let f colluders plus one hasty honest
		// reply assemble conf_QC under a correct leader, violating
		// leadership robustness (Theorem 4).
		if cl, seen := n.comptSeen[m.TxD]; seen && cl == m.Client && n.comptExpired[m.TxD] {
			if _, committed := n.committedTx[m.TxD]; !committed {
				confirm = true
			}
		}
	case types.ReasonPolicy:
		if n.cfg.ViewPolicy > 0 && now-n.viewEnteredAt >= n.cfg.ViewPolicy {
			confirm = true
		}
	}
	if !confirm {
		return nil
	}
	n.replStopped = true // confirming a view change stops replication in V
	re := &types.ReVC{From: n.cfg.ID, To: m.From, V: m.V}
	re.Sig = n.sign(re.SigningBytes())
	return []consensus.Effect{consensus.Send{To: m.From, Msg: re}}
}

// onReVC collects confirmations for our inspection; f+1 form conf_QC and we
// transition to redeemer (lines 8-9).
func (n *Node) onReVC(now time.Duration, m *types.ReVC) []consensus.Effect {
	if n.inspecting == nil || m.V != n.inspectView || m.To != n.cfg.ID {
		return nil
	}
	if !n.inspecting.Add(n.cfg.Registry, m.From, m.Sig) {
		return nil
	}
	qc := n.inspecting.QC()
	n.inspecting = nil
	var effs []consensus.Effect
	effs = append(effs, consensus.CancelTimer{Kind: TimerConfVC, Key: uint64(m.V)})
	effs = append(effs, n.becomeRedeemer(now, qc, n.View()+1)...)
	return effs
}

// onConfVCTimeout abandons an inspection that could not gather f+1
// confirmations; the complaining client is tagged as (possibly) faulty
// (line 11). Client tagging is an application policy; the node drops the
// inspection — but if an expired, uncommitted complaint is still
// outstanding, it re-arms that complaint's timer with a fresh randomized
// wait and inspects again when it fires. Without the retry, a follower
// whose single inspection raced ahead of its peers' complaint timers (they
// saw its ConfVC before their own timers expired, so they refused to
// confirm — Theorem 4's two-condition rule) would never inspect again:
// complaint timers only arm on first sight of a complaint, and a stuck
// client re-complains the same transaction forever. All n−f followers
// could fail this way simultaneously and wedge the view permanently — the
// live chaos harness hit exactly that ordering on real TCP clusters about
// half the time after a leader crash.
func (n *Node) onConfVCTimeout(now time.Duration, key uint64) []consensus.Effect {
	if n.inspecting == nil || uint64(n.inspectView) != key {
		return nil
	}
	n.inspecting = nil
	if n.state != Follower {
		return nil
	}
	for _, d := range types.SortedDigestKeys(n.comptExpired) {
		if _, committed := n.committedTx[d]; committed {
			continue
		}
		return []consensus.Effect{consensus.SetTimer{
			Kind:  TimerCompt,
			Key:   timerKeyFromDigest(d),
			Delay: n.randTimeout(),
		}}
	}
	return nil
}

// onPolicyTimer fires the timing-policy view change for the current view.
func (n *Node) onPolicyTimer(now time.Duration, key uint64) []consensus.Effect {
	if types.View(key) != n.View() || n.cfg.ViewPolicy == 0 {
		return nil
	}
	n.policyFired = true
	if n.state != Follower {
		return nil // the leader rotates out; redeemers/candidates already campaign
	}
	return n.startInspection(now, types.ReasonPolicy, types.Digest{}, 0)
}

// --- Redeemer (§4.2.2, Algo. 2 lines 31-41) ---------------------------------

// becomeRedeemer computes the reputation penalty for the next view and
// starts the reputation-determined computation.
func (n *Node) becomeRedeemer(now time.Duration, confQC types.QC, vPrime types.View) []consensus.Effect {
	// Consult the reputation engine (line 33). The engine reads chain
	// state; nothing is persisted unless this server is elected.
	res := n.cfg.Engine.CalcRP(vPrime, n.store.Snapshot(n.cfg.ID, int64(n.store.TxHeight())))
	if n.cfg.CampaignGate != nil && !n.cfg.CampaignGate(res) {
		n.state = Follower
		return nil
	}
	n.state = Redeemer
	n.confQC = confQC
	n.vPrime = vPrime
	n.campRP = res.RP
	n.campCI = res.CI
	// Replication in V stops (line 34): drop the in-flight window.
	effs := n.dropWindow()
	n.tokenSeq++
	n.puzzleToken = n.tokenSeq
	seed := crypto.PuzzleSeed(n.store.LatestTxBlock().Hash(), vPrime)
	return append(effs,
		n.trace(consensus.TraceViewChangeStart, vPrime, n.campRP),
		consensus.StartPuzzle{Token: n.puzzleToken, Seed: seed, RP: n.campRP},
	)
}

// OnPuzzleSolved implements consensus.Replica: the redeemer finished its
// computation and becomes a candidate (lines 39-41).
func (n *Node) OnPuzzleSolved(now time.Duration, token uint64, nonce []byte, hr types.Digest) []consensus.Effect {
	if n.state != Redeemer || token != n.puzzleToken {
		return nil
	}
	return n.becomeCandidate(now, nonce, hr)
}

// becomeCandidate broadcasts the campaign and waits for 2f+1 votes
// (lines 42-47).
func (n *Node) becomeCandidate(now time.Duration, nonce []byte, hr types.Digest) []consensus.Effect {
	n.state = Candidate
	latest := n.store.LatestTxBlock()
	camp := &types.CampVC{
		From:   n.cfg.ID,
		ConfQC: n.confQC,
		V:      n.View(),
		VPrime: n.vPrime,
		RP:     n.campRP,
		CI:     n.campCI,
		Nonce:  nonce,
		HR:     hr,
		TxN:    latest.Header.N,
		TxHash: latest.Hash(),
		VcN:    n.View(),
	}
	camp.Sig = n.sign(camp.SigningBytes())
	n.campMsg = camp
	n.voteColl = quorum.NewCollector(types.QCVote, n.vPrime, types.SeqNum(n.cfg.ID), types.Digest{}, n.quorumSize())
	n.voteLocks = make(map[types.SeqNum]*types.TxBlock)
	// A candidate votes for itself, but only if it has not already voted in
	// this view for a competitor's campaign (C1 binds candidates too —
	// double voting would let two vc_QCs overlap and break P1).
	if n.lastVotedView < n.vPrime {
		n.lastVotedView = n.vPrime
		n.lastVotedFor = n.cfg.ID
		n.voteColl.Add(n.cfg.Registry, n.cfg.ID, n.sign(n.voteColl.Statement()))
	}
	return []consensus.Effect{
		n.trace(consensus.TraceCandidate, n.vPrime, n.campRP),
		consensus.Broadcast{Msg: camp},
		consensus.SetTimer{Kind: TimerElection, Key: uint64(n.vPrime), Delay: n.randTimeout()},
	}
}

// onElectionTimeout handles a failed election: split votes may have
// occurred; the candidate transitions back to redeemer with an incremented
// view (line 48).
func (n *Node) onElectionTimeout(now time.Duration, key uint64) []consensus.Effect {
	if n.state != Candidate || uint64(n.vPrime) != key {
		return nil
	}
	effs := []consensus.Effect{n.trace(consensus.TraceSplitVote, n.vPrime, 0)}
	effs = append(effs, n.becomeRedeemer(now, n.confQC, n.vPrime+1)...)
	return effs
}

// --- Voting (§4.2.3, Algo. 2 lines 15-30) ------------------------------------

// onCampVC applies the voting criteria C1-C5 and votes for valid candidates.
func (n *Node) onCampVC(now time.Duration, m *types.CampVC) []consensus.Effect {
	myView := n.View()
	if m.VPrime <= myView { // line 16: stale campaign
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	// C1: vote at most once per view (line 17).
	if n.lastVotedView >= m.VPrime {
		return nil
	}
	// C2: the view change must have been confirmed by f+1 servers
	// (line 18). The conf_QC certifies the view the campaign departed from.
	if m.ConfQC.Kind != types.QCConf || m.ConfQC.View != m.V {
		return nil
	}
	if err := n.cfg.Registry.VerifyQC(&m.ConfQC, n.confirmSize()); err != nil {
		return nil
	}
	// A valid conf_QC proves f+1 servers confirmed this view change:
	// replication in the old view is over for us too.
	if m.V == myView {
		n.replStopped = true
	}
	// Sync up view changes if the candidate is ahead (lines 19-20).
	if m.V > myView {
		return n.startSync(m.From, types.SyncVc, uint64(myView), uint64(m.V), m)
	}
	// C3 applied to the view-change chain: the campaign must depart from
	// our current view. A candidate whose vc chain is behind ours builds
	// its vcBlock on a tip we have already left — we could never install
	// it (PrevHash mismatch), and the candidate cannot serve us the gap it
	// skipped, so voting would burn our one vote for v' (C1) on a
	// guaranteed dead end. The chaos fuzzer found exactly this under a
	// lossy fabric: an unconfirmed new leader leaves its voters one view
	// ahead of everyone else, a stale server then campaigns from the old
	// view, collects a full quorum of wasted votes, and the cluster wedges
	// permanently (corpus-lossy-window-stale-campaign). Refusing keeps the
	// vote available for a candidate on the current chain; the stale
	// candidate's election times out and it recampaigns after syncing.
	if m.V < myView {
		return nil
	}
	// C3: the candidate's replication must be at least as up-to-date as
	// ours (lines 21-24).
	myHeight := n.store.TxHeight()
	if m.TxN < myHeight {
		return nil
	}
	if m.TxN > myHeight {
		return n.startSync(m.From, types.SyncTx, uint64(myHeight), uint64(m.TxN), m)
	}
	// Heights equal: the chain hash must match (safety guarantees equal
	// committed prefixes among correct servers).
	if m.TxHash != n.store.LatestTxBlock().Hash() {
		return nil
	}
	// C4: recalculate and verify the candidate's rp and ci (lines 25-27).
	res := n.cfg.Engine.CalcRP(m.VPrime, n.store.Snapshot(m.From, int64(m.TxN)))
	if res.CI != m.CI || res.RP != m.RP {
		return nil
	}
	// C5: verify the performed computation matches the penalty
	// (lines 28-29). One hash — O(1). A negative PuzzleBitsPerRP disables
	// the prefix check (simulator mode; difficulty lives in the time
	// model) but the hash recomputation still binds hr to the seed.
	bits := int(m.RP) * n.cfg.PuzzleBitsPerRP
	if n.cfg.PuzzleBitsPerRP < 0 {
		bits = 0
	}
	seed := crypto.PuzzleSeed(m.TxHash, m.VPrime)
	if !crypto.VerifyPuzzle(seed, m.Nonce, m.HR, bits) {
		return nil
	}
	// Vote (line 30), attaching our locked slots — the certified in-flight
	// blocks of the departing view — as adoption evidence. Any block with a
	// commit_QC anywhere is locked at ≥ f+1 correct servers, and any 2f+1
	// votes intersect them in ≥ 1 correct server, so the winning vote set
	// provably carries every potentially committed block to the new leader.
	n.lastVotedView = m.VPrime
	n.lastVotedFor = m.From
	vote := &types.VoteCP{From: n.cfg.ID, Cand: m.From, VPrime: m.VPrime, Locked: n.lockedSlots()}
	vote.Sig = n.sign(vote.SigningBytes())
	return []consensus.Effect{consensus.Send{To: m.From, Msg: vote}}
}

// lockedSlots returns this server's locked window — prepared blocks above
// the committed tip that carry an ordering_QC — in ascending sequence order.
func (n *Node) lockedSlots() []types.TxBlock {
	height := n.store.TxHeight()
	var out []types.TxBlock
	for _, seq := range types.SortedKeys(n.prepared) {
		if p := n.prepared[seq]; seq > height && !p.block.OrderingQC.IsZero() {
			out = append(out, p.block)
		}
	}
	return out
}

// onVoteCP collects election votes; 2f+1 form vc_QC and the candidate
// becomes the leader (lines 46-47). Each accepted vote's locked slots are
// folded into the adoption evidence before the threshold check, so the
// winning vote set's union is available the moment the candidate wins.
func (n *Node) onVoteCP(now time.Duration, m *types.VoteCP) []consensus.Effect {
	if n.state != Candidate || m.VPrime != n.vPrime || m.Cand != n.cfg.ID {
		return nil
	}
	before := n.voteColl.Count()
	won := n.voteColl.Add(n.cfg.Registry, m.From, m.Sig)
	if !won && n.voteColl.Count() == before {
		return nil // duplicate or invalid vote
	}
	n.collectVoteLocks(m.Locked)
	if !won {
		return nil
	}
	return n.becomeLeader(now)
}

// collectVoteLocks verifies and folds a vote's locked slots into the
// candidate's adoption evidence, keeping the highest-view ordering_QC per
// sequence number. Locks are self-certifying: a forged or tampered entry
// fails its certificate check and is ignored.
func (n *Node) collectVoteLocks(locked []types.TxBlock) {
	height := n.store.TxHeight()
	for i := range locked {
		blk := locked[i]
		seq := blk.Header.N
		if seq <= height {
			continue
		}
		qc := blk.OrderingQC
		// Dedup before the expensive certificate verification: in a healthy
		// election every voter attaches the same window, and the stored
		// entry was already verified.
		if cur, ok := n.voteLocks[seq]; ok && cur.OrderingQC.View >= qc.View {
			continue
		}
		if qc.Kind != types.QCOrdering || qc.Seq != seq || qc.View != blk.Header.V ||
			qc.Digest != blk.ContentDigest() {
			continue
		}
		if err := n.cfg.Registry.VerifyQC(&qc, n.quorumSize()); err != nil {
			continue
		}
		cp := blk
		cp.CommitQC = types.QC{}
		n.voteLocks[seq] = &cp
	}
}

// --- Leader (§4.2.4, Algo. 2 lines 49-54) ------------------------------------

// becomeLeader prepares and broadcasts the new vcBlock. Replication starts
// only after 2f+1 vcYes confirm the block.
func (n *Node) becomeLeader(now time.Duration) []consensus.Effect {
	n.state = Leader
	n.leaderConfirmed = false
	vcQC := n.voteColl.QC()
	prev := n.store.LatestVcBlock()
	rp, ci := prev.CloneReputation()
	// Only the elected leader's rp and ci change (§4.2.4).
	rp[n.cfg.ID] = n.campRP
	ci[n.cfg.ID] = n.campCI
	blk := &types.VcBlock{
		V:        n.vPrime,
		LeaderID: n.cfg.ID,
		PrevHash: prev.Hash(),
		ConfQC:   n.confQC,
		VcQC:     vcQC,
		RP:       rp,
		CI:       ci,
	}
	n.pendingVcBlock = blk
	n.vcYesColl = quorum.NewCollector(types.QCGeneric, blk.V, 0, blk.Hash(), n.quorumSize())
	n.vcYesColl.Add(n.cfg.Registry, n.cfg.ID, n.sign(n.vcYesColl.Statement()))
	msg := &types.VcBlockMsg{From: n.cfg.ID, Block: *blk}
	msg.Sig = n.sign(msg.SigningBytes())
	return []consensus.Effect{
		consensus.CancelTimer{Kind: TimerElection, Key: uint64(n.vPrime)},
		consensus.Broadcast{Msg: msg},
		consensus.SetTimer{Kind: TimerVcConfirm, Key: uint64(n.vPrime), Delay: n.randTimeout()},
	}
}

// onVcConfirmTimeout re-broadcasts an elected-but-unconfirmed leader's
// vcBlock. Winning the vote is not the end of the election: replication
// stays stopped until 2f+1 VcYes confirm the block, and both the block
// broadcast and the acks cross the fabric with no other retry path. Lose
// either to a drop and the leader-elect would wait forever — a standoff no
// third party can break, because the voters' one vote for v' is burned
// (C1), so no rival candidate can win v', and a voter that already
// installed the block sits alone at the new view, unable to assemble
// conf_QC for it. The chaos fuzzer mined exactly this deadlock under a
// lossy fabric (corpus-lossy-window-unconfirmed-leader): one dropped
// message froze three healthy servers permanently. Re-broadcasting is safe
// — the block is idempotent at receivers (installed copies just re-ack,
// see onVcBlock) — and the timer dies with the pending state: confirmation
// cancels it, and being deposed by a higher view clears pendingVcBlock so
// a late firing is a no-op.
func (n *Node) onVcConfirmTimeout(now time.Duration, key uint64) []consensus.Effect {
	if n.state != Leader || n.leaderConfirmed || n.pendingVcBlock == nil {
		return nil
	}
	if uint64(n.pendingVcBlock.V) != key {
		return nil
	}
	msg := &types.VcBlockMsg{From: n.cfg.ID, Block: *n.pendingVcBlock}
	msg.Sig = n.sign(msg.SigningBytes())
	// Re-arm before broadcasting: if the re-acks complete the election, the
	// confirmation path cancels the timer, and that cancel must not race a
	// re-arm sequenced after the broadcast's delivery cascade.
	return []consensus.Effect{
		consensus.SetTimer{Kind: TimerVcConfirm, Key: key, Delay: n.randTimeout()},
		consensus.Broadcast{Msg: msg},
	}
}

// onVcYes completes VC consensus at the new leader (lines 53-54): the leader
// stores the vcBlock and resumes replication in the new view.
func (n *Node) onVcYes(now time.Duration, m *types.VcYes) []consensus.Effect {
	if n.state != Leader || n.leaderConfirmed || n.pendingVcBlock == nil {
		return nil
	}
	if m.V != n.pendingVcBlock.V || m.BlockHash != n.pendingVcBlock.Hash() {
		return nil
	}
	if !n.vcYesColl.Add(n.cfg.Registry, m.From, m.Sig) {
		return nil
	}
	blk := n.pendingVcBlock
	n.pendingVcBlock = nil
	n.vcYesColl = nil
	if err := n.store.AppendVcBlock(n.cfg.Registry, blk); err != nil {
		// Should be impossible: we built the block from our own chain tip.
		n.state = Follower
		return nil
	}
	n.leaderConfirmed = true
	// Adopt the previous leader's in-flight window before enterView prunes
	// the prepared map: the highest contiguous chain-consistent prefix of
	// certified slots — from the winning votes' evidence merged with our own
	// locks — is re-proposed byte-identically (commit phase only), so any
	// block the old leader may already have committed is re-committed with
	// the exact same hash. The remaining in-flight transactions (certified
	// slots above a gap, plus our own uncertified prepared blocks) are
	// re-proposed as fresh batches in the new view.
	adopt, leftover := n.buildAdoptionPlan()
	effs := n.enterView(now, true)
	effs = append(effs,
		consensus.CancelTimer{Kind: TimerVcConfirm, Key: uint64(blk.V)},
		n.trace(consensus.TraceElected, blk.V, n.campRP),
		n.trace(consensus.TraceRPChange, blk.V, n.campRP),
	)
	effs = append(effs, n.retryDeferredCheckpoint()...)
	for _, ablk := range adopt {
		effs = append(effs, n.adoptInstance(now, ablk)...)
	}
	for i := range leftover {
		effs = append(effs, n.enqueueTx(now, &leftover[i])...)
	}
	// Outstanding complaints become this leader's backlog (§4.3: an
	// instance starts on Prop or f+1 Compt messages). Sorted order: the
	// backlog's batch order must not depend on map iteration.
	for _, d := range types.SortedDigestKeys(n.comptProp) {
		if _, committed := n.committedTx[d]; !committed {
			effs = append(effs, n.enqueueTx(now, n.comptProp[d])...)
		}
	}
	// Kick replication for any backlog.
	effs = append(effs, n.maybeStartInstanceWith(now, true)...)
	return effs
}

// buildAdoptionPlan merges the election evidence (voteLocks) with this
// server's own locked slots, keeping the highest-view certificate per
// sequence number, and splits the previous view's in-flight work into:
//
//   - adopt: the contiguous chain-consistent prefix of certified blocks
//     directly above the committed tip, re-proposed byte-identically. Every
//     block with a commit_QC anywhere is in this prefix (commits are
//     in-order, so committed blocks are contiguous above the tip, and the
//     vote-lock union covers them).
//   - leftover: the not-yet-committed transactions of everything else in
//     flight — certified slots beyond a gap and uncertified prepared blocks
//     — re-proposed as fresh batches.
func (n *Node) buildAdoptionPlan() (adopt []*types.TxBlock, leftover []types.Prop) {
	merged := make(map[types.SeqNum]*types.TxBlock, len(n.voteLocks))
	for seq, b := range n.voteLocks {
		merged[seq] = b
	}
	height := n.store.TxHeight()
	for _, seq := range types.SortedKeys(n.prepared) {
		p := n.prepared[seq]
		if seq <= height || p.block.OrderingQC.IsZero() {
			continue
		}
		if cur, ok := merged[seq]; !ok || p.block.OrderingQC.View > cur.OrderingQC.View {
			cp := p.block
			cp.CommitQC = types.QC{}
			merged[seq] = &cp
		}
	}
	prevHash := n.store.LatestTxBlock().Hash()
	next := height + 1
	for {
		b, ok := merged[next]
		if !ok || b.Header.PrevHash != prevHash {
			break
		}
		adopt = append(adopt, b)
		prevHash = b.PredictedHash()
		delete(merged, next)
		next++
	}
	// Salvage the rest transaction-wise, in sequence order: what is left in
	// merged (certified slots beyond the gap) plus our own uncertified
	// prepared blocks. enqueueTx deduplicates against the adopted blocks
	// (marked in pendingByDigest by adoptInstance) and against committed
	// transactions via recordCommit's bookkeeping, so nothing commits twice.
	rest := merged
	for _, seq := range types.SortedKeys(n.prepared) {
		if seq <= height || seq < next || rest[seq] != nil {
			continue
		}
		cp := n.prepared[seq].block
		rest[seq] = &cp
	}
	for _, seq := range types.SortedKeys(rest) {
		b := rest[seq]
		for i := range b.Txs {
			tx := b.Txs[i]
			d := tx.Digest()
			if _, committed := n.committedTx[d]; committed {
				continue
			}
			leftover = append(leftover, types.Prop{Tx: tx, D: d})
		}
	}
	return adopt, leftover
}

// adoptInstance opens the commit-only consensus instance for one adopted
// block and broadcasts its Adopt message. The commit collector is built over
// the block's original commit statement (its proposal view), so the
// certificate — and the block hash — come out identical to the previous
// leader's.
func (n *Node) adoptInstance(now time.Duration, blk *types.TxBlock) []consensus.Effect {
	cp := *blk
	seq := cp.Header.N
	digest := cp.ContentDigest()
	inst := &replInstance{
		block:   &cp,
		digest:  digest,
		cmtColl: quorum.NewCollector(types.QCCommit, cp.Header.V, seq, digest, n.quorumSize()),
		started: now,
		adopted: true,
	}
	inst.cmtColl.Add(n.cfg.Registry, n.cfg.ID, n.sign(inst.cmtColl.Statement()))
	n.inflight[seq] = inst
	for i := range cp.Txs {
		n.pendingByDigest[cp.Txs[i].Digest()] = true
	}
	ad := &types.Adopt{From: n.cfg.ID, V: n.View(), Block: cp}
	ad.Sig = n.sign(ad.SigningBytes())
	return []consensus.Effect{
		consensus.Broadcast{Msg: ad},
		consensus.SetTimer{Kind: TimerInstance, Key: uint64(seq), Delay: n.cfg.InstanceTimeout},
	}
}

// onVcBlock validates and adopts a new leader's vcBlock (the Receiving
// procedure in §4.2.4).
func (n *Node) onVcBlock(now time.Duration, m *types.VcBlockMsg) []consensus.Effect {
	blk := &m.Block
	cur := n.store.LatestVcBlock()
	if blk.V <= cur.V {
		// A duplicate of the vcBlock we already installed means the leader
		// is re-broadcasting because it is short of VcYes acks — ours may
		// have been the dropped one. Re-ack; the ack is idempotent at the
		// leader (its collector rejects duplicate signers), and without it
		// a lost VcYes wedges the election exactly like a lost block.
		if blk.V == cur.V && m.From == blk.LeaderID && blk.Hash() == cur.Hash() &&
			n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
			yes := &types.VcYes{From: n.cfg.ID, V: blk.V, BlockHash: blk.Hash()}
			yes.Sig = n.sign(yes.SigningBytes())
			return []consensus.Effect{consensus.Send{To: blk.LeaderID, Msg: yes}}
		}
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) || m.From != blk.LeaderID {
		return nil
	}
	// Stale in view changes: the block must extend our chain tip. If not,
	// we are missing vcBlocks — sync from the new leader.
	if blk.PrevHash != cur.Hash() {
		return n.startSync(m.From, types.SyncVc, uint64(cur.V), uint64(blk.V), m)
	}
	if err := n.store.ValidateVcBlockQCs(n.cfg.Registry, blk); err != nil {
		return nil
	}
	// The only change from our current reputation fragment must be the
	// leader's own rp and ci.
	if !blk.ReputationEqualExcept(cur, blk.LeaderID) {
		return nil
	}
	if err := n.store.AppendVcBlock(n.cfg.Registry, blk); err != nil {
		return nil
	}
	// Adopt: abort any campaign activity and operate in the new view.
	yes := &types.VcYes{From: n.cfg.ID, V: blk.V, BlockHash: blk.Hash()}
	yes.Sig = n.sign(yes.SigningBytes())
	effs := []consensus.Effect{consensus.Send{To: blk.LeaderID, Msg: yes}}
	effs = append(effs, n.enterView(now, false)...)
	effs = append(effs,
		n.trace(consensus.TraceViewInstalled, blk.V, int64(blk.LeaderID)),
		n.trace(consensus.TraceRPChange, blk.V, blk.RP[n.cfg.ID]),
	)
	effs = append(effs, n.retryDeferredCheckpoint()...)
	return effs
}

// enterView resets per-view state after a vcBlock is installed. asLeader
// marks the confirmed new leader; everyone else becomes a follower
// (redeemers abort their computation, candidates their election).
func (n *Node) enterView(now time.Duration, asLeader bool) []consensus.Effect {
	var effs []consensus.Effect
	if !asLeader {
		if n.state == Redeemer {
			effs = append(effs, consensus.AbortPuzzle{Token: n.puzzleToken})
		}
		if n.state == Candidate {
			effs = append(effs, consensus.CancelTimer{Kind: TimerElection, Key: uint64(n.vPrime)})
		}
		n.state = Follower
		n.leaderConfirmed = false
	}
	n.viewEnteredAt = now
	n.inspecting = nil
	effs = append(effs, n.dropWindow()...)
	// The leader queue dies with the view: transactions whose instances
	// were dropped belong to the next leader (via adoption, complaints, or
	// client retries). Keeping pendingByDigest entries for them would make
	// a re-elected leader silently dedup-drop every retry of a transaction
	// that died in its old window — stranding those clients on the
	// complaint path forever. A confirmed new leader rebuilds its queue
	// right after this from the adoption plan and the complaint backlog.
	n.pending = nil
	n.pendingByDigest = make(map[types.Digest]bool)
	n.batchArmed = false
	effs = append(effs, consensus.CancelTimer{Kind: TimerBatch, Key: 0})
	n.replStopped = false
	n.pendingVcBlock = nil
	n.vcYesColl = nil
	n.voteColl = nil
	n.campMsg = nil
	n.voteLocks = nil
	n.refColl = nil
	n.refreshSent = false
	n.refreshDone = false
	// Prune the prepared window, but keep locked slots: an ordering_QC is a
	// cross-view promise (the slot may have committed elsewhere), so locks
	// survive until their sequence number commits. Uncertified proposals die
	// with their view as before.
	kept := make(map[types.SeqNum]*pendingProposal)
	for _, seq := range types.SortedKeys(n.prepared) {
		if p := n.prepared[seq]; !p.block.OrderingQC.IsZero() {
			kept[seq] = p
		}
	}
	n.prepared = kept
	n.ordStash = make(map[types.SeqNum]*types.Ord)
	effs = append(effs, n.armPolicyTimer()...)
	// Unserved complaints carry into the new view: re-arm their timers so
	// the new leader is held to them too (liveness across faulty leaders).
	// Sorted order: each timer draws a randomized timeout, so the RNG
	// consumption sequence must not depend on map iteration.
	for _, d := range types.SortedDigestKeys(n.comptSeen) {
		if _, committed := n.committedTx[d]; committed {
			continue
		}
		delete(n.comptExpired, d)
		effs = append(effs, consensus.SetTimer{
			Kind:  TimerCompt,
			Key:   timerKeyFromDigest(d),
			Delay: n.randTimeout(),
		})
	}
	effs = append(effs, n.maybeRequestRefresh(now)...)
	return effs
}
