package core

import (
	"testing"

	"prestigebft/internal/consensus"
	"prestigebft/internal/ledger"
	"prestigebft/internal/types"
)

// newCkptRig builds a 4-server rig with β=1 batches and the given
// checkpoint interval.
func newCkptRig(t *testing.T, interval int) *rig {
	return newRigCfg(t, 4, 1, 1, func(cfg *Config) { cfg.CheckpointInterval = interval })
}

// TestCheckpointCertifiesAndCompacts: committing across an interval boundary
// makes every replica exchange votes, assemble the certificate, and prune
// the log below the checkpoint — while the chain keeps extending normally.
func TestCheckpointCertifiesAndCompacts(t *testing.T) {
	r := newCkptRig(t, 2)
	for seq := 1; seq <= 5; seq++ {
		r.submit(seq)
	}
	for id, node := range r.nodes {
		st := node.Store()
		if st.TxHeight() != 5 {
			t.Fatalf("server %d height = %d, want 5", id, st.TxHeight())
		}
		if st.LogBase() != 4 {
			t.Fatalf("server %d log base = %d, want 4 (latest certified boundary)", id, st.LogBase())
		}
		cert := st.Checkpoint()
		if cert == nil || cert.Header.Seq != 4 {
			t.Fatalf("server %d has no certificate at 4", id)
		}
		if err := st.ValidateCheckpointCert(r.reg, cert); err != nil {
			t.Fatalf("server %d certificate invalid: %v", id, err)
		}
		if st.RetainedTxBlocks() != 2 {
			t.Fatalf("server %d retains %d blocks, want 2 (anchor + tail)", id, st.RetainedTxBlocks())
		}
		if st.TxBlock(3) != nil {
			t.Fatalf("server %d still holds compacted block 3", id)
		}
	}
}

// TestLateJoinerCatchesUpViaSnapshot: a server that was down while the log
// compacted past its height must catch up by installing the certified
// snapshot — never by replaying compacted history.
func TestLateJoinerCatchesUpViaSnapshot(t *testing.T) {
	r := newCkptRig(t, 2)
	r.down[4] = true
	for seq := 1; seq <= 6; seq++ {
		r.submit(seq)
	}
	if base := r.nodes[1].Store().LogBase(); base != 6 {
		t.Fatalf("leader base = %d, want 6", base)
	}
	if h := r.nodes[4].Store().TxHeight(); h != 0 {
		t.Fatalf("downed server advanced to %d", h)
	}
	r.down[4] = false
	// The next committed block's broadcast exposes the gap; the sync must
	// come back as snapshot + tail, not as replayed blocks (which no peer
	// retains anymore).
	r.submit(7)
	st := r.nodes[4].Store()
	if st.TxHeight() != 7 {
		t.Fatalf("joiner height = %d, want 7", st.TxHeight())
	}
	if st.LogBase() != 6 {
		t.Fatalf("joiner log base = %d, want 6 (installed snapshot)", st.LogBase())
	}
	if st.TxBlock(1) != nil {
		t.Fatal("joiner holds pre-snapshot history: it replayed instead of installing")
	}
	if st.Checkpoint() == nil || st.Checkpoint().Header.Seq != 6 {
		t.Fatal("joiner did not retain the installed certificate")
	}
	// The joiner's chain agrees with the cluster above the base.
	want := r.nodes[1].Store().TxBlock(7).Hash()
	if got := st.TxBlock(7).Hash(); got != want {
		t.Fatalf("joiner block 7 diverges: %v != %v", got, want)
	}
	// And the restored application state matches: same applied count.
	applied := func(n *Node) int {
		return n.Store().StateMachine().(*ledger.AcceptAll).Applied
	}
	if applied(r.nodes[4]) != applied(r.nodes[1]) {
		t.Fatal("restored application state diverges from the cluster's")
	}
}

// TestCheckpointDivergentHashNeverCertifies: properly signed votes over a
// different state hash must not count toward the certificate — 2f+1 matching
// hashes is the whole point.
func TestCheckpointDivergentHashNeverCertifies(t *testing.T) {
	r := newCkptRig(t, 2)
	// Drop all checkpoint votes so rounds stay open.
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		_, isVote := msg.(*types.CkptVote)
		return isVote
	}
	r.submit(1)
	r.submit(2)
	node := r.nodes[1]
	if node.Store().LogBase() != 0 {
		t.Fatal("certified without any peer votes")
	}
	// Two forged votes with a divergent hash, properly signed.
	for _, from := range []types.ServerID{2, 3} {
		forged := &types.CkptVote{From: from, Seq: 2, StateHash: types.Digest{0xba, 0xd0}}
		forged.Sig = r.keys[from].Sign(forged.SigningBytes())
		r.exec(1, node.OnMessage(r.now, consensus.FromServer(from), forged))
	}
	if node.Store().LogBase() != 0 {
		t.Fatal("divergent-hash votes assembled a certificate")
	}
	// The genuine held votes still close the round.
	r.releaseHeld()
	if node.Store().LogBase() != 2 {
		t.Fatalf("leader base = %d after genuine votes, want 2", node.Store().LogBase())
	}
}

// TestInitRebroadcastsCheckpointVote: a warm-rebooted replica re-broadcasts
// its vote for every still-open checkpoint round, so a crash cannot strand
// a round one vote short forever.
func TestInitRebroadcastsCheckpointVote(t *testing.T) {
	r := newCkptRig(t, 2)
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		_, isVote := msg.(*types.CkptVote)
		return isVote
	}
	r.submit(1)
	r.submit(2)
	r.held = nil // the crash loses the in-flight votes
	r.intercept = nil

	node := r.nodes[1]
	found := false
	for _, e := range node.Init(r.now) {
		if b, ok := e.(consensus.Broadcast); ok {
			if v, ok := b.Msg.(*types.CkptVote); ok && v.Seq == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Init did not re-broadcast the open round's vote")
	}
}

// TestEarlyVotesStashedAndCounted: votes for a boundary this replica has not
// committed yet are stashed and folded in once its own vote opens the round
// — the normal case under pipelining, where peers commit a round trip apart.
func TestEarlyVotesStashedAndCounted(t *testing.T) {
	r := newCkptRig(t, 2)
	// Stop server 4 from seeing commits, so it trails the boundary.
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		_, isBlock := msg.(*types.TxBlockMsg)
		return isBlock && to == 4
	}
	r.submit(1)
	r.submit(2)
	node := r.nodes[4]
	if h := node.Store().TxHeight(); h != 0 {
		t.Fatalf("server 4 height = %d, want 0 (blocks intercepted)", h)
	}
	if len(node.ckptStash[2]) == 0 {
		t.Fatal("early votes were not stashed")
	}
	// Deliver the blocks: server 4 commits 1 and 2, votes, and the stashed
	// peer votes immediately complete its certificate.
	r.releaseHeld()
	if node.Store().LogBase() != 2 {
		t.Fatalf("server 4 base = %d, want 2", node.Store().LogBase())
	}
	if len(node.ckptStash) != 0 {
		t.Fatal("stash not pruned after certification")
	}
}
