package core

import (
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// --- Proposal intake ---------------------------------------------------------

// onProp handles a client proposal (§4.3 "Invoking a consensus service").
// Followers hold proposals only as complaint evidence; the leader batches
// them into consensus instances.
func (n *Node) onProp(now time.Duration, from consensus.Origin, m *types.Prop, relayed bool) []consensus.Effect {
	if m.Tx.Digest() != m.D {
		return nil
	}
	if !n.cfg.Registry.VerifyClient(m.Tx.Client, m.SigningBytes(), m.Sig) {
		return nil
	}
	if seq, ok := n.committedTx[m.D]; ok {
		// Duplicate of a committed transaction: re-notify.
		return []consensus.Effect{n.notifyClient(m.Tx.Client, seq, m.D, true)}
	}
	if n.state == Leader && n.leaderConfirmed {
		return n.enqueueTx(now, m)
	}
	// Followers remember the proposal as evidence for a future complaint.
	if _, seen := n.propSeen[m.D]; !seen {
		n.propSeen[m.D] = m
	}
	return nil
}

// enqueueTx adds a verified transaction to the leader's batch queue and
// starts an instance when a full batch is available.
func (n *Node) enqueueTx(now time.Duration, m *types.Prop) []consensus.Effect {
	if n.pendingByDigest[m.D] {
		return nil
	}
	n.pendingByDigest[m.D] = true
	n.pending = append(n.pending, m.Tx)
	var effs []consensus.Effect
	effs = append(effs, n.maybeStartInstance(now)...)
	if n.inflight != nil || len(n.pending) > 0 {
		if !n.batchArmed {
			n.batchArmed = true
			effs = append(effs, consensus.SetTimer{Kind: TimerBatch, Key: 0, Delay: n.cfg.BatchTimeout})
		}
	}
	return effs
}

// onBatchTimer flushes a partial batch.
func (n *Node) onBatchTimer(now time.Duration) []consensus.Effect {
	n.batchArmed = false
	var effs []consensus.Effect
	effs = append(effs, n.maybeStartInstanceWith(now, true)...)
	if len(n.pending) > 0 || n.inflight != nil {
		n.batchArmed = true
		effs = append(effs, consensus.SetTimer{Kind: TimerBatch, Key: 0, Delay: n.cfg.BatchTimeout})
	}
	return effs
}

// maybeStartInstance starts a replication instance when a full batch is
// queued and no instance is in flight.
func (n *Node) maybeStartInstance(now time.Duration) []consensus.Effect {
	return n.maybeStartInstanceWith(now, false)
}

func (n *Node) maybeStartInstanceWith(now time.Duration, flush bool) []consensus.Effect {
	if n.state != Leader || !n.leaderConfirmed || n.inflight != nil || len(n.pending) == 0 {
		return nil
	}
	if !flush && len(n.pending) < n.cfg.BatchSize {
		return nil
	}
	batch := n.pending
	if len(batch) > n.cfg.BatchSize {
		batch = batch[:n.cfg.BatchSize]
		n.pending = append([]types.Transaction(nil), n.pending[n.cfg.BatchSize:]...)
	} else {
		n.pending = nil
	}
	prev := n.store.LatestTxBlock()
	blk := &types.TxBlock{
		Header: types.TxBlockHeader{
			V:        n.View(),
			N:        prev.Header.N + 1,
			PrevHash: prev.Hash(),
			BatchLen: uint32(len(batch)),
		},
		Txs: batch,
	}
	digest := blk.ContentDigest()
	inst := &replInstance{
		block:   blk,
		digest:  digest,
		ordColl: quorum.NewCollector(types.QCOrdering, blk.Header.V, blk.Header.N, digest, n.quorumSize()),
		started: now,
	}
	inst.ordColl.Add(n.cfg.Registry, n.cfg.ID, n.sign(inst.ordColl.Statement()))
	n.inflight = inst
	ord := &types.Ord{From: n.cfg.ID, V: blk.Header.V, N: blk.Header.N, Prev: blk.Header.PrevHash, Txs: batch}
	ord.Sig = n.sign(ord.SigningBytes())
	return []consensus.Effect{consensus.Broadcast{Msg: ord}}
}

// --- Phase 1: ordering (§4.3) -------------------------------------------------

// onOrd handles the leader's ordering message at a follower.
func (n *Node) onOrd(now time.Duration, m *types.Ord) []consensus.Effect {
	v := n.View()
	if m.V < v {
		return nil // never respond to a lower view (§4.3)
	}
	if m.V > v {
		// We are stale in view changes; catch up from the sender.
		return n.startSync(m.From, types.SyncVc, uint64(v), uint64(m.V), m)
	}
	if m.From != n.store.CurrentLeader() || n.state != Follower || n.replStopped {
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	height := n.store.TxHeight()
	if m.N <= height {
		return nil // already committed
	}
	if m.N > height+1 {
		// Missing txBlocks; catch up from the leader, then replay.
		return n.startSync(m.From, types.SyncTx, uint64(height), uint64(m.N-1), m)
	}
	// "Verify that n has not been used" — at most one ordering vote per
	// sequence number per view.
	if usedV, used := n.ordVoted[m.N]; used && usedV == m.V {
		return nil
	}
	n.ordVoted[m.N] = m.V
	blk := types.TxBlock{
		Header: types.TxBlockHeader{V: m.V, N: m.N, PrevHash: m.Prev, BatchLen: uint32(len(m.Txs))},
		Txs:    m.Txs,
	}
	if blk.Header.PrevHash != n.store.LatestTxBlock().Hash() {
		return nil
	}
	digest := blk.ContentDigest()
	n.prepared[m.N] = &pendingProposal{block: blk, digest: digest}
	rep := &types.OrdReply{From: n.cfg.ID, V: m.V, N: m.N, D: digest}
	rep.Sig = n.sign(rep.SigningBytes())
	return []consensus.Effect{consensus.Send{To: m.From, Msg: rep}}
}

// onOrdReply assembles ordering_QC at the leader.
func (n *Node) onOrdReply(now time.Duration, m *types.OrdReply) []consensus.Effect {
	inst := n.inflight
	if inst == nil || inst.cmtColl != nil {
		return nil
	}
	if m.V != inst.block.Header.V || m.N != inst.block.Header.N || m.D != inst.digest {
		return nil
	}
	if !inst.ordColl.Add(n.cfg.Registry, m.From, m.Sig) {
		return nil
	}
	ordQC := inst.ordColl.QC()
	inst.block.OrderingQC = ordQC
	inst.cmtColl = quorum.NewCollector(types.QCCommit, m.V, m.N, ordQC.Digest, n.quorumSize())
	inst.cmtColl.Add(n.cfg.Registry, n.cfg.ID, n.sign(inst.cmtColl.Statement()))
	cmt := &types.Cmt{From: n.cfg.ID, V: m.V, N: m.N, OrderingQC: ordQC}
	cmt.Sig = n.sign(cmt.SigningBytes())
	return []consensus.Effect{consensus.Broadcast{Msg: cmt}}
}

// --- Phase 2: commit ----------------------------------------------------------

// onCmt verifies ordering_QC and replies with a commit vote.
func (n *Node) onCmt(now time.Duration, m *types.Cmt) []consensus.Effect {
	if m.V != n.View() || m.From != n.store.CurrentLeader() || n.state != Follower || n.replStopped {
		return nil
	}
	prep, ok := n.prepared[m.N]
	if !ok || prep.block.Header.V != m.V {
		return nil
	}
	if m.OrderingQC.Kind != types.QCOrdering || m.OrderingQC.View != m.V ||
		m.OrderingQC.Seq != m.N || m.OrderingQC.Digest != prep.digest {
		return nil
	}
	if err := n.cfg.Registry.VerifyQC(&m.OrderingQC, n.quorumSize()); err != nil {
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	prep.block.OrderingQC = m.OrderingQC
	rep := &types.CmtReply{From: n.cfg.ID, V: m.V, N: m.N, D: prep.digest}
	rep.Sig = n.sign(rep.SigningBytes())
	return []consensus.Effect{consensus.Send{To: m.From, Msg: rep}}
}

// onCmtReply assembles commit_QC at the leader, commits the block, notifies
// clients, and broadcasts the finished txBlock.
func (n *Node) onCmtReply(now time.Duration, m *types.CmtReply) []consensus.Effect {
	inst := n.inflight
	if inst == nil || inst.cmtColl == nil {
		return nil
	}
	if m.V != inst.block.Header.V || m.N != inst.block.Header.N || m.D != inst.digest {
		return nil
	}
	if !inst.cmtColl.Add(n.cfg.Registry, m.From, m.Sig) {
		return nil
	}
	inst.block.CommitQC = inst.cmtColl.QC()
	n.inflight = nil
	if err := n.store.AppendTxBlock(n.cfg.Registry, inst.block); err != nil {
		return nil
	}
	committed := n.store.LatestTxBlock() // the stored copy carries Status
	var effs []consensus.Effect
	effs = append(effs, n.recordCommit(committed)...)
	msg := &types.TxBlockMsg{From: n.cfg.ID, Block: *committed}
	msg.Sig = n.sign(msg.SigningBytes())
	effs = append(effs, consensus.Broadcast{Msg: msg})
	effs = append(effs, consensus.Commit{Block: committed})
	// Start the next instance immediately if a batch is waiting.
	effs = append(effs, n.maybeStartInstance(now)...)
	return effs
}

// onTxBlock commits a finished block at a follower ("Terminating consensus
// instance": verify the txBlock, then notify the client).
func (n *Node) onTxBlock(now time.Duration, m *types.TxBlockMsg) []consensus.Effect {
	blk := &m.Block
	height := n.store.TxHeight()
	if blk.Header.N <= height {
		return nil
	}
	if blk.Header.N > height+1 {
		return n.startSync(m.From, types.SyncTx, uint64(height), uint64(blk.Header.N-1), m)
	}
	if err := n.store.AppendTxBlock(n.cfg.Registry, blk); err != nil {
		return nil
	}
	committed := n.store.LatestTxBlock()
	var effs []consensus.Effect
	effs = append(effs, n.recordCommit(committed)...)
	effs = append(effs, consensus.Commit{Block: committed})
	return effs
}

// recordCommit updates commit bookkeeping and emits client notifications
// for every transaction in the block.
func (n *Node) recordCommit(blk *types.TxBlock) []consensus.Effect {
	var effs []consensus.Effect
	for i := range blk.Txs {
		tx := &blk.Txs[i]
		d := tx.Digest()
		n.committedTx[d] = blk.Header.N
		delete(n.pendingByDigest, d)
		status := true
		if i < len(blk.Status) {
			status = blk.Status[i]
		}
		effs = append(effs, n.notifyClient(tx.Client, blk.Header.N, d, status))
		// A commit settles any pending complaint for the transaction.
		if _, ok := n.comptSeen[d]; ok {
			effs = append(effs, consensus.CancelTimer{Kind: TimerCompt, Key: timerKeyFromDigest(d)})
			delete(n.comptSeen, d)
			delete(n.comptProp, d)
			delete(n.comptExpired, d)
		}
		delete(n.propSeen, d)
	}
	delete(n.ordVoted, blk.Header.N)
	delete(n.prepared, blk.Header.N)
	return effs
}

// notifyClient builds the Notif effect for one transaction.
func (n *Node) notifyClient(client types.ClientID, seq types.SeqNum, d types.Digest, status bool) consensus.Effect {
	notif := &types.Notif{From: n.cfg.ID, V: n.View(), N: seq, TxD: d, Status: status}
	notif.Sig = n.sign(notif.SigningBytes())
	return consensus.SendClient{To: client, Msg: notif}
}
