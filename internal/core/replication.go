package core

import (
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// --- Proposal intake ---------------------------------------------------------

// onProp handles a client proposal (§4.3 "Invoking a consensus service").
// Followers hold proposals only as complaint evidence; the leader batches
// them into consensus instances.
func (n *Node) onProp(now time.Duration, from consensus.Origin, m *types.Prop, relayed bool) []consensus.Effect {
	if m.Tx.Digest() != m.D {
		return nil
	}
	if !n.cfg.Registry.VerifyClient(m.Tx.Client, m.SigningBytes(), m.Sig) {
		return nil
	}
	if seq, ok := n.committedTx[m.D]; ok {
		// Duplicate of a committed transaction: re-notify.
		return []consensus.Effect{n.notifyClient(m.Tx.Client, seq, m.D, true)}
	}
	if n.state == Leader && n.leaderConfirmed {
		return n.enqueueTx(now, m)
	}
	// Followers remember the proposal as evidence for a future complaint.
	if _, seen := n.propSeen[m.D]; !seen {
		n.propSeen[m.D] = m
	}
	return nil
}

// enqueueTx adds a verified transaction to the leader's batch queue and
// starts replication instances while the window has room.
func (n *Node) enqueueTx(now time.Duration, m *types.Prop) []consensus.Effect {
	if n.pendingByDigest[m.D] {
		return nil
	}
	n.pendingByDigest[m.D] = true
	n.pending = append(n.pending, m.Tx)
	var effs []consensus.Effect
	effs = append(effs, n.maybeStartInstance(now)...)
	effs = append(effs, n.armBatchTimer()...)
	return effs
}

// armBatchTimer arms the partial-batch flush timer when queued transactions
// are waiting and no timer is armed. An empty queue never arms it: with
// instances in flight but nothing queued the timer would fire, flush
// nothing, and re-arm forever — a busy loop in otherwise idle leader traces.
func (n *Node) armBatchTimer() []consensus.Effect {
	if len(n.pending) == 0 || n.batchArmed {
		return nil
	}
	n.batchArmed = true
	return []consensus.Effect{consensus.SetTimer{Kind: TimerBatch, Key: 0, Delay: n.cfg.BatchTimeout}}
}

// onBatchTimer flushes a partial batch.
func (n *Node) onBatchTimer(now time.Duration) []consensus.Effect {
	n.batchArmed = false
	var effs []consensus.Effect
	effs = append(effs, n.maybeStartInstanceWith(now, true)...)
	effs = append(effs, n.armBatchTimer()...)
	return effs
}

// maybeStartInstance starts replication instances while full batches are
// queued and the window is below PipelineDepth.
func (n *Node) maybeStartInstance(now time.Duration) []consensus.Effect {
	return n.maybeStartInstanceWith(now, false)
}

// maybeStartInstanceWith admits as many instances as the replication window
// allows: one per full batch, plus — when flush is set — one final partial
// batch. Instance k+1 chains onto instance k through its predicted hash
// (types.TxBlock.PredictedHash), so successive blocks enter the Ordering
// phase without waiting for their predecessors' commit certificates.
func (n *Node) maybeStartInstanceWith(now time.Duration, flush bool) []consensus.Effect {
	if n.state != Leader || !n.leaderConfirmed {
		return nil
	}
	var effs []consensus.Effect
	for len(n.inflight) < n.cfg.PipelineDepth && len(n.pending) > 0 {
		if !flush && len(n.pending) < n.cfg.BatchSize {
			break
		}
		batch := n.pending
		if len(batch) > n.cfg.BatchSize {
			batch = batch[:n.cfg.BatchSize]
			n.pending = append([]types.Transaction(nil), n.pending[n.cfg.BatchSize:]...)
		} else {
			n.pending = nil
		}
		effs = append(effs, n.startInstance(now, batch)...)
	}
	return effs
}

// startInstance opens one consensus instance for the batch at the window's
// high watermark and broadcasts its Ord.
func (n *Node) startInstance(now time.Duration, batch []types.Transaction) []consensus.Effect {
	seq := n.store.TxHeight() + types.SeqNum(len(n.inflight)) + 1
	var prevHash types.Digest
	if prev, ok := n.inflight[seq-1]; ok {
		prevHash = prev.block.PredictedHash()
	} else {
		prevHash = n.store.LatestTxBlock().Hash()
	}
	blk := &types.TxBlock{
		Header: types.TxBlockHeader{
			V:        n.View(),
			N:        seq,
			PrevHash: prevHash,
			BatchLen: uint32(len(batch)),
		},
		Txs: batch,
	}
	digest := blk.ContentDigest()
	inst := &replInstance{
		block:   blk,
		digest:  digest,
		ordColl: quorum.NewCollector(types.QCOrdering, blk.Header.V, blk.Header.N, digest, n.quorumSize()),
		started: now,
	}
	inst.ordColl.Add(n.cfg.Registry, n.cfg.ID, n.sign(inst.ordColl.Statement()))
	n.inflight[seq] = inst
	ord := &types.Ord{From: n.cfg.ID, V: blk.Header.V, N: blk.Header.N, Prev: blk.Header.PrevHash, Txs: batch}
	ord.Sig = n.sign(ord.SigningBytes())
	return []consensus.Effect{
		consensus.Broadcast{Msg: ord},
		consensus.SetTimer{Kind: TimerInstance, Key: uint64(seq), Delay: n.cfg.InstanceTimeout},
	}
}

// onInstanceTimer retransmits an in-flight instance's phase messages. For a
// regular instance the Ord is always resent (followers that voted re-send
// their existing reply; the collectors deduplicate), plus the Cmt once the
// ordering_QC exists; an adopted instance resends its Adopt. Parked
// instances (commit_QC assembled, predecessor still open) need no
// retransmission of their own — their predecessor's timer drives progress.
func (n *Node) onInstanceTimer(now time.Duration, seq types.SeqNum) []consensus.Effect {
	inst, ok := n.inflight[seq]
	if !ok || n.state != Leader || !n.leaderConfirmed || inst.committed() {
		return nil
	}
	blk := inst.block
	var effs []consensus.Effect
	if seq == n.store.TxHeight()+1 && n.store.TxHeight() > 0 {
		// The bottom of the window is stalled: voters may be missing our
		// latest committed block (e.g. its TxBlockMsg died in a partition),
		// which both blocks their ordering votes (chain gap) and wedges any
		// stale candidate below our height out of elections. Re-broadcast
		// the tip so stragglers re-discover it and sync up.
		tip := n.store.LatestTxBlock()
		msg := &types.TxBlockMsg{From: n.cfg.ID, Block: *tip}
		msg.Sig = n.sign(msg.SigningBytes())
		effs = append(effs, consensus.Broadcast{Msg: msg})
	}
	if inst.adopted {
		ad := &types.Adopt{From: n.cfg.ID, V: n.View(), Block: *blk}
		ad.Sig = n.sign(ad.SigningBytes())
		effs = append(effs, consensus.Broadcast{Msg: ad})
	} else {
		ord := &types.Ord{From: n.cfg.ID, V: blk.Header.V, N: blk.Header.N, Prev: blk.Header.PrevHash, Txs: blk.Txs}
		ord.Sig = n.sign(ord.SigningBytes())
		effs = append(effs, consensus.Broadcast{Msg: ord})
		if inst.cmtColl != nil {
			cmt := &types.Cmt{From: n.cfg.ID, V: blk.Header.V, N: blk.Header.N, OrderingQC: blk.OrderingQC}
			cmt.Sig = n.sign(cmt.SigningBytes())
			effs = append(effs, consensus.Broadcast{Msg: cmt})
		}
	}
	effs = append(effs, consensus.SetTimer{Kind: TimerInstance, Key: uint64(seq), Delay: n.cfg.InstanceTimeout})
	return effs
}

// dropWindow abandons every in-flight instance (view change, leadership
// loss) and cancels their retransmission timers, in ascending sequence
// order for deterministic effect streams.
func (n *Node) dropWindow() []consensus.Effect {
	if len(n.inflight) == 0 {
		return nil
	}
	seqs := types.SortedKeys(n.inflight)
	effs := make([]consensus.Effect, 0, len(seqs))
	for _, seq := range seqs {
		effs = append(effs, consensus.CancelTimer{Kind: TimerInstance, Key: uint64(seq)})
	}
	n.inflight = make(map[types.SeqNum]*replInstance)
	return effs
}

// --- Phase 1: ordering (§4.3) -------------------------------------------------

// onOrd handles the leader's ordering message at a follower.
func (n *Node) onOrd(now time.Duration, m *types.Ord) []consensus.Effect {
	v := n.View()
	if m.V < v {
		return nil // never respond to a lower view (§4.3)
	}
	if m.V > v {
		// We are stale in view changes; catch up from the sender.
		return n.startSync(m.From, types.SyncVc, uint64(v), uint64(m.V), m)
	}
	if m.From != n.store.CurrentLeader() || n.state != Follower || n.replStopped {
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	height := n.store.TxHeight()
	if m.N <= height {
		return nil // already committed
	}
	// Pipelined chaining: the proposal must extend either the committed tip
	// (m.N == height+1) or a prepared-but-uncommitted predecessor in the
	// replication window, through the predecessor's predicted hash. A gap —
	// no prepared m.N-1 — means a predecessor Ord was lost or we are behind;
	// the proposal is dropped and the chain catches up through the committed
	// TxBlockMsg path (onTxBlock syncs across real gaps). Syncing here would
	// request blocks the leader may not have committed yet, which no peer
	// could serve.
	var prevHash types.Digest
	if m.N == height+1 {
		prevHash = n.store.LatestTxBlock().Hash()
	} else if prev, ok := n.prepared[m.N-1]; ok {
		prevHash = prev.predHash
	} else {
		// Ahead of our prepared chain: the predecessor's Ord is missing
		// (lost, reordered, or refused). Buffer the proposal and replay it
		// the moment the predecessor prepares or commits — far sooner than
		// the leader's retransmission cycle. Syncing here would be wrong:
		// the predecessor may not be committed anywhere yet, so no peer
		// could serve it.
		n.stashOrd(m)
		return nil
	}
	if m.Prev != prevHash {
		return nil
	}
	blk := types.TxBlock{
		Header: types.TxBlockHeader{V: m.V, N: m.N, PrevHash: m.Prev, BatchLen: uint32(len(m.Txs))},
		Txs:    m.Txs,
	}
	digest := blk.ContentDigest()
	// Lock rule: once this server holds an ordering_QC for a block at this
	// sequence number (the slot is "locked", see onCmt/onAdopt), it never
	// ordering-votes for conflicting content there. A block that reached a
	// commit_QC anywhere was locked at ≥ f+1 correct servers, so a
	// conflicting proposal can gather at most 2f votes — this is what makes
	// the committed prefix survive leader changes with a window in flight.
	// A lock is replaced only by an Adopt carrying an equal-or-higher-view
	// ordering_QC, or released once it is orphaned (lockOrphaned).
	if prep, ok := n.prepared[m.N]; ok && !prep.block.OrderingQC.IsZero() && prep.digest != digest {
		if !n.lockOrphaned(prep) {
			return nil
		}
		delete(n.prepared, m.N)
	}
	// "Verify that n has not been used" — at most one ordering vote per
	// sequence number per view. A retransmitted Ord for the block we already
	// voted re-sends the identical reply (the vote, not a new one); a
	// conflicting proposal at a used sequence number is dropped.
	if usedV, used := n.ordVoted[m.N]; used && usedV == m.V {
		prep, ok := n.prepared[m.N]
		if !ok || prep.digest != digest {
			return nil
		}
	} else {
		n.ordVoted[m.N] = m.V
		n.prepared[m.N] = &pendingProposal{block: blk, digest: digest, predHash: blk.PredictedHash()}
	}
	rep := &types.OrdReply{From: n.cfg.ID, V: m.V, N: m.N, D: digest}
	rep.Sig = n.sign(rep.SigningBytes())
	effs := []consensus.Effect{consensus.Send{To: m.From, Msg: rep}}
	// A successor may have been stashed while this slot was missing.
	effs = append(effs, n.drainOrdStash(now, m.N+1)...)
	return effs
}

// lockOrphaned reports whether a locked slot can be released because the
// chain it belongs to is dead: its sequence number's predecessor has
// committed as a *different* block than the locked block chains from. A
// locked block is only ever applied after its predecessor, and conflicting
// commits at the predecessor's height are impossible (safety below this
// slot), so an orphaned lock provably protects a block that was never
// applied anywhere — holding it would wedge the slot forever (no quorum
// could form past f+1 stale lockers, and no superseding certificate could
// ever be produced).
func (n *Node) lockOrphaned(prep *pendingProposal) bool {
	seq := prep.block.Header.N
	if seq != n.store.TxHeight()+1 {
		return false // predecessor not committed yet; cannot judge
	}
	return prep.block.Header.PrevHash != n.store.LatestTxBlock().Hash()
}

// ordStashLimit bounds the out-of-order proposal buffer.
const ordStashLimit = 256

// stashOrd buffers a proposal that arrived ahead of its predecessor.
func (n *Node) stashOrd(m *types.Ord) {
	if len(n.ordStash) >= ordStashLimit {
		return
	}
	n.ordStash[m.N] = m
}

// drainOrdStash replays buffered proposals in sequence order starting at
// next. onOrd re-validates each from scratch (view, chaining, locks), so a
// stale or equivocating stashed entry is simply discarded.
func (n *Node) drainOrdStash(now time.Duration, next types.SeqNum) []consensus.Effect {
	var effs []consensus.Effect
	for {
		m, ok := n.ordStash[next]
		if !ok {
			return effs
		}
		delete(n.ordStash, next)
		effs = append(effs, n.onOrd(now, m)...)
		next++
	}
}

// onOrdReply assembles ordering_QC at the leader. Replies are routed to
// their instance by sequence number, so every window slot gathers votes
// concurrently.
func (n *Node) onOrdReply(now time.Duration, m *types.OrdReply) []consensus.Effect {
	inst := n.inflight[m.N]
	if inst == nil || inst.cmtColl != nil {
		return nil
	}
	if m.V != inst.block.Header.V || m.D != inst.digest {
		return nil
	}
	if !inst.ordColl.Add(n.cfg.Registry, m.From, m.Sig) {
		return nil
	}
	ordQC := inst.ordColl.QC()
	inst.block.OrderingQC = ordQC
	inst.cmtColl = quorum.NewCollector(types.QCCommit, m.V, m.N, ordQC.Digest, n.quorumSize())
	inst.cmtColl.Add(n.cfg.Registry, n.cfg.ID, n.sign(inst.cmtColl.Statement()))
	cmt := &types.Cmt{From: n.cfg.ID, V: m.V, N: m.N, OrderingQC: ordQC}
	cmt.Sig = n.sign(cmt.SigningBytes())
	return []consensus.Effect{consensus.Broadcast{Msg: cmt}}
}

// --- Phase 2: commit ----------------------------------------------------------

// onCmt verifies ordering_QC and replies with a commit vote.
func (n *Node) onCmt(now time.Duration, m *types.Cmt) []consensus.Effect {
	if m.V != n.View() || m.From != n.store.CurrentLeader() || n.state != Follower || n.replStopped {
		return nil
	}
	prep, ok := n.prepared[m.N]
	if !ok || prep.block.Header.V != m.V {
		return nil
	}
	if m.OrderingQC.Kind != types.QCOrdering || m.OrderingQC.View != m.V ||
		m.OrderingQC.Seq != m.N || m.OrderingQC.Digest != prep.digest {
		return nil
	}
	if err := n.cfg.Registry.VerifyQC(&m.OrderingQC, n.quorumSize()); err != nil {
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	// Storing the ordering_QC locks the slot: from here on this server
	// refuses conflicting proposals at this sequence number (see onOrd) and
	// carries the certified block as evidence in its election votes, which
	// is what lets a new leader adopt the old leader's in-flight window.
	prep.block.OrderingQC = m.OrderingQC
	rep := &types.CmtReply{From: n.cfg.ID, V: m.V, N: m.N, D: prep.digest}
	rep.Sig = n.sign(rep.SigningBytes())
	return []consensus.Effect{consensus.Send{To: m.From, Msg: rep}}
}

// onAdopt handles the new leader's re-proposal of a certified block from an
// earlier view (view-change window adoption). The attached ordering_QC
// replaces the Ordering phase: after verifying it — and the chain linkage —
// the follower locks the slot and answers with a CmtReply over the block's
// original commit statement, so the resulting commit_QC (and therefore the
// block hash) is identical to what the previous leader would have produced.
func (n *Node) onAdopt(now time.Duration, m *types.Adopt) []consensus.Effect {
	v := n.View()
	if m.V < v {
		return nil
	}
	if m.V > v {
		// We are stale in view changes; catch up from the sender.
		return n.startSync(m.From, types.SyncVc, uint64(v), uint64(m.V), m)
	}
	if m.From != n.store.CurrentLeader() || n.state != Follower || n.replStopped {
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	blk := m.Block
	blk.CommitQC = types.QC{} // the commit certificate is what adoption produces
	seq := blk.Header.N
	digest := blk.ContentDigest()
	qc := blk.OrderingQC
	if qc.Kind != types.QCOrdering || qc.Seq != seq || qc.View != blk.Header.V || qc.Digest != digest {
		return nil
	}
	if err := n.cfg.Registry.VerifyQC(&qc, n.quorumSize()); err != nil {
		return nil
	}
	height := n.store.TxHeight()
	if seq <= height {
		// Already committed here. Re-vote only for the identical block,
		// helping the leader finish an instance some server already learned.
		cb := n.store.TxBlock(seq)
		if cb == nil || cb.ContentDigest() != digest {
			return nil
		}
	} else {
		var prevHash types.Digest
		if seq == height+1 {
			prevHash = n.store.LatestTxBlock().Hash()
		} else if prev, ok := n.prepared[seq-1]; ok {
			prevHash = prev.predHash
		} else {
			return nil
		}
		if blk.Header.PrevHash != prevHash {
			return nil
		}
		// A held lock is only replaced by an equal-or-higher-view
		// certificate (certificate supersession; prevents replay of a
		// superseded slot) — or released outright once orphaned.
		if prep, ok := n.prepared[seq]; ok && !prep.block.OrderingQC.IsZero() &&
			prep.digest != digest && qc.View < prep.block.OrderingQC.View &&
			!n.lockOrphaned(prep) {
			return nil
		}
		n.prepared[seq] = &pendingProposal{block: blk, digest: digest, predHash: blk.PredictedHash()}
	}
	rep := &types.CmtReply{From: n.cfg.ID, V: blk.Header.V, N: seq, D: digest}
	rep.Sig = n.sign(rep.SigningBytes())
	effs := []consensus.Effect{consensus.Send{To: m.From, Msg: rep}}
	effs = append(effs, n.drainOrdStash(now, seq+1)...)
	return effs
}

// onCmtReply assembles commit_QC at the leader. The quorum for any window
// slot may complete first, but blocks are applied strictly in sequence
// order: an out-of-order completion parks (commit_QC stored on the
// instance) until every predecessor has committed, preserving the exact
// client-notification and ledger semantics of the stop-and-wait protocol.
func (n *Node) onCmtReply(now time.Duration, m *types.CmtReply) []consensus.Effect {
	inst := n.inflight[m.N]
	if inst == nil || inst.cmtColl == nil || inst.committed() {
		return nil
	}
	if m.V != inst.block.Header.V || m.D != inst.digest {
		return nil
	}
	if !inst.cmtColl.Add(n.cfg.Registry, m.From, m.Sig) {
		return nil
	}
	inst.block.CommitQC = inst.cmtColl.QC()
	effs := []consensus.Effect{consensus.CancelTimer{Kind: TimerInstance, Key: uint64(m.N)}}
	effs = append(effs, n.applyCommittedPrefix()...)
	// Refill the window from the queue.
	effs = append(effs, n.maybeStartInstance(now)...)
	return effs
}

// applyCommittedPrefix drains the contiguous committed prefix of the window
// bottom-up: append to the ledger, notify clients, broadcast the finished
// txBlock. It stops at the first slot still gathering votes.
func (n *Node) applyCommittedPrefix() []consensus.Effect {
	var effs []consensus.Effect
	for {
		next := n.store.TxHeight() + 1
		inst, ok := n.inflight[next]
		if !ok || !inst.committed() {
			return effs
		}
		delete(n.inflight, next)
		if err := n.store.AppendTxBlock(n.cfg.Registry, inst.block); err != nil {
			// Should be impossible (the block extends our own tip). Nothing
			// above the failed block can chain anymore: drop the window and
			// let the next proposal — or a view change — restart cleanly.
			effs = append(effs, n.dropWindow()...)
			return effs
		}
		committed := n.store.LatestTxBlock() // the stored copy carries Status
		effs = append(effs, n.recordCommit(committed)...)
		msg := &types.TxBlockMsg{From: n.cfg.ID, Block: *committed}
		msg.Sig = n.sign(msg.SigningBytes())
		effs = append(effs, consensus.Broadcast{Msg: msg})
		effs = append(effs, consensus.Commit{Block: committed})
		effs = append(effs, n.maybeCheckpoint()...)
	}
}

// onTxBlock commits a finished block at a follower ("Terminating consensus
// instance": verify the txBlock, then notify the client).
func (n *Node) onTxBlock(now time.Duration, m *types.TxBlockMsg) []consensus.Effect {
	blk := &m.Block
	height := n.store.TxHeight()
	if blk.Header.N <= height {
		return nil
	}
	if blk.Header.N > height+1 {
		return n.startSync(m.From, types.SyncTx, uint64(height), uint64(blk.Header.N-1), m)
	}
	if err := n.store.AppendTxBlock(n.cfg.Registry, blk); err != nil {
		return nil
	}
	committed := n.store.LatestTxBlock()
	var effs []consensus.Effect
	effs = append(effs, n.recordCommit(committed)...)
	effs = append(effs, consensus.Commit{Block: committed})
	effs = append(effs, n.maybeCheckpoint()...)
	// The next proposal may be waiting in the out-of-order buffer.
	effs = append(effs, n.drainOrdStash(now, committed.Header.N+1)...)
	return effs
}

// recordCommit updates commit bookkeeping and emits client notifications
// for every transaction in the block.
func (n *Node) recordCommit(blk *types.TxBlock) []consensus.Effect {
	var effs []consensus.Effect
	for i := range blk.Txs {
		tx := &blk.Txs[i]
		d := tx.Digest()
		n.committedTx[d] = blk.Header.N
		delete(n.pendingByDigest, d)
		status := true
		if i < len(blk.Status) {
			status = blk.Status[i]
		}
		effs = append(effs, n.notifyClient(tx.Client, blk.Header.N, d, status))
		// A commit settles any pending complaint for the transaction.
		if _, ok := n.comptSeen[d]; ok {
			effs = append(effs, consensus.CancelTimer{Kind: TimerCompt, Key: timerKeyFromDigest(d)})
			delete(n.comptSeen, d)
			delete(n.comptProp, d)
			delete(n.comptExpired, d)
		}
		delete(n.propSeen, d)
	}
	delete(n.ordVoted, blk.Header.N)
	delete(n.prepared, blk.Header.N)
	delete(n.ordStash, blk.Header.N)
	return effs
}

// notifyClient builds the Notif effect for one transaction.
func (n *Node) notifyClient(client types.ClientID, seq types.SeqNum, d types.Digest, status bool) consensus.Effect {
	notif := &types.Notif{From: n.cfg.ID, V: n.View(), N: seq, TxD: d, Status: status}
	notif.Sig = n.sign(notif.SigningBytes())
	return consensus.SendClient{To: client, Msg: notif}
}
