package core

import (
	"testing"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/types"
)

// holdCmtReplies intercepts every commit vote headed to the leader, freezing
// instances in the commit phase so the window fills.
func holdCmtReplies(r *rig) {
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		_, isCmtReply := msg.(*types.CmtReply)
		return isCmtReply
	}
}

// TestPipelinedWindowFillsAndDrains: with commit votes frozen, the leader
// keeps PipelineDepth instances in flight at consecutive sequence numbers
// and queues the overflow; releasing the votes drains the window in order
// and immediately refills it from the queue.
func TestPipelinedWindowFillsAndDrains(t *testing.T) {
	r := newRigDepth(t, 4, 1, 4)
	holdCmtReplies(r)
	for i := 1; i <= 6; i++ {
		r.submit(i)
	}
	leader := r.nodes[1]
	pending, inflight, parked, _ := leader.WindowStats()
	if inflight != 4 || parked != 0 {
		t.Fatalf("window = %d in flight (%d parked), want 4 (0)", inflight, parked)
	}
	if pending != 2 {
		t.Fatalf("pending = %d, want 2 (overflow beyond the window)", pending)
	}
	if h := leader.Store().TxHeight(); h != 0 {
		t.Fatalf("height = %d before any commit vote, want 0", h)
	}

	r.releaseHeld() // commit votes for seqs 1-4 land; 5 and 6 start and freeze
	r.releaseHeld() // commit votes for seqs 5-6
	for id, node := range r.nodes {
		if h := node.Store().TxHeight(); h != 6 {
			t.Fatalf("server %d height = %d after drain, want 6", id, h)
		}
	}
	want := []types.SeqNum{1, 2, 3, 4, 5, 6}
	for i, seq := range r.commits[2] {
		if seq != want[i] {
			t.Fatalf("follower commit order %v, want %v (in-order apply)", r.commits[2], want)
		}
	}
}

// TestOutOfOrderQuorumParks: a commit quorum that completes before its
// predecessor's parks in the window — nothing is applied or notified until
// the chain below it commits, then both apply in sequence order.
func TestOutOfOrderQuorumParks(t *testing.T) {
	r := newRigDepth(t, 4, 1, 4)
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		rep, ok := msg.(*types.CmtReply)
		return ok && rep.N == 1 // freeze only seq 1's commit quorum
	}
	r.submit(1)
	r.submit(2) // seq 2's quorum completes while seq 1 is frozen
	leader := r.nodes[1]
	_, inflight, parked, _ := leader.WindowStats()
	if inflight != 2 || parked != 1 {
		t.Fatalf("window = %d in flight (%d parked), want 2 (1): seq 2 must park behind seq 1", inflight, parked)
	}
	if h := leader.Store().TxHeight(); h != 0 {
		t.Fatalf("height = %d while the window bottom is open, want 0 (in-order apply)", h)
	}
	if len(r.commits[1]) != 0 {
		t.Fatalf("leader emitted commits %v before the prefix closed", r.commits[1])
	}

	r.releaseHeld()
	if h := leader.Store().TxHeight(); h != 2 {
		t.Fatalf("height = %d after releasing seq 1's votes, want 2", h)
	}
	for _, id := range []types.ServerID{1, 2, 3, 4} {
		got := r.commits[id]
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("server %d commit order = %v, want [1 2]", id, got)
		}
	}
}

// TestWindowChainsPredictedHashes: every in-flight block's PrevHash must
// equal its predecessor's predicted (and, once committed, actual) hash, so
// the committed chain is identical to what stop-and-wait would have built.
func TestWindowChainsPredictedHashes(t *testing.T) {
	r := newRigDepth(t, 4, 1, 8)
	holdCmtReplies(r)
	for i := 1; i <= 5; i++ {
		r.submit(i)
	}
	r.releaseHeld()
	store := r.nodes[1].Store()
	for seq := types.SeqNum(2); seq <= 5; seq++ {
		blk, prev := store.TxBlock(seq), store.TxBlock(seq-1)
		if blk.Header.PrevHash != prev.Hash() {
			t.Fatalf("block %d PrevHash does not match block %d's hash", seq, seq-1)
		}
		if prev.PredictedHash() != prev.Hash() {
			t.Fatalf("block %d predicted hash diverges from its committed hash", seq-1)
		}
	}
}

// TestBatchTimerIdleNoRearm: with instances in flight but an empty queue,
// the flushed batch timer must NOT re-arm — the old unconditional re-arm
// produced a 2ms busy loop for the whole lifetime of every instance.
func TestBatchTimerIdleNoRearm(t *testing.T) {
	r := newRigDepth(t, 4, 2, 4) // batch of 2 so a single tx is a partial batch
	holdCmtReplies(r)
	r.submit(1)
	leader := r.nodes[1]
	pending, inflight, _, armed := leader.WindowStats()
	if pending != 1 || inflight != 0 || !armed {
		t.Fatalf("after one tx: pending=%d inflight=%d armed=%v, want 1/0/true", pending, inflight, armed)
	}
	r.fireTimers(5 * time.Millisecond) // batch timer flushes the partial batch
	pending, inflight, _, armed = leader.WindowStats()
	if pending != 0 || inflight != 1 {
		t.Fatalf("after flush: pending=%d inflight=%d, want 0/1", pending, inflight)
	}
	if armed {
		t.Fatal("batch timer re-armed with an empty queue (busy-loop regression)")
	}
	if _, ok := r.timers[1][[2]uint64{uint64(TimerBatch), 0}]; ok {
		t.Fatal("a TimerBatch is still armed in the runtime with an empty queue")
	}
}

// TestDuplicateProposals drives onProp's dedup paths through the table the
// pipeline makes interesting: duplicates of queued, in-window, and committed
// transactions.
func TestDuplicateProposals(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"queued", func(t *testing.T) {
			// Duplicate of a transaction still in the batch queue.
			r := newRigDepth(t, 4, 2, 4)
			r.submit(1)
			r.submit(1)
			pending, inflight, _, _ := r.nodes[1].WindowStats()
			if pending != 1 || inflight != 0 {
				t.Fatalf("pending=%d inflight=%d after duplicate, want 1/0", pending, inflight)
			}
		}},
		{"in-window", func(t *testing.T) {
			// Duplicate arriving while its instance is in flight must not
			// be re-batched into a second instance.
			r := newRigDepth(t, 4, 1, 4)
			holdCmtReplies(r)
			r.submit(1)
			r.submit(1)
			pending, inflight, _, _ := r.nodes[1].WindowStats()
			if pending != 0 || inflight != 1 {
				t.Fatalf("pending=%d inflight=%d after in-window duplicate, want 0/1", pending, inflight)
			}
			r.releaseHeld()
			if h := r.nodes[1].Store().TxHeight(); h != 1 {
				t.Fatalf("height = %d, want 1 (no duplicate block)", h)
			}
		}},
		{"committed-leader-renotify", func(t *testing.T) {
			// Duplicate of a committed transaction: the leader re-notifies
			// the client with the original sequence number.
			r := newRigDepth(t, 4, 1, 4)
			r.submit(1)
			before := len(r.notifs[1])
			r.submit(1)
			fresh := r.notifs[1][before:]
			if len(fresh) != 1 {
				t.Fatalf("leader sent %d notifs for a committed duplicate, want 1", len(fresh))
			}
			if n := fresh[0]; n.N != 1 || !n.Status {
				t.Fatalf("re-notify = seq %d status %v, want seq 1 status true", n.N, n.Status)
			}
			if h := r.nodes[1].Store().TxHeight(); h != 1 {
				t.Fatal("committed duplicate was re-proposed")
			}
		}},
		{"committed-follower-renotify", func(t *testing.T) {
			// Followers also answer duplicates of committed transactions.
			r := newRigDepth(t, 4, 1, 4)
			prop := r.submit(1)
			before := len(r.notifs[2])
			r.exec(2, r.nodes[2].OnMessage(r.now, consensus.FromClient(1), prop))
			fresh := r.notifs[2][before:]
			if len(fresh) != 1 || fresh[0].N != 1 {
				t.Fatalf("follower re-notify = %+v, want one notif at seq 1", fresh)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestOrdStashReplay: a proposal that arrives ahead of its lost predecessor
// is buffered and replayed — voting for both slots — the moment the
// predecessor shows up, instead of waiting for the leader's retransmission
// cycle.
func TestOrdStashReplay(t *testing.T) {
	r := newRigDepth(t, 4, 1, 4)
	var heldOrd *types.Ord
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		switch m := msg.(type) {
		case *types.Ord:
			if to == 4 && m.N == 1 {
				heldOrd = m
				return true // server 4 misses the first proposal
			}
		case *types.TxBlockMsg:
			return to == 4 // and the finished blocks
		}
		return false
	}
	r.submit(1)
	r.submit(2) // server 4 sees Ord(2) with no prepared[1]: must stash it
	if heldOrd == nil {
		t.Fatal("interceptor never captured Ord(1)")
	}
	if h := r.nodes[4].Store().TxHeight(); h != 0 {
		t.Fatalf("server 4 height = %d, want 0 (it missed everything)", h)
	}
	// Delivering the missing predecessor must produce votes for BOTH slots.
	effs := r.nodes[4].OnMessage(r.now, consensus.FromServer(1), heldOrd)
	var voted []types.SeqNum
	for _, e := range effs {
		if s, ok := e.(consensus.Send); ok {
			if rep, ok := s.Msg.(*types.OrdReply); ok {
				voted = append(voted, rep.N)
			}
		}
	}
	if len(voted) != 2 || voted[0] != 1 || voted[1] != 2 {
		t.Fatalf("replayed votes = %v, want [1 2] (stash drained in order)", voted)
	}
}

// TestOrphanedLockReleases: a slot can end up locked above a predecessor
// that never certified anywhere (per-slot ordering quorums complete
// independently). After a view change, the new leader has no evidence for
// the gap slot, commits fresh content there, and the locked block's chain
// is dead — the lock must release (it provably protects a block that was
// never applied), or the locked majority would refuse every proposal at
// that height forever and wedge the cluster.
func TestOrphanedLockReleases(t *testing.T) {
	r := newRigDepth(t, 4, 1, 4)
	r.submit(1) // commit a base block normally
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		if rep, ok := msg.(*types.OrdReply); ok && rep.N == 2 {
			return true // slot 2 never certifies: no ordering_QC anywhere
		}
		return false
	}
	r.submit(2) // stuck in the Ordering phase
	r.submit(3) // certifies and goes through Cmt: followers lock slot 3
	// The leader dies; nobody holds evidence for slot 2, so the new leader
	// must fill seqs 2.. with fresh blocks while slot 3's old lock lingers.
	r.held = nil
	r.intercept = nil
	r.down[1] = true
	prop := r.clientProp(4)
	r.complain(prop)
	r.fireTimers(2 * time.Second)
	r.solvePuzzles()
	for _, id := range []types.ServerID{2, 3, 4} {
		node := r.nodes[id]
		if node.View() != 2 {
			t.Fatalf("server %d still in view %d", id, node.View())
		}
		if h := node.Store().TxHeight(); h < 4 {
			t.Fatalf("server %d wedged at height %d (orphaned lock at slot 3 not released), want ≥ 4", id, h)
		}
	}
}

// TestViewChangeAdoptsFullWindow is the committed-prefix acceptance test for
// window adoption: the leader commits blocks whose TxBlockMsgs never reach
// the followers, then fail-stops with a full window. The new leader must
// re-commit those exact blocks — byte-identical hashes — from the certified
// slots carried by election votes, so the dead leader's chain remains a
// prefix of the cluster's when it recovers.
func TestViewChangeAdoptsFullWindow(t *testing.T) {
	r := newRigDepth(t, 4, 1, 4)
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		_, isBlk := msg.(*types.TxBlockMsg)
		return isBlk // commits stay leader-local; followers only prepare+lock
	}
	for i := 1; i <= 3; i++ {
		r.submit(i)
	}
	oldLeader := r.nodes[1]
	if h := oldLeader.Store().TxHeight(); h != 3 {
		t.Fatalf("old leader height = %d, want 3", h)
	}
	for _, id := range []types.ServerID{2, 3, 4} {
		if h := r.nodes[id].Store().TxHeight(); h != 0 {
			t.Fatalf("follower %d height = %d, want 0 (TxBlockMsgs were held)", id, h)
		}
	}

	// The leader dies with the window's blocks committed only locally.
	r.held = nil
	r.intercept = nil
	r.down[1] = true
	prop := r.clientProp(4)
	r.complain(prop)
	r.fireTimers(2 * time.Second)
	r.solvePuzzles()

	// A new leader rules view 2 and must have adopted blocks 1-3.
	for _, id := range []types.ServerID{2, 3, 4} {
		node := r.nodes[id]
		if node.View() != 2 {
			t.Fatalf("server %d still in view %d", id, node.View())
		}
		if h := node.Store().TxHeight(); h < 3 {
			t.Fatalf("server %d height = %d after adoption, want ≥ 3", id, h)
		}
	}
	// Byte-identical adoption: every re-committed block hashes exactly as
	// the dead leader's copy (same header view, same commit statement).
	for seq := types.SeqNum(1); seq <= 3; seq++ {
		want := oldLeader.Store().TxBlock(seq).Hash()
		for _, id := range []types.ServerID{2, 3, 4} {
			if got := r.nodes[id].Store().TxBlock(seq).Hash(); got != want {
				t.Fatalf("server %d block %d hash differs from the dead leader's (committed-prefix violation)", id, seq)
			}
		}
	}
	// The complained transaction must also have committed in the new view.
	newLeaderID := r.nodes[2].CurrentLeader()
	committedSeq := types.SeqNum(0)
	for _, id := range []types.ServerID{2, 3, 4} {
		st := r.nodes[id].Store()
		for seq := types.SeqNum(4); seq <= st.TxHeight(); seq++ {
			for _, tx := range st.TxBlock(seq).Txs {
				if tx.Digest() == prop.D {
					committedSeq = seq
				}
			}
		}
	}
	if committedSeq == 0 {
		t.Fatalf("complained tx never committed under new leader %d", newLeaderID)
	}
}
