package core

import (
	"math/rand"
	"testing"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/crypto"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// rig is a synchronous in-memory cluster: effects route immediately, timers
// fire only when the test asks. It exercises protocol logic step by step,
// independent of the simulator.
type rig struct {
	t     *testing.T
	reg   *crypto.Registry
	keys  map[types.ServerID]*crypto.KeyPair
	ckeys map[types.ClientID]*crypto.KeyPair
	nodes map[types.ServerID]*Node
	// down servers drop all traffic.
	down map[types.ServerID]bool
	// timers holds armed timers per node.
	timers map[types.ServerID]map[[2]uint64]time.Duration
	// puzzles holds pending puzzle computations.
	puzzles map[types.ServerID]*consensus.StartPuzzle
	now     time.Duration
	commits map[types.ServerID][]types.SeqNum
	// intercept, when set, holds matching messages instead of delivering
	// them (pipeline tests stall chosen protocol phases this way). Held
	// messages are delivered later via releaseHeld.
	intercept func(from, to types.ServerID, msg types.Message) bool
	held      []heldMsg
	// notifs records client notifications per sending server.
	notifs map[types.ServerID][]*types.Notif
}

type heldMsg struct {
	from, to types.ServerID
	msg      types.Message
}

func newRig(t *testing.T, n int) *rig {
	return newRigDepth(t, n, 1, 0)
}

// newRigDepth builds a rig with an explicit batch size and replication
// window depth (0 selects the core default).
func newRigDepth(t *testing.T, n, batch, depth int) *rig {
	return newRigCfg(t, n, batch, depth, nil)
}

// newRigCfg additionally lets a test mutate each node's Config before
// construction (checkpoint intervals, custom state machines, ...).
func newRigCfg(t *testing.T, n, batch, depth int, mut func(*Config)) *rig {
	reg, keys, ckeys := crypto.GenerateDeployment(33, n, 4)
	r := &rig{
		t: t, reg: reg, keys: keys, ckeys: ckeys,
		nodes:   make(map[types.ServerID]*Node),
		down:    make(map[types.ServerID]bool),
		timers:  make(map[types.ServerID]map[[2]uint64]time.Duration),
		puzzles: make(map[types.ServerID]*consensus.StartPuzzle),
		commits: make(map[types.ServerID][]types.SeqNum),
		notifs:  make(map[types.ServerID][]*types.Notif),
	}
	for i := 1; i <= n; i++ {
		id := types.ServerID(i)
		cfg := Config{
			ID: id, N: n, Keys: keys[id], Registry: reg,
			BatchSize: batch, PipelineDepth: depth, PuzzleBitsPerRP: 2,
			RNG: rand.New(rand.NewSource(int64(i))),
		}
		if mut != nil {
			mut(&cfg)
		}
		node := New(cfg)
		r.nodes[id] = node
		r.timers[id] = make(map[[2]uint64]time.Duration)
		r.exec(id, node.Init(0))
	}
	return r
}

// exec routes one node's effects synchronously.
func (r *rig) exec(from types.ServerID, effs []consensus.Effect) {
	for _, e := range effs {
		switch ef := e.(type) {
		case consensus.Send:
			r.deliver(from, ef.To, ef.Msg)
		case consensus.Broadcast:
			for id := range r.nodes {
				if id != from {
					r.deliver(from, id, ef.Msg)
				}
			}
		case consensus.SetTimer:
			r.timers[from][[2]uint64{uint64(ef.Kind), ef.Key}] = r.now + ef.Delay
		case consensus.CancelTimer:
			delete(r.timers[from], [2]uint64{uint64(ef.Kind), ef.Key})
		case consensus.StartPuzzle:
			cp := ef
			r.puzzles[from] = &cp
		case consensus.AbortPuzzle:
			if p := r.puzzles[from]; p != nil && p.Token == ef.Token {
				delete(r.puzzles, from)
			}
		case consensus.Commit:
			r.commits[from] = append(r.commits[from], ef.Block.Header.N)
		case consensus.SendClient:
			if n, ok := ef.Msg.(*types.Notif); ok {
				r.notifs[from] = append(r.notifs[from], n)
			}
		}
	}
}

func (r *rig) deliver(from, to types.ServerID, msg types.Message) {
	if r.down[from] || r.down[to] {
		return
	}
	if r.intercept != nil && r.intercept(from, to, msg) {
		r.held = append(r.held, heldMsg{from, to, msg})
		return
	}
	node := r.nodes[to]
	r.exec(to, node.OnMessage(r.now, consensus.FromServer(from), msg))
}

// releaseHeld delivers every held message (bypassing the interceptor) in
// capture order and clears the buffer.
func (r *rig) releaseHeld() {
	held := r.held
	r.held = nil
	saved := r.intercept
	r.intercept = nil
	for _, h := range held {
		r.deliver(h.from, h.to, h.msg)
	}
	r.intercept = saved
}

// solvePuzzles completes pending proof-of-work computations.
func (r *rig) solvePuzzles() {
	for id, p := range r.puzzles {
		if r.down[id] {
			continue
		}
		delete(r.puzzles, id)
		node := r.nodes[id]
		bits := int(p.RP) * 2
		nonce, hr, _ := crypto.SolvePuzzle(p.Seed, bits, rand.New(rand.NewSource(9)))
		r.exec(id, node.OnPuzzleSolved(r.now, p.Token, nonce, hr))
	}
}

// fireTimers advances time and fires every timer due by then.
func (r *rig) fireTimers(advance time.Duration) {
	r.now += advance
	for id, ts := range r.timers {
		if r.down[id] {
			continue
		}
		for key, at := range ts {
			if at <= r.now {
				delete(ts, key)
				r.exec(id, r.nodes[id].OnTimer(r.now, consensus.TimerKind(key[0]), key[1]))
			}
		}
	}
}

// clientProp builds a signed proposal from client 1.
func (r *rig) clientProp(seq int) *types.Prop {
	tx := types.Transaction{Timestamp: int64(seq), Client: 1, Data: []byte("payload")}
	prop := &types.Prop{Tx: tx, D: tx.Digest()}
	prop.Sig = r.ckeys[1].Sign(prop.SigningBytes())
	return prop
}

// submit broadcasts a proposal from client 1 to all servers.
func (r *rig) submit(seq int) *types.Prop {
	prop := r.clientProp(seq)
	for id, node := range r.nodes {
		if !r.down[id] {
			r.exec(id, node.OnMessage(r.now, consensus.FromClient(1), prop))
		}
	}
	return prop
}

// complain broadcasts a complaint for the proposal.
func (r *rig) complain(prop *types.Prop) {
	compt := &types.Compt{Prop: *prop}
	compt.Sig = r.ckeys[1].Sign(compt.SigningBytes())
	for id, node := range r.nodes {
		if !r.down[id] {
			r.exec(id, node.OnMessage(r.now, consensus.FromClient(1), compt))
		}
	}
}

// --- Tests ---------------------------------------------------------------------

// TestReplicationHappyPath: one proposal commits on every replica through
// the two-phase protocol, synchronously.
func TestReplicationHappyPath(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1)
	for id, node := range r.nodes {
		if node.Store().TxHeight() != 1 {
			t.Fatalf("server %d height = %d, want 1", id, node.Store().TxHeight())
		}
	}
	if len(r.commits[2]) != 1 {
		t.Fatalf("follower commits = %v", r.commits[2])
	}
	// Duplicate submission must not commit twice.
	r.submit(1)
	if r.nodes[1].Store().TxHeight() != 1 {
		t.Fatal("duplicate proposal recommitted")
	}
}

// TestViewChangeOnLeaderCrash walks the full active view-change protocol:
// complaint → ConfVC/ReVC → redeemer (puzzle) → candidate → election →
// vcBlock → new leader commits the complained transaction.
func TestViewChangeOnLeaderCrash(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1) // warms the chain (height 1)
	r.down[1] = true
	prop := r.clientProp(2)
	r.complain(prop)
	// Complaint timers arm on first Compt; fire them so followers inspect.
	r.fireTimers(2 * time.Second)
	// The earliest inspector gathered f+1 ReVCs synchronously and became a
	// redeemer; solve its puzzle to trigger the campaign.
	r.solvePuzzles()
	// One server must now lead view 2 and everyone else must follow it.
	leaders := 0
	for id, node := range r.nodes {
		if r.down[id] {
			continue
		}
		if node.View() != 2 {
			t.Fatalf("server %d still in view %d", id, node.View())
		}
		if node.State() == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders in view 2 = %d, want exactly 1 (P1)", leaders)
	}
	// The new leader must have picked up the complaint backlog.
	newLeader := r.nodes[2].CurrentLeader()
	if newLeader == 1 {
		t.Fatal("crashed server re-elected (violates active VC promise)")
	}
	for id, node := range r.nodes {
		if !r.down[id] && node.Store().TxHeight() != 2 {
			t.Fatalf("server %d did not commit the complained tx (height %d)", id, node.Store().TxHeight())
		}
	}
}

// TestLeadershipRobustness (Theorem 4): under a correct leader, faulty
// servers alone cannot assemble conf_QC, so no view change happens even if
// they broadcast ConfVC for a real complaint.
func TestLeadershipRobustness(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1)
	// A faulty server (4) fabricates an inspection for a tx that committed
	// long ago — and for an unknown tx.
	bad := &types.ConfVC{From: 4, V: 1, Reason: types.ReasonComplaint, TxD: types.Digest{9}, Client: 1}
	bad.Sig = r.keys[4].Sign(bad.SigningBytes())
	for id := types.ServerID(1); id <= 3; id++ {
		r.exec(id, r.nodes[id].OnMessage(r.now, consensus.FromServer(4), bad))
	}
	for id, node := range r.nodes {
		if node.View() != 1 {
			t.Fatalf("server %d left view 1 under a correct leader", id)
		}
		if id != 1 && node.State() != Follower {
			t.Fatalf("server %d state = %v", id, node.State())
		}
	}
}

// TestVoteOncePerView (C1): a follower that voted in a view rejects a second
// campaign for the same view.
func TestVoteOncePerView(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1)
	r.down[1] = true
	prop := r.clientProp(2)
	r.complain(prop)
	r.fireTimers(2 * time.Second)
	r.solvePuzzles() // elects a leader for view 2

	// Forge a competing (valid-looking) campaign for view 2 from server 4.
	voter := r.nodes[3]
	if voter.lastVotedView < 2 {
		t.Skip("server 3 did not vote in view 2 in this schedule")
	}
	before := voter.lastVotedFor
	camp := &types.CampVC{From: 4, V: 1, VPrime: 2}
	camp.Sig = r.keys[4].Sign(camp.SigningBytes())
	effs := voter.OnMessage(r.now, consensus.FromServer(4), camp)
	for _, e := range effs {
		if s, ok := e.(consensus.Send); ok {
			if _, isVote := s.Msg.(*types.VoteCP); isVote {
				t.Fatal("double vote emitted for the same view")
			}
		}
	}
	if voter.lastVotedFor != before {
		t.Fatal("vote record changed")
	}
}

// TestLemma10FailedCampaignsDoNotChangeRP: a server that campaigns but is
// not elected keeps its recorded penalty (only the elected leader's rp is
// persisted, §4.2.4).
func TestLemma10FailedCampaignsDoNotChangeRP(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1)
	r.down[1] = true
	prop := r.clientProp(2)
	r.complain(prop)
	r.fireTimers(2 * time.Second)
	r.solvePuzzles()
	winner := r.nodes[2].CurrentLeader()
	// Every correct non-winner campaigned or could have; their recorded rp
	// in the new vcBlock must still be the initial 1.
	blk := r.nodes[2].Store().LatestVcBlock()
	for id := types.ServerID(2); id <= 4; id++ {
		want := int64(1)
		if id == winner {
			continue // the winner's rp legitimately changed
		}
		if blk.RP[id] != want {
			t.Fatalf("non-elected server %d rp = %d, want %d (Lemma 10)", id, blk.RP[id], want)
		}
	}
}

// TestCampaignRejectsBadPuzzle (C5): a campaign whose hash result does not
// match the recomputed puzzle is rejected.
func TestCampaignRejectsBadPuzzle(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1)
	r.down[1] = true
	prop := r.clientProp(2)
	r.complain(prop)
	r.fireTimers(2 * time.Second)
	// A redeemer exists with a pending puzzle; forge its candidacy with a
	// wrong hash result instead of solving.
	var redeemer *Node
	for id, node := range r.nodes {
		if !r.down[id] && node.State() == Redeemer {
			redeemer = node
			break
		}
	}
	if redeemer == nil {
		t.Fatal("no redeemer emerged")
	}
	camp := &types.CampVC{
		From:   redeemer.ID(),
		ConfQC: redeemer.confQC,
		V:      1, VPrime: 2,
		RP: redeemer.campRP, CI: redeemer.campCI,
		Nonce: []byte{1, 2, 3}, HR: types.Digest{0xAA},
		TxN: redeemer.Store().TxHeight(), TxHash: redeemer.Store().LatestTxBlock().Hash(),
	}
	camp.Sig = r.keys[redeemer.ID()].Sign(camp.SigningBytes())
	var voter *Node
	for id, node := range r.nodes {
		if !r.down[id] && node.ID() != redeemer.ID() {
			voter = node
			_ = id
			break
		}
	}
	effs := voter.OnMessage(r.now, consensus.FromServer(redeemer.ID()), camp)
	for _, e := range effs {
		if s, ok := e.(consensus.Send); ok {
			if _, isVote := s.Msg.(*types.VoteCP); isVote {
				t.Fatal("vote granted to a forged puzzle (C5 broken)")
			}
		}
	}
}

// TestCampaignRejectsWrongRP (C4): a campaign claiming a penalty different
// from the engine's recomputation is rejected.
func TestCampaignRejectsWrongRP(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1)
	r.down[1] = true
	prop := r.clientProp(2)
	r.complain(prop)
	r.fireTimers(2 * time.Second)
	var redeemer *Node
	for id, node := range r.nodes {
		if !r.down[id] && node.State() == Redeemer {
			redeemer = node
			break
		}
	}
	if redeemer == nil {
		t.Fatal("no redeemer emerged")
	}
	// Solve the real puzzle for a LOWER claimed rp (0 work), then campaign
	// with that understated penalty.
	seed := crypto.PuzzleSeed(redeemer.Store().LatestTxBlock().Hash(), 2)
	nonce, hr, _ := crypto.SolvePuzzle(seed, 0, rand.New(rand.NewSource(1)))
	camp := &types.CampVC{
		From:   redeemer.ID(),
		ConfQC: redeemer.confQC,
		V:      1, VPrime: 2,
		RP: 0, CI: redeemer.campCI, // understated rp
		Nonce: nonce, HR: hr,
		TxN: redeemer.Store().TxHeight(), TxHash: redeemer.Store().LatestTxBlock().Hash(),
	}
	camp.Sig = r.keys[redeemer.ID()].Sign(camp.SigningBytes())
	var voter *Node
	for id, node := range r.nodes {
		if !r.down[id] && node.ID() != redeemer.ID() {
			voter = node
			_ = id
			break
		}
	}
	effs := voter.OnMessage(r.now, consensus.FromServer(redeemer.ID()), camp)
	for _, e := range effs {
		if s, ok := e.(consensus.Send); ok {
			if _, isVote := s.Msg.(*types.VoteCP); isVote {
				t.Fatal("vote granted to an understated penalty (C4 broken)")
			}
		}
	}
}

// TestStaleCandidateRejected (C3): a candidate whose log is behind the
// voter's gets no vote.
func TestStaleCandidateRejected(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1) // all at height 1
	// Server 4 "missed" the block: rebuild it fresh at height 0.
	stale := New(Config{
		ID: 4, N: 4, Keys: r.keys[4], Registry: r.reg,
		BatchSize: 1, PuzzleBitsPerRP: 2,
		RNG: rand.New(rand.NewSource(4)),
	})
	r.nodes[4] = stale
	r.exec(4, stale.Init(r.now))
	r.down[1] = true
	prop := r.clientProp(2)
	r.complain(prop)
	r.fireTimers(2 * time.Second)
	// Let only the stale server's puzzle complete (drop others).
	for id := range r.puzzles {
		if id != 4 {
			delete(r.puzzles, id)
		}
	}
	r.solvePuzzles()
	// Nobody should have voted for the stale candidate: view must still
	// be 1 on the up-to-date servers.
	for _, id := range []types.ServerID{2, 3} {
		if r.nodes[id].View() != 1 {
			t.Fatalf("up-to-date server %d adopted a stale candidate's view", id)
		}
	}
}

// TestRefreshMechanism (§4.2.5): when 2f+1 servers' penalties exceed π,
// refreshes reset them to the initial values.
func TestRefreshMechanism(t *testing.T) {
	reg, keys, _ := crypto.GenerateDeployment(44, 4, 1)
	nodes := make(map[types.ServerID]*Node)
	for i := 1; i <= 4; i++ {
		id := types.ServerID(i)
		nodes[id] = New(Config{
			ID: id, N: 4, Keys: keys[id], Registry: reg,
			RefreshThreshold: 3, PuzzleBitsPerRP: 2,
			RNG: rand.New(rand.NewSource(int64(i))),
		})
		nodes[id].Init(0)
	}
	// Inflate everyone's penalty above π in every store (as if GST-era
	// timeouts penalized them all).
	for _, n := range nodes {
		for i := 1; i <= 4; i++ {
			n.store.UpdateReputation(types.ServerID(i), 5, 1)
		}
	}
	// Drive the refresh: each server requests one, messages route directly.
	var route func(from types.ServerID, effs []consensus.Effect)
	route = func(from types.ServerID, effs []consensus.Effect) {
		for _, e := range effs {
			if b, ok := e.(consensus.Broadcast); ok {
				for id, n := range nodes {
					if id != from {
						route(id, n.OnMessage(0, consensus.FromServer(from), b.Msg))
					}
				}
			}
		}
	}
	for id, n := range nodes {
		route(id, n.maybeRequestRefresh(0))
	}
	for id, n := range nodes {
		for i := types.ServerID(1); i <= 4; i++ {
			if got := n.ReputationPenalty(i); got != 1 {
				t.Fatalf("server %d sees rp[%d] = %d after refresh, want 1", id, i, got)
			}
		}
	}
}

// TestStateString covers the state and trace formatting helpers.
func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Follower: "follower", Redeemer: "redeemer", Candidate: "candidate", Leader: "leader",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

// timersOfKind lists the armed timer keys of one kind at a server.
func (r *rig) timersOfKind(id types.ServerID, kind consensus.TimerKind) []uint64 {
	var out []uint64
	for key := range r.timers[id] {
		if consensus.TimerKind(key[0]) == kind {
			out = append(out, key[1])
		}
	}
	return out
}

// fireKind fires every armed timer of one kind at a server, regardless of
// its deadline (schedule-surgery for wedge-ordering tests).
func (r *rig) fireKind(id types.ServerID, kind consensus.TimerKind) {
	for _, key := range r.timersOfKind(id, kind) {
		delete(r.timers[id], [2]uint64{uint64(kind), key})
		r.exec(id, r.nodes[id].OnTimer(r.now, kind, key))
	}
}

// TestStaleCampaignNotVoted (C3 on the vc chain): a campaign departing
// from a view below the voter's must not collect a vote even when every
// other criterion — valid conf_QC, matching tx chain, correct reputation,
// solved puzzle — checks out. The chaos fuzzer's
// corpus-lossy-window-stale-campaign scenario wedged the cluster exactly
// here: voting for a stale candidate burns C1's one-vote-per-view on a
// vcBlock that cannot extend the voters' chains.
func TestStaleCampaignNotVoted(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1)
	r.down[1] = true
	prop := r.clientProp(2)
	r.complain(prop)
	r.fireTimers(2 * time.Second)
	r.solvePuzzles() // elects a leader for view 2

	voter := r.nodes[3]
	if voter.View() != 2 {
		t.Fatalf("setup: server 3 in view %d, want 2", voter.View())
	}
	if voter.lastVotedView >= 3 {
		t.Fatalf("setup: server 3 already voted in view %d", voter.lastVotedView)
	}

	// Forge server 4's campaign for view 3 departing from view 1 — as if it
	// never saw view 2 — with everything else fully valid: a real f+1
	// conf_QC over view 1, the voter's own chain tip (C3 heights equal),
	// the engine-computed penalty (C4), and a solved puzzle (C5).
	coll := quorum.NewCollector(types.QCConf, 1, types.SeqNum(4), types.Digest{}, 2)
	coll.Add(r.reg, 4, r.keys[4].Sign(coll.Statement()))
	coll.Add(r.reg, 3, r.keys[3].Sign(coll.Statement()))
	confQC := coll.QC()
	latest := voter.store.LatestTxBlock()
	res := voter.cfg.Engine.CalcRP(3, voter.store.Snapshot(4, int64(latest.Header.N)))
	seed := crypto.PuzzleSeed(latest.Hash(), 3)
	nonce, hr, _ := crypto.SolvePuzzle(seed, int(res.RP)*voter.cfg.PuzzleBitsPerRP, rand.New(rand.NewSource(9)))
	camp := &types.CampVC{
		From: 4, ConfQC: confQC, V: 1, VPrime: 3, RP: res.RP, CI: res.CI,
		Nonce: nonce, HR: hr, TxN: latest.Header.N, TxHash: latest.Hash(), VcN: 1,
	}
	camp.Sig = r.keys[4].Sign(camp.SigningBytes())

	before := voter.lastVotedView
	effs := voter.OnMessage(r.now, consensus.FromServer(4), camp)
	for _, e := range effs {
		if s, ok := e.(consensus.Send); ok {
			switch s.Msg.(type) {
			case *types.VoteCP:
				t.Fatal("voted for a campaign departing from a stale view")
			case *types.SyncReq:
				t.Fatal("synced toward a candidate whose vc chain is behind ours")
			}
		}
	}
	if voter.lastVotedView != before {
		t.Fatalf("vote record advanced to view %d on a stale campaign", voter.lastVotedView)
	}
}

// TestUnconfirmedLeaderRetransmits reproduces the election standoff the
// chaos fuzzer mined (corpus-lossy-window-unconfirmed-leader): a candidate
// wins the vote, but every VcYes ack is lost, so it sits elected-but-
// unconfirmed while its voters — votes for v' burned (C1) — sit one view
// ahead with no one able to break the tie. The TimerVcConfirm retry must
// re-broadcast the pending vcBlock, the voters who already installed it
// must re-ack the duplicate, and the election must then complete.
func TestUnconfirmedLeaderRetransmits(t *testing.T) {
	r := newRig(t, 4)
	r.submit(1)
	r.down[1] = true
	prop := r.clientProp(2)
	r.complain(prop)
	// Lose every VcYes: the winner broadcasts its vcBlock, the voters
	// install it and ack, and none of the acks arrive.
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		_, isYes := msg.(*types.VcYes)
		return isYes
	}
	r.fireTimers(2 * time.Second)
	r.solvePuzzles() // elects a leader for view 2; acks held

	var leader *Node
	var leaderID types.ServerID
	for id, n := range r.nodes {
		if n.State() == Leader && !r.down[id] {
			leader, leaderID = n, id
		}
	}
	if leader == nil {
		t.Fatal("setup: no leader elected")
	}
	if leader.leaderConfirmed || leader.pendingVcBlock == nil || leader.View() != 1 {
		t.Fatalf("setup: leader %d should be elected but unconfirmed (confirmed=%v view=%d)",
			leaderID, leader.leaderConfirmed, leader.View())
	}
	if got := r.timersOfKind(leaderID, TimerVcConfirm); len(got) == 0 {
		t.Fatal("unconfirmed leader armed no TimerVcConfirm")
	}

	// The fabric heals: the retry re-broadcasts the pending vcBlock, the
	// voters (already at view 2) re-ack the duplicate, and the collector
	// completes the election.
	r.held = nil
	r.intercept = nil
	r.fireKind(leaderID, TimerVcConfirm)
	if !leader.leaderConfirmed || leader.View() != 2 {
		t.Fatalf("retry did not complete the election: confirmed=%v view=%d",
			leader.leaderConfirmed, leader.View())
	}
	if got := r.timersOfKind(leaderID, TimerVcConfirm); len(got) != 0 {
		t.Fatalf("confirmation left TimerVcConfirm armed: %v", got)
	}
	// A late firing after confirmation is a no-op.
	if effs := leader.OnTimer(r.now, TimerVcConfirm, 2); len(effs) != 0 {
		t.Fatalf("confirmed leader re-broadcast on a stale retry timer: %v", effs)
	}
	// And replication works in the new view.
	r.submit(3)
	for id, n := range r.nodes {
		if r.down[id] {
			continue
		}
		if n.Store().TxHeight() < 2 {
			t.Fatalf("server %d did not commit in the recovered view (height %d)", id, n.Store().TxHeight())
		}
	}
}

// TestFailedInspectionRetries reproduces the view-change wedge the live
// chaos harness exposed: a follower whose complaint timer expires first
// inspects alone — its peers have seen the complaint but their own timers
// have not expired, so Theorem 4's two-condition rule makes them refuse to
// confirm — and the inspection times out. Without a retry the follower
// would never inspect again (complaint timers arm only on first sight, and
// a stuck client re-complains the same transaction forever); with it, the
// ConfVC timeout re-arms the complaint timer and the second inspection
// succeeds once the peers have expired too.
func TestFailedInspectionRetries(t *testing.T) {
	r := newRig(t, 4)
	r.down[1] = true // the leader fail-stops
	prop := r.submit(1)
	r.complain(prop)

	// Only S2's complaint timer expires; it inspects and nobody confirms.
	r.fireKind(2, TimerCompt)
	if r.nodes[2].state != Follower {
		t.Fatalf("S2 advanced to %v from an unconfirmable inspection", r.nodes[2].state)
	}
	// The inspection window lapses: the retry must re-arm the complaint
	// timer instead of abandoning failure detection forever.
	r.fireKind(2, TimerConfVC)
	if got := r.timersOfKind(2, TimerCompt); len(got) == 0 {
		t.Fatal("failed inspection left no complaint-timer retry armed — the follower would never inspect again")
	}

	// Peers' timers expire (marking their complaints expired); S2's
	// retried inspection must now assemble conf_QC and start redemption.
	r.fireKind(3, TimerCompt)
	r.fireKind(4, TimerCompt)
	r.fireKind(2, TimerCompt)
	if st := r.nodes[2].state; st != Redeemer && st != Candidate {
		t.Fatalf("retried inspection did not confirm: S2 is %v, want redeemer (or already candidate)", st)
	}
}

// TestFailedInspectionRetrySkipsCommitted: the retry only targets expired
// complaints that are still uncommitted — once the transaction commits,
// the lapsing inspection must not re-arm anything.
func TestFailedInspectionRetrySkipsCommitted(t *testing.T) {
	r := newRig(t, 4)
	prop := r.submit(1) // commits immediately through the healthy leader
	r.complain(prop)
	// Manufacture a failed inspection at S2 for the (already committed)
	// complaint: expire and inspect by hand.
	r.fireKind(2, TimerCompt)
	r.fireKind(2, TimerConfVC)
	if got := r.timersOfKind(2, TimerCompt); len(got) != 0 {
		t.Fatalf("retry armed %v for a committed transaction", got)
	}
}

// TestWarmRebootRehydratesLeaderTimers: re-running Init over a node with
// retained state (the crash-recovered live path: a fresh runtime hosts the
// persisted replica, all previous timers dead) must re-arm the leader's
// batch flush and per-instance retransmission timers, or the recovered
// leader wedges with a full queue and a silent window.
func TestWarmRebootRehydratesLeaderTimers(t *testing.T) {
	r := newRigDepth(t, 4, 2, 4)
	leader := r.nodes[1]

	// A lone transaction sits in the pending batch (β=2) with the flush
	// timer armed; an intercepted OrdReply keeps one instance in flight.
	r.intercept = func(from, to types.ServerID, msg types.Message) bool {
		_, isReply := msg.(*types.OrdReply)
		return isReply && to == 1
	}
	r.fireKind(1, TimerBatch) // no-op guard: nothing pending yet
	r.submit(1)
	r.fireKind(1, TimerBatch) // flush tx 1 into instance at seq 1
	r.submit(2)               // tx 2 pends with the batch timer armed
	if _, inflight, _, _ := leader.WindowStats(); inflight == 0 {
		t.Fatal("setup failed: no in-flight instance")
	}

	// The process dies: every timer is lost. A fresh runtime calls Init.
	r.timers[1] = make(map[[2]uint64]time.Duration)
	r.exec(1, leader.Init(r.now))

	if got := r.timersOfKind(1, TimerBatch); len(got) == 0 {
		t.Fatal("warm reboot did not re-arm the batch timer: the pending transaction would never flush")
	}
	if got := r.timersOfKind(1, TimerInstance); len(got) == 0 {
		t.Fatal("warm reboot did not re-arm instance timers: the in-flight window would never retransmit")
	}

	// The rehydrated timers actually drive progress: retransmission plus
	// released replies close the window.
	r.intercept = nil
	r.fireKind(1, TimerInstance)
	r.fireKind(1, TimerBatch)
	r.fireKind(1, TimerInstance)
	if h := leader.Store().TxHeight(); h < 2 {
		t.Fatalf("rehydrated leader stalled at height %d, want 2", h)
	}
}

// TestWarmRebootRehydratesComplaintTimers: a recovered follower with an
// observed, uncommitted complaint must re-arm its inspection countdown.
func TestWarmRebootRehydratesComplaintTimers(t *testing.T) {
	r := newRig(t, 4)
	r.down[1] = true
	prop := r.submit(1)
	r.complain(prop)
	follower := r.nodes[3]

	r.timers[3] = make(map[[2]uint64]time.Duration)
	r.exec(3, follower.Init(r.now))
	if got := r.timersOfKind(3, TimerCompt); len(got) == 0 {
		t.Fatal("warm reboot dropped the complaint timer: the follower would never suspect the dead leader")
	}
	if follower.state != Follower {
		t.Fatalf("warm reboot changed state to %v", follower.state)
	}
}
