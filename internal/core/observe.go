package core

import "prestigebft/internal/types"

// Observability accessors: read-only views of node state sampled by the
// live runtime's metrics loop (which owns the node's goroutine, so no
// locking is needed). None of these mutate state or draw from the RNG —
// sampling must not perturb the deterministic core.

// ChainHeight returns the committed txBlock height.
func (n *Node) ChainHeight() types.SeqNum { return n.store.TxHeight() }

// RetainedBlocks returns how many txBlocks the ledger currently holds —
// the quantity checkpoint compaction bounds, and therefore the soak gate's
// memory-flatness signal.
func (n *Node) RetainedBlocks() int { return n.store.RetainedTxBlocks() }

// CheckpointLag returns how far the committed chain has run ahead of the
// latest certified checkpoint (the whole chain height when no checkpoint
// exists yet). A lag that grows without bound while CheckpointInterval > 0
// means certification has stalled.
func (n *Node) CheckpointLag() int64 {
	ckpt := n.store.Checkpoint()
	if ckpt == nil {
		return int64(n.store.TxHeight())
	}
	return int64(n.store.TxHeight()) - int64(ckpt.Header.Seq)
}

// ComplaintBacklog counts complained transactions that have not committed
// yet — the pressure feeding the complaint-triggered view-change path
// (§4.2.1).
func (n *Node) ComplaintBacklog() int {
	backlog := 0
	//lint:allow maporder counting a pure predicate into an int; order cannot escape
	for d := range n.comptSeen {
		if _, committed := n.committedTx[d]; !committed {
			backlog++
		}
	}
	return backlog
}

// Reputations returns this node's view of every server's reputation
// penalty, in ServerID order aligned with the returned IDs slice.
func (n *Node) Reputations() ([]types.ServerID, []int64) {
	rp := n.store.LatestVcBlock().RP
	ids := types.SortedKeys(rp)
	vals := make([]int64, len(ids))
	for i, id := range ids {
		vals[i] = rp[id]
	}
	return ids, vals
}
