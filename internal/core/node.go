// Package core implements the PrestigeBFT consensus node: the active
// view-change protocol with reputation mechanisms (§4.2 of the paper) and
// the two-phase replication protocol (§4.3).
//
// A Node is a pure event-driven state machine satisfying consensus.Replica:
// it consumes messages, timer expirations and finished proof-of-work
// computations, and emits effects. It embeds a ledger (txBlock and vcBlock
// chains plus the application state machine) and consults the reputation
// engine — never writing reputation state outside view-change consensus,
// matching the paper's "consultant" design (§3).
package core

import (
	"fmt"
	"math/rand"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/crypto"
	"prestigebft/internal/ledger"
	"prestigebft/internal/quorum"
	"prestigebft/internal/reputation"
	"prestigebft/internal/types"
)

// State is a server's role in the current view (Figure 5).
type State uint8

const (
	// Follower is the initial state; followers replicate and vote.
	Follower State = iota
	// Redeemer performs reputation-determined computation to campaign.
	Redeemer
	// Candidate runs a leader election.
	Candidate
	// Leader conducts replication consensus.
	Leader
)

func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Redeemer:
		return "redeemer"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Timer kinds used by the node.
const (
	// TimerCompt waits for a complained transaction to commit
	// (Algo. 2 lines 3-5). Key: first 8 bytes of the tx digest.
	TimerCompt consensus.TimerKind = iota + 1
	// TimerConfVC bounds the wait for f+1 ReVC replies. Key: view.
	TimerConfVC
	// TimerElection bounds a candidate's election (Algo. 2 line 45).
	// Key: the view campaigned for.
	TimerElection
	// TimerPolicy fires the policy-defined view change (§4.2.1). Key: view.
	TimerPolicy
	// TimerBatch flushes a partially filled batch at the leader.
	TimerBatch
	// TimerInstance bounds one in-flight replication instance at the leader.
	// Key: the instance's sequence number. On expiry the leader retransmits
	// the instance's current phase message (Ord, plus Cmt once ordering_QC
	// exists) so a window stalled by message loss can drain without waiting
	// for a view change. Armed per sequence number because the replication
	// window keeps up to PipelineDepth instances in flight concurrently.
	TimerInstance
	// TimerSync bounds one SyncUp round trip. Key: the sync token. A lost
	// SyncReq or SyncResp would otherwise wedge the node in the syncing
	// state forever (stashing every message, including election votes).
	TimerSync
	// TimerVcConfirm bounds an elected-but-unconfirmed leader's wait for
	// 2f+1 VcYes. Key: the view campaigned for. On expiry the leader
	// re-broadcasts its pending vcBlock — the only retry path for a drop of
	// either the block or an ack, without which the election standoff in
	// onVcConfirmTimeout's comment wedges the cluster permanently.
	TimerVcConfirm
)

// Config parameterizes a node. Zero values select the defaults documented
// on each field.
type Config struct {
	ID       types.ServerID
	N        int // cluster size (n = 3f+1)
	Keys     *crypto.KeyPair
	Registry *crypto.Registry

	// Engine is the reputation engine; nil selects reputation.New().
	Engine *reputation.Engine

	// StateMachine receives committed transactions; nil selects AcceptAll.
	StateMachine ledger.StateMachine

	// InitialLeader leads view 1. Default: server 1.
	InitialLeader types.ServerID

	// BatchSize is the paper's β: transactions per txBlock. Default 100.
	BatchSize int
	// BatchTimeout flushes a partial batch. Default 2ms.
	BatchTimeout time.Duration

	// PipelineDepth is the replication window W: the maximum number of
	// consensus instances the leader keeps in flight at consecutive
	// sequence numbers. 1 reproduces the original stop-and-wait behavior
	// (one batch per round trip); larger values pipeline the Ordering and
	// Commit phases of successive blocks. Commits are always applied in
	// sequence order regardless of the quorum completion order. Default 8.
	PipelineDepth int
	// InstanceTimeout is the per-instance retransmission period: an
	// in-flight instance older than this has its phase messages
	// re-broadcast (vote collection is idempotent). Default 250ms — far
	// above a healthy commit round trip, so it only fires under loss.
	InstanceTimeout time.Duration
	// SyncTimeout bounds one SyncUp round trip; on expiry the node leaves
	// the syncing state and replays its stash (typically re-triggering the
	// sync). Default 500ms.
	SyncTimeout time.Duration

	// CheckpointInterval enables certified checkpoints: every
	// CheckpointInterval committed sequence numbers the replica hashes its
	// ledger state (application state + reputation inputs + chain anchor),
	// broadcasts a signed CkptVote, and — at 2f+1 matching hashes —
	// assembles a checkpoint certificate that becomes the new log base:
	// everything below it is pruned, and peers stuck below the base catch
	// up via the certified snapshot instead of block replay (DESIGN.md
	// §10). Zero disables checkpointing (the full log is retained forever).
	// Requires a state machine implementing ledger.Snapshotter; with any
	// other state machine the interval is inert.
	CheckpointInterval int

	// ConfVCTimeout bounds the wait for f+1 ReVC replies. Default 300ms.
	ConfVCTimeout time.Duration

	// TimeoutMin/TimeoutMax bound the follower's randomized timeout
	// (§4.2.1: "a timer with a random timeout... sufficiently greater than
	// Δ"; §6 uses [800, 1200 ms]). The same range drives the complaint
	// wait, the policy-trigger jitter, and the candidate election timer.
	// The randomization width TimeoutMax−TimeoutMin is Fig. 8's ε.
	TimeoutMin time.Duration
	TimeoutMax time.Duration

	// ViewPolicy rotates leadership every ViewPolicy of view lifetime
	// (the paper's r10/r30 timing policy). Zero disables policy rotation.
	ViewPolicy time.Duration

	// RefreshThreshold is π (§4.2.5): servers whose rp exceeds it seek a
	// refresh. Zero disables refreshing.
	RefreshThreshold int64

	// PuzzleBitsPerRP maps a reputation penalty to the proof-of-work
	// difficulty in leading zero bits: difficulty = rp · PuzzleBitsPerRP.
	// The paper's prose says rp zero *bytes* (8 bits), but its worked
	// example (hr = "0000966sv0d3..." for rp = 4) and all measured costs in
	// §6.2 (<20 ms below rp 5, ~10³ s near the 14th attack, hours beyond
	// rp 8) correspond to 4 bits per unit at commodity hash rates, so the
	// default (selected by 0) is 4. A negative value disables the prefix
	// requirement: the simulator enforces difficulty through its virtual
	// solve-time model instead, while C5 verification still recomputes the
	// hash (DESIGN.md §4). The runtime decides how the solve is performed;
	// the node uses this only to verify campaign computations (C5).
	PuzzleBitsPerRP int

	// RNG drives timeout randomization. Must be non-nil for deterministic
	// simulation; nil falls back to a fixed-seed source.
	RNG *rand.Rand

	// CampaignGate, if non-nil, is consulted when a view change has been
	// confirmed and this server is about to campaign; returning false
	// abandons the campaign and the server stays a follower. The fault
	// injector uses it to implement attacker strategy S2 (§6.2: faulty
	// servers "launch attacks only when they can get compensated").
	// Correct servers leave it nil.
	CampaignGate func(reputation.Result) bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Engine == nil {
		out.Engine = reputation.New()
	}
	if out.InitialLeader == 0 {
		out.InitialLeader = 1
	}
	if out.BatchSize == 0 {
		out.BatchSize = 100
	}
	if out.BatchTimeout == 0 {
		out.BatchTimeout = 2 * time.Millisecond
	}
	if out.PipelineDepth == 0 {
		out.PipelineDepth = 8
	}
	if out.PipelineDepth < 1 {
		out.PipelineDepth = 1
	}
	if out.InstanceTimeout == 0 {
		out.InstanceTimeout = 250 * time.Millisecond
	}
	if out.SyncTimeout == 0 {
		out.SyncTimeout = 500 * time.Millisecond
	}
	if out.ConfVCTimeout == 0 {
		out.ConfVCTimeout = 300 * time.Millisecond
	}
	if out.TimeoutMin == 0 {
		out.TimeoutMin = 800 * time.Millisecond
	}
	if out.TimeoutMax == 0 {
		out.TimeoutMax = 1200 * time.Millisecond
	}
	if out.PuzzleBitsPerRP == 0 {
		out.PuzzleBitsPerRP = 4
	}
	if out.RNG == nil {
		out.RNG = rand.New(rand.NewSource(int64(out.ID)))
	}
	return out
}

// replInstance is one in-flight replication consensus instance at the leader.
// Up to Config.PipelineDepth instances at consecutive sequence numbers are
// tracked simultaneously in Node.inflight; an instance whose commit_QC
// completes before its predecessor's "parks" (block.CommitQC set, still in
// the window) until the chain below it is applied.
type replInstance struct {
	block   *types.TxBlock
	digest  types.Digest
	ordColl *quorum.Collector // nil for adopted instances (ordering pre-certified)
	cmtColl *quorum.Collector
	started time.Duration
	// adopted marks an instance re-proposed from view-change evidence: its
	// block already carries an ordering_QC from an earlier view and runs
	// only the commit phase (via Adopt messages).
	adopted bool
}

// committed reports whether the instance has assembled its commit_QC and is
// parked awaiting in-order application.
func (i *replInstance) committed() bool { return !i.block.CommitQC.IsZero() }

// pendingProposal is a proposal stashed by a follower between Ord and commit.
// predHash caches the block's PredictedHash so successors in the replication
// window can verify their PrevHash chaining in O(1).
type pendingProposal struct {
	block    types.TxBlock
	digest   types.Digest
	predHash types.Digest
}

// Node is a PrestigeBFT server.
type Node struct {
	cfg   Config
	store *ledger.Store

	state State

	// viewEnteredAt records when the current view was installed, for
	// policy-trigger validation.
	viewEnteredAt time.Duration

	// leaderConfirmed reports whether this node, as leader, has collected
	// 2f+1 vcYes and may run replication (§4.2.4).
	leaderConfirmed bool

	// --- Replication state (leader) ---
	pending         []types.Transaction
	pendingByDigest map[types.Digest]bool
	// inflight is the replication window: every in-flight instance keyed by
	// sequence number. By construction the keys are contiguous — the low
	// watermark is TxHeight()+1 and the high watermark TxHeight()+len —
	// because instances are admitted at consecutive sequence numbers and
	// leave the window only through the in-order apply loop (bottom first)
	// or a view change (all at once).
	inflight   map[types.SeqNum]*replInstance
	batchArmed bool

	// --- Replication state (follower) ---
	prepared map[types.SeqNum]*pendingProposal // Ord accepted, awaiting Cmt/commit
	ordVoted map[types.SeqNum]types.View       // "n has not been used" check
	// ordStash buffers proposals that arrived ahead of their predecessor
	// (the pipelined window makes this routine when a message is lost or
	// reordered): once the predecessor prepares or commits, the stashed
	// proposal is replayed instead of waiting for the leader's
	// retransmission cycle. Bounded by ordStashLimit.
	ordStash map[types.SeqNum]*types.Ord

	// committedTx lets the node answer duplicate proposals and complaints
	// for already-committed transactions.
	committedTx map[types.Digest]types.SeqNum

	// --- Complaint / view-change trigger state ---
	propSeen     map[types.Digest]*types.Prop    // proposals observed as a follower
	comptSeen    map[types.Digest]types.ClientID // complaints observed (by tx digest)
	comptProp    map[types.Digest]*types.Prop
	comptExpired map[types.Digest]bool // own timer expired without commit
	inspecting   *quorum.Collector     // my ConfVC awaiting f+1 ReVC
	inspectView  types.View
	policyFired  bool // my policy timer fired in this view

	// replStopped marks that this server confirmed a view change out of
	// the current view (sent or collected ReVC, or validated a campaign's
	// conf_QC) and therefore stopped contributing replication votes in it.
	// With f+1 confirmers out of the quorum, the old leader can no longer
	// assemble 2f+1 replies, so log heights freeze and the candidate
	// verification criteria C3/C4 evaluate against stable chains. Committed
	// blocks (TxBlockMsg) still apply — they are certified results, not new
	// progress.
	replStopped bool

	// --- Redeemer/candidate state ---
	vPrime      types.View
	campRP      int64
	campCI      int64
	confQC      types.QC
	puzzleToken uint64
	voteColl    *quorum.Collector
	campMsg     *types.CampVC
	// voteLocks accumulates the certified in-flight blocks (locked slots)
	// attached to election votes, keeping the highest-view ordering_QC per
	// sequence number. On election it is merged with this server's own
	// locked slots into the adoption plan for the previous leader's window.
	voteLocks map[types.SeqNum]*types.TxBlock

	// --- Leader VC state ---
	vcYesColl      *quorum.Collector
	pendingVcBlock *types.VcBlock

	// --- Voting state (C1) ---
	lastVotedView types.View
	lastVotedFor  types.ServerID

	// --- Refresh state (§4.2.5) ---
	refColl     *quorum.Collector
	refreshSent bool
	refreshDone bool

	// --- Sync state ---
	syncing   bool
	syncFrom  types.ServerID
	syncToken uint64
	syncStash []stashedMsg

	// --- Checkpoint state (DESIGN.md §10) ---
	// ckptVoted is the highest interval boundary this replica has voted for
	// (or deferred); ckptRounds the open vote collectors by seq;
	// ckptStash verified votes that arrived before this replica committed
	// their boundary; ckptDeferred a boundary basis awaiting the vc chain
	// (the reputation-input digest needs the vcBlock of the anchor's view).
	ckptVoted    types.SeqNum
	ckptRounds   map[types.SeqNum]*ckptRound
	ckptStash    map[types.SeqNum][]*types.CkptVote
	ckptDeferred *ckptBasis

	tokenSeq uint64
}

type stashedMsg struct {
	from consensus.Origin
	msg  types.Message
}

// New creates a node. The ledger is seeded with the genesis blocks.
func New(cfg Config) *Node {
	c := cfg.withDefaults()
	return &Node{
		cfg:             c,
		store:           ledger.NewStore(c.N, c.InitialLeader, c.StateMachine),
		inflight:        make(map[types.SeqNum]*replInstance),
		prepared:        make(map[types.SeqNum]*pendingProposal),
		ordStash:        make(map[types.SeqNum]*types.Ord),
		ordVoted:        make(map[types.SeqNum]types.View),
		committedTx:     make(map[types.Digest]types.SeqNum),
		propSeen:        make(map[types.Digest]*types.Prop),
		comptSeen:       make(map[types.Digest]types.ClientID),
		comptProp:       make(map[types.Digest]*types.Prop),
		comptExpired:    make(map[types.Digest]bool),
		pendingByDigest: make(map[types.Digest]bool),
		ckptRounds:      make(map[types.SeqNum]*ckptRound),
		ckptStash:       make(map[types.SeqNum][]*types.CkptVote),
	}
}

// ID implements consensus.Replica.
func (n *Node) ID() types.ServerID { return n.cfg.ID }

// State returns the node's current role.
func (n *Node) State() State { return n.state }

// View returns the node's current view.
func (n *Node) View() types.View { return n.store.CurrentView() }

// CurrentLeader returns the leader of the node's current view.
func (n *Node) CurrentLeader() types.ServerID { return n.store.CurrentLeader() }

// Store exposes the node's ledger for inspection by tests, metrics, and
// applications.
func (n *Node) Store() *ledger.Store { return n.store }

// ReputationPenalty returns the node's view of server id's current rp.
func (n *Node) ReputationPenalty(id types.ServerID) int64 {
	return n.store.LatestVcBlock().RP[id]
}

// WindowStats exposes the leader's replication-window occupancy for tests
// and metrics: queued transactions, in-flight instances (of which parked =
// commit_QC assembled but a predecessor still open), and whether the
// partial-batch flush timer is armed.
func (n *Node) WindowStats() (pending, inflight, parked int, batchArmed bool) {
	//lint:allow maporder counting a pure predicate into an int; order cannot escape
	for _, inst := range n.inflight {
		if inst.committed() {
			parked++
		}
	}
	return len(n.pending), len(n.inflight), parked, n.batchArmed
}

// Init implements consensus.Replica. The initial leader of view 1 is
// considered confirmed by construction (genesis).
//
// Init also serves warm reboots: a crash-recovered process re-hosts its
// persisted node in a fresh runtime, and every timer (and any in-flight
// puzzle computation) died with the old one. The node re-derives them from
// its retained state — the leader's batch and window retransmission
// timers, sync and complaint timers, a redeemer's computation, a
// candidate's election timer. On a cold boot all of this state is empty,
// so the rehydration block is a no-op and (crucially for reproducible
// simulation) draws nothing from the RNG.
func (n *Node) Init(now time.Duration) []consensus.Effect {
	n.viewEnteredAt = now
	var effs []consensus.Effect
	if n.store.CurrentLeader() == n.cfg.ID && n.state == Follower && n.View() == 1 {
		n.state = Leader
		n.leaderConfirmed = true
	}
	effs = append(effs, n.armPolicyTimer()...)

	// --- Warm-reboot rehydration (no-op on a cold boot) ---
	if n.state == Leader {
		if n.batchArmed {
			effs = append(effs, consensus.SetTimer{Kind: TimerBatch, Key: 0, Delay: n.cfg.BatchTimeout})
		}
		// Window keys are contiguous from the low watermark, so this
		// iteration is deterministic without sorting.
		for seq := n.store.TxHeight() + 1; n.inflight[seq] != nil; seq++ {
			effs = append(effs, consensus.SetTimer{Kind: TimerInstance, Key: uint64(seq), Delay: n.cfg.InstanceTimeout})
		}
	}
	if n.syncing {
		effs = append(effs, consensus.SetTimer{Kind: TimerSync, Key: n.syncToken, Delay: n.cfg.SyncTimeout})
	}
	// Open checkpoint rounds lost their in-flight votes with the old
	// process: re-broadcast our own (stored) vote so peers that missed it
	// can still close the certificate. Ascending seq order, RNG-silent.
	for _, seq := range n.sortedCkptRounds() {
		effs = append(effs, consensus.Broadcast{Msg: n.ckptRounds[seq].vote})
	}
	// An interrupted inspection lost its ConfVC timer; drop it and let the
	// re-armed complaint timers below trigger a fresh one if still needed.
	n.inspecting = nil
	for _, d := range types.SortedDigestKeys(n.comptSeen) {
		if _, committed := n.committedTx[d]; !committed {
			effs = append(effs, consensus.SetTimer{
				Kind:  TimerCompt,
				Key:   timerKeyFromDigest(d),
				Delay: n.randTimeout(),
			})
		}
	}
	switch n.state {
	case Redeemer:
		// The computation goroutine died with the old runtime: restart it
		// under a fresh token (the seed re-derives from chain state).
		n.tokenSeq++
		n.puzzleToken = n.tokenSeq
		seed := crypto.PuzzleSeed(n.store.LatestTxBlock().Hash(), n.vPrime)
		effs = append(effs, consensus.StartPuzzle{Token: n.puzzleToken, Seed: seed, RP: n.campRP})
	case Candidate:
		effs = append(effs, consensus.SetTimer{Kind: TimerElection, Key: uint64(n.vPrime), Delay: n.randTimeout()})
	}
	return effs
}

// armPolicyTimer arms the policy view-change timer for the current view,
// randomized within [ViewPolicy+TimeoutMin, ViewPolicy+TimeoutMax] so that
// servers do not campaign simultaneously (split-vote avoidance, §4.2.3).
func (n *Node) armPolicyTimer() []consensus.Effect {
	if n.cfg.ViewPolicy == 0 {
		return nil
	}
	n.policyFired = false
	jitter := n.randTimeout()
	return []consensus.Effect{consensus.SetTimer{
		Kind:  TimerPolicy,
		Key:   uint64(n.View()),
		Delay: n.cfg.ViewPolicy + jitter,
	}}
}

// randTimeout draws a randomized timeout in [TimeoutMin, TimeoutMax].
func (n *Node) randTimeout() time.Duration {
	min, max := n.cfg.TimeoutMin, n.cfg.TimeoutMax
	if max <= min {
		return min
	}
	return min + time.Duration(n.cfg.RNG.Int63n(int64(max-min)))
}

// sign signs canonical bytes with the node's key.
func (n *Node) sign(b []byte) []byte { return n.cfg.Keys.Sign(b) }

// quorumSize returns 2f+1.
func (n *Node) quorumSize() int { return types.QuorumSize(n.cfg.N) }

// confirmSize returns f+1.
func (n *Node) confirmSize() int { return types.ConfirmSize(n.cfg.N) }

// OnMessage implements consensus.Replica.
func (n *Node) OnMessage(now time.Duration, from consensus.Origin, msg types.Message) []consensus.Effect {
	if n.syncing {
		// While syncing, only sync responses are processed; everything else
		// is stashed and replayed once the chains catch up.
		switch msg.(type) {
		case *types.SyncResp, *types.SyncReq:
		default:
			if len(n.syncStash) < 4096 {
				n.syncStash = append(n.syncStash, stashedMsg{from, msg})
			}
			return nil
		}
	}
	// The core replica speaks the full PrestigeBFT wire vocabulary; the
	// msgswitch lint holds this switch exhaustive over every exported
	// types.Message implementer, so a new message cannot silently drop.
	//lint:dispatch prestigebft/internal/types
	switch m := msg.(type) {
	// Client-facing.
	case *types.Prop:
		return n.onProp(now, from, m, false)
	case *types.Compt:
		return n.onCompt(now, from, m)
	case *types.Notif:
		return nil // client-bound commit notification; a replica never receives one

	// View change.
	case *types.ConfVC:
		return n.onConfVC(now, m)
	case *types.ReVC:
		return n.onReVC(now, m)
	case *types.CampVC:
		return n.onCampVC(now, m)
	case *types.VoteCP:
		return n.onVoteCP(now, m)
	case *types.VcBlockMsg:
		return n.onVcBlock(now, m)
	case *types.VcYes:
		return n.onVcYes(now, m)

	// Refresh.
	case *types.Ref:
		return n.onRef(now, m)
	case *types.Rdone:
		return n.onRdone(now, m)

	// Replication.
	case *types.Ord:
		return n.onOrd(now, m)
	case *types.OrdReply:
		return n.onOrdReply(now, m)
	case *types.Cmt:
		return n.onCmt(now, m)
	case *types.Adopt:
		return n.onAdopt(now, m)
	case *types.CmtReply:
		return n.onCmtReply(now, m)
	case *types.TxBlockMsg:
		return n.onTxBlock(now, m)

	// Checkpoints.
	case *types.CkptVote:
		return n.onCkptVote(now, m)

	// Sync.
	case *types.SyncReq:
		return n.onSyncReq(now, m)
	case *types.SyncResp:
		return n.onSyncResp(now, m)
	}
	return nil
}

// OnTimer implements consensus.Replica.
func (n *Node) OnTimer(now time.Duration, kind consensus.TimerKind, key uint64) []consensus.Effect {
	switch kind {
	case TimerCompt:
		return n.onComptTimeout(now, key)
	case TimerConfVC:
		return n.onConfVCTimeout(now, key)
	case TimerElection:
		return n.onElectionTimeout(now, key)
	case TimerPolicy:
		return n.onPolicyTimer(now, key)
	case TimerBatch:
		return n.onBatchTimer(now)
	case TimerInstance:
		return n.onInstanceTimer(now, types.SeqNum(key))
	case TimerSync:
		return n.onSyncTimeout(now, key)
	case TimerVcConfirm:
		return n.onVcConfirmTimeout(now, key)
	}
	return nil
}

// trace emits a protocol trace effect.
func (n *Node) trace(ev consensus.TraceEvent, v types.View, val int64) consensus.Effect {
	return consensus.Trace{Event: ev, View: v, Server: n.cfg.ID, Value: val}
}
