package core

import (
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/quorum"
	"prestigebft/internal/types"
)

// --- SyncUp (§4.2.3) ---------------------------------------------------------
//
// Stale servers acquire missing blocks from a more up-to-date peer and
// validate them through their QCs; blocks are self-certifying, so the peer
// need not be trusted. The Algorithm 2 pseudocode is synchronous; this
// implementation issues a SyncReq, stashes the message that exposed the
// staleness, and replays stashed traffic once the chains catch up.

// startSync requests blocks of the given kind in (start, end] from peer.
// trigger, if non-nil, is replayed after the sync completes. Every sync is
// bounded by TimerSync: a lost request or response must not wedge the node
// in the syncing state (it stashes all other traffic — including election
// votes — so a silent wedge would take the server out of the cluster).
func (n *Node) startSync(peer types.ServerID, kind types.SyncKind, start, end uint64, trigger types.Message) []consensus.Effect {
	if trigger != nil && len(n.syncStash) < 4096 {
		n.syncStash = append(n.syncStash, stashedMsg{consensus.FromServer(peer), trigger})
	}
	if n.syncing {
		return nil // one sync at a time; the stash replay will re-trigger
	}
	n.syncing = true
	n.syncFrom = peer
	n.syncToken++
	req := &types.SyncReq{From: n.cfg.ID, Kind: kind, Start: start, End: end}
	return []consensus.Effect{
		n.trace(consensus.TraceSyncUp, n.View(), int64(end-start)),
		consensus.Send{To: peer, Msg: req},
		consensus.SetTimer{Kind: TimerSync, Key: n.syncToken, Delay: n.cfg.SyncTimeout},
	}
}

// onSyncTimeout abandons a sync whose response never arrived and replays the
// stash; replayed messages typically expose the staleness again and retry
// the sync (possibly against a different, reachable peer).
func (n *Node) onSyncTimeout(now time.Duration, token uint64) []consensus.Effect {
	if !n.syncing || token != n.syncToken {
		return nil
	}
	n.syncing = false
	n.syncFrom = 0
	return n.replaySyncStash(now)
}

// replaySyncStash re-delivers the messages stashed while syncing. If a
// replayed message starts another sync, the remaining entries flow back into
// the stash through OnMessage's syncing path instead of being dropped.
func (n *Node) replaySyncStash(now time.Duration) []consensus.Effect {
	stash := n.syncStash
	n.syncStash = nil
	var effs []consensus.Effect
	for _, s := range stash {
		effs = append(effs, n.OnMessage(now, s.from, s.msg)...)
	}
	return effs
}

// onSyncReq serves a peer's block request from the local chains. When the
// requester's gap starts below our log base — the history it wants was
// compacted away — the response carries the certified snapshot plus only the
// retained tail: the snapshot sync handshake of DESIGN.md §10.
func (n *Node) onSyncReq(now time.Duration, m *types.SyncReq) []consensus.Effect {
	resp := &types.SyncResp{From: n.cfg.ID, Kind: m.Kind}
	switch m.Kind {
	case types.SyncTx:
		if types.SeqNum(m.Start) < n.store.LogBase() {
			resp.Snapshot = n.store.SnapshotPackage()
		}
		resp.TxBlocks = n.store.TxRange(types.SeqNum(m.Start+1), types.SeqNum(m.End))
	case types.SyncVc:
		resp.VcBlocks = n.store.VcRangeAfter(types.View(m.Start), types.View(m.End))
	default:
		return nil
	}
	if len(resp.TxBlocks) == 0 && len(resp.VcBlocks) == 0 && resp.Snapshot == nil {
		return nil
	}
	return []consensus.Effect{consensus.Send{To: m.From, Msg: resp}}
}

// onSyncResp validates and applies fetched blocks, then replays stashed
// messages.
func (n *Node) onSyncResp(now time.Duration, m *types.SyncResp) []consensus.Effect {
	if !n.syncing || m.From != n.syncFrom {
		return nil
	}
	effs := []consensus.Effect{consensus.CancelTimer{Kind: TimerSync, Key: n.syncToken}}
	// Validate all blocks through their QCs (the SyncUp function of
	// §4.2.3), then adopt.
	for i := range m.VcBlocks {
		blk := m.VcBlocks[i]
		if blk.V <= n.store.CurrentView() {
			continue
		}
		if err := n.store.AppendVcBlock(n.cfg.Registry, &blk); err != nil {
			break // chain mismatch; stop adopting
		}
		effs = append(effs, n.trace(consensus.TraceViewInstalled, blk.V, int64(blk.LeaderID)))
		effs = append(effs, n.retryDeferredCheckpoint()...)
	}
	// Snapshot catch-up: our gap starts below the peer's log base, so the
	// response carries the certified checkpoint state instead of the pruned
	// blocks. Install it (every component verifies against the certificate
	// or its own QCs — ledger.Store.InstallSnapshot), then replay only the
	// retained tail below: O(CheckpointInterval) instead of O(history).
	if m.Snapshot != nil && m.Snapshot.Cert.Header.Seq > n.store.TxHeight() {
		if err := n.store.InstallSnapshot(n.cfg.Registry, m.Snapshot); err == nil {
			n.afterSnapshotInstall()
			effs = append(effs, n.trace(consensus.TraceSnapshotInstall, n.View(), int64(n.store.LogBase())))
		} else {
			// A rejected snapshot (bad certificate, tampered state, or a
			// state machine that cannot restore) would otherwise wedge this
			// replica in a silent re-sync loop — the tail below cannot
			// chain onto our stale tip. Surface it to trace observers.
			effs = append(effs, n.trace(consensus.TraceSnapshotReject, n.View(), int64(m.Snapshot.Cert.Header.Seq)))
		}
	}
	for i := range m.TxBlocks {
		blk := m.TxBlocks[i]
		if blk.Header.N <= n.store.TxHeight() {
			continue
		}
		if err := n.store.AppendTxBlock(n.cfg.Registry, &blk); err != nil {
			break
		}
		effs = append(effs, n.recordCommit(n.store.LatestTxBlock())...)
		effs = append(effs, consensus.Commit{Block: n.store.LatestTxBlock()})
		effs = append(effs, n.maybeCheckpoint()...)
	}
	// If vcBlocks advanced our view, reset per-view state: any campaign we
	// were running is obsolete (a redeemer/candidate discovering a higher
	// view transitions back to follower).
	if len(m.VcBlocks) > 0 && n.store.CurrentView() > 0 {
		if n.state == Redeemer {
			effs = append(effs, consensus.AbortPuzzle{Token: n.puzzleToken})
			n.state = Follower
		}
		if n.state == Candidate && n.store.CurrentView() >= n.vPrime {
			effs = append(effs, consensus.CancelTimer{Kind: TimerElection, Key: uint64(n.vPrime)})
			n.state = Follower
		}
		n.viewEnteredAt = now
		effs = append(effs, n.armPolicyTimer()...)
	}
	n.syncing = false
	n.syncFrom = 0
	// Replay stashed messages against the updated chains.
	effs = append(effs, n.replaySyncStash(now)...)
	return effs
}

// --- Reputation refresh (§4.2.5) ----------------------------------------------

// maybeRequestRefresh broadcasts a Ref when this server's penalty exceeds
// the threshold π. Called after each view installation.
func (n *Node) maybeRequestRefresh(now time.Duration) []consensus.Effect {
	if n.cfg.RefreshThreshold <= 0 || n.refreshSent {
		return nil
	}
	if n.store.LatestVcBlock().RP[n.cfg.ID] <= n.cfg.RefreshThreshold {
		return nil
	}
	n.refreshSent = true
	ref := &types.Ref{From: n.cfg.ID, V: n.View()}
	ref.Sig = n.sign(ref.SigningBytes())
	// Count our own Ref toward the quorum.
	effs := n.acceptRef(n.cfg.ID, ref.Sig, ref.V)
	effs = append(effs, consensus.Broadcast{Msg: ref})
	return effs
}

// newRefCollector builds the rs_QC collector for view v.
func newRefCollector(n *Node, v types.View) *quorum.Collector {
	return quorum.NewCollector(types.QCRefresh, v, 0, types.Digest{}, n.quorumSize())
}

// onRef collects refresh requests. A server whose own rp exceeded π and
// that observes 2f+1 Refs assembles rs_QC and resets itself.
func (n *Node) onRef(now time.Duration, m *types.Ref) []consensus.Effect {
	if m.V != n.View() {
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	return n.acceptRef(m.From, m.Sig, m.V)
}

func (n *Node) acceptRef(from types.ServerID, sig []byte, v types.View) []consensus.Effect {
	if n.cfg.RefreshThreshold <= 0 {
		return nil
	}
	if n.refColl == nil {
		n.refColl = newRefCollector(n, v)
	}
	n.refColl.Add(n.cfg.Registry, from, sig)
	// 2f+1 Refs collected and we requested a refresh ourselves: reset.
	// (The quorum may complete before or after our own Ref — both orders
	// must finish, hence the explicit count check rather than relying on
	// the collector's once-only threshold trigger.)
	if !n.refreshSent || n.refreshDone || n.refColl.Count() < n.quorumSize() {
		return nil
	}
	n.refreshDone = true
	qc := n.refColl.QC()
	n.store.UpdateReputation(n.cfg.ID, 1, 1)
	rdone := &types.Rdone{From: n.cfg.ID, V: v, RsQC: qc, RP: 1, CI: 1}
	rdone.Sig = n.sign(rdone.SigningBytes())
	return []consensus.Effect{
		n.trace(consensus.TraceRefresh, v, 1),
		consensus.Broadcast{Msg: rdone},
	}
}

// onRdone applies a completed refresh to the sender's reputation entries in
// the current vcBlock.
func (n *Node) onRdone(now time.Duration, m *types.Rdone) []consensus.Effect {
	if n.cfg.RefreshThreshold <= 0 || m.V != n.View() {
		return nil
	}
	if !n.cfg.Registry.VerifyServer(m.From, m.SigningBytes(), m.Sig) {
		return nil
	}
	if m.RsQC.Kind != types.QCRefresh || m.RsQC.View != m.V {
		return nil
	}
	if err := n.cfg.Registry.VerifyQC(&m.RsQC, n.quorumSize()); err != nil {
		return nil
	}
	if m.RP != 1 || m.CI != 1 {
		return nil // refresh resets to the initial values, nothing else
	}
	n.store.UpdateReputation(m.From, m.RP, m.CI)
	return []consensus.Effect{n.trace(consensus.TraceRefresh, m.V, int64(m.From))}
}
