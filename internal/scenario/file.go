package scenario

// Timeline file serialization: a Scenario round-trips through a small JSON
// document so that fuzz-mined minimal failing timelines can be committed
// under internal/scenario/corpus/ and replayed as ordinary suite members
// (DESIGN.md §12). The format deliberately covers only the declarative
// surface a timeline needs — the cluster shape scalars, the event list, and
// the invariants — not programmatic Options fields (Net profiles, client
// payload generators): corpus scenarios run on the default fabric so their
// verdicts stay portable across fabric-profile changes.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/types"
)

// jsonDur marshals a time.Duration as its String() form ("750ms", "2s") so
// committed timelines stay human-readable and hand-editable.
type jsonDur time.Duration

func (d jsonDur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *jsonDur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = jsonDur(v)
	return nil
}

// fileSpec mirrors faults.Spec with a symbolic mode name.
type fileSpec struct {
	Mode          string  `json:"mode"`
	RepeatedVC    bool    `json:"repeated_vc,omitempty"`
	Smart         bool    `json:"smart,omitempty"`
	HashRateScale float64 `json:"hash_rate_scale,omitempty"`
}

func specToFile(s faults.Spec) fileSpec {
	return fileSpec{Mode: s.Mode.String(), RepeatedVC: s.RepeatedVC, Smart: s.Smart, HashRateScale: s.HashRateScale}
}

func (f fileSpec) spec() (faults.Spec, error) {
	var m faults.Mode
	switch f.Mode {
	case "", "correct":
		m = faults.Correct
	case "quiet":
		m = faults.Quiet
	case "equivocate":
		m = faults.Equivocate
	default:
		return faults.Spec{}, fmt.Errorf("unknown fault mode %q", f.Mode)
	}
	return faults.Spec{Mode: m, RepeatedVC: f.RepeatedVC, Smart: f.Smart, HashRateScale: f.HashRateScale}, nil
}

// fileOpts is the serializable subset of harness.Options a timeline file may
// pin. Zero fields keep the harness defaults, exactly like a hand-written
// scenario literal.
type fileOpts struct {
	N                  int                 `json:"n,omitempty"`
	Clients            int                 `json:"clients,omitempty"`
	BatchSize          int                 `json:"batch_size,omitempty"`
	PayloadSize        int                 `json:"payload_size,omitempty"`
	PipelineDepth      int                 `json:"pipeline_depth,omitempty"`
	CheckpointInterval int                 `json:"checkpoint_interval,omitempty"`
	Seed               int64               `json:"seed,omitempty"`
	ClientTimeout      jsonDur             `json:"client_timeout,omitempty"`
	WrapServers        []types.ServerID    `json:"wrap_servers,omitempty"`
	Faults             map[string]fileSpec `json:"faults,omitempty"`
}

// fileEvent is a sum type: exactly one action field is non-nil.
type fileEvent struct {
	At        jsonDur        `json:"at"`
	Crash     *fileCrash     `json:"crash,omitempty"`
	Recover   *fileRecover   `json:"recover,omitempty"`
	Partition *filePartition `json:"partition,omitempty"`
	Heal      *struct{}      `json:"heal,omitempty"`
	SetFault  *fileSetFault  `json:"set_fault,omitempty"`
	Degrade   *fileDegrade   `json:"degrade,omitempty"`
	Restore   *struct{}      `json:"restore,omitempty"`
}

type fileCrash struct {
	Server types.ServerID `json:"server"`
}

type fileRecover struct {
	Server types.ServerID `json:"server"`
}

type filePartition struct {
	Groups [][]types.ServerID `json:"groups"`
}

type fileSetFault struct {
	Server types.ServerID `json:"server"`
	Spec   fileSpec       `json:"spec"`
}

type fileDegrade struct {
	Extra    jsonDur `json:"extra,omitempty"`
	Jitter   jsonDur `json:"jitter,omitempty"`
	DropRate float64 `json:"drop_rate,omitempty"`
}

type fileInvariants struct {
	RecoverWithin     jsonDur        `json:"recover_within,omitempty"`
	RecoveryFraction  float64        `json:"recovery_fraction,omitempty"`
	RequireViewChange bool           `json:"require_view_change,omitempty"`
	RequireSyncUp     bool           `json:"require_sync_up,omitempty"`
	CatchUpServer     types.ServerID `json:"catch_up_server,omitempty"`
	CatchUpLag        types.SeqNum   `json:"catch_up_lag,omitempty"`
	StallFrom         jsonDur        `json:"stall_from,omitempty"`
	StallTo           jsonDur        `json:"stall_to,omitempty"`
	RequireCheckpoint bool           `json:"require_checkpoint,omitempty"`
	RequireSnapshot   bool           `json:"require_snapshot,omitempty"`
	MaxLedgerBlocks   int            `json:"max_ledger_blocks,omitempty"`
}

// fileScenario is the on-disk document.
type fileScenario struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Opts        fileOpts       `json:"opts"`
	Warmup      jsonDur        `json:"warmup,omitempty"`
	Span        jsonDur        `json:"span"`
	Events      []fileEvent    `json:"events"`
	Invariants  fileInvariants `json:"invariants"`
}

// MarshalScenario renders a scenario as an indented timeline document.
// Options fields outside the format (Net profiles, cost models, client
// payload generators) are silently not serialized: the format's contract is
// "default fabric, declarative timeline", which is all the fuzzer generates.
func MarshalScenario(s *Scenario) ([]byte, error) {
	fs := fileScenario{
		Name:        s.Name,
		Description: s.Description,
		Warmup:      jsonDur(s.Warmup),
		Span:        jsonDur(s.Span),
		Opts: fileOpts{
			N:                  s.Opts.N,
			Clients:            s.Opts.Clients,
			BatchSize:          s.Opts.BatchSize,
			PayloadSize:        s.Opts.PayloadSize,
			PipelineDepth:      s.Opts.PipelineDepth,
			CheckpointInterval: s.Opts.CheckpointInterval,
			Seed:               s.Opts.Seed,
			ClientTimeout:      jsonDur(s.Opts.ClientTimeout),
			WrapServers:        append([]types.ServerID(nil), s.Opts.WrapServers...),
		},
		Invariants: fileInvariants{
			RecoverWithin:     jsonDur(s.Invariants.RecoverWithin),
			RecoveryFraction:  s.Invariants.RecoveryFraction,
			RequireViewChange: s.Invariants.RequireViewChange,
			RequireSyncUp:     s.Invariants.RequireSyncUp,
			CatchUpServer:     s.Invariants.CatchUpServer,
			CatchUpLag:        s.Invariants.CatchUpLag,
			StallFrom:         jsonDur(s.Invariants.StallFrom),
			StallTo:           jsonDur(s.Invariants.StallTo),
			RequireCheckpoint: s.Invariants.RequireCheckpoint,
			RequireSnapshot:   s.Invariants.RequireSnapshot,
			MaxLedgerBlocks:   s.Invariants.MaxLedgerBlocks,
		},
	}
	if len(s.Opts.Faults) > 0 {
		fs.Opts.Faults = make(map[string]fileSpec, len(s.Opts.Faults))
		for _, id := range types.SortedKeys(s.Opts.Faults) {
			fs.Opts.Faults[strconv.Itoa(int(id))] = specToFile(s.Opts.Faults[id])
		}
	}
	for _, ev := range s.Events {
		fe := fileEvent{At: jsonDur(ev.At)}
		switch a := ev.Action.(type) {
		case Crash:
			fe.Crash = &fileCrash{Server: a.Server}
		case Recover:
			fe.Recover = &fileRecover{Server: a.Server}
		case Partition:
			fe.Partition = &filePartition{Groups: a.Groups}
		case Heal:
			fe.Heal = &struct{}{}
		case SetFault:
			fe.SetFault = &fileSetFault{Server: a.Server, Spec: specToFile(a.Spec)}
		case Degrade:
			fe.Degrade = &fileDegrade{Extra: jsonDur(a.Extra), Jitter: jsonDur(a.Jitter), DropRate: a.DropRate}
		case Restore:
			fe.Restore = &struct{}{}
		default:
			return nil, fmt.Errorf("event at %v has unserializable action type %T", ev.At, ev.Action)
		}
		fs.Events = append(fs.Events, fe)
	}
	data, err := json.MarshalIndent(&fs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// UnmarshalScenario parses a timeline document back into a Scenario. The
// result is structurally checked here (exactly one action per event, known
// fault modes); protocol-level checks are Validate's job so loaders report
// both layers distinctly.
func UnmarshalScenario(data []byte) (*Scenario, error) {
	var fs fileScenario
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, err
	}
	s := &Scenario{
		Name:        fs.Name,
		Description: fs.Description,
		Warmup:      time.Duration(fs.Warmup),
		Span:        time.Duration(fs.Span),
		Opts: harness.Options{
			N:                  fs.Opts.N,
			Clients:            fs.Opts.Clients,
			BatchSize:          fs.Opts.BatchSize,
			PayloadSize:        fs.Opts.PayloadSize,
			PipelineDepth:      fs.Opts.PipelineDepth,
			CheckpointInterval: fs.Opts.CheckpointInterval,
			Seed:               fs.Opts.Seed,
			ClientTimeout:      time.Duration(fs.Opts.ClientTimeout),
			WrapServers:        append([]types.ServerID(nil), fs.Opts.WrapServers...),
		},
		Invariants: Invariants{
			RecoverWithin:     time.Duration(fs.Invariants.RecoverWithin),
			RecoveryFraction:  fs.Invariants.RecoveryFraction,
			RequireViewChange: fs.Invariants.RequireViewChange,
			RequireSyncUp:     fs.Invariants.RequireSyncUp,
			CatchUpServer:     fs.Invariants.CatchUpServer,
			CatchUpLag:        fs.Invariants.CatchUpLag,
			StallFrom:         time.Duration(fs.Invariants.StallFrom),
			StallTo:           time.Duration(fs.Invariants.StallTo),
			RequireCheckpoint: fs.Invariants.RequireCheckpoint,
			RequireSnapshot:   fs.Invariants.RequireSnapshot,
			MaxLedgerBlocks:   fs.Invariants.MaxLedgerBlocks,
		},
	}
	if len(fs.Opts.Faults) > 0 {
		s.Opts.Faults = make(map[types.ServerID]faults.Spec, len(fs.Opts.Faults))
		for _, k := range types.SortedKeys(fs.Opts.Faults) {
			id, err := strconv.Atoi(k)
			if err != nil || id <= 0 {
				return nil, fmt.Errorf("faults key %q is not a server id", k)
			}
			spec, err := fs.Opts.Faults[k].spec()
			if err != nil {
				return nil, fmt.Errorf("faults[%s]: %w", k, err)
			}
			s.Opts.Faults[types.ServerID(id)] = spec
		}
	}
	for i, fe := range fs.Events {
		var actions []Action
		if fe.Crash != nil {
			actions = append(actions, Crash{Server: fe.Crash.Server})
		}
		if fe.Recover != nil {
			actions = append(actions, Recover{Server: fe.Recover.Server})
		}
		if fe.Partition != nil {
			actions = append(actions, Partition{Groups: fe.Partition.Groups})
		}
		if fe.Heal != nil {
			actions = append(actions, Heal{})
		}
		if fe.SetFault != nil {
			spec, err := fe.SetFault.Spec.spec()
			if err != nil {
				return nil, fmt.Errorf("event %d: %w", i, err)
			}
			actions = append(actions, SetFault{Server: fe.SetFault.Server, Spec: spec})
		}
		if fe.Degrade != nil {
			actions = append(actions, Degrade{
				Extra:    time.Duration(fe.Degrade.Extra),
				Jitter:   time.Duration(fe.Degrade.Jitter),
				DropRate: fe.Degrade.DropRate,
			})
		}
		if fe.Restore != nil {
			actions = append(actions, Restore{})
		}
		if len(actions) != 1 {
			return nil, fmt.Errorf("event %d declares %d actions, want exactly one", i, len(actions))
		}
		s.Events = append(s.Events, Event{At: time.Duration(fe.At), Action: actions[0]})
	}
	return s, nil
}
