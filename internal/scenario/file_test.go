package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/types"
)

// fullScenario exercises every serializable field: all seven action types,
// every invariant, faults and wrapped servers.
func fullScenario() *Scenario {
	return &Scenario{
		Name:        "roundtrip-everything",
		Description: "every action and invariant the timeline format carries",
		Opts: harness.Options{
			N: 7, Clients: 16, BatchSize: 4, PayloadSize: 64,
			PipelineDepth: 8, CheckpointInterval: 16, Seed: 4242,
			ClientTimeout: 750 * time.Millisecond,
			WrapServers:   []types.ServerID{6, 7},
			Faults: map[types.ServerID]faults.Spec{
				6: {Mode: faults.Quiet},
			},
		},
		Warmup: 3 * time.Second,
		Span:   40 * time.Second,
		Events: []Event{
			{At: 3 * time.Second, Action: Degrade{Extra: 15 * time.Millisecond, Jitter: 5 * time.Millisecond, DropRate: 0.1}},
			{At: 4 * time.Second, Action: Crash{Server: 2}},
			{At: 5 * time.Second, Action: Partition{Groups: [][]types.ServerID{{4, 5}}}},
			// Clear S6's startup fault before arming S7's, keeping the
			// crashed+faulty load within f=2 at every prefix.
			{At: 5500 * time.Millisecond, Action: SetFault{Server: 6}},
			{At: 6 * time.Second, Action: SetFault{Server: 7, Spec: faults.Spec{Mode: faults.Equivocate}}},
			{At: 7 * time.Second, Action: Heal{}},
			{At: 8 * time.Second, Action: SetFault{Server: 7}},
			{At: 9 * time.Second, Action: Restore{}},
			{At: 10 * time.Second, Action: Recover{Server: 2}},
		},
		Invariants: Invariants{
			RecoverWithin:     15 * time.Second,
			RecoveryFraction:  0.4,
			RequireViewChange: true,
			RequireSyncUp:     true,
			CatchUpServer:     2,
			CatchUpLag:        3,
			StallFrom:         5500 * time.Millisecond,
			StallTo:           7 * time.Second,
			RequireCheckpoint: true,
			RequireSnapshot:   true,
			MaxLedgerBlocks:   200,
		},
	}
}

// TestTimelineRoundTrip: Marshal → Unmarshal is the identity on the
// serializable surface, and a second marshal is byte-identical (the
// property that makes committed corpus files diff-stable).
func TestTimelineRoundTrip(t *testing.T) {
	s := fullScenario()
	if err := s.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	data, err := MarshalScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalScenario(data)
	if err != nil {
		t.Fatalf("unmarshal: %v\ndocument:\n%s", err, data)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v\ndocument:\n%s", s, back, data)
	}
	data2, err := MarshalScenario(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

// TestTimelineUnmarshalRejects: structurally broken documents fail with
// useful errors instead of producing half-parsed scenarios.
func TestTimelineUnmarshalRejects(t *testing.T) {
	cases := map[string]string{
		"two actions":  `{"name":"x","span":"10s","events":[{"at":"3s","crash":{"server":1},"heal":{}}]}`,
		"no action":    `{"name":"x","span":"10s","events":[{"at":"3s"}]}`,
		"bad mode":     `{"name":"x","span":"10s","events":[{"at":"3s","set_fault":{"server":1,"spec":{"mode":"sneaky"}}}]}`,
		"bad duration": `{"name":"x","span":"10 parsecs","events":[]}`,
		"bad fault id": `{"name":"x","span":"10s","opts":{"faults":{"zero":{"mode":"quiet"}}},"events":[]}`,
	}
	for name, doc := range cases {
		if _, err := UnmarshalScenario([]byte(doc)); err == nil {
			t.Errorf("%s: unmarshal accepted a broken document", name)
		}
	}
}

// TestCorpusLoads: the committed regression corpus parses, validates, and
// registers without name collisions against the built-in library — the
// load path the PR-blocking suite gate exercises.
func TestCorpusLoads(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatalf("corpus failed to load: %v", err)
	}
	if len(corpus) == 0 {
		t.Fatal("corpus is empty; at least one mined regression must be committed")
	}
	for _, s := range corpus {
		if !strings.HasPrefix(s.Name, "corpus-") {
			t.Errorf("corpus scenario %q does not follow the corpus-* naming policy", s.Name)
		}
		if s.Opts.Seed == 0 {
			t.Errorf("corpus scenario %q has no pinned seed", s.Name)
		}
		if got, ok := Get(s.Name); !ok || got.Name != s.Name {
			t.Errorf("Get(%q) did not resolve a corpus scenario", s.Name)
		}
	}
	lib, err := List(nil, 0)
	if err != nil {
		t.Fatalf("List(nil) with corpus: %v", err)
	}
	if want := len(Builtin()) + len(corpus); len(lib) != want {
		t.Fatalf("List(nil) resolved %d scenarios, want %d (builtin+corpus)", len(lib), want)
	}
	expanded, err := List([]string{"corpus"}, 0)
	if err != nil {
		t.Fatalf(`List(["corpus"]): %v`, err)
	}
	if len(expanded) != len(corpus) {
		t.Fatalf(`"corpus" expanded to %d scenarios, want %d`, len(expanded), len(corpus))
	}
}

// TestListRejectsDuplicateNames: registration refuses a request that would
// run two scenarios under one name.
func TestListRejectsDuplicateNames(t *testing.T) {
	if _, err := List([]string{"flaky-network", "flaky-network"}, 0); err == nil {
		t.Fatal("List accepted a duplicate scenario name at registration")
	}
	if _, err := List([]string{"corpus", "corpus"}, 0); err == nil {
		t.Fatal("List accepted the corpus group twice")
	}
}

// TestValidateRejectsHorizonEvents: an event at or past the span can never
// influence a measured window and must be rejected, not silently ignored.
func TestValidateRejectsHorizonEvents(t *testing.T) {
	s := &Scenario{
		Name: "horizon",
		Opts: harness.Options{N: 4},
		Span: 10 * time.Second,
		Events: []Event{
			{At: 10 * time.Second, Action: Crash{Server: 1}},
		},
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("Validate accepted an event at the horizon (err=%v)", err)
	}
	s.Events[0].At = 11 * time.Second
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted an event past the horizon")
	}
	s.Events[0].At = 9 * time.Second
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate rejected a legal event: %v", err)
	}
}
