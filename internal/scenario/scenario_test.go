package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"
)

// TestBuiltinLibrary: the shipped library is well-formed — ≥8 scenarios,
// unique names, every spec passes validation, and the registry resolves
// each one.
func TestBuiltinLibrary(t *testing.T) {
	lib := Builtin()
	if len(lib) < 8 {
		t.Fatalf("built-in library has %d scenarios, want ≥8", len(lib))
	}
	seen := make(map[string]bool)
	for _, s := range lib {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %q fails validation: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("builtin %q has no description", s.Name)
		}
		if got, ok := Get(s.Name); !ok || got.Name != s.Name {
			t.Errorf("Get(%q) did not resolve", s.Name)
		}
	}
	if _, ok := Get("no-such-scenario"); ok {
		t.Error("Get resolved a nonexistent scenario")
	}
}

// TestSuiteAllInvariantsHold is the acceptance run: every built-in scenario
// executes and every invariant (safety, steady state, liveness, stall,
// catch-up) holds. This is the same suite CI gates on.
func TestSuiteAllInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds of wall clock; skipped with -short")
	}
	t.Parallel()
	g, reports, err := SuiteOf(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run()
	if len(res.Rows) != len(reports) {
		t.Fatalf("suite produced %d rows for %d scenarios", len(res.Rows), len(reports))
	}
	for _, rep := range reports {
		if rep == nil {
			t.Fatal("suite left a nil report")
		}
		if !rep.OK() {
			t.Errorf("scenario %s violated invariants:\n%s", rep.Scenario, rep)
		}
		if rep.SteadyTPS <= 0 {
			t.Errorf("scenario %s reports no steady-state throughput", rep.Scenario)
		}
	}
}

// TestScenarioDeterministicReplay: the same scenario spec yields a deeply
// equal report on every run, and the suite's rendered rows are identical
// whether cells run sequentially or on a parallel worker pool — the
// property the CI determinism gate enforces end to end.
func TestScenarioDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replays two scenarios twice; skipped with -short")
	}
	t.Parallel()
	s, _ := Get("leader-crash-midview")
	a, b := s.Run(), s.Run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs of %s diverge:\n%+v\n%+v", s.Name, a, b)
	}

	names := []string{"leader-crash-midview", "dynamic-fault-migration"}
	g1, _, _ := SuiteOf(names)
	g1.Workers = 1
	gN, _, _ := SuiteOf(names)
	gN.Workers = 4
	j1, err := g1.Run().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jN, err := gN.Run().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(jN) {
		t.Fatal("suite JSON differs between 1 and 4 workers")
	}
}

// TestValidationRejectsMalformedScenarios: the validator catches specs the
// engine must never execute.
func TestValidationRejectsMalformedScenarios(t *testing.T) {
	t.Parallel()
	base := func() *Scenario {
		return &Scenario{
			Name: "x",
			Opts: harness.Options{N: 4},
			Span: 10 * time.Second,
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "no name"},
		{"span under warmup", func(s *Scenario) { s.Span = time.Second }, "must exceed warmup"},
		{"event inside warmup", func(s *Scenario) {
			s.Events = []Event{{At: time.Second, Action: Crash{Server: 2}}}
		}, "warmup window"},
		{"event after span", func(s *Scenario) {
			s.Events = []Event{{At: 11 * time.Second, Action: Crash{Server: 2}}}
		}, "at or past the scenario horizon"},
		{"events out of order", func(s *Scenario) {
			s.Events = []Event{
				{At: 5 * time.Second, Action: Crash{Server: 2}},
				{At: 3 * time.Second, Action: Recover{Server: 2}},
			}
		}, "before its predecessor"},
		{"unknown server", func(s *Scenario) {
			s.Events = []Event{{At: 3 * time.Second, Action: Crash{Server: 9}}}
		}, "unknown server"},
		{"recover without crash", func(s *Scenario) {
			s.Events = []Event{{At: 3 * time.Second, Action: Recover{Server: 2}}}
		}, "not crashed"},
		{"too many crashes", func(s *Scenario) {
			s.Events = []Event{
				{At: 3 * time.Second, Action: Crash{Server: 2}},
				{At: 4 * time.Second, Action: Crash{Server: 3}},
			}
		}, "exceed f=1"},
		{"unwrapped fault swap", func(s *Scenario) {
			s.Events = []Event{{At: 3 * time.Second, Action: SetFault{Server: 2, Spec: faults.Spec{Mode: faults.Quiet}}}}
		}, "neither in Faults nor WrapServers"},
		{"server in two groups", func(s *Scenario) {
			s.Events = []Event{{At: 3 * time.Second, Action: Partition{Groups: [][]types.ServerID{{1, 2}, {2, 3}}}}}
		}, "two partition groups"},
		{"bad drop rate", func(s *Scenario) {
			s.Events = []Event{{At: 3 * time.Second, Action: Degrade{DropRate: 1.5}}}
		}, "outside [0,1)"},
		{"span too short for recovery", func(s *Scenario) {
			s.Events = []Event{{At: 9 * time.Second, Action: Heal{}}}
			s.Invariants.RecoverWithin = 5 * time.Second
		}, "too short for recovery"},
		{"bad stall window", func(s *Scenario) {
			s.Invariants.StallFrom = 5 * time.Second
			s.Invariants.StallTo = 4 * time.Second
		}, "stall window"},
		{"runtime F4 swap", func(s *Scenario) {
			s.Opts.WrapServers = []types.ServerID{2}
			s.Events = []Event{{At: 3 * time.Second, Action: SetFault{Server: 2, Spec: faults.Spec{RepeatedVC: true}}}}
		}, "construction-time"},
		{"initial faults over bound", func(s *Scenario) {
			s.Opts.Faults = map[types.ServerID]faults.Spec{
				2: {Mode: faults.Quiet}, 3: {Mode: faults.Quiet},
			}
		}, "exceeding f=1"},
		{"catch-up server out of range", func(s *Scenario) {
			s.Invariants.CatchUpServer = 9
		}, "not a server"},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Byzantine servers count toward the bound alongside crashes.
	s := base()
	s.Opts.Faults = map[types.ServerID]faults.Spec{2: {Mode: faults.Quiet}}
	s.Events = []Event{{At: 3 * time.Second, Action: Crash{Server: 3}}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "exceed f=1") {
		t.Errorf("crash+byzantine over bound: got %v, want fault-bound error", err)
	}
	// ...but crashing the attacker itself frees its Byzantine slot.
	s = base()
	s.Opts.Faults = map[types.ServerID]faults.Spec{2: {Mode: faults.Quiet}}
	s.Events = []Event{{At: 3 * time.Second, Action: Crash{Server: 2}}}
	if err := s.Validate(); err != nil {
		t.Errorf("crashing the attacker should stay within bound, got: %v", err)
	}
	// A valid spec passes.
	if err := base().Validate(); err != nil {
		t.Errorf("base scenario should validate, got: %v", err)
	}
}

// TestInvalidScenarioRunReportsViolation: Run never panics on a bad spec —
// it surfaces the validation error as a violation.
func TestInvalidScenarioRunReportsViolation(t *testing.T) {
	t.Parallel()
	s := &Scenario{Name: "bad", Opts: harness.Options{N: 4}, Span: time.Second}
	rep := s.Run()
	if rep.OK() || !strings.Contains(rep.Violations[0], "invalid:") {
		t.Fatalf("invalid scenario produced %+v, want an 'invalid:' violation", rep.Violations)
	}
}

// TestSteadyStateGate: a cluster that cannot commit during warmup fails the
// steady-state hypothesis and the engine refuses to evaluate anything else.
func TestSteadyStateGate(t *testing.T) {
	t.Parallel()
	net := sim.DefaultNetworkConfig()
	net.DropRate = 1 // the fabric eats every message: nothing can commit
	s := &Scenario{
		Name:   "starved",
		Opts:   harness.Options{N: 4, Clients: 2, BatchSize: 4, Seed: 999, Net: net},
		Warmup: time.Second,
		Span:   2 * time.Second,
	}
	rep := s.Run()
	if rep.OK() {
		t.Fatal("starved cluster passed the steady-state check")
	}
	if !strings.Contains(rep.Violations[0], "steady-state") {
		t.Fatalf("violation = %q, want steady-state", rep.Violations[0])
	}
}

// TestLivenessViolationDetected: a majority partition that never heals must
// fail the recovery invariant — the gate actually fires on a dead cluster.
func TestLivenessViolationDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 12s virtual simulation; skipped with -short")
	}
	t.Parallel()
	s := &Scenario{
		Name: "unhealed-majority-partition",
		Opts: harness.Options{N: 4, Clients: 4, BatchSize: 4, Seed: 777,
			ClientTimeout: 500 * time.Millisecond},
		Span: 12 * time.Second,
		Events: []Event{
			{At: 2 * time.Second, Action: Partition{Groups: [][]types.ServerID{{1, 2}}}},
		},
		Invariants: Invariants{RecoverWithin: 8 * time.Second},
	}
	rep := s.Run()
	if rep.OK() {
		t.Fatal("permanently partitioned cluster passed the liveness check")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "liveness") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v lack a liveness entry", rep.Violations)
	}
}

// TestRequireViewChangeViolation: declaring RequireViewChange on an
// undisturbed cluster is reported (no election ever happens under a correct
// leader — Theorem 4).
func TestRequireViewChangeViolation(t *testing.T) {
	t.Parallel()
	s := &Scenario{
		Name:       "quiet-run",
		Opts:       harness.Options{N: 4, Clients: 4, BatchSize: 4, Seed: 778},
		Span:       4 * time.Second,
		Invariants: Invariants{RequireViewChange: true},
	}
	rep := s.Run()
	if rep.OK() {
		t.Fatal("undisturbed run cannot satisfy RequireViewChange")
	}
}

// TestReportRowShape: the emitted row matches the figure-grid row contract
// (stable label, ok flag, ordered keys) so scenario output rides the same
// JSON pipeline as every experiment.
func TestReportRowShape(t *testing.T) {
	t.Parallel()
	rep := &Report{Scenario: "x", SteadyTPS: 10, Recovery: 1500 * time.Millisecond}
	row := rep.Row()
	if row.Label != "x" {
		t.Errorf("label = %q", row.Label)
	}
	if row.Values["ok"] != 1 {
		t.Error("clean report must set ok=1")
	}
	if row.Values["recovery_s"] != 1.5 {
		t.Errorf("recovery_s = %v, want 1.5", row.Values["recovery_s"])
	}
	if len(row.Order) != len(row.Values) {
		t.Errorf("order lists %d keys, values has %d", len(row.Order), len(row.Values))
	}
	rep.Violations = append(rep.Violations, "boom")
	if rep.Row().Values["ok"] != 0 {
		t.Error("violated report must set ok=0")
	}
}

// TestActionDescriptions: every action renders a readable description (used
// in validation errors and docs).
func TestActionDescriptions(t *testing.T) {
	t.Parallel()
	cases := map[string]Action{
		"crash(S3)":                         Crash{Server: 3},
		"recover(S3)":                       Recover{Server: 3},
		"partition(S1,S2)":                  Partition{Groups: [][]types.ServerID{{2, 1}}},
		"heal":                              Heal{},
		"setFault(S2,quiet)":                SetFault{Server: 2, Spec: faults.Spec{Mode: faults.Quiet}},
		"setFault(S2,quiet+repeatedVC(S2))": SetFault{Server: 2, Spec: faults.Spec{Mode: faults.Quiet, RepeatedVC: true, Smart: true}},
		"degrade(+20ms±10ms,drop=20%)":      Degrade{Extra: 20 * time.Millisecond, Jitter: 10 * time.Millisecond, DropRate: 0.2},
		"restore":                           Restore{},
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("%T.String() = %q, want %q", a, got, want)
		}
	}
}
