package scenario

import (
	"fmt"
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"
)

// smallCluster is the shared shape of the built-in library: a light client
// load so every scenario stays cheap enough for CI while still committing
// continuously (the liveness invariants need a visible throughput signal).
func smallCluster(n int, seed int64) harness.Options {
	return harness.Options{
		N: n, Clients: 8, BatchSize: 8, Seed: seed,
		ClientTimeout: 500 * time.Millisecond,
	}
}

// Builtin returns the built-in scenario library in its canonical order. The
// slice is rebuilt per call, so callers may mutate their copy.
func Builtin() []*Scenario {
	return []*Scenario{
		{
			Name:        "leader-crash-midview",
			Description: "the initial leader fail-stops mid-view; clients complain, a follower is elected, the old leader rejoins as a follower",
			Opts:        smallCluster(4, 201),
			Span:        20 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Crash{Server: 1}},
				{At: 10 * time.Second, Action: Recover{Server: 1}},
			},
			Invariants: Invariants{
				RecoverWithin:     8 * time.Second,
				RequireViewChange: true,
				Metrics: &MetricInvariants{
					MinSteadyCommitRate: 2,
					RequireRecovery:     true,
					MaxGoroutineGrowth:  200,
					MaxHeapGrowthFactor: 4,
				},
			},
		},
		{
			Name:        "rolling-crashes",
			Description: "followers fail-stop and recover one after another, never exceeding f=1 simultaneously; the leader keeps committing throughout",
			Opts:        smallCluster(4, 202),
			Span:        20 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Crash{Server: 2}},
				{At: 5 * time.Second, Action: Recover{Server: 2}},
				{At: 5500 * time.Millisecond, Action: Crash{Server: 3}},
				{At: 8500 * time.Millisecond, Action: Recover{Server: 3}},
				{At: 9 * time.Second, Action: Crash{Server: 4}},
				{At: 12 * time.Second, Action: Recover{Server: 4}},
			},
			Invariants: Invariants{RecoverWithin: 7 * time.Second},
		},
		{
			Name:        "minority-partition",
			Description: "a minority of f=2 servers is partitioned away from the quorum side and later healed; the majority keeps committing",
			Opts:        smallCluster(7, 203),
			Span:        18 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Partition{Groups: [][]types.ServerID{{6, 7}}}},
				{At: 8 * time.Second, Action: Heal{}},
			},
			Invariants: Invariants{RecoverWithin: 6 * time.Second},
		},
		{
			Name:        "majority-partition",
			Description: "the cluster splits 2|2 with no quorum on either side; commits stall completely until the partition heals",
			Opts:        smallCluster(4, 204),
			Span:        25 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Partition{Groups: [][]types.ServerID{{1, 2}}}},
				{At: 8 * time.Second, Action: Heal{}},
			},
			Invariants: Invariants{
				RecoverWithin: 12 * time.Second,
				StallFrom:     2500 * time.Millisecond,
				StallTo:       8 * time.Second,
			},
		},
		{
			Name:        "partition-straddling-viewchange",
			Description: "the leader crashes, and while the resulting view change is in flight a partition removes quorum; the election can only finish after the heal",
			Opts:        smallCluster(4, 205),
			Span:        25 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Crash{Server: 1}},
				{At: 2800 * time.Millisecond, Action: Partition{Groups: [][]types.ServerID{{3}}}},
				{At: 8 * time.Second, Action: Heal{}},
				{At: 10 * time.Second, Action: Recover{Server: 1}},
			},
			Invariants: Invariants{
				RecoverWithin:     12 * time.Second,
				RequireViewChange: true,
				StallFrom:         3 * time.Second,
				StallTo:           8 * time.Second,
			},
		},
		{
			Name:        "leader-crash-full-window",
			Description: "the leader fail-stops with a full replication window (W=8) of uncommitted instances in flight; the new leader must adopt the certified prefix from election evidence so any block the dead leader already committed re-commits byte-identically (committed-prefix invariant)",
			Opts: func() harness.Options {
				o := smallCluster(4, 210)
				// Enough closed-loop clients to keep all W=8 slots of β=8
				// batches full when the crash hits mid-window.
				o.Clients = 64
				o.PipelineDepth = 8
				return o
			}(),
			Span: 22 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Crash{Server: 1}},
				{At: 11 * time.Second, Action: Recover{Server: 1}},
			},
			Invariants: Invariants{
				RecoverWithin:     8 * time.Second,
				RequireViewChange: true,
			},
		},
		{
			Name:        "partition-mid-window",
			Description: "a 2|2 partition bisects the cluster while a deep (W=8) window is in flight; neither side holds a quorum, so the half-replicated window must stall without conflicting commits and drain after the heal",
			Opts: func() harness.Options {
				o := smallCluster(4, 211)
				o.Clients = 64
				o.PipelineDepth = 8
				return o
			}(),
			Span: 25 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Partition{Groups: [][]types.ServerID{{1, 2}}}},
				{At: 8 * time.Second, Action: Heal{}},
			},
			Invariants: Invariants{
				RecoverWithin: 12 * time.Second,
				StallFrom:     2500 * time.Millisecond,
				StallTo:       8 * time.Second,
			},
		},
		{
			Name:        "soak-compaction",
			Description: "long-horizon soak with certified checkpoints: followers churn while the log is compacted every 16 blocks; every ledger must stay bounded (O(interval), not O(history)) and the committed prefix must survive compaction",
			Opts: func() harness.Options {
				o := smallCluster(4, 212)
				o.CheckpointInterval = 16
				return o
			}(),
			Span: 30 * time.Second,
			Events: []Event{
				{At: 3 * time.Second, Action: Crash{Server: 2}},
				{At: 6 * time.Second, Action: Recover{Server: 2}},
				{At: 9 * time.Second, Action: Crash{Server: 3}},
				{At: 12 * time.Second, Action: Recover{Server: 3}},
				{At: 15 * time.Second, Action: Crash{Server: 4}},
				{At: 18 * time.Second, Action: Recover{Server: 4}},
			},
			Invariants: Invariants{
				RecoverWithin:     8 * time.Second,
				RequireCheckpoint: true,
				MaxLedgerBlocks:   120,
				CatchUpServer:     4,
			},
		},
		{
			Name:        "late-joiner-snapshot",
			Description: "a follower goes dark while checkpoints compact the log past its height; on rejoin it must catch up by installing the certified snapshot (state + ckpt_QC) and replaying only the retained tail — O(interval), never the compacted history",
			Opts: func() harness.Options {
				o := smallCluster(4, 213)
				o.CheckpointInterval = 8
				return o
			}(),
			Span: 20 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Crash{Server: 4}},
				{At: 12 * time.Second, Action: Recover{Server: 4}},
			},
			Invariants: Invariants{
				RecoverWithin:     5 * time.Second,
				RequireSyncUp:     true,
				RequireCheckpoint: true,
				RequireSnapshot:   true,
				CatchUpServer:     4,
			},
		},
		{
			Name:        "flaky-network",
			Description: "gray failure: every link stays up but turns slow (+20±10 ms) and lossy (15% drops) for a window, then the fabric is restored",
			Opts:        smallCluster(4, 206),
			Span:        20 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Degrade{
					Extra:    20 * time.Millisecond,
					Jitter:   10 * time.Millisecond,
					DropRate: 0.15,
				}},
				{At: 9 * time.Second, Action: Restore{}},
			},
			Invariants: Invariants{
				RecoverWithin: 8 * time.Second,
				Metrics: &MetricInvariants{
					MinSteadyCommitRate: 2,
					RequireRecovery:     true,
					MaxGoroutineGrowth:  200,
					MaxHeapGrowthFactor: 4,
				},
			},
		},
		{
			Name:        "late-joiner-catchup",
			Description: "a follower goes dark early and rejoins after the chain has grown; it must catch up to the head via state transfer (§4.2.3)",
			Opts:        smallCluster(4, 207),
			Span:        18 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: Crash{Server: 4}},
				{At: 10 * time.Second, Action: Recover{Server: 4}},
			},
			Invariants: Invariants{
				RecoverWithin: 5 * time.Second,
				RequireSyncUp: true,
				CatchUpServer: 4,
			},
		},
		{
			Name:        "dynamic-fault-migration",
			Description: "the faulty set migrates at runtime (the paper's dynamic fault model): quiet (F2) and equivocating (F3) behavior moves across servers while |faulty| ≤ f always holds",
			Opts: func() harness.Options {
				o := smallCluster(7, 208)
				o.WrapServers = []types.ServerID{5, 6, 7}
				return o
			}(),
			Span: 20 * time.Second,
			Events: []Event{
				{At: 2 * time.Second, Action: SetFault{Server: 6, Spec: faults.Spec{Mode: faults.Quiet}}},
				{At: 4 * time.Second, Action: SetFault{Server: 7, Spec: faults.Spec{Mode: faults.Equivocate}}},
				{At: 6 * time.Second, Action: SetFault{Server: 6, Spec: faults.Spec{}}},
				{At: 6 * time.Second, Action: SetFault{Server: 5, Spec: faults.Spec{Mode: faults.Quiet}}},
				{At: 9 * time.Second, Action: SetFault{Server: 5, Spec: faults.Spec{}}},
				{At: 9 * time.Second, Action: SetFault{Server: 7, Spec: faults.Spec{}}},
			},
			Invariants: Invariants{RecoverWithin: 8 * time.Second},
		},
		{
			Name:        "wan-geo-latency",
			Description: "a geo-distributed deployment (~40±10 ms links, 50 MB/s) loses its leader and recovers — the paper's protocol far outside its datacenter testbed",
			Opts: func() harness.Options {
				o := smallCluster(7, 209)
				o.Net = sim.WANNetworkConfig()
				o.ClientTimeout = 2 * time.Second
				return o
			}(),
			Warmup: 3 * time.Second,
			Span:   30 * time.Second,
			Events: []Event{
				{At: 3 * time.Second, Action: Crash{Server: 1}},
				{At: 12 * time.Second, Action: Recover{Server: 1}},
			},
			Invariants: Invariants{
				RecoverWithin:     12 * time.Second,
				RequireViewChange: true,
			},
		},
	}
}

// Names lists the built-in scenario names in canonical order, followed by
// the committed regression corpus (corpus.go).
func Names() []string {
	lib := Builtin()
	out := make([]string, len(lib))
	for i, s := range lib {
		out[i] = s.Name
	}
	return append(out, CorpusNames()...)
}

// Get returns the built-in or corpus scenario with the given name.
func Get(name string) (*Scenario, bool) {
	for _, s := range Builtin() {
		if s.Name == name {
			return s, true
		}
	}
	if corpus, err := Corpus(); err == nil {
		for _, s := range corpus {
			if s.Name == name {
				return s, true
			}
		}
	}
	return nil, false
}

// List resolves names to fresh scenario copies, shifting every seed by
// seedOffset. An empty names slice selects the whole library — the
// built-ins plus the committed regression corpus — and the pseudo-name
// "corpus" expands to every corpus scenario, which is how the live smoke
// job replays mined regressions without enumerating them. Registration
// rejects duplicate scenario names: two library entries (or a corpus file
// shadowing a built-in) sharing a name would silently run one timeline
// twice and the other never. Suite drivers — the parallel sim grid and the
// sequential live runner — share it.
func List(names []string, seedOffset int64) ([]*Scenario, error) {
	var lib []*Scenario
	if len(names) == 0 {
		corpus, err := Corpus()
		if err != nil {
			return nil, err
		}
		lib = append(Builtin(), corpus...)
	} else {
		corpusUsed := false
		for _, name := range names {
			if name == "corpus" {
				if corpusUsed {
					return nil, fmt.Errorf("duplicate scenario name %q at registration", name)
				}
				corpusUsed = true
				corpus, err := Corpus()
				if err != nil {
					return nil, err
				}
				lib = append(lib, corpus...)
				continue
			}
			s, ok := Get(name)
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q (have: %v)", name, Names())
			}
			lib = append(lib, s)
		}
	}
	seen := make(map[string]bool, len(lib))
	for _, s := range lib {
		if seen[s.Name] {
			return nil, fmt.Errorf("duplicate scenario name %q at registration", s.Name)
		}
		seen[s.Name] = true
	}
	if seedOffset != 0 {
		// Builtin returns fresh copies, so shifting seeds is cell-local.
		for _, s := range lib {
			if s.Opts.Seed == 0 {
				s.Opts.Seed = seedFor(s.Name)
			}
			s.Opts.Seed += seedOffset
		}
	}
	return lib, nil
}

// SuiteOf builds a figure grid running the named scenarios (all built-ins
// when names is empty). Each scenario is one independent grid cell, so the
// suite parallelizes and reproduces exactly like every other experiment.
// reports is filled in cell order during Grid.Run.
func SuiteOf(names []string) (g *harness.Grid, reports []*Report, err error) {
	return SuiteSeeded(names, 0)
}

// SuiteSeeded is SuiteOf with every scenario's RNG seed shifted by
// seedOffset. The invariants are seed-independent claims, so the nightly CI
// sweep runs the suite across a band of offsets to flush out
// schedule-dependent protocol bugs that any single seed would miss.
func SuiteSeeded(names []string, seedOffset int64) (g *harness.Grid, reports []*Report, err error) {
	lib, err := List(names, seedOffset)
	if err != nil {
		return nil, nil, err
	}
	g = &harness.Grid{
		Name:  "Chaos scenarios",
		Notes: "declarative fault timelines on the simulated cluster; ok=1 means every invariant (safety, steady-state, liveness/recovery) held",
	}
	reports = make([]*Report, len(lib))
	for i, s := range lib {
		i, s := i, s
		g.Specs = append(g.Specs, harness.ExperimentSpec{
			Label: s.Name,
			Measure: func(*harness.ExperimentSpec) []harness.Row {
				rep := s.Run()
				reports[i] = rep
				return []harness.Row{rep.Row()}
			},
		})
	}
	return g, reports, nil
}

// Suite is the whole built-in library as a grid (the "scenarios" experiment).
func Suite() *harness.Grid {
	g, _, _ := SuiteOf(nil)
	return g
}

func init() {
	// Register the suite with the figure-experiment registry so the bench
	// CLI (and anything else driving harness.Experiments) picks it up.
	// Scenarios have fixed shapes; Scale does not apply.
	harness.Experiments["scenarios"] = func(harness.Scale) *harness.Result { return Suite().Run() }
}
