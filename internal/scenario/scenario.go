// Package scenario is a declarative chaos-scenario engine. A Scenario names
// a cluster shape (harness.Options), a timeline of environmental Events
// (crashes, partitions, fault-spec swaps, fabric degradation), and the
// invariants the run must uphold (safety: no conflicting commits; steady
// state: healthy before injection; liveness: throughput recovers within a
// bound after the last fault heals).
//
// Scenarios run against the Environment seam (env.go): the default world
// is the deterministic simulator (simenv.go), where events are scheduled
// on the cluster's own sim.Scheduler before the simulation starts, so a
// scenario is one ordinary discrete-event run — byte-reproducible for a
// given spec under any worker count, exactly like the figure grids
// (runner.go). The second world is a live loopback-TCP cluster
// (internal/liveharness): the same declarative timelines replay against
// real runtime.Runtime replicas with transport-level fault injection, so
// the paper's actual deployment mode gets the same safety and liveness
// verdicts (DESIGN.md §9). The built-in library (builtin.go) generalizes
// the paper's four fixed Byzantine behaviors (§6.2, F1–F4) into composable
// adversarial workloads; DESIGN.md §7 maps each scenario back to the
// paper's fault model.
package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"prestigebft/internal/harness"
	"prestigebft/internal/types"
)

// Invariants declares what a scenario run must uphold. Safety (no two
// replicas commit different blocks at the same sequence number) and the
// steady-state hypothesis (the cluster commits during the warmup window,
// before any injection) are always checked; the rest are opt-in.
type Invariants struct {
	// RecoverWithin bounds the liveness recovery time: after the last event
	// fires, windowed throughput must return to RecoveryFraction of the
	// steady-state level within this duration. Zero skips the check.
	RecoverWithin time.Duration
	// RecoveryFraction is the fraction of steady-state TPS that counts as
	// recovered. Zero means 0.3.
	RecoveryFraction float64
	// RequireViewChange asserts at least one election completed (scenarios
	// that kill or degrade the leader must dethrone it).
	RequireViewChange bool
	// RequireSyncUp asserts the state-transfer path (§4.2.3) ran.
	RequireSyncUp bool
	// CatchUpServer, when nonzero, asserts that server's chain ends within
	// CatchUpLag blocks of the highest chain (late-joiner catch-up).
	CatchUpServer types.ServerID
	// CatchUpLag is the allowed height gap for CatchUpServer. Zero means 2.
	CatchUpLag types.SeqNum
	// StallFrom/StallTo assert that NO block commits inside (StallFrom,
	// StallTo]. Majority-partition scenarios use it: a commit while no side
	// holds a quorum would reveal a quorum-intersection bug, the most
	// serious safety defect a BFT protocol can have. Zero values skip it.
	StallFrom, StallTo time.Duration
	// RequireCheckpoint asserts at least one checkpoint certificate was
	// assembled (the log compacted at least once).
	RequireCheckpoint bool
	// RequireSnapshot asserts at least one certified-snapshot installation
	// happened: some replica's catch-up provably skipped compacted history
	// instead of replaying it block-by-block.
	RequireSnapshot bool
	// MaxLedgerBlocks, when nonzero, bounds every readable server's
	// retained txBlock count at the end of the run — the bounded-memory
	// claim of checkpoint compaction. Servers below the bound's reach
	// (crashed at the end) are still checked: their ledgers are readable.
	MaxLedgerBlocks int
	// Metrics declares scrape-backed invariants (metrics.go): the
	// steady-state hypothesis and recovery detection read from each
	// replica's /metrics endpoint instead of in-process counters. Evaluated
	// only in environments exposing a scrape surface (the live harness);
	// the simulator skips them, so the deterministic sim trajectory is
	// untouched.
	Metrics *MetricInvariants
}

// Scenario is one declarative chaos workload.
type Scenario struct {
	Name        string
	Description string

	// Opts shapes the cluster. Scenarios relying on runtime fault swaps
	// must list the target servers in Opts.WrapServers (or Opts.Faults).
	Opts harness.Options

	// Warmup is the steady-state window: the cluster runs undisturbed for
	// this long and must commit transactions before the first injection.
	// Zero means 2 s. All events must fire at or after Warmup.
	Warmup time.Duration
	// Span is the total virtual duration of the run. It must leave room
	// after the last event for the recovery check.
	Span time.Duration

	// Events is the injection timeline, ordered by non-decreasing At.
	Events []Event

	Invariants Invariants
}

// Event fires one action at an absolute virtual time (measured from cluster
// start).
type Event struct {
	At     time.Duration
	Action Action
}

// recoveryWindow is the throughput-measurement window of the liveness check:
// recovery is declared at the first window whose TPS reaches the target
// fraction of steady state.
const recoveryWindow = time.Second

func (s *Scenario) warmup() time.Duration {
	if s.Warmup == 0 {
		return 2 * time.Second
	}
	return s.Warmup
}

func (s *Scenario) recoveryFraction() float64 {
	if f := s.Invariants.RecoveryFraction; f > 0 {
		return f
	}
	return 0.3
}

func (s *Scenario) catchUpLag() types.SeqNum {
	if s.Invariants.CatchUpLag > 0 {
		return s.Invariants.CatchUpLag
	}
	return 2
}

// lastEventAt returns the fire time of the final event (0 with no events).
func (s *Scenario) lastEventAt() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// Validate rejects malformed scenarios before any simulation work: events
// out of order or outside the [Warmup, Span] window, actions referencing
// unknown or unwrapped servers, timelines that exceed the fault bound f with
// simultaneously crashed or Byzantine servers, and spans too short for the
// declared recovery check.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario has no name")
	}
	o := s.Opts
	n := o.N
	if n == 0 {
		n = 4 // harness default
	}
	if s.Span <= s.warmup() {
		return fmt.Errorf("span %v must exceed warmup %v", s.Span, s.warmup())
	}
	wrapped := make(map[types.ServerID]bool)
	byz := make(map[types.ServerID]bool)
	for _, id := range types.SortedKeys(o.Faults) {
		if o.Faults[id].IsFaulty() {
			wrapped[id] = true
			byz[id] = true
		}
	}
	for _, id := range o.WrapServers {
		wrapped[id] = true
	}
	valid := func(id types.ServerID) bool { return id >= 1 && int(id) <= n }
	if countByz(byz, nil) > types.FaultBound(n) {
		return fmt.Errorf("initial Faults lists %d Byzantine servers, exceeding f=%d", countByz(byz, nil), types.FaultBound(n))
	}
	if id := s.Invariants.CatchUpServer; id != 0 && !valid(id) {
		return fmt.Errorf("CatchUpServer %d is not a server in 1..%d", id, n)
	}

	crashed := make(map[types.ServerID]bool)
	last := time.Duration(0)
	for i, ev := range s.Events {
		if ev.Action == nil {
			return fmt.Errorf("event %d has no action", i)
		}
		if ev.At < last {
			return fmt.Errorf("event %d (%s at %v) fires before its predecessor at %v", i, ev.Action, ev.At, last)
		}
		last = ev.At
		if ev.At < s.warmup() {
			return fmt.Errorf("event %d (%s at %v) fires inside the warmup window (%v)", i, ev.Action, ev.At, s.warmup())
		}
		if ev.At >= s.Span {
			// At == Span is rejected too: the run ends at the horizon, so an
			// event firing exactly there can never influence any measured
			// window — it would be a silent no-op in the timeline.
			return fmt.Errorf("event %d (%s at %v) fires at or past the scenario horizon (%v)", i, ev.Action, ev.At, s.Span)
		}
		switch a := ev.Action.(type) {
		case Crash:
			if !valid(a.Server) {
				return fmt.Errorf("event %d crashes unknown server %d", i, a.Server)
			}
			crashed[a.Server] = true
		case Recover:
			if !crashed[a.Server] {
				return fmt.Errorf("event %d recovers server %d which is not crashed", i, a.Server)
			}
			delete(crashed, a.Server)
		case Partition:
			seen := make(map[types.ServerID]bool)
			for _, g := range a.Groups {
				for _, id := range g {
					if !valid(id) {
						return fmt.Errorf("event %d partitions unknown server %d", i, id)
					}
					if seen[id] {
						return fmt.Errorf("event %d lists server %d in two partition groups", i, id)
					}
					seen[id] = true
				}
			}
		case Heal:
		case SetFault:
			if !valid(a.Server) {
				return fmt.Errorf("event %d sets a fault on unknown server %d", i, a.Server)
			}
			if !wrapped[a.Server] {
				return fmt.Errorf("event %d sets a fault on server %d, which is neither in Faults nor WrapServers", i, a.Server)
			}
			if a.Spec.RepeatedVC {
				// The F4 levers (aggressive campaign timeouts, the S2 gate)
				// are wired at cluster construction; a runtime swap would
				// only change message filtering and leave an inert attacker
				// that reports the attack ran. Same restriction as F1.
				return fmt.Errorf("event %d swaps in RepeatedVC at runtime; F4 is construction-time — declare the attacker in Opts.Faults", i)
			}
			if a.Spec.IsFaulty() {
				byz[a.Server] = true
			} else {
				delete(byz, a.Server)
			}
		case Degrade:
			if a.DropRate < 0 || a.DropRate >= 1 {
				return fmt.Errorf("event %d drop rate %v outside [0,1)", i, a.DropRate)
			}
		case Restore:
		default:
			return fmt.Errorf("event %d has unknown action type %T", i, ev.Action)
		}
		// Crashes and Byzantine servers together must respect the fault
		// bound — beyond f the protocol guarantees nothing, so a scenario
		// exceeding it would assert invariants the paper never claims.
		// (Partitions are exempt: they model the network, not servers, and
		// are expected to stall liveness until healed.)
		if len(crashed)+countByz(byz, crashed) > types.FaultBound(n) {
			return fmt.Errorf("after event %d (%s): %d crashed + %d faulty servers exceed f=%d",
				i, ev.Action, len(crashed), countByz(byz, crashed), types.FaultBound(n))
		}
	}
	if w := s.Invariants.RecoverWithin; w > 0 {
		// One extra recoveryWindow: a recovery at the very end of the bound
		// still needs a full measurement window inside the span to be seen.
		if need := s.lastEventAt() + w + recoveryWindow; s.Span < need {
			return fmt.Errorf("span %v too short for recovery check: last event at %v + RecoverWithin %v + %v window needs ≥ %v",
				s.Span, s.lastEventAt(), w, recoveryWindow, need)
		}
	}
	if inv := s.Invariants; inv.StallFrom != 0 || inv.StallTo != 0 {
		if inv.StallTo <= inv.StallFrom || inv.StallTo > s.Span {
			return fmt.Errorf("stall window (%v, %v] must be ordered and inside the span (%v)", inv.StallFrom, inv.StallTo, s.Span)
		}
	}
	return nil
}

// countByz counts Byzantine servers that are not also crashed (a crashed
// attacker is just a crash).
func countByz(byz, crashed map[types.ServerID]bool) int {
	n := 0
	for id := range byz {
		if !crashed[id] {
			n++
		}
	}
	return n
}

// Run executes the scenario on the deterministic simulator and evaluates
// its invariants. It never panics on a malformed spec: validation errors
// surface as violations in the Report.
func (s *Scenario) Run() *Report { return s.RunWith(NewSimEnv) }

// RunWith executes the scenario in an environment built by newEnv — the
// sim-or-live seam. The scenario's Opts are normalized (default seed) and
// handed to the builder; a builder error becomes a violation so suite
// drivers degrade gracefully. The environment is always closed before the
// invariants are evaluated, because a live environment only guarantees
// race-free ledger reads once its replicas are stopped.
func (s *Scenario) RunWith(newEnv func(harness.Options) (Environment, error)) *Report {
	rep := &Report{Scenario: s.Name, Recovery: -1}
	if err := s.Validate(); err != nil {
		rep.Violations = append(rep.Violations, "invalid: "+err.Error())
		return rep
	}

	o := s.Opts
	if o.Seed == 0 {
		o.Seed = seedFor(s.Name)
	}
	env, err := newEnv(o)
	if err != nil {
		rep.Violations = append(rep.Violations, "environment: "+err.Error())
		return rep
	}
	defer env.Close()
	for _, ev := range s.Events {
		a := ev.Action
		env.Schedule(ev.At, func() { a.apply(env) })
	}

	// Metric-backed invariants need scrape points; they exist only where
	// the environment exposes a scrape surface (live harness).
	var scrapes *metricScrapes
	me, scrapable := env.(MetricsEnvironment)
	if scrapable && s.Invariants.Metrics.active() {
		scrapes = &metricScrapes{}
		if s.Invariants.Metrics.RequireRecovery && len(s.Events) > 0 {
			// Registered after the scenario's own events at the same
			// offset, so it scrapes the instant the last (healing) event
			// has been applied — the recovery-detection baseline.
			sc := scrapes
			env.Schedule(s.lastEventAt(), func() { sc.setPostHeal(me.ScrapeAll()) })
		}
	}

	env.Start()
	// Chaos only lands on a provably healthy cluster: when the environment
	// exposes /healthz, every replica must answer green before the run
	// proceeds (live-smoke's precondition).
	if hw, ok := env.(HealthEnvironment); ok {
		if err := hw.WaitHealthy(); err != nil {
			rep.Violations = append(rep.Violations, "healthz: "+err.Error())
			return rep
		}
	}
	warm := s.warmup()
	env.RunUntil(warm)
	rep.SteadyTPS = env.TPS(0, warm)
	if rep.SteadyTPS == 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("steady-state: no commits during the %v warmup, refusing to inject faults into an unhealthy cluster", warm))
		return rep
	}
	if scrapes != nil {
		scrapes.steady = me.ScrapeAll()
	}
	env.RunUntil(s.Span)
	if scrapes != nil {
		// Final scrape happens before Close — a closed environment's admin
		// endpoints are gone, like any stopped process's.
		scrapes.final = me.ScrapeAll()
	}
	env.Close()

	s.evaluate(env, rep)
	s.evaluateMetrics(scrapes, rep)
	return rep
}

// evaluate fills the report's metrics and checks every declared invariant,
// reading only through the Environment seam.
func (s *Scenario) evaluate(env Environment, rep *Report) {
	env.CollectStats()
	rep.P50 = env.LatencyPercentile(50)
	rep.P95 = env.LatencyPercentile(95)
	rep.P99 = env.LatencyPercentile(99)
	pr := env.Progress()
	rep.Commits = pr.Commits
	rep.TotalTxs = pr.TotalTxs
	rep.ViewChanges = pr.ViewChanges
	rep.Elections = pr.Elections
	rep.SyncUps = pr.SyncUps
	rep.Checkpoints = pr.Checkpoints
	rep.Snapshots = pr.Snapshots
	rep.Msgs = pr.Msgs
	rep.Bytes = pr.Bytes
	lastAt := s.lastEventAt()
	rep.FinalTPS = env.TPS(lastAt, s.Span)

	// Safety: every pair of replicas agrees on the common prefix of their
	// committed chains (no conflicting commits at any sequence number).
	rep.Violations = append(rep.Violations, safetyViolations(env)...)

	inv := s.Invariants
	slack, margin := env.Timing()
	if inv.RecoverWithin > 0 {
		target := s.recoveryFraction() * rep.SteadyTPS
		const step = 250 * time.Millisecond
		for t := lastAt; t+recoveryWindow <= s.Span; t += step {
			if env.TPS(t, t+recoveryWindow) >= target {
				rep.Recovery = t - lastAt
				break
			}
		}
		// Liveness bounds stretch by the environment's slack (but never
		// past what the span can actually observe — beyond that the
		// "never recovered" arm already fires).
		bound := time.Duration(float64(inv.RecoverWithin) * slack)
		switch {
		case rep.Recovery < 0:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("liveness: throughput never recovered to %.0f%% of steady state (%.0f tps) after the last event at %v",
					s.recoveryFraction()*100, rep.SteadyTPS, lastAt))
		case rep.Recovery > bound:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("liveness: recovery took %v, bound is %v", rep.Recovery, bound))
		}
	}
	if inv.StallTo > inv.StallFrom {
		// The leading margin forgives traffic already in flight when the
		// quorum-removing event landed (zero on the simulator).
		from := inv.StallFrom + margin
		if from < inv.StallTo {
			if tps := env.TPS(from, inv.StallTo); tps > 0 {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("stall: %.0f tps committed during (%v, %v], a window where no quorum exists — possible quorum-intersection bug",
						tps, from, inv.StallTo))
			}
		}
	}
	if inv.RequireViewChange && rep.Elections == 0 {
		rep.Violations = append(rep.Violations, "no election completed, but the scenario requires a view change")
	}
	if inv.RequireSyncUp && rep.SyncUps == 0 {
		rep.Violations = append(rep.Violations, "state transfer (SyncUp) never ran, but the scenario requires it")
	}
	if inv.RequireCheckpoint && rep.Checkpoints == 0 {
		rep.Violations = append(rep.Violations, "no checkpoint certificate assembled, but the scenario requires log compaction")
	}
	if inv.RequireSnapshot && rep.Snapshots == 0 {
		rep.Violations = append(rep.Violations, "no certified snapshot installed: catch-up replayed history instead of using the snapshot path")
	}
	if inv.MaxLedgerBlocks > 0 {
		for i := 1; i <= env.N(); i++ {
			id := types.ServerID(i)
			if blocks, ok := env.LedgerBlocks(id); ok && blocks > inv.MaxLedgerBlocks {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("compaction: server %d retains %d txBlocks, bound is %d — the ledger is not bounded",
						id, blocks, inv.MaxLedgerBlocks))
			}
		}
	}
	if id := inv.CatchUpServer; id != 0 {
		var maxH types.SeqNum
		for i := 1; i <= env.N(); i++ {
			if h, ok := env.ChainHeight(types.ServerID(i)); ok && h > maxH {
				maxH = h
			}
		}
		h, ok := env.ChainHeight(id)
		if !ok {
			rep.Violations = append(rep.Violations, fmt.Sprintf("catch-up server %d is not a PrestigeBFT node", id))
		} else if h+s.catchUpLag() < maxH {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("catch-up: server %d ended at height %d, %d behind the head (%d); allowed lag %d",
					id, h, maxH-h, maxH, s.catchUpLag()))
		}
	}
}

// safetyViolations checks that every pair of replicas agrees on the common
// prefix of their committed chains, hash-by-hash — on a live cluster this
// is the byte-for-byte committed-prefix check across real ledgers. At each
// sequence number the first replica still retaining the block (compaction
// prunes certified prefixes) is the reference for that seq; agreement with
// a per-seq shared reference implies pairwise agreement among everyone who
// retains it. Seqs nobody retains are skipped: a retained block above any
// replica's log base always exists below the heads being compared, and the
// pruned region itself is covered by its checkpoint certificate (2f+1
// matching state hashes).
func safetyViolations(env Environment) []string {
	var out []string
	var maxH types.SeqNum
	for i := 1; i <= env.N(); i++ {
		if h, ok := env.ChainHeight(types.ServerID(i)); ok && h > maxH {
			maxH = h
		}
	}
	// A replica is reported at most once, at its first divergent seq.
	bad := make(map[types.ServerID]bool)
	for seq := types.SeqNum(1); seq <= maxH; seq++ {
		var ref types.Digest
		refID := types.ServerID(0)
		for i := 1; i <= env.N(); i++ {
			id := types.ServerID(i)
			if bad[id] {
				continue
			}
			h, ok := env.BlockHash(id, seq)
			if !ok {
				continue // no ledger, above this replica's head, or compacted
			}
			if refID == 0 {
				ref, refID = h, id
				continue
			}
			if h != ref {
				out = append(out, fmt.Sprintf("safety: servers %d and %d committed conflicting blocks at seq %d", refID, id, seq))
				bad[id] = true
			}
		}
	}
	return out
}

// seedFor derives a deterministic per-scenario seed from the name (FNV-1a),
// so unnamed-seed scenarios still replay identically.
func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := int64(h.Sum64() & 0x7fffffffffff)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// sortedIDs renders a server set compactly for descriptions.
func sortedIDs(ids []types.ServerID) []types.ServerID {
	out := append([]types.ServerID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
