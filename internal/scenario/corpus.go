package scenario

// The regression corpus: fuzz-mined minimal failing timelines, committed as
// timeline documents under internal/scenario/corpus/ and embedded into the
// binary so they load into the ordinary suite everywhere the built-ins run —
// the PR-blocking sim gate, the live smoke job, and the nightly seed sweep.
// A wedge found once by the fuzzer can therefore never come back silently.
// DESIGN.md §12 documents the corpus policy.

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

// corpusFS embeds the committed corpus directory (timeline *.json documents
// plus its README). Embedding the directory rather than a *.json glob keeps
// the package compiling when the corpus is empty.
//
//go:embed corpus
var corpusFS embed.FS

// Corpus parses the committed regression corpus into fresh scenario copies,
// sorted by file name. Parse or validation failures surface as errors: a
// malformed committed timeline must fail loudly, not silently shrink the
// regression suite.
func Corpus() ([]*Scenario, error) {
	entries, err := corpusFS.ReadDir("corpus")
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]*Scenario, 0, len(names))
	for _, name := range names {
		data, err := corpusFS.ReadFile("corpus/" + name)
		if err != nil {
			return nil, fmt.Errorf("corpus/%s: %w", name, err)
		}
		s, err := UnmarshalScenario(data)
		if err != nil {
			return nil, fmt.Errorf("corpus/%s: %w", name, err)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("corpus/%s (%s): %w", name, s.Name, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// CorpusNames lists the corpus scenario names in load order (empty on a
// corpus that fails to parse — Names stays usable for -list; the error
// surfaces when the suite actually loads).
func CorpusNames() []string {
	lib, err := Corpus()
	if err != nil {
		return nil
	}
	out := make([]string, len(lib))
	for i, s := range lib {
		out[i] = s.Name
	}
	return out
}
