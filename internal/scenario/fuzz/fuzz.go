// Package fuzz generates randomized chaos-scenario timelines and shrinks
// failing ones to minimal reproducers (DESIGN.md §12). The hand-written
// scenario library (scenario/builtin.go) is a fixed test set; the fuzzer
// samples the space those eleven points live in: seeded random sequences of
// Crash/Recover, Partition/Heal, SetFault swaps, and Degrade/Restore over
// the existing invariant oracles (safety, steady state, bounded liveness
// recovery, catch-up).
//
// Generation is a pure function of (fuzz seed, sample index): the generator
// draws from its own rand.Rand, tracks the cluster state machine (who is
// crashed, who is Byzantine, whether a partition or degradation is active)
// so that every sampled timeline satisfies the same preconditions
// Scenario.Validate enforces — never more than f simultaneous crashed-or-
// Byzantine servers, no Recover of a running server, no runtime RepeatedVC
// swap — and always quiesces: every fault it injects is healed, cleared, or
// restored before the timeline ends (except crashes it deliberately leaves
// in place, which keep quorum by construction), so the bounded-liveness
// invariant is a claim the protocol actually makes. Each sample then runs
// as an ordinary deterministic grid cell: same seed, same timeline, same
// verdict at any worker count.
package fuzz

import (
	"fmt"
	"math/rand"
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/scenario"
	"prestigebft/internal/types"
)

// Tunables of the sampled space. Widening any of these widens the search;
// they are constants (not knobs) so a fuzz seed alone reproduces a sample.
const (
	warmup = 2 * time.Second
	// minGap/maxGap bound the virtual time between consecutive events.
	minGap = 300 * time.Millisecond
	maxGap = 1500 * time.Millisecond
	// minEvents/maxEvents bound the randomized phase (cleanup is extra).
	minEvents = 2
	maxEvents = 8
	// recoverWithin is the bounded-liveness budget granted after the final
	// event. Generous on purpose: a generated timeline may end with a crash
	// still in place and a fresh election required; the invariant hunts
	// wedges (no recovery at all), not slow recoveries.
	recoverWithin = 12 * time.Second
	// tailSlack pads the span past the liveness deadline so the recovery
	// scan always has a full measurement window.
	tailSlack = 2 * time.Second
	// leaderDownForVC is the contiguous crash duration of the initial
	// leader, un-obscured by any partition, after which a completed
	// election is provably required and RequireViewChange is asserted.
	leaderDownForVC = 4 * time.Second
)

// Fuzzer samples scenarios deterministically from a seed.
type Fuzzer struct {
	seed int64
}

// New returns a fuzzer for the given seed.
func New(seed int64) *Fuzzer { return &Fuzzer{seed: seed} }

// Scenarios samples the first count scenarios.
func (f *Fuzzer) Scenarios(count int) []*scenario.Scenario {
	out := make([]*scenario.Scenario, count)
	for i := range out {
		out[i] = f.Scenario(i)
	}
	return out
}

// Scenario samples the i-th scenario of this fuzzer's stream. The result
// always passes Validate — a sample that does not is a generator bug and
// panics rather than polluting a CI run with "invalid:" verdicts.
func (f *Fuzzer) Scenario(i int) *scenario.Scenario {
	// splitmix-style seed mixing keeps per-sample streams independent: with
	// plain seed+i, fuzzer seeds S and S+1 would share most samples.
	mixed := f.seed ^ (int64(i)+1)*0x5851F42D4C957F2D
	if mixed == 0 {
		mixed = 1
	}
	rng := rand.New(rand.NewSource(mixed))
	s := generate(rng, fmt.Sprintf("fuzz-s%d-%04d", f.seed, i))
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("fuzz: generated invalid scenario %s: %v", s.Name, err))
	}
	return s
}

// genState tracks the cluster state machine during generation, mirroring
// the stateful checks in Scenario.Validate.
type genState struct {
	n, f        int
	wrapped     []types.ServerID
	crashed     map[types.ServerID]bool
	byz         map[types.ServerID]bool
	partitioned bool
	degraded    bool
}

// faultLoad counts servers currently crashed or Byzantine-and-running — the
// quantity the fault bound f caps (a crashed attacker is just a crash).
func (g *genState) faultLoad() int {
	load := len(g.crashed)
	for _, id := range types.SortedKeys(g.byz) {
		if !g.crashed[id] {
			load++
		}
	}
	return load
}

func generate(rng *rand.Rand, name string) *scenario.Scenario {
	// Cluster shape: mostly the 4-server minimum (fastest cells, f=1),
	// sometimes 7 (f=2 allows richer concurrent-fault interleavings).
	n := 4
	if rng.Intn(10) < 3 {
		n = 7
	}
	g := &genState{
		n:       n,
		f:       types.FaultBound(n),
		crashed: make(map[types.ServerID]bool),
		byz:     make(map[types.ServerID]bool),
	}
	// Wrap up to f servers (from the top ids, away from the initial leader
	// S1) so SetFault swaps have targets. Zero wrapped servers simply
	// removes SetFault from the action vocabulary for this sample.
	for w := rng.Intn(g.f + 1); w > 0; w-- {
		g.wrapped = append(g.wrapped, types.ServerID(n-w+1))
	}

	opts := harness.Options{
		N: n, Clients: 8, BatchSize: 8,
		Seed:          rng.Int63n(1<<40) + 1,
		ClientTimeout: 500 * time.Millisecond,
		WrapServers:   append([]types.ServerID(nil), g.wrapped...),
	}
	// Sometimes run with certified checkpoints enabled: compaction racing
	// crashes and partitions is exactly where a stale-snapshot wedge would
	// hide. No checkpoint invariants are asserted — short timelines may
	// legitimately not compact — the value is the interleaving itself
	// under the always-on safety and liveness oracles.
	if rng.Intn(10) < 3 {
		opts.CheckpointInterval = 16
	}

	var events []scenario.Event
	at := warmup
	steps := minEvents + rng.Intn(maxEvents-minEvents+1)
	for len(events) < steps {
		at += minGap + time.Duration(rng.Int63n(int64(maxGap-minGap)))
		ev, ok := g.step(rng, at)
		if !ok {
			continue
		}
		events = append(events, ev)
	}

	// Cleanup phase: quiesce so bounded liveness is a legitimate claim.
	// Order matters — heal the fabric before recovering servers so the
	// recovered replicas rejoin a connected quorum.
	cleanup := func(a scenario.Action) {
		at += 400 * time.Millisecond
		events = append(events, scenario.Event{At: at, Action: a})
	}
	if g.partitioned {
		cleanup(scenario.Heal{})
	}
	if g.degraded {
		cleanup(scenario.Restore{})
	}
	for _, id := range types.SortedKeys(g.byz) {
		cleanup(scenario.SetFault{Server: id})
		delete(g.byz, id)
	}
	for _, id := range types.SortedKeys(g.crashed) {
		// Most crashed servers recover (exercising the catch-up and
		// timer-re-arm paths); some stay down, which forces the liveness
		// oracle to see the survivors commit without them — the shape that
		// catches election wedges even when a recovered old leader would
		// otherwise resume and mask one. Quorum holds either way: at most
		// f servers are ever crashed.
		if rng.Intn(10) < 7 {
			cleanup(scenario.Recover{Server: id})
			delete(g.crashed, id)
		}
	}

	inv := scenario.Invariants{RecoverWithin: recoverWithin}
	// Catch-up oracle: a server that crashed and came back must end near
	// the head. Pick the last recovered server that is still up when the
	// timeline ends (deterministic choice): a server that was re-crashed
	// after its recovery and left down can never catch up, so asserting it
	// would fail a perfectly healthy protocol. g.crashed holds exactly the
	// servers down at the end — the cleanup loop above deleted the ones it
	// recovered.
	for i := len(events) - 1; i >= 0; i-- {
		r, ok := events[i].Action.(scenario.Recover)
		if !ok {
			continue
		}
		if _, down := g.crashed[r.Server]; down {
			continue
		}
		inv.CatchUpServer = r.Server
		break
	}
	// Election oracle: if the initial leader S1 was provably deposed —
	// crashed for a contiguous window ≥ leaderDownForVC during which no
	// partition could have kept the followers from assembling a quorum —
	// then at least one election must have completed. Without this, a
	// view-change wedge can hide behind the recovered leader resuming.
	if leaderProvablyDeposed(events) {
		inv.RequireViewChange = true
	}

	last := events[len(events)-1].At
	return &scenario.Scenario{
		Name: name,
		Description: fmt.Sprintf("fuzz-sampled timeline (n=%d, %d events, opts seed %d)",
			n, len(events), opts.Seed),
		Opts:       opts,
		Warmup:     warmup,
		Span:       last + recoverWithin + tailSlack,
		Events:     events,
		Invariants: inv,
	}
}

// step samples one applicable action at time at, updating the state machine.
// ok is false when the sampled action kind has no valid instantiation right
// now (e.g. Heal with no partition active); the caller just re-rolls.
func (g *genState) step(rng *rand.Rand, at time.Duration) (scenario.Event, bool) {
	mk := func(a scenario.Action) (scenario.Event, bool) {
		return scenario.Event{At: at, Action: a}, true
	}
	switch rng.Intn(7) {
	case 0: // Crash
		var cands []types.ServerID
		if g.faultLoad() < g.f {
			for i := 1; i <= g.n; i++ {
				id := types.ServerID(i)
				if !g.crashed[id] {
					cands = append(cands, id)
				}
			}
		} else {
			// At the bound, crashing a running Byzantine server keeps the
			// load constant (it stops counting as Byzantine).
			for _, id := range types.SortedKeys(g.byz) {
				if !g.crashed[id] {
					cands = append(cands, id)
				}
			}
		}
		if len(cands) == 0 {
			return scenario.Event{}, false
		}
		id := cands[rng.Intn(len(cands))]
		g.crashed[id] = true
		return mk(scenario.Crash{Server: id})
	case 1: // Recover
		cands := types.SortedKeys(g.crashed)
		// A crashed Byzantine server resuming would re-raise the fault load.
		var ok []types.ServerID
		for _, id := range cands {
			if !g.byz[id] || g.faultLoad() < g.f {
				ok = append(ok, id)
			}
		}
		if len(ok) == 0 {
			return scenario.Event{}, false
		}
		id := ok[rng.Intn(len(ok))]
		delete(g.crashed, id)
		return mk(scenario.Recover{Server: id})
	case 2: // Partition (replaces any active one)
		groups := g.samplePartition(rng)
		if groups == nil {
			return scenario.Event{}, false
		}
		g.partitioned = true
		return mk(scenario.Partition{Groups: groups})
	case 3: // Heal
		if !g.partitioned {
			return scenario.Event{}, false
		}
		g.partitioned = false
		return mk(scenario.Heal{})
	case 4: // SetFault
		if len(g.wrapped) == 0 {
			return scenario.Event{}, false
		}
		id := g.wrapped[rng.Intn(len(g.wrapped))]
		if g.byz[id] {
			// Clear it (dynamic fault migration: the faulty set moves).
			delete(g.byz, id)
			return mk(scenario.SetFault{Server: id})
		}
		if g.faultLoad() >= g.f && !g.crashed[id] {
			return scenario.Event{}, false
		}
		spec := quietOrEquivocate(rng)
		g.byz[id] = true
		return mk(scenario.SetFault{Server: id, Spec: spec})
	case 5: // Degrade
		extra := 5*time.Millisecond + time.Duration(rng.Int63n(int64(35*time.Millisecond)))
		g.degraded = true
		return mk(scenario.Degrade{
			Extra:    extra,
			Jitter:   time.Duration(rng.Int63n(int64(extra)/2 + 1)),
			DropRate: rng.Float64() * 0.25,
		})
	case 6: // Restore
		if !g.degraded {
			return scenario.Event{}, false
		}
		g.degraded = false
		return mk(scenario.Restore{})
	}
	return scenario.Event{}, false
}

// samplePartition draws a random split: each server lands in the implicit
// remainder group or one of up to two named groups. Splits that do not
// actually separate anybody (all servers on one side) are rejected.
func (g *genState) samplePartition(rng *rand.Rand) [][]types.ServerID {
	ngroups := 1
	if g.n >= 7 && rng.Intn(4) == 0 {
		ngroups = 2
	}
	named := make([][]types.ServerID, ngroups)
	remainder := 0
	for i := 1; i <= g.n; i++ {
		gi := rng.Intn(ngroups + 1)
		if gi == 0 {
			remainder++
			continue
		}
		named[gi-1] = append(named[gi-1], types.ServerID(i))
	}
	sep := 0
	for _, grp := range named {
		if len(grp) > 0 {
			sep++
		}
	}
	if sep == 0 || (remainder == 0 && sep < 2) {
		return nil
	}
	return named
}

// quietOrEquivocate samples a runtime-swappable Byzantine behavior (F2 or
// F3; F4/RepeatedVC is construction-time only and never generated).
func quietOrEquivocate(rng *rand.Rand) faults.Spec {
	if rng.Intn(2) == 0 {
		return faults.Spec{Mode: faults.Quiet}
	}
	return faults.Spec{Mode: faults.Equivocate}
}

// leaderProvablyDeposed scans the timeline for a contiguous window of
// length ≥ leaderDownForVC in which S1 is crashed and no partition is
// active anywhere: during such a window the remaining n−1 ≥ 2f+1 servers
// are fully connected, at most f−1 of them are crashed or Byzantine, and
// the clients' complaint timers are running — a completed election is
// guaranteed, so RequireViewChange is a sound oracle. Partitions anywhere
// in the window void the proof (conservatively: even a partition that
// leaves a quorum connected changes which servers can confirm).
func leaderProvablyDeposed(events []scenario.Event) bool {
	const leader = types.ServerID(1)
	down := false
	partitioned := false
	var windowStart time.Duration
	open := false // an S1-down, partition-free window is currently open
	check := func(until time.Duration) bool {
		return open && until-windowStart >= leaderDownForVC
	}
	for _, ev := range events {
		if check(ev.At) {
			return true
		}
		switch a := ev.Action.(type) {
		case scenario.Crash:
			if a.Server == leader {
				down = true
			}
		case scenario.Recover:
			if a.Server == leader {
				down = false
			}
		case scenario.Partition:
			partitioned = true
		case scenario.Heal:
			partitioned = false
		}
		if down && !partitioned {
			if !open {
				open, windowStart = true, ev.At
			}
		} else {
			open = false
		}
	}
	if len(events) == 0 {
		return false
	}
	// The span extends recoverWithin past the last event; an open window at
	// the end certainly reaches leaderDownForVC.
	return open
}
