package fuzz

// Shrinking: given a failing timeline, find a smaller one that still fails
// the same way. The shrinker is a greedy descent over three move families —
// drop an event, merge an event onto its predecessor's instant, halve the
// gap in front of an event (shifting the whole tail earlier) — accepting
// the first move whose candidate still reproduces a violation of the same
// class, and restarting until no move is accepted or the run budget is
// spent. Every accepted move strictly decreases (event count, sum of event
// times) lexicographically, so the descent terminates even without the
// budget; re-running the same failing scenario against a deterministic
// oracle makes the whole shrink deterministic, which CI relies on when it
// compares artifacts across worker counts.

import (
	"fmt"
	"strings"
	"time"

	"prestigebft/internal/scenario"
	"prestigebft/internal/types"
)

// Oracle runs a scenario and returns its invariant violations (empty =
// pass). The sim oracle is Scenario.Run; the live oracle runs the timeline
// against a real TCP cluster through the same Environment seam.
type Oracle func(*scenario.Scenario) []string

// Result is the outcome of a shrink.
type Result struct {
	// Scenario is the minimal failing timeline (the input scenario,
	// unchanged, when the input passed its oracle).
	Scenario *scenario.Scenario
	// Violations are the minimal scenario's violations (of the original
	// run when no shrink was possible).
	Violations []string
	// Runs counts oracle invocations, Accepted the moves that stuck.
	Runs, Accepted int
}

// classOf maps a violation message to its class — the "safety:"/"liveness:"
// style prefix — so shrinking chases the original failure and cannot drift
// onto an unrelated violation that a mutated timeline happens to trip.
func classOf(v string) string {
	if i := strings.IndexByte(v, ':'); i >= 0 {
		return v[:i]
	}
	return v
}

func classesOf(vs []string) map[string]bool {
	out := make(map[string]bool, len(vs))
	for _, v := range vs {
		out[classOf(v)] = true
	}
	return out
}

// Shrink minimizes s against the oracle within maxRuns oracle invocations
// (the initial probe included). The input scenario is never mutated.
func Shrink(s *scenario.Scenario, oracle Oracle, maxRuns int) Result {
	res := Result{Scenario: s, Runs: 1}
	res.Violations = oracle(s)
	if len(res.Violations) == 0 {
		return res // shrinking a passing timeline is a no-op
	}
	target := classesOf(res.Violations)
	// tail is the post-last-event observation window of the original
	// scenario; every candidate keeps it, so moving events earlier shortens
	// the run without shortening what the liveness scan can observe (a
	// truncated tail could manufacture "never recovered" out of a slow
	// recovery — the shrinker must only ever remove cause, not evidence).
	tail := s.Span - lastEventAt(s)

	cur := cloneScenario(s)
	for res.Runs < maxRuns {
		next, viols, runs := step(cur, oracle, target, tail, maxRuns-res.Runs)
		res.Runs += runs
		if next == nil {
			break // no move reproduces: cur is minimal under our moves
		}
		cur, res.Violations = next, viols
		res.Accepted++
	}
	res.Scenario = cur
	if res.Accepted > 0 {
		res.Scenario.Description = fmt.Sprintf(
			"shrunk from %d to %d events (%d oracle runs); violation: %s",
			len(s.Events), len(cur.Events), res.Runs, res.Violations[0])
	}
	return res
}

// step tries every move on cur in deterministic order and returns the first
// accepted candidate (nil when none reproduces within budget).
func step(cur *scenario.Scenario, oracle Oracle, target map[string]bool, tail time.Duration, budget int) (*scenario.Scenario, []string, int) {
	runs := 0
	try := func(c *scenario.Scenario) ([]string, bool) {
		if c == nil || runs >= budget {
			return nil, false
		}
		normalize(c, tail)
		if c.Validate() != nil || !quiesces(c) {
			return nil, false // structurally invalid move: free rejection
		}
		runs++
		viols := oracle(c)
		for _, v := range viols {
			if target[classOf(v)] {
				return viols, true
			}
		}
		return nil, false
	}

	// Move family 1: drop one event (dependent repair inside dropEvent).
	// Dropping later events first keeps the failure's setup intact while
	// stripping aftermath, which tends to reproduce more often.
	for i := len(cur.Events) - 1; i >= 0; i-- {
		if c := dropEvent(cur, i); c != nil {
			if viols, ok := try(c); ok {
				return c, viols, runs
			}
		}
	}
	// Move family 2: merge an event onto its predecessor's instant (or the
	// warmup boundary for the first event) — adjacent windows collapse.
	for i := range cur.Events {
		if c := mergeEarlier(cur, i); c != nil {
			if viols, ok := try(c); ok {
				return c, viols, runs
			}
		}
	}
	// Move family 3: halve the gap before an event, shifting the tail of
	// the timeline with it — spans shorten without reordering.
	for i := range cur.Events {
		if c := halveGap(cur, i); c != nil {
			if viols, ok := try(c); ok {
				return c, viols, runs
			}
		}
	}
	return nil, nil, runs
}

// normalize recomputes the span so the candidate keeps the original
// observation tail after its (possibly earlier) last event, never cutting
// into a declared stall window.
func normalize(c *scenario.Scenario, tail time.Duration) {
	span := lastEventAt(c) + tail
	if c.Invariants.StallTo > span {
		span = c.Invariants.StallTo
	}
	c.Span = span
}

func lastEventAt(s *scenario.Scenario) time.Duration {
	if len(s.Events) == 0 {
		return s.Warmup
	}
	return s.Events[len(s.Events)-1].At
}

// dropEvent removes event i and repairs the remainder: any event whose
// precondition the removal broke (a Recover of a server no longer crashed,
// a Crash that would now exceed the fault bound) is removed too, walking
// forward exactly like Validate does.
func dropEvent(s *scenario.Scenario, i int) *scenario.Scenario {
	c := cloneScenario(s)
	c.Events = append(c.Events[:i], c.Events[i+1:]...)
	c.Events = repairEvents(c)
	return c
}

// mergeEarlier sets event i's time to its predecessor's (the warmup for
// i=0), collapsing the window between them to zero.
func mergeEarlier(s *scenario.Scenario, i int) *scenario.Scenario {
	prev := s.Warmup
	if i > 0 {
		prev = s.Events[i-1].At
	}
	if s.Events[i].At == prev {
		return nil
	}
	c := cloneScenario(s)
	c.Events[i].At = prev
	return c
}

// halveGap halves the gap between event i and its predecessor, shifting
// event i and everything after it earlier by the same amount. Gaps under
// 10ms are left alone (mergeEarlier finishes the job).
func halveGap(s *scenario.Scenario, i int) *scenario.Scenario {
	prev := s.Warmup
	if i > 0 {
		prev = s.Events[i-1].At
	}
	gap := s.Events[i].At - prev
	if gap < 10*time.Millisecond {
		return nil
	}
	c := cloneScenario(s)
	for j := i; j < len(c.Events); j++ {
		c.Events[j].At -= gap / 2
	}
	return c
}

// quiesces reports whether the timeline ends with the environment healthy —
// no partition or degradation active, no server left Byzantine. The
// generator only emits quiescing timelines (that contract is what makes the
// RecoverWithin claim legitimate), so the shrinker must stay inside the
// same space: dropping a Heal or Restore while keeping the fault it undoes
// would fail liveness for environmental reasons and pin the shrink onto a
// timeline that fails even with the protocol bug fixed. Lingering crashes
// are fine — Validate already bounds them to f, so a quorum remains — with
// one exception: the catch-up target must end the timeline up, or the
// catch-up claim is vacuously false (dropping its Recover would let the
// shrinker "reproduce" on any protocol, bug or not).
func quiesces(s *scenario.Scenario) bool {
	partitioned, degraded := false, false
	crashed := make(map[types.ServerID]bool)
	byz := make(map[types.ServerID]bool)
	for _, id := range types.SortedKeys(s.Opts.Faults) {
		if s.Opts.Faults[id].IsFaulty() {
			byz[id] = true
		}
	}
	for _, ev := range s.Events {
		switch a := ev.Action.(type) {
		case scenario.Partition:
			partitioned = true
		case scenario.Heal:
			partitioned = false
		case scenario.Degrade:
			degraded = true
		case scenario.Restore:
			degraded = false
		case scenario.Crash:
			crashed[a.Server] = true
		case scenario.Recover:
			delete(crashed, a.Server)
		case scenario.SetFault:
			if a.Spec.IsFaulty() {
				byz[a.Server] = true
			} else {
				delete(byz, a.Server)
			}
		}
	}
	if id := s.Invariants.CatchUpServer; id != 0 && crashed[id] {
		return false
	}
	return !partitioned && !degraded && len(byz) == 0
}

// repairEvents drops events whose stateful precondition no longer holds,
// tracking the same crash/fault-bound machine Validate checks. It never
// invents events, so the result is a subsequence of the input.
func repairEvents(s *scenario.Scenario) []scenario.Event {
	n := s.Opts.N
	if n == 0 {
		n = 4
	}
	f := types.FaultBound(n)
	crashed := make(map[types.ServerID]bool)
	byz := make(map[types.ServerID]bool)
	for _, id := range types.SortedKeys(s.Opts.Faults) {
		if s.Opts.Faults[id].IsFaulty() {
			byz[id] = true
		}
	}
	load := func() int {
		l := len(crashed)
		for _, id := range types.SortedKeys(byz) {
			if !crashed[id] {
				l++
			}
		}
		return l
	}
	var out []scenario.Event
	for _, ev := range s.Events {
		switch a := ev.Action.(type) {
		case scenario.Crash:
			if crashed[a.Server] {
				continue
			}
			crashed[a.Server] = true
			if load() > f {
				delete(crashed, a.Server)
				continue
			}
		case scenario.Recover:
			if !crashed[a.Server] {
				continue
			}
			delete(crashed, a.Server)
			if load() > f { // a Byzantine server waking back up
				crashed[a.Server] = true
				continue
			}
		case scenario.SetFault:
			was := byz[a.Server]
			if a.Spec.IsFaulty() {
				byz[a.Server] = true
			} else {
				delete(byz, a.Server)
			}
			if load() > f {
				if was {
					byz[a.Server] = true
				} else {
					delete(byz, a.Server)
				}
				continue
			}
		}
		out = append(out, ev)
	}
	return out
}

// cloneScenario deep-copies the parts shrinking mutates (events, span,
// description); Opts and Invariants are value-copied, which is deep enough
// because the shrinker never touches their reference fields.
func cloneScenario(s *scenario.Scenario) *scenario.Scenario {
	c := *s
	c.Events = append([]scenario.Event(nil), s.Events...)
	return &c
}
