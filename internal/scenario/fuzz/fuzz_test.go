package fuzz

import (
	"reflect"
	"testing"
	"time"

	"prestigebft/internal/harness"
	"prestigebft/internal/scenario"
	"prestigebft/internal/types"
)

// TestGeneratedScenariosValid: every sampled timeline passes Validate (the
// generator's precondition tracking works), quiesces into a state where the
// bounded-liveness claim is legitimate, and regeneration from the same
// (seed, index) is deeply equal — the determinism the nightly CI job's
// byte-identical-JSON gate rests on.
func TestGeneratedScenariosValid(t *testing.T) {
	for _, seed := range []int64{1, 7, 12345, 987654321} {
		f := New(seed)
		for i := 0; i < 50; i++ {
			s := f.Scenario(i) // panics on an invalid sample
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d sample %d invalid: %v", seed, i, err)
			}
			if s.Invariants.RecoverWithin == 0 {
				t.Fatalf("seed %d sample %d asserts no liveness bound", seed, i)
			}
			if len(s.Events) < minEvents {
				t.Fatalf("seed %d sample %d has %d events, want ≥%d", seed, i, len(s.Events), minEvents)
			}
			again := New(seed).Scenario(i)
			if !reflect.DeepEqual(s, again) {
				t.Fatalf("seed %d sample %d is not deterministic", seed, i)
			}
		}
	}
}

// TestGeneratedScenariosQuiesce: after the full timeline replays, no
// partition or degradation is left active and every lingering crash still
// leaves a quorum — otherwise the generator would assert recovery the
// protocol cannot deliver.
func TestGeneratedScenariosQuiesce(t *testing.T) {
	f := New(99)
	for i := 0; i < 100; i++ {
		s := f.Scenario(i)
		crashed := map[types.ServerID]bool{}
		partitioned, degraded := false, false
		byz := map[types.ServerID]bool{}
		for _, ev := range s.Events {
			switch a := ev.Action.(type) {
			case scenario.Crash:
				crashed[a.Server] = true
			case scenario.Recover:
				delete(crashed, a.Server)
			case scenario.Partition:
				partitioned = true
			case scenario.Heal:
				partitioned = false
			case scenario.Degrade:
				degraded = true
			case scenario.Restore:
				degraded = false
			case scenario.SetFault:
				if a.Spec.IsFaulty() {
					byz[a.Server] = true
				} else {
					delete(byz, a.Server)
				}
			}
		}
		if partitioned || degraded || len(byz) > 0 {
			t.Fatalf("sample %d does not quiesce: partitioned=%v degraded=%v byz=%v", i, partitioned, degraded, byz)
		}
		if len(crashed) > types.FaultBound(s.Opts.N) {
			t.Fatalf("sample %d ends with %d crashed servers, above f", i, len(crashed))
		}
		// The catch-up oracle must target a server that is up at the end:
		// asserting it on one left crashed fails any protocol (seed 7
		// sample 17 regression — recover then re-crash of the same server).
		if id := s.Invariants.CatchUpServer; id != 0 && crashed[id] {
			t.Fatalf("sample %d asserts catch-up on server %d, which ends the timeline crashed", i, id)
		}
	}
}

// wedgeScenario is a hand-written known-bad timeline for shrinker unit
// tests: eight events of which only the Crash of server 2 matters to the
// fake oracle below.
func wedgeScenario() *scenario.Scenario {
	ev := func(at time.Duration, a scenario.Action) scenario.Event {
		return scenario.Event{At: at, Action: a}
	}
	return &scenario.Scenario{
		Name: "shrink-me",
		Opts: harness.Options{N: 7, Clients: 8, BatchSize: 8, Seed: 1, ClientTimeout: 500 * time.Millisecond},
		Span: 30 * time.Second,
		Events: []scenario.Event{
			ev(2*time.Second, scenario.Degrade{Extra: 10 * time.Millisecond, DropRate: 0.1}),
			ev(3*time.Second, scenario.Crash{Server: 3}),
			ev(4*time.Second, scenario.Partition{Groups: [][]types.ServerID{{4}}}),
			ev(5*time.Second, scenario.Crash{Server: 2}), // the trigger
			ev(6*time.Second, scenario.Heal{}),
			ev(7*time.Second, scenario.Restore{}),
			ev(8*time.Second, scenario.Recover{Server: 3}),
			ev(9*time.Second, scenario.Recover{Server: 2}),
		},
		Invariants: scenario.Invariants{RecoverWithin: 10 * time.Second},
	}
}

// crashTwoOracle fails (liveness-class) any timeline that ever crashes
// server 2 — a deterministic stand-in for a protocol bug triggered by one
// specific event, which is exactly the shape fuzz-found wedges have.
func crashTwoOracle(s *scenario.Scenario) []string {
	if err := s.Validate(); err != nil {
		return []string{"invalid: " + err.Error()}
	}
	for _, ev := range s.Events {
		if c, ok := ev.Action.(scenario.Crash); ok && c.Server == 2 {
			return []string{"liveness: throughput never recovered (fake oracle)"}
		}
	}
	return nil
}

// TestShrinkKnownBad: the eight-event wedge shrinks to a minimal core of at
// most 3 events that still contains the trigger, and two shrinks of the
// same input are deeply equal (deterministic shrinking).
func TestShrinkKnownBad(t *testing.T) {
	// Validate the fixture itself: shrinking must start from a legal
	// scenario or the oracle's "invalid" class poisons the run.
	if err := wedgeScenario().Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	res := Shrink(wedgeScenario(), crashTwoOracle, 500)
	if len(res.Violations) == 0 {
		t.Fatal("shrink lost the violation")
	}
	if got := len(res.Scenario.Events); got > 3 {
		t.Fatalf("shrunk to %d events, want ≤3:\n%v", got, res.Scenario.Events)
	}
	found := false
	for _, ev := range res.Scenario.Events {
		if c, ok := ev.Action.(scenario.Crash); ok && c.Server == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("minimal timeline lost the triggering event: %v", res.Scenario.Events)
	}
	if err := res.Scenario.Validate(); err != nil {
		t.Fatalf("shrunk scenario invalid: %v", err)
	}
	if res.Accepted == 0 {
		t.Fatal("no shrink move was accepted on a shrinkable input")
	}

	again := Shrink(wedgeScenario(), crashTwoOracle, 500)
	if !reflect.DeepEqual(res.Scenario, again.Scenario) || res.Runs != again.Runs {
		t.Fatalf("shrink is not deterministic: %d/%d runs\n%v\nvs\n%v",
			res.Runs, again.Runs, res.Scenario.Events, again.Scenario.Events)
	}
}

// TestShrinkPassingNoop: a timeline whose oracle passes is returned
// unchanged after exactly the one probe run.
func TestShrinkPassingNoop(t *testing.T) {
	s := wedgeScenario()
	passAll := func(*scenario.Scenario) []string { return nil }
	res := Shrink(s, passAll, 500)
	if res.Runs != 1 || res.Accepted != 0 {
		t.Fatalf("no-op shrink ran %d times, accepted %d moves", res.Runs, res.Accepted)
	}
	if !reflect.DeepEqual(res.Scenario, s) {
		t.Fatal("no-op shrink mutated the scenario")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("no-op shrink invented violations: %v", res.Violations)
	}
}

// TestShrinkRespectsBudget: the oracle is never invoked more than maxRuns
// times even when more moves would reproduce.
func TestShrinkRespectsBudget(t *testing.T) {
	calls := 0
	counting := func(s *scenario.Scenario) []string {
		calls++
		return crashTwoOracle(s)
	}
	res := Shrink(wedgeScenario(), counting, 5)
	if calls > 5 || res.Runs != calls {
		t.Fatalf("budget 5, oracle ran %d times (reported %d)", calls, res.Runs)
	}
}

// TestShrinkChasesOriginalClass: a shrink move that flips the failure onto
// a different violation class is rejected — the minimal timeline fails the
// same way the original did.
func TestShrinkChasesOriginalClass(t *testing.T) {
	// Crash of 2 ⇒ liveness violation; timelines without any Recover
	// additionally trip a (fake) catch-up violation. The shrinker may only
	// accept candidates that keep the liveness class alive.
	oracle := func(s *scenario.Scenario) []string {
		if err := s.Validate(); err != nil {
			return []string{"invalid: " + err.Error()}
		}
		var out []string
		hasRecover := false
		for _, ev := range s.Events {
			if c, ok := ev.Action.(scenario.Crash); ok && c.Server == 2 {
				out = append(out, "liveness: fake wedge")
			}
			if _, ok := ev.Action.(scenario.Recover); ok {
				hasRecover = true
			}
		}
		if !hasRecover {
			out = append(out, "catch-up: fake lag")
		}
		return out
	}
	res := Shrink(wedgeScenario(), oracle, 500)
	keep := false
	for _, v := range res.Violations {
		if v == "liveness: fake wedge" {
			keep = true
		}
	}
	if !keep {
		t.Fatalf("shrink drifted off the original violation class: %v", res.Violations)
	}
}

// TestShrinkKeepsCatchUpTargetUp: when the invariants assert catch-up on a
// server, the shrinker may not drop that server's Recover — a timeline
// that leaves the catch-up target crashed fails vacuously on any protocol,
// so such candidates are rejected even though they "reproduce" the class.
func TestShrinkKeepsCatchUpTargetUp(t *testing.T) {
	s := wedgeScenario()
	s.Invariants.CatchUpServer = 2
	// Fake catch-up bug: any timeline that crashes server 2 trips the
	// catch-up oracle, with or without the Recover. The greedy descent
	// would otherwise drop Recover{2} first (later events go first).
	oracle := func(c *scenario.Scenario) []string {
		for _, ev := range c.Events {
			if cr, ok := ev.Action.(scenario.Crash); ok && cr.Server == 2 {
				return []string{"catch-up: fake lag"}
			}
		}
		return nil
	}
	res := Shrink(s, oracle, 500)
	crashed := false
	for _, ev := range res.Scenario.Events {
		switch a := ev.Action.(type) {
		case scenario.Crash:
			if a.Server == 2 {
				crashed = true
			}
		case scenario.Recover:
			if a.Server == 2 {
				crashed = false
			}
		}
	}
	if crashed {
		t.Fatalf("minimal timeline leaves catch-up target 2 crashed: %v", res.Scenario.Events)
	}
	if len(res.Violations) == 0 || res.Accepted == 0 {
		t.Fatalf("shrink should still reproduce and shrink: %+v", res)
	}
}
