package scenario

import (
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/types"
)

// Environment is the protocol-facing seam between a declarative scenario
// and the world it runs in. Event application, invariant checking, and
// reporting are written against this interface only, so the same scenario
// definition produces verdicts in every world that can implement it: the
// deterministic discrete-event simulator (simenv.go, one harness.Cluster)
// and the live loopback-TCP cluster (internal/liveharness, real
// runtime.Runtime processes with transport-level fault injection).
//
// All times are scenario time: offsets from cluster start in the
// scenario's own clock. The simulator equates scenario time with virtual
// time; a live environment maps it onto wall-clock deadlines (optionally
// scaled) and reports its measurement tolerances through Timing.
//
// The lifecycle is strict: Schedule all events, then Start, then RunUntil
// (monotonic), then Close, then observe. Observation methods must be safe
// after Close — a live environment only guarantees race-free ledger reads
// once everything is stopped.
type Environment interface {
	// N returns the number of servers in the deployment.
	N() int

	// Schedule registers fn to run at the absolute scenario-time offset
	// at. Must only be called before Start.
	Schedule(at time.Duration, fn func())
	// Start boots the servers and the client workload.
	Start()
	// RunUntil advances (simulator) or blocks (live) until scenario time
	// reaches at. Calls must be monotonically non-decreasing.
	RunUntil(at time.Duration)
	// Close tears the environment down. Idempotent. After Close the
	// observation methods below remain usable.
	Close()

	// Injection primitives — one per Action. Implementations recompute the
	// full fabric state from the declared crash/partition sets on every
	// change, so overlapping faults compose instead of clobbering.
	Crash(id types.ServerID)
	Recover(id types.ServerID)
	Partition(groups [][]types.ServerID)
	Heal()
	SetFault(id types.ServerID, spec faults.Spec)
	Degrade(extra, jitter time.Duration, drop float64)
	Restore()

	// Progress returns the run's protocol counters so far.
	Progress() Progress
	// TPS returns committed transactions per second over [from, to).
	TPS(from, to time.Duration) float64
	// CollectStats folds client-side statistics (latencies, complaints)
	// into the environment's aggregates; call before LatencyPercentile.
	CollectStats()
	// LatencyPercentile returns the p-th percentile (0-100) client-observed
	// commit latency.
	LatencyPercentile(p float64) time.Duration
	// ChainHeight returns a server's committed chain height. ok is false
	// when the server does not expose a readable ledger (baseline
	// replicas without a PrestigeBFT store).
	ChainHeight(id types.ServerID) (h types.SeqNum, ok bool)
	// BlockHash returns the hash of the committed block at seq on the
	// given server, for committed-prefix safety comparison. ok is false
	// when the server has no readable ledger OR the block was compacted
	// away below the server's certified log base (the certificate already
	// proves prefix agreement there, so safety checking skips it).
	BlockHash(id types.ServerID, seq types.SeqNum) (d types.Digest, ok bool)
	// LedgerBlocks returns how many txBlocks the server currently retains —
	// the quantity checkpoint compaction bounds. ok mirrors ChainHeight.
	LedgerBlocks(id types.ServerID) (blocks int, ok bool)
	// Timing returns the environment's measurement tolerances: slack
	// multiplies liveness bounds (wall-clock runs pay scheduling and
	// real-crypto overheads the simulator does not model), and margin
	// shifts the leading edge of no-commit stall windows (live event
	// injection has in-flight traffic the simulator retires instantly).
	// The simulator returns (1, 0).
	Timing() (slack float64, margin time.Duration)
}

// Progress is a snapshot of an environment's protocol counters, the
// common observable surface behind Report.
type Progress struct {
	// Commits counts committed blocks (deduplicated across servers);
	// TotalTxs the transactions inside them.
	Commits  int
	TotalTxs int

	ViewChanges int
	Elections   int
	SyncUps     int
	// Checkpoints counts assembled checkpoint certificates (log
	// compactions); Snapshots counts certified-snapshot installations —
	// catch-ups that skipped compacted history instead of replaying it.
	Checkpoints int
	Snapshots   int

	// Msgs and Bytes aggregate fabric traffic (all endpoints).
	Msgs  uint64
	Bytes uint64
}

// NewSimEnv builds the simulated environment for one scenario run: a fresh
// harness.Cluster driven entirely in virtual time. It is the default
// environment Run uses, and the reference implementation of the interface.
func NewSimEnv(o harness.Options) (Environment, error) {
	return newSimEnv(o), nil
}
