package scenario

import (
	"fmt"
	"sync"

	"prestigebft/internal/metrics"
	"prestigebft/internal/types"
)

// MetricsEnvironment is the optional scrape surface an environment may
// expose: per-replica Prometheus snapshots fetched over the same path an
// external monitoring system would use. The live harness implements it; the
// simulator does not, so metric-backed invariants are skipped there and the
// deterministic trajectory is untouched.
type MetricsEnvironment interface {
	ScrapeAll() map[types.ServerID]metrics.Snapshot
}

// HealthEnvironment is the optional readiness surface: block until every
// replica's /healthz is green (or an environment-owned timeout trips).
type HealthEnvironment interface {
	WaitHealthy() error
}

// MetricInvariants declares scrape-backed checks, the chaos-engineering
// oracle pattern: a steady-state hypothesis verified on metrics before
// injection, and recovery detected on metrics after the last event heals.
// All checks are evaluated only when the environment implements
// MetricsEnvironment.
type MetricInvariants struct {
	// MinSteadyCommitRate asserts the cluster-wide commit rate at the
	// pre-injection scrape: sum of prestige_commits_total across replicas
	// divided by the warmup length (scenario seconds) must reach this.
	// Zero skips the check.
	MinSteadyCommitRate float64
	// RequireRecovery asserts recovery as a scraper would detect it: every
	// replica present in both the post-heal scrape (at the last event) and
	// the final scrape must show prestige_commits_total strictly
	// increasing between them.
	RequireRecovery bool
	// MaxGoroutineGrowth bounds per-replica go_goroutines at the final
	// scrape to the pre-injection value plus this allowance (the whole
	// process hosts the harness, so the bound is absolute headroom, not a
	// leak-free ideal). Zero skips the check.
	MaxGoroutineGrowth float64
	// MaxHeapGrowthFactor bounds go_memstats_heap_inuse_bytes at the final
	// scrape to the pre-injection value times this factor (plus a fixed
	// 32 MiB noise floor — Go's allocator is not byte-stable). Zero skips.
	MaxHeapGrowthFactor float64
}

// active reports whether any check is declared.
func (m *MetricInvariants) active() bool {
	return m != nil && (m.MinSteadyCommitRate > 0 || m.RequireRecovery ||
		m.MaxGoroutineGrowth > 0 || m.MaxHeapGrowthFactor > 0)
}

// heapNoiseFloor forgives allocator jitter in the heap-growth check.
const heapNoiseFloor = 32 << 20

// metricScrapes carries the engine's three scrape points through a run.
// postHeal is written by the environment's injection goroutine (scheduled
// at the last event) and read after Close; the mutex makes that hand-off
// safe regardless of the environment's internal synchronization.
type metricScrapes struct {
	mu       sync.Mutex
	steady   map[types.ServerID]metrics.Snapshot
	postHeal map[types.ServerID]metrics.Snapshot
	final    map[types.ServerID]metrics.Snapshot
}

func (sc *metricScrapes) setPostHeal(m map[types.ServerID]metrics.Snapshot) {
	sc.mu.Lock()
	sc.postHeal = m
	sc.mu.Unlock()
}

// evaluateMetrics checks the declared metric invariants against the three
// scrape points, appending violations to the report.
func (s *Scenario) evaluateMetrics(sc *metricScrapes, rep *Report) {
	m := s.Invariants.Metrics
	if !m.active() || sc == nil {
		return
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if m.MinSteadyCommitRate > 0 {
		if len(sc.steady) == 0 {
			rep.Violations = append(rep.Violations, "metrics: steady-state scrape returned no replicas")
		} else {
			total := 0.0
			for _, id := range types.SortedKeys(sc.steady) {
				v, _ := sc.steady[id].Value("prestige_commits_total")
				total += v
			}
			rate := total / s.warmup().Seconds()
			if rate < m.MinSteadyCommitRate {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("metrics: steady-state commit rate %.1f/s below the %.1f/s hypothesis before injection",
						rate, m.MinSteadyCommitRate))
			}
		}
	}
	if m.RequireRecovery {
		checked := 0
		for _, id := range types.SortedKeys(sc.postHeal) {
			fin, ok := sc.final[id]
			if !ok {
				continue
			}
			before, _ := sc.postHeal[id].Value("prestige_commits_total")
			after, _ := fin.Value("prestige_commits_total")
			checked++
			if after <= before {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("metrics: server %d prestige_commits_total flat at %.0f after the last event — recovery not observable by scrape", id, after))
			}
		}
		if checked == 0 {
			rep.Violations = append(rep.Violations, "metrics: recovery check had no replicas present in both post-heal and final scrapes")
		}
	}
	if m.MaxGoroutineGrowth > 0 {
		for _, id := range types.SortedKeys(sc.steady) {
			fin, ok := sc.final[id]
			if !ok {
				continue
			}
			before, _ := sc.steady[id].Value("go_goroutines")
			after, _ := fin.Value("go_goroutines")
			if after > before+m.MaxGoroutineGrowth {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("metrics: server %d go_goroutines grew %.0f → %.0f, over the +%.0f allowance — goroutine leak",
						id, before, after, m.MaxGoroutineGrowth))
			}
		}
	}
	if m.MaxHeapGrowthFactor > 0 {
		for _, id := range types.SortedKeys(sc.steady) {
			fin, ok := sc.final[id]
			if !ok {
				continue
			}
			before, _ := sc.steady[id].Value("go_memstats_heap_inuse_bytes")
			after, _ := fin.Value("go_memstats_heap_inuse_bytes")
			if after > before*m.MaxHeapGrowthFactor+heapNoiseFloor {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("metrics: server %d heap_inuse grew %.0f → %.0f bytes, over %.1fx + noise floor — memory not flat",
						id, before, after, m.MaxHeapGrowthFactor))
			}
		}
	}
}
