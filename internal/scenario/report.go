package scenario

import (
	"fmt"
	"strings"
	"time"

	"prestigebft/internal/harness"
)

// Report is the measured outcome of one scenario run plus any invariant
// violations. An empty Violations slice means the run passed.
type Report struct {
	Scenario string

	// SteadyTPS is throughput during the pre-injection warmup; FinalTPS is
	// throughput from the last event to the end of the span.
	SteadyTPS float64
	FinalTPS  float64

	// Client-observed commit latency percentiles over the whole run.
	P50, P95, P99 time.Duration

	// Recovery is how long after the last event throughput returned to the
	// declared fraction of steady state; -1 when not measured or never.
	Recovery time.Duration

	Commits     int
	TotalTxs    int
	ViewChanges int
	Elections   int
	SyncUps     int
	Checkpoints int
	Snapshots   int
	Msgs        uint64
	Bytes       uint64

	Violations []string
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Row renders the report as one figure-grid row, so scenario suites emit the
// same JSON row shape as every other experiment (runner.go).
func (r *Report) Row() harness.Row {
	ok := 0.0
	if r.OK() {
		ok = 1
	}
	rec := -1.0
	if r.Recovery >= 0 {
		rec = r.Recovery.Seconds()
	}
	row := harness.Row{Label: r.Scenario, Values: map[string]float64{}}
	add := func(k string, v float64) {
		row.Values[k] = v
		row.Order = append(row.Order, k)
	}
	add("ok", ok)
	add("steady_tps", r.SteadyTPS)
	add("final_tps", r.FinalTPS)
	add("p50_ms", float64(r.P50.Microseconds())/1000)
	add("p95_ms", float64(r.P95.Microseconds())/1000)
	add("p99_ms", float64(r.P99.Microseconds())/1000)
	add("recovery_s", rec)
	add("view_changes", float64(r.ViewChanges))
	add("elections", float64(r.Elections))
	add("sync_ups", float64(r.SyncUps))
	add("checkpoints", float64(r.Checkpoints))
	add("snapshots", float64(r.Snapshots))
	add("msgs", float64(r.Msgs))
	add("mbytes", float64(r.Bytes)/(1<<20))
	return row
}

// String renders a human-readable verdict line (violations included).
func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%-34s %s  steady=%.0f tps  final=%.0f tps  p99=%v",
		r.Scenario, verdict, r.SteadyTPS, r.FinalTPS, r.P99.Round(time.Millisecond))
	if r.Recovery >= 0 {
		fmt.Fprintf(&b, "  recovery=%v", r.Recovery.Round(10*time.Millisecond))
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n    ✗ %s", v)
	}
	return b.String()
}
