package scenario

import (
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"
)

// simEnv implements Environment over one simulated cluster. Scenario time
// is virtual time, so every run is byte-reproducible for a given spec
// under any worker count, exactly like the figure grids (runner.go).
//
// Crashes and partitions both express themselves as link cuts on the same
// sim.Network cut set, so instead of toggling individual links (where a
// heal could accidentally un-crash a server that the partition also
// covered) it recomputes every cut from the declared state after each
// change.
type simEnv struct {
	c *harness.Cluster
	// base is the fabric profile at start; Restore returns to it.
	base sim.NetworkConfig
	// pos tracks how far the simulation has advanced (RunUntil is
	// absolute, Cluster.Run is relative).
	pos time.Duration

	crashed map[types.ServerID]bool
	// group assigns each server a partition group; nil means no partition.
	group map[types.ServerID]int
}

var _ Environment = (*simEnv)(nil)

func newSimEnv(o harness.Options) *simEnv {
	c := harness.NewCluster(o)
	return &simEnv{c: c, base: c.Net.Config(), crashed: make(map[types.ServerID]bool)}
}

func (e *simEnv) N() int { return e.c.Opts.N }

func (e *simEnv) Schedule(at time.Duration, fn func()) {
	e.c.Sched.At(sim.Duration(at), fn)
}

func (e *simEnv) Start() { e.c.Start() }

func (e *simEnv) RunUntil(at time.Duration) {
	if at > e.pos {
		e.c.Run(at - e.pos)
		e.pos = at
	}
}

func (e *simEnv) Close() {}

// applyCuts recomputes the whole cut set: a server↔server link is severed
// iff either side is crashed or the sides sit in different partition groups;
// a client↔server link is severed iff the server is crashed (partitions
// model the server-side fabric — clients keep reaching every region).
func (e *simEnv) applyCuts() {
	n := e.c.Opts.N
	for i := 1; i <= n; i++ {
		a := types.ServerID(i)
		for j := i + 1; j <= n; j++ {
			b := types.ServerID(j)
			cut := e.crashed[a] || e.crashed[b]
			if !cut && e.group != nil && e.group[a] != e.group[b] {
				cut = true
			}
			e.c.Net.SetCut(sim.ServerAddr(uint16(a)), sim.ServerAddr(uint16(b)), cut)
			e.c.Net.SetCut(sim.ServerAddr(uint16(b)), sim.ServerAddr(uint16(a)), cut)
		}
		for cl := 1; cl <= e.c.Opts.Clients; cl++ {
			e.c.Net.SetCut(sim.ServerAddr(uint16(a)), sim.ClientAddr(uint32(cl)), e.crashed[a])
			e.c.Net.SetCut(sim.ClientAddr(uint32(cl)), sim.ServerAddr(uint16(a)), e.crashed[a])
		}
	}
}

func (e *simEnv) Crash(id types.ServerID) {
	e.crashed[id] = true
	e.applyCuts()
}

func (e *simEnv) Recover(id types.ServerID) {
	delete(e.crashed, id)
	e.applyCuts()
}

func (e *simEnv) Partition(groups [][]types.ServerID) {
	e.group = make(map[types.ServerID]int)
	for gi, g := range groups {
		for _, id := range g {
			e.group[id] = gi + 1 // 0 is the implicit remainder group
		}
	}
	e.applyCuts()
}

func (e *simEnv) Heal() {
	e.group = nil
	e.applyCuts()
}

func (e *simEnv) SetFault(id types.ServerID, spec faults.Spec) {
	if w := e.c.Wrappers[id-1]; w != nil {
		w.SetSpec(spec)
	}
}

func (e *simEnv) Degrade(extra, jitter time.Duration, drop float64) {
	// Recompute the latency model from the base profile every time, like
	// every other fabric mutation: a later Degrade with zero added latency
	// replaces (not layers on) an earlier one, matching the live
	// LinkFaults semantics.
	if extra > 0 || jitter > 0 {
		e.c.Net.SetLatency(sim.NetemLatency{
			Base:  e.base.Latency,
			Extra: sim.NormalLatency{Mean: extra, StdDev: jitter},
		})
	} else {
		e.c.Net.SetLatency(e.base.Latency)
	}
	e.c.Net.SetDropRate(drop)
}

func (e *simEnv) Restore() {
	e.c.Net.SetLatency(e.base.Latency)
	e.c.Net.SetDropRate(e.base.DropRate)
	e.c.Net.SetBandwidth(e.base.Bandwidth)
}

func (e *simEnv) Progress() Progress {
	return Progress{
		Commits:     len(e.c.Metrics.Commits),
		TotalTxs:    e.c.Metrics.TotalTxs,
		ViewChanges: e.c.Metrics.ViewChangesStarted,
		Elections:   e.c.Metrics.Elections,
		SyncUps:     e.c.Metrics.SyncUps,
		Checkpoints: e.c.Metrics.Checkpoints,
		Snapshots:   e.c.Metrics.SnapshotInstalls,
		Msgs:        e.c.Net.Sent,
		Bytes:       e.c.Net.Bytes,
	}
}

func (e *simEnv) TPS(from, to time.Duration) float64 {
	return e.c.Metrics.TPS(sim.Duration(from), sim.Duration(to))
}

func (e *simEnv) CollectStats() { e.c.CollectClientStats() }

func (e *simEnv) LatencyPercentile(p float64) time.Duration {
	return e.c.Metrics.LatencyPercentile(p)
}

func (e *simEnv) ChainHeight(id types.ServerID) (types.SeqNum, bool) {
	node := e.c.Nodes[id-1]
	if node == nil {
		return 0, false
	}
	return node.Store().TxHeight(), true
}

func (e *simEnv) BlockHash(id types.ServerID, seq types.SeqNum) (types.Digest, bool) {
	node := e.c.Nodes[id-1]
	if node == nil {
		return types.Digest{}, false
	}
	blk := node.Store().TxBlock(seq)
	if blk == nil {
		return types.Digest{}, false // compacted below the log base
	}
	return blk.Hash(), true
}

func (e *simEnv) LedgerBlocks(id types.ServerID) (int, bool) {
	node := e.c.Nodes[id-1]
	if node == nil {
		return 0, false
	}
	return node.Store().RetainedTxBlocks(), true
}

func (e *simEnv) Timing() (float64, time.Duration) { return 1, 0 }
