package scenario

import (
	"fmt"

	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"
)

// Action is one environmental injection. Actions mutate the fabric or the
// fault wrappers, never protocol internals — a scenario only does what a
// real operator's misfortune (or a real attacker) could.
type Action interface {
	fmt.Stringer
	apply(rt *runtime)
}

// runtime tracks the desired environmental state of a running scenario.
// Crashes and partitions both express themselves as link cuts on the same
// sim.Network cut set, so instead of toggling individual links (where a heal
// could accidentally un-crash a server that the partition also covered) it
// recomputes every cut from the declared state after each change.
type runtime struct {
	c *harness.Cluster
	// base is the fabric profile at start; Restore returns to it.
	base sim.NetworkConfig

	crashed map[types.ServerID]bool
	// group assigns each server a partition group; nil means no partition.
	group map[types.ServerID]int
}

func newRuntime(c *harness.Cluster) *runtime {
	return &runtime{c: c, base: c.Net.Config(), crashed: make(map[types.ServerID]bool)}
}

// applyCuts recomputes the whole cut set: a server↔server link is severed
// iff either side is crashed or the sides sit in different partition groups;
// a client↔server link is severed iff the server is crashed (partitions
// model the server-side fabric — clients keep reaching every region).
func (rt *runtime) applyCuts() {
	n := rt.c.Opts.N
	for i := 1; i <= n; i++ {
		a := types.ServerID(i)
		for j := i + 1; j <= n; j++ {
			b := types.ServerID(j)
			cut := rt.crashed[a] || rt.crashed[b]
			if !cut && rt.group != nil && rt.group[a] != rt.group[b] {
				cut = true
			}
			rt.c.Net.SetCut(sim.ServerAddr(uint16(a)), sim.ServerAddr(uint16(b)), cut)
			rt.c.Net.SetCut(sim.ServerAddr(uint16(b)), sim.ServerAddr(uint16(a)), cut)
		}
		for cl := 1; cl <= rt.c.Opts.Clients; cl++ {
			rt.c.Net.SetCut(sim.ServerAddr(uint16(a)), sim.ClientAddr(uint32(cl)), rt.crashed[a])
			rt.c.Net.SetCut(sim.ClientAddr(uint32(cl)), sim.ServerAddr(uint16(a)), rt.crashed[a])
		}
	}
}

// Crash severs all of a server's links (benign fail-stop).
type Crash struct{ Server types.ServerID }

func (a Crash) String() string { return fmt.Sprintf("crash(S%d)", a.Server) }
func (a Crash) apply(rt *runtime) {
	rt.crashed[a.Server] = true
	rt.applyCuts()
}

// Recover reconnects a crashed server. The server kept its local state and
// timers while dark (fail-recover, not amnesia); it rejoins via the normal
// catch-up path.
type Recover struct{ Server types.ServerID }

func (a Recover) String() string { return fmt.Sprintf("recover(S%d)", a.Server) }
func (a Recover) apply(rt *runtime) {
	delete(rt.crashed, a.Server)
	rt.applyCuts()
}

// Partition splits the server plane: servers in different groups cannot
// talk. Servers not listed in any group form one implicit group together.
// A later Partition replaces the current one; Heal removes it.
type Partition struct{ Groups [][]types.ServerID }

func (a Partition) String() string {
	out := "partition("
	for i, g := range a.Groups {
		if i > 0 {
			out += "|"
		}
		for j, id := range sortedIDs(g) {
			if j > 0 {
				out += ","
			}
			out += fmt.Sprintf("S%d", id)
		}
	}
	return out + ")"
}

func (a Partition) apply(rt *runtime) {
	rt.group = make(map[types.ServerID]int)
	for gi, g := range a.Groups {
		for _, id := range g {
			rt.group[id] = gi + 1 // 0 is the implicit remainder group
		}
	}
	rt.applyCuts()
}

// Heal removes the current partition. Crashed servers stay crashed.
type Heal struct{}

func (Heal) String() string { return "heal" }
func (Heal) apply(rt *runtime) {
	rt.group = nil
	rt.applyCuts()
}

// SetFault swaps a server's Byzantine behavior at runtime (the paper's
// dynamic fault set: membership of the faulty set may change while
// |faulty| ≤ f holds). The server must be wrapped (harness
// Options.WrapServers or a faulty initial Spec).
type SetFault struct {
	Server types.ServerID
	Spec   faults.Spec
}

func (a SetFault) String() string { return fmt.Sprintf("setFault(S%d,%s)", a.Server, a.Spec) }
func (a SetFault) apply(rt *runtime) {
	if w := rt.c.Wrappers[a.Server-1]; w != nil {
		w.SetSpec(a.Spec)
	}
}

// Degrade reshapes the whole fabric: a gray failure where links stay up but
// turn slow and lossy. A nil Latency keeps the current model.
type Degrade struct {
	Latency  sim.LatencyModel
	DropRate float64
}

func (a Degrade) String() string { return fmt.Sprintf("degrade(drop=%.0f%%)", a.DropRate*100) }
func (a Degrade) apply(rt *runtime) {
	rt.c.Net.SetLatency(a.Latency)
	rt.c.Net.SetDropRate(a.DropRate)
}

// Restore returns the fabric to the scenario's base profile (undoes Degrade).
type Restore struct{}

func (Restore) String() string { return "restore" }
func (Restore) apply(rt *runtime) {
	rt.c.Net.SetLatency(rt.base.Latency)
	rt.c.Net.SetDropRate(rt.base.DropRate)
	rt.c.Net.SetBandwidth(rt.base.Bandwidth)
}
