package scenario

import (
	"fmt"
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/types"
)

// Action is one environmental injection. Actions mutate the fabric or the
// fault wrappers, never protocol internals — a scenario only does what a
// real operator's misfortune (or a real attacker) could. Actions are
// written against the Environment seam, so the same timeline replays on
// the simulator and on a live TCP cluster.
type Action interface {
	fmt.Stringer
	apply(env Environment)
}

// Crash fail-stops a server. The simulator severs all of its links; a live
// environment stops the hosting runtime and closes its transport, then
// re-spawns it on Recover against the ledger it kept (fail-recover, not
// amnesia).
type Crash struct{ Server types.ServerID }

func (a Crash) String() string        { return fmt.Sprintf("crash(S%d)", a.Server) }
func (a Crash) apply(env Environment) { env.Crash(a.Server) }

// Recover brings a crashed server back. It rejoins with its local state
// via the normal catch-up path.
type Recover struct{ Server types.ServerID }

func (a Recover) String() string        { return fmt.Sprintf("recover(S%d)", a.Server) }
func (a Recover) apply(env Environment) { env.Recover(a.Server) }

// Partition splits the server plane: servers in different groups cannot
// talk. Servers not listed in any group form one implicit group together.
// A later Partition replaces the current one; Heal removes it.
type Partition struct{ Groups [][]types.ServerID }

func (a Partition) String() string {
	out := "partition("
	for i, g := range a.Groups {
		if i > 0 {
			out += "|"
		}
		for j, id := range sortedIDs(g) {
			if j > 0 {
				out += ","
			}
			out += fmt.Sprintf("S%d", id)
		}
	}
	return out + ")"
}

func (a Partition) apply(env Environment) { env.Partition(a.Groups) }

// Heal removes the current partition. Crashed servers stay crashed.
type Heal struct{}

func (Heal) String() string        { return "heal" }
func (Heal) apply(env Environment) { env.Heal() }

// SetFault swaps a server's Byzantine behavior at runtime (the paper's
// dynamic fault set: membership of the faulty set may change while
// |faulty| ≤ f holds). The server must be wrapped (harness
// Options.WrapServers or a faulty initial Spec).
type SetFault struct {
	Server types.ServerID
	Spec   faults.Spec
}

func (a SetFault) String() string        { return fmt.Sprintf("setFault(S%d,%s)", a.Server, a.Spec) }
func (a SetFault) apply(env Environment) { env.SetFault(a.Server, a.Spec) }

// Degrade reshapes the whole fabric: a gray failure where links stay up
// but turn slow and lossy. Each message gains a normally distributed
// Extra±Jitter delay on top of the base fabric profile and is dropped with
// probability DropRate — the netem vocabulary, so the same numbers drive
// the simulator's latency model and a live transport's fault layer.
type Degrade struct {
	Extra    time.Duration
	Jitter   time.Duration
	DropRate float64
}

func (a Degrade) String() string {
	return fmt.Sprintf("degrade(+%v±%v,drop=%.0f%%)", a.Extra, a.Jitter, a.DropRate*100)
}
func (a Degrade) apply(env Environment) { env.Degrade(a.Extra, a.Jitter, a.DropRate) }

// Restore returns the fabric to the scenario's base profile (undoes Degrade).
type Restore struct{}

func (Restore) String() string        { return "restore" }
func (Restore) apply(env Environment) { env.Restore() }
