package liveharness_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"prestigebft/internal/liveharness"
	"prestigebft/internal/scenario"
	"prestigebft/internal/types"
)

// TestLiveScrapeRoundTrip boots a real cluster, lets it commit, then
// scrapes every replica's /metrics over HTTP and parses the exposition
// bytes back into snapshots — the full path an external Prometheus server
// would exercise. The committed work must be visible in the scrape: every
// replica's prestige_commits_total > 0 and the transport counters moving.
func TestLiveScrapeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster; skipped with -short")
	}
	env, err := liveharness.New(shape(4, 41), liveharness.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.Start()
	if err := env.WaitHealthy(); err != nil {
		t.Fatalf("cluster never turned healthy: %v", err)
	}
	env.RunUntil(2 * time.Second)

	snaps := env.ScrapeAll()
	if len(snaps) != 4 {
		t.Fatalf("scraped %d replicas, want 4", len(snaps))
	}
	for id, snap := range snaps {
		commits, ok := snap.Value("prestige_commits_total")
		if !ok || commits <= 0 {
			t.Errorf("S%d: prestige_commits_total = %v (present=%v), want > 0", id, commits, ok)
		}
		if sent := snap.Sum("prestige_transport_sent_total"); sent <= 0 {
			t.Errorf("S%d: transport sent nothing (%v)", id, sent)
		}
		if peerSent := snap.Sum("prestige_peer_sent_total"); peerSent <= 0 {
			t.Errorf("S%d: no per-peer send counters (%v)", id, peerSent)
		}
		if g, ok := snap.Value("go_goroutines"); !ok || g <= 0 {
			t.Errorf("S%d: process metrics missing (go_goroutines=%v present=%v)", id, g, ok)
		}
	}

	// The raw exposition body must carry the content type and HELP/TYPE
	// headers a scraper keys on.
	resp, err := http.Get("http://" + env.AdminAddr(1) + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q missing exposition version", ct)
	}
	if !strings.Contains(string(body), "# TYPE prestige_commits_total counter") {
		t.Errorf("exposition missing TYPE line:\n%s", body)
	}
}

// TestLiveViewChangeCountsOncePerReplica crashes the leader and never
// recovers it: the survivors run exactly one view change. Each survivor's
// prestige_viewchange_total must read exactly 1 — installs are deduped per
// target view no matter how many vcBlock announcements or sync rounds
// re-deliver the result.
func TestLiveViewChangeCountsOncePerReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster with crash; skipped with -short")
	}
	if raceEnabled {
		t.Skip("timing-bound view-change deadline is meaningless under race instrumentation")
	}
	env, err := liveharness.New(shape(4, 42), liveharness.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.Start()
	if err := env.WaitHealthy(); err != nil {
		t.Fatalf("cluster never turned healthy: %v", err)
	}
	env.RunUntil(1 * time.Second)
	env.Crash(1)

	// Wait for every survivor to install the new view, then give the
	// cluster time to keep committing in it — any spurious re-count would
	// land in this window.
	deadline := time.Now().Add(8 * time.Second)
	for {
		snaps := env.ScrapeAll()
		installed := 0
		for _, id := range []types.ServerID{2, 3, 4} {
			if v, _ := snaps[id].Value("prestige_viewchange_total"); v >= 1 {
				installed++
			}
		}
		if installed == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("view change not installed on all survivors within deadline: %v", snaps)
		}
		time.Sleep(100 * time.Millisecond)
	}
	time.Sleep(2 * time.Second)

	snaps := env.ScrapeAll()
	for _, id := range []types.ServerID{2, 3, 4} {
		snap, ok := snaps[id]
		if !ok {
			t.Fatalf("S%d missing from scrape", id)
		}
		if v, _ := snap.Value("prestige_viewchange_total"); v != 1 {
			t.Errorf("S%d: prestige_viewchange_total = %v, want exactly 1", id, v)
		}
	}
}

// TestLiveMetricInvariants runs the scenario engine end to end with
// metric-backed invariants on the live harness: healthz gate, steady-state
// commit-rate hypothesis, and scrape-observable recovery after the heal.
func TestLiveMetricInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster; skipped with -short")
	}
	if raceEnabled {
		t.Skip("timing-bound recovery deadlines are meaningless under race instrumentation")
	}
	rep := runLive(t, &scenario.Scenario{
		Name:   "live-metric-oracle",
		Opts:   shape(4, 43),
		Warmup: 1 * time.Second,
		Span:   10 * time.Second,
		Events: []scenario.Event{
			{At: 1 * time.Second, Action: scenario.Crash{Server: 2}},
			{At: 4 * time.Second, Action: scenario.Recover{Server: 2}},
		},
		Invariants: scenario.Invariants{
			RecoverWithin: 5 * time.Second,
			Metrics: &scenario.MetricInvariants{
				MinSteadyCommitRate: 1,
				RequireRecovery:     true,
				MaxGoroutineGrowth:  500,
				MaxHeapGrowthFactor: 8,
			},
		},
	})
	if !rep.OK() {
		t.Fatalf("metric-oracle scenario violated invariants: %v", rep.Violations)
	}
}
