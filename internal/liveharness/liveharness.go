// Package liveharness implements the scenario.Environment seam over a live
// cluster: real runtime.Runtime replicas speaking gob over loopback TCP,
// real signatures, real proof-of-work, and wall-clock time. The same
// declarative chaos scenarios that run on the discrete-event simulator
// (internal/scenario) replay here against actual processes — the paper's
// deployment mode (a real testbed with netem-injected faults, §6.1)
// finally gets first-class scenario coverage.
//
// Fault injection follows the toxiproxy/comcast pattern: every transport
// carries a transport.LinkFaults layer, so partitions, drop rates, and
// added latency are applied at the wire seam, never inside the protocol.
// Crash/Recover is process-like: the hosting runtime is stopped and its
// transport torn down (peers see dead sockets), then a fresh runtime and
// transport are spawned over the same replica — which kept its ledger, so
// recovery is fail-recover against persisted state, not amnesia, exactly
// the simulator's semantics.
//
// Scenario time maps onto wall-clock deadlines: event offsets and span
// boundaries are scheduled on real timers (optionally scaled by
// Config.TimeScale), and liveness bounds stretch by Config.Slack because a
// live run pays scheduling, kernel, and crypto costs the simulator's models
// do not. What stays exact: the committed-prefix safety invariant, checked
// hash-by-hash across the real replicas' ledgers after shutdown. What is
// inherently nondeterministic: timing-dependent measurements (TPS, message
// counts, which server wins an election). DESIGN.md §9 documents the
// mapping in detail.
package liveharness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"prestigebft/internal/client"
	"prestigebft/internal/consensus"
	"prestigebft/internal/core"
	"prestigebft/internal/crypto"
	"prestigebft/internal/crypto/verifier"
	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/metrics"
	"prestigebft/internal/runtime"
	"prestigebft/internal/scenario"
	"prestigebft/internal/transport"
	"prestigebft/internal/types"
)

// Config tunes the live environment's time mapping and physics.
type Config struct {
	// TimeScale maps scenario time to wall clock: an event at offset t
	// fires at t·TimeScale of real time. Default 1. Protocol-internal
	// timeouts (follower timers, client complaints) are wall-clock and do
	// NOT scale, so values far from 1 shift the balance between the
	// scenario timeline and the protocol's reactions — compress with care.
	TimeScale float64
	// Slack multiplies scenario liveness bounds (RecoverWithin): live runs
	// pay real scheduling and crypto costs. Default 1.5.
	Slack float64
	// StallMargin shifts the leading edge of no-commit stall windows,
	// forgiving commits that were already in flight when the
	// quorum-removing event landed. Default 500ms.
	StallMargin time.Duration
	// PuzzleBitsPerRP is the real proof-of-work difficulty per reputation
	// penalty unit. Default 2 (fast enough for loopback chaos runs while
	// keeping the computation real; prestige-server defaults to 4).
	PuzzleBitsPerRP int
	// HealthTimeout bounds WaitHealthy's poll for every replica's /healthz
	// to go green. Default 10s of wall clock.
	HealthTimeout time.Duration
	// WireCodec selects the wire encoding every transport negotiates:
	// "binary" (default — the zero-copy fast lane for hot message kinds,
	// gob fallback for the long tail) or "gob" (the legacy stream codec).
	WireCodec string
	// VerifyWorkers sizes each replica's inbound verify pipeline: inbound
	// signatures and QCs are pre-verified off the event-loop goroutine,
	// warming the registry's verified-fact cache. 0 means the pool default
	// (verifier.DefaultWorkers); negative disables both the pipeline and
	// the cache, keeping every signature check inline on the event loop
	// (the pre-fast-lane behavior, used as the livebench baseline).
	VerifyWorkers int
	// Logf observes harness events; nil is silent.
	Logf func(format string, args ...any)
	// OnTrace, if non-nil, observes every protocol trace with the replica
	// that reported it — the live counterpart of watching a simulator
	// run's metrics stream, invaluable when debugging a live wedge.
	OnTrace func(id types.ServerID, tr consensus.Trace)
}

func (c Config) withDefaults() Config {
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	if c.Slack == 0 {
		c.Slack = 1.5
	}
	if c.StallMargin == 0 {
		c.StallMargin = 500 * time.Millisecond
	}
	if c.PuzzleBitsPerRP == 0 {
		c.PuzzleBitsPerRP = 2
	}
	if c.HealthTimeout == 0 {
		c.HealthTimeout = 10 * time.Second
	}
	if c.WireCodec == "" {
		c.WireCodec = "binary"
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Builder adapts New to the signature scenario.RunWith expects, so driving
// a scenario live is one line:
//
//	rep := s.RunWith(liveharness.Builder(liveharness.Config{}))
func Builder(cfg Config) func(harness.Options) (scenario.Environment, error) {
	return func(o harness.Options) (scenario.Environment, error) { return New(o, cfg) }
}

// server is one live replica slot: a fixed address whose transport and
// runtime are replaced across crash/recover cycles while the replica (and
// its ledger) persists.
type server struct {
	env  *Env
	id   types.ServerID
	addr string

	node    *core.Node
	replica consensus.Replica // possibly fault-wrapped
	wrapper *faults.Wrapper   // nil for unwrapped servers

	// reg persists across crash/recover cycles (like the replica), so
	// counters survive respawns; adm serves it over HTTP for the whole run.
	reg *metrics.Registry
	adm *metrics.AdminServer

	mu      sync.Mutex
	tr      *transport.Transport
	lf      *transport.LinkFaults
	rt      *runtime.Runtime
	pool    *verifier.Pool // verify pipeline of the current runtime, nil when disabled
	running bool
}

// health is the slot's /healthz document: runtime loop liveness plus peer
// connectivity, red while the slot is crashed.
func (s *server) health() metrics.Health {
	s.mu.Lock()
	rt, tr, running := s.rt, s.tr, s.running
	s.mu.Unlock()
	h := metrics.Health{Ok: true, Detail: map[string]string{}}
	if !running || rt == nil {
		h.Ok = false
		h.Detail["loop"] = "not running"
		return h
	}
	_, _, age, ok := rt.HealthSnapshot()
	switch {
	case !ok:
		h.Ok = false
		h.Detail["loop"] = "no liveness sample yet"
	case age > 4*time.Second:
		h.Ok = false
		h.Detail["loop"] = "stalled"
	}
	if tr != nil {
		if dead := tr.Unreachable(); len(dead) > 0 {
			h.Ok = false
			h.Detail["peers"] = fmt.Sprintf("%d unreachable", len(dead))
		}
	}
	return h
}

// deliver routes an inbound envelope to whichever runtime currently hosts
// the replica (crashed slots drop traffic, like a dead process).
func (s *server) deliver(env *transport.Envelope) {
	s.mu.Lock()
	rt, running := s.rt, s.running
	s.mu.Unlock()
	if running && rt != nil {
		rt.Deliver(env)
	}
}

// liveClient hosts one closed-loop workload client over its own transport.
// The client state machine is single-threaded by construction (it runs
// under mu for notifications, timers, and lifecycle alike).
type liveClient struct {
	env  *Env
	id   types.ClientID
	tr   *transport.Transport
	addr string

	mu sync.Mutex
	cl *client.Client
}

// scheduledEvent is one timeline entry awaiting its wall-clock deadline.
type scheduledEvent struct {
	at time.Duration
	fn func()
}

// Env implements scenario.Environment over a live loopback-TCP cluster.
type Env struct {
	opts harness.Options
	cfg  Config
	reg  *crypto.Registry
	wire transport.WireCodec

	servers []*server
	clients []*liveClient
	peerMap map[types.ServerID]string
	met     *collector

	events []scheduledEvent
	stop   chan struct{}
	wg     sync.WaitGroup

	start time.Time

	mu        sync.Mutex
	started   bool
	closed    bool
	crashed   map[types.ServerID]bool
	group     map[types.ServerID]int // nil = no partition
	degrading bool
	degExtra  time.Duration
	degJitter time.Duration
	degDrop   float64
	retired   transport.Stats // counters of transports torn down mid-run
}

var _ scenario.Environment = (*Env)(nil)

// New builds a live cluster for the given (scenario-shaped) options. The
// deployment registry derives from the same seed formula the simulator
// uses, so both worlds run identical keys for identical specs. Servers
// listen immediately but nothing runs until Start.
func New(o harness.Options, cfg Config) (*Env, error) {
	o = o.WithDefaults()
	cfg = cfg.withDefaults()
	if o.Protocol != harness.PrestigeBFT {
		return nil, fmt.Errorf("live harness hosts PrestigeBFT replicas only (got %q)", o.Protocol)
	}
	if o.TimeoutAttack {
		return nil, fmt.Errorf("live harness does not support the F1 timeout attack (victim RNG mirroring is a simulator construction)")
	}
	for id, spec := range o.Faults {
		if spec.RepeatedVC {
			return nil, fmt.Errorf("live harness does not support F4 (repeated view-change) on server %d yet", id)
		}
	}

	var wire transport.WireCodec
	switch cfg.WireCodec {
	case "binary":
		wire = transport.CodecBinary
	case "gob":
		wire = transport.CodecGob
	default:
		return nil, fmt.Errorf("unknown wire codec %q (want binary or gob)", cfg.WireCodec)
	}

	reg, serverKeys, clientKeys := crypto.GenerateDeployment(uint64(o.Seed)+0x5eed, o.N, o.Clients)
	// A real deployment verifies what it receives, whatever the
	// simulation profile chose for speed.
	reg.VerifySignatures = true
	if cfg.VerifyWorkers >= 0 {
		// The registry is shared by every in-process replica, so the
		// verified-fact cache dedupes across the whole cluster: a QC checked
		// by one replica is a cache hit for the other three.
		reg.EnableVerifiedCache(0)
	}

	e := &Env{
		opts:    o,
		cfg:     cfg,
		reg:     reg,
		wire:    wire,
		peerMap: make(map[types.ServerID]string, o.N),
		stop:    make(chan struct{}),
		crashed: make(map[types.ServerID]bool),
	}
	e.met = newCollector(e)

	// Bind every server listener first so the peer map is complete before
	// any replica exists.
	for i := 1; i <= o.N; i++ {
		id := types.ServerID(i)
		s := &server{env: e, id: id}
		tr := transport.NewServerTransport(id)
		tr.SetWireCodec(wire)
		lf := e.newLinkFaults(int64(i))
		tr.SetFaults(lf)
		if err := tr.Listen("127.0.0.1:0", s.deliver); err != nil {
			e.Close()
			return nil, fmt.Errorf("listen server %d: %w", id, err)
		}
		s.tr, s.lf, s.addr = tr, lf, tr.Addr()
		// The admin surface outlives crash/recover cycles, like a sidecar
		// scraper would: its registry is the replica's durable counters.
		s.reg = metrics.NewRegistry()
		metrics.RegisterProcessMetrics(s.reg)
		adm, err := metrics.ServeAdmin("127.0.0.1:0", s.reg, s.health)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("admin server %d: %w", id, err)
		}
		s.adm = adm
		e.peerMap[id] = s.addr
		e.servers = append(e.servers, s)
	}

	// Replicas, mirroring harness.NewCluster's wiring.
	for _, s := range e.servers {
		id := s.id
		nodeCfg := core.Config{
			ID:                 id,
			N:                  o.N,
			Keys:               serverKeys[id],
			Registry:           reg,
			BatchSize:          o.BatchSize,
			PipelineDepth:      o.PipelineDepth,
			CheckpointInterval: o.CheckpointInterval,
			TimeoutMin:         o.TimeoutMin,
			TimeoutMax:         o.TimeoutMax,
			ViewPolicy:         o.ViewPolicy,
			RefreshThreshold:   o.RefreshThreshold,
			PuzzleBitsPerRP:    cfg.PuzzleBitsPerRP,
			RNG:                rand.New(rand.NewSource(o.Seed<<16 + int64(id))),
		}
		if o.StateMachine != nil {
			nodeCfg.StateMachine = o.StateMachine()
		}
		if o.Engine != nil {
			nodeCfg.Engine = o.Engine()
		}
		s.node = core.New(nodeCfg)
		s.replica = s.node
		spec := o.Faults[id]
		wrap := spec.IsFaulty()
		for _, w := range o.WrapServers {
			if w == id {
				wrap = true
			}
		}
		if wrap {
			s.wrapper = faults.Wrap(s.replica, s.node, spec)
			s.replica = s.wrapper
		}
	}

	// Clients, each on its own transport (the live counterpart of the
	// simulator's client plane).
	for i := 1; i <= o.Clients; i++ {
		cid := types.ClientID(i)
		lc := &liveClient{env: e, id: cid}
		tr := transport.NewClientTransport(cid)
		tr.SetWireCodec(wire)
		clf := e.newLinkFaults(int64(1000 + i))
		tr.SetFaults(clf)
		if err := tr.Listen("127.0.0.1:0", lc.deliver); err != nil {
			e.Close()
			return nil, fmt.Errorf("listen client %d: %w", cid, err)
		}
		lc.tr, lc.addr = tr, tr.Addr()
		var payload func(int) []byte
		if o.ClientPayload != nil {
			payload = func(seq int) []byte { return o.ClientPayload(cid, seq) }
		}
		lc.cl = client.New(client.Config{
			ID:          cid,
			Keys:        clientKeys[cid],
			Registry:    reg,
			N:           o.N,
			Payload:     payload,
			PayloadSize: o.PayloadSize,
			Timeout:     o.ClientTimeout,
			ThinkTime:   o.ClientThinkTime,
			MaxRequests: o.MaxRequestsPerClient,
		}, lc)
		e.clients = append(e.clients, lc)
	}
	return e, nil
}

// newLinkFaults builds a fault layer carrying the deployment's base fabric
// profile: the scenario's sim.NetworkConfig latency model is sampled per
// message, so a WAN-profiled scenario gets real ~40ms loopback links.
func (e *Env) newLinkFaults(streamID int64) *transport.LinkFaults {
	lf := transport.NewLinkFaults(e.opts.Seed<<10 + streamID)
	model := e.opts.Net.Latency
	lf.SetBase(func(rng *rand.Rand) time.Duration {
		return time.Duration(float64(model.Sample(rng)) * e.cfg.TimeScale)
	}, e.opts.Net.DropRate)
	return lf
}

// --- scenario.Environment: lifecycle ------------------------------------------

// N returns the number of servers.
func (e *Env) N() int { return e.opts.N }

// scale maps scenario time to wall clock.
func (e *Env) scale(d time.Duration) time.Duration {
	return time.Duration(float64(d) * e.cfg.TimeScale)
}

// scenarioNow returns the current scenario-time offset.
func (e *Env) scenarioNow() time.Duration {
	return time.Duration(float64(time.Since(e.start)) / e.cfg.TimeScale)
}

// Schedule registers fn for the absolute scenario-time offset at. Must be
// called before Start; events are applied in registration order by a
// single injection goroutine, like the simulator's scheduler.
func (e *Env) Schedule(at time.Duration, fn func()) {
	e.events = append(e.events, scheduledEvent{at: at, fn: fn})
}

// Start boots all runtimes, launches the client workload, and starts the
// event-injection goroutine.
func (e *Env) Start() {
	e.mu.Lock()
	if e.started || e.closed {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.start = time.Now()
	e.mu.Unlock()

	for _, s := range e.servers {
		e.spawnRuntime(s)
	}
	for _, lc := range e.clients {
		lc.mu.Lock()
		lc.cl.Start()
		lc.mu.Unlock()
	}

	events := e.events
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		timer := time.NewTimer(0)
		defer timer.Stop()
		if !timer.Stop() {
			<-timer.C
		}
		for _, ev := range events {
			wait := time.Until(e.start.Add(e.scale(ev.at)))
			if wait > 0 {
				timer.Reset(wait)
				select {
				case <-e.stop:
					return
				case <-timer.C:
				}
			}
			select {
			case <-e.stop:
				return
			default:
			}
			ev.fn()
		}
	}()
}

// RunUntil blocks until scenario time reaches at.
func (e *Env) RunUntil(at time.Duration) {
	wait := time.Until(e.start.Add(e.scale(at)))
	if wait > 0 {
		select {
		case <-e.stop:
		case <-time.After(wait):
		}
	}
}

// Close stops the injection goroutine, the clients, every runtime, and
// every transport. Idempotent. After Close the replicas' ledgers are
// quiescent, so the observation methods read them race-free.
func (e *Env) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()

	close(e.stop)
	e.wg.Wait()

	for _, lc := range e.clients {
		lc.mu.Lock()
		lc.cl.Stop()
		lc.mu.Unlock()
	}
	for _, s := range e.servers {
		e.stopServer(s)
	}
	for _, lc := range e.clients {
		e.retire(lc.tr)
	}
	for _, s := range e.servers {
		if s.adm != nil {
			s.adm.Close()
		}
	}
}

// spawnRuntime creates and launches a fresh runtime over s's replica. The
// transport and fault layer must already be installed on s.
func (e *Env) spawnRuntime(s *server) {
	s.mu.Lock()
	tr := s.tr
	s.mu.Unlock()
	// Each runtime gets its own verify pipeline (sized by cfg); the pool is
	// closed in stopServer after the event loop exits, so a crash/recover
	// cycle replaces it along with the runtime. The pipelines all warm the
	// one shared registry cache.
	var pool *verifier.Pool
	if e.cfg.VerifyWorkers >= 0 {
		pool = verifier.New(verifier.Config{Registry: e.reg, Workers: e.cfg.VerifyWorkers})
		runtime.RegisterVerifierMetrics(s.reg, pool, e.reg)
	}
	rt := runtime.New(runtime.Config{
		Replica:         s.replica,
		Peers:           e.peerMap,
		Transport:       tr,
		Verifier:        pool,
		PuzzleBitsPerRP: e.cfg.PuzzleBitsPerRP,
		Metrics:         s.reg,
		OnCommit:        e.met.onCommit,
		OnTrace: func(tr consensus.Trace) {
			e.met.onTrace(tr)
			if e.cfg.OnTrace != nil {
				e.cfg.OnTrace(s.id, tr)
			}
		},
		Logf: func(string, ...any) {}, // loss is expected chaos
		Seed: e.opts.Seed<<8 + int64(s.id),
		// The replica's clock must survive crash/respawn cycles: all
		// runtimes (including re-spawned ones) share the env's epoch.
		Epoch: e.start,
	})
	for _, lc := range e.clients {
		rt.RegisterClient(lc.id, lc.addr)
	}
	s.mu.Lock()
	s.rt = rt
	s.pool = pool
	s.running = true
	s.mu.Unlock()
	go rt.Run()
}

// stopServer halts s's runtime (waiting for its event loop to exit, so no
// goroutine touches the replica afterwards) and tears down its transport.
func (e *Env) stopServer(s *server) {
	s.mu.Lock()
	rt, tr, pool, running := s.rt, s.tr, s.pool, s.running
	s.running = false
	s.rt = nil
	s.pool = nil
	s.mu.Unlock()
	if rt != nil && running {
		rt.Stop()
		rt.Wait()
	}
	if pool != nil {
		// After Stop+Wait the runtime discards deliveries, so draining the
		// pool cannot block on a full event queue.
		pool.Close()
	}
	if tr != nil {
		e.retire(tr)
		s.mu.Lock()
		if s.tr == tr {
			s.tr = nil
		}
		s.mu.Unlock()
	}
}

// retire closes a transport and folds its traffic counters into the
// accumulated totals so Progress survives transport churn.
func (e *Env) retire(tr *transport.Transport) {
	st := tr.Stats()
	tr.Close()
	e.mu.Lock()
	e.retired.Sent += st.Sent
	e.retired.Delivered += st.Delivered
	e.retired.Dropped += st.Dropped
	e.retired.Bytes += st.Bytes
	e.mu.Unlock()
}

// --- scenario.Environment: injection ------------------------------------------

// Crash stops a server's runtime and closes its transport: its listener
// dies, peers' cached connections fail and back off, and its timers stop —
// real fail-stop semantics.
func (e *Env) Crash(id types.ServerID) {
	e.mu.Lock()
	e.crashed[id] = true
	e.mu.Unlock()
	e.stopServer(e.servers[id-1])
	e.cfg.Logf("live: crashed S%d", id)
}

// Recover re-spawns a crashed server on its original address: a fresh
// transport (with the current fabric faults re-applied) and a fresh
// runtime over the replica that kept its ledger across the outage.
func (e *Env) Recover(id types.ServerID) {
	s := e.servers[id-1]
	e.mu.Lock()
	delete(e.crashed, id)
	e.mu.Unlock()

	// The old listener closed moments ago; rebinding the same port can
	// briefly race the kernel. Retry with a small pause, bounded.
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		select {
		case <-e.stop:
			return
		default:
		}
		tr := transport.NewServerTransport(id)
		tr.SetWireCodec(e.wire)
		lf := e.newLinkFaults(int64(id))
		tr.SetFaults(lf)
		if err := tr.Listen(s.addr, s.deliver); err != nil {
			lastErr = err
			tr.Close()
			time.Sleep(20 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		s.tr, s.lf = tr, lf
		s.mu.Unlock()
		e.applyFabric()
		e.spawnRuntime(s)
		e.cfg.Logf("live: recovered S%d on %s", id, s.addr)
		return
	}
	e.cfg.Logf("live: recover S%d failed: %v", id, lastErr)
}

// Partition installs group-based link blocks; unlisted servers form the
// implicit remainder group. Clients keep reaching every server.
func (e *Env) Partition(groups [][]types.ServerID) {
	e.mu.Lock()
	e.group = make(map[types.ServerID]int)
	for gi, g := range groups {
		for _, id := range g {
			e.group[id] = gi + 1
		}
	}
	e.mu.Unlock()
	e.applyFabric()
	e.cfg.Logf("live: partitioned %v", groups)
}

// Heal removes the current partition. Crashed servers stay crashed.
func (e *Env) Heal() {
	e.mu.Lock()
	e.group = nil
	e.mu.Unlock()
	e.applyFabric()
	e.cfg.Logf("live: healed")
}

// SetFault swaps a wrapped server's Byzantine behavior at runtime.
func (e *Env) SetFault(id types.ServerID, spec faults.Spec) {
	if w := e.servers[id-1].wrapper; w != nil {
		w.SetSpec(spec)
		e.cfg.Logf("live: S%d now %s", id, spec)
	}
}

// Degrade makes every link slow and lossy (gray failure), layered on the
// base fabric profile of all transports — servers and clients alike,
// matching the simulator's whole-fabric semantics.
func (e *Env) Degrade(extra, jitter time.Duration, drop float64) {
	e.mu.Lock()
	e.degrading = true
	e.degExtra, e.degJitter, e.degDrop = extra, jitter, drop
	e.mu.Unlock()
	e.applyFabric()
	e.cfg.Logf("live: degraded +%v±%v drop=%.0f%%", extra, jitter, drop*100)
}

// Restore undoes Degrade.
func (e *Env) Restore() {
	e.mu.Lock()
	e.degrading = false
	e.degExtra, e.degJitter, e.degDrop = 0, 0, 0
	e.mu.Unlock()
	e.applyFabric()
	e.cfg.Logf("live: restored")
}

// applyFabric recomputes every transport's fault state from the declared
// partition and degrade state (the same recompute-from-scratch discipline
// as the simulator's cut set, so overlapping faults compose).
func (e *Env) applyFabric() {
	e.mu.Lock()
	group := e.group
	degrading, extra, jitter, drop := e.degrading, e.degExtra, e.degJitter, e.degDrop
	e.mu.Unlock()

	apply := func(lf *transport.LinkFaults) {
		if lf == nil {
			return
		}
		if degrading {
			lf.Degrade(e.scale(extra), e.scale(jitter), drop)
		} else {
			lf.Restore()
		}
	}
	for _, s := range e.servers {
		s.mu.Lock()
		lf := s.lf
		s.mu.Unlock()
		apply(lf)
		if lf == nil {
			continue
		}
		for _, peer := range e.servers {
			if peer.id == s.id {
				continue
			}
			cut := group != nil && group[s.id] != group[peer.id]
			lf.SetBlocked(peer.addr, cut)
		}
	}
	for _, lc := range e.clients {
		apply(lc.tr.Faults())
	}
}

// --- scenario.Environment: observation ----------------------------------------

// Progress aggregates protocol counters and fabric traffic.
func (e *Env) Progress() scenario.Progress {
	pr := e.met.progress()
	e.mu.Lock()
	st := e.retired
	e.mu.Unlock()
	for _, s := range e.servers {
		s.mu.Lock()
		tr := s.tr
		s.mu.Unlock()
		if tr != nil {
			ts := tr.Stats()
			st.Sent += ts.Sent
			st.Bytes += ts.Bytes
		}
	}
	for _, lc := range e.clients {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if !closed {
			ts := lc.tr.Stats()
			st.Sent += ts.Sent
			st.Bytes += ts.Bytes
		}
	}
	pr.Msgs = st.Sent
	pr.Bytes = st.Bytes
	return pr
}

// TPS returns committed transactions per second over [from, to) of
// scenario time.
func (e *Env) TPS(from, to time.Duration) float64 { return e.met.tps(from, to) }

// CollectStats folds client latencies into the metrics aggregates.
func (e *Env) CollectStats() {
	e.met.resetLatencies()
	for _, lc := range e.clients {
		lc.mu.Lock()
		lats := append([]time.Duration(nil), lc.cl.Stats.Latencies...)
		lc.mu.Unlock()
		e.met.addLatencies(lats)
	}
}

// LatencyPercentile returns the p-th percentile client latency.
func (e *Env) LatencyPercentile(p float64) time.Duration { return e.met.latencyPercentile(p) }

// ChainHeight reads a replica's committed chain height. Only safe for
// concurrent use after Close (or for crashed servers); the scenario engine
// honors that lifecycle.
func (e *Env) ChainHeight(id types.ServerID) (types.SeqNum, bool) {
	return e.servers[id-1].node.Store().TxHeight(), true
}

// BlockHash reads the committed block hash at seq — the byte-for-byte
// committed-prefix comparison point across live ledgers. ok is false for
// blocks compacted below the server's certified log base.
func (e *Env) BlockHash(id types.ServerID, seq types.SeqNum) (types.Digest, bool) {
	blk := e.servers[id-1].node.Store().TxBlock(seq)
	if blk == nil {
		return types.Digest{}, false
	}
	return blk.Hash(), true
}

// LedgerBlocks reads how many txBlocks the server retains — the quantity
// checkpoint compaction bounds.
func (e *Env) LedgerBlocks(id types.ServerID) (int, bool) {
	return e.servers[id-1].node.Store().RetainedTxBlocks(), true
}

// Timing reports the live tolerances: liveness slack and stall margin.
// StallMargin forgives wall-clock in-flight traffic, but the scenario
// engine applies it in scenario time, so it is descaled by TimeScale.
func (e *Env) Timing() (float64, time.Duration) {
	return e.cfg.Slack, time.Duration(float64(e.cfg.StallMargin) / e.cfg.TimeScale)
}

// --- client plumbing ----------------------------------------------------------

// deliver handles inbound envelopes on the client's transport.
func (lc *liveClient) deliver(env *transport.Envelope) {
	notif, ok := env.Msg.(*types.Notif)
	if !ok || env.FromServer == 0 {
		return
	}
	lc.mu.Lock()
	lc.cl.OnNotif(env.FromServer, notif)
	lc.mu.Unlock()
}

// Now implements client.Env in scenario time, so live latency aggregates
// are directly comparable to simulated ones.
func (lc *liveClient) Now() time.Duration { return lc.env.scenarioNow() }

// Broadcast implements client.Env: send to every server address. Sends to
// crashed servers fail against the dead listener and back off, exactly
// like a real client hammering a dead endpoint.
func (lc *liveClient) Broadcast(msg types.Message) {
	for _, s := range lc.env.servers {
		// Send errors are part of the model here: a crashed server's dead
		// listener refuses the dial and the client backs off, like any real
		// client hammering a dead endpoint.
		_ = lc.tr.Send(s.addr, msg)
	}
}

// SetTimer implements client.Env on wall-clock timers (scaled). The
// callback re-enters the client under its lock; cancellation is checked
// under the same lock so a canceled timer can never fire late.
func (lc *liveClient) SetTimer(d time.Duration, fn func()) func() {
	canceled := false
	tm := time.AfterFunc(lc.env.scale(d), func() {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		if canceled {
			return
		}
		lc.env.mu.Lock()
		closed := lc.env.closed
		lc.env.mu.Unlock()
		if closed {
			return
		}
		fn()
	})
	return func() {
		canceled = true
		tm.Stop()
	}
}
