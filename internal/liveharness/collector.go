package liveharness

import (
	"sort"
	"sync"
	"time"

	"prestigebft/internal/consensus"
	"prestigebft/internal/scenario"
	"prestigebft/internal/types"
)

// commitEvent is one committed block, stamped in scenario time and
// deduplicated across servers (the first replica to commit seq wins),
// mirroring harness.Metrics.OnCommit.
type commitEvent struct {
	at  time.Duration
	txs int
}

// collector aggregates everything observable from a live run. Unlike the
// simulator's collector it is written to concurrently by every runtime's
// event loop, so all state sits behind a mutex.
type collector struct {
	env *Env

	mu        sync.Mutex
	blockSeen map[types.SeqNum]bool
	commits   []commitEvent
	totalTxs  int

	viewChanges int
	elections   int
	syncUps     int
	checkpoints int
	snapshots   int

	latencies []time.Duration
}

func newCollector(e *Env) *collector {
	return &collector{env: e, blockSeen: make(map[types.SeqNum]bool)}
}

// onCommit records a committed block once, whichever replica reports first.
func (m *collector) onCommit(blk *types.TxBlock) {
	at := m.env.scenarioNow()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.blockSeen[blk.Header.N] {
		return
	}
	m.blockSeen[blk.Header.N] = true
	m.commits = append(m.commits, commitEvent{at: at, txs: len(blk.Txs)})
	m.totalTxs += len(blk.Txs)
}

// onTrace counts the protocol events the scenario invariants consume.
func (m *collector) onTrace(tr consensus.Trace) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch tr.Event {
	case consensus.TraceViewChangeStart:
		m.viewChanges++
	case consensus.TraceElected:
		m.elections++
	case consensus.TraceSyncUp:
		m.syncUps++
	case consensus.TraceCheckpoint:
		m.checkpoints++
	case consensus.TraceSnapshotInstall:
		m.snapshots++
	}
}

// tps returns committed transactions per second over [from, to) of
// scenario time, the same window semantics as harness.Metrics.TPS.
func (m *collector) tps(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	txs := 0
	for _, c := range m.commits {
		if c.at >= from && c.at < to {
			txs += c.txs
		}
	}
	return float64(txs) / (to - from).Seconds()
}

func (m *collector) progress() scenario.Progress {
	m.mu.Lock()
	defer m.mu.Unlock()
	return scenario.Progress{
		Commits:     len(m.commits),
		TotalTxs:    m.totalTxs,
		ViewChanges: m.viewChanges,
		Elections:   m.elections,
		SyncUps:     m.syncUps,
		Checkpoints: m.checkpoints,
		Snapshots:   m.snapshots,
	}
}

func (m *collector) resetLatencies() {
	m.mu.Lock()
	m.latencies = m.latencies[:0]
	m.mu.Unlock()
}

func (m *collector) addLatencies(ls []time.Duration) {
	m.mu.Lock()
	m.latencies = append(m.latencies, ls...)
	m.mu.Unlock()
}

// latencyPercentile matches harness.Metrics.LatencyPercentile.
func (m *collector) latencyPercentile(p float64) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latencies) == 0 {
		return 0
	}
	ls := append([]time.Duration(nil), m.latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	idx := int(p / 100 * float64(len(ls)-1))
	return ls[idx]
}
