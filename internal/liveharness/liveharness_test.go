package liveharness_test

import (
	"strings"
	"testing"
	"time"

	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/liveharness"
	"prestigebft/internal/scenario"
	"prestigebft/internal/types"
)

// shape is the shared small live cluster: few clients, small batches, a
// fast complaint timeout so failure detection fits short test spans.
func shape(n int, seed int64) harness.Options {
	return harness.Options{
		N: n, Clients: 4, BatchSize: 4, Seed: seed,
		ClientTimeout: 500 * time.Millisecond,
	}
}

func runLive(t *testing.T, s *scenario.Scenario) *scenario.Report {
	t.Helper()
	rep := s.RunWith(liveharness.Builder(liveharness.Config{}))
	t.Log(rep)
	return rep
}

// TestLiveSteadyState: a fault-free scenario against real TCP replicas
// commits during warmup, reports client latencies, and ends with every
// replica's committed prefix byte-identical (the safety invariant the
// engine checks through the Environment seam).
func TestLiveSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster; skipped with -short")
	}
	rep := runLive(t, &scenario.Scenario{
		Name:   "live-steady",
		Opts:   shape(4, 31),
		Warmup: 1 * time.Second,
		Span:   3 * time.Second,
	})
	if !rep.OK() {
		t.Fatalf("steady live run violated invariants: %v", rep.Violations)
	}
	if rep.SteadyTPS <= 0 || rep.Commits == 0 {
		t.Fatalf("no live throughput: %+v", rep)
	}
	if rep.P99 <= 0 {
		t.Fatalf("no client latencies collected: %+v", rep)
	}
}

// TestLiveCrashRecoverElects: the live harness implements Crash by killing
// the leader's runtime and transport; clients complain, a follower must win
// a real proof-of-work election, and the crashed leader must rejoin from
// its retained ledger after Recover with throughput restored.
func TestLiveCrashRecoverElects(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster with crash/recover; skipped with -short")
	}
	if raceEnabled {
		t.Skip("timing-bound liveness deadlines are meaningless under race instrumentation; TestLiveChurnSafety covers this path")
	}
	rep := runLive(t, &scenario.Scenario{
		Name:   "live-leader-crash",
		Opts:   shape(4, 32),
		Warmup: 1 * time.Second,
		Span:   10 * time.Second,
		Events: []scenario.Event{
			{At: 1 * time.Second, Action: scenario.Crash{Server: 1}},
			{At: 5 * time.Second, Action: scenario.Recover{Server: 1}},
		},
		Invariants: scenario.Invariants{
			RecoverWithin:     4 * time.Second,
			RequireViewChange: true,
		},
	})
	if !rep.OK() {
		t.Fatalf("live crash/recover violated invariants: %v", rep.Violations)
	}
	if rep.Elections == 0 {
		t.Fatal("no election observed after killing the live leader")
	}
}

// TestLivePartitionStalls: a 2|2 partition applied at the transport seam
// must remove the quorum — zero commits inside the stall window — and the
// heal must restore progress without conflicting commits.
func TestLivePartitionStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster with partition; skipped with -short")
	}
	if raceEnabled {
		t.Skip("timing-bound liveness deadlines are meaningless under race instrumentation; TestLiveChurnSafety covers this path")
	}
	rep := runLive(t, &scenario.Scenario{
		Name:   "live-majority-partition",
		Opts:   shape(4, 33),
		Warmup: 1 * time.Second,
		Span:   12 * time.Second,
		Events: []scenario.Event{
			{At: 1 * time.Second, Action: scenario.Partition{Groups: [][]types.ServerID{{1, 2}}}},
			{At: 5 * time.Second, Action: scenario.Heal{}},
		},
		Invariants: scenario.Invariants{
			RecoverWithin: 6 * time.Second,
			StallFrom:     1500 * time.Millisecond,
			StallTo:       5 * time.Second,
		},
	})
	if !rep.OK() {
		t.Fatalf("live partition scenario violated invariants: %v", rep.Violations)
	}
}

// TestLiveRejectsUnsupportedShapes: simulator-only constructions surface as
// clear environment errors (reported as violations), not silent no-ops.
func TestLiveRejectsUnsupportedShapes(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*harness.Options)
		want string
	}{
		{"baseline protocol", func(o *harness.Options) { o.Protocol = harness.HotStuff }, "PrestigeBFT replicas only"},
		{"timeout attack", func(o *harness.Options) { o.TimeoutAttack = true }, "F1"},
		{"repeated VC", func(o *harness.Options) {
			o.Faults = map[types.ServerID]faults.Spec{2: {RepeatedVC: true}}
		}, "F4"},
	}
	for _, tc := range cases {
		o := shape(4, 34)
		tc.mut(&o)
		if _, err := liveharness.New(o, liveharness.Config{}); err == nil {
			t.Errorf("%s: New accepted an unsupported shape", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		s := &scenario.Scenario{Name: "x", Opts: o, Span: 3 * time.Second, Warmup: time.Second}
		rep := s.RunWith(liveharness.Builder(liveharness.Config{}))
		if rep.OK() || !strings.Contains(rep.Violations[0], "environment:") {
			t.Errorf("%s: RunWith produced %v, want an environment violation", tc.name, rep.Violations)
		}
	}
}

// TestLiveBuiltinScenarioSmoke: one real built-in from the shared library
// end to end in live mode — the same spec CI's live-smoke job replays.
func TestLiveBuiltinScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full 20s built-in scenario live; skipped with -short")
	}
	if raceEnabled {
		t.Skip("timing-bound liveness deadlines are meaningless under race instrumentation; TestLiveChurnSafety covers this path")
	}
	s, ok := scenario.Get("leader-crash-midview")
	if !ok {
		t.Fatal("builtin leader-crash-midview missing")
	}
	rep := runLive(t, s)
	if !rep.OK() {
		t.Fatalf("built-in %s failed live: %v", s.Name, rep.Violations)
	}
	if rep.Elections == 0 {
		t.Fatal("live leader-crash-midview completed without an election")
	}
}

// TestLiveChurnSafety runs the full churn repertoire — crash, recover,
// partition, heal, degrade, restore, dynamic fault swap — with no timing
// invariants, asserting only what must hold at any speed: the committed
// prefixes stay byte-identical. It runs under the race detector too, so
// the stop/respawn and fabric-swap concurrency is race-checked even when
// the timing-strict tests are skipped.
func TestLiveChurnSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster; skipped with -short")
	}
	o := shape(4, 35)
	o.WrapServers = []types.ServerID{3}
	rep := runLive(t, &scenario.Scenario{
		Name:   "live-churn-safety",
		Opts:   o,
		Warmup: 1 * time.Second,
		Span:   9 * time.Second,
		Events: []scenario.Event{
			{At: 1 * time.Second, Action: scenario.Crash{Server: 2}},
			{At: 2 * time.Second, Action: scenario.Degrade{Extra: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, DropRate: 0.05}},
			{At: 3 * time.Second, Action: scenario.Recover{Server: 2}},
			{At: 4 * time.Second, Action: scenario.SetFault{Server: 3, Spec: faults.Spec{Mode: faults.Quiet}}},
			{At: 5 * time.Second, Action: scenario.Partition{Groups: [][]types.ServerID{{4}}}},
			{At: 6 * time.Second, Action: scenario.Heal{}},
			{At: 6500 * time.Millisecond, Action: scenario.SetFault{Server: 3, Spec: faults.Spec{}}},
			{At: 7 * time.Second, Action: scenario.Restore{}},
		},
	})
	for _, v := range rep.Violations {
		if strings.Contains(v, "safety:") {
			t.Fatalf("live churn broke the committed-prefix invariant: %v", rep.Violations)
		}
	}
	if rep.SteadyTPS <= 0 {
		t.Fatalf("no steady-state throughput before churn: %+v", rep)
	}
}
