//go:build race

package liveharness_test

// raceEnabled reports that the race detector instruments this build. The
// live tests use it to skip timing-bound invariant assertions: with crypto
// and scheduling slowed several-fold, liveness deadlines measure the
// instrumentation, not the protocol. Safety-only churn coverage
// (TestLiveChurnSafety) still runs so the crash/respawn concurrency is
// race-checked.
const raceEnabled = true
