package liveharness

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"prestigebft/internal/metrics"
	"prestigebft/internal/types"
)

// scrapeClient bounds each admin-endpoint request; loopback admin servers
// answer in microseconds, so a second of headroom is generous.
var scrapeClient = &http.Client{Timeout: 2 * time.Second}

// ScrapeAll fetches /metrics from every live replica's admin endpoint over
// real HTTP — the same bytes a Prometheus server would ingest — and parses
// each into a Snapshot. Crashed slots are skipped (a dead process exposes
// nothing); a scrape error also drops the slot rather than failing the map,
// matching how a scraper treats a flapping target.
func (e *Env) ScrapeAll() map[types.ServerID]metrics.Snapshot {
	out := make(map[types.ServerID]metrics.Snapshot)
	for _, s := range e.servers {
		e.mu.Lock()
		crashed := e.crashed[s.id]
		e.mu.Unlock()
		if crashed || s.adm == nil {
			continue
		}
		snap, err := scrapeOne(s.adm.Addr())
		if err != nil {
			e.cfg.Logf("live: scrape S%d: %v", s.id, err)
			continue
		}
		out[s.id] = snap
	}
	return out
}

// scrapeOne performs one /metrics round trip.
func scrapeOne(addr string) (metrics.Snapshot, error) {
	resp, err := scrapeClient.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %d", addr, resp.StatusCode)
	}
	return metrics.Parse(body)
}

// AdminAddr returns a replica's admin endpoint ("host:port"), for callers
// that want to hit /metrics or /healthz directly.
func (e *Env) AdminAddr(id types.ServerID) string {
	s := e.servers[id-1]
	if s.adm == nil {
		return ""
	}
	return s.adm.Addr()
}

// WaitHealthy polls every non-crashed replica's /healthz until all answer
// 200 or Config.HealthTimeout elapses, returning an error naming the
// stragglers. The scenario engine calls this between Start and the first
// injection so chaos only ever lands on a provably healthy cluster.
func (e *Env) WaitHealthy() error {
	deadline := time.Now().Add(e.cfg.HealthTimeout)
	for {
		red := e.unhealthy()
		if len(red) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("healthz still red after %v on: %s", e.cfg.HealthTimeout, strings.Join(red, "; "))
		}
		select {
		case <-e.stop:
			return fmt.Errorf("environment closed while waiting for healthz")
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// unhealthy returns a description per replica whose /healthz is not green,
// sorted by server ID.
func (e *Env) unhealthy() []string {
	var red []string
	for _, s := range e.servers {
		e.mu.Lock()
		crashed := e.crashed[s.id]
		e.mu.Unlock()
		if crashed || s.adm == nil {
			continue
		}
		resp, err := scrapeClient.Get("http://" + s.adm.Addr() + "/healthz")
		if err != nil {
			red = append(red, fmt.Sprintf("S%d: %v", s.id, err))
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			red = append(red, fmt.Sprintf("S%d: %s", s.id, strings.TrimSpace(string(body))))
		}
	}
	sort.Strings(red)
	return red
}
