//go:build !race

package liveharness_test

// raceEnabled mirrors race_on_test.go for uninstrumented builds.
const raceEnabled = false
