// Command bench_compare diffs a freshly generated bench-trajectory document
// (prestige-bench -ci) against the last committed BENCH_*.json baseline and
// fails on throughput regressions.
//
//	go run ./scripts -baseline-glob 'BENCH_PR*.json' -new bench-ci.json
//	go run ./scripts -new bench-ci-w8.json -expect-identical bench-ci-w1.json
//
// Gating rules:
//   - -expect-identical compares -new byte-for-byte against another
//     generated document (the 1-worker run of the same trajectory) and
//     fails hard on any difference, naming the first diverging data point —
//     the simulation engine's determinism contract, gated rather than
//     delegated to a silent cmp(1);
//   - every throughput metric ("tps", "mean_tps", and scenario "steady_tps")
//     present in both documents must not drop more than -threshold (default
//     10%) below the baseline; post-fault "final_tps" is deliberately not
//     gated — recovery is the scenario invariants' job (the ok flag);
//   - a scenario row whose ok flag flips 1 -> 0 fails (belt and braces: the
//     generating run already exits nonzero on violations);
//   - rows or metrics missing from either side are reported but advisory —
//     experiments evolve between PRs;
//   - no baseline file matching the glob is an error: baselines are
//     committed (BENCH_PR5.json onward), so an empty match means the glob
//     or the checkout is broken and the gate would otherwise silently pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// trailingNumber extracts the last integer run in a file name (-1 if none):
// the PR index in BENCH_PR<k>.json.
func trailingNumber(path string) int {
	ms := regexp.MustCompile(`\d+`).FindAllString(filepath.Base(path), -1)
	if len(ms) == 0 {
		return -1
	}
	n, err := strconv.Atoi(ms[len(ms)-1])
	if err != nil {
		return -1
	}
	return n
}

type row struct {
	Label  string             `json:"label"`
	Values map[string]float64 `json:"values"`
}

type result struct {
	Name string `json:"name"`
	Rows []row  `json:"rows"`
}

type doc struct {
	Scale   string   `json:"scale"`
	Results []result `json:"results"`
}

func load(path string) (*doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// entry is one (result name, row label, metric) data point.
type entry struct {
	Result, Label, Metric string
}

func (e entry) String() string { return e.Result + " / " + e.Label + " / " + e.Metric }

// index flattens a document into entry -> value.
func index(d *doc) map[entry]float64 {
	out := make(map[entry]float64)
	for _, res := range d.Results {
		for _, r := range res.Rows {
			for k, v := range r.Values {
				out[entry{res.Name, r.Label, k}] = v
			}
		}
	}
	return out
}

// gated reports whether a metric participates in the regression gate:
// healthy-cluster throughput ("tps", "mean_tps", scenario "steady_tps") and
// the scenario pass flag. Post-fault "final_tps" stays ungated — recovery
// quality is judged by the scenario invariants behind "ok".
func gated(metric string) bool {
	switch metric {
	case "tps", "mean_tps", "steady_tps", "ok":
		return true
	}
	return false
}

func main() {
	baselineGlob := flag.String("baseline-glob", "BENCH_PR*.json", "glob for committed baseline documents; the match with the highest numeric suffix is used")
	newPath := flag.String("new", "", "freshly generated bench document (required)")
	threshold := flag.Float64("threshold", 0.10, "maximum tolerated fractional throughput drop")
	expectIdentical := flag.String("expect-identical", "", "fail unless -new is byte-identical to this document (the cross-worker determinism gate)")
	flag.Parse()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "bench_compare: -new is required")
		os.Exit(2)
	}
	if *expectIdentical != "" {
		checkIdentical(*newPath, *expectIdentical)
		return
	}
	matches, err := filepath.Glob(*baselineGlob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_compare: bad glob: %v\n", err)
		os.Exit(2)
	}
	// Exclude the file under test when the glob covers it.
	abs := func(p string) string { a, _ := filepath.Abs(p); return a }
	var baselines []string
	for _, m := range matches {
		if abs(m) != abs(*newPath) {
			baselines = append(baselines, m)
		}
	}
	if len(baselines) == 0 {
		fmt.Fprintf(os.Stderr, "bench_compare: no baseline matches %q — baselines are committed, so an empty match means a broken glob or checkout\n", *baselineGlob)
		os.Exit(2)
	}
	// Latest baseline = highest numeric suffix (BENCH_PR10 > BENCH_PR9, which
	// plain lexical order would get wrong), name order as tiebreak.
	sort.Slice(baselines, func(i, j int) bool {
		ni, nj := trailingNumber(baselines[i]), trailingNumber(baselines[j])
		if ni != nj {
			return ni < nj
		}
		return baselines[i] < baselines[j]
	})
	basePath := baselines[len(baselines)-1]

	base, err := load(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_compare: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_compare: %v\n", err)
		os.Exit(2)
	}

	baseIdx, freshIdx := index(base), index(fresh)
	keys := make([]entry, 0, len(baseIdx))
	for k := range baseIdx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	failures, advisories := 0, 0
	for _, k := range keys {
		if !gated(k.Metric) {
			continue
		}
		old := baseIdx[k]
		cur, ok := freshIdx[k]
		if !ok {
			fmt.Printf("ADVISORY %s: present in baseline %s, missing from %s\n", k, basePath, *newPath)
			advisories++
			continue
		}
		switch k.Metric {
		case "ok":
			if old == 1 && cur != 1 {
				fmt.Printf("FAIL %s: scenario regressed from pass to fail\n", k)
				failures++
			}
		default:
			if old > 0 && cur < old*(1-*threshold) {
				fmt.Printf("FAIL %s: %.1f -> %.1f (%.1f%% drop, threshold %.0f%%)\n",
					k, old, cur, (1-cur/old)*100, *threshold*100)
				failures++
			}
		}
	}
	fmt.Printf("bench_compare: %s vs %s — %d failures, %d advisories\n", *newPath, basePath, failures, advisories)
	if failures > 0 {
		os.Exit(1)
	}
}

// checkIdentical enforces the cross-worker determinism gate: the two
// documents must match byte for byte. On divergence it reports the byte
// offset and, when both parse, the first data point whose value differs —
// far more actionable than cmp(1)'s offset alone.
func checkIdentical(newPath, wantPath string) {
	a, err := os.ReadFile(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_compare: %v\n", err)
		os.Exit(2)
	}
	b, err := os.ReadFile(wantPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_compare: %v\n", err)
		os.Exit(2)
	}
	if string(a) == string(b) {
		fmt.Printf("bench_compare: %s and %s are byte-identical (%d bytes)\n", newPath, wantPath, len(a))
		return
	}
	off := 0
	for off < len(a) && off < len(b) && a[off] == b[off] {
		off++
	}
	fmt.Printf("FAIL determinism: %s and %s diverge at byte %d (sizes %d vs %d)\n",
		newPath, wantPath, off, len(a), len(b))
	da, errA := loadBytes(newPath, a)
	db, errB := loadBytes(wantPath, b)
	if errA == nil && errB == nil {
		ia, ib := index(da), index(db)
		keys := make([]entry, 0, len(ia))
		for k := range ia {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		for _, k := range keys {
			if v, ok := ib[k]; !ok || v != ia[k] {
				fmt.Printf("first diverging data point: %s = %v vs %v (present=%v)\n", k, ia[k], v, ok)
				break
			}
		}
	}
	os.Exit(1)
}

// loadBytes parses an already-read document.
func loadBytes(path string, data []byte) (*doc, error) {
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}
