GO ?= go

# The committed bench-trajectory document for this PR sequence. CI's bench
# job regenerates the same document and gates on >10% throughput regressions
# against the last committed BENCH_*.json.
BENCH_OUT ?= BENCH_PR8.json

.PHONY: build test vet lint lint-tool bench bench-json bench-json-all bench-compare scenarios scenarios-live live-smoke fuzz fuzz-live fuzz-codec livebench soak clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The determinism lint tool: the five internal/lint analyzers (maporder,
# walltime, nogoroutine, wiremap, msgswitch) compiled into a vettool.
LINT_TOOL := bin/prestige-lint

# Build the tool and print its absolute path, so callers can run
# `go vet -vettool=$$(make -s lint-tool) ./...` directly.
lint-tool:
	@$(GO) build -o $(LINT_TOOL) ./cmd/prestige-lint
	@echo $(abspath $(LINT_TOOL))

# The full lint gate CI runs: gofmt, standard vet, and the determinism
# suite — over the whole module (./... covers internal/, cmd/, and
# scripts/bench_compare alike).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then echo "gofmt needed on:" $$unformatted; exit 1; fi
	$(GO) vet ./...
	$(GO) build -o $(LINT_TOOL) ./cmd/prestige-lint
	$(GO) vet -vettool=$(abspath $(LINT_TOOL)) ./...

test: vet
	$(GO) test ./...

# Short wall-clock sanity run (skips the long simulation experiments).
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Regenerate the bench trajectory exactly as CI's bench job runs it:
# fig4c + pipeline sweep + the full chaos-scenario suite, one JSON document.
# Run this before pushing to refresh the committed $(BENCH_OUT) baseline.
bench-json:
	$(GO) run ./cmd/prestige-bench -ci $(BENCH_OUT)

# Diff a fresh trajectory against the committed baseline without committing.
bench-compare:
	$(GO) run ./cmd/prestige-bench -ci /tmp/bench-ci-new.json
	$(GO) run ./scripts -baseline-glob 'BENCH_PR*.json' -new /tmp/bench-ci-new.json

# Full figure set as JSON (slow; every experiment at quick scale).
bench-json-all:
	$(GO) run ./cmd/prestige-bench -experiment all -json bench.json

# Chaos-scenario suite; exits nonzero if any invariant is violated.
scenarios:
	$(GO) run ./cmd/prestige-bench -scenario all

# The same suite against a live loopback-TCP cluster (~4 min, sequential).
scenarios-live:
	$(GO) run ./cmd/prestige-bench -live -scenario all

# The fast live scenarios CI's live-smoke job replays per push; "corpus"
# expands to every committed regression under internal/scenario/corpus/.
live-smoke:
	$(GO) run ./cmd/prestige-bench -live -scenario leader-crash-midview,flaky-network,corpus -json live-verdicts.json

# Seeded chaos fuzzing: FUZZ_N random fault timelines on the sim; on a
# violation the shrunk minimal reproduction lands in fuzz-failures/. To
# replay a nightly CI failure, set FUZZ_SEED to the run's seed (printed in
# the job log) — generation, execution, and shrinking are deterministic.
FUZZ_N ?= 50
FUZZ_SEED ?= 1
fuzz:
	$(GO) run ./cmd/prestige-bench -fuzz $(FUZZ_N) -fuzz-seed $(FUZZ_SEED)

# The same generator against live loopback-TCP clusters (slow, sequential).
fuzz-live:
	$(GO) run ./cmd/prestige-bench -fuzz 5 -fuzz-seed $(FUZZ_SEED) -live

# Coverage-guided fuzzing of the binary wire codec against gob: anything
# that decodes must re-encode and round-trip identically through both
# codecs. CI runs this leg on every PR.
FUZZ_CODEC_TIME ?= 30s
fuzz-codec:
	$(GO) test -fuzz=FuzzCodecGobEquivalence -fuzztime=$(FUZZ_CODEC_TIME) ./internal/transport/codec

# The live fast-lane microbenchmark: codec × verify pipeline × window over
# loopback clusters, with per-cell CPU profiles. Compare against the
# committed LIVEBENCH_PR<k>.json — ratios, not absolutes.
livebench:
	$(GO) run ./cmd/prestige-bench -livebench \
		-livebench-pprof livebench-pprof -json LIVEBENCH.json

# The nightly soak gate, locally: SOAK_DUR of live cluster under rolling
# follower churn, scraped at baseline/mid/end, exiting nonzero unless every
# resource-flatness gate (ledger, heap, goroutines, p99) holds. Verdict JSON
# and raw /metrics snapshots land in soak-verdict.json / soak-metrics/.
SOAK_DUR ?= 3m
soak:
	$(GO) run ./cmd/prestige-bench -soak $(SOAK_DUR) \
		-soak-out soak-verdict.json -soak-metrics-dir soak-metrics

clean:
	rm -f bench.json soak-verdict.json LIVEBENCH.json
	rm -rf bin fuzz-failures soak-metrics livebench-pprof
