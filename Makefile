GO ?= go

.PHONY: build test vet bench bench-json scenarios clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Short wall-clock sanity run (skips the long simulation experiments).
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Machine-readable figure results for the perf trajectory.
bench-json:
	$(GO) run ./cmd/prestige-bench -experiment all -json bench.json

# Chaos-scenario suite; exits nonzero if any invariant is violated.
scenarios:
	$(GO) run ./cmd/prestige-bench -scenario all

clean:
	rm -f bench.json
