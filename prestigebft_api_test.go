package prestigebft_test

import (
	"testing"
	"time"

	"prestigebft"
)

// TestPublicAPIQuickstart mirrors the README quick start through the public
// surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	cluster := prestigebft.NewSimCluster(prestigebft.ClusterOptions{
		N: 4, Clients: 4, BatchSize: 4, Seed: 3,
		VerifySignatures: true,
	})
	cluster.Start()
	cluster.Run(2 * time.Second)
	if cluster.Metrics.TotalTxs == 0 {
		t.Fatal("quick start committed nothing")
	}
	if tps := cluster.Metrics.TPS(0, prestigebft.VirtualTime(2*time.Second)); tps <= 0 {
		t.Fatalf("TPS = %v", tps)
	}
}

// TestPublicAPIReputationEngine exercises the re-exported reputation types.
func TestPublicAPIReputationEngine(t *testing.T) {
	e := prestigebft.NewReputationEngine()
	res := e.CalcRP(6, prestigebft.ReputationSnapshot{
		V: 5, RP: 5, CI: 1, TI: 20, Penalties: []int64{1, 2, 3, 4, 5},
	})
	if res.RP != 5 || !res.Compensated {
		t.Fatalf("paper example 2 through public API: %+v", res)
	}
}

// TestPublicAPIKVHelpers round-trips the KV payload helpers.
func TestPublicAPIKVHelpers(t *testing.T) {
	kv := prestigebft.NewKVStore()
	tx := prestigebft.Transaction{Data: prestigebft.EncodeKVSet("k", []byte("v"))}
	if !kv.Apply(&tx) {
		t.Fatal("set rejected")
	}
	tx2 := prestigebft.Transaction{Data: prestigebft.EncodeKVDel("k")}
	if !kv.Apply(&tx2) {
		t.Fatal("del rejected")
	}
	if kv.Len() != 0 {
		t.Fatal("delete did not apply")
	}
}

// TestPublicAPIExperimentRegistry: the experiment runner surface works and
// rejects unknown names.
func TestPublicAPIExperimentRegistry(t *testing.T) {
	names := prestigebft.ExperimentNames()
	if len(names) < 11 {
		t.Fatalf("experiments = %d, want >= 11", len(names))
	}
	out, ok := prestigebft.Experiment("fig4c", false)
	if !ok || out == "" {
		t.Fatal("fig4c experiment failed")
	}
	if _, ok := prestigebft.Experiment("nope", false); ok {
		t.Fatal("unknown experiment accepted")
	}
}

// TestPublicAPIFaultInjection runs a Byzantine cluster through the public
// surface.
func TestPublicAPIFaultInjection(t *testing.T) {
	cluster := prestigebft.NewSimCluster(prestigebft.ClusterOptions{
		N: 4, Clients: 4, BatchSize: 4, Seed: 5,
		VerifySignatures: true,
		Faults: map[prestigebft.ServerID]prestigebft.FaultSpec{
			4: {Mode: prestigebft.FaultQuiet},
		},
	})
	cluster.Start()
	cluster.Run(2 * time.Second)
	if cluster.Metrics.TotalTxs == 0 {
		t.Fatal("no progress with one quiet server")
	}
}
