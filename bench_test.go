package prestigebft_test

// One benchmark per table/figure of the paper's evaluation (§6), plus
// micro-benchmarks for the core primitives. Each figure benchmark runs the
// corresponding experiment (scaled-down by default) and reports its headline
// numbers through b.ReportMetric; the full rendered tables (and -json
// machine-readable output) come from cmd/prestige-bench.
//
// Set PRESTIGE_FULL=1 to run the paper-scale versions (minutes of wall
// clock per figure).

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"prestigebft/internal/crypto"
	"prestigebft/internal/harness"
	"prestigebft/internal/quorum"
	"prestigebft/internal/reputation"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"

	_ "prestigebft/internal/baseline/hotstuff"
	_ "prestigebft/internal/baseline/prosecutor"
	_ "prestigebft/internal/baseline/sbft"
)

func scale() harness.Scale {
	if os.Getenv("PRESTIGE_FULL") != "" {
		return harness.Full
	}
	return harness.Quick
}

// report re-renders an experiment's rows as benchmark metrics, plus the
// mean across rows under the bare metric name — the headline number the
// BENCH_*.json perf trajectory tracks per figure.
func report(b *testing.B, res *harness.Result, metric string) {
	b.Helper()
	var sum float64
	var n int
	for _, row := range res.Rows {
		if v, ok := row.Values[metric]; ok {
			b.ReportMetric(v, strings.ReplaceAll(row.Label, " ", "_")+"_"+metric)
			sum += v
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), metric)
	}
}

// BenchmarkFig4cReputationTable regenerates the reputation-calculation
// breakdown of Figure 4c (E0).
func BenchmarkFig4cReputationTable(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig4c()
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Values["rp_new"], "rp_"+strings.Fields(row.Label)[0])
	}
}

// BenchmarkFig6Batching regenerates Figure 6 (E1): latency/throughput under
// batching for pb, hs, pr, sb at n=4.
func BenchmarkFig6Batching(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig6(scale())
	}
	report(b, res, "tps")
}

// BenchmarkPeakPerformance regenerates the §6.1 peak-performance comparison
// (E10), including the pb/hs speedup factor.
func BenchmarkPeakPerformance(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunPeak(scale())
	}
	report(b, res, "tps")
	report(b, res, "x")
}

// BenchmarkFig7Scalability regenerates Figure 7 (E2): throughput and latency
// at increasing scales under two message sizes and netem delays.
func BenchmarkFig7Scalability(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig7(scale())
	}
	report(b, res, "tps")
}

// BenchmarkFig8SplitVotes regenerates Figure 8 (E3): split-vote probability
// vs timeout randomization, with and without timeout attacks (F1).
func BenchmarkFig8SplitVotes(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig8(scale())
	}
	report(b, res, "split_vote_pct")
}

// BenchmarkFig9QuietEquiv regenerates Figure 9 (E4): pb vs hs throughput
// under quiet (F2) and equivocation (F3) faults with r10/r30 rotation.
func BenchmarkFig9QuietEquiv(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig9(scale())
	}
	report(b, res, "tps")
}

// BenchmarkFig10RepeatedVC regenerates Figure 10 (E5): repeated view-change
// attacks layered on F2/F3.
func BenchmarkFig10RepeatedVC(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig10(scale())
	}
	report(b, res, "tps")
}

// BenchmarkFig11Recovery regenerates Figure 11 (E6): the throughput-recovery
// timeline under F4+F2 as attackers accumulate penalties.
func BenchmarkFig11Recovery(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig11(scale())
	}
	// Report only the last window per fault count (the recovery endpoint).
	last := map[string]float64{}
	for _, row := range res.Rows {
		key := strings.Split(row.Label, "_")[0]
		last[key] = row.Values["recovery_pct"]
	}
	for k, v := range last {
		b.ReportMetric(v, k+"_final_recovery_pct")
	}
}

// BenchmarkFig12AttackCost regenerates Figure 12 (E7): exponential attacker
// cost vs constant correct-server cost per view change.
func BenchmarkFig12AttackCost(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig12(scale())
	}
	for _, row := range res.Rows {
		if strings.Contains(row.Label, "attack20") || strings.Contains(row.Label, "attack10") {
			b.ReportMetric(row.Values["faulty_ms"], row.Label+"_faulty_ms")
		}
	}
}

// BenchmarkFig13RPEvolution regenerates Figure 13 (E8): per-server
// reputation penalties under f=3 repeated attacks.
func BenchmarkFig13RPEvolution(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig13(scale())
	}
	report(b, res, "final_rp")
}

// BenchmarkFig14Availability regenerates Figure 14 (E9): availability under
// attacker strategies S1/S2 vs HotStuff.
func BenchmarkFig14Availability(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFig14(scale())
	}
	report(b, res, "availability_pct")
}

// BenchmarkPipelineSweep regenerates the replication-window sweep
// (DESIGN.md §8): committed-tx throughput vs window depth W, with W=1 the
// stop-and-wait baseline.
func BenchmarkPipelineSweep(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunPipelineSweep(scale())
	}
	report(b, res, "tps")
	for _, row := range res.Rows {
		if v, ok := row.Values["x"]; ok {
			b.ReportMetric(v, "speedup_w8_over_w1")
		}
	}
}

// BenchmarkAblationCompensation regenerates the compensation-vs-monotone
// ablation table (A1 in DESIGN.md): attacker trajectories identical,
// correct-server trajectories bounded only under compensation+refresh.
func BenchmarkAblationCompensation(b *testing.B) {
	var res *harness.Result
	for i := 0; i < b.N; i++ {
		res = harness.RunAblationCompensation()
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.Values["correct_rp_full"], "correct_rp_full_final")
	b.ReportMetric(last.Values["correct_rp_ablated"], "correct_rp_ablated_final")
	b.ReportMetric(last.Values["attacker_rp_full"], "attacker_rp_final")
}

// --- Micro-benchmarks of the core primitives ---------------------------------

// BenchmarkCalcRP measures one reputation-penalty evaluation (Algorithm 1)
// over a 64-view history.
func BenchmarkCalcRP(b *testing.B) {
	e := reputation.New()
	hist := make([]int64, 64)
	for i := range hist {
		hist[i] = int64(i%7 + 1)
	}
	snap := reputation.Snapshot{V: 64, RP: 5, CI: 100, TI: 500, Penalties: hist}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.CalcRP(65, snap)
	}
}

// BenchmarkPuzzleSolve16 measures a real SHA-256 puzzle solve at 16 zero
// bits (rp=4 at the calibrated 4 bits/rp — the paper's "<20 ms" regime).
func BenchmarkPuzzleSolve16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seed := []byte("prestigebft-puzzle-bench")
	for i := 0; i < b.N; i++ {
		_, _, _ = crypto.SolvePuzzle(seed, 16, rng)
	}
}

// BenchmarkPuzzleVerify measures C5 verification: one hash, O(1).
func BenchmarkPuzzleVerify(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seed := []byte("prestigebft-puzzle-bench")
	nonce, hr, _ := crypto.SolvePuzzle(seed, 12, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !crypto.VerifyPuzzle(seed, nonce, hr, 12) {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkQCAssembly measures collecting and materializing a 2f+1 quorum
// certificate at n=16 with real ed25519 signatures.
func BenchmarkQCAssembly(b *testing.B) {
	reg, keys, _ := crypto.GenerateDeployment(7, 16, 0)
	stmt := types.QCStatementBytes(types.QCCommit, 9, 42, types.Digest{1})
	sigs := make(map[types.ServerID][]byte, 16)
	for id, kp := range keys {
		sigs[id] = kp.Sign(stmt)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coll := quorum.NewCollector(types.QCCommit, 9, 42, types.Digest{1}, types.QuorumSize(16))
		done := false
		for id := types.ServerID(1); id <= 16 && !done; id++ {
			done = coll.Add(reg, id, sigs[id])
		}
		if !done {
			b.Fatal("quorum not reached")
		}
		_ = coll.QC()
	}
}

// BenchmarkSimulatorEventThroughput measures raw discrete-event engine
// throughput (events/second of wall clock).
func BenchmarkSimulatorEventThroughput(b *testing.B) {
	s := sim.NewScheduler(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.After(time.Microsecond, tick)
	s.RunUntil(sim.Duration(time.Duration(b.N+1) * time.Microsecond))
	if count < b.N {
		b.Fatalf("ran %d of %d events", count, b.N)
	}
}

// BenchmarkClusterVirtualSecond measures how much wall clock one virtual
// second of a loaded 4-server PrestigeBFT cluster costs.
func BenchmarkClusterVirtualSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := harness.NewCluster(harness.Options{
			N: 4, Clients: 64, BatchSize: 64, Seed: int64(i + 1),
		})
		c.Start()
		c.Run(time.Second)
		if c.Metrics.TotalTxs == 0 {
			b.Fatal("no progress")
		}
	}
}

// BenchmarkEndToEndCommitLatency reports the mean client-observed commit
// latency in a lightly loaded cluster (the paper's latency floor regime).
func BenchmarkEndToEndCommitLatency(b *testing.B) {
	var mean time.Duration
	for i := 0; i < b.N; i++ {
		c := harness.NewCluster(harness.Options{
			N: 4, Clients: 4, BatchSize: 4, Seed: int64(i + 1),
		})
		c.Start()
		c.Run(2 * time.Second)
		c.CollectClientStats()
		mean = c.Metrics.MeanLatency()
	}
	b.ReportMetric(float64(mean.Microseconds())/1000, "commit_latency_ms")
}
