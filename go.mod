module prestigebft

go 1.24
