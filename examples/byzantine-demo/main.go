// byzantine-demo: watch the reputation mechanism suppress a repeated
// view-change attacker (the paper's F4+F2 scenario, Figures 11-13).
//
// Three of sixteen servers campaign for leadership at every opportunity and
// go quiet once elected. Early on they win elections cheaply (rp = 1 means
// negligible proof-of-work); every win without replication raises their
// penalty, making the next campaign exponentially more expensive, until
// correct servers out-compete them and throughput recovers.
package main

import (
	"fmt"
	"time"

	"prestigebft"
)

func main() {
	faulty := map[prestigebft.ServerID]prestigebft.FaultSpec{
		14: {Mode: prestigebft.FaultQuiet, RepeatedVC: true, HashRateScale: 3},
		15: {Mode: prestigebft.FaultQuiet, RepeatedVC: true, HashRateScale: 3},
		16: {Mode: prestigebft.FaultQuiet, RepeatedVC: true, HashRateScale: 3},
	}
	cluster := prestigebft.NewSimCluster(prestigebft.ClusterOptions{
		N: 16, Clients: 32, BatchSize: 32, Seed: 99,
		ViewPolicy:    10 * time.Second, // rotate leadership every 10 s (the paper's r10)
		ClientTimeout: 2 * time.Second,
		Faults:        faulty,
	})
	cluster.Start()

	fmt.Println("t(s)   TPS     leader  rp[S14] rp[S15] rp[S16]  elections")
	window := 10 * time.Second
	for i := 1; i <= 15; i++ {
		from := cluster.Now()
		cluster.Run(window)
		tps := cluster.Metrics.TPS(from, cluster.Now())
		observer := cluster.Nodes[0] // a correct server's view of reputations
		fmt.Printf("%4d  %7.0f   S%-4d %5d %7d %7d %9d\n",
			i*10, tps,
			observer.CurrentLeader(),
			observer.ReputationPenalty(14),
			observer.ReputationPenalty(15),
			observer.ReputationPenalty(16),
			cluster.Metrics.Elections)
	}

	share := cluster.Metrics.LeaderShare()
	fmt.Println("\nleadership share (faulty servers should fade):")
	for id := prestigebft.ServerID(1); id <= 16; id++ {
		if share[id] > 0 {
			tag := ""
			if _, bad := faulty[id]; bad {
				tag = "  <- attacker"
			}
			fmt.Printf("  S%-3d %5.1f%%%s\n", id, share[id]*100, tag)
		}
	}
}
