// bank: a financial application with application-defined reputation
// criteria (Appendix B, Q3 of the paper).
//
// The reputation engine's "useful transaction" hook lets an application
// decide which transactions count toward a leader's incremental log
// responsiveness (δtx). Here, transfers under $1,000 are executed but do
// not earn reputation compensation — preventing a leader from farming
// reputation with dust transactions.
package main

import (
	"encoding/binary"
	"fmt"
	"time"

	"prestigebft"
	"prestigebft/internal/ledger"
	"prestigebft/internal/reputation"
	"prestigebft/internal/types"
)

// transfer payload: 8-byte amount in dollars + account name.
func encodeTransfer(account string, amount uint64) []byte {
	buf := binary.BigEndian.AppendUint64(nil, amount)
	return append(buf, account...)
}

func decodeTransfer(data []byte) (account string, amount uint64, ok bool) {
	if len(data) < 9 {
		return "", 0, false
	}
	return string(data[8:]), binary.BigEndian.Uint64(data[:8]), true
}

// bankMachine executes transfers and tallies balances.
type bankMachine struct {
	balances map[string]uint64
}

func (b *bankMachine) Apply(tx *types.Transaction) bool {
	account, amount, ok := decodeTransfer(tx.Data)
	if !ok {
		return false
	}
	b.balances[account] += amount
	return true
}

func main() {
	// The application-defined criterion: only transfers of at least $1,000
	// count toward reputation compensation (the paper's example).
	usefulTx := func(tx *types.Transaction) bool {
		_, amount, ok := decodeTransfer(tx.Data)
		return ok && amount >= 1000
	}

	var machines []*bankMachine
	cluster := prestigebft.NewSimCluster(prestigebft.ClusterOptions{
		N: 4, Clients: 6, Seed: 11, BatchSize: 3,
		MaxRequestsPerClient: 4,
		Engine: func() *reputation.Engine {
			e := reputation.New()
			e.UsefulTx = usefulTx
			return e
		},
		StateMachine: func() ledger.StateMachine {
			m := &bankMachine{balances: make(map[string]uint64)}
			machines = append(machines, m)
			return m
		},
		ClientPayload: func(id prestigebft.ClientID, seq int) []byte {
			// Odd clients send large transfers, even clients send dust.
			if id%2 == 1 {
				return encodeTransfer(fmt.Sprintf("acct-%d", id), 5000)
			}
			return encodeTransfer(fmt.Sprintf("acct-%d", id), 5)
		},
	})
	cluster.Start()
	cluster.Run(3 * time.Second)

	fmt.Println("bank balances on server 1 (identical on all replicas):")
	for acct, bal := range machines[0].balances {
		fmt.Printf("  %s: $%d\n", acct, bal)
	}

	// Show the criterion in action through the reputation engine directly:
	// a leader that replicated only dust earns no δtx compensation.
	eng := reputation.New()
	eng.UsefulTx = usefulTx
	dust := make([]types.Transaction, 10)
	for i := range dust {
		dust[i] = types.Transaction{Data: encodeTransfer("x", 5)}
	}
	big := make([]types.Transaction, 10)
	for i := range big {
		big[i] = types.Transaction{Data: encodeTransfer("x", 5000)}
	}
	fmt.Printf("\nuseful txs in a dust batch:  %d / %d\n", eng.CountUseful(dust), len(dust))
	fmt.Printf("useful txs in a large batch: %d / %d\n", eng.CountUseful(big), len(big))

	snap := prestigebft.ReputationSnapshot{V: 5, RP: 5, CI: 1, TI: 1, Penalties: []int64{1, 2, 3, 4, 5}}
	noCred := eng.CalcRP(6, snap) // ti stayed 1: dust earned nothing
	snap.TI = 20
	credit := eng.CalcRP(6, snap) // 20 useful blocks: compensated
	fmt.Printf("campaign with dust-only history:   rp %d -> %d (no compensation)\n", snap.RP, noCred.RP)
	fmt.Printf("campaign with useful replication:  rp %d -> %d (compensated)\n", snap.RP, credit.RP)
}
