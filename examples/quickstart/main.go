// Quickstart: spin up a simulated 4-server PrestigeBFT cluster with eight
// closed-loop clients, run two seconds of virtual time, and inspect what
// committed. Everything runs deterministically in-process — re-running
// prints identical numbers.
package main

import (
	"fmt"
	"time"

	"prestigebft"
)

func main() {
	cluster := prestigebft.NewSimCluster(prestigebft.ClusterOptions{
		N:         4,  // 3f+1 servers, tolerating f=1 Byzantine
		Clients:   8,  // closed-loop clients (one outstanding request each)
		BatchSize: 16, // the paper's β
		Seed:      1,  // all randomness derives from this
	})
	cluster.Start()
	cluster.Run(2 * time.Second) // virtual time: completes in milliseconds

	cluster.CollectClientStats()
	m := cluster.Metrics
	fmt.Printf("committed %d transactions in %d blocks\n", m.TotalTxs, len(m.Commits))
	fmt.Printf("throughput: %.0f TPS, mean latency: %v\n",
		m.TPS(0, prestigebft.VirtualTime(2*time.Second)), m.MeanLatency().Round(time.Millisecond))

	// Every correct replica holds the same chain.
	for _, node := range cluster.Nodes {
		fmt.Printf("server %d: view %d, height %d, leader %d\n",
			node.ID(), node.View(), node.Store().TxHeight(), node.CurrentLeader())
	}

	// Crash the leader; the active view-change protocol elects an
	// up-to-date replacement (never a crashed one) and service resumes.
	fmt.Println("\ncrashing the leader...")
	cluster.Crash(cluster.Nodes[0].CurrentLeader())
	cluster.Run(8 * time.Second)
	fmt.Printf("after recovery: %d transactions, new leader %d (elections: %d)\n",
		m.TotalTxs, cluster.Nodes[1].CurrentLeader(), m.Elections)
}
