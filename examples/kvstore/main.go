// kvstore: replicate a key-value store through PrestigeBFT consensus.
//
// Each server applies committed transactions to its own KVStore state
// machine; because consensus produces one total order, every replica
// converges to identical contents — including when two clients write the
// same key.
package main

import (
	"fmt"
	"time"

	"prestigebft"
	"prestigebft/internal/ledger"
)

func main() {
	var stores []*prestigebft.KVStore

	// Four clients, each writing its own account balance; client 1 writes
	// twice (the second write must win everywhere).
	writes := map[prestigebft.ClientID][][]byte{
		1: {prestigebft.EncodeKVSet("alice", []byte("100")), prestigebft.EncodeKVSet("alice", []byte("90"))},
		2: {prestigebft.EncodeKVSet("bob", []byte("250"))},
		3: {prestigebft.EncodeKVSet("carol", []byte("75"))},
		4: {prestigebft.EncodeKVDel("mallory")},
	}

	cluster := prestigebft.NewSimCluster(prestigebft.ClusterOptions{
		N: 4, Clients: 4, Seed: 7, BatchSize: 2,
		MaxRequestsPerClient: 2,
		StateMachine: func() ledger.StateMachine {
			kv := prestigebft.NewKVStore()
			stores = append(stores, kv)
			return kv
		},
		ClientPayload: func(id prestigebft.ClientID, seq int) []byte {
			ops := writes[id]
			if seq-1 < len(ops) {
				return ops[seq-1]
			}
			return prestigebft.EncodeKVSet(fmt.Sprintf("extra-%d", id), []byte("x"))
		},
	})
	cluster.Start()
	cluster.Run(3 * time.Second)

	fmt.Println("replicated KV contents per server:")
	for i, kv := range stores {
		a, _ := kv.Get("alice")
		b, _ := kv.Get("bob")
		c, _ := kv.Get("carol")
		fmt.Printf("  server %d: alice=%s bob=%s carol=%s (keys=%d, applied=%d)\n",
			i+1, a, b, c, kv.Len(), kv.Applied)
	}
	for i := 1; i < len(stores); i++ {
		if !stores[0].Equal(stores[i]) {
			panic("replicas diverged — consensus violated")
		}
	}
	if v, _ := stores[0].Get("alice"); string(v) != "90" {
		panic("total order violated: alice should end at 90")
	}
	fmt.Println("all replicas hold identical state ✓")
}
