// Package prestigebft is a from-scratch Go implementation of PrestigeBFT
// (Zhang et al., ICDE 2024): a leader-based Byzantine fault-tolerant
// consensus algorithm with an *active* view-change protocol driven by
// reputation mechanisms, plus the three baselines the paper evaluates
// against (HotStuff, SBFT, Prosecutor), a deterministic discrete-event
// cluster simulator, a Byzantine fault injector, and a benchmark harness
// that regenerates every figure of the paper's evaluation.
//
// # Quick start
//
//	cluster := prestigebft.NewSimCluster(prestigebft.ClusterOptions{
//		N:       4,
//		Clients: 8,
//	})
//	cluster.Start()
//	cluster.Run(2 * time.Second) // two seconds of *virtual* time
//	fmt.Println(cluster.Metrics.TotalTxs, "transactions committed")
//
// The simulator runs a whole BFT deployment — servers, clients, network,
// CPU costs, proof-of-work — inside one goroutine under a virtual clock, so
// "two seconds" of cluster time complete in milliseconds and every run is
// reproducible from its seed. For live deployments over TCP, see
// cmd/prestige-server and cmd/prestige-client.
//
// The subsystems live in internal packages:
//
//   - internal/core — the PrestigeBFT node (view change + replication)
//   - internal/reputation — the reputation engine (Algorithm 1)
//   - internal/baseline/... — HotStuff, SBFT, Prosecutor
//   - internal/sim, internal/harness — simulator and experiment harness
//   - internal/faults — Byzantine behavior injection (F1-F4, S1/S2)
//
// This root package re-exports the surface a downstream user needs.
package prestigebft

import (
	"time"

	"prestigebft/internal/core"
	"prestigebft/internal/faults"
	"prestigebft/internal/harness"
	"prestigebft/internal/ledger"
	"prestigebft/internal/reputation"
	"prestigebft/internal/sim"
	"prestigebft/internal/types"

	// Register the baseline protocols with the harness.
	_ "prestigebft/internal/baseline/hotstuff"
	_ "prestigebft/internal/baseline/prosecutor"
	_ "prestigebft/internal/baseline/sbft"
)

// Re-exported identifiers.
type (
	// ServerID identifies a consensus server (1..n).
	ServerID = types.ServerID
	// ClientID identifies a client (1..c).
	ClientID = types.ClientID
	// View is a monotonically increasing configuration number.
	View = types.View
	// SeqNum is a txBlock sequence number.
	SeqNum = types.SeqNum
	// Transaction is an opaque client request.
	Transaction = types.Transaction
	// TxBlock is a committed transaction block.
	TxBlock = types.TxBlock
	// VcBlock is a committed view-change block.
	VcBlock = types.VcBlock

	// ReputationEngine computes reputation penalties (Algorithm 1).
	ReputationEngine = reputation.Engine
	// ReputationSnapshot is the chain state one CalcRP evaluation reads.
	ReputationSnapshot = reputation.Snapshot
	// ReputationResult is the outcome of one CalcRP evaluation.
	ReputationResult = reputation.Result

	// StateMachine consumes committed transactions in order.
	StateMachine = ledger.StateMachine
	// KVStore is the bundled key-value state machine.
	KVStore = ledger.KVStore

	// FaultSpec describes one server's Byzantine behavior.
	FaultSpec = faults.Spec
	// FaultMode is the misbehavior flavor (Quiet = F2, Equivocate = F3).
	FaultMode = faults.Mode

	// Protocol selects a consensus implementation.
	Protocol = harness.Protocol
	// ClusterOptions configures a simulated cluster.
	ClusterOptions = harness.Options
	// Cluster is a simulated deployment.
	Cluster = harness.Cluster
	// Metrics aggregates a run's measurements.
	Metrics = harness.Metrics

	// NodeConfig parameterizes a single PrestigeBFT node for embedding in
	// custom runtimes.
	NodeConfig = core.Config
	// Node is a PrestigeBFT consensus server.
	Node = core.Node
)

// Protocols available to NewSimCluster.
const (
	// PrestigeBFT is the paper's algorithm.
	PrestigeBFT = harness.PrestigeBFT
	// HotStuff is the passive-view-change 3-phase baseline.
	HotStuff = harness.HotStuff
	// SBFT is the linear dual-path baseline.
	SBFT = harness.SBFT
	// Prosecutor is the PoW-penalization baseline.
	Prosecutor = harness.Prosecutor
)

// Fault modes.
const (
	// FaultCorrect disables misbehavior.
	FaultCorrect = faults.Correct
	// FaultQuiet drops all traffic (F2).
	FaultQuiet = faults.Quiet
	// FaultEquivocate corrupts outbound messages (F3).
	FaultEquivocate = faults.Equivocate
)

// NewSimCluster builds a simulated cluster. Call Start, then RunVirtual.
func NewSimCluster(opts ClusterOptions) *Cluster { return harness.NewCluster(opts) }

// NewReputationEngine returns a reputation engine with the paper's defaults
// (Cδ = 1).
func NewReputationEngine() *ReputationEngine { return reputation.New() }

// NewNode builds a single PrestigeBFT node for embedding in a custom
// runtime (implementing the effect loop yourself). Most users want
// NewSimCluster or the live runtime under cmd/ instead.
func NewNode(cfg NodeConfig) *Node { return core.New(cfg) }

// NewKVStore returns the bundled key-value state machine.
func NewKVStore() *KVStore { return ledger.NewKVStore() }

// EncodeKVSet builds a KV "set" transaction payload.
func EncodeKVSet(key string, value []byte) []byte {
	return ledger.EncodeKVOp(ledger.KVSet, key, value)
}

// EncodeKVDel builds a KV "delete" transaction payload.
func EncodeKVDel(key string) []byte {
	return ledger.EncodeKVOp(ledger.KVDel, key, nil)
}

// Experiment runs a named paper experiment (fig4c, fig6..fig14, peak) at
// quick scale and returns its rendered result. See DESIGN.md §5.
func Experiment(name string, full bool) (string, bool) {
	runner, ok := harness.Experiments[name]
	if !ok {
		return "", false
	}
	scale := harness.Quick
	if full {
		scale = harness.Full
	}
	return runner(scale).String(), true
}

// ExperimentNames lists the available experiment runners.
func ExperimentNames() []string {
	names := make([]string, 0, len(harness.Experiments))
	for n := range harness.Experiments {
		names = append(names, n)
	}
	return names
}

// VirtualTime converts a duration into the simulator's time unit, for use
// with Metrics methods like TPS and Availability.
func VirtualTime(d time.Duration) sim.Time { return sim.Duration(d) }
