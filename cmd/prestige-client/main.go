// Command prestige-client drives a live PrestigeBFT cluster with a
// closed-loop workload and reports throughput and latency — the live-mode
// counterpart of the simulator's workload clients.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"prestigebft/internal/crypto"
	"prestigebft/internal/transport"
	"prestigebft/internal/types"
)

func main() {
	n := flag.Int("n", 4, "cluster size")
	peers := flag.String("peers", ":7001,:7002,:7003,:7004", "comma-separated server addresses")
	seed := flag.Uint64("seed", 42, "deployment key seed (must match servers)")
	id := flag.Int("id", 1, "client ID (1..clients registered at servers)")
	payload := flag.Int("m", 32, "payload size in bytes")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	timeout := flag.Duration("timeout", 2*time.Second, "complaint timeout")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) != *n {
		log.Fatalf("expected %d peer addresses, got %d", *n, len(addrs))
	}
	reg, _, clientKeys := crypto.GenerateDeployment(*seed, *n, 64)
	cid := types.ClientID(*id)
	keys := clientKeys[cid]
	if keys == nil {
		log.Fatalf("client id %d not in registry", *id)
	}

	tr := transport.NewClientTransport(cid)
	quorum := types.ConfirmSize(*n)

	var mu sync.Mutex
	notifs := make(map[types.Digest]map[types.ServerID]bool)
	committed := make(chan types.Digest, 64)
	handler := func(env *transport.Envelope) {
		notif, ok := env.Msg.(*types.Notif)
		if !ok || env.FromServer == 0 {
			return
		}
		if !reg.VerifyServer(env.FromServer, notif.SigningBytes(), notif.Sig) {
			return
		}
		mu.Lock()
		set := notifs[notif.TxD]
		if set == nil {
			set = make(map[types.ServerID]bool)
			notifs[notif.TxD] = set
		}
		set[env.FromServer] = true
		done := len(set) == quorum
		mu.Unlock()
		if done {
			committed <- notif.TxD
		}
	}
	listen := fmt.Sprintf("127.0.0.1:%d", 9000+cid)
	if err := tr.Listen(listen, handler); err != nil {
		log.Fatalf("listen %s: %v", listen, err)
	}
	log.Printf("client %d listening on %s, driving %d servers for %v", cid, listen, *n, *duration)

	// sendAll fires msg at every server. Individual send errors are expected
	// under faults (up to f servers may be down); only total unreachability
	// is worth surfacing.
	sendAll := func(msg types.Message) {
		failed := 0
		for _, a := range addrs {
			if err := tr.Send(strings.TrimSpace(a), msg); err != nil {
				failed++
			}
		}
		if failed == len(addrs) {
			log.Printf("all %d sends failed; cluster unreachable?", failed)
		}
	}

	var latencies []time.Duration
	complaints := 0
	deadline := time.Now().Add(*duration)
	seq := 0
	for time.Now().Before(deadline) {
		seq++
		tx := types.Transaction{
			Timestamp: int64(cid)<<32 | int64(seq),
			Client:    cid,
			Data:      make([]byte, *payload),
		}
		prop := &types.Prop{Tx: tx, D: tx.Digest()}
		prop.Sig = keys.Sign(prop.SigningBytes())
		start := time.Now()
		sendAll(prop)
	wait:
		for {
			select {
			case d := <-committed:
				if d == prop.D {
					latencies = append(latencies, time.Since(start))
					break wait
				}
			case <-time.After(*timeout):
				// Complain (§4.2.1) and keep waiting.
				complaints++
				compt := &types.Compt{Prop: *prop}
				compt.Sig = keys.Sign(compt.SigningBytes())
				sendAll(compt)
				if time.Now().After(deadline) {
					break wait
				}
			}
		}
	}

	if len(latencies) == 0 {
		log.Fatal("no transactions committed")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	fmt.Printf("committed: %d txs in %v\n", len(latencies), *duration)
	fmt.Printf("throughput: %.1f tx/s (single closed-loop client)\n", float64(len(latencies))/duration.Seconds())
	fmt.Printf("latency: mean %v, p50 %v, p99 %v\n",
		(sum / time.Duration(len(latencies))).Round(time.Microsecond),
		latencies[len(latencies)/2].Round(time.Microsecond),
		latencies[len(latencies)*99/100].Round(time.Microsecond))
	fmt.Printf("complaints: %d\n", complaints)
}
