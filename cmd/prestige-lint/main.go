// Command prestige-lint is the determinism lint suite's vet tool: the five
// internal/lint analyzers (maporder, walltime, nogoroutine, wiremap,
// msgswitch) compiled into one binary speaking the `go vet -vettool`
// unit-checker protocol. Run it through the go command, which supplies
// type-checked package units and export data:
//
//	go build -o bin/prestige-lint ./cmd/prestige-lint
//	go vet -vettool=$PWD/bin/prestige-lint ./...
//
// or simply `make lint`. The protocol (the same one x/tools' unitchecker
// implements — reimplemented here on the standard library because this repo
// builds offline) has three entry points:
//
//	prestige-lint -V=full        print a content-hashed version for go's cache
//	prestige-lint -flags         print flag metadata as JSON
//	prestige-lint <unit>.cfg     check one package unit described by the JSON config
//
// Diagnostics print one per line as `file:line:col: message (analyzer)`; the
// exit status is nonzero iff any diagnostic survives `//lint:allow`
// suppression, which is what makes `go vet -vettool` a blocking gate.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"prestigebft/internal/lint"
)

// config mirrors cmd/go/internal/work.vetConfig, the JSON document the go
// command writes for each package unit it asks the vet tool to check.
type config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

func main() {
	versionFlag := flag.String("V", "", "print version and exit (go command protocol: -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON instead of text")
	registerAnalyzerFlags()
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
		return
	case *flagsFlag:
		printFlags()
		return
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: prestige-lint [flags] <unit>.cfg\n"+
			"(driven by `go vet -vettool`; see `make lint`)\n")
		os.Exit(2)
	}
	os.Exit(checkUnit(args[0], *jsonFlag))
}

// registerAnalyzerFlags exposes each analyzer's flags as -<analyzer>.<name>.
func registerAnalyzerFlags() {
	for _, a := range lint.Analyzers() {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
}

// printVersion implements -V=full: the go command caches vet results keyed on
// this line, so it must change whenever the binary changes — hence the
// content hash of the executable itself.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%x\n", progname, sum)
}

// printFlags implements -flags: the go command asks for this JSON to learn
// which command-line flags it may forward to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{Name: f.Name, Bool: ok && b.IsBoolFlag(), Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
}

// checkUnit type-checks one package unit from its vet config and runs the
// suite, returning the process exit code.
func checkUnit(cfgFile string, asJSON bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "prestige-lint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command caches and propagates the vetx (analysis facts) file.
	// This suite is fact-free, so an empty file both satisfies the protocol
	// and makes dependency-only invocations trivially cheap.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import spec as written.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "prestige-lint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings, err := lint.Run(fset, files, pkg, info, lint.Analyzers(), true)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f.String())
		}
	}
	return 2
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
