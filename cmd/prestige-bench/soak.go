package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"prestigebft/internal/harness"
	"prestigebft/internal/liveharness"
	"prestigebft/internal/metrics"
	"prestigebft/internal/types"
)

// Soak-mode shape: a 4-replica live cluster under rolling follower churn.
// The point is not protocol coverage (the scenario suite owns that) but
// resource flatness over time — the class of bug that only shows up when a
// cluster runs for minutes, not seconds.
const (
	soakWarmup    = 5 * time.Second  // no churn, no gating before this
	soakCooldown  = 10 * time.Second // last churn recovery ends this early
	churnPeriod   = 20 * time.Second // one crash/recover cycle per period
	churnDowntime = 5 * time.Second  // how long each crashed follower stays down
)

// Soak gate allowances. Generous on purpose: the soak gate exists to catch
// monotonic growth (leaks, unbounded ledgers), not to flake on scheduler
// noise.
const (
	ledgerGrowthFactor  = 1.5      // retained blocks: end vs mid
	ledgerGrowthSlack   = 48       // blocks
	ledgerIntervalSlack = 64       // blocks over 4x the checkpoint interval
	goroutineSlack      = 32       // end vs post-warmup baseline
	heapGrowthFactor    = 2.0      // heap_inuse: end vs mid
	heapSlack           = 64 << 20 // bytes
	p99GrowthFactor     = 3.0      // cumulative p99: end vs mid
	p99Slack            = 100 * time.Millisecond
)

// soakGate is one pass/fail verdict line.
type soakGate struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// soakVerdict is the machine-readable soak result (-soak-out), the document
// the nightly CI job archives and gates on.
type soakVerdict struct {
	Duration           string     `json:"duration"`
	CheckpointInterval int        `json:"checkpoint_interval"`
	Commits            int        `json:"commits"`
	TPS                float64    `json:"tps"`
	P99MidMs           float64    `json:"p99_mid_ms"`
	P99EndMs           float64    `json:"p99_end_ms"`
	Gates              []soakGate `json:"gates"`
	OK                 bool       `json:"ok"`
}

// runSoak boots a live cluster, churns followers for dur, scrapes every
// replica's /metrics at three points (post-warmup baseline, midpoint, end),
// and gates on resource flatness. Exits 0 only if every gate holds.
func runSoak(dur time.Duration, ckptInterval int, outPath, metricsDir string) {
	if dur < 30*time.Second {
		fmt.Fprintf(os.Stderr, "-soak %v is below the 30s minimum (warmup %v + churn + cooldown %v need room)\n",
			dur, soakWarmup, soakCooldown)
		os.Exit(2)
	}
	opts := harness.Options{
		N: 4, Clients: 8, BatchSize: 8, Seed: 301,
		ClientTimeout:      500 * time.Millisecond,
		CheckpointInterval: ckptInterval,
	}
	env, err := liveharness.New(opts, liveharness.Config{
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "soak: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: boot cluster: %v\n", err)
		os.Exit(2)
	}
	defer env.Close()

	// Rolling follower churn: one crash/recover cycle per period, rotating
	// across the followers, never more than f=1 down at once, and fully
	// healed well before the final scrape.
	followers := []types.ServerID{2, 3, 4}
	churn := 0
	for at := soakWarmup + 7*time.Second; at+churnDowntime < dur-soakCooldown; at += churnPeriod {
		id := followers[churn%len(followers)]
		at := at
		env.Schedule(at, func() { env.Crash(id) })
		env.Schedule(at+churnDowntime, func() { env.Recover(id) })
		churn++
	}
	fmt.Printf("soak: %v on a %d-replica cluster, checkpoint interval %d, %d churn cycles\n",
		dur, opts.N, ckptInterval, churn)

	env.Start()
	if err := env.WaitHealthy(); err != nil {
		fmt.Fprintf(os.Stderr, "soak: cluster never turned healthy: %v\n", err)
		os.Exit(1)
	}

	mid := dur / 2
	env.RunUntil(soakWarmup)
	base := env.ScrapeAll()
	dumpMetrics(env, metricsDir, "baseline")

	env.RunUntil(mid)
	midSnaps := env.ScrapeAll()
	dumpMetrics(env, metricsDir, "mid")
	env.CollectStats()
	p99Mid := env.LatencyPercentile(99)

	env.RunUntil(dur)
	end := env.ScrapeAll()
	dumpMetrics(env, metricsDir, "end")
	env.CollectStats()
	p99End := env.LatencyPercentile(99)

	pr := env.Progress()
	tps := env.TPS(soakWarmup, dur)
	env.Close()

	v := soakVerdict{
		Duration:           dur.String(),
		CheckpointInterval: ckptInterval,
		Commits:            pr.Commits,
		TPS:                tps,
		P99MidMs:           float64(p99Mid) / float64(time.Millisecond),
		P99EndMs:           float64(p99End) / float64(time.Millisecond),
	}
	v.Gates = append(v.Gates,
		gateLedgerFlat(midSnaps, end, ckptInterval),
		gateGoroutines(base, end),
		gateHeapFlat(midSnaps, end),
		gateP99(p99Mid, p99End),
	)
	v.OK = true
	for _, g := range v.Gates {
		if !g.OK {
			v.OK = false
		}
	}

	data, _ := json.MarshalIndent(&v, "", "  ")
	data = append(data, '\n')
	os.Stdout.Write(data)
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "soak: write %s: %v\n", outPath, err)
			os.Exit(2)
		}
		fmt.Printf("soak: verdict written to %s\n", outPath)
	}
	if !v.OK {
		fmt.Fprintln(os.Stderr, "soak: FAILED")
		os.Exit(1)
	}
	fmt.Println("soak: ok")
}

// compareReplicas applies check to every replica present in both scrape
// maps. Churn may hide a replica from any single scrape, so gates work on
// the intersection — but an intersection thinner than a quorum means the
// scrapes say nothing, which is itself a failure.
func compareReplicas(a, b map[types.ServerID]metrics.Snapshot, gate string,
	check func(id types.ServerID, a, b metrics.Snapshot) string) soakGate {
	var ids []types.ServerID
	for id := range a {
		if _, ok := b[id]; ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) < 3 {
		return soakGate{Name: gate, OK: false,
			Detail: fmt.Sprintf("only %d replicas present in both scrapes; need a quorum of 3", len(ids))}
	}
	for _, id := range ids {
		if bad := check(id, a[id], b[id]); bad != "" {
			return soakGate{Name: gate, OK: false, Detail: fmt.Sprintf("S%d: %s", id, bad)}
		}
	}
	return soakGate{Name: gate, OK: true,
		Detail: fmt.Sprintf("held on %d replicas", len(ids))}
}

// gateLedgerFlat asserts checkpoint compaction keeps every ledger bounded:
// retained blocks must not keep growing mid→end, and with a checkpoint
// interval configured they must stay within a small multiple of it. With
// -checkpoint-interval 0 the ledger grows with history and this gate fails
// — which is the proof the gate measures something real.
func gateLedgerFlat(mid, end map[types.ServerID]metrics.Snapshot, interval int) soakGate {
	return compareReplicas(mid, end, "ledger-flat", func(id types.ServerID, m, e metrics.Snapshot) string {
		rm, _ := m.Value("prestige_retained_blocks")
		re, _ := e.Value("prestige_retained_blocks")
		if re > rm*ledgerGrowthFactor+ledgerGrowthSlack {
			return fmt.Sprintf("retained blocks grew %.0f → %.0f, over %.1fx+%d — ledger not compacting",
				rm, re, ledgerGrowthFactor, ledgerGrowthSlack)
		}
		if bound := float64(interval)*4 + ledgerIntervalSlack; interval > 0 && re > bound {
			return fmt.Sprintf("retained blocks %.0f exceed the O(interval) bound %.0f", re, bound)
		}
		return ""
	})
}

// gateGoroutines asserts goroutine-count stability against the post-warmup
// baseline. All replicas share this process, so the count is process-wide;
// churn respawns runtimes, and leaked ones would accumulate here.
func gateGoroutines(base, end map[types.ServerID]metrics.Snapshot) soakGate {
	return compareReplicas(base, end, "goroutines-stable", func(id types.ServerID, b, e metrics.Snapshot) string {
		gb, _ := b.Value("go_goroutines")
		ge, _ := e.Value("go_goroutines")
		if ge > gb+goroutineSlack {
			return fmt.Sprintf("go_goroutines grew %.0f → %.0f, over the +%d allowance — goroutine leak", gb, ge, goroutineSlack)
		}
		return ""
	})
}

// gateHeapFlat asserts heap flatness mid→end: by the midpoint the workload
// is in steady state, so heap_inuse holding inside a generous factor means
// memory is not monotonically growing.
func gateHeapFlat(mid, end map[types.ServerID]metrics.Snapshot) soakGate {
	return compareReplicas(mid, end, "heap-flat", func(id types.ServerID, m, e metrics.Snapshot) string {
		hm, _ := m.Value("go_memstats_heap_inuse_bytes")
		he, _ := e.Value("go_memstats_heap_inuse_bytes")
		if he > hm*heapGrowthFactor+heapSlack {
			return fmt.Sprintf("heap_inuse grew %.0f → %.0f bytes, over %.1fx+%dMiB — memory not flat",
				hm, he, heapGrowthFactor, heapSlack>>20)
		}
		return ""
	})
}

// gateP99 asserts cumulative p99 commit latency does not degrade between
// the midpoint and the end — a drifting p99 under identical load means the
// cluster is getting slower as it ages.
func gateP99(mid, end time.Duration) soakGate {
	g := soakGate{Name: "p99-stable"}
	if mid == 0 {
		g.OK = false
		g.Detail = "no client latencies collected by the midpoint"
		return g
	}
	bound := time.Duration(float64(mid)*p99GrowthFactor) + p99Slack
	if end > bound {
		g.Detail = fmt.Sprintf("cumulative p99 %v → %v, over the %v bound — latency drifting", mid, end, bound)
		return g
	}
	g.OK = true
	g.Detail = fmt.Sprintf("p99 %v → %v within the %v bound", mid, end, bound)
	return g
}

// dumpMetrics archives every live replica's raw /metrics exposition at one
// scrape point — the bytes a Prometheus server would have ingested, kept as
// CI artifacts for post-mortems.
func dumpMetrics(env *liveharness.Env, dir, phase string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "soak: mkdir %s: %v\n", dir, err)
		return
	}
	for id := types.ServerID(1); int(id) <= env.N(); id++ {
		addr := env.AdminAddr(id)
		if addr == "" {
			continue
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			continue // crashed replica; nothing to archive
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-S%d.prom", phase, id))
		if err := os.WriteFile(path, body, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "soak: write %s: %v\n", path, err)
		}
	}
}
