package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"prestigebft/internal/harness"
	"prestigebft/internal/liveharness"
	"prestigebft/internal/sim"
)

// Livebench-mode shape: a fault-free 4-replica live cluster on loopback with
// zero injected latency, so the commit path is CPU-bound and the sweep
// measures what the fast lane actually changes — signature verification,
// wire encoding, and event-loop occupancy — not the fault fabric.
const (
	livebenchWarmup = 5 * time.Second
	livebenchSeed   = 777
)

// livebenchCell is one sweep point: a wire codec crossed with the verify
// pipeline on or off, at one replication window.
type livebenchCell struct {
	codec string
	pool  bool
	depth int
}

// cellLabel names a cell in rows, pprof files, and progress lines.
func (c livebenchCell) String() string {
	pool := "nopool"
	if c.pool {
		pool = "pool"
	}
	return fmt.Sprintf("%s-%s-w%d", c.codec, pool, c.depth)
}

// runLivebench sweeps codec × verify-pipeline × window over live loopback
// clusters and reports live_tps per cell plus the headline speedup of the
// full fast lane (binary+pool) over the legacy path (gob+nopool) at each
// window. Every cell is measured in the same run on the same host, so the
// ratio is apples-to-apples; absolute numbers are machine-dependent and the
// metric names are deliberately outside bench_compare's gated set.
func runLivebench(window time.Duration, clients int, pprofDir, jsonPath string) {
	cells := []livebenchCell{
		{"gob", false, 1}, {"gob", false, 8},
		{"gob", true, 1}, {"gob", true, 8},
		{"binary", false, 1}, {"binary", false, 8},
		{"binary", true, 1}, {"binary", true, 8},
	}
	res := &harness.Result{
		Name: "Live fast-lane sweep",
		Notes: fmt.Sprintf("loopback cluster, zero injected latency, %d clients, %v window after %v warmup; "+
			"live_tps is wall-clock and machine-dependent — compare ratios, not absolutes", clients, window, livebenchWarmup),
	}
	start := time.Now()
	tpsBy := make(map[string]float64, len(cells))
	for _, cell := range cells {
		fmt.Printf("livebench %-20s ...", cell)
		tps, commits, err := runLivebenchCell(cell, window, clients, pprofDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "\nlivebench %s: %v\n", cell, err)
			os.Exit(1)
		}
		fmt.Printf(" %8.1f tx/s (%d commits)\n", tps, commits)
		tpsBy[cell.String()] = tps
		res.Rows = append(res.Rows, harness.Row{
			Label:  cell.String(),
			Values: map[string]float64{"live_tps": tps, "commits": float64(commits)},
			Order:  []string{"live_tps", "commits"},
		})
	}
	for _, w := range []int{1, 8} {
		base := tpsBy[fmt.Sprintf("gob-nopool-w%d", w)]
		fast := tpsBy[fmt.Sprintf("binary-pool-w%d", w)]
		speedup := 0.0
		if base > 0 {
			speedup = fast / base
		}
		fmt.Printf("livebench speedup at W=%d: %.2fx (%.1f → %.1f tx/s)\n", w, speedup, base, fast)
		res.Rows = append(res.Rows, harness.Row{
			Label:  fmt.Sprintf("speedup-w%d", w),
			Values: map[string]float64{"live_speedup": speedup},
			Order:  []string{"live_speedup"},
		})
	}
	fmt.Println(res)
	fmt.Printf("[livebench sweep completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	writeJSON(jsonPath, &benchOutput{Scale: "livebench", Results: []*harness.Result{res}})
}

// runLivebenchCell boots one cluster for the cell's configuration, lets it
// reach steady state, and measures committed throughput over the window
// (with a CPU profile covering exactly the measured interval when pprofDir
// is set).
func runLivebenchCell(cell livebenchCell, window time.Duration, clients int, pprofDir string) (tps float64, commits int, err error) {
	opts := harness.Options{
		N:             4,
		Clients:       clients,
		Seed:          livebenchSeed,
		PipelineDepth: cell.depth,
		ClientTimeout: 2 * time.Second,
		// Zero injected latency: loopback at wire speed. The default fabric
		// profile would add ~2ms per hop and drown the crypto/codec costs
		// this sweep exists to expose.
		Net: sim.NetworkConfig{Latency: sim.FixedLatency(0)},
	}
	verifyWorkers := -1
	if cell.pool {
		verifyWorkers = 0 // pool default
	}
	env, err := liveharness.New(opts, liveharness.Config{
		WireCodec:     cell.codec,
		VerifyWorkers: verifyWorkers,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("boot cluster: %w", err)
	}
	defer env.Close()

	env.Start()
	if err := env.WaitHealthy(); err != nil {
		return 0, 0, fmt.Errorf("cluster never turned healthy: %v", err)
	}
	env.RunUntil(livebenchWarmup)

	var prof *os.File
	if pprofDir != "" {
		if err := os.MkdirAll(pprofDir, 0o755); err != nil {
			return 0, 0, fmt.Errorf("mkdir %s: %v", pprofDir, err)
		}
		path := filepath.Join(pprofDir, fmt.Sprintf("cpu-%s.pprof", cell))
		prof, err = os.Create(path)
		if err != nil {
			return 0, 0, fmt.Errorf("create %s: %v", path, err)
		}
		if err := pprof.StartCPUProfile(prof); err != nil {
			prof.Close()
			return 0, 0, fmt.Errorf("start profile: %v", err)
		}
	}
	env.RunUntil(livebenchWarmup + window)
	if prof != nil {
		pprof.StopCPUProfile()
		prof.Close()
	}

	tps = env.TPS(livebenchWarmup, livebenchWarmup+window)
	pr := env.Progress()
	env.Close()
	return tps, pr.Commits, nil
}
