package main

// The -fuzz mode: sample N random chaos timelines from a seed, run each as
// an ordinary deterministic grid cell (or sequentially against a live TCP
// cluster with -live), and on any invariant violation shrink the failing
// timeline to a minimal reproducer and write it to -fuzz-out as a timeline
// document ready to be committed into internal/scenario/corpus/. Exit
// codes match the scenario runners: 0 clean, 1 violations (3 when a live
// run saw a safety violation). DESIGN.md §12 documents the pipeline.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"prestigebft/internal/harness"
	"prestigebft/internal/liveharness"
	"prestigebft/internal/scenario"
	"prestigebft/internal/scenario/fuzz"
)

// Shrink budgets: oracle re-runs per failing timeline. Sim cells are
// hundreds of milliseconds, live cells tens of seconds, so the live budget
// stays small — a live shrink is a convenience, not the workhorse (the
// nightly sim sweep is).
const (
	simShrinkRuns  = 300
	liveShrinkRuns = 25
)

// runFuzz drives the whole fuzz pipeline and never returns.
func runFuzz(count int, seed int64, live bool, outDir, jsonPath string, slack float64) {
	if count <= 0 {
		fmt.Fprintln(os.Stderr, "-fuzz needs a positive sample count")
		os.Exit(2)
	}
	scens := fuzz.New(seed).Scenarios(count)

	newEnv := scenario.NewSimEnv
	mode, shrinkRuns := "fuzz", simShrinkRuns
	if live {
		newEnv = liveharness.Builder(liveharness.Config{Slack: slack})
		mode, shrinkRuns = "fuzz-live", liveShrinkRuns
	}

	res := &harness.Result{
		Name: fmt.Sprintf("Chaos fuzz (seed %d, %d samples%s)", seed, count,
			map[bool]string{true: ", live", false: ""}[live]),
		Notes: "randomized fault timelines sampled by internal/scenario/fuzz; ok=1 means every invariant held",
	}
	reports := make([]*scenario.Report, len(scens))
	start := time.Now()
	if live {
		// Live cells share the machine's wall clock: strictly sequential.
		for i, s := range scens {
			fmt.Printf("live %-18s ...", s.Name)
			cellStart := time.Now()
			reports[i] = s.RunWith(newEnv)
			fmt.Printf(" done in %v\n", time.Since(cellStart).Round(time.Millisecond))
			res.Rows = append(res.Rows, reports[i].Row())
		}
	} else {
		g := &harness.Grid{
			Name:  res.Name,
			Notes: res.Notes,
		}
		for i, s := range scens {
			i, s := i, s
			g.Specs = append(g.Specs, harness.ExperimentSpec{
				Label: s.Name,
				Measure: func(*harness.ExperimentSpec) []harness.Row {
					reports[i] = s.Run()
					return []harness.Row{reports[i].Row()}
				},
			})
		}
		res = g.Run()
	}
	fmt.Println(res)
	fmt.Printf("[%d fuzz samples completed in %v]\n\n", len(scens), time.Since(start).Round(time.Millisecond))

	writeJSON(jsonPath, &benchOutput{Scale: mode, Results: []*harness.Result{res}})

	failed := reportVerdicts(reports)
	if failed == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "\n%d of %d fuzz samples violated invariants; shrinking\n", failed, len(reports))

	oracle := func(s *scenario.Scenario) []string { return s.RunWith(newEnv).Violations }
	safety := false
	for i, rep := range reports {
		if rep.OK() {
			continue
		}
		shr := fuzz.Shrink(scens[i], oracle, shrinkRuns)
		for _, v := range shr.Violations {
			if strings.HasPrefix(v, "safety:") {
				safety = true
			}
		}
		writeArtifact(outDir, seed, i, shr)
	}
	if live && safety {
		fmt.Fprintln(os.Stderr, "safety violation present: not retryable")
		os.Exit(3)
	}
	os.Exit(1)
}

// writeArtifact serializes a shrunk failing timeline into outDir and prints
// how to replay it. Artifact emission must never mask the violation exit:
// failures to write are reported and swallowed.
func writeArtifact(outDir string, seed int64, index int, shr fuzz.Result) {
	fmt.Fprintf(os.Stderr, "%s: shrunk to %d events in %d runs (%d accepted moves)\n",
		shr.Scenario.Name, len(shr.Scenario.Events), shr.Runs, shr.Accepted)
	for _, v := range shr.Violations {
		fmt.Fprintf(os.Stderr, "    ✗ %s\n", v)
	}
	data, err := scenario.MarshalScenario(shr.Scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "    marshal artifact: %v\n", err)
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "    create %s: %v\n", outDir, err)
		return
	}
	path := filepath.Join(outDir, shr.Scenario.Name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "    write %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "    wrote %s — the unshrunk sample replays with: prestige-bench -fuzz %d -fuzz-seed %d\n", path, index+1, seed)
	fmt.Fprintf(os.Stderr, "    after the fix, commit it (renamed corpus-*) under internal/scenario/corpus/\n")
}
