// Command prestige-bench regenerates the tables and figures of the
// PrestigeBFT paper's evaluation (§6) on the discrete-event simulator.
//
// Usage:
//
//	prestige-bench -experiment fig9            # one figure, quick scale
//	prestige-bench -experiment all -full       # everything at paper scale
//	prestige-bench -experiment all -json o.json  # also write machine-readable results
//	prestige-bench -workers 1                  # force sequential execution
//	prestige-bench -list                       # enumerate experiments
//
// Results print as text tables; with -json they are also written as a JSON
// document (one object per experiment) for the perf trajectory. Figure grids
// run their independent simulation cells on a worker pool (-workers, default
// one per CPU); results are deterministic and identical for any worker
// count. DESIGN.md §5 maps each experiment to the paper's figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"prestigebft/internal/harness"

	_ "prestigebft/internal/baseline/hotstuff"
	_ "prestigebft/internal/baseline/prosecutor"
	_ "prestigebft/internal/baseline/sbft"
)

// benchOutput is the schema of the -json document.
type benchOutput struct {
	Scale   string            `json:"scale"`
	Results []*harness.Result `json:"results"`
}

func main() {
	experiment := flag.String("experiment", "all", "experiment to run (fig4c, fig6..fig14, peak, all)")
	full := flag.Bool("full", false, "run at paper scale (minutes of wall clock per figure)")
	list := flag.Bool("list", false, "list available experiments")
	jsonPath := flag.String("json", "", "also write results as JSON to this path")
	workers := flag.Int("workers", 0, "worker-pool size for experiment grids (0 = one per CPU)")
	flag.Parse()

	harness.Workers = *workers

	names := make([]string, 0, len(harness.Experiments))
	for n := range harness.Experiments {
		names = append(names, n)
	}
	sort.Strings(names)

	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	scale := harness.Quick
	scaleName := "quick"
	if *full {
		scale = harness.Full
		scaleName = "full"
	}

	out := benchOutput{Scale: scaleName}
	run := func(name string) {
		runner, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", name)
			os.Exit(2)
		}
		start := time.Now()
		res := runner(scale)
		out.Results = append(out.Results, res)
		fmt.Println(res)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, n := range names {
			run(n)
		}
	} else {
		run(*experiment)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d experiment results to %s\n", len(out.Results), *jsonPath)
	}
}
